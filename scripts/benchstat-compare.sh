#!/usr/bin/env bash
# benchstat-compare.sh — run one set of Go comparison benchmarks, split the
# samples into baseline and contender files by their sub-name (mode=...,
# wire=..., client=...), strip that sub-name so benchstat pairs the cells,
# and compare with a pinned benchstat.
#
# The comparison benchmarks carry their variant in a sub-benchmark name;
# stripping it makes both variants share a benchmark name, which is exactly
# what benchstat needs to pair them up. benchstat is pinned for the same
# reason the linters are: a new release changing its statistics or output
# format must not flip a CI job's result on an unrelated commit.
#
# Usage:
#   scripts/benchstat-compare.sh \
#     -bench 'BenchmarkCollectionShards/nodes=(128|512)' \
#     -pkgs  './internal/modules' \
#     -base  'mode=serial' \
#     -cont  'mode=sharded' \
#     -out   shard [-count 5] [-benchtime 3x]
#
# Writes <out>-raw.txt, <out>-base.txt, <out>-cont.txt, <out>-benchstat.txt.
set -euo pipefail

BENCHSTAT='golang.org/x/perf/cmd/benchstat@v0.0.0-20230113213139-801c7ef9e5c5'

bench='' pkgs='' base='' cont='' out='' count=5 benchtime=3x
while [ $# -gt 0 ]; do
  case "$1" in
    -bench)     bench=$2;     shift 2 ;;
    -pkgs)      pkgs=$2;      shift 2 ;;
    -base)      base=$2;      shift 2 ;;
    -cont)      cont=$2;      shift 2 ;;
    -out)       out=$2;       shift 2 ;;
    -count)     count=$2;     shift 2 ;;
    -benchtime) benchtime=$2; shift 2 ;;
    *) echo "benchstat-compare.sh: unknown flag $1" >&2; exit 2 ;;
  esac
done
for req in bench pkgs base cont out; do
  if [ -z "${!req}" ]; then
    echo "benchstat-compare.sh: -$req is required" >&2
    exit 2
  fi
done

# shellcheck disable=SC2086 # pkgs is an intentional word-split package list
go test -run '^$' -bench "$bench" -benchmem -benchtime "$benchtime" \
  -count "$count" $pkgs | tee "$out-raw.txt"

grep -E "^Benchmark[^ ]*($base)" "$out-raw.txt" \
  | sed -E "s#/($base)##" > "$out-base.txt"
grep -E "^Benchmark[^ ]*($cont)" "$out-raw.txt" \
  | sed -E "s#/($cont)##" > "$out-cont.txt"
echo "--- baseline samples ($base) ---";  cat "$out-base.txt"
echo "--- contender samples ($cont) ---"; cat "$out-cont.txt"
if [ ! -s "$out-base.txt" ] || [ ! -s "$out-cont.txt" ]; then
  echo "benchstat-compare.sh: a sample split came up empty — bench or split regex is stale" >&2
  exit 1
fi

go run "$BENCHSTAT" "$out-base.txt" "$out-cont.txt" | tee "$out-benchstat.txt"
