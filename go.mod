module github.com/asdf-project/asdf

go 1.22
