// White-box fingerpointing: the paper's hadoop_log -> analysis_wb pipeline
// (Figure 4) localizes a dormant application bug — HADOOP-2080, reduce
// tasks hanging on a miscomputed checksum — purely from Hadoop's natively
// generated TaskTracker logs, with no instrumentation of Hadoop itself.
//
// The bug is "dormant": injected at one moment, it only manifests when a
// reduce on the faulty node reaches its sort phase, which is what made this
// fault family slow to localize in the paper (§4.9).
//
// Run with:
//
//	go run ./examples/whitebox
package main

import (
	"fmt"
	"os"
	"strings"

	asdf "github.com/asdf-project/asdf"
	"github.com/asdf-project/asdf/sim"
)

const (
	slaves     = 8
	warmupSecs = 240
	faultSecs  = 600
	culprit    = 5 // slave06
)

func main() {
	os.Exit(run())
}

func run() int {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "whitebox:", err)
		return 1
	}
	return 0
}

func realMain() error {
	cluster, err := sim.NewCluster(sim.DefaultConfig(slaves, 123))
	if err != nil {
		return err
	}

	env := asdf.NewEnv()
	names := make([]string, slaves)
	for i, n := range cluster.Slaves() {
		names[i] = n.Name
		// The white-box path needs only the logs each Hadoop daemon
		// already writes.
		env.TTLogs[n.Name] = n.TaskTrackerLog()
		env.DNLogs[n.Name] = n.DataNodeLog()
	}
	env.Clock = cluster.Now
	env.AlarmWriter = os.Stdout

	var b strings.Builder
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl_tt\nkind = tasktracker\nnodes = %s\nperiod = 1\n\n",
		strings.Join(names, ","))
	b.WriteString("[analysis_wb]\nid = analysis\nk = 3\nwindow = 60\nslide = 15\n")
	for i, n := range names {
		fmt.Fprintf(&b, "input[s%d] = hl_tt.%s\n", i, n)
	}
	b.WriteString("\n[print]\nid = TaskTrackerAlarm\nlabel = ALARM\ninput[a] = @analysis\n")

	cfg, err := asdf.ParseConfigString(b.String())
	if err != nil {
		return err
	}
	engine, err := asdf.NewEngine(asdf.NewRegistry(env), cfg)
	if err != nil {
		return err
	}

	step := func(seconds int) error {
		for i := 0; i < seconds; i++ {
			cluster.Tick()
			if err := engine.Tick(cluster.Now()); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Printf("monitoring %d slaves' TaskTracker logs fault-free for %d s...\n", slaves, warmupSecs)
	if err := step(warmupSecs); err != nil {
		return err
	}
	fmt.Printf(">>> injecting HADOOP-2080 (reduce hangs at sort) on %s <<<\n", names[culprit])
	if err := cluster.InjectFault(culprit, sim.FaultHang2080); err != nil {
		return err
	}
	if err := step(faultSecs); err != nil {
		return err
	}
	fmt.Printf("done; alarms above should name %s (after the dormancy period)\n", names[culprit])
	return nil
}
