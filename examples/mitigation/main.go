// Mitigation: the paper's §5 extension — ASDF not only fingerpoints the
// faulty node but actively mitigates the problem. The white-box pipeline
// detects reduces hanging on a HADOOP-2080-style bug, and an action module
// blacklists the culprit at the jobtracker, after which the cluster routes
// around it.
//
// Run with:
//
//	go run ./examples/mitigation
package main

import (
	"fmt"
	"os"
	"strings"

	asdf "github.com/asdf-project/asdf"
	"github.com/asdf-project/asdf/sim"
)

const (
	slaves     = 8
	warmupSecs = 240
	faultSecs  = 600
	culprit    = 6 // slave07
)

func main() {
	os.Exit(run())
}

func run() int {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "mitigation:", err)
		return 1
	}
	return 0
}

func realMain() error {
	cluster, err := sim.NewCluster(sim.DefaultConfig(slaves, 31337))
	if err != nil {
		return err
	}

	env := asdf.NewEnv()
	names := make([]string, slaves)
	for i, n := range cluster.Slaves() {
		names[i] = n.Name
		env.TTLogs[n.Name] = n.TaskTrackerLog()
	}
	env.Clock = cluster.Now
	env.AlarmWriter = os.Stdout
	// The mitigation the action module can invoke: exclude the node from
	// all future scheduling at the jobtracker.
	env.Actions["blacklist"] = func(node string) error {
		fmt.Printf(">>> MITIGATION: blacklisting %s at the jobtracker <<<\n", node)
		return cluster.BlacklistByName(node)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl\nkind = tasktracker\nnodes = %s\nperiod = 1\n\n",
		strings.Join(names, ","))
	b.WriteString("[analysis_wb]\nid = wb\nk = 3\nwindow = 60\nslide = 15\n")
	for i, n := range names {
		fmt.Fprintf(&b, "input[s%d] = hl.%s\n", i, n)
	}
	b.WriteString("\n[print]\nid = Alarm\nlabel = ALARM\ninput[a] = @wb\n")
	b.WriteString("\n[action]\nid = mitigate\naction = blacklist\nconsecutive = 3\ninput[a] = @wb\n")
	b.WriteString("\n[print]\nid = Mitigated\nlabel = ACTED\ninput[a] = @mitigate\n")

	cfg, err := asdf.ParseConfigString(b.String())
	if err != nil {
		return err
	}
	engine, err := asdf.NewEngine(asdf.NewRegistry(env), cfg)
	if err != nil {
		return err
	}

	step := func(seconds int) error {
		for i := 0; i < seconds; i++ {
			cluster.Tick()
			if err := engine.Tick(cluster.Now()); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Printf("monitoring %d slaves for %d s...\n", slaves, warmupSecs)
	if err := step(warmupSecs); err != nil {
		return err
	}
	fmt.Printf(">>> injecting HADOOP-2080 (reduce hangs at sort) on %s <<<\n", names[culprit])
	if err := cluster.InjectFault(culprit, sim.FaultHang2080); err != nil {
		return err
	}
	if err := step(faultSecs); err != nil {
		return err
	}

	for i, n := range names {
		if cluster.Blacklisted(i) {
			fmt.Printf("result: %s is blacklisted; cluster completed %d jobs overall\n",
				n, cluster.JobsCompleted())
		}
	}
	if !cluster.Blacklisted(culprit) {
		return fmt.Errorf("culprit %s was never mitigated", names[culprit])
	}
	return nil
}
