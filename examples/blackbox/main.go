// Black-box fingerpointing: the paper's sadc -> knn -> ibuffer ->
// analysis_bb pipeline (Figure 3/4) localizes a CPU hog on a simulated
// Hadoop cluster without any application knowledge.
//
// The example first trains the workload-state model on fault-free data
// (offline k-means, §4.5 of the paper), then monitors a second cluster in
// which slave04 starts running a rogue 70%-CPU process mid-run.
//
// Run with:
//
//	go run ./examples/blackbox
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	asdf "github.com/asdf-project/asdf"
	"github.com/asdf-project/asdf/sim"
)

const (
	slaves     = 8
	trainSecs  = 300
	warmupSecs = 180
	faultSecs  = 360
	culprit    = 3 // slave04
)

func main() {
	os.Exit(run())
}

func run() int {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "blackbox:", err)
		return 1
	}
	return 0
}

func realMain() error {
	// Phase 1: train the black-box model on a fault-free cluster.
	fmt.Printf("training on %d fault-free seconds from %d slaves...\n", trainSecs, slaves)
	training, err := sim.NewCluster(sim.DefaultConfig(slaves, 7))
	if err != nil {
		return err
	}
	model, err := trainModel(training)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "asdf-blackbox")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	modelPath := filepath.Join(dir, "model.json")
	if err := model.Save(modelPath); err != nil {
		return err
	}

	// Phase 2: monitor a fresh cluster and inject the CPU hog.
	cluster, err := sim.NewCluster(sim.DefaultConfig(slaves, 99))
	if err != nil {
		return err
	}
	env := asdf.NewEnv()
	names := make([]string, slaves)
	for i, n := range cluster.Slaves() {
		names[i] = n.Name
		env.Procfs[n.Name] = n
	}
	env.Clock = cluster.Now
	env.AlarmWriter = os.Stdout

	cfg, err := asdf.ParseConfigString(pipelineConfig(names, modelPath, model.NumStates()))
	if err != nil {
		return err
	}
	engine, err := asdf.NewEngine(asdf.NewRegistry(env), cfg)
	if err != nil {
		return err
	}

	step := func(seconds int) error {
		for i := 0; i < seconds; i++ {
			cluster.Tick()
			if err := engine.Tick(cluster.Now()); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Printf("monitoring %d slaves fault-free for %d s...\n", slaves, warmupSecs)
	if err := step(warmupSecs); err != nil {
		return err
	}
	fmt.Printf(">>> injecting CPUHog on %s <<<\n", names[culprit])
	if err := cluster.InjectFault(culprit, sim.FaultCPUHog); err != nil {
		return err
	}
	if err := step(faultSecs); err != nil {
		return err
	}
	fmt.Printf("done; alarms above should name %s\n", names[culprit])
	return nil
}

// trainModel runs the training cluster and fits log-scaling sigmas plus
// k-means centroids over all slaves' metric vectors.
func trainModel(c *sim.Cluster) (*asdf.Model, error) {
	var series [][][]float64
	collect, err := newFleetCollector(c)
	if err != nil {
		return nil, err
	}
	for s := 0; s < trainSecs; s++ {
		c.Tick()
		rows, err := collect()
		if err != nil {
			return nil, err
		}
		if len(rows) == len(c.Slaves()) {
			series = append(series, rows)
		}
	}
	return asdf.TrainValidatedModel(series, 4, 7)
}

// newFleetCollector builds per-slave collectors through a throwaway ASDF
// engine so the example exercises the same public collection path the
// monitoring phase uses.
func newFleetCollector(c *sim.Cluster) (func() ([][]float64, error), error) {
	env := asdf.NewEnv()
	var b strings.Builder
	for _, n := range c.Slaves() {
		env.Procfs[n.Name] = n
		fmt.Fprintf(&b, "[sadc]\nid = s_%s\nnode = %s\nperiod = 1\n\n", n.Name, n.Name)
	}
	env.Clock = c.Now
	b.WriteString("[csv]\nid = sink\npath = " + os.DevNull + "\n")
	for _, n := range c.Slaves() {
		fmt.Fprintf(&b, "input[%s] = s_%s.output0\n", n.Name, n.Name)
	}
	cfg, err := asdf.ParseConfigString(b.String())
	if err != nil {
		return nil, err
	}
	engine, err := asdf.NewEngine(asdf.NewRegistry(env), cfg)
	if err != nil {
		return nil, err
	}
	slaves := c.Slaves()
	return func() ([][]float64, error) {
		if err := engine.Tick(c.Now()); err != nil {
			return nil, err
		}
		rows := make([][]float64, 0, len(slaves))
		for _, n := range slaves {
			outs := engine.OutputPortsOf("s_" + n.Name)
			if s, ok := outs[0].Last(); ok {
				rows = append(rows, s.Values)
			}
		}
		return rows, nil
	}, nil
}

// pipelineConfig renders the paper's Figure 3 black-box configuration for
// the given nodes.
func pipelineConfig(nodes []string, modelPath string, states int) string {
	var b strings.Builder
	for i, n := range nodes {
		fmt.Fprintf(&b, "[sadc]\nid = sadc%d\nnode = %s\nperiod = 1\n\n", i, n)
		fmt.Fprintf(&b, "[knn]\nid = onenn%d\nmodel_file = %s\ninput[in] = sadc%d.output0\n\n", i, modelPath, i)
		fmt.Fprintf(&b, "[ibuffer]\nid = buf%d\nsize = 10\ninput[input] = onenn%d.output0\n\n", i, i)
	}
	fmt.Fprintf(&b, "[analysis_bb]\nid = analysis\nthreshold = 55\nwindow = 60\nslide = 15\nstates = %d\n", states)
	for i := range nodes {
		fmt.Fprintf(&b, "input[l%d] = @buf%d\n", i, i)
	}
	b.WriteString("\n[print]\nid = BlackBoxAlarm\nlabel = ALARM\ninput[a] = @analysis\n")
	return b.String()
}
