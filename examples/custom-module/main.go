// Custom modules: ASDF beyond Hadoop. The paper stresses that the framework
// is "generally applicable to problem localization in any distributed
// system" (§2) — data sources and analyses are plug-ins. This example
// monitors a (synthetic) 4-replica web service with two custom modules
// written against the public API alone:
//
//   - latprobe: a data-collection module producing per-replica request
//     latency samples (in a real deployment this would issue probe RPCs);
//   - mediandev: a tiny peer-comparison analysis flagging the replica whose
//     latency deviates from the fleet median.
//
// One replica develops a latency regression mid-run; the custom pipeline
// fingerpoints it.
//
// Run with:
//
//	go run ./examples/custom-module
package main

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	asdf "github.com/asdf-project/asdf"
)

const (
	replicas   = 4
	healthySec = 120
	faultySec  = 240
	culprit    = 2
)

func main() {
	os.Exit(run())
}

func run() int {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "custom-module:", err)
		return 1
	}
	return 0
}

// webService is the toy system under diagnosis: per-replica latency with a
// switchable regression.
type webService struct {
	rng      *rand.Rand
	degraded int // replica index; -1 = healthy fleet
}

func (s *webService) probe(replica int) float64 {
	base := 20 + s.rng.NormFloat64()*3 // ~20ms +/- noise
	if replica == s.degraded {
		base += 35 // the regression: lock contention, say
	}
	if base < 1 {
		base = 1
	}
	return base
}

// latProbeModule is the custom data source: one output per replica.
type latProbeModule struct {
	svc  *webService
	outs []*asdf.OutputPort
}

func (m *latProbeModule) Init(ctx *asdf.InitContext) error {
	for i := 0; i < replicas; i++ {
		out, err := ctx.NewOutput(fmt.Sprintf("replica%d", i), asdf.Origin{
			Node:   fmt.Sprintf("replica%d", i),
			Source: "latprobe",
			Metric: "request_latency_ms",
		})
		if err != nil {
			return err
		}
		m.outs = append(m.outs, out)
	}
	return ctx.SchedulePeriodic(time.Second)
}

func (m *latProbeModule) Run(ctx *asdf.RunContext) error {
	if ctx.Reason != asdf.RunPeriodic {
		return nil
	}
	for i, out := range m.outs {
		out.Publish(asdf.Sample{Time: ctx.Now, Values: []float64{m.svc.probe(i)}})
	}
	return nil
}

// medianDevModule is the custom analysis: window means vs fleet median.
type medianDevModule struct {
	window    int
	threshold float64
	histories [][]float64
	outs      []*asdf.OutputPort
}

func (m *medianDevModule) Init(ctx *asdf.InitContext) error {
	var err error
	if m.window, err = ctx.Config().IntParam("window", 30); err != nil {
		return err
	}
	if m.threshold, err = ctx.Config().FloatParam("threshold", 10); err != nil {
		return err
	}
	inputs := ctx.Inputs()
	if len(inputs) < 3 {
		return fmt.Errorf("mediandev: need >= 3 peers, got %d", len(inputs))
	}
	m.histories = make([][]float64, len(inputs))
	for i, in := range inputs {
		origin := in.Origin()
		origin.Source = "mediandev"
		out, err := ctx.NewOutput(fmt.Sprintf("alarm%d", i), origin)
		if err != nil {
			return err
		}
		m.outs = append(m.outs, out)
	}
	return nil
}

func (m *medianDevModule) Run(ctx *asdf.RunContext) error {
	for i, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			m.histories[i] = append(m.histories[i], s.Scalar())
			if len(m.histories[i]) > m.window {
				m.histories[i] = m.histories[i][1:]
			}
		}
	}
	// Evaluate once every input has a full window.
	means := make([]float64, len(m.histories))
	for i, h := range m.histories {
		if len(h) < m.window {
			return nil
		}
		var sum float64
		for _, v := range h {
			sum += v
		}
		means[i] = sum / float64(len(h))
	}
	sorted := append([]float64(nil), means...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	median := sorted[len(sorted)/2]
	for i, mean := range means {
		if dev := mean - median; dev > m.threshold || dev < -m.threshold {
			m.outs[i].Publish(asdf.Sample{Time: ctx.Now, Values: []float64{1, dev}})
		}
	}
	return nil
}

func realMain() error {
	svc := &webService{rng: rand.New(rand.NewSource(99)), degraded: -1}

	env := asdf.NewEnv()
	env.AlarmWriter = os.Stdout
	reg := asdf.NewRegistry(env)
	reg.Register("latprobe", func() asdf.Module { return &latProbeModule{svc: svc} })
	reg.Register("mediandev", func() asdf.Module { return &medianDevModule{} })

	var b strings.Builder
	b.WriteString("[latprobe]\nid = probe\n\n")
	b.WriteString("[mediandev]\nid = analysis\nwindow = 30\nthreshold = 10\n")
	for i := 0; i < replicas; i++ {
		fmt.Fprintf(&b, "input[r%d] = probe.replica%d\n", i, i)
	}
	b.WriteString("\n[print]\nid = Alarm\nlabel = SLOW-REPLICA\ninput[a] = @analysis\n")

	cfg, err := asdf.ParseConfigString(b.String())
	if err != nil {
		return err
	}
	engine, err := asdf.NewEngine(reg, cfg)
	if err != nil {
		return err
	}

	now := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	step := func(seconds int) error {
		for i := 0; i < seconds; i++ {
			now = now.Add(time.Second)
			if err := engine.Tick(now); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Printf("probing %d healthy replicas for %d s...\n", replicas, healthySec)
	if err := step(healthySec); err != nil {
		return err
	}
	fmt.Printf(">>> replica%d develops a +35ms latency regression <<<\n", culprit)
	svc.degraded = culprit
	if err := step(faultySec); err != nil {
		return err
	}
	fmt.Printf("done; alarms above should name replica%d\n", culprit)
	return nil
}
