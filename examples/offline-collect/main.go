// Offline collection: ASDF as a pure data-collection and data-logging
// engine (§2.1: "ASDF should support offline analyses ... effectively
// turning itself into a data-collection and data-logging engine").
//
// Both data sources — black-box sadc metrics and white-box Hadoop log
// states — from every slave of a simulated cluster are logged to CSV files
// for later post-processing; no analysis modules are attached.
//
// Run with:
//
//	go run ./examples/offline-collect
package main

import (
	"fmt"
	"os"
	"strings"

	asdf "github.com/asdf-project/asdf"
	"github.com/asdf-project/asdf/sim"
)

const (
	slaves   = 4
	duration = 120
)

func main() {
	os.Exit(run())
}

func run() int {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "offline-collect:", err)
		return 1
	}
	return 0
}

func realMain() error {
	cluster, err := sim.NewCluster(sim.DefaultConfig(slaves, 2026))
	if err != nil {
		return err
	}

	env := asdf.NewEnv()
	names := make([]string, slaves)
	for i, n := range cluster.Slaves() {
		names[i] = n.Name
		env.Procfs[n.Name] = n
		env.TTLogs[n.Name] = n.TaskTrackerLog()
		env.DNLogs[n.Name] = n.DataNodeLog()
	}
	env.Clock = cluster.Now

	dir, err := os.MkdirTemp(".", "asdf-trace-")
	if err != nil {
		return err
	}

	var b strings.Builder
	for i, n := range names {
		fmt.Fprintf(&b, "[sadc]\nid = sadc%d\nnode = %s\nperiod = 1\n\n", i, n)
	}
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl_tt\nkind = tasktracker\nnodes = %s\nperiod = 1\n\n",
		strings.Join(names, ","))
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl_dn\nkind = datanode\nnodes = %s\nperiod = 1\n\n",
		strings.Join(names, ","))

	fmt.Fprintf(&b, "[csv]\nid = blackbox_log\npath = %s/blackbox.csv\n", dir)
	for i := range names {
		fmt.Fprintf(&b, "input[m%d] = sadc%d.output0\n", i, i)
	}
	fmt.Fprintf(&b, "\n[csv]\nid = whitebox_log\npath = %s/whitebox.csv\n", dir)
	b.WriteString("input[tt] = @hl_tt\ninput[dn] = @hl_dn\n")

	cfg, err := asdf.ParseConfigString(b.String())
	if err != nil {
		return err
	}
	engine, err := asdf.NewEngine(asdf.NewRegistry(env), cfg)
	if err != nil {
		return err
	}

	for i := 0; i < duration; i++ {
		cluster.Tick()
		if err := engine.Tick(cluster.Now()); err != nil {
			return err
		}
	}
	if err := engine.Flush(cluster.Now()); err != nil {
		return err
	}

	for _, f := range []string{"blackbox.csv", "whitebox.csv"} {
		info, err := os.Stat(dir + "/" + f)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s/%s (%d bytes)\n", dir, f, info.Size())
	}
	fmt.Printf("collected %d s of black-box and white-box data from %d slaves\n", duration, slaves)
	return nil
}
