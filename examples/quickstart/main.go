// Quickstart: monitor one node of a simulated Hadoop cluster with the sadc
// black-box collector and print every sample — the smallest complete ASDF
// pipeline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	asdf "github.com/asdf-project/asdf"
	"github.com/asdf-project/asdf/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	// A small simulated cluster stands in for the system under diagnosis.
	cluster, err := sim.NewCluster(sim.DefaultConfig(3, 42))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// The Env tells the built-in modules where to find data sources:
	// here, slave01's /proc provider, with virtual time as the clock.
	env := asdf.NewEnv()
	env.Procfs["slave01"] = cluster.Slave(0)
	env.Clock = cluster.Now
	env.AlarmWriter = os.Stdout

	cfg, err := asdf.ParseConfigString(`
# Collect slave01's OS performance counters once per second...
[sadc]
id = collector
node = slave01
period = 1

# ...and print every sample.
[print]
id = sink
label = sample
only_nonzero = false
input[metrics] = collector.output0
`)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	engine, err := asdf.NewEngine(asdf.NewRegistry(env), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Step mode: advance the cluster and the engine in lockstep through
	// ten seconds of virtual time. (Engine.Run drives the same pipeline
	// from the wall clock for live deployments.)
	for i := 0; i < 10; i++ {
		cluster.Tick()
		if err := engine.Tick(cluster.Now()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	fmt.Println("quickstart: collected 10 seconds of black-box metrics from slave01")
	return 0
}
