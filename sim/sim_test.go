package sim_test

import (
	"testing"
	"time"

	"github.com/asdf-project/asdf/sim"
)

// TestPublicSimulatorSurface exercises the public simulator API end to end:
// build, run, inject, mitigate.
func TestPublicSimulatorSurface(t *testing.T) {
	cluster, err := sim.NewCluster(sim.DefaultConfig(4, 9))
	if err != nil {
		t.Fatal(err)
	}
	cluster.RunFor(3 * time.Minute)
	if cluster.TasksCompleted() == 0 {
		t.Error("no tasks completed")
	}
	if len(sim.AllFaults) != 12 {
		t.Errorf("AllFaults = %d, want 12", len(sim.AllFaults))
	}
	if len(sim.TableTwoFaults) != 6 {
		t.Errorf("TableTwoFaults = %d, want 6", len(sim.TableTwoFaults))
	}
	if err := cluster.InjectFault(1, sim.FaultCPUHog); err != nil {
		t.Fatal(err)
	}
	if got := cluster.FaultyNodes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("FaultyNodes = %v", got)
	}
	if err := cluster.BlacklistByName(cluster.Slave(1).Name); err != nil {
		t.Fatal(err)
	}
	if !cluster.Blacklisted(1) {
		t.Error("blacklist through the public API failed")
	}
	node := cluster.Slave(0)
	snap, err := node.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stat.CPUTotal.Total() == 0 {
		t.Error("public node snapshot empty")
	}
	if node.TaskTrackerLog().Len() == 0 {
		t.Error("public node has no log lines")
	}
}
