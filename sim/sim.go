// Package sim exposes the Hadoop cluster simulator as a public testbed.
//
// The simulator is the substrate ASDF's evaluation runs on: a
// jobtracker/namenode master with N tasktracker/datanode slaves executing a
// GridMix-like workload over simulated HDFS, in one-second virtual-time
// ticks. Each slave exposes exactly the surfaces a real deployment exposes
// — /proc-style performance counters (a procfs provider for the sadc
// collector) and natively formatted Hadoop logs (for the hadoop_log
// parser) — plus fault-injection hooks for the six documented Hadoop
// problems of the paper's Table 2 and six further production-shaped
// degradations (memory leak, asymmetric partition, noisy neighbor, disk
// degradation, GC pauses, straggler cascade).
package sim

import (
	"github.com/asdf-project/asdf/internal/hadoopsim"
)

// Cluster is a simulated Hadoop cluster; Node is one slave.
type (
	Cluster = hadoopsim.Cluster
	Node    = hadoopsim.Node
	Config  = hadoopsim.Config
)

// FaultKind selects an injectable fault.
type FaultKind = hadoopsim.FaultKind

// The injectable faults: the paper's Table 2, then the production-shaped
// extensions.
const (
	FaultNone       = hadoopsim.FaultNone
	FaultCPUHog     = hadoopsim.FaultCPUHog
	FaultDiskHog    = hadoopsim.FaultDiskHog
	FaultPacketLoss = hadoopsim.FaultPacketLoss
	FaultHang1036   = hadoopsim.FaultHang1036
	FaultHang1152   = hadoopsim.FaultHang1152
	FaultHang2080   = hadoopsim.FaultHang2080

	FaultMemLeak       = hadoopsim.FaultMemLeak
	FaultNetPartition  = hadoopsim.FaultNetPartition
	FaultNoisyNeighbor = hadoopsim.FaultNoisyNeighbor
	FaultDiskDegrade   = hadoopsim.FaultDiskDegrade
	FaultGCPause       = hadoopsim.FaultGCPause
	FaultStraggler     = hadoopsim.FaultStraggler
)

// AllFaults lists the twelve injectable faults: Table 2's six first, then
// the production-shaped extensions. TableTwoFaults is just the paper's six.
var (
	AllFaults      = hadoopsim.AllFaults
	TableTwoFaults = hadoopsim.TableTwoFaults
)

// DefaultConfig mirrors the paper's environment (EC2 Large nodes, Hadoop
// 0.18 defaults), scaled for simulation.
func DefaultConfig(slaves int, seed int64) Config {
	return hadoopsim.DefaultConfig(slaves, seed)
}

// NewCluster builds a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	return hadoopsim.NewCluster(cfg)
}
