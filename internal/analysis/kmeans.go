// Package analysis implements ASDF's diagnosis algorithms: offline k-means
// training of workload-state centroids, 1-nearest-neighbour state
// classification with log scaling (§4.5), the black-box windowed
// peer-comparison fingerpointer (§4.5), and the white-box peer-comparison
// fingerpointer over Hadoop log states (§4.4).
package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/asdf-project/asdf/internal/stats"
)

// LogScaler applies the paper's black-box metric transform: each raw metric
// x becomes log(1+x)/sigma, where sigma is the standard deviation of
// log(1+x) over fault-free training data (§4.5).
type LogScaler struct {
	// Sigma holds the per-dimension training standard deviations.
	Sigma []float64
}

// TrainScaler computes a LogScaler from fault-free training points.
func TrainScaler(points [][]float64) (*LogScaler, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("analysis: no training points for scaler")
	}
	dim := len(points[0])
	accs := make([]stats.Welford, dim)
	for _, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("analysis: training point dimension %d, want %d", len(p), dim)
		}
		for d, x := range p {
			accs[d].Add(math.Log1p(math.Max(x, 0)))
		}
	}
	sigma := make([]float64, dim)
	for d := range accs {
		sigma[d] = accs[d].StdDev()
	}
	return &LogScaler{Sigma: sigma}, nil
}

// Apply transforms one raw metric vector.
func (s *LogScaler) Apply(x []float64) ([]float64, error) {
	return stats.LogScale(x, s.Sigma)
}

// ApplyInto transforms one raw metric vector into dst without allocating;
// dst must have the input's length and may alias x.
func (s *LogScaler) ApplyInto(dst, x []float64) error {
	return stats.LogScaleInto(dst, x, s.Sigma)
}

// ApplyAll transforms a batch of raw metric vectors.
func (s *LogScaler) ApplyAll(points [][]float64) ([][]float64, error) {
	out := make([][]float64, len(points))
	for i, p := range points {
		v, err := s.Apply(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// KMeans clusters points into k centroids with Lloyd's algorithm and
// k-means++-style seeding, deterministically from seed. Inputs should
// already be scaled. It returns the centroids.
func KMeans(points [][]float64, k int, seed int64, maxIters int) ([][]float64, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("analysis: kmeans: no points")
	}
	if k <= 0 {
		return nil, fmt.Errorf("analysis: kmeans: k must be positive, got %d", k)
	}
	if k > len(points) {
		k = len(points)
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("analysis: kmeans: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding: first centroid uniform, the rest weighted by
	// squared distance to the nearest chosen centroid.
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var sum float64
		for i, p := range points {
			_, dist := nearest(p, centroids)
			d2[i] = dist * dist
			sum += d2[i]
		}
		if sum == 0 {
			// All points coincide with existing centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), points[rng.Intn(len(points))]...))
			continue
		}
		r := rng.Float64() * sum
		pick := 0
		for i, w := range d2 {
			r -= w
			if r <= 0 {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}

	assign := make([]int, len(points))
	flat := make([]float64, k*dim) // row-major centroid matrix, rebuilt per iteration
	for iter := 0; iter < maxIters; iter++ {
		for c, cen := range centroids {
			copy(flat[c*dim:(c+1)*dim], cen)
		}
		changed := assignPoints(points, flat, assign)
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, len(centroids))
		sums := make([][]float64, len(centroids))
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, x := range p {
				sums[c][d] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centroids[c], points[rng.Intn(len(points))])
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	return centroids, nil
}

// nearestFlat returns the index of the closest centroid in a row-major
// k×dim matrix. It mirrors nearest exactly (same accumulation order, same
// strict-less tie-break), so the two agree bit-for-bit.
func nearestFlat(p, flat []float64) int {
	dim := len(p)
	best := 0
	bestD := math.Inf(1)
	for i, off := 0, 0; off+dim <= len(flat); i, off = i+1, off+dim {
		row := flat[off : off+dim]
		var s float64
		for d, x := range p {
			diff := x - row[d]
			s += diff * diff
		}
		if s < bestD {
			bestD = s
			best = i
		}
	}
	return best
}

// assignPoints writes each point's nearest-centroid index into assign and
// reports whether any assignment changed, splitting the points across up to
// GOMAXPROCS goroutines. Each point's computation is independent and the
// only writes are per-point integers, so the result is bit-identical to the
// serial loop regardless of worker count or chunking.
func assignPoints(points [][]float64, flat []float64, assign []int) bool {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		changed := false
		for i, p := range points {
			if a := nearestFlat(p, flat); a != assign[i] {
				assign[i] = a
				changed = true
			}
		}
		return changed
	}
	var changed atomic.Bool
	var wg sync.WaitGroup
	chunk := (len(points) + workers - 1) / workers
	for lo := 0; lo < len(points); lo += chunk {
		hi := lo + chunk
		if hi > len(points) {
			hi = len(points)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ch := false
			for i := lo; i < hi; i++ {
				if a := nearestFlat(points[i], flat); a != assign[i] {
					assign[i] = a
					ch = true
				}
			}
			if ch {
				changed.Store(true)
			}
		}(lo, hi)
	}
	wg.Wait()
	return changed.Load()
}

// nearest returns the index of and distance to the closest centroid.
func nearest(p []float64, centroids [][]float64) (int, float64) {
	best := 0
	bestD := math.Inf(1)
	for i, c := range centroids {
		var s float64
		for d := range p {
			diff := p[d] - c[d]
			s += diff * diff
		}
		if s < bestD {
			bestD = s
			best = i
		}
	}
	return best, math.Sqrt(bestD)
}

// NearestCentroid classifies a scaled point to its 1-NN centroid index
// (the knn module with k=1, §3.6).
func NearestCentroid(p []float64, centroids [][]float64) (int, error) {
	if len(centroids) == 0 {
		return 0, fmt.Errorf("analysis: no centroids")
	}
	for i, c := range centroids {
		if len(c) != len(p) {
			return 0, fmt.Errorf("analysis: centroid %d has dimension %d, point has %d", i, len(c), len(p))
		}
	}
	idx, _ := nearest(p, centroids)
	return idx, nil
}
