package analysis

import (
	"fmt"
	"math"
	"sort"
)

// TrainOptions parameterizes validated model training.
type TrainOptions struct {
	// K is the number of centroids.
	K int
	// Seed drives k-means restarts deterministically.
	Seed int64
	// Restarts is the number of k-means candidates (default 8).
	Restarts int
	// WindowSize and WindowSlide configure the validation replay
	// (defaults 60 / WindowSize/4).
	WindowSize  int
	WindowSlide int
	// MetricIndexes optionally selects which raw-vector dimensions to
	// train on (the black-box metric selection); nil uses all.
	MetricIndexes []int
	// Perturb, when set, is the synthetic sensitivity probe: it maps one
	// node's raw vector to a faulty-looking one (e.g. a CPU hog's). The
	// winning candidate maximizes the margin between the perturbed node's
	// anomaly score and the fault-free score tail, which rejects models
	// that are quiet only because they are insensitive.
	Perturb func(raw []float64) []float64
}

// TrainValidatedModel trains the black-box model with model selection in
// the spirit of the paper's calibration (§4.9: parameters are "chosen to
// minimize the false positive rate over fault-free training data"): k-means
// is restarted several times, each candidate is validated by replaying the
// fault-free training series through the black-box peer comparison, and —
// when a perturbation probe is supplied — by checking that a synthetically
// perturbed node separates from its peers. The candidate with the best
// sensitivity-to-false-positive margin wins.
//
// series is the per-second, per-node training data: series[s][n] is node
// n's raw metric vector at second s. All nodes are fault-free.
func TrainValidatedModel(series [][][]float64, opts TrainOptions) (*Model, error) {
	if len(series) == 0 || len(series[0]) == 0 {
		return nil, fmt.Errorf("analysis: empty training series")
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("analysis: K must be positive")
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 8
	}
	if opts.WindowSize <= 0 {
		opts.WindowSize = 60
	}
	if opts.WindowSlide <= 0 {
		opts.WindowSlide = opts.WindowSize / 4
	}
	nodes := len(series[0])

	// Flatten (projecting through the metric selection) for scaler and
	// k-means training.
	projector := &Model{MetricIndexes: opts.MetricIndexes}
	var points [][]float64
	for _, row := range series {
		if len(row) != nodes {
			return nil, fmt.Errorf("analysis: ragged training series")
		}
		for _, vec := range row {
			p, err := projector.Project(vec)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
	}
	scaler, err := TrainScaler(points)
	if err != nil {
		return nil, err
	}
	scaled, err := scaler.ApplyAll(points)
	if err != nil {
		return nil, err
	}

	// Synthetic-fault copy of the series: node 0 perturbed.
	var perturbed [][][]float64
	if opts.Perturb != nil {
		perturbed = make([][][]float64, len(series))
		for s, row := range series {
			prow := make([][]float64, len(row))
			copy(prow, row)
			prow[0] = opts.Perturb(append([]float64(nil), row[0]...))
			perturbed[s] = prow
		}
	}

	var best *Model
	bestMargin := math.Inf(-1)
	bestTail := math.Inf(1)
	for r := 0; r < opts.Restarts; r++ {
		centroids, err := KMeans(scaled, opts.K, opts.Seed+int64(r)*7919, 100)
		if err != nil {
			return nil, err
		}
		candidate := &Model{Sigma: scaler.Sigma, Centroids: centroids, MetricIndexes: opts.MetricIndexes}
		tail, _, err := replayScores(series, candidate, nodes, opts.WindowSize, opts.WindowSlide)
		if err != nil {
			return nil, err
		}
		margin := -tail
		if perturbed != nil {
			_, victimMedian, err := replayScores(perturbed, candidate, nodes, opts.WindowSize, opts.WindowSlide)
			if err != nil {
				return nil, err
			}
			margin = victimMedian - tail
		}
		if margin > bestMargin || (margin == bestMargin && tail < bestTail) {
			bestMargin = margin
			bestTail = tail
			best = candidate
		}
	}
	return best, nil
}

// replayScores replays a series through the black-box analysis with an
// infinite threshold and returns the 99th percentile over all nodes' window
// scores plus the median of node 0's scores.
func replayScores(series [][][]float64, m *Model, nodes, windowSize, windowSlide int) (tail, node0Median float64, err error) {
	bb, err := NewBlackBox(BlackBoxConfig{
		Nodes:       nodes,
		NumStates:   m.NumStates(),
		WindowSize:  windowSize,
		WindowSlide: windowSlide,
		Threshold:   math.Inf(1),
	})
	if err != nil {
		return 0, 0, err
	}
	var all, node0 []float64
	states := make([]int, nodes)
	for _, row := range series {
		for n, vec := range row {
			s, err := m.Classify(vec)
			if err != nil {
				return 0, 0, err
			}
			states[n] = s
		}
		res, err := bb.Observe(states)
		if err != nil {
			return 0, 0, err
		}
		if res != nil {
			all = append(all, res.Scores...)
			node0 = append(node0, res.Scores[0])
		}
	}
	if len(all) == 0 {
		// Series shorter than one window: neutral scores.
		return 0, 0, nil
	}
	sort.Float64s(all)
	sort.Float64s(node0)
	return all[int(0.99*float64(len(all)-1))], node0[len(node0)/2], nil
}
