package analysis

import (
	"fmt"

	"github.com/asdf-project/asdf/internal/stats"
)

// WindowResult is one fingerpointing verdict covering a window of samples.
type WindowResult struct {
	// EndIndex is the (0-based) index of the last sample in the window.
	EndIndex int
	// Scores holds the per-node anomaly scores: the L1 distance of the
	// node's state vector from the median state vector (black-box), or
	// the maximum metric deviation in threshold units (white-box).
	Scores []float64
	// Flagged marks the fingerpointed nodes.
	Flagged []bool
}

// AnyFlagged reports whether any node was fingerpointed.
func (r *WindowResult) AnyFlagged() bool {
	for _, f := range r.Flagged {
		if f {
			return true
		}
	}
	return false
}

// BlackBoxConfig parameterizes the black-box fingerpointer (§4.5).
type BlackBoxConfig struct {
	// Nodes is the number of peer slave nodes.
	Nodes int
	// NumStates is the number of trained centroids ("states").
	NumStates int
	// WindowSize is the number of per-second samples per window
	// (the paper uses 60).
	WindowSize int
	// WindowSlide is how many samples consecutive windows are offset by;
	// WindowSize-WindowSlide samples overlap. Defaults to WindowSize
	// (non-overlapping) when zero.
	WindowSlide int
	// Threshold is the L1 distance above which a node is flagged
	// (swept 0..70 in Figure 6(a); the paper picks 60).
	Threshold float64
}

// BlackBox implements the black-box analysis: per node, the window's
// samples are summarized as a StateVector — a histogram of 1-NN state
// assignments — and a node is flagged when the L1 distance between its
// StateVector and the component-wise median StateVector across nodes
// exceeds the threshold.
type BlackBox struct {
	cfg BlackBoxConfig
	// ring of per-sample state assignments: ring[i][n] is node n's state
	// at sample i of the current window.
	ring        [][]int
	filled      int
	next        int
	samples     int
	sinceWindow int

	// pooled per-evaluation buffers: with a sliding window a new evaluation
	// fires every WindowSlide samples, so the per-node state histograms and
	// median scratch are reused rather than reallocated each time. Only the
	// returned WindowResult (which escapes to the caller) is fresh.
	vecs   [][]float64 // Nodes × NumStates histograms
	median []float64   // NumStates
	medCol []float64   // Nodes; sorting scratch for the median
}

// NewBlackBox creates the analyzer. It returns an error for nonsensical
// configurations.
func NewBlackBox(cfg BlackBoxConfig) (*BlackBox, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("analysis: blackbox: Nodes must be positive")
	}
	if cfg.NumStates <= 0 {
		return nil, fmt.Errorf("analysis: blackbox: NumStates must be positive")
	}
	if cfg.WindowSize <= 0 {
		return nil, fmt.Errorf("analysis: blackbox: WindowSize must be positive")
	}
	if cfg.WindowSlide <= 0 {
		cfg.WindowSlide = cfg.WindowSize
	}
	if cfg.WindowSlide > cfg.WindowSize {
		return nil, fmt.Errorf("analysis: blackbox: WindowSlide %d exceeds WindowSize %d",
			cfg.WindowSlide, cfg.WindowSize)
	}
	b := &BlackBox{
		cfg:    cfg,
		ring:   make([][]int, cfg.WindowSize),
		vecs:   make([][]float64, cfg.Nodes),
		median: make([]float64, cfg.NumStates),
		medCol: make([]float64, cfg.Nodes),
	}
	for i := range b.ring {
		b.ring[i] = make([]int, cfg.Nodes)
	}
	for n := range b.vecs {
		b.vecs[n] = make([]float64, cfg.NumStates)
	}
	return b, nil
}

// Config returns the analyzer's configuration.
func (b *BlackBox) Config() BlackBoxConfig { return b.cfg }

// Observe records one per-second round of state assignments (states[n] is
// the 1-NN centroid index for node n) and returns a WindowResult when a
// window completes, nil otherwise.
func (b *BlackBox) Observe(states []int) (*WindowResult, error) {
	if len(states) != b.cfg.Nodes {
		return nil, fmt.Errorf("analysis: blackbox: got %d states, want %d", len(states), b.cfg.Nodes)
	}
	for n, s := range states {
		if s < 0 || s >= b.cfg.NumStates {
			return nil, fmt.Errorf("analysis: blackbox: node %d state %d out of range [0,%d)",
				n, s, b.cfg.NumStates)
		}
	}
	copy(b.ring[b.next], states)
	b.next = (b.next + 1) % b.cfg.WindowSize
	if b.filled < b.cfg.WindowSize {
		b.filled++
	}
	b.samples++
	b.sinceWindow++
	if b.filled < b.cfg.WindowSize || b.sinceWindow < b.cfg.WindowSlide {
		return nil, nil
	}
	b.sinceWindow = 0
	return b.evaluate(), nil
}

// evaluate computes StateVectors, the median, and L1 flags for the current
// full window.
func (b *BlackBox) evaluate() *WindowResult {
	for n := range b.vecs {
		v := b.vecs[n]
		for d := range v {
			v[d] = 0
		}
	}
	for i := 0; i < b.cfg.WindowSize; i++ {
		for n, s := range b.ring[i] {
			b.vecs[n][s]++
		}
	}
	if err := stats.MedianVectorInto(b.median, b.medCol, b.vecs); err != nil {
		// Unreachable: the pooled buffers are sized by the constructor.
		panic(err)
	}
	res := &WindowResult{
		EndIndex: b.samples - 1,
		Scores:   make([]float64, b.cfg.Nodes),
		Flagged:  make([]bool, b.cfg.Nodes),
	}
	for n, v := range b.vecs {
		d, err := stats.L1(v, b.median)
		if err != nil {
			panic(err)
		}
		res.Scores[n] = d
		res.Flagged[n] = d > b.cfg.Threshold
	}
	return res
}
