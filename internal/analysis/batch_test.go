package analysis

import (
	"math/rand"
	"testing"
)

// benchModel builds a deterministic model of the given dimensionality and
// state count for batch tests.
func batchTestModel(dim, states int, metricIndexes []int) *Model {
	rng := rand.New(rand.NewSource(11))
	d := dim
	if len(metricIndexes) > 0 {
		d = len(metricIndexes)
	}
	m := &Model{
		Sigma:         make([]float64, d),
		Centroids:     make([][]float64, states),
		MetricIndexes: metricIndexes,
	}
	for i := range m.Sigma {
		m.Sigma[i] = 0.5 + rng.Float64()
	}
	for s := range m.Centroids {
		m.Centroids[s] = make([]float64, d)
		for i := range m.Centroids[s] {
			m.Centroids[s][i] = rng.Float64() * 4
		}
	}
	return m
}

func batchTestMatrix(rows, dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	raw := make([]float64, rows*dim)
	for i := range raw {
		raw[i] = rng.Float64() * 100
	}
	return raw
}

// TestBatchClassifierMatchesPerRow is the bit-identity contract: the batched
// kernel must assign exactly the state ClassifyInto assigns, for every row,
// across worker counts, block sizes (including ones that do not divide the
// row count), and models with metric selection.
func TestBatchClassifierMatchesPerRow(t *testing.T) {
	cases := []struct {
		name    string
		rows    int
		dim     int
		workers int
		block   int
		indexes []int
	}{
		{name: "serial", rows: 17, dim: 8, workers: 1, block: 4},
		{name: "parallel-even", rows: 64, dim: 8, workers: 4, block: 16},
		{name: "parallel-ragged", rows: 67, dim: 8, workers: 4, block: 16},
		{name: "block-bigger-than-rows", rows: 5, dim: 8, workers: 4, block: 64},
		{name: "one-row-blocks", rows: 33, dim: 8, workers: 8, block: 1},
		{name: "metric-selection", rows: 50, dim: 12, workers: 3, block: 7, indexes: []int{0, 3, 7, 11}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model := batchTestModel(tc.dim, 6, tc.indexes)
			raw := batchTestMatrix(tc.rows, tc.dim, 21)

			c := NewBatchClassifier(model, tc.workers, tc.block)
			defer c.Close()
			got := make([]int, tc.rows)
			if err := c.ClassifyMatrix(raw, tc.rows, tc.dim, got); err != nil {
				t.Fatalf("ClassifyMatrix: %v", err)
			}

			scratch := make([]float64, model.ScratchLen(raw[:tc.dim]))
			for i := 0; i < tc.rows; i++ {
				want, err := model.ClassifyInto(raw[i*tc.dim:(i+1)*tc.dim], scratch)
				if err != nil {
					t.Fatalf("ClassifyInto row %d: %v", i, err)
				}
				if got[i] != want {
					t.Fatalf("row %d: batched state %d, per-row state %d", i, got[i], want)
				}
			}

			// Reuse across ticks: a second call over different data must
			// stand alone (no state bleeding between calls).
			raw2 := batchTestMatrix(tc.rows, tc.dim, 22)
			if err := c.ClassifyMatrix(raw2, tc.rows, tc.dim, got); err != nil {
				t.Fatalf("second ClassifyMatrix: %v", err)
			}
			for i := 0; i < tc.rows; i++ {
				want, err := model.ClassifyInto(raw2[i*tc.dim:(i+1)*tc.dim], scratch)
				if err != nil {
					t.Fatalf("ClassifyInto row %d: %v", i, err)
				}
				if got[i] != want {
					t.Fatalf("second call row %d: batched %d, per-row %d", i, got[i], want)
				}
			}
		})
	}
}

func TestBatchClassifierValidation(t *testing.T) {
	model := batchTestModel(4, 3, nil)
	c := NewBatchClassifier(model, 2, 8)
	defer c.Close()
	dst := make([]int, 4)
	if err := c.ClassifyMatrix(nil, 0, 4, nil); err != nil {
		t.Fatalf("zero rows should be a no-op, got %v", err)
	}
	if err := c.ClassifyMatrix(make([]float64, 16), 4, 0, dst); err == nil {
		t.Fatal("want error for non-positive dimension")
	}
	if err := c.ClassifyMatrix(make([]float64, 15), 4, 4, dst); err == nil {
		t.Fatal("want error for short matrix")
	}
	if err := c.ClassifyMatrix(make([]float64, 16), 4, 4, make([]int, 3)); err == nil {
		t.Fatal("want error for short dst")
	}
	// A model/dimension mismatch must surface as an error, not a panic,
	// and must not poison later calls.
	if err := c.ClassifyMatrix(make([]float64, 4*7), 4, 7, dst); err == nil {
		t.Fatal("want error for dimension mismatch against the model")
	}
	raw := batchTestMatrix(4, 4, 5)
	if err := c.ClassifyMatrix(raw, 4, 4, dst); err != nil {
		t.Fatalf("call after failed call: %v", err)
	}
}

// TestBatchClassifierNoAllocs gates the steady state: after the first
// (warm-up) call, classifying a 1024-node matrix allocates nothing.
func TestBatchClassifierNoAllocs(t *testing.T) {
	const rows, dim = 1024, 16
	model := batchTestModel(dim, 8, nil)
	raw := batchTestMatrix(rows, dim, 31)
	dst := make([]int, rows)
	c := NewBatchClassifier(model, 4, 64)
	defer c.Close()
	if err := c.ClassifyMatrix(raw, rows, dim, dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := c.ClassifyMatrix(raw, rows, dim, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ClassifyMatrix allocates %v per run, want 0", allocs)
	}
}

// BenchmarkBatchClassify is the CI-gated hot path: one tick's worth of
// fleet-wide classification. The bench-smoke job greps for 0 allocs/op.
func BenchmarkBatchClassify(b *testing.B) {
	const rows, dim = 1024, 16
	model := batchTestModel(dim, 8, nil)
	raw := batchTestMatrix(rows, dim, 41)
	dst := make([]int, rows)
	c := NewBatchClassifier(model, 4, 64)
	defer c.Close()
	if err := c.ClassifyMatrix(raw, rows, dim, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ClassifyMatrix(raw, rows, dim, dst); err != nil {
			b.Fatal(err)
		}
	}
}
