package analysis

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrainScalerAndApply(t *testing.T) {
	points := [][]float64{
		{0, 100},
		{math.E - 1, 200},
		{math.E*math.E - 1, 300},
	}
	s, err := TrainScaler(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sigma) != 2 {
		t.Fatalf("Sigma = %v", s.Sigma)
	}
	// log1p of column 0 is {0, 1, 2} -> population sd = sqrt(2/3).
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(s.Sigma[0]-want) > 1e-9 {
		t.Errorf("Sigma[0] = %v, want %v", s.Sigma[0], want)
	}
	out, err := s.Apply([]float64{math.E - 1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1/want) > 1e-9 {
		t.Errorf("Apply = %v", out)
	}
	batch, err := s.ApplyAll(points)
	if err != nil || len(batch) != 3 {
		t.Errorf("ApplyAll = %v, %v", batch, err)
	}
}

func TestTrainScalerErrors(t *testing.T) {
	if _, err := TrainScaler(nil); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := TrainScaler([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged training set should error")
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var points [][]float64
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	for i := 0; i < 300; i++ {
		c := centers[i%3]
		points = append(points, []float64{
			c[0] + rng.NormFloat64()*0.5,
			c[1] + rng.NormFloat64()*0.5,
		})
	}
	got, err := KMeans(points, 3, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d centroids", len(got))
	}
	// Every true center should have a learned centroid within 1.0.
	for _, c := range centers {
		best := math.Inf(1)
		for _, g := range got {
			d := math.Hypot(g[0]-c[0], g[1]-c[1])
			if d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Errorf("no centroid near %v (closest at distance %v)", c, best)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var points [][]float64
	for i := 0; i < 100; i++ {
		points = append(points, []float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	a, err := KMeans(points, 5, 42, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 5, 42, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatalf("same seed diverged at centroid %d dim %d", i, d)
			}
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, err := KMeans(nil, 3, 1, 10); err == nil {
		t.Error("no points should error")
	}
	if _, err := KMeans([][]float64{{1}}, 0, 1, 10); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 1, 10); err == nil {
		t.Error("ragged points should error")
	}
	// k > len(points) clamps.
	got, err := KMeans([][]float64{{1, 1}, {2, 2}}, 10, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("got %d centroids, want clamped 2", len(got))
	}
	// Identical points converge without dividing by zero.
	same := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	got, err = KMeans(same, 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range got {
		if c[0] != 5 || c[1] != 5 {
			t.Errorf("centroid = %v, want (5,5)", c)
		}
	}
}

func TestNearestCentroid(t *testing.T) {
	cents := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	idx, err := NearestCentroid([]float64{7, 1}, cents)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("NearestCentroid = %d, want 1", idx)
	}
	if _, err := NearestCentroid([]float64{1}, cents); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := NearestCentroid([]float64{1}, nil); err == nil {
		t.Error("no centroids should error")
	}
}

func TestBlackBoxFlagsDivergentNode(t *testing.T) {
	bb, err := NewBlackBox(BlackBoxConfig{
		Nodes: 5, NumStates: 3, WindowSize: 10, Threshold: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var res *WindowResult
	for i := 0; i < 10; i++ {
		// Nodes 0-3 cycle between states 0 and 1; node 4 is stuck in 2.
		s := i % 2
		states := []int{s, s, s, s, 2}
		r, err := bb.Observe(states)
		if err != nil {
			t.Fatal(err)
		}
		if r != nil {
			res = r
		}
	}
	if res == nil {
		t.Fatal("no window produced after WindowSize samples")
	}
	for n := 0; n < 4; n++ {
		if res.Flagged[n] {
			t.Errorf("healthy node %d flagged (score %v)", n, res.Scores[n])
		}
	}
	if !res.Flagged[4] {
		t.Errorf("divergent node not flagged (score %v)", res.Scores[4])
	}
	// Node 4's StateVector is (0,0,10) vs median (5,5,0): L1 = 20.
	if res.Scores[4] != 20 {
		t.Errorf("score = %v, want 20", res.Scores[4])
	}
	if !res.AnyFlagged() {
		t.Error("AnyFlagged should be true")
	}
}

func TestBlackBoxNoFalsePositiveWhenHomogeneous(t *testing.T) {
	bb, err := NewBlackBox(BlackBoxConfig{
		Nodes: 4, NumStates: 4, WindowSize: 20, Threshold: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		// All nodes draw from the same distribution.
		states := make([]int, 4)
		base := rng.Intn(4)
		for n := range states {
			states[n] = base
			if rng.Float64() < 0.2 {
				states[n] = rng.Intn(4)
			}
		}
		r, err := bb.Observe(states)
		if err != nil {
			t.Fatal(err)
		}
		if r != nil && r.AnyFlagged() {
			t.Errorf("false positive: %v", r.Scores)
		}
	}
}

func TestBlackBoxWindowSlide(t *testing.T) {
	bb, err := NewBlackBox(BlackBoxConfig{
		Nodes: 2, NumStates: 2, WindowSize: 10, WindowSlide: 5, Threshold: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var windows []int
	for i := 0; i < 30; i++ {
		r, err := bb.Observe([]int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if r != nil {
			windows = append(windows, r.EndIndex)
		}
	}
	// Windows complete at samples 10, 15, 20, 25, 30 -> EndIndex 9,14,19,24,29.
	want := []int{9, 14, 19, 24, 29}
	if len(windows) != len(want) {
		t.Fatalf("windows at %v, want %v", windows, want)
	}
	for i := range want {
		if windows[i] != want[i] {
			t.Errorf("window %d ends at %d, want %d", i, windows[i], want[i])
		}
	}
}

func TestBlackBoxValidation(t *testing.T) {
	if _, err := NewBlackBox(BlackBoxConfig{Nodes: 0, NumStates: 1, WindowSize: 1}); err == nil {
		t.Error("zero nodes should error")
	}
	if _, err := NewBlackBox(BlackBoxConfig{Nodes: 1, NumStates: 1, WindowSize: 5, WindowSlide: 6}); err == nil {
		t.Error("slide > size should error")
	}
	bb, err := NewBlackBox(BlackBoxConfig{Nodes: 2, NumStates: 2, WindowSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bb.Observe([]int{0}); err == nil {
		t.Error("wrong node count should error")
	}
	if _, err := bb.Observe([]int{0, 5}); err == nil {
		t.Error("out-of-range state should error")
	}
}

func TestWhiteBoxFlagsDeviantMean(t *testing.T) {
	wb, err := NewWhiteBox(WhiteBoxConfig{
		Nodes: 5, Metrics: 2, WindowSize: 10, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var res *WindowResult
	for i := 0; i < 10; i++ {
		vectors := make([][]float64, 5)
		for n := range vectors {
			base := 4 + rng.NormFloat64()*0.3
			vectors[n] = []float64{base, 2}
		}
		// Node 2's MapTask count is way off (e.g. hung maps piling up).
		vectors[2][0] = 12
		r, err := wb.Observe(vectors)
		if err != nil {
			t.Fatal(err)
		}
		if r != nil {
			res = r
		}
	}
	if res == nil {
		t.Fatal("no window produced")
	}
	if !res.Flagged[2] {
		t.Errorf("deviant node not flagged: scores %v", res.Scores)
	}
	for _, n := range []int{0, 1, 3, 4} {
		if res.Flagged[n] {
			t.Errorf("healthy node %d flagged: scores %v", n, res.Scores)
		}
	}
}

// TestWhiteBoxConstantMetricFloor exercises the max(1, k*sigma) rationale
// from §4.4: a metric constant on most nodes (sigma_median = 0) that varies
// by exactly 1 on one node must NOT be flagged.
func TestWhiteBoxConstantMetricFloor(t *testing.T) {
	wb, err := NewWhiteBox(WhiteBoxConfig{
		Nodes: 5, Metrics: 1, WindowSize: 4, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var res *WindowResult
	for i := 0; i < 4; i++ {
		vectors := [][]float64{{2}, {2}, {2}, {2}, {3}} // node 4 differs by 1
		r, err := wb.Observe(vectors)
		if err != nil {
			t.Fatal(err)
		}
		if r != nil {
			res = r
		}
	}
	if res == nil {
		t.Fatal("no window")
	}
	if res.Flagged[4] {
		t.Error("difference of exactly 1 on a constant metric must not be flagged (threshold floor)")
	}
	// But a difference of 3 must be.
	wb2, err := NewWhiteBox(WhiteBoxConfig{Nodes: 5, Metrics: 1, WindowSize: 4, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		vectors := [][]float64{{2}, {2}, {2}, {2}, {5}}
		r, err := wb2.Observe(vectors)
		if err != nil {
			t.Fatal(err)
		}
		if r != nil {
			res = r
		}
	}
	if !res.Flagged[4] {
		t.Error("difference of 3 on a constant metric should be flagged")
	}
}

func TestWhiteBoxValidation(t *testing.T) {
	if _, err := NewWhiteBox(WhiteBoxConfig{Nodes: 1, Metrics: 0, WindowSize: 1}); err == nil {
		t.Error("zero metrics should error")
	}
	if _, err := NewWhiteBox(WhiteBoxConfig{Nodes: 1, Metrics: 1, WindowSize: 1, K: -1}); err == nil {
		t.Error("negative K should error")
	}
	wb, err := NewWhiteBox(WhiteBoxConfig{Nodes: 2, Metrics: 2, WindowSize: 2, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wb.Observe([][]float64{{1, 2}}); err == nil {
		t.Error("wrong node count should error")
	}
	if _, err := wb.Observe([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("wrong metric count should error")
	}
}

func TestCombine(t *testing.T) {
	a := &WindowResult{EndIndex: 9, Scores: []float64{1, 5}, Flagged: []bool{false, true}}
	b := &WindowResult{EndIndex: 9, Scores: []float64{3, 2}, Flagged: []bool{true, false}}
	c, err := Combine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Flagged[0] || !c.Flagged[1] {
		t.Errorf("Combine flags = %v, want both true", c.Flagged)
	}
	if c.Scores[0] != 3 || c.Scores[1] != 5 {
		t.Errorf("Combine scores = %v", c.Scores)
	}
	if _, err := Combine(a, nil); err == nil {
		t.Error("nil result should error")
	}
	if _, err := Combine(a, &WindowResult{Flagged: []bool{true}}); err == nil {
		t.Error("mismatched node counts should error")
	}
}
