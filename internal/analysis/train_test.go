package analysis

import (
	"math"
	"math/rand"
	"testing"
)

// syntheticSeries builds a fault-free series of `seconds` x `nodes` vectors
// drawn from `modes` cluster centers, all nodes sampling the same mode each
// second (the homogeneity peer comparison needs).
func syntheticSeries(seconds, nodes int, modes [][]float64, noise float64, seed int64) [][][]float64 {
	rng := rand.New(rand.NewSource(seed))
	series := make([][][]float64, seconds)
	for s := range series {
		mode := modes[rng.Intn(len(modes))]
		row := make([][]float64, nodes)
		for n := range row {
			v := make([]float64, len(mode))
			for d := range v {
				v[d] = math.Max(0, mode[d]+rng.NormFloat64()*noise)
			}
			row[n] = v
		}
		series[s] = row
	}
	return series
}

func TestTrainValidatedModelBasics(t *testing.T) {
	modes := [][]float64{{5, 100, 0}, {80, 10, 50}}
	series := syntheticSeries(400, 4, modes, 1.0, 3)
	m, err := TrainValidatedModel(series, TrainOptions{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2 {
		t.Fatalf("NumStates = %d", m.NumStates())
	}
	// The two modes must classify to different states, consistently.
	s1, err := m.Classify(modes[0])
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Classify(modes[1])
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Error("distinct workload modes classified to the same state")
	}
}

func TestTrainValidatedModelMetricSelection(t *testing.T) {
	// Dimension 2 is pure noise; select only dims 0 and 1.
	modes := [][]float64{{5, 100, 0}, {80, 10, 0}}
	series := syntheticSeries(300, 4, modes, 1.0, 4)
	rng := rand.New(rand.NewSource(9))
	for s := range series {
		for n := range series[s] {
			series[s][n][2] = rng.Float64() * 1000
		}
	}
	m, err := TrainValidatedModel(series, TrainOptions{
		K: 2, Seed: 1, MetricIndexes: []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sigma) != 2 {
		t.Fatalf("selected model sigma has %d dims, want 2", len(m.Sigma))
	}
	// Classify accepts full vectors and projects internally; the noisy
	// dim must not affect the verdict.
	a, err := m.Classify([]float64{5, 100, 999999})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Classify([]float64{5, 100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("excluded metric changed classification")
	}
}

func TestTrainValidatedModelSensitivityProbe(t *testing.T) {
	// The selection rule: with a probe, the returned model must be the
	// candidate maximizing (perturbed node's median score − fault-free
	// score tail). Recompute every candidate's margin independently and
	// check the winner matches.
	modes := [][]float64{{5, 5}, {40, 50}, {95, 50}}
	series := syntheticSeries(400, 4, modes, 2.0, 5)
	probe := func(raw []float64) []float64 {
		raw[0] += 55
		return raw
	}
	const k, seed, restarts = 2, int64(2), 6
	opts := TrainOptions{K: k, Seed: seed, Restarts: restarts, WindowSize: 60, WindowSlide: 15, Perturb: probe}
	chosen, err := TrainValidatedModel(series, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Recompute candidates exactly as TrainValidatedModel does.
	var points [][]float64
	for _, row := range series {
		points = append(points, row...)
	}
	scaler, err := TrainScaler(points)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := scaler.ApplyAll(points)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := make([][][]float64, len(series))
	for s, row := range series {
		prow := make([][]float64, len(row))
		copy(prow, row)
		prow[0] = probe(append([]float64(nil), row[0]...))
		perturbed[s] = prow
	}
	bestMargin := math.Inf(-1)
	var bestCentroids [][]float64
	chosenMargin := math.Inf(-1)
	for r := 0; r < restarts; r++ {
		cents, err := KMeans(scaled, k, seed+int64(r)*7919, 100)
		if err != nil {
			t.Fatal(err)
		}
		cand := &Model{Sigma: scaler.Sigma, Centroids: cents}
		tail, _, err := replayScores(series, cand, 4, 60, 15)
		if err != nil {
			t.Fatal(err)
		}
		_, victim, err := replayScores(perturbed, cand, 4, 60, 15)
		if err != nil {
			t.Fatal(err)
		}
		margin := victim - tail
		if margin > bestMargin {
			bestMargin = margin
			bestCentroids = cents
		}
		if sameCentroids(cents, chosen.Centroids) {
			chosenMargin = margin
		}
	}
	if chosenMargin == math.Inf(-1) {
		t.Fatal("chosen model does not match any recomputed candidate")
	}
	if chosenMargin < bestMargin {
		t.Errorf("chosen margin %.1f below best candidate margin %.1f (centroids %v vs %v)",
			chosenMargin, bestMargin, chosen.Centroids, bestCentroids)
	}
}

func sameCentroids(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				return false
			}
		}
	}
	return true
}

func TestTrainValidatedModelErrors(t *testing.T) {
	if _, err := TrainValidatedModel(nil, TrainOptions{K: 2}); err == nil {
		t.Error("empty series should error")
	}
	series := syntheticSeries(10, 2, [][]float64{{1, 2}}, 0.1, 1)
	if _, err := TrainValidatedModel(series, TrainOptions{K: 0}); err == nil {
		t.Error("K=0 should error")
	}
	ragged := syntheticSeries(10, 2, [][]float64{{1, 2}}, 0.1, 1)
	ragged[5] = ragged[5][:1]
	if _, err := TrainValidatedModel(ragged, TrainOptions{K: 2}); err == nil {
		t.Error("ragged series should error")
	}
}

func TestTrainValidatedModelShortSeries(t *testing.T) {
	// Shorter than one window: falls back to the first candidate without
	// crashing.
	series := syntheticSeries(10, 3, [][]float64{{1, 2}, {50, 60}}, 0.5, 2)
	m, err := TrainValidatedModel(series, TrainOptions{K: 2, Seed: 1, WindowSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.NumStates() != 2 {
		t.Fatal("no model from short series")
	}
}

func TestTrainValidatedModelDeterministic(t *testing.T) {
	modes := [][]float64{{5, 100}, {80, 10}}
	series := syntheticSeries(200, 3, modes, 1.0, 6)
	m1, err := TrainValidatedModel(series, TrainOptions{K: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainValidatedModel(series, TrainOptions{K: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Centroids {
		for d := range m1.Centroids[i] {
			if m1.Centroids[i][d] != m2.Centroids[i][d] {
				t.Fatal("same seed produced different models")
			}
		}
	}
}

func TestModelProject(t *testing.T) {
	m := &Model{MetricIndexes: []int{2, 0}}
	out, err := m.Project([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 30 || out[1] != 10 {
		t.Errorf("Project = %v, want [30 10]", out)
	}
	if _, err := m.Project([]float64{1}); err == nil {
		t.Error("out-of-range index should error")
	}
	// No selection: identity (same slice).
	m2 := &Model{}
	in := []float64{1, 2}
	out, err = m2.Project(in)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &in[0] {
		t.Error("identity projection should not copy")
	}
}

func TestModelSaveLoadWithSelection(t *testing.T) {
	m := &Model{
		Sigma:         []float64{1, 1},
		Centroids:     [][]float64{{0, 0}, {5, 5}},
		MetricIndexes: []int{3, 7},
	}
	path := t.TempDir() + "/m.json"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.MetricIndexes) != 2 || loaded.MetricIndexes[0] != 3 || loaded.MetricIndexes[1] != 7 {
		t.Errorf("MetricIndexes lost in round trip: %v", loaded.MetricIndexes)
	}
}
