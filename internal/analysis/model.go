package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"github.com/asdf-project/asdf/internal/stats"
)

// Model is the trained black-box model: the log-scaling sigmas and the
// k-means centroids of fault-free workload states. It is produced offline
// from problem-free traces (§4.5) and consumed by the knn module.
type Model struct {
	// Sigma holds per-metric standard deviations of log(1+x) on the
	// training data (after metric selection, when MetricIndexes is set).
	Sigma []float64 `json:"sigma"`
	// Centroids holds the k-means centroids, in scaled space.
	Centroids [][]float64 `json:"centroids"`
	// MetricIndexes, when non-empty, selects which dimensions of a raw
	// input vector the model was trained on; Classify projects its input
	// accordingly. This carries the black-box metric selection (a la the
	// authors' Ganesha work) inside the model file.
	MetricIndexes []int `json:"metric_indexes,omitempty"`

	// flat caches Centroids flattened row-major (k×dim, contiguous) so the
	// per-sample 1-NN scan walks one cache-friendly slab instead of chasing
	// k slice headers. Built on first classification; Centroids must not be
	// mutated afterwards.
	flatOnce sync.Once
	flat     []float64
	flatDim  int
}

// flatten builds the row-major centroid matrix once. A ragged centroid set
// (which Validate rejects) leaves flat empty with flatDim -1.
func (m *Model) flatten() {
	m.flatOnce.Do(func() {
		if len(m.Centroids) == 0 {
			return
		}
		m.flatDim = len(m.Centroids[0])
		for _, c := range m.Centroids {
			if len(c) != m.flatDim {
				m.flatDim = -1
				return
			}
		}
		m.flat = make([]float64, 0, len(m.Centroids)*m.flatDim)
		for _, c := range m.Centroids {
			m.flat = append(m.flat, c...)
		}
	})
}

// Project applies the model's metric selection to a raw vector; it returns
// the input unchanged when no selection is set.
func (m *Model) Project(raw []float64) ([]float64, error) {
	if len(m.MetricIndexes) == 0 {
		return raw, nil
	}
	out := make([]float64, len(m.MetricIndexes))
	for i, idx := range m.MetricIndexes {
		if idx < 0 || idx >= len(raw) {
			return nil, fmt.Errorf("analysis: metric index %d out of range for %d-dim vector", idx, len(raw))
		}
		out[i] = raw[idx]
	}
	return out, nil
}

// TrainModel fits a Model on fault-free raw metric vectors: it trains the
// scaler, scales the points, and clusters them into k centroids.
func TrainModel(points [][]float64, k int, seed int64) (*Model, error) {
	scaler, err := TrainScaler(points)
	if err != nil {
		return nil, err
	}
	scaled, err := scaler.ApplyAll(points)
	if err != nil {
		return nil, err
	}
	centroids, err := KMeans(scaled, k, seed, 100)
	if err != nil {
		return nil, err
	}
	return &Model{Sigma: scaler.Sigma, Centroids: centroids}, nil
}

// Classify scales a raw metric vector (after metric selection, when set)
// and returns its 1-NN state index.
func (m *Model) Classify(raw []float64) (int, error) {
	return m.ClassifyInto(raw, make([]float64, m.ScratchLen(raw)))
}

// ScratchLen reports the scratch length ClassifyInto needs for a raw vector
// of the given length: the model's post-projection dimension.
func (m *Model) ScratchLen(raw []float64) int {
	if len(m.MetricIndexes) > 0 {
		return len(m.MetricIndexes)
	}
	return len(raw)
}

// ClassifyInto is the allocation-free Classify: projection and log scaling
// happen inside scratch (length >= ScratchLen(raw), reusable across calls),
// and the 1-NN scan runs over the flattened row-major centroid matrix.
// Safe for concurrent use with distinct scratch buffers.
func (m *Model) ClassifyInto(raw, scratch []float64) (int, error) {
	var p []float64
	if n := len(m.MetricIndexes); n > 0 {
		if len(scratch) < n {
			return 0, fmt.Errorf("analysis: classify scratch length %d, want >= %d", len(scratch), n)
		}
		p = scratch[:n]
		for i, idx := range m.MetricIndexes {
			if idx < 0 || idx >= len(raw) {
				return 0, fmt.Errorf("analysis: metric index %d out of range for %d-dim vector", idx, len(raw))
			}
			p[i] = raw[idx]
		}
	} else {
		if len(scratch) < len(raw) {
			return 0, fmt.Errorf("analysis: classify scratch length %d, want >= %d", len(scratch), len(raw))
		}
		p = scratch[:len(raw)]
		copy(p, raw)
	}
	if err := stats.LogScaleInto(p, p, m.Sigma); err != nil {
		return 0, err
	}
	m.flatten()
	if m.flatDim < 0 {
		return 0, fmt.Errorf("analysis: centroids have inconsistent dimensions")
	}
	if len(m.flat) == 0 {
		return 0, fmt.Errorf("analysis: no centroids")
	}
	if len(p) != m.flatDim {
		return 0, fmt.Errorf("analysis: centroids have dimension %d, point has %d", m.flatDim, len(p))
	}
	return nearestFlat(p, m.flat), nil
}

// NumStates reports the number of centroids.
func (m *Model) NumStates() int { return len(m.Centroids) }

// Validate checks internal consistency.
func (m *Model) Validate() error {
	if len(m.Sigma) == 0 {
		return fmt.Errorf("analysis: model has no sigma vector")
	}
	if len(m.Centroids) == 0 {
		return fmt.Errorf("analysis: model has no centroids")
	}
	for i, c := range m.Centroids {
		if len(c) != len(m.Sigma) {
			return fmt.Errorf("analysis: centroid %d has dimension %d, sigma has %d",
				i, len(c), len(m.Sigma))
		}
	}
	return nil
}

// Save writes the model as JSON to path.
func (m *Model) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: marshal model: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("analysis: save model: %w", err)
	}
	return nil
}

// LoadModel reads a model saved by Save and validates it.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: load model: %w", err)
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("analysis: parse model %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
