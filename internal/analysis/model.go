package analysis

import (
	"encoding/json"
	"fmt"
	"os"
)

// Model is the trained black-box model: the log-scaling sigmas and the
// k-means centroids of fault-free workload states. It is produced offline
// from problem-free traces (§4.5) and consumed by the knn module.
type Model struct {
	// Sigma holds per-metric standard deviations of log(1+x) on the
	// training data (after metric selection, when MetricIndexes is set).
	Sigma []float64 `json:"sigma"`
	// Centroids holds the k-means centroids, in scaled space.
	Centroids [][]float64 `json:"centroids"`
	// MetricIndexes, when non-empty, selects which dimensions of a raw
	// input vector the model was trained on; Classify projects its input
	// accordingly. This carries the black-box metric selection (a la the
	// authors' Ganesha work) inside the model file.
	MetricIndexes []int `json:"metric_indexes,omitempty"`
}

// Project applies the model's metric selection to a raw vector; it returns
// the input unchanged when no selection is set.
func (m *Model) Project(raw []float64) ([]float64, error) {
	if len(m.MetricIndexes) == 0 {
		return raw, nil
	}
	out := make([]float64, len(m.MetricIndexes))
	for i, idx := range m.MetricIndexes {
		if idx < 0 || idx >= len(raw) {
			return nil, fmt.Errorf("analysis: metric index %d out of range for %d-dim vector", idx, len(raw))
		}
		out[i] = raw[idx]
	}
	return out, nil
}

// TrainModel fits a Model on fault-free raw metric vectors: it trains the
// scaler, scales the points, and clusters them into k centroids.
func TrainModel(points [][]float64, k int, seed int64) (*Model, error) {
	scaler, err := TrainScaler(points)
	if err != nil {
		return nil, err
	}
	scaled, err := scaler.ApplyAll(points)
	if err != nil {
		return nil, err
	}
	centroids, err := KMeans(scaled, k, seed, 100)
	if err != nil {
		return nil, err
	}
	return &Model{Sigma: scaler.Sigma, Centroids: centroids}, nil
}

// Classify scales a raw metric vector (after metric selection, when set)
// and returns its 1-NN state index.
func (m *Model) Classify(raw []float64) (int, error) {
	projected, err := m.Project(raw)
	if err != nil {
		return 0, err
	}
	scaler := LogScaler{Sigma: m.Sigma}
	scaled, err := scaler.Apply(projected)
	if err != nil {
		return 0, err
	}
	return NearestCentroid(scaled, m.Centroids)
}

// NumStates reports the number of centroids.
func (m *Model) NumStates() int { return len(m.Centroids) }

// Validate checks internal consistency.
func (m *Model) Validate() error {
	if len(m.Sigma) == 0 {
		return fmt.Errorf("analysis: model has no sigma vector")
	}
	if len(m.Centroids) == 0 {
		return fmt.Errorf("analysis: model has no centroids")
	}
	for i, c := range m.Centroids {
		if len(c) != len(m.Sigma) {
			return fmt.Errorf("analysis: centroid %d has dimension %d, sigma has %d",
				i, len(c), len(m.Sigma))
		}
	}
	return nil
}

// Save writes the model as JSON to path.
func (m *Model) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: marshal model: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("analysis: save model: %w", err)
	}
	return nil
}

// LoadModel reads a model saved by Save and validates it.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: load model: %w", err)
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("analysis: parse model %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
