package analysis

import (
	"fmt"
	"math"

	"github.com/asdf-project/asdf/internal/stats"
)

// WhiteBoxConfig parameterizes the white-box fingerpointer (§4.4).
type WhiteBoxConfig struct {
	// Nodes is the number of peer slave nodes.
	Nodes int
	// Metrics is the dimension of each node's state vector.
	Metrics int
	// WindowSize is the number of per-second samples per window (60 in
	// the paper).
	WindowSize int
	// WindowSlide defaults to WindowSize (non-overlapping) when zero.
	WindowSlide int
	// K scales the threshold max(1, K*sigma_median) (swept 0..5 in
	// Figure 6(b); the paper picks 3).
	K float64
}

// WhiteBox implements the white-box analysis: for each state metric, each
// node's window mean is compared against the median of the means across
// nodes; the node is flagged when the difference exceeds
// max(1, K*sigma_median), where sigma_median is the median across nodes of
// the per-node window standard deviation. The max(1, ...) floor protects
// against the common case of a metric that is constant on most nodes
// (zero sigma) and differs by as little as 1 on one node (§4.4).
type WhiteBox struct {
	cfg WhiteBoxConfig
	// ring[i][n] is node n's metric vector at window slot i.
	ring        [][][]float64
	filled      int
	next        int
	samples     int
	sinceWindow int

	// pooled per-evaluation buffers: a new evaluation fires every
	// WindowSlide samples, so the per-node mean/sd matrices and the median
	// scratch are reused rather than reallocated each time. Only the
	// returned WindowResult (which escapes to the caller) is fresh.
	means      [][]float64 // [node][metric] window means
	sds        [][]float64 // [node][metric] window standard deviations
	nodeMeans  []float64   // Nodes; one metric's means across nodes
	nodeSDs    []float64   // Nodes; one metric's sds across nodes
	medScratch []float64   // Nodes; quickselect scratch for the medians
}

// NewWhiteBox creates the analyzer.
func NewWhiteBox(cfg WhiteBoxConfig) (*WhiteBox, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("analysis: whitebox: Nodes must be positive")
	}
	if cfg.Metrics <= 0 {
		return nil, fmt.Errorf("analysis: whitebox: Metrics must be positive")
	}
	if cfg.WindowSize <= 0 {
		return nil, fmt.Errorf("analysis: whitebox: WindowSize must be positive")
	}
	if cfg.WindowSlide <= 0 {
		cfg.WindowSlide = cfg.WindowSize
	}
	if cfg.WindowSlide > cfg.WindowSize {
		return nil, fmt.Errorf("analysis: whitebox: WindowSlide %d exceeds WindowSize %d",
			cfg.WindowSlide, cfg.WindowSize)
	}
	if cfg.K < 0 {
		return nil, fmt.Errorf("analysis: whitebox: K must be non-negative")
	}
	w := &WhiteBox{
		cfg:        cfg,
		ring:       make([][][]float64, cfg.WindowSize),
		means:      make([][]float64, cfg.Nodes),
		sds:        make([][]float64, cfg.Nodes),
		nodeMeans:  make([]float64, cfg.Nodes),
		nodeSDs:    make([]float64, cfg.Nodes),
		medScratch: make([]float64, cfg.Nodes),
	}
	for i := range w.ring {
		w.ring[i] = make([][]float64, cfg.Nodes)
		for n := range w.ring[i] {
			w.ring[i][n] = make([]float64, cfg.Metrics)
		}
	}
	for n := 0; n < cfg.Nodes; n++ {
		w.means[n] = make([]float64, cfg.Metrics)
		w.sds[n] = make([]float64, cfg.Metrics)
	}
	return w, nil
}

// Config returns the analyzer's configuration.
func (w *WhiteBox) Config() WhiteBoxConfig { return w.cfg }

// Observe records one per-second round of state vectors (vectors[n] is
// node n's white-box metric vector) and returns a WindowResult when a
// window completes, nil otherwise.
func (w *WhiteBox) Observe(vectors [][]float64) (*WindowResult, error) {
	if len(vectors) != w.cfg.Nodes {
		return nil, fmt.Errorf("analysis: whitebox: got %d vectors, want %d", len(vectors), w.cfg.Nodes)
	}
	for n, v := range vectors {
		if len(v) != w.cfg.Metrics {
			return nil, fmt.Errorf("analysis: whitebox: node %d vector has %d metrics, want %d",
				n, len(v), w.cfg.Metrics)
		}
		copy(w.ring[w.next][n], v)
	}
	w.next = (w.next + 1) % w.cfg.WindowSize
	if w.filled < w.cfg.WindowSize {
		w.filled++
	}
	w.samples++
	w.sinceWindow++
	if w.filled < w.cfg.WindowSize || w.sinceWindow < w.cfg.WindowSlide {
		return nil, nil
	}
	w.sinceWindow = 0
	return w.evaluate(), nil
}

// evaluate runs the peer comparison over the current full window.
func (w *WhiteBox) evaluate() *WindowResult {
	res := &WindowResult{
		EndIndex: w.samples - 1,
		Scores:   make([]float64, w.cfg.Nodes),
		Flagged:  make([]bool, w.cfg.Nodes),
	}
	for m := 0; m < w.cfg.Metrics; m++ {
		for n := 0; n < w.cfg.Nodes; n++ {
			var acc stats.Welford
			for i := 0; i < w.cfg.WindowSize; i++ {
				acc.Add(w.ring[i][n][m])
			}
			w.means[n][m] = acc.Mean()
			w.sds[n][m] = acc.StdDev()
			w.nodeMeans[n] = w.means[n][m]
			w.nodeSDs[n] = w.sds[n][m]
		}
		medianMean := w.quickMedian(w.nodeMeans)
		sigmaMedian := w.quickMedian(w.nodeSDs)
		threshold := math.Max(1, w.cfg.K*sigmaMedian)
		for n := 0; n < w.cfg.Nodes; n++ {
			dev := math.Abs(w.means[n][m] - medianMean)
			// Score in threshold units, maximized over metrics.
			if score := dev / threshold; score > res.Scores[n] {
				res.Scores[n] = score
			}
			if dev > threshold {
				res.Flagged[n] = true
			}
		}
	}
	return res
}

// quickMedian computes the median of xs via the pooled quickselect scratch
// without disturbing xs; bit-identical to the sort-based stats.MustMedian.
func (w *WhiteBox) quickMedian(xs []float64) float64 {
	copy(w.medScratch, xs)
	m, err := stats.QuickMedianInPlace(w.medScratch)
	if err != nil {
		// Unreachable: Nodes is validated positive by the constructor.
		panic(err)
	}
	return m
}

// Combine merges black-box and white-box verdicts for the same window by
// union: a node is flagged when either approach flags it (the paper's
// "combined" analysis, §4.9).
func Combine(a, b *WindowResult) (*WindowResult, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("analysis: Combine requires two results")
	}
	if len(a.Flagged) != len(b.Flagged) {
		return nil, fmt.Errorf("analysis: Combine node counts differ: %d vs %d",
			len(a.Flagged), len(b.Flagged))
	}
	out := &WindowResult{
		EndIndex: a.EndIndex,
		Scores:   make([]float64, len(a.Scores)),
		Flagged:  make([]bool, len(a.Flagged)),
	}
	for i := range a.Flagged {
		out.Flagged[i] = a.Flagged[i] || b.Flagged[i]
		out.Scores[i] = math.Max(a.Scores[i], b.Scores[i])
	}
	return out, nil
}
