package analysis

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// BlockPool is a persistent pool of workers that process contiguous index
// blocks: Run(n) splits [0, n) into blocks of the configured size and
// invokes fn(worker, lo, hi) for each, up to workers blocks concurrently.
//
// The goroutines are spawned once at construction and parked on a channel
// between calls, so a steady-state Run performs no allocation (goroutine
// spawns, closures and channel buffers all happen up front) — that is what
// lets the batched analysis hot paths hold the 0 allocs/op CI gate. Each
// worker has a stable identity, so callers can give every worker its own
// scratch buffer; and each index is processed by exactly one worker, so
// writes to per-index result slots never race.
//
// Run must not be called concurrently with itself; Close releases the
// workers (idempotent).
type BlockPool struct {
	workers int
	block   int
	fn      func(worker, lo, hi int)

	n      int // rows of the Run in flight; read by workers after the channel send
	tasks  chan int
	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewBlockPool creates the pool. workers <= 1 runs blocks serially on the
// caller's goroutine (no spawned workers); block <= 0 defaults to 64 rows,
// small enough to keep tail blocks balanced and large enough that one block
// amortizes its channel round trip.
func NewBlockPool(workers, block int, fn func(worker, lo, hi int)) *BlockPool {
	if block <= 0 {
		block = 64
	}
	if workers < 1 {
		workers = 1
	}
	p := &BlockPool{workers: workers, block: block, fn: fn}
	if workers > 1 {
		p.tasks = make(chan int, 512)
		for w := 0; w < workers; w++ {
			go p.worker(w)
		}
	}
	return p
}

// Workers reports the pool's worker count (1 means serial).
func (p *BlockPool) Workers() int { return p.workers }

// Block reports the pool's block size in rows.
func (p *BlockPool) Block() int { return p.block }

func (p *BlockPool) worker(w int) {
	for b := range p.tasks {
		lo := b * p.block
		hi := lo + p.block
		if hi > p.n {
			hi = p.n
		}
		p.fn(w, lo, hi)
		p.wg.Done()
	}
}

// Run processes [0, n) in blocks and returns when every block is done.
func (p *BlockPool) Run(n int) {
	if n <= 0 {
		return
	}
	if p.tasks == nil || p.closed.Load() {
		// Serial path: no workers configured, or the pool was already
		// released (a flushed module can still be run by a later engine
		// Flush; correctness over parallelism there).
		for lo := 0; lo < n; lo += p.block {
			hi := lo + p.block
			if hi > n {
				hi = n
			}
			p.fn(0, lo, hi)
		}
		return
	}
	p.n = n // published to workers by the channel sends below
	blocks := (n + p.block - 1) / p.block
	p.wg.Add(blocks)
	for b := 0; b < blocks; b++ {
		p.tasks <- b
	}
	p.wg.Wait()
}

// Close releases the pooled workers (idempotent). Run remains usable after
// Close but degrades to the serial path.
func (p *BlockPool) Close() {
	if p.closed.CompareAndSwap(false, true) && p.tasks != nil {
		close(p.tasks)
	}
}

// BatchClassifier classifies a whole fleet's metric vectors per tick as one
// flat row-major matrix: row i is node i's raw vector, and ClassifyMatrix
// writes node i's 1-NN state index to dst[i]. It is the batched form of
// Model.ClassifyInto — same projection, log scaling and nearest-centroid
// scan, row by row in index order, so the assignments are bit-identical to
// N independent per-node classifications.
//
// Workers process contiguous node blocks from a persistent BlockPool, each
// with its own scratch buffer; after warm-up a ClassifyMatrix call performs
// zero allocations.
type BatchClassifier struct {
	model *Model
	pool  *BlockPool

	scratch [][]float64 // per-worker classify scratch
	errs    []error     // per-worker first error

	// matrix in flight; published to workers by the pool's channel sends.
	raw []float64
	dim int
	dst []int
}

// NewBatchClassifier creates the classifier. workers <= 1 classifies
// serially; block <= 0 uses the pool's default block size.
func NewBatchClassifier(model *Model, workers, block int) *BatchClassifier {
	c := &BatchClassifier{model: model}
	c.pool = NewBlockPool(workers, block, c.classifyBlock)
	c.scratch = make([][]float64, c.pool.Workers())
	c.errs = make([]error, c.pool.Workers())
	return c
}

func (c *BatchClassifier) classifyBlock(w, lo, hi int) {
	if c.errs[w] != nil {
		return
	}
	scratch := c.scratch[w]
	if need := c.model.ScratchLen(c.raw[:c.dim]); len(scratch) < need {
		scratch = make([]float64, need)
		c.scratch[w] = scratch
	}
	for i := lo; i < hi; i++ {
		row := c.raw[i*c.dim : (i+1)*c.dim]
		state, err := c.model.ClassifyInto(row, scratch)
		if err != nil {
			c.errs[w] = fmt.Errorf("analysis: batch classify row %d: %w", i, err)
			return
		}
		c.dst[i] = state
	}
}

// ClassifyMatrix classifies rows raw vectors of the given dimension (raw is
// row-major, len >= rows*dim) and writes the state indexes to dst (len >=
// rows). Safe against concurrent ClassifyMatrix calls is NOT provided; one
// matrix is in flight at a time, which is the module runtime's discipline.
func (c *BatchClassifier) ClassifyMatrix(raw []float64, rows, dim int, dst []int) error {
	if rows == 0 {
		return nil
	}
	if dim <= 0 {
		return fmt.Errorf("analysis: batch classify: dimension must be positive, got %d", dim)
	}
	if len(raw) < rows*dim {
		return fmt.Errorf("analysis: batch classify: matrix has %d values, want >= %d", len(raw), rows*dim)
	}
	if len(dst) < rows {
		return fmt.Errorf("analysis: batch classify: dst has %d slots, want >= %d", len(dst), rows)
	}
	c.raw, c.dim, c.dst = raw, dim, dst
	c.pool.Run(rows)
	c.raw, c.dst = nil, nil
	var first error
	for w, err := range c.errs {
		if err != nil && first == nil {
			first = err
		}
		c.errs[w] = nil
	}
	return first
}

// Close releases the pooled workers.
func (c *BatchClassifier) Close() { c.pool.Close() }
