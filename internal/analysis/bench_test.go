package analysis

import (
	"math/rand"
	"testing"
)

func benchPoints(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, n)
	for i := range pts {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.Float64() * 100
		}
		pts[i] = v
	}
	return pts
}

func BenchmarkKMeans(b *testing.B) {
	pts := benchPoints(2000, 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(pts, 4, 1, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	pts := benchPoints(500, 18)
	m, err := TrainModel(pts, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Classify(pts[i%len(pts)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlackBoxObserve(b *testing.B) {
	bb, err := NewBlackBox(BlackBoxConfig{Nodes: 50, NumStates: 4, WindowSize: 60, WindowSlide: 15, Threshold: 55})
	if err != nil {
		b.Fatal(err)
	}
	states := make([]int, 50)
	rng := rand.New(rand.NewSource(2))
	for i := range states {
		states[i] = rng.Intn(4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bb.Observe(states); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhiteBoxObserve(b *testing.B) {
	wb, err := NewWhiteBox(WhiteBoxConfig{Nodes: 50, Metrics: 12, WindowSize: 60, WindowSlide: 15, K: 3})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	vectors := make([][]float64, 50)
	for i := range vectors {
		v := make([]float64, 12)
		for d := range v {
			v[d] = rng.Float64() * 4
		}
		vectors[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wb.Observe(vectors); err != nil {
			b.Fatal(err)
		}
	}
}
