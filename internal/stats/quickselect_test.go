package stats

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sortMedian is the reference implementation: the documented sort-based
// median that QuickMedianInPlace must reproduce bit for bit.
func sortMedian(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return cp[mid-1]/2 + cp[mid]/2
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestQuickMedianTable(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
	}{
		{"single", []float64{3.5}},
		{"two", []float64{2, 1}},
		{"odd", []float64{5, 1, 3}},
		{"even", []float64{4, 1, 3, 2}},
		{"all-equal", []float64{7, 7, 7, 7, 7}},
		{"all-equal-even", []float64{7, 7, 7, 7}},
		{"heavy-ties-odd", []float64{1, 2, 1, 2, 1, 2, 1}},
		{"heavy-ties-even", []float64{0, 0, 1, 1, 0, 1, 0, 1}},
		{"sorted", []float64{1, 2, 3, 4, 5, 6, 7, 8}},
		{"reversed", []float64{8, 7, 6, 5, 4, 3, 2, 1}},
		{"negatives", []float64{-3, -1, -2, -10, 4}},
		{"zeros", []float64{0, 0, 0, 0}},
		{"extreme-magnitudes", []float64{math.MaxFloat64, math.MaxFloat64, -math.MaxFloat64, math.MaxFloat64}},
		{"tiny", []float64{math.SmallestNonzeroFloat64, 0, math.SmallestNonzeroFloat64}},
		{"state-histogram", []float64{12, 0, 48, 0, 0, 0, 0, 0, 12, 0, 48, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := sortMedian(tc.xs)
			cp := append([]float64(nil), tc.xs...)
			got, err := QuickMedianInPlace(cp)
			if err != nil {
				t.Fatalf("QuickMedianInPlace: %v", err)
			}
			if !sameBits(got, want) {
				t.Fatalf("QuickMedianInPlace = %v (%x), sort median = %v (%x)",
					got, math.Float64bits(got), want, math.Float64bits(want))
			}
		})
	}
}

func TestQuickMedianEmpty(t *testing.T) {
	if _, err := QuickMedianInPlace(nil); err != ErrEmpty {
		t.Fatalf("empty input: err = %v, want ErrEmpty", err)
	}
}

// TestQuickMedianProperty drives random widths and value distributions —
// continuous draws (no ties) and small-integer draws (heavy ties, the
// black-box state-histogram case) — and demands bit equality with both the
// sort-based reference and MedianInPlace itself.
func TestQuickMedianProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(257)
		xs := make([]float64, n)
		switch trial % 3 {
		case 0: // continuous
			for i := range xs {
				xs[i] = rng.NormFloat64() * 1e3
			}
		case 1: // heavy ties: small integers, as in state histograms
			for i := range xs {
				xs[i] = float64(rng.Intn(5))
			}
		default: // mixed magnitudes
			for i := range xs {
				xs[i] = math.Ldexp(rng.Float64()-0.5, rng.Intn(120)-60)
			}
		}
		want := sortMedian(xs)

		quick := append([]float64(nil), xs...)
		got, err := QuickMedianInPlace(quick)
		if err != nil {
			t.Fatalf("trial %d: QuickMedianInPlace: %v", trial, err)
		}
		if !sameBits(got, want) {
			t.Fatalf("trial %d (n=%d): quick = %v (%x), sort = %v (%x)\ninput: %v",
				trial, n, got, math.Float64bits(got), want, math.Float64bits(want), xs)
		}

		slow := append([]float64(nil), xs...)
		ref, err := MedianInPlace(slow)
		if err != nil {
			t.Fatalf("trial %d: MedianInPlace: %v", trial, err)
		}
		if !sameBits(got, ref) {
			t.Fatalf("trial %d: quick = %v, MedianInPlace = %v", trial, got, ref)
		}
	}
}

// TestSelectKthProperty checks every order statistic, not just the median:
// selectKth(xs, k) must equal sorted(xs)[k] for all k.
func TestSelectKthProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(64)
		xs := make([]float64, n)
		for i := range xs {
			if trial%2 == 0 {
				xs[i] = rng.NormFloat64()
			} else {
				xs[i] = float64(rng.Intn(4))
			}
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for k := 0; k < n; k++ {
			cp := append([]float64(nil), xs...)
			got := selectKth(cp, k)
			if !sameBits(got, sorted[k]) {
				t.Fatalf("trial %d: selectKth(k=%d) = %v, sorted[%d] = %v\ninput: %v",
					trial, k, got, k, sorted[k], xs)
			}
			// Partial-order invariant QuickMedianInPlace's even case relies
			// on: everything left of k is <= xs[k], everything right is >=.
			for i := 0; i < k; i++ {
				if cp[i] > cp[k] {
					t.Fatalf("trial %d: cp[%d]=%v > cp[k=%d]=%v after selectKth", trial, i, cp[i], k, cp[k])
				}
			}
			for i := k + 1; i < n; i++ {
				if cp[i] < cp[k] {
					t.Fatalf("trial %d: cp[%d]=%v < cp[k=%d]=%v after selectKth", trial, i, cp[i], k, cp[k])
				}
			}
		}
	}
}

// TestQuickMedianNoAllocs gates the whole point of the quickselect path:
// zero allocations at peer-comparison column widths.
func TestQuickMedianNoAllocs(t *testing.T) {
	xs := make([]float64, 1024)
	rng := rand.New(rand.NewSource(3))
	allocs := testing.AllocsPerRun(100, func() {
		for i := range xs {
			xs[i] = float64(rng.Intn(8))
		}
		if _, err := QuickMedianInPlace(xs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("QuickMedianInPlace allocates %v per run, want 0", allocs)
	}
}

// FuzzQuickMedianMatchesSort decodes the fuzz payload as a float64 column
// (NaN-free by construction: NaN bit patterns are skipped) and requires the
// quickselect median to match the sort-based median bit for bit.
func FuzzQuickMedianMatchesSort(f *testing.F) {
	f.Add([]byte{})
	seed := []float64{1, 1, 2, 3, 5, 8, 13, -21}
	buf := make([]byte, 8*len(seed))
	for i, v := range seed {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	f.Add(buf)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var xs []float64
		for i := 0; i+8 <= len(data) && len(xs) < 512; i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))
			if math.IsNaN(v) {
				continue
			}
			if v == 0 {
				// Canonicalize -0: the ordering of equal-comparing ±0 keys
				// is unspecified for any sorting/selection algorithm, so
				// bit-equality is only well-defined on ±0-canonical input.
				v = 0
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return
		}
		want := sortMedian(xs)
		got, err := QuickMedianInPlace(append([]float64(nil), xs...))
		if err != nil {
			t.Fatalf("QuickMedianInPlace: %v", err)
		}
		if !sameBits(got, want) {
			t.Fatalf("quick = %v (%x), sort = %v (%x)\ninput: %v",
				got, math.Float64bits(got), want, math.Float64bits(want), xs)
		}
	})
}

func BenchmarkMedianColumn(b *testing.B) {
	for _, mode := range []string{"sort", "quickselect"} {
		b.Run("mode="+mode+"/n=1024", func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			src := make([]float64, 1024)
			for i := range src {
				src[i] = float64(rng.Intn(8))
			}
			col := make([]float64, len(src))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(col, src)
				var err error
				if mode == "sort" {
					_, err = MedianInPlace(col)
				} else {
					_, err = QuickMedianInPlace(col)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
