package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 || w.Cap() != 3 || w.Full() {
		t.Fatalf("fresh window state wrong: len=%d cap=%d full=%v", w.Len(), w.Cap(), w.Full())
	}
	w.Push(1)
	w.Push(2)
	if got := w.Values(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Values() = %v, want [1 2]", got)
	}
	w.Push(3)
	if !w.Full() {
		t.Error("window should be full after 3 pushes")
	}
	w.Push(4) // evicts 1
	got := w.Values()
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("after eviction Values() = %v, want %v", got, want)
			break
		}
	}
	if w.Mean() != 3 {
		t.Errorf("Mean() = %v, want 3", w.Mean())
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(2)
	w.Push(1)
	w.Push(2)
	w.Reset()
	if w.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", w.Len())
	}
	w.Push(9)
	if got := w.Values(); len(got) != 1 || got[0] != 9 {
		t.Errorf("Values after Reset+Push = %v, want [9]", got)
	}
}

func TestWindowPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

// Property: a window of capacity c over a stream always holds exactly the
// last min(len(stream), c) elements, in order.
func TestWindowKeepsSuffixProperty(t *testing.T) {
	f := func(raw []float64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		w := NewWindow(capacity)
		for _, x := range raw {
			w.Push(x)
		}
		start := 0
		if len(raw) > capacity {
			start = len(raw) - capacity
		}
		want := raw[start:]
		got := w.Values()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorWindowMeanVariance(t *testing.T) {
	w := NewVectorWindow(4, 2)
	for _, v := range [][]float64{{1, 10}, {2, 20}, {3, 30}} {
		if err := w.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	mean := w.Mean()
	if mean[0] != 2 || mean[1] != 20 {
		t.Errorf("Mean() = %v, want [2 20]", mean)
	}
	variance := w.Variance()
	if !almostEqual(variance[0], 2.0/3.0, 1e-12) || !almostEqual(variance[1], 200.0/3.0, 1e-9) {
		t.Errorf("Variance() = %v", variance)
	}
}

func TestVectorWindowEviction(t *testing.T) {
	w := NewVectorWindow(2, 1)
	for _, x := range []float64{1, 2, 3} {
		if err := w.Push([]float64{x}); err != nil {
			t.Fatal(err)
		}
	}
	mean := w.Mean()
	if mean[0] != 2.5 {
		t.Errorf("Mean after eviction = %v, want 2.5", mean[0])
	}
}

func TestVectorWindowCopiesInput(t *testing.T) {
	w := NewVectorWindow(2, 2)
	v := []float64{1, 2}
	if err := w.Push(v); err != nil {
		t.Fatal(err)
	}
	v[0] = 99 // mutating the caller's slice must not affect the window
	if got := w.Mean(); got[0] != 1 {
		t.Errorf("window aliased caller slice: mean = %v", got)
	}
}

func TestVectorWindowDimensionMismatch(t *testing.T) {
	w := NewVectorWindow(2, 3)
	if err := w.Push([]float64{1}); err == nil {
		t.Error("Push with wrong dimension should error")
	}
}

func TestVectorWindowColumn(t *testing.T) {
	w := NewVectorWindow(3, 2)
	for i := 1; i <= 4; i++ { // evicts first
		if err := w.Push([]float64{float64(i), float64(-i)}); err != nil {
			t.Fatal(err)
		}
	}
	col := w.Column(1)
	want := []float64{-2, -3, -4}
	for i := range want {
		if col[i] != want[i] {
			t.Errorf("Column(1) = %v, want %v", col, want)
			break
		}
	}
}

// Property: VectorWindow per-component mean/stddev agree with scalar Window
// fed the same component stream.
func TestVectorWindowAgreesWithScalarProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		capacity := rng.Intn(10) + 1
		dim := rng.Intn(4) + 1
		n := rng.Intn(30)
		vw := NewVectorWindow(capacity, dim)
		sws := make([]*Window, dim)
		for d := range sws {
			sws[d] = NewWindow(capacity)
		}
		for i := 0; i < n; i++ {
			v := make([]float64, dim)
			for d := range v {
				v[d] = rng.NormFloat64() * 10
				sws[d].Push(v[d])
			}
			if err := vw.Push(v); err != nil {
				t.Fatal(err)
			}
		}
		mean := vw.Mean()
		sd := vw.StdDev()
		for d := 0; d < dim; d++ {
			if !almostEqual(mean[d], sws[d].Mean(), 1e-9) {
				t.Fatalf("trial %d dim %d: mean %v vs %v", trial, d, mean[d], sws[d].Mean())
			}
			if !almostEqual(sd[d], sws[d].StdDev(), 1e-9) {
				t.Fatalf("trial %d dim %d: stddev %v vs %v", trial, d, sd[d], sws[d].StdDev())
			}
		}
	}
}
