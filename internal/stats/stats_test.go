package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if got, want := w.Mean(), 5.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	if got, want := w.Variance(), 4.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance() = %v, want %v", got, want)
	}
	if got, want := w.StdDev(), 2.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("StdDev() = %v, want %v", got, want)
	}
	if got, want := w.N(), len(xs); got != want {
		t.Errorf("N() = %d, want %d", got, want)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.SampleVariance() != 0 {
		t.Errorf("zero-value Welford should report zeros, got mean=%v var=%v", w.Mean(), w.Variance())
	}
	w.Add(42)
	if w.Mean() != 42 {
		t.Errorf("Mean after one sample = %v, want 42", w.Mean())
	}
	if w.Variance() != 0 {
		t.Errorf("Variance after one sample = %v, want 0", w.Variance())
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Errorf("Reset did not clear state: n=%d mean=%v", w.N(), w.Mean())
	}
}

func TestWelfordMatchesBatchProperty(t *testing.T) {
	f := func(xs []float64) bool {
		// Constrain to finite, moderate values.
		clean := xs[:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			clean = append(clean, math.Mod(x, 1e6))
		}
		var w Welford
		for _, x := range clean {
			w.Add(x)
		}
		scale := 1.0
		if len(clean) > 0 {
			if m := math.Abs(Mean(clean)); m > 1 {
				scale = m
			}
		}
		return almostEqual(w.Mean(), Mean(clean), 1e-6*scale) &&
			almostEqual(w.Variance(), Variance(clean), 1e-3*(1+w.Variance()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianOddEven(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"single", []float64{7}, 7},
		{"duplicates", []float64{5, 5, 5, 5}, 5},
		{"negatives", []float64{-3, -1, -2}, -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Median(tt.in)
			if err != nil {
				t.Fatalf("Median(%v) error: %v", tt.in, err)
			}
			if got != tt.want {
				t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMedianEmpty(t *testing.T) {
	if _, err := Median(nil); err == nil {
		t.Error("Median(nil) should return an error")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestMustMedianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMedian(nil) did not panic")
		}
	}()
	MustMedian(nil)
}

// Property: the median minimizes the count of elements strictly on one side —
// at most half of the elements are strictly below and at most half strictly above.
func TestMedianPartitionProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := MustMedian(clean)
		var below, above int
		for _, x := range clean {
			if x < m {
				below++
			}
			if x > m {
				above++
			}
		}
		return below <= len(clean)/2 && above <= len(clean)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianVector(t *testing.T) {
	vs := [][]float64{
		{1, 10, 0},
		{2, 20, 0},
		{3, 30, 100},
	}
	got, err := MedianVector(vs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 20, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MedianVector[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMedianVectorErrors(t *testing.T) {
	if _, err := MedianVector(nil); err == nil {
		t.Error("MedianVector(nil) should error")
	}
	if _, err := MedianVector([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("MedianVector with ragged input should error")
	}
}

func TestL1L2(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 0, 3}
	d1, err := L1(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != 5 {
		t.Errorf("L1 = %v, want 5", d1)
	}
	d2, err := L2(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d2, math.Sqrt(13), 1e-12) {
		t.Errorf("L2 = %v, want sqrt(13)", d2)
	}
	if _, err := L1(a, b[:2]); err == nil {
		t.Error("L1 dimension mismatch should error")
	}
	if _, err := L2(a, b[:2]); err == nil {
		t.Error("L2 dimension mismatch should error")
	}
}

// Property: L1 and L2 are metrics — symmetric, zero on identical input,
// and satisfy the triangle inequality.
func TestDistanceMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vec := func() []float64 {
		v := make([]float64, 8)
		for i := range v {
			v[i] = rng.NormFloat64() * 100
		}
		return v
	}
	for i := 0; i < 200; i++ {
		a, b, c := vec(), vec(), vec()
		for _, d := range []func(x, y []float64) (float64, error){L1, L2} {
			ab, _ := d(a, b)
			ba, _ := d(b, a)
			aa, _ := d(a, a)
			ac, _ := d(a, c)
			cb, _ := d(c, b)
			if !almostEqual(ab, ba, 1e-9) {
				t.Fatalf("distance not symmetric: %v vs %v", ab, ba)
			}
			if !almostEqual(aa, 0, 1e-12) {
				t.Fatalf("d(a,a) = %v, want 0", aa)
			}
			if ab > ac+cb+1e-9 {
				t.Fatalf("triangle inequality violated: %v > %v + %v", ab, ac, cb)
			}
		}
	}
}

func TestLogScale(t *testing.T) {
	x := []float64{0, math.E - 1, 100}
	sigma := []float64{1, 1, 2}
	got, err := LogScale(x, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("LogScale(0) = %v, want 0", got[0])
	}
	if !almostEqual(got[1], 1, 1e-12) {
		t.Errorf("LogScale(e-1) = %v, want 1", got[1])
	}
	if !almostEqual(got[2], math.Log1p(100)/2, 1e-12) {
		t.Errorf("LogScale(100)/2 = %v", got[2])
	}
}

func TestLogScaleZeroSigmaAndNegatives(t *testing.T) {
	got, err := LogScale([]float64{5, -3}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got[0], math.Log1p(5), 1e-12) {
		t.Errorf("zero sigma should behave as 1, got %v", got[0])
	}
	if got[1] != 0 {
		t.Errorf("negative metric should clamp to 0 before log, got %v", got[1])
	}
	if _, err := LogScale([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("LogScale dimension mismatch should error")
	}
}

func TestMeanVarianceEdgeCases(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
	if StdDev([]float64{1, 1, 1}) != 0 {
		t.Error("StdDev of constant series should be 0")
	}
}
