package stats

import (
	"fmt"
	"math"
)

// Window is a fixed-capacity sliding window of scalar samples backed by a
// ring buffer. Once full, each Push evicts the oldest sample.
type Window struct {
	buf  []float64
	head int
	n    int
}

// NewWindow creates a window holding at most capacity samples.
// It panics if capacity is not positive (a programming error).
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic(fmt.Sprintf("stats: window capacity must be positive, got %d", capacity))
	}
	return &Window{buf: make([]float64, capacity)}
}

// Push appends a sample, evicting the oldest if the window is full.
func (w *Window) Push(x float64) {
	if w.n < len(w.buf) {
		w.buf[(w.head+w.n)%len(w.buf)] = x
		w.n++
		return
	}
	w.buf[w.head] = x
	w.head = (w.head + 1) % len(w.buf)
}

// Len reports the number of samples currently held.
func (w *Window) Len() int { return w.n }

// Cap reports the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether the window holds Cap() samples.
func (w *Window) Full() bool { return w.n == len(w.buf) }

// Values returns the samples in insertion order (oldest first).
func (w *Window) Values() []float64 {
	out := make([]float64, w.n)
	for i := 0; i < w.n; i++ {
		out[i] = w.buf[(w.head+i)%len(w.buf)]
	}
	return out
}

// Mean computes the mean of the samples currently in the window.
func (w *Window) Mean() float64 { return Mean(w.Values()) }

// StdDev computes the population standard deviation of the current samples.
func (w *Window) StdDev() float64 { return StdDev(w.Values()) }

// Reset empties the window.
func (w *Window) Reset() {
	w.head = 0
	w.n = 0
}

// VectorWindow is a fixed-capacity sliding window of equal-dimension vector
// samples. It powers the mavgvec module.
type VectorWindow struct {
	dim  int
	rows []([]float64)
	head int
	n    int
}

// NewVectorWindow creates a window of capacity vectors of dimension dim.
// It panics if capacity or dim is not positive (a programming error).
func NewVectorWindow(capacity, dim int) *VectorWindow {
	if capacity <= 0 || dim <= 0 {
		panic(fmt.Sprintf("stats: invalid vector window capacity=%d dim=%d", capacity, dim))
	}
	rows := make([][]float64, capacity)
	for i := range rows {
		rows[i] = make([]float64, dim)
	}
	return &VectorWindow{dim: dim, rows: rows}
}

// Dim reports the vector dimension.
func (w *VectorWindow) Dim() int { return w.dim }

// Len reports the number of vectors currently held.
func (w *VectorWindow) Len() int { return w.n }

// Cap reports the window capacity.
func (w *VectorWindow) Cap() int { return len(w.rows) }

// Full reports whether the window is at capacity.
func (w *VectorWindow) Full() bool { return w.n == len(w.rows) }

// Push copies v into the window, evicting the oldest vector if full.
// It returns an error if v has the wrong dimension.
func (w *VectorWindow) Push(v []float64) error {
	if len(v) != w.dim {
		return fmt.Errorf("stats: vector window push dimension %d, want %d", len(v), w.dim)
	}
	var slot []float64
	if w.n < len(w.rows) {
		slot = w.rows[(w.head+w.n)%len(w.rows)]
		w.n++
	} else {
		slot = w.rows[w.head]
		w.head = (w.head + 1) % len(w.rows)
	}
	copy(slot, v)
	return nil
}

// Mean computes the component-wise mean over the current window contents.
func (w *VectorWindow) Mean() []float64 {
	return w.MeanInto(make([]float64, w.dim))
}

// MeanInto computes the component-wise mean into dst (length Dim) and
// returns it, allocating nothing. It panics on a wrong-sized dst (a
// programming error, matching the constructor's contract).
func (w *VectorWindow) MeanInto(dst []float64) []float64 {
	if len(dst) != w.dim {
		panic(fmt.Sprintf("stats: vector window mean dst dimension %d, want %d", len(dst), w.dim))
	}
	for d := range dst {
		dst[d] = 0
	}
	if w.n == 0 {
		return dst
	}
	for i := 0; i < w.n; i++ {
		row := w.rows[(w.head+i)%len(w.rows)]
		for d, x := range row {
			dst[d] += x
		}
	}
	for d := range dst {
		dst[d] /= float64(w.n)
	}
	return dst
}

// Variance computes the component-wise population variance over the window.
func (w *VectorWindow) Variance() []float64 {
	return w.VarianceInto(make([]float64, w.dim), make([]float64, w.dim))
}

// VarianceInto computes the component-wise population variance into dst,
// using meanScratch (length Dim) for the intermediate mean, and returns
// dst. The two buffers must not alias.
func (w *VectorWindow) VarianceInto(dst, meanScratch []float64) []float64 {
	if len(dst) != w.dim {
		panic(fmt.Sprintf("stats: vector window variance dst dimension %d, want %d", len(dst), w.dim))
	}
	for d := range dst {
		dst[d] = 0
	}
	if w.n < 2 {
		return dst
	}
	mean := w.MeanInto(meanScratch)
	for i := 0; i < w.n; i++ {
		row := w.rows[(w.head+i)%len(w.rows)]
		for d, x := range row {
			diff := x - mean[d]
			dst[d] += diff * diff
		}
	}
	for d := range dst {
		dst[d] /= float64(w.n)
	}
	return dst
}

// StdDev computes the component-wise population standard deviation.
func (w *VectorWindow) StdDev() []float64 {
	v := w.Variance()
	for d := range v {
		v[d] = math.Sqrt(v[d])
	}
	return v
}

// Column returns the time series of component d (oldest first).
func (w *VectorWindow) Column(d int) []float64 {
	out := make([]float64, w.n)
	for i := 0; i < w.n; i++ {
		out[i] = w.rows[(w.head+i)%len(w.rows)][d]
	}
	return out
}

// Reset empties the window.
func (w *VectorWindow) Reset() {
	w.head = 0
	w.n = 0
}
