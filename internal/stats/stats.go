// Package stats provides the small numeric toolkit used throughout ASDF:
// streaming mean/variance (Welford), sliding windows, medians, vector
// distances and the log-scaling transform applied to black-box metrics.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Welford accumulates mean and variance in a single pass using Welford's
// algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N reports the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean reports the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the population variance (0 when fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance reports the unbiased sample variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev reports the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Reset returns the accumulator to its zero state.
func (w *Welford) Reset() { *w = Welford{} }

// Mean computes the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance computes the population variance of xs.
func Variance(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Variance()
}

// StdDev computes the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median computes the median of xs without modifying it.
// The median of an even-length input is the mean of the two middle values.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid], nil
	}
	// Averaging halves first avoids overflow for extreme magnitudes.
	return cp[mid-1]/2 + cp[mid]/2, nil
}

// MustMedian is Median for inputs known to be non-empty; it panics on empty
// input, which indicates a programming error in the caller.
func MustMedian(xs []float64) float64 {
	m, err := Median(xs)
	if err != nil {
		panic("stats: MustMedian on empty slice")
	}
	return m
}

// MedianInPlace computes the median of xs, sorting xs as a side effect.
// Use Median when the input must be preserved.
func MedianInPlace(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid], nil
	}
	// Averaging halves first avoids overflow for extreme magnitudes.
	return xs[mid-1]/2 + xs[mid]/2, nil
}

// QuickMedianInPlace computes the median of xs by quickselect, permuting xs
// as a side effect. It returns bit-for-bit the value MedianInPlace would
// (for NaN-free input): the k-th order statistic of a multiset does not
// depend on how it is found, and the even-length case averages the same two
// order statistics with the same overflow-avoiding halves-first formula.
// Unlike the sort-based path it runs in O(n) expected time and never
// allocates, which is what the peer-comparison analyses need at 1024-node
// column widths.
func QuickMedianInPlace(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mid := len(xs) / 2
	hi := selectKth(xs, mid)
	if len(xs)%2 == 1 {
		return hi, nil
	}
	// selectKth leaves every element of xs[:mid] <= xs[mid], so the
	// (mid-1)-th order statistic is simply the max of that prefix.
	lo := xs[0]
	for _, v := range xs[1:mid] {
		if v > lo {
			lo = v
		}
	}
	// Averaging halves first avoids overflow for extreme magnitudes.
	return lo/2 + hi/2, nil
}

// selectKth partially sorts xs so that xs[k] holds the k-th smallest
// element, everything before it is <= xs[k], and everything after is >=
// xs[k]. It uses iterative quickselect with a median-of-three pivot and a
// three-way (Dutch national flag) partition, so heavily tied columns — the
// common case for black-box state indexes — collapse in one pass instead of
// degrading quadratically. No allocation.
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot: order xs[lo] <= xs[mid] <= xs[hi].
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		// Three-way partition of xs[lo..hi] around pivot:
		// xs[lo:lt] < pivot, xs[lt:gt+1] == pivot, xs[gt+1:hi+1] > pivot.
		lt, i, gt := lo, lo, hi
		for i <= gt {
			switch {
			case xs[i] < pivot:
				xs[lt], xs[i] = xs[i], xs[lt]
				lt++
				i++
			case xs[i] > pivot:
				xs[i], xs[gt] = xs[gt], xs[i]
				gt--
			default:
				i++
			}
		}
		switch {
		case k < lt:
			hi = lt - 1
		case k > gt:
			lo = gt + 1
		default:
			return xs[k]
		}
	}
	return xs[lo]
}

// MedianVector computes the component-wise median across a set of
// equal-length vectors, as used by the peer-comparison analyses.
func MedianVector(vs [][]float64) ([]float64, error) {
	if len(vs) == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, len(vs[0]))
	if err := MedianVectorInto(out, make([]float64, len(vs)), vs); err != nil {
		return nil, err
	}
	return out, nil
}

// MedianVectorInto is the allocation-free MedianVector: the component-wise
// medians are written to dst (length = vector dimension), using col (length
// = len(vs)) as sorting scratch. Both buffers may be reused across calls.
func MedianVectorInto(dst, col []float64, vs [][]float64) error {
	if len(vs) == 0 {
		return ErrEmpty
	}
	dim := len(vs[0])
	for i, v := range vs {
		if len(v) != dim {
			return fmt.Errorf("stats: vector %d has dimension %d, want %d", i, len(v), dim)
		}
	}
	if len(dst) != dim {
		return fmt.Errorf("stats: median dst has dimension %d, want %d", len(dst), dim)
	}
	if len(col) != len(vs) {
		return fmt.Errorf("stats: median scratch has length %d, want %d", len(col), len(vs))
	}
	for d := 0; d < dim; d++ {
		for i, v := range vs {
			col[i] = v[d]
		}
		// Quickselect instead of a full sort: O(len(vs)) per component
		// instead of O(len(vs) log len(vs)), bit-identical result.
		m, err := QuickMedianInPlace(col)
		if err != nil {
			return err
		}
		dst[d] = m
	}
	return nil
}

// L1 computes the L1 (Manhattan) distance between a and b.
func L1(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: L1 dimension mismatch: %d vs %d", len(a), len(b))
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s, nil
}

// L2 computes the Euclidean distance between a and b.
func L2(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: L2 dimension mismatch: %d vs %d", len(a), len(b))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// LogScale applies the paper's black-box transform x -> log(1+x)/sigma
// component-wise. Sigma components that are zero or negative are treated as 1
// so that constant metrics do not blow up the scaled space.
func LogScale(x, sigma []float64) ([]float64, error) {
	out := make([]float64, len(x))
	if err := LogScaleInto(out, x, sigma); err != nil {
		return nil, err
	}
	return out, nil
}

// LogScaleInto is the allocation-free LogScale: the transformed vector is
// written to dst, which must have the input's length and may alias x (the
// transform is element-wise).
func LogScaleInto(dst, x, sigma []float64) error {
	if len(x) != len(sigma) {
		return fmt.Errorf("stats: LogScale dimension mismatch: %d vs %d", len(x), len(sigma))
	}
	if len(dst) != len(x) {
		return fmt.Errorf("stats: LogScale dst length %d, want %d", len(dst), len(x))
	}
	for i, v := range x {
		s := sigma[i]
		if s <= 0 {
			s = 1
		}
		dst[i] = math.Log1p(math.Max(v, 0)) / s
	}
	return nil
}
