// Package sadc is ASDF's equivalent of the sysstat system activity data
// collector library (libsadc, §3.5). It turns consecutive procfs snapshots
// into rate-converted metric vectors: 64 node-level metrics, 18 metrics per
// network interface, and 19 metrics per monitored process — the same
// cardinality the paper reports for its sadc module.
package sadc

import (
	"fmt"
	"time"

	"github.com/asdf-project/asdf/internal/procfs"
)

// Jiffy and page-size constants for rate conversion. Values match the
// conventional Linux configuration (USER_HZ=100, 4 KiB pages); the
// simulator emits counters with the same conventions.
const (
	jiffiesPerSecond = 100.0
	pageSizeKB       = 4.0
	sectorSizeBytes  = 512.0
)

// NodeMetricNames lists the node-level metrics, in vector order.
// The count (64) matches §3.5 of the paper.
var NodeMetricNames = []string{
	// CPU (from /proc/stat), percentages of total jiffies.
	"cpu_user_pct", "cpu_nice_pct", "cpu_system_pct", "cpu_iowait_pct",
	"cpu_steal_pct", "cpu_idle_pct", "cpu_busy_pct", "cpu_count",
	// Kernel activity rates.
	"ctxt_per_sec", "intr_per_sec", "forks_per_sec",
	"procs_running", "procs_blocked", "procs_total",
	// Load averages and run queue (from /proc/loadavg).
	"load_avg_1", "load_avg_5", "load_avg_15", "runq_size",
	// Paging and faults (from /proc/vmstat).
	"pgpgin_kb_per_sec", "pgpgout_kb_per_sec", "fault_per_sec",
	"majflt_per_sec", "pgfree_per_sec", "pgscank_per_sec",
	"pswpin_per_sec", "pswpout_per_sec",
	// Memory gauges (from /proc/meminfo), kB unless noted.
	"mem_total_kb", "mem_free_kb", "mem_used_kb", "mem_used_pct",
	"mem_buffers_kb", "mem_cached_kb", "mem_active_kb", "mem_inactive_kb",
	"mem_dirty_kb", "mem_writeback_kb", "mem_commit_kb", "mem_commit_pct",
	// Swap gauges.
	"swap_total_kb", "swap_free_kb", "swap_used_kb", "swap_used_pct",
	// Disk, aggregated over devices (from /proc/diskstats).
	"disk_tps", "disk_rtps", "disk_wtps",
	"disk_read_kb_per_sec", "disk_write_kb_per_sec",
	"disk_reads_merged_per_sec", "disk_writes_merged_per_sec",
	"disk_read_time_ms_per_sec", "disk_write_time_ms_per_sec",
	"disk_io_in_progress", "disk_io_time_ms_per_sec", "disk_util_pct",
	"disk_weighted_io_ms_per_sec",
	// Network, aggregated over interfaces (from /proc/net/dev).
	"net_rx_kb_per_sec", "net_tx_kb_per_sec",
	"net_rx_pkts_per_sec", "net_tx_pkts_per_sec",
	"net_rx_errs_per_sec", "net_tx_errs_per_sec",
	"net_rx_drop_per_sec", "net_tx_drop_per_sec",
	// Uptime.
	"uptime_sec",
}

// NetMetricNames lists the per-interface metrics, in vector order.
// The count (18) matches §3.5 of the paper.
var NetMetricNames = []string{
	"rx_bytes_per_sec", "tx_bytes_per_sec",
	"rx_kb_per_sec", "tx_kb_per_sec",
	"rx_pkts_per_sec", "tx_pkts_per_sec",
	"rx_compressed_per_sec", "tx_compressed_per_sec",
	"rx_multicast_per_sec",
	"rx_errs_per_sec", "tx_errs_per_sec",
	"rx_drop_per_sec", "tx_drop_per_sec",
	"rx_fifo_per_sec", "tx_fifo_per_sec",
	"rx_frame_per_sec", "tx_carrier_per_sec", "collisions_per_sec",
}

// ProcMetricNames lists the per-process metrics, in vector order.
// The count (19) matches §3.5 of the paper.
var ProcMetricNames = []string{
	"cpu_user_pct", "cpu_system_pct", "cpu_total_pct",
	"cpu_user_sec_total", "cpu_system_sec_total", "cpu_sec_total",
	"minflt_per_sec", "majflt_per_sec", "faults_total",
	"vsz_kb", "rss_kb", "rss_pages", "mem_pct",
	"num_threads", "running", "state_code",
	"io_read_kb_per_sec", "io_write_kb_per_sec", "io_kb_per_sec",
}

// AnalysisMetricNames is the node-metric subset the black-box analysis
// classifies on by default. The authors' companion black-box work (Ganesha
// [19], cited by the paper as the source of its black-box methodology)
// selects a small set of sar-style resource metrics rather than the full
// 64-metric vector; classifying on resource utilization directly keeps the
// workload states aligned with what faults actually perturb.
var AnalysisMetricNames = []string{
	"cpu_user_pct", "cpu_system_pct", "cpu_iowait_pct", "cpu_busy_pct",
	"ctxt_per_sec", "runq_size", "procs_blocked", "load_avg_1",
	"pgpgin_kb_per_sec", "pgpgout_kb_per_sec",
	"disk_read_kb_per_sec", "disk_write_kb_per_sec", "disk_util_pct",
	"net_rx_kb_per_sec", "net_tx_kb_per_sec",
	"net_rx_pkts_per_sec", "net_tx_pkts_per_sec",
	"mem_used_pct",
}

// CPUHogPerturbation returns a synthetic-fault probe for model training: it
// rewrites a full node-metric vector as the same node would look with a
// rogue process consuming most of its spare CPU. Model selection uses it to
// reject candidate models that are insensitive to exactly the contrast the
// black-box analysis must detect.
func CPUHogPerturbation() func(raw []float64) []float64 {
	idx := func(name string) int {
		for i, n := range NodeMetricNames {
			if n == name {
				return i
			}
		}
		panic("sadc: unknown metric " + name) // unreachable: names are internal constants
	}
	user := idx("cpu_user_pct")
	busy := idx("cpu_busy_pct")
	idle := idx("cpu_idle_pct")
	runq := idx("runq_size")
	load1 := idx("load_avg_1")
	load5 := idx("load_avg_5")
	load15 := idx("load_avg_15")
	ctxt := idx("ctxt_per_sec")
	return func(raw []float64) []float64 {
		grab := raw[idle] * 0.8 // the hog takes most of the idle headroom
		raw[user] += grab
		raw[busy] += grab
		raw[idle] -= grab
		raw[runq] += 2.8
		raw[load1] += 2.8
		raw[load5] += 2.5
		raw[load15] += 2.2
		raw[ctxt] *= 1.4
		return raw
	}
}

// NodeMetricIndexes resolves node-metric names to their vector indexes.
func NodeMetricIndexes(names []string) ([]int, error) {
	out := make([]int, 0, len(names))
	for _, name := range names {
		idx := -1
		for i, n := range NodeMetricNames {
			if n == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("sadc: unknown node metric %q", name)
		}
		out = append(out, idx)
	}
	return out, nil
}

// Record is one collection iteration: rate-converted vectors for the node,
// each network interface, and each monitored process.
type Record struct {
	// Time is the snapshot timestamp.
	Time time.Time
	// Node holds the node-level vector, ordered as NodeMetricNames.
	Node []float64
	// Net maps interface name to a vector ordered as NetMetricNames.
	Net map[string][]float64
	// Proc maps pid to a vector ordered as ProcMetricNames.
	Proc map[int][]float64
	// ProcComm maps pid to the process command name.
	ProcComm map[int]string
	// Warmup is true for the first record, whose rate metrics are zero
	// because no previous snapshot exists.
	Warmup bool
}

// Collector converts successive snapshots from a Provider into Records.
// Not safe for concurrent use; each monitored node gets its own Collector.
type Collector struct {
	provider procfs.Provider
	prev     *procfs.Snapshot
}

// NewCollector creates a Collector reading from p.
func NewCollector(p procfs.Provider) *Collector {
	return &Collector{provider: p}
}

// Collect takes a snapshot and returns the metric record relative to the
// previous snapshot. The first call returns a warmup record with gauge
// metrics filled and rate metrics zero.
func (c *Collector) Collect() (*Record, error) {
	snap, err := c.provider.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("sadc: %w", err)
	}
	prev := c.prev
	c.prev = snap

	rec := &Record{
		Time:     snap.Time,
		Net:      make(map[string][]float64, len(snap.Nets)),
		Proc:     make(map[int][]float64, len(snap.Procs)),
		ProcComm: make(map[int]string, len(snap.Procs)),
		Warmup:   prev == nil,
	}

	var dt float64
	if prev != nil {
		dt = snap.Time.Sub(prev.Time).Seconds()
	}
	if dt <= 0 {
		dt = 1
		if prev != nil && !snap.Time.After(prev.Time) {
			// Clock did not advance; treat as warmup to avoid bogus rates.
			prev = nil
			rec.Warmup = true
		}
	}

	rec.Node = nodeVector(snap, prev, dt)
	for i := range snap.Nets {
		cur := &snap.Nets[i]
		var old *procfs.NetDevStat
		if prev != nil {
			for j := range prev.Nets {
				if prev.Nets[j].Iface == cur.Iface {
					old = &prev.Nets[j]
					break
				}
			}
		}
		rec.Net[cur.Iface] = netVector(cur, old, dt)
	}
	for i := range snap.Procs {
		cur := &snap.Procs[i]
		var old *procfs.PIDStat
		if prev != nil {
			for j := range prev.Procs {
				if prev.Procs[j].PID == cur.PID && prev.Procs[j].StartTime == cur.StartTime {
					old = &prev.Procs[j]
					break
				}
			}
		}
		rec.Proc[cur.PID] = procVector(cur, old, dt, snap.Mem.MemTotal)
		rec.ProcComm[cur.PID] = cur.Comm
	}
	return rec, nil
}

// rate converts a counter delta to a per-second rate, clamping negative
// deltas (counter wrap or process restart) to zero.
func rate(cur, old uint64, dt float64) float64 {
	if cur < old {
		return 0
	}
	return float64(cur-old) / dt
}

func nodeVector(snap, prev *procfs.Snapshot, dt float64) []float64 {
	v := make([]float64, len(NodeMetricNames))
	i := 0
	set := func(x float64) {
		v[i] = x
		i++
	}

	// CPU percentages over the interval.
	var du, dn, ds, dw, dst, di, dbusy, dtotal float64
	if prev != nil {
		cur, old := snap.Stat.CPUTotal, prev.Stat.CPUTotal
		dtotal = float64(cur.Total() - old.Total())
		if dtotal > 0 {
			du = float64(cur.User-old.User) / dtotal * 100
			dn = float64(cur.Nice-old.Nice) / dtotal * 100
			ds = float64(cur.System-old.System) / dtotal * 100
			dw = float64(cur.IOWait-old.IOWait) / dtotal * 100
			dst = float64(cur.Steal-old.Steal) / dtotal * 100
			di = float64(cur.Idle-old.Idle) / dtotal * 100
			dbusy = float64(cur.Busy()-old.Busy()) / dtotal * 100
		}
	}
	set(du)
	set(dn)
	set(ds)
	set(dw)
	set(dst)
	set(di)
	set(dbusy)
	set(float64(len(snap.Stat.PerCPU)))

	if prev != nil {
		set(rate(snap.Stat.ContextSwitches, prev.Stat.ContextSwitches, dt))
		set(rate(snap.Stat.Interrupts, prev.Stat.Interrupts, dt))
		set(rate(snap.Stat.Processes, prev.Stat.Processes, dt))
	} else {
		set(0)
		set(0)
		set(0)
	}
	set(float64(snap.Stat.ProcsRunning))
	set(float64(snap.Stat.ProcsBlocked))
	set(float64(snap.Load.Total))

	set(snap.Load.Load1)
	set(snap.Load.Load5)
	set(snap.Load.Load15)
	set(float64(snap.Load.Running))

	if prev != nil {
		set(rate(snap.VM.PgpgIn, prev.VM.PgpgIn, dt))
		set(rate(snap.VM.PgpgOut, prev.VM.PgpgOut, dt))
		set(rate(snap.VM.PgFault, prev.VM.PgFault, dt))
		set(rate(snap.VM.PgMajFault, prev.VM.PgMajFault, dt))
		set(rate(snap.VM.PgFree, prev.VM.PgFree, dt))
		set(rate(snap.VM.PgScanKswapd, prev.VM.PgScanKswapd, dt))
		set(rate(snap.VM.PswpIn, prev.VM.PswpIn, dt))
		set(rate(snap.VM.PswpOut, prev.VM.PswpOut, dt))
	} else {
		for k := 0; k < 8; k++ {
			set(0)
		}
	}

	m := snap.Mem
	set(float64(m.MemTotal))
	set(float64(m.MemFree))
	set(float64(m.Used()))
	set(pct(float64(m.Used()), float64(m.MemTotal)))
	set(float64(m.Buffers))
	set(float64(m.Cached))
	set(float64(m.Active))
	set(float64(m.Inactive))
	set(float64(m.Dirty))
	set(float64(m.Writeback))
	set(float64(m.CommittedAS))
	set(pct(float64(m.CommittedAS), float64(m.MemTotal+m.SwapTotal)))

	swapUsed := uint64(0)
	if m.SwapTotal > m.SwapFree {
		swapUsed = m.SwapTotal - m.SwapFree
	}
	set(float64(m.SwapTotal))
	set(float64(m.SwapFree))
	set(float64(swapUsed))
	set(pct(float64(swapUsed), float64(m.SwapTotal)))

	// Disk aggregate.
	var reads, writes, sectR, sectW, rMerged, wMerged, rTime, wTime, inProg, ioTime, wIOTime float64
	for i := range snap.Disks {
		cur := &snap.Disks[i]
		var old *procfs.DiskStat
		if prev != nil {
			for j := range prev.Disks {
				if prev.Disks[j].Name == cur.Name {
					old = &prev.Disks[j]
					break
				}
			}
		}
		if old == nil {
			inProg += float64(cur.IOInProgress)
			continue
		}
		reads += rate(cur.ReadsCompleted, old.ReadsCompleted, dt)
		writes += rate(cur.WritesCompleted, old.WritesCompleted, dt)
		sectR += rate(cur.SectorsRead, old.SectorsRead, dt)
		sectW += rate(cur.SectorsWritten, old.SectorsWritten, dt)
		rMerged += rate(cur.ReadsMerged, old.ReadsMerged, dt)
		wMerged += rate(cur.WritesMerged, old.WritesMerged, dt)
		rTime += rate(cur.ReadTimeMs, old.ReadTimeMs, dt)
		wTime += rate(cur.WriteTimeMs, old.WriteTimeMs, dt)
		inProg += float64(cur.IOInProgress)
		ioTime += rate(cur.IOTimeMs, old.IOTimeMs, dt)
		wIOTime += rate(cur.WeightedIOMs, old.WeightedIOMs, dt)
	}
	set(reads + writes)
	set(reads)
	set(writes)
	set(sectR * sectorSizeBytes / 1024)
	set(sectW * sectorSizeBytes / 1024)
	set(rMerged)
	set(wMerged)
	set(rTime)
	set(wTime)
	set(inProg)
	set(ioTime)
	set(minFloat(ioTime/10, 100)) // ms of io per second -> % utilization
	set(wIOTime)

	// Network aggregate.
	var rxB, txB, rxP, txP, rxE, txE, rxD, txD float64
	for i := range snap.Nets {
		cur := &snap.Nets[i]
		var old *procfs.NetDevStat
		if prev != nil {
			for j := range prev.Nets {
				if prev.Nets[j].Iface == cur.Iface {
					old = &prev.Nets[j]
					break
				}
			}
		}
		if old == nil {
			continue
		}
		rxB += rate(cur.RxBytes, old.RxBytes, dt)
		txB += rate(cur.TxBytes, old.TxBytes, dt)
		rxP += rate(cur.RxPackets, old.RxPackets, dt)
		txP += rate(cur.TxPackets, old.TxPackets, dt)
		rxE += rate(cur.RxErrors, old.RxErrors, dt)
		txE += rate(cur.TxErrors, old.TxErrors, dt)
		rxD += rate(cur.RxDropped, old.RxDropped, dt)
		txD += rate(cur.TxDropped, old.TxDropped, dt)
	}
	set(rxB / 1024)
	set(txB / 1024)
	set(rxP)
	set(txP)
	set(rxE)
	set(txE)
	set(rxD)
	set(txD)

	set(snap.Uptime)

	if i != len(NodeMetricNames) {
		panic(fmt.Sprintf("sadc: node vector filled %d of %d metrics", i, len(NodeMetricNames)))
	}
	return v
}

func netVector(cur, old *procfs.NetDevStat, dt float64) []float64 {
	v := make([]float64, len(NetMetricNames))
	if old == nil {
		return v
	}
	rxB := rate(cur.RxBytes, old.RxBytes, dt)
	txB := rate(cur.TxBytes, old.TxBytes, dt)
	vals := []float64{
		rxB, txB,
		rxB / 1024, txB / 1024,
		rate(cur.RxPackets, old.RxPackets, dt), rate(cur.TxPackets, old.TxPackets, dt),
		rate(cur.RxCompressed, old.RxCompressed, dt), rate(cur.TxCompressed, old.TxCompressed, dt),
		rate(cur.RxMulticast, old.RxMulticast, dt),
		rate(cur.RxErrors, old.RxErrors, dt), rate(cur.TxErrors, old.TxErrors, dt),
		rate(cur.RxDropped, old.RxDropped, dt), rate(cur.TxDropped, old.TxDropped, dt),
		rate(cur.RxFIFO, old.RxFIFO, dt), rate(cur.TxFIFO, old.TxFIFO, dt),
		rate(cur.RxFrame, old.RxFrame, dt), rate(cur.TxCarrier, old.TxCarrier, dt),
		rate(cur.TxCollisions, old.TxCollisions, dt),
	}
	copy(v, vals)
	return v
}

func procVector(cur, old *procfs.PIDStat, dt float64, memTotalKB uint64) []float64 {
	v := make([]float64, len(ProcMetricNames))
	i := 0
	set := func(x float64) {
		v[i] = x
		i++
	}

	var userPct, sysPct float64
	var minfltRate, majfltRate, ioR, ioW float64
	if old != nil {
		userPct = rate(cur.UTime, old.UTime, dt) / jiffiesPerSecond * 100
		sysPct = rate(cur.STime, old.STime, dt) / jiffiesPerSecond * 100
		minfltRate = rate(cur.MinFlt, old.MinFlt, dt)
		majfltRate = rate(cur.MajFlt, old.MajFlt, dt)
		ioR = rate(cur.ReadBytes, old.ReadBytes, dt) / 1024
		ioW = rate(cur.WriteBytes, old.WriteBytes, dt) / 1024
	}
	set(userPct)
	set(sysPct)
	set(userPct + sysPct)
	set(float64(cur.UTime) / jiffiesPerSecond)
	set(float64(cur.STime) / jiffiesPerSecond)
	set(float64(cur.UTime+cur.STime) / jiffiesPerSecond)
	set(minfltRate)
	set(majfltRate)
	set(float64(cur.MinFlt + cur.MajFlt))

	rssKB := float64(cur.RSSPages) * pageSizeKB
	if cur.VMRSSkB > 0 {
		rssKB = float64(cur.VMRSSkB)
	}
	set(float64(cur.VSizeBytes) / 1024)
	set(rssKB)
	set(float64(cur.RSSPages))
	set(pct(rssKB, float64(memTotalKB)))

	set(float64(cur.NumThreads))
	if cur.State == 'R' {
		set(1)
	} else {
		set(0)
	}
	set(float64(cur.State))

	set(ioR)
	set(ioW)
	set(ioR + ioW)

	if i != len(ProcMetricNames) {
		panic(fmt.Sprintf("sadc: proc vector filled %d of %d metrics", i, len(ProcMetricNames)))
	}
	return v
}

func pct(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return part / whole * 100
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
