package sadc

import (
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/procfs"
)

// fakeProvider replays a fixed sequence of snapshots.
type fakeProvider struct {
	snaps []*procfs.Snapshot
	idx   int
}

func (f *fakeProvider) Snapshot() (*procfs.Snapshot, error) {
	if f.idx >= len(f.snaps) {
		f.idx = len(f.snaps) - 1
	}
	s := f.snaps[f.idx]
	f.idx++
	return s, nil
}

func baseSnapshot(t time.Time) *procfs.Snapshot {
	return &procfs.Snapshot{
		Time:   t,
		Uptime: 1000,
		Stat: procfs.Stat{
			CPUTotal:        procfs.CPUStat{User: 1000, Nice: 10, System: 500, Idle: 8000, IOWait: 100},
			PerCPU:          []procfs.CPUStat{{}, {}, {}, {}},
			ContextSwitches: 100000,
			Interrupts:      50000,
			Processes:       2000,
			ProcsRunning:    2,
			ProcsBlocked:    0,
		},
		Mem: procfs.Meminfo{
			MemTotal: 7864320, MemFree: 3932160, Buffers: 100000, Cached: 500000,
			SwapTotal: 1000000, SwapFree: 900000, Active: 200000, Inactive: 100000,
			Dirty: 2048, CommittedAS: 4000000,
		},
		VM:   procfs.VMStat{PgpgIn: 1000, PgpgOut: 2000, PgFault: 50000, PgMajFault: 10},
		Load: procfs.LoadAvg{Load1: 1.5, Load5: 1.0, Load15: 0.5, Running: 2, Total: 150},
		Disks: []procfs.DiskStat{{
			Name: "sda", ReadsCompleted: 1000, WritesCompleted: 2000,
			SectorsRead: 80000, SectorsWritten: 160000, IOTimeMs: 5000, WeightedIOMs: 7000,
		}},
		Nets: []procfs.NetDevStat{{
			Iface: "eth0", RxBytes: 1 << 20, TxBytes: 2 << 20, RxPackets: 10000, TxPackets: 20000,
		}},
		Procs: []procfs.PIDStat{{
			PID: 42, Comm: "java", State: 'R', UTime: 500, STime: 100,
			NumThreads: 30, StartTime: 100, VSizeBytes: 1 << 30, RSSPages: 50000,
			MinFlt: 1000, MajFlt: 5, ReadBytes: 1 << 20, WriteBytes: 2 << 20,
		}},
	}
}

// advance mutates a copy of snap one second later with known deltas.
func advance(snap *procfs.Snapshot) *procfs.Snapshot {
	next := *snap
	next.Time = snap.Time.Add(time.Second)
	next.Uptime++
	st := snap.Stat
	st.CPUTotal.User += 50     // 50 jiffies user
	st.CPUTotal.System += 20   // 20 jiffies system
	st.CPUTotal.Idle += 25     // 25 jiffies idle
	st.CPUTotal.IOWait += 5    // 5 jiffies iowait -> total delta 100
	st.ContextSwitches += 3000 // 3000 ctxt/s
	st.Interrupts += 1500
	st.Processes += 10
	next.Stat = st

	vm := snap.VM
	vm.PgpgIn += 400 // kB/s
	vm.PgFault += 250
	next.VM = vm

	disks := make([]procfs.DiskStat, len(snap.Disks))
	copy(disks, snap.Disks)
	disks[0].ReadsCompleted += 10
	disks[0].WritesCompleted += 20
	disks[0].SectorsRead += 2048    // 1024 kB/s read
	disks[0].SectorsWritten += 4096 // 2048 kB/s written
	disks[0].IOTimeMs += 500        // 50% util
	next.Disks = disks

	nets := make([]procfs.NetDevStat, len(snap.Nets))
	copy(nets, snap.Nets)
	nets[0].RxBytes += 1024 * 100 // 100 kB/s
	nets[0].TxBytes += 1024 * 200
	nets[0].RxPackets += 1000
	nets[0].TxPackets += 2000
	next.Nets = nets

	procs := make([]procfs.PIDStat, len(snap.Procs))
	copy(procs, snap.Procs)
	procs[0].UTime += 70 // 70% user cpu
	procs[0].STime += 10 // 10% system cpu
	procs[0].MinFlt += 100
	procs[0].ReadBytes += 1024 * 50
	procs[0].WriteBytes += 1024 * 25
	next.Procs = procs
	return &next
}

func metricIdx(t *testing.T, names []string, name string) int {
	t.Helper()
	for i, n := range names {
		if n == name {
			return i
		}
	}
	t.Fatalf("metric %q not in catalog", name)
	return -1
}

func TestMetricCatalogCardinality(t *testing.T) {
	// The paper reports exactly these counts (§3.5).
	if got := len(NodeMetricNames); got != 64 {
		t.Errorf("node metrics = %d, want 64", got)
	}
	if got := len(NetMetricNames); got != 18 {
		t.Errorf("net metrics = %d, want 18", got)
	}
	if got := len(ProcMetricNames); got != 19 {
		t.Errorf("proc metrics = %d, want 19", got)
	}
}

func TestMetricNamesUnique(t *testing.T) {
	for _, names := range [][]string{NodeMetricNames, NetMetricNames, ProcMetricNames} {
		seen := make(map[string]bool)
		for _, n := range names {
			if seen[n] {
				t.Errorf("duplicate metric name %q", n)
			}
			seen[n] = true
		}
	}
}

func TestCollectorWarmup(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewCollector(&fakeProvider{snaps: []*procfs.Snapshot{baseSnapshot(t0)}})
	rec, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Warmup {
		t.Error("first record should be warmup")
	}
	// Gauges are live even during warmup.
	if got := rec.Node[metricIdx(t, NodeMetricNames, "mem_total_kb")]; got != 7864320 {
		t.Errorf("mem_total_kb = %v", got)
	}
	if got := rec.Node[metricIdx(t, NodeMetricNames, "load_avg_1")]; got != 1.5 {
		t.Errorf("load_avg_1 = %v", got)
	}
	// Rates are zero during warmup.
	if got := rec.Node[metricIdx(t, NodeMetricNames, "ctxt_per_sec")]; got != 0 {
		t.Errorf("warmup ctxt_per_sec = %v, want 0", got)
	}
}

func TestCollectorRates(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s1 := baseSnapshot(t0)
	s2 := advance(s1)
	c := NewCollector(&fakeProvider{snaps: []*procfs.Snapshot{s1, s2}})
	if _, err := c.Collect(); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Warmup {
		t.Fatal("second record should not be warmup")
	}
	node := rec.Node
	check := func(name string, want float64) {
		t.Helper()
		got := node[metricIdx(t, NodeMetricNames, name)]
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("cpu_user_pct", 50)
	check("cpu_system_pct", 20)
	check("cpu_idle_pct", 25)
	check("cpu_iowait_pct", 5)
	check("cpu_busy_pct", 70)
	check("cpu_count", 4)
	check("ctxt_per_sec", 3000)
	check("intr_per_sec", 1500)
	check("forks_per_sec", 10)
	check("pgpgin_kb_per_sec", 400)
	check("fault_per_sec", 250)
	check("disk_tps", 30)
	check("disk_rtps", 10)
	check("disk_wtps", 20)
	check("disk_read_kb_per_sec", 1024)
	check("disk_write_kb_per_sec", 2048)
	check("disk_util_pct", 50)
	check("net_rx_kb_per_sec", 100)
	check("net_tx_kb_per_sec", 200)
	check("net_rx_pkts_per_sec", 1000)
	check("uptime_sec", 1001)

	eth := rec.Net["eth0"]
	if eth == nil {
		t.Fatal("eth0 vector missing")
	}
	if got := eth[metricIdx(t, NetMetricNames, "rx_kb_per_sec")]; got != 100 {
		t.Errorf("eth0 rx_kb_per_sec = %v", got)
	}
	if got := eth[metricIdx(t, NetMetricNames, "tx_pkts_per_sec")]; got != 2000 {
		t.Errorf("eth0 tx_pkts_per_sec = %v", got)
	}

	proc := rec.Proc[42]
	if proc == nil {
		t.Fatal("pid 42 vector missing")
	}
	pcheck := func(name string, want float64) {
		t.Helper()
		got := proc[metricIdx(t, ProcMetricNames, name)]
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("proc %s = %v, want %v", name, got, want)
		}
	}
	pcheck("cpu_user_pct", 70)
	pcheck("cpu_system_pct", 10)
	pcheck("cpu_total_pct", 80)
	pcheck("minflt_per_sec", 100)
	pcheck("rss_kb", 200000) // 50000 pages * 4 kB
	pcheck("num_threads", 30)
	pcheck("running", 1)
	pcheck("io_read_kb_per_sec", 50)
	pcheck("io_write_kb_per_sec", 25)
	pcheck("io_kb_per_sec", 75)
	if rec.ProcComm[42] != "java" {
		t.Errorf("ProcComm = %q", rec.ProcComm[42])
	}
}

func TestCollectorCounterWrap(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s1 := baseSnapshot(t0)
	s2 := advance(s1)
	// Simulate a counter reset: ctxt goes backwards.
	s2.Stat.ContextSwitches = 5
	c := NewCollector(&fakeProvider{snaps: []*procfs.Snapshot{s1, s2}})
	if _, err := c.Collect(); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Node[metricIdx(t, NodeMetricNames, "ctxt_per_sec")]; got != 0 {
		t.Errorf("wrapped counter rate = %v, want 0", got)
	}
}

func TestCollectorProcessRestart(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s1 := baseSnapshot(t0)
	s2 := advance(s1)
	// Same pid, different start time: a recycled pid must not produce rates
	// from the old process's counters.
	s2.Procs[0].StartTime = 99999
	s2.Procs[0].UTime = 5
	c := NewCollector(&fakeProvider{snaps: []*procfs.Snapshot{s1, s2}})
	if _, err := c.Collect(); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Proc[42][metricIdx(t, ProcMetricNames, "cpu_user_pct")]; got != 0 {
		t.Errorf("recycled pid cpu rate = %v, want 0", got)
	}
}

func TestCollectorClockStall(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s1 := baseSnapshot(t0)
	s2 := advance(s1)
	s2.Time = t0 // clock did not advance
	c := NewCollector(&fakeProvider{snaps: []*procfs.Snapshot{s1, s2}})
	if _, err := c.Collect(); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Warmup {
		t.Error("record with stalled clock should degrade to warmup")
	}
}

func TestCollectorNewInterfaceAppears(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s1 := baseSnapshot(t0)
	s2 := advance(s1)
	s2.Nets = append(s2.Nets, procfs.NetDevStat{Iface: "eth1", RxBytes: 999})
	c := NewCollector(&fakeProvider{snaps: []*procfs.Snapshot{s1, s2}})
	if _, err := c.Collect(); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	eth1, ok := rec.Net["eth1"]
	if !ok {
		t.Fatal("new interface should appear in record")
	}
	for i, v := range eth1 {
		if v != 0 {
			t.Errorf("new interface metric %s = %v, want 0 (no baseline)", NetMetricNames[i], v)
		}
	}
}

func TestVectorLengthsMatchCatalog(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s1 := baseSnapshot(t0)
	c := NewCollector(&fakeProvider{snaps: []*procfs.Snapshot{s1, advance(s1)}})
	for k := 0; k < 2; k++ {
		rec, err := c.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Node) != len(NodeMetricNames) {
			t.Errorf("node vector length %d != %d", len(rec.Node), len(NodeMetricNames))
		}
		for iface, v := range rec.Net {
			if len(v) != len(NetMetricNames) {
				t.Errorf("net vector %s length %d != %d", iface, len(v), len(NetMetricNames))
			}
		}
		for pid, v := range rec.Proc {
			if len(v) != len(ProcMetricNames) {
				t.Errorf("proc vector %d length %d != %d", pid, len(v), len(ProcMetricNames))
			}
		}
	}
}
