package sadc

import (
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/procfs"
)

// cyclingProvider alternates between two snapshots so every Collect
// produces rates.
type cyclingProvider struct {
	snaps [2]*procfs.Snapshot
	i     int
	t     time.Time
}

func (p *cyclingProvider) Snapshot() (*procfs.Snapshot, error) {
	s := *p.snaps[p.i%2]
	p.i++
	p.t = p.t.Add(time.Second)
	s.Time = p.t
	return &s, nil
}

func BenchmarkCollect(b *testing.B) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s1 := baseSnapshot(t0)
	s2 := advance(s1)
	p := &cyclingProvider{snaps: [2]*procfs.Snapshot{s1, s2}, t: t0}
	c := NewCollector(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Collect(); err != nil {
			b.Fatal(err)
		}
	}
}
