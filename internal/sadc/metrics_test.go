package sadc

import (
	"testing"
)

func TestAnalysisMetricNamesResolve(t *testing.T) {
	indexes, err := NodeMetricIndexes(AnalysisMetricNames)
	if err != nil {
		t.Fatal(err)
	}
	if len(indexes) != len(AnalysisMetricNames) {
		t.Fatalf("resolved %d of %d", len(indexes), len(AnalysisMetricNames))
	}
	seen := make(map[int]bool)
	for i, idx := range indexes {
		if idx < 0 || idx >= len(NodeMetricNames) {
			t.Errorf("index %d out of range", idx)
		}
		if NodeMetricNames[idx] != AnalysisMetricNames[i] {
			t.Errorf("index %d resolves to %q, want %q", idx, NodeMetricNames[idx], AnalysisMetricNames[i])
		}
		if seen[idx] {
			t.Errorf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
}

func TestNodeMetricIndexesUnknown(t *testing.T) {
	if _, err := NodeMetricIndexes([]string{"cpu_user_pct", "no_such_metric"}); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestCPUHogPerturbation(t *testing.T) {
	perturb := CPUHogPerturbation()
	idx := func(name string) int {
		for i, n := range NodeMetricNames {
			if n == name {
				return i
			}
		}
		t.Fatalf("metric %q missing", name)
		return -1
	}
	raw := make([]float64, len(NodeMetricNames))
	raw[idx("cpu_user_pct")] = 20
	raw[idx("cpu_busy_pct")] = 30
	raw[idx("cpu_idle_pct")] = 60
	raw[idx("runq_size")] = 1
	raw[idx("load_avg_1")] = 1
	raw[idx("ctxt_per_sec")] = 1000

	before := append([]float64(nil), raw...)
	out := perturb(raw)

	if out[idx("cpu_busy_pct")] <= before[idx("cpu_busy_pct")] {
		t.Error("perturbation should raise busy%")
	}
	if out[idx("cpu_idle_pct")] >= before[idx("cpu_idle_pct")] {
		t.Error("perturbation should lower idle%")
	}
	// CPU accounting stays consistent: busy gain equals idle loss.
	gain := out[idx("cpu_busy_pct")] - before[idx("cpu_busy_pct")]
	loss := before[idx("cpu_idle_pct")] - out[idx("cpu_idle_pct")]
	if diff := gain - loss; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("busy gain %v != idle loss %v", gain, loss)
	}
	if out[idx("runq_size")] <= 1 || out[idx("load_avg_1")] <= 1 {
		t.Error("perturbation should raise run queue and load")
	}
	if out[idx("ctxt_per_sec")] <= 1000 {
		t.Error("perturbation should raise context switches")
	}
}

func TestCPUHogPerturbationIdleClamp(t *testing.T) {
	perturb := CPUHogPerturbation()
	raw := make([]float64, len(NodeMetricNames))
	// Node already saturated: idle 0; perturbation must not go negative.
	out := perturb(raw)
	for i, v := range out {
		if v < 0 {
			t.Errorf("metric %s went negative: %v", NodeMetricNames[i], v)
		}
	}
}
