package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("asdf_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("asdf_test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read zero")
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("asdf_idem_total", "h", L("instance", "x"))
	b := r.Counter("asdf_idem_total", "h", L("instance", "x"))
	if a != b {
		t.Error("same name+labels must return the same handle")
	}
	other := r.Counter("asdf_idem_total", "h", L("instance", "y"))
	if a == other {
		t.Error("different labels must return a different series")
	}
}

func TestLabelOrderDoesNotSplitSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("asdf_order_total", "h", L("a", "1"), L("b", "2"))
	b := r.Counter("asdf_order_total", "h", L("b", "2"), L("a", "1"))
	if a != b {
		t.Error("label order must not change series identity")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("asdf_mismatch", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("asdf_mismatch", "h")
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, tc := range []func(r *Registry){
		func(r *Registry) { r.Counter("0bad", "h") },
		func(r *Registry) { r.Counter("has space", "h") },
		func(r *Registry) { r.Counter("ok_total", "h", L("0bad", "v")) },
		func(r *Registry) { r.Counter("ok_total", "h", L("bad-dash", "v")) },
		func(r *Registry) { r.Histogram("ok_seconds", "h", nil, L("le", "v")) },
		func(r *Registry) { r.Histogram("ok_seconds", "h", []float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid registration must panic")
				}
			}()
			tc(NewRegistry())
		}()
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("asdf_escape_total", "help with \\ and\nnewline",
		L("node", `na"me\with`+"\nnewline")).Inc()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	wantHelp := `# HELP asdf_escape_total help with \\ and\nnewline`
	if !strings.Contains(text, wantHelp+"\n") {
		t.Errorf("help not escaped:\n%s", text)
	}
	wantSeries := `asdf_escape_total{node="na\"me\\with\nnewline"} 1`
	if !strings.Contains(text, wantSeries+"\n") {
		t.Errorf("label value not escaped, want %q in:\n%s", wantSeries, text)
	}
}

func TestHistogramBucketInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("asdf_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100, -1} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 2 + 100 - 1; math.Abs(h.Sum()-want) > 1e-12 {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	m, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse own exposition: %v\n%s", err, b.String())
	}
	// Cumulative buckets: le="0.1" counts -1, 0.05, 0.1 (le is inclusive).
	buckets := []struct {
		le   string
		want float64
	}{
		{"0.1", 3}, {"1", 4}, {"10", 5}, {"+Inf", 6},
	}
	prev := -1.0
	for _, bk := range buckets {
		got, ok := m[`asdf_lat_seconds_bucket{le="`+bk.le+`"}`]
		if !ok {
			t.Fatalf("missing bucket le=%s in:\n%s", bk.le, b.String())
		}
		if got != bk.want {
			t.Errorf("bucket le=%s = %v, want %v", bk.le, got, bk.want)
		}
		if got < prev {
			t.Errorf("bucket le=%s = %v decreases below %v", bk.le, got, prev)
		}
		prev = got
	}
	if m["asdf_lat_seconds_count"] != 6 {
		t.Errorf("_count = %v, want 6", m["asdf_lat_seconds_count"])
	}
	if inf := m[`asdf_lat_seconds_bucket{le="+Inf"}`]; inf != m["asdf_lat_seconds_count"] {
		t.Errorf("+Inf bucket %v != count %v", inf, m["asdf_lat_seconds_count"])
	}
}

func TestHistogramInvariantsUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("asdf_conc_seconds", "latency", nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%7) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	m, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if inf := m[`asdf_conc_seconds_bucket{le="+Inf"}`]; inf != float64(workers*per) {
		t.Errorf("+Inf bucket = %v, want %d", inf, workers*per)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last").Add(2)
	r.Counter("aa_total", "first", L("instance", "x")).Inc()
	r.Gauge("mm_gauge", "middle").Set(-3.5)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_total first
# TYPE aa_total counter
aa_total{instance="x"} 1
# HELP mm_gauge middle
# TYPE mm_gauge gauge
mm_gauge -3.5
# HELP zz_total last
# TYPE zz_total counter
zz_total 2
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
	// Deterministic across writes.
	var b2 strings.Builder
	if _, err := r.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("WriteTo output not deterministic")
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("asdf_rt_total", "h", L("node", "n1")).Add(7)
	r.Gauge("asdf_rt_gauge", "h").Set(0.25)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	m, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if m[`asdf_rt_total{node="n1"}`] != 7 {
		t.Errorf("round-trip counter = %v, want 7", m[`asdf_rt_total{node="n1"}`])
	}
	if m["asdf_rt_gauge"] != 0.25 {
		t.Errorf("round-trip gauge = %v, want 0.25", m["asdf_rt_gauge"])
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"no_value\n",
		"bad_value NaNope\n",
		"dup 1\ndup 2\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted bad input", bad)
		}
	}
	m, err := ParseText(strings.NewReader("# HELP x h\n\nx{l=\"a b\"} 3\ninf_series +Inf\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m[`x{l="a b"}`] != 3 {
		t.Errorf("label value with space = %v, want 3", m[`x{l="a b"}`])
	}
	if !math.IsInf(m["inf_series"], 1) {
		t.Errorf("inf series = %v, want +Inf", m["inf_series"])
	}
}

// TestHotPathAllocs enforces the 0 allocs/op contract with the test suite,
// not just the benchmark, so a regression fails plain `go test`.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("asdf_alloc_total", "h", L("instance", "x"))
	g := r.Gauge("asdf_alloc_gauge", "h")
	h := r.Histogram("asdf_alloc_seconds", "h", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(42)
		h.Observe(0.003)
	}); n != 0 {
		t.Errorf("hot path allocates %v allocs/op, want 0", n)
	}
}
