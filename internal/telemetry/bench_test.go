package telemetry

import "testing"

// BenchmarkMetricsHotPath measures the instrumented hot path — one counter
// increment, one gauge store, one histogram observation — which is what the
// engine pays per supervised dispatch with telemetry enabled. The CI
// bench-smoke job tracks it; allocs/op must stay 0 (also enforced by
// TestHotPathAllocs).
func BenchmarkMetricsHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("asdf_bench_total", "h", L("instance", "w0"))
	g := r.Gauge("asdf_bench_gauge", "h")
	h := r.Histogram("asdf_bench_seconds", "h", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(0.0042)
	}
}

// BenchmarkMetricsHotPathParallel is the contended variant: every worker
// hammers the same three series, the worst case for the CAS loops.
func BenchmarkMetricsHotPathParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("asdf_benchp_total", "h")
	g := r.Gauge("asdf_benchp_gauge", "h")
	h := r.Histogram("asdf_benchp_seconds", "h", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
			g.Set(1)
			h.Observe(0.0042)
		}
	})
}
