// Package telemetry is ASDF's dependency-free instrumentation layer: the
// counters, gauges, and histograms behind the control node's /metrics
// endpoint (Prometheus text exposition format, version 0.0.4).
//
// The package is built for the engine's hot path. Metric handles are created
// once, at wiring time (engine construction, module Init, client dial), and
// every subsequent increment or observation is a handful of atomic
// operations with zero allocations — cheap enough to leave enabled on the
// per-dispatch and per-RPC paths of a control node ticking many times per
// second. All handle methods are safe on a nil receiver and do nothing, so
// instrumented code never branches on whether telemetry is configured.
//
// Exposition is pull-based: a Registry serializes every registered metric
// with WriteTo, and the caller (cmd/asdf's status server) mounts that under
// GET /metrics. See DESIGN.md §5e for why the framework scrapes rather than
// pushes.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Label is one name="value" pair attached to a metric. Label names must
// match [a-zA-Z_][a-zA-Z0-9_]*; values are arbitrary UTF-8 and are escaped
// on exposition.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// DefBuckets are the default histogram upper bounds: latency-shaped, from
// 10µs to 10s, suitable for module runs, engine ticks, and RPC calls.
var DefBuckets = []float64{
	1e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5, 10,
}

// Counter is a monotonically increasing count. The zero value is unusable;
// obtain one from Registry.Counter. All methods are atomic and safe on a nil
// receiver (no-op), so disabled telemetry costs one predictable branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reports the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as atomic float64 bits.
// Obtain one from Registry.Gauge; methods are safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (negative to subtract) with a compare-and-swap loop.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reports the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets chosen at
// registration. Observe is a linear bucket scan plus three atomics — no
// allocation, no lock. Obtain one from Registry.Histogram; methods are safe
// on a nil receiver.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds, +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, ub := range h.bounds {
		if v <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reports the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// metricKind is the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// child is one labeled series of a family.
type child struct {
	labels  string // pre-rendered {name="value",...} or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every series sharing one metric name, help, and type.
type family struct {
	name    string
	help    string
	kind    metricKind
	bounds  []float64
	byLabel map[string]*child
}

// Registry holds metric families and serializes them in Prometheus text
// format. The zero value is unusable; create with NewRegistry. Registration
// is idempotent: asking again for the same name and labels returns the
// existing handle, so two engines sharing a registry share series.
// Registration takes a lock and may allocate; handles are meant to be
// created at wiring time and kept.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter name{labels...}, creating it on first use.
// Panics if name is already registered as a different type or the name or a
// label is invalid — both programming errors, matching Registry.Register's
// contract in internal/core.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.series(name, help, kindCounter, nil, labels)
	return c.counter
}

// Gauge returns the gauge name{labels...}, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.series(name, help, kindGauge, nil, labels)
	return c.gauge
}

// Histogram returns the histogram name{labels...}, creating it on first use
// with the given upper bounds (nil selects DefBuckets). Bounds must be
// strictly increasing; a final +Inf bucket is implicit. "le" is reserved.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	c := r.series(name, help, kindHistogram, bounds, labels)
	return c.hist
}

// series finds or creates one labeled series.
func (r *Registry) series(name, help string, kind metricKind, bounds []float64, labels []Label) *child {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l.Name) || (kind == kindHistogram && l.Name == "le") {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l.Name))
		}
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s: buckets not strictly increasing", name))
		}
	}
	key := renderLabels(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, bounds: bounds, byLabel: make(map[string]*child)}
		r.families[name] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s and %s", name, fam.kind, kind))
	}
	c, ok := fam.byLabel[key]
	if !ok {
		c = &child{labels: key}
		switch kind {
		case kindCounter:
			c.counter = new(Counter)
		case kindGauge:
			c.gauge = new(Gauge)
		case kindHistogram:
			h := &Histogram{bounds: fam.bounds}
			h.buckets = make([]atomic.Uint64, len(fam.bounds))
			c.hist = h
		}
		fam.byLabel[key] = c
	}
	return c
}

// WriteTo serializes every family in Prometheus text format (families and
// series in lexical order, so output is deterministic and diffable).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, fam := range fams {
		fam.write(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// write renders one family. Per-series values are read atomically, so a
// scrape during live traffic sees a consistent-enough snapshot (histogram
// count may briefly lead sum, as in any lock-free exposition).
func (fam *family) write(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(fam.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(fam.help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(fam.name)
	b.WriteByte(' ')
	b.WriteString(fam.kind.String())
	b.WriteByte('\n')

	keys := make([]string, 0, len(fam.byLabel))
	for k := range fam.byLabel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := fam.byLabel[k]
		switch fam.kind {
		case kindCounter:
			writeSeries(b, fam.name, "", c.labels, "", float64(c.counter.Value()))
		case kindGauge:
			writeSeries(b, fam.name, "", c.labels, "", c.gauge.Value())
		case kindHistogram:
			// Bucket counts are stored per bucket and cumulated here, so
			// the hot path is one Add; the exposition invariant (buckets
			// monotonically non-decreasing, +Inf == count) holds by
			// construction.
			var cum uint64
			for i, ub := range c.hist.bounds {
				cum += c.hist.buckets[i].Load()
				writeSeries(b, fam.name, "_bucket", c.labels, formatFloat(ub), float64(cum))
			}
			writeSeries(b, fam.name, "_bucket", c.labels, "+Inf", float64(c.hist.Count()))
			writeSeries(b, fam.name, "_sum", c.labels, "", c.hist.Sum())
			writeSeries(b, fam.name, "_count", c.labels, "", float64(c.hist.Count()))
		}
	}
}

// writeSeries renders one sample line: name[suffix]{labels[,le="le"]} value.
func writeSeries(b *strings.Builder, name, suffix, labels, le string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || le != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if le != "" {
			if labels != "" {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// renderLabels serializes labels sorted by name as name="value",... with
// values escaped, which doubles as the series identity key.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline, per the
// text-format spec.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline (quotes are legal in HELP text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips, "+Inf"/"-Inf"/"NaN" spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
