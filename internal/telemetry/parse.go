package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseText parses Prometheus text exposition into a flat map from series
// identity — `name` or `name{label="value",...}` exactly as exposed — to
// sample value. It understands the subset WriteTo emits (HELP/TYPE comments,
// one sample per line) plus blank lines, which is all an ASDF scrape ever
// contains; tests and the e2e harness use it to compare scraped values
// against the /status JSON counters.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the field after the last space outside braces; label
		// values may themselves contain spaces.
		cut := -1
		depth := 0
		for i, r := range line {
			switch r {
			case '{':
				depth++
			case '}':
				depth--
			case ' ':
				if depth == 0 {
					cut = i
				}
			}
		}
		if cut <= 0 || cut == len(line)-1 {
			return nil, fmt.Errorf("telemetry: parse line %d: no value in %q", lineNo, line)
		}
		series := strings.TrimSpace(line[:cut])
		valStr := strings.TrimSpace(line[cut+1:])
		var v float64
		switch valStr {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		case "NaN":
			v = math.NaN()
		default:
			var err error
			if v, err = strconv.ParseFloat(valStr, 64); err != nil {
				return nil, fmt.Errorf("telemetry: parse line %d: bad value %q: %v", lineNo, valStr, err)
			}
		}
		if _, dup := out[series]; dup {
			return nil, fmt.Errorf("telemetry: parse line %d: duplicate series %s", lineNo, series)
		}
		out[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
