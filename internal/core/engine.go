package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// Engine is an fpt-core instance: a DAG of module instances plus a
// scheduler. Construct with NewEngine, then drive it either with Tick/Flush
// (step mode) or Run (real-time mode); the two modes must not be mixed on
// one Engine.
type Engine struct {
	logger Logger
	onErr  func(instanceID string, err error)

	instances []*instanceState // in initialization (topological) order
	byID      map[string]*instanceState

	// parallelism is the wavefront width in step mode: how many dirty
	// instances at the same topological depth run concurrently. 1 (the
	// default) is the strictly serial scheduler.
	parallelism int

	// Engine-level supervision defaults; per-instance configuration
	// parameters (run_timeout, quarantine_threshold, quarantine_cooldown,
	// degrade) override them.
	watchdogDefault   time.Duration
	quarThresholdDflt int
	quarCooldownDflt  time.Duration
	degradeDefault    DegradePolicy
	degradeResolver   func() DegradePolicy

	// step-mode state; also reused as the notification lock in
	// real-time mode.
	stepMu  chan struct{} // binary semaphore guarding dirty/pending
	dirty   []*instanceState
	started bool
	realtim bool

	// tickNum / waveNum tag error-handler output so interleaved failures
	// from concurrent modules can be correlated to a scheduling point.
	tickNum atomic.Uint64
	waveNum atomic.Uint64
	errMu   sync.Mutex // serializes the default error handler's log lines

	// Telemetry (nil without WithTelemetry; every handle is nil-safe, so
	// the schedulers never branch on whether metrics are wired).
	metrics     *telemetry.Registry
	mTick       *telemetry.Histogram // step-mode Tick wall time
	mWave       *telemetry.Histogram // wavefront (runFront batch) wall time
	mQueueDepth *telemetry.Gauge     // step-mode dirty-list length
}

// instanceState is the engine-side representation of one module instance:
// a vertex of the DAG.
type instanceState struct {
	id     string
	cfg    *config.Instance
	module Module
	engine *Engine

	inputs  []*InputPort
	outputs []*OutputPort

	// scheduling
	period  time.Duration // >0: periodic
	trigger int           // >0: run after this many input updates
	pending int           // accumulated input updates (guarded by stepMu)
	queued  bool          // already on the dirty list (guarded by stepMu)
	nextDue time.Time     // step mode: next periodic deadline

	order   int            // topological index
	depth   int            // longest path from any source (wavefront level)
	mailbox chan RunReason // real-time mode

	sup *supervisor // per-instance supervised runtime

	// mRunSeconds observes supervised Run latency (nil without telemetry;
	// non-nil also gates the per-dispatch clock reads).
	mRunSeconds *telemetry.Histogram
}

// Option customizes engine construction.
type Option func(*Engine)

// WithLogger sets the diagnostic logger.
func WithLogger(l Logger) Option {
	return func(e *Engine) { e.logger = l }
}

// WithErrorHandler sets the callback invoked when a module's Run returns an
// error. The default logs and continues, matching the paper's
// keep-monitoring-despite-module-errors behaviour. The handler may be
// invoked concurrently from several goroutines (real-time mode, or step mode
// with parallelism > 1); the default handler serializes its log lines.
func WithErrorHandler(f func(instanceID string, err error)) Option {
	return func(e *Engine) { e.onErr = f }
}

// WithParallelism sets the step-mode wavefront width: dirty instances at the
// same topological depth run on up to n concurrent goroutines, joined per
// wavefront. n = 1 (the default) is the strictly serial scheduler; n <= 0
// selects GOMAXPROCS. Because a wavefront never contains two instances
// connected by an edge, and every input port drains in configuration order,
// sink output is byte-identical to the serial scheduler's for any n.
func WithParallelism(n int) Option {
	return func(e *Engine) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		e.parallelism = n
	}
}

// Parallelism reports the engine's wavefront width (1 = serial).
func (e *Engine) Parallelism() int { return e.parallelism }

// WithWatchdog sets the default per-run watchdog deadline: a module Run
// exceeding it is abandoned (the instance stays flagged until the leaked
// goroutine returns, so it is never double-run) and counted as a timeout
// failure. 0 (the default) disables the watchdog. The per-instance
// run_timeout configuration parameter overrides this. The deadline is
// wall-clock even in step mode: a wedged module does not advance virtual
// time.
func WithWatchdog(d time.Duration) Option {
	return func(e *Engine) { e.watchdogDefault = d }
}

// WithQuarantine sets the default failure budget: after threshold
// consecutive failures (error, panic, or timeout) an instance is
// quarantined — skipped, its outputs gap-filled per its degrade policy —
// until a half-open probe after cooldown re-admits it. threshold 0 (the
// default) disables quarantine; cooldown 0 selects 10s. The per-instance
// quarantine_threshold / quarantine_cooldown parameters override this.
func WithQuarantine(threshold int, cooldown time.Duration) Option {
	return func(e *Engine) {
		e.quarThresholdDflt = threshold
		e.quarCooldownDflt = cooldown
	}
}

// WithDegrade sets the default degrade policy applied to quarantined
// instances' outputs; the per-instance degrade parameter overrides it.
func WithDegrade(p DegradePolicy) Option {
	return func(e *Engine) { e.degradeDefault = p }
}

// WithDegradeResolver supplies the effective policy for instances configured
// with degrade = auto: the resolver is consulted on each quarantined-instance
// dispatch (never on the healthy hot path) so an adaptive controller can
// tighten gap-filling while the collection plane is degraded and relax it
// back. f must be safe for concurrent use and must return a concrete policy
// (skip, hold, or zero); without a resolver, auto behaves as skip.
func WithDegradeResolver(f func() DegradePolicy) Option {
	return func(e *Engine) { e.degradeResolver = f }
}

// WithTelemetry registers the engine's runtime metrics — per-instance run
// latency histograms, tick and wavefront durations, queue depth, and the
// supervisor's transition counters — on reg, for exposition on a /metrics
// endpoint. nil (the default) disables instrumentation entirely: the hot
// path then performs no clock reads and no atomic operations for telemetry.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(e *Engine) { e.metrics = reg }
}

// NewEngine builds the module DAG from the parsed configuration, following
// the paper's four-step construction (§3.3): create a vertex per instance,
// count unsatisfied inputs, initialize instances whose inputs are satisfied
// (their new outputs satisfying downstream inputs), and repeat to fixpoint.
// Failure to reach the fixpoint — a dangling reference, a missing module, or
// a dependency cycle — is a configuration error.
func NewEngine(reg *Registry, file *config.File, opts ...Option) (*Engine, error) {
	if reg == nil || file == nil {
		return nil, fmt.Errorf("core: NewEngine requires a registry and a configuration")
	}
	e := &Engine{
		byID:        make(map[string]*instanceState),
		stepMu:      make(chan struct{}, 1),
		parallelism: 1,
	}
	e.stepMu <- struct{}{}
	for _, o := range opts {
		o(e)
	}
	if e.metrics != nil {
		e.mTick = e.metrics.Histogram("asdf_engine_tick_seconds",
			"Wall-clock duration of one step-mode Tick, periodic fires and trigger drain included.", nil)
		e.mWave = e.metrics.Histogram("asdf_engine_wavefront_seconds",
			"Wall-clock duration of one wavefront batch (the concurrent instances at one topological depth).", nil)
		e.mQueueDepth = e.metrics.Gauge("asdf_engine_queue_depth",
			"Step-mode scheduler queue: instances currently triggered and waiting to run.")
	}
	if e.onErr == nil {
		// Concurrent modules (real-time mode, wavefront mode) may fail at
		// the same moment; the lock keeps their log lines whole, and the
		// tick/wavefront tag says which scheduling point each belongs to.
		e.onErr = func(id string, err error) {
			e.errMu.Lock()
			defer e.errMu.Unlock()
			// err is an *InstanceError carrying the failure kind and the
			// tick/wavefront scheduling point.
			e.logf("module %s: %v", id, err)
		}
	}

	// Step 1: a vertex per configured instance.
	all := make([]*instanceState, 0, len(file.Instances))
	for _, ci := range file.Instances {
		if _, ok := reg.Lookup(ci.Module); !ok {
			return nil, fmt.Errorf("core: instance %q: unknown module %q (line %d)", ci.ID, ci.Module, ci.Line)
		}
		inst := &instanceState{id: ci.ID, cfg: ci, engine: e}
		all = append(all, inst)
		e.byID[ci.ID] = inst
	}

	// Step 2: count unsatisfied upstream dependencies.
	unsat := make(map[*instanceState]map[string]bool)
	dependents := make(map[string][]*instanceState)
	for _, inst := range all {
		deps := make(map[string]bool)
		for _, ref := range inst.cfg.Inputs {
			up, ok := e.byID[ref.Instance]
			if !ok {
				return nil, fmt.Errorf("core: instance %q: input[%s] references unknown instance %q",
					inst.id, ref.Name, ref.Instance)
			}
			if up == inst {
				return nil, fmt.Errorf("core: instance %q: input[%s] references itself", inst.id, ref.Name)
			}
			deps[ref.Instance] = true
		}
		unsat[inst] = deps
		for d := range deps {
			dependents[d] = append(dependents[d], inst)
		}
	}

	// Steps 3–4: initialize in dependency order.
	var queue []*instanceState
	for _, inst := range all {
		if len(unsat[inst]) == 0 {
			queue = append(queue, inst)
		}
	}
	initialized := 0
	for len(queue) > 0 {
		inst := queue[0]
		queue = queue[1:]
		if err := e.initInstance(reg, inst); err != nil {
			return nil, err
		}
		inst.order = initialized
		initialized++
		e.instances = append(e.instances, inst)
		for _, down := range dependents[inst.id] {
			delete(unsat[down], inst.id)
			if len(unsat[down]) == 0 {
				queue = append(queue, down)
			}
		}
	}
	if initialized != len(all) {
		var blocked []string
		for _, inst := range all {
			if len(unsat[inst]) > 0 {
				blocked = append(blocked, inst.id)
			}
		}
		sort.Strings(blocked)
		return nil, fmt.Errorf("core: could not satisfy inputs of instances %s (dependency cycle or missing outputs)",
			strings.Join(blocked, ", "))
	}
	return e, nil
}

// initInstance creates the module, wires its input ports to upstream
// outputs, and calls its Init.
func (e *Engine) initInstance(reg *Registry, inst *instanceState) error {
	factory, _ := reg.Lookup(inst.cfg.Module)
	inst.module = factory()
	if err := e.initSupervisor(inst); err != nil {
		return err
	}

	for _, ref := range inst.cfg.Inputs {
		up := e.byID[ref.Instance]
		if ref.All {
			if len(up.outputs) == 0 {
				return fmt.Errorf("core: instance %q: input[%s] = @%s but %q created no outputs",
					inst.id, ref.Name, ref.Instance, ref.Instance)
			}
			for _, o := range up.outputs {
				e.wire(inst, ref.Name, o)
			}
			continue
		}
		var found *OutputPort
		for _, o := range up.outputs {
			if o.name == ref.Output {
				found = o
				break
			}
		}
		if found == nil {
			return fmt.Errorf("core: instance %q: input[%s] references missing output %s.%s",
				inst.id, ref.Name, ref.Instance, ref.Output)
		}
		e.wire(inst, ref.Name, found)
	}

	// Wavefront level: one past the deepest upstream. Instances at equal
	// depth share no edge, so a wavefront may run them concurrently.
	inst.depth = 0
	for _, in := range inst.inputs {
		if d := in.source.owner.depth + 1; d > inst.depth {
			inst.depth = d
		}
	}

	ictx := &InitContext{inst: inst, engine: e}
	if err := inst.module.Init(ictx); err != nil {
		return fmt.Errorf("core: instance %q: init: %w", inst.id, err)
	}
	if len(inst.inputs) > 0 && inst.trigger == 0 {
		inst.trigger = 1
	}
	if inst.period == 0 && len(inst.inputs) == 0 {
		return fmt.Errorf("core: instance %q has no inputs and no periodic schedule; it would never run", inst.id)
	}
	return nil
}

func (e *Engine) wire(inst *instanceState, inputName string, from *OutputPort) {
	port := &InputPort{name: inputName, source: from, owner: inst}
	inst.inputs = append(inst.inputs, port)
	from.subscribe(port)
}

// Instances returns the instance ids in initialization (topological) order.
func (e *Engine) Instances() []string {
	out := make([]string, len(e.instances))
	for i, inst := range e.instances {
		out[i] = inst.id
	}
	return out
}

// OutputPortsOf returns the output ports of the named instance, for
// inspection by tests and tooling.
func (e *Engine) OutputPortsOf(id string) []*OutputPort {
	inst, ok := e.byID[id]
	if !ok {
		return nil
	}
	out := make([]*OutputPort, len(inst.outputs))
	copy(out, inst.outputs)
	return out
}

// InputPortsOf returns the input ports of the named instance.
func (e *Engine) InputPortsOf(id string) []*InputPort {
	inst, ok := e.byID[id]
	if !ok {
		return nil
	}
	out := make([]*InputPort, len(inst.inputs))
	copy(out, inst.inputs)
	return out
}

// ModuleOf returns the module implementation behind the named instance,
// allowing callers (e.g. the evaluation harness) to read results off
// concrete module types.
func (e *Engine) ModuleOf(id string) (Module, bool) {
	inst, ok := e.byID[id]
	if !ok {
		return nil, false
	}
	return inst.module, true
}

func (e *Engine) logf(format string, args ...any) {
	if e.logger != nil {
		e.logger.Printf(format, args...)
	}
}

// lock acquires the engine's notification lock.
func (e *Engine) lock() { <-e.stepMu }

// unlock releases the engine's notification lock.
func (e *Engine) unlock() { e.stepMu <- struct{}{} }

// notifyInput records an input update and schedules the owning instance
// when its trigger threshold is reached.
func (e *Engine) notifyInput(in *InputPort) {
	inst := in.owner
	e.lock()
	inst.pending++
	ready := inst.trigger > 0 && inst.pending >= inst.trigger
	if ready {
		inst.pending = 0
	}
	enqueue := ready && !inst.queued && !e.realtim
	if enqueue {
		inst.queued = true
		e.dirty = append(e.dirty, inst)
		e.mQueueDepth.Set(float64(len(e.dirty)))
	}
	e.unlock()

	if ready && e.realtim {
		select {
		case inst.mailbox <- RunInputs:
		default: // coalesce: a run is already pending
		}
	}
}

// initSupervisor builds the instance's supervisor from its configuration
// parameters layered over the engine's option-level defaults.
func (e *Engine) initSupervisor(inst *instanceState) error {
	sp, err := inst.cfg.SupervisorParams()
	if err != nil {
		return err
	}
	sup := &supervisor{inst: inst}
	sup.runTimeout = sp.RunTimeout
	if sup.runTimeout == 0 {
		sup.runTimeout = e.watchdogDefault
	}
	sup.threshold = sp.QuarantineThreshold
	if sup.threshold < 0 {
		sup.threshold = e.quarThresholdDflt
	}
	sup.cooldown = sp.QuarantineCooldown
	if sup.cooldown == 0 {
		sup.cooldown = e.quarCooldownDflt
	}
	if sup.cooldown == 0 {
		sup.cooldown = defaultQuarantineCooldown
	}
	if sp.Degrade == "" {
		sup.degrade = e.degradeDefault
	} else if sup.degrade, err = ParseDegradePolicy(sp.Degrade); err != nil {
		return fmt.Errorf("core: instance %q: %w", inst.id, err)
	}
	if sup.degrade == DegradeAuto {
		sup.resolve = e.degradeResolver
	}
	if reg := e.metrics; reg != nil {
		il := telemetry.L("instance", inst.id)
		const failHelp = "Supervised module-run failures by instance and kind (error, panic, timeout)."
		sup.mErrors = reg.Counter("asdf_supervisor_failures_total", failHelp,
			il, telemetry.L("kind", FailureError.String()))
		sup.mPanics = reg.Counter("asdf_supervisor_failures_total", failHelp,
			il, telemetry.L("kind", FailurePanic.String()))
		sup.mTimeouts = reg.Counter("asdf_supervisor_failures_total", failHelp,
			il, telemetry.L("kind", FailureTimeout.String()))
		sup.mQuarantines = reg.Counter("asdf_supervisor_quarantines_total",
			"Entries into the quarantined state (failure budget exhausted or failed probe).", il)
		sup.mReadmissions = reg.Counter("asdf_supervisor_readmissions_total",
			"Successful half-open probes re-admitting a quarantined instance.", il)
		sup.mLateReturns = reg.Counter("asdf_supervisor_late_returns_total",
			"Watchdog-abandoned runs that eventually returned.", il)
		sup.mGapFills = reg.Counter("asdf_supervisor_gap_fills_total",
			"Degrade-policy publishes while quarantined.", il)
		sup.mState = reg.Gauge("asdf_supervisor_state",
			"Quarantine lifecycle position: 0 healthy, 1 quarantined, 2 probing.", il)
		inst.mRunSeconds = reg.Histogram("asdf_module_run_seconds",
			"Wall-clock latency of supervised module runs.", nil, il)
	}
	inst.sup = sup
	return nil
}

// runModule dispatches one Run through the instance's supervisor: panics
// become structured InstanceErrors, a configured watchdog abandons wedged
// runs, and a quarantined instance is skipped with its outputs gap-filled
// per its degrade policy. Failures route to the error handler, never up.
func (e *Engine) runModule(inst *instanceState, reason RunReason, now time.Time) {
	switch inst.sup.admit(reason, now) {
	case admitRun:
		if inst.mRunSeconds != nil {
			// The non-nil histogram gates the clock reads too, keeping the
			// uninstrumented dispatch path free of telemetry cost.
			start := time.Now()
			err := e.invoke(inst, reason, now)
			inst.mRunSeconds.Observe(time.Since(start).Seconds())
			e.settle(inst, err, reason, now)
			return
		}
		e.settle(inst, e.invoke(inst, reason, now), reason, now)
	case admitSkip:
		inst.sup.gapFill(now)
	case admitWedged:
		// The previous Run is still in flight: refuse to double-run, and
		// count the lost dispatch as a timeout failure so a permanently
		// wedged instance exhausts its failure budget.
		e.settle(inst, &wedgeError{stillRunning: true}, reason, now)
	case admitDrop:
	}
}

// settle records the dispatch outcome and routes any failure to the error
// handler as a structured InstanceError.
func (e *Engine) settle(inst *instanceState, err error, reason RunReason, now time.Time) {
	ierr := inst.sup.settle(err, reason, now, e.tickNum.Load(), e.waveNum.Load())
	if ierr != nil {
		e.onErr(inst.id, ierr)
	}
}
