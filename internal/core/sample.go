// Package core implements fpt-core, the ASDF fingerpointing engine (§3 of
// the paper): a plug-in API for data-collection and analysis modules, a
// configuration-driven DAG builder, and a scheduler that runs output-only
// modules periodically and analysis modules when their inputs have fresh
// data.
//
// The engine supports two execution modes sharing the same module API:
//
//   - Step mode (Engine.Tick): virtual-time, deterministic, single-threaded.
//     Used for offline analysis and for the reproduction experiments.
//   - Real-time mode (Engine.Run): one goroutine per module instance, with
//     periodic scheduling driven by wall-clock tickers. Used for online
//     fingerpointing, as in the paper's deployment.
package core

import (
	"time"
)

// Origin describes the provenance of an output port's data, as set by the
// producing module at initialization (§3.2 "Setting origin information").
type Origin struct {
	// Node is the monitored node the data pertains to (e.g. "slave03").
	Node string
	// Source is the data source kind (e.g. "sadc", "hadoop_log", "analysis_bb").
	Source string
	// Metric names the metric or state dimension(s) carried.
	Metric string
}

// Sample is one timestamped data point flowing along a DAG edge. Values is
// a vector; scalar outputs use a single element.
type Sample struct {
	// Time is the sample timestamp. In step mode this is virtual time; in
	// real-time mode, black-box samples are stamped on the control node
	// (§3.7) while white-box samples carry log timestamps.
	Time time.Time
	// Values is the numeric payload. Receivers must not mutate it.
	Values []float64
	// Degraded marks a gap-fill substitute published by the supervised
	// runtime on behalf of a quarantined instance (degrade = hold|zero)
	// rather than a value the module actually produced.
	Degraded bool
}

// Scalar returns the first value, or 0 for an empty sample. Most alarm and
// state outputs are scalar.
func (s Sample) Scalar() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[0]
}

// NewScalar builds a scalar sample.
func NewScalar(t time.Time, v float64) Sample {
	return Sample{Time: t, Values: []float64{v}}
}

// RunReason tells a module's Run method why it was invoked (§3.2: "One of
// the arguments to this function describes the reason why the module
// instance was run").
type RunReason int

// Run reasons.
const (
	// RunPeriodic means the scheduler fired the module's periodic timer.
	RunPeriodic RunReason = iota + 1
	// RunInputs means enough of the module's inputs received new data.
	RunInputs
	// RunFlush means the engine is shutting down and the module should
	// emit any buffered results.
	RunFlush
)

// String renders the reason for diagnostics.
func (r RunReason) String() string {
	switch r {
	case RunPeriodic:
		return "periodic"
	case RunInputs:
		return "inputs"
	case RunFlush:
		return "flush"
	default:
		return "unknown"
	}
}
