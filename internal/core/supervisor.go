package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"github.com/asdf-project/asdf/internal/telemetry"
)

// The supervised module runtime. ASDF's fingerpointing value depends on the
// fpt-core engine staying up while the system it watches misbehaves (§3.1:
// the DAG engine is the always-on multiplexer), so every module Run executes
// under a per-instance supervisor that
//
//   - converts panics into structured InstanceErrors routed through the
//     engine's error handler instead of crashing the process;
//   - optionally bounds each Run with a watchdog deadline (run_timeout /
//     WithWatchdog): a wedged Run is abandoned — its goroutine keeps the
//     instance flagged as wedged so a second dispatch never double-runs it —
//     and the tick proceeds for everyone else;
//   - tracks a failure budget: after quarantine_threshold consecutive
//     failures (error, panic, or timeout) the instance is quarantined and
//     skipped, with its outputs gap-filled per the degrade policy, until a
//     half-open re-probe after quarantine_cooldown re-admits it — exactly
//     paralleling the collection plane's per-node circuit breaker.
//
// The default configuration (no watchdog, no quarantine) only adds panic
// recovery and failure accounting to the hot path.

// defaultQuarantineCooldown applies when quarantine is enabled but no
// cooldown was configured at either the engine or the instance level.
const defaultQuarantineCooldown = 10 * time.Second

// FailureKind classifies one module-run failure.
type FailureKind int

// Failure kinds.
const (
	// FailureError is a plain error returned by Run.
	FailureError FailureKind = iota + 1
	// FailurePanic is a panic recovered inside Run.
	FailurePanic
	// FailureTimeout is a Run abandoned by the watchdog (or a dispatch
	// skipped because an abandoned Run is still in flight).
	FailureTimeout
)

// String renders the kind for diagnostics.
func (k FailureKind) String() string {
	switch k {
	case FailureError:
		return "error"
	case FailurePanic:
		return "panic"
	case FailureTimeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the kind as its string form.
func (k FailureKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// InstanceError is the structured failure record the supervisor routes to
// the engine's error handler: which instance failed, at which scheduling
// point, and how.
type InstanceError struct {
	// ID is the failing instance.
	ID string
	// Tick and Wavefront are the engine's scheduling-point counters at
	// failure time, correlating interleaved failures from concurrent
	// modules (both 0 in real-time mode, which has no tick structure).
	Tick      uint64
	Wavefront uint64
	// Kind classifies the failure.
	Kind FailureKind
	// Err is the underlying failure: the module's error, the recovered
	// panic value, or the watchdog timeout.
	Err error
	// Stack is the goroutine stack at panic time (empty otherwise).
	Stack string
}

// Error renders the structured failure.
func (e *InstanceError) Error() string {
	return fmt.Sprintf("instance %s: %s (tick %d, wavefront %d): %v",
		e.ID, e.Kind, e.Tick, e.Wavefront, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *InstanceError) Unwrap() error { return e.Err }

// panicError wraps a recovered panic value.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// wedgeError reports a Run abandoned by the watchdog, or a dispatch skipped
// because a previously abandoned Run has not returned yet.
type wedgeError struct {
	timeout      time.Duration
	stillRunning bool
}

func (e *wedgeError) Error() string {
	if e.stillRunning {
		return "previous run still in flight (watchdog-abandoned goroutine has not returned)"
	}
	return fmt.Sprintf("run exceeded watchdog deadline %v; abandoned", e.timeout)
}

// SupervisorState is one instance's position in the quarantine lifecycle.
type SupervisorState int

// Supervisor states.
const (
	// SupervisorHealthy: the instance runs normally.
	SupervisorHealthy SupervisorState = iota
	// SupervisorQuarantined: the failure budget is exhausted; dispatches
	// are skipped (outputs gap-filled per the degrade policy) until the
	// cooldown expires.
	SupervisorQuarantined
	// SupervisorProbing: the cooldown expired and a single half-open probe
	// run is in flight; its outcome decides readmit vs re-quarantine.
	SupervisorProbing
)

// String renders the state for diagnostics.
func (s SupervisorState) String() string {
	switch s {
	case SupervisorHealthy:
		return "healthy"
	case SupervisorQuarantined:
		return "quarantined"
	case SupervisorProbing:
		return "probing"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the state as its string form.
func (s SupervisorState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the string form, so InstanceHealth snapshots
// round-trip over the status RPC.
func (s *SupervisorState) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"healthy"`:
		*s = SupervisorHealthy
	case `"quarantined"`:
		*s = SupervisorQuarantined
	case `"probing"`:
		*s = SupervisorProbing
	default:
		return fmt.Errorf("core: unknown supervisor state %s", b)
	}
	return nil
}

// DegradePolicy says what a quarantined instance's outputs carry while it
// is skipped, mirroring the degraded-mode timestamp sync: downstream
// analyses either see a gap (skip), the last good value (hold), or zeros
// (zero). Gap-filled samples are marked Degraded.
type DegradePolicy int

// Degrade policies.
const (
	// DegradeSkip publishes nothing for a quarantined instance.
	DegradeSkip DegradePolicy = iota
	// DegradeHold republishes each output's last sample.
	DegradeHold
	// DegradeZero publishes a zero vector of each output's last width.
	DegradeZero
	// DegradeAuto defers the choice to the engine's degrade resolver
	// (WithDegradeResolver): the adaptive controller picks skip while the
	// collection plane is healthy and a gap-filling policy once the open-
	// breaker fraction crosses its tighten threshold. Without a resolver,
	// auto behaves as skip.
	DegradeAuto
)

// String renders the policy in configuration syntax.
func (p DegradePolicy) String() string {
	switch p {
	case DegradeSkip:
		return "skip"
	case DegradeHold:
		return "hold"
	case DegradeZero:
		return "zero"
	case DegradeAuto:
		return "auto"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the policy as its string form.
func (p DegradePolicy) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON parses the string form written by MarshalJSON.
func (p *DegradePolicy) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	parsed, err := ParseDegradePolicy(s)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// ParseDegradePolicy parses the degrade configuration parameter; "" selects
// DegradeSkip.
func ParseDegradePolicy(s string) (DegradePolicy, error) {
	switch s {
	case "", "skip":
		return DegradeSkip, nil
	case "hold":
		return DegradeHold, nil
	case "zero":
		return DegradeZero, nil
	case "auto":
		return DegradeAuto, nil
	default:
		return DegradeSkip, fmt.Errorf("core: unknown degrade policy %q (want skip, hold, zero, or auto)", s)
	}
}

// InstanceHealth is a point-in-time snapshot of one instance's supervisor,
// suitable for the status endpoint, sinks, and tests.
type InstanceHealth struct {
	// ID is the instance id.
	ID string `json:"id"`
	// State is the quarantine lifecycle position.
	State SupervisorState `json:"state"`
	// Wedged reports a watchdog-abandoned Run still in flight.
	Wedged bool `json:"wedged,omitempty"`
	// ConsecutiveFailures counts failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// TotalFailures = Panics + Timeouts + Errors over the instance's life.
	TotalFailures uint64 `json:"total_failures,omitempty"`
	Panics        uint64 `json:"panics,omitempty"`
	Timeouts      uint64 `json:"timeouts,omitempty"`
	Errors        uint64 `json:"errors,omitempty"`
	// Quarantines counts entries into SupervisorQuarantined; Readmissions
	// counts successful half-open probes.
	Quarantines  uint64 `json:"quarantines,omitempty"`
	Readmissions uint64 `json:"readmissions,omitempty"`
	// LateReturns counts watchdog-abandoned Runs that eventually returned.
	LateReturns uint64 `json:"late_returns,omitempty"`
	// GapFills counts degrade-policy publishes while quarantined.
	GapFills uint64 `json:"gap_fills,omitempty"`
	// LastFailure describes the most recent failure, if any.
	LastFailure   string    `json:"last_failure,omitempty"`
	LastFailureAt time.Time `json:"last_failure_at,omitempty"`
	// ReopenAt is when a quarantined instance may run its half-open probe.
	ReopenAt time.Time `json:"reopen_at,omitempty"`
	// Effective supervision configuration.
	RunTimeout          time.Duration `json:"run_timeout,omitempty"`
	QuarantineThreshold int           `json:"quarantine_threshold,omitempty"`
	QuarantineCooldown  time.Duration `json:"quarantine_cooldown,omitempty"`
	Degrade             DegradePolicy `json:"degrade"`
}

// supervisor guards one instance: panic conversion, watchdog bookkeeping,
// and the quarantine state machine. All clocks are the engine's: virtual
// time in step mode, wall clock in real-time mode — except the watchdog
// deadline itself, which is necessarily wall-clock (a wedged module does
// not advance virtual time).
type supervisor struct {
	inst *instanceState

	runTimeout time.Duration // 0 = no watchdog
	threshold  int           // 0 = quarantine disabled
	cooldown   time.Duration
	degrade    DegradePolicy
	// resolve supplies the effective policy when degrade is DegradeAuto
	// (nil = auto behaves as skip). Set from the engine's WithDegradeResolver
	// at construction; called only on quarantined-instance dispatches, never
	// on the healthy hot path.
	resolve func() DegradePolicy

	mu          sync.Mutex
	state       SupervisorState
	wedged      bool
	consecutive int
	reopenAt    time.Time

	totalFailures, panics, timeouts, errs  uint64
	quarantines, readmissions, lateReturns uint64
	gapFills                               uint64
	lastFailure                            string
	lastFailureAt                          time.Time

	// Telemetry handles (nil without WithTelemetry; nil-safe). Incremented
	// at exactly the points the counters above change, under the same mutex,
	// so a /metrics scrape and a /status snapshot of a quiesced engine agree
	// value for value.
	mErrors, mPanics, mTimeouts *telemetry.Counter
	mQuarantines, mReadmissions *telemetry.Counter
	mLateReturns, mGapFills     *telemetry.Counter
	mState                      *telemetry.Gauge
}

// admitDecision is the outcome of supervisor.admit.
type admitDecision int

const (
	// admitRun: dispatch the module (includes half-open probes).
	admitRun admitDecision = iota
	// admitSkip: quarantined — skip and gap-fill per the degrade policy.
	admitSkip
	// admitWedged: a watchdog-abandoned Run is still in flight — skip and
	// count the dispatch as a timeout failure.
	admitWedged
	// admitDrop: skip silently (flush of a wedged instance).
	admitDrop
)

// admit decides whether a dispatch may run the module now. A flush runs
// even while quarantined (it is the engine's final drain) but never while a
// previous Run is still in flight.
func (s *supervisor) admit(reason RunReason, now time.Time) admitDecision {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged {
		if reason == RunFlush {
			return admitDrop
		}
		return admitWedged
	}
	if reason == RunFlush {
		return admitRun
	}
	switch s.state {
	case SupervisorQuarantined:
		if !now.Before(s.reopenAt) {
			s.state = SupervisorProbing
			s.mState.Set(float64(SupervisorProbing))
			return admitRun
		}
		return admitSkip
	case SupervisorProbing:
		// Only reachable if a probe is already in flight on another
		// dispatch path; never run two.
		return admitSkip
	}
	return admitRun
}

// settle records one dispatch outcome and returns the structured error to
// route to the handler (nil on success). Flush outcomes update the failure
// counters only: the engine's final drain runs even while quarantined, and
// a clean flush must not masquerade as a successful probe (nor a failed
// one as a budget strike).
func (s *supervisor) settle(err error, reason RunReason, now time.Time, tick, wave uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		if reason == RunFlush {
			return nil
		}
		s.consecutive = 0
		if s.state != SupervisorHealthy {
			// A successful half-open probe re-admits the instance.
			s.state = SupervisorHealthy
			s.readmissions++
			s.mReadmissions.Inc()
			s.mState.Set(float64(SupervisorHealthy))
		}
		return nil
	}

	kind := FailureError
	var stack string
	var pe *panicError
	var we *wedgeError
	switch {
	case errors.As(err, &pe):
		kind = FailurePanic
		stack = string(pe.stack)
		s.panics++
		s.mPanics.Inc()
	case errors.As(err, &we):
		kind = FailureTimeout
		s.timeouts++
		s.mTimeouts.Inc()
	default:
		s.errs++
		s.mErrors.Inc()
	}
	s.totalFailures++
	s.lastFailure = err.Error()
	s.lastFailureAt = now
	if reason != RunFlush {
		s.consecutive++
		// A failed probe re-quarantines immediately; a healthy instance
		// quarantines once its failure budget is exhausted.
		if s.state == SupervisorProbing ||
			(s.state == SupervisorHealthy && s.threshold > 0 && s.consecutive >= s.threshold) {
			s.state = SupervisorQuarantined
			s.quarantines++
			s.mQuarantines.Inc()
			s.mState.Set(float64(SupervisorQuarantined))
			s.reopenAt = now.Add(s.cooldown)
		}
	}
	return &InstanceError{
		ID:        s.inst.id,
		Tick:      tick,
		Wavefront: wave,
		Kind:      kind,
		Err:       err,
		Stack:     stack,
	}
}

// abandon flags the instance as wedged and spawns a reaper that clears the
// flag once the abandoned Run finally returns. Until then every dispatch is
// refused (never double-run) and counted as a timeout failure.
func (s *supervisor) abandon(done <-chan error) {
	s.mu.Lock()
	s.wedged = true
	s.mu.Unlock()
	go func() {
		<-done // the abandoned Run returned (its result is discarded)
		s.mu.Lock()
		s.wedged = false
		s.lateReturns++
		s.mLateReturns.Inc()
		s.mu.Unlock()
	}()
}

// gapFill applies the degrade policy to a skipped (quarantined) dispatch:
// each output that has ever published republishes its last sample (hold) or
// a zero vector of the same width (zero), marked Degraded, so downstream
// trigger counts and analyses keep advancing through the outage.
func (s *supervisor) gapFill(now time.Time) {
	policy := s.degrade
	if policy == DegradeAuto {
		if s.resolve == nil {
			return
		}
		policy = s.resolve()
		if policy == DegradeSkip || policy == DegradeAuto {
			return
		}
	}
	if policy == DegradeSkip {
		return
	}
	filled := false
	for _, out := range s.inst.outputs {
		last, ok := out.Last()
		if !ok {
			continue
		}
		vals := last.Values
		if policy == DegradeZero {
			vals = make([]float64, len(last.Values))
		}
		out.Publish(Sample{Time: now, Values: vals, Degraded: true})
		filled = true
	}
	if filled {
		s.mu.Lock()
		s.gapFills++
		s.mGapFills.Inc()
		s.mu.Unlock()
	}
}

// snapshot returns a point-in-time copy of the supervisor's state.
func (s *supervisor) snapshot() InstanceHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return InstanceHealth{
		ID:                  s.inst.id,
		State:               s.state,
		Wedged:              s.wedged,
		ConsecutiveFailures: s.consecutive,
		TotalFailures:       s.totalFailures,
		Panics:              s.panics,
		Timeouts:            s.timeouts,
		Errors:              s.errs,
		Quarantines:         s.quarantines,
		Readmissions:        s.readmissions,
		LateReturns:         s.lateReturns,
		GapFills:            s.gapFills,
		LastFailure:         s.lastFailure,
		LastFailureAt:       s.lastFailureAt,
		ReopenAt:            s.reopenAt,
		RunTimeout:          s.runTimeout,
		QuarantineThreshold: s.threshold,
		QuarantineCooldown:  s.cooldown,
		Degrade:             s.degrade,
	}
}

// SupervisorSnapshots reports every instance's supervisor state in
// initialization (topological) order.
func (e *Engine) SupervisorSnapshots() []InstanceHealth {
	out := make([]InstanceHealth, len(e.instances))
	for i, inst := range e.instances {
		out[i] = inst.sup.snapshot()
	}
	return out
}

// RestoreSupervisors reloads persisted supervisor state (a prior process's
// SupervisorSnapshots) into this engine's instances, matching by instance id.
// It returns how many instances accepted state. Restore before the first
// dispatch: it resumes lineage counters and — when the instance has a
// quarantine budget configured — the quarantine lifecycle itself, so a
// control-node restart does not reset cooldown clocks.
func (e *Engine) RestoreSupervisors(snaps []InstanceHealth) int {
	restored := 0
	for _, h := range snaps {
		inst, ok := e.byID[h.ID]
		if !ok {
			continue
		}
		if inst.sup.restore(h) {
			restored++
		}
	}
	return restored
}

// restore loads one persisted snapshot into the supervisor. Counters are
// mirrored into telemetry so a post-restart /metrics scrape still agrees
// with /status. A snapshot that was Quarantined or Probing resumes as
// Quarantined with its original absolute ReopenAt deadline (a probe's
// outcome died with the old process, so the conservative read is "still
// quarantined"; the next admit at or past ReopenAt re-probes). Wedged is
// never restored: the abandoned goroutine did not survive the restart.
func (s *supervisor) restore(h InstanceHealth) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.consecutive = h.ConsecutiveFailures
	s.totalFailures = h.TotalFailures
	s.panics = h.Panics
	s.timeouts = h.Timeouts
	s.errs = h.Errors
	s.quarantines = h.Quarantines
	s.readmissions = h.Readmissions
	s.lateReturns = h.LateReturns
	s.gapFills = h.GapFills
	s.lastFailure = h.LastFailure
	s.lastFailureAt = h.LastFailureAt
	s.mErrors.Add(h.Errors)
	s.mPanics.Add(h.Panics)
	s.mTimeouts.Add(h.Timeouts)
	s.mQuarantines.Add(h.Quarantines)
	s.mReadmissions.Add(h.Readmissions)
	s.mLateReturns.Add(h.LateReturns)
	s.mGapFills.Add(h.GapFills)
	if s.threshold > 0 && (h.State == SupervisorQuarantined || h.State == SupervisorProbing) {
		s.state = SupervisorQuarantined
		s.reopenAt = h.ReopenAt
		s.mState.Set(float64(SupervisorQuarantined))
	}
	return true
}

// InstanceHealthOf reports the named instance's supervisor state.
func (e *Engine) InstanceHealthOf(id string) (InstanceHealth, bool) {
	inst, ok := e.byID[id]
	if !ok {
		return InstanceHealth{}, false
	}
	return inst.sup.snapshot(), true
}

// invoke runs the module once under the supervisor's protections: panic
// recovery always, and — when a watchdog deadline is configured — dispatch
// on a goroutine abandoned at the deadline.
func (e *Engine) invoke(inst *instanceState, reason RunReason, now time.Time) error {
	if inst.sup.runTimeout <= 0 {
		return e.callRecovered(inst, reason, now)
	}
	done := make(chan error, 1)
	go func() { done <- e.callRecovered(inst, reason, now) }()
	timer := time.NewTimer(inst.sup.runTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		inst.sup.abandon(done)
		return &wedgeError{timeout: inst.sup.runTimeout}
	}
}

// callRecovered invokes Run with panics converted to errors.
func (e *Engine) callRecovered(inst *instanceState, reason RunReason, now time.Time) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	rctx := &RunContext{inst: inst, engine: e, Reason: reason, Now: now}
	return inst.module.Run(rctx)
}
