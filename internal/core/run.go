package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tick advances the engine's virtual clock to now (step mode): every
// periodic module whose deadline has passed runs, and input-triggered
// modules run — in topological order — until no more triggers are pending.
// With WithParallelism(1) (the default) Tick is strictly single-threaded;
// with a wider wavefront, due instances at the same topological depth run
// concurrently, with output byte-identical to the serial schedule. Tick is
// deterministic either way; it must not be mixed with Run.
func (e *Engine) Tick(now time.Time) error {
	if e.realtim {
		return fmt.Errorf("core: Tick called on an engine running in real-time mode")
	}
	e.started = true
	e.tickNum.Add(1)
	var start time.Time
	if e.mTick != nil {
		start = time.Now()
	}
	if e.parallelism > 1 {
		e.tickPeriodicParallel(now)
	} else {
		for _, inst := range e.instances {
			e.firePeriodic(inst, now)
		}
	}
	e.drainTriggers(now)
	if e.mTick != nil {
		e.mTick.Observe(time.Since(start).Seconds())
	}
	return nil
}

// firePeriodic runs one instance's due periodic fires (including catch-up
// after a clock jump) and advances its deadline.
func (e *Engine) firePeriodic(inst *instanceState, now time.Time) {
	if inst.period <= 0 {
		return
	}
	if inst.nextDue.IsZero() {
		inst.nextDue = now // first tick fires immediately
	}
	for !now.Before(inst.nextDue) {
		e.runModule(inst, RunPeriodic, now)
		inst.nextDue = inst.nextDue.Add(inst.period)
	}
}

// tickPeriodicParallel fires due periodic instances wavefront by wavefront:
// all due instances at one topological depth run concurrently (each
// instance's own catch-up fires stay serial within its goroutine), and
// depths run in ascending order, mirroring the serial topological sweep.
func (e *Engine) tickPeriodicParallel(now time.Time) {
	byDepth := make(map[int][]*instanceState)
	maxDepth := 0
	for _, inst := range e.instances {
		if inst.period <= 0 {
			continue
		}
		byDepth[inst.depth] = append(byDepth[inst.depth], inst)
		if inst.depth > maxDepth {
			maxDepth = inst.depth
		}
	}
	for d := 0; d <= maxDepth; d++ {
		front := byDepth[d]
		if len(front) == 0 {
			continue
		}
		e.waveNum.Add(1)
		e.timedFront(front, func(inst *instanceState) { e.firePeriodic(inst, now) })
	}
}

// timedFront is runFront with the per-wavefront duration histogram around
// it; the nil check keeps uninstrumented engines clear of the clock reads.
func (e *Engine) timedFront(front []*instanceState, fn func(*instanceState)) {
	if e.mWave == nil {
		e.runFront(front, fn)
		return
	}
	start := time.Now()
	e.runFront(front, fn)
	e.mWave.Observe(time.Since(start).Seconds())
}

// runFront executes fn for every instance of one wavefront on up to
// e.parallelism goroutines and waits for all of them.
func (e *Engine) runFront(front []*instanceState, fn func(*instanceState)) {
	if len(front) == 1 || e.parallelism <= 1 {
		for _, inst := range front {
			fn(inst)
		}
		return
	}
	workers := e.parallelism
	if workers > len(front) {
		workers = len(front)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(front) {
					return
				}
				fn(front[i])
			}
		}()
	}
	wg.Wait()
}

// Flush runs every module once with RunFlush (in topological order) and
// drains resulting triggers, letting windowed analyses emit their final
// results. Call after the last Tick of an offline run.
func (e *Engine) Flush(now time.Time) error {
	if e.realtim {
		return fmt.Errorf("core: Flush called on an engine running in real-time mode")
	}
	for _, inst := range e.instances {
		e.runModule(inst, RunFlush, now)
		e.drainTriggers(now)
	}
	return nil
}

// drainTriggers runs dirty instances until quiescence. Serially it always
// picks the lowest topological order; in wavefront mode it extracts every
// dirty instance at the minimum depth and runs them concurrently. The two
// schedules deliver identical per-port sample sequences: an instance runs
// only after all its dirty ancestors (which have strictly smaller order and
// depth) have run, so trigger batching — and therefore module run counts,
// queue drops, and sink output — cannot differ.
func (e *Engine) drainTriggers(now time.Time) {
	serial := e.parallelism <= 1
	for {
		e.lock()
		if len(e.dirty) == 0 {
			e.unlock()
			return
		}
		sort.Slice(e.dirty, func(i, j int) bool { return e.dirty[i].order < e.dirty[j].order })
		var front []*instanceState
		if serial {
			front = []*instanceState{e.dirty[0]}
			e.dirty = e.dirty[1:]
		} else {
			// Instances at the minimum depth form the wavefront: no edge
			// connects two of them, so they are safe to run concurrently,
			// and nothing shallower can be triggered by running them.
			minDepth := e.dirty[0].depth
			for _, inst := range e.dirty[1:] {
				if inst.depth < minDepth {
					minDepth = inst.depth
				}
			}
			rest := e.dirty[:0]
			for _, inst := range e.dirty {
				if inst.depth == minDepth {
					front = append(front, inst)
				} else {
					rest = append(rest, inst)
				}
			}
			e.dirty = rest
		}
		for _, inst := range front {
			inst.queued = false
		}
		e.mQueueDepth.Set(float64(len(e.dirty)))
		e.unlock()

		e.waveNum.Add(1)
		e.timedFront(front, func(inst *instanceState) { e.runModule(inst, RunInputs, now) })
	}
}

// Run executes the engine in real-time mode until ctx is cancelled: one
// worker goroutine per module instance, fed by wall-clock tickers (periodic
// modules) and input notifications (§3.1: the fpt-core scheduler
// "dispatches events to the various modules"). On cancellation each module
// receives a final RunFlush, and Run returns after all workers exit.
func (e *Engine) Run(ctx context.Context) error {
	if e.started {
		return fmt.Errorf("core: Run called on an engine already driven by Tick")
	}
	e.realtim = true
	defer func() { e.realtim = false }()

	var wg sync.WaitGroup
	for _, inst := range e.instances {
		inst.mailbox = make(chan RunReason, 1)
	}

	for _, inst := range e.instances {
		wg.Add(1)
		go func(inst *instanceState) {
			defer wg.Done()
			e.worker(ctx, inst)
		}(inst)
		if inst.period > 0 {
			wg.Add(1)
			go func(inst *instanceState) {
				defer wg.Done()
				ticker := time.NewTicker(inst.period)
				defer ticker.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-ticker.C:
						select {
						case inst.mailbox <- RunPeriodic:
						default: // previous run still pending; coalesce
						}
					}
				}
			}(inst)
		}
	}
	wg.Wait()
	return ctx.Err()
}

// worker is the per-instance run loop in real-time mode.
func (e *Engine) worker(ctx context.Context, inst *instanceState) {
	for {
		select {
		case <-ctx.Done():
			e.runModule(inst, RunFlush, time.Now())
			return
		case reason := <-inst.mailbox:
			e.runModule(inst, reason, time.Now())
		}
	}
}
