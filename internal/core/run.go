package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Tick advances the engine's virtual clock to now (step mode): every
// periodic module whose deadline has passed runs, and input-triggered
// modules run — in topological order — until no more triggers are pending.
// Tick is deterministic and single-threaded; it must not be mixed with Run.
func (e *Engine) Tick(now time.Time) error {
	if e.realtim {
		return fmt.Errorf("core: Tick called on an engine running in real-time mode")
	}
	e.started = true
	for _, inst := range e.instances {
		if inst.period <= 0 {
			continue
		}
		if inst.nextDue.IsZero() {
			inst.nextDue = now // first tick fires immediately
		}
		for !now.Before(inst.nextDue) {
			e.runModule(inst, RunPeriodic, now)
			inst.nextDue = inst.nextDue.Add(inst.period)
		}
	}
	e.drainTriggers(now)
	return nil
}

// Flush runs every module once with RunFlush (in topological order) and
// drains resulting triggers, letting windowed analyses emit their final
// results. Call after the last Tick of an offline run.
func (e *Engine) Flush(now time.Time) error {
	if e.realtim {
		return fmt.Errorf("core: Flush called on an engine running in real-time mode")
	}
	for _, inst := range e.instances {
		e.runModule(inst, RunFlush, now)
		e.drainTriggers(now)
	}
	return nil
}

// drainTriggers repeatedly runs the lowest-topological-order dirty instance
// until quiescence.
func (e *Engine) drainTriggers(now time.Time) {
	for {
		e.lock()
		if len(e.dirty) == 0 {
			e.unlock()
			return
		}
		sort.Slice(e.dirty, func(i, j int) bool { return e.dirty[i].order < e.dirty[j].order })
		inst := e.dirty[0]
		e.dirty = e.dirty[1:]
		inst.queued = false
		e.unlock()

		e.runModule(inst, RunInputs, now)
	}
}

// Run executes the engine in real-time mode until ctx is cancelled: one
// worker goroutine per module instance, fed by wall-clock tickers (periodic
// modules) and input notifications (§3.1: the fpt-core scheduler
// "dispatches events to the various modules"). On cancellation each module
// receives a final RunFlush, and Run returns after all workers exit.
func (e *Engine) Run(ctx context.Context) error {
	if e.started {
		return fmt.Errorf("core: Run called on an engine already driven by Tick")
	}
	e.realtim = true
	defer func() { e.realtim = false }()

	var wg sync.WaitGroup
	for _, inst := range e.instances {
		inst.mailbox = make(chan RunReason, 1)
	}

	for _, inst := range e.instances {
		wg.Add(1)
		go func(inst *instanceState) {
			defer wg.Done()
			e.worker(ctx, inst)
		}(inst)
		if inst.period > 0 {
			wg.Add(1)
			go func(inst *instanceState) {
				defer wg.Done()
				ticker := time.NewTicker(inst.period)
				defer ticker.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-ticker.C:
						select {
						case inst.mailbox <- RunPeriodic:
						default: // previous run still pending; coalesce
						}
					}
				}
			}(inst)
		}
	}
	wg.Wait()
	return ctx.Err()
}

// worker is the per-instance run loop in real-time mode.
func (e *Engine) worker(ctx context.Context, inst *instanceState) {
	for {
		select {
		case <-ctx.Done():
			e.runModule(inst, RunFlush, time.Now())
			return
		case reason := <-inst.mailbox:
			e.runModule(inst, reason, time.Now())
		}
	}
}
