package core

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/asdf-project/asdf/internal/config"
)

// Module is the fpt-core plug-in interface (§3.2). All modules —
// data-collection and analysis alike — implement the same two methods.
type Module interface {
	// Init is called once when the instance is created, in DAG dependency
	// order. It validates inputs and configuration, creates outputs, and
	// registers scheduling hooks via the InitContext.
	Init(ctx *InitContext) error
	// Run is called by the scheduler; ctx.Reason says why (periodic tick,
	// fresh inputs, or final flush).
	Run(ctx *RunContext) error
}

// Factory constructs a fresh, un-initialized module instance.
type Factory func() Module

// Registry maps module names (configuration section names) to factories.
type Registry struct {
	factories map[string]Factory
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a module factory under name. Registering a duplicate name
// is a programming error and panics.
func (r *Registry) Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("core: Register requires a name and a factory")
	}
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("core: module %q registered twice", name))
	}
	r.factories[name] = f
}

// Lookup returns the factory for name, if registered.
func (r *Registry) Lookup(name string) (Factory, bool) {
	f, ok := r.factories[name]
	return f, ok
}

// Names returns the registered module names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// InitContext is passed to Module.Init.
type InitContext struct {
	inst   *instanceState
	engine *Engine
}

// Config returns the instance's configuration section.
func (c *InitContext) Config() *config.Instance { return c.inst.cfg }

// ID returns the instance id.
func (c *InitContext) ID() string { return c.inst.id }

// Inputs returns all resolved input ports, in configuration order.
func (c *InitContext) Inputs() []*InputPort {
	out := make([]*InputPort, len(c.inst.inputs))
	copy(out, c.inst.inputs)
	return out
}

// Input returns the ports bound to the given input name. The `@instance`
// configuration form can bind several ports to one name.
func (c *InitContext) Input(name string) []*InputPort {
	var out []*InputPort
	for _, in := range c.inst.inputs {
		if in.name == name {
			out = append(out, in)
		}
	}
	return out
}

// NewOutput creates and registers an output port with origin metadata.
// Output names must be unique within the instance.
func (c *InitContext) NewOutput(name string, origin Origin) (*OutputPort, error) {
	if name == "" {
		return nil, fmt.Errorf("core: instance %q: empty output name", c.inst.id)
	}
	for _, o := range c.inst.outputs {
		if o.name == name {
			return nil, fmt.Errorf("core: instance %q: duplicate output %q", c.inst.id, name)
		}
	}
	out := &OutputPort{name: name, origin: origin, owner: c.inst}
	c.inst.outputs = append(c.inst.outputs, out)
	return out, nil
}

// SchedulePeriodic asks the scheduler to call Run with RunPeriodic every
// period. Data-collection (output-only) modules use this (§3.3).
func (c *InitContext) SchedulePeriodic(period time.Duration) error {
	if period <= 0 {
		return fmt.Errorf("core: instance %q: period must be positive, got %v", c.inst.id, period)
	}
	c.inst.period = period
	return nil
}

// TriggerOnInputs asks the scheduler to call Run with RunInputs once n
// input updates have accumulated (§3.3: "a configurable number of their
// inputs are updated"). n defaults to 1 for any module with inputs that
// never calls this.
func (c *InitContext) TriggerOnInputs(n int) error {
	if n <= 0 {
		return fmt.Errorf("core: instance %q: trigger count must be positive, got %d", c.inst.id, n)
	}
	c.inst.trigger = n
	return nil
}

// Logf writes to the engine log.
func (c *InitContext) Logf(format string, args ...any) {
	c.engine.logf("["+c.inst.id+"] "+format, args...)
}

// RunContext is passed to Module.Run.
type RunContext struct {
	inst   *instanceState
	engine *Engine

	// Reason reports why the module was run.
	Reason RunReason
	// Now is the engine's current time: virtual time in step mode,
	// wall-clock in real-time mode.
	Now time.Time
}

// ID returns the instance id.
func (c *RunContext) ID() string { return c.inst.id }

// Inputs returns all resolved input ports, in configuration order.
func (c *RunContext) Inputs() []*InputPort {
	out := make([]*InputPort, len(c.inst.inputs))
	copy(out, c.inst.inputs)
	return out
}

// Input returns the ports bound to the given input name.
func (c *RunContext) Input(name string) []*InputPort {
	var out []*InputPort
	for _, in := range c.inst.inputs {
		if in.name == name {
			out = append(out, in)
		}
	}
	return out
}

// Output returns the output port with the given name, if it exists.
func (c *RunContext) Output(name string) (*OutputPort, bool) {
	for _, o := range c.inst.outputs {
		if o.name == name {
			return o, true
		}
	}
	return nil, false
}

// Outputs returns all output ports in creation order.
func (c *RunContext) Outputs() []*OutputPort {
	out := make([]*OutputPort, len(c.inst.outputs))
	copy(out, c.inst.outputs)
	return out
}

// Logf writes to the engine log.
func (c *RunContext) Logf(format string, args ...any) {
	c.engine.logf("["+c.inst.id+"] "+format, args...)
}

// Instances returns every instance id in the engine, in initialization
// (topological) order. Together with ModuleOf and SupervisorSnapshots it
// lets observer modules (the print/csv sinks) record engine-wide health
// counters alongside the data they log.
func (c *RunContext) Instances() []string { return c.engine.Instances() }

// ModuleOf returns the module implementation behind the named instance.
func (c *RunContext) ModuleOf(id string) (Module, bool) { return c.engine.ModuleOf(id) }

// SupervisorSnapshots reports every instance's supervisor state.
func (c *RunContext) SupervisorSnapshots() []InstanceHealth {
	return c.engine.SupervisorSnapshots()
}

// Logger abstracts the engine's diagnostic log destination.
type Logger interface {
	Printf(format string, args ...any)
}

// stdLogger adapts the standard library logger.
type stdLogger struct{}

func (stdLogger) Printf(format string, args ...any) { log.Printf(format, args...) }
