package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestEngineChainPropagationProperty: for random chain depths and tick
// counts, a counter feeding D doublers delivers exactly N samples scaled by
// 2^D to the sink, in order — no duplication, loss, or reordering anywhere
// in the DAG plumbing.
func TestEngineChainPropagationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		depth := rng.Intn(8)
		ticks := rng.Intn(30) + 1

		var b strings.Builder
		b.WriteString("[counter]\nid = src\nperiod = 1\n\n")
		prev := "src.output0"
		for d := 0; d < depth; d++ {
			fmt.Fprintf(&b, "[doubler]\nid = d%d\ninput[in] = %s\n\n", d, prev)
			prev = fmt.Sprintf("d%d.output0", d)
		}
		fmt.Fprintf(&b, "[recorder]\nid = rec\ninput[in] = %s\n", prev)

		cfg := mustParse(t, b.String())
		e, err := NewEngine(testRegistry(), cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		start := t0()
		for i := 0; i < ticks; i++ {
			if err := e.Tick(start.Add(time.Duration(i) * time.Second)); err != nil {
				t.Fatal(err)
			}
		}
		mod, _ := e.ModuleOf("rec")
		got := mod.(*recorder).all()
		if len(got) != ticks {
			t.Fatalf("trial %d (depth %d, ticks %d): got %d samples", trial, depth, ticks, len(got))
		}
		scale := math.Pow(2, float64(depth))
		for i, s := range got {
			if s.Scalar() != float64(i)*scale {
				t.Fatalf("trial %d: sample %d = %v, want %v", trial, i, s.Scalar(), float64(i)*scale)
			}
		}
	}
}

// TestEngineFanInProperty: F independent counters into one recorder deliver
// exactly F*N samples.
func TestEngineFanInProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		fan := rng.Intn(9) + 1
		ticks := rng.Intn(20) + 1
		var b strings.Builder
		for f := 0; f < fan; f++ {
			fmt.Fprintf(&b, "[counter]\nid = c%d\nperiod = 1\n\n", f)
		}
		b.WriteString("[recorder]\nid = rec\n")
		for f := 0; f < fan; f++ {
			fmt.Fprintf(&b, "input[i%d] = @c%d\n", f, f)
		}
		cfg := mustParse(t, b.String())
		e, err := NewEngine(testRegistry(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		start := t0()
		for i := 0; i < ticks; i++ {
			if err := e.Tick(start.Add(time.Duration(i) * time.Second)); err != nil {
				t.Fatal(err)
			}
		}
		mod, _ := e.ModuleOf("rec")
		if got := len(mod.(*recorder).all()); got != fan*ticks {
			t.Fatalf("trial %d: fan=%d ticks=%d got %d samples, want %d", trial, fan, ticks, got, fan*ticks)
		}
	}
}

// TestEngineDiamondDAG: one source feeding two parallel chains that merge
// into one sink — fan-out plus fan-in in one graph.
func TestEngineDiamondDAG(t *testing.T) {
	cfg := mustParse(t, `
[counter]
id = src
period = 1

[doubler]
id = left
input[in] = src.output0

[doubler]
id = right
input[in] = src.output0

[recorder]
id = sink
input[l] = left.output0
input[r] = right.output0
`)
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := e.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	mod, _ := e.ModuleOf("sink")
	got := mod.(*recorder).all()
	if len(got) != 8 {
		t.Fatalf("diamond sink received %d samples, want 8", len(got))
	}
	// Each tick contributes two identical doubled samples.
	var sum float64
	for _, s := range got {
		sum += s.Scalar()
	}
	if sum != 2*(0+2+4+6) {
		t.Errorf("sum = %v, want 24", sum)
	}
}

// TestEngineDeepChainInitOrder: DAG construction stays correct on long
// chains declared in reverse order.
func TestEngineDeepChainInitOrder(t *testing.T) {
	const depth = 50
	var b strings.Builder
	fmt.Fprintf(&b, "[recorder]\nid = rec\ninput[in] = d%d.output0\n\n", depth-1)
	for d := depth - 1; d > 0; d-- {
		fmt.Fprintf(&b, "[doubler]\nid = d%d\ninput[in] = d%d.output0\n\n", d, d-1)
	}
	b.WriteString("[doubler]\nid = d0\ninput[in] = src.output0\n\n[counter]\nid = src\nperiod = 1\n")
	cfg := mustParse(t, b.String())
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := e.Instances()
	if ids[0] != "src" || ids[len(ids)-1] != "rec" {
		t.Errorf("init order ends = %s..%s, want src..rec", ids[0], ids[len(ids)-1])
	}
	if err := e.Tick(t0()); err != nil {
		t.Fatal(err)
	}
	mod, _ := e.ModuleOf("rec")
	got := mod.(*recorder).all()
	if len(got) != 1 || got[0].Scalar() != 0 {
		t.Errorf("deep chain delivered %v", got)
	}
}
