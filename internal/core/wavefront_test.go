package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fanInConfig wires n concurrent upstream counters through doublers into a
// single fan-in recorder that triggers once all n inputs have data — the
// widest same-depth wavefronts the scheduler produces.
func fanInConfig(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "[counter]\nid = c%d\nnode = n%d\nperiod = 1\n\n", i, i)
		fmt.Fprintf(&b, "[doubler]\nid = d%d\ninput[in] = c%d.output0\n\n", i, i)
	}
	fmt.Fprintf(&b, "[recorder]\nid = sink\ntrigger = %d\n", n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "input[i%d] = d%d.output0\n", i, i)
	}
	return b.String()
}

// TestWavefrontFanInStress hammers a fan-in module with 8 concurrent
// upstreams under the widest parallelism; run under -race (CI does) it
// proves port delivery and trigger counting are data-race-free, and the
// sample count proves no publication was lost or duplicated.
func TestWavefrontFanInStress(t *testing.T) {
	const upstreams = 8
	const ticks = 500
	cfg := mustParse(t, fanInConfig(upstreams))
	e, err := NewEngine(testRegistry(), cfg, WithParallelism(upstreams))
	if err != nil {
		t.Fatal(err)
	}
	now := t0()
	for i := 0; i < ticks; i++ {
		now = now.Add(time.Second)
		if err := e.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(now); err != nil {
		t.Fatal(err)
	}
	mod, ok := e.ModuleOf("sink")
	if !ok {
		t.Fatal("sink missing")
	}
	got := mod.(*recorder).all()
	if len(got) != upstreams*ticks {
		t.Fatalf("sink received %d samples, want %d", len(got), upstreams*ticks)
	}
}

// TestWavefrontMatchesSerialSampleOrder runs the fan-in topology serially
// and at several wavefront widths, asserting the recorder sees the exact
// same sample sequence — order included — every time.
func TestWavefrontMatchesSerialSampleOrder(t *testing.T) {
	const upstreams = 8
	const ticks = 50
	run := func(parallelism int) []Sample {
		cfg := mustParse(t, fanInConfig(upstreams))
		e, err := NewEngine(testRegistry(), cfg, WithParallelism(parallelism))
		if err != nil {
			t.Fatal(err)
		}
		now := t0()
		for i := 0; i < ticks; i++ {
			now = now.Add(time.Second)
			if err := e.Tick(now); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(now); err != nil {
			t.Fatal(err)
		}
		mod, _ := e.ModuleOf("sink")
		return mod.(*recorder).all()
	}
	serial := run(1)
	if len(serial) != upstreams*ticks {
		t.Fatalf("serial run recorded %d samples, want %d", len(serial), upstreams*ticks)
	}
	for _, w := range []int{2, 4, 8, 0} { // 0 = GOMAXPROCS
		if got := run(w); !reflect.DeepEqual(serial, got) {
			t.Errorf("parallelism=%d sample sequence differs from serial", w)
		}
	}
}
