package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// faulty is a configurable passthrough used by the supervisor tests: it can
// panic, return an error, or wedge (sleep) on selected runs, and otherwise
// republishes its inputs (or, with no inputs, emits its run count).
type faulty struct {
	out *OutputPort

	mu       sync.Mutex
	runs     int
	panicOn  func(run int) bool
	errorOn  func(run int) bool
	wedgeOn  func(run int) bool
	wedgeFor time.Duration
}

func (m *faulty) Init(ctx *InitContext) error {
	var err error
	if m.out, err = ctx.NewOutput("output0", Origin{Source: "faulty"}); err != nil {
		return err
	}
	period, err := ctx.Config().DurationParam("period", 0)
	if err != nil {
		return err
	}
	if period > 0 {
		return ctx.SchedulePeriodic(period)
	}
	return nil
}

func (m *faulty) Run(ctx *RunContext) error {
	if ctx.Reason == RunFlush {
		return nil
	}
	m.mu.Lock()
	m.runs++
	run := m.runs
	panicNow := m.panicOn != nil && m.panicOn(run)
	errorNow := m.errorOn != nil && m.errorOn(run)
	wedgeNow := m.wedgeOn != nil && m.wedgeOn(run)
	wedgeFor := m.wedgeFor
	m.mu.Unlock()

	if panicNow {
		panic(fmt.Sprintf("injected panic on run %d", run))
	}
	if errorNow {
		return fmt.Errorf("injected error on run %d", run)
	}
	if wedgeNow {
		time.Sleep(wedgeFor)
	}
	for _, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			m.out.Publish(s)
		}
	}
	if len(ctx.Inputs()) == 0 {
		m.out.Publish(NewScalar(ctx.Now, float64(run)))
	}
	return nil
}

func (m *faulty) runCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runs
}

// errCollector is a thread-safe error-handler sink.
type errCollector struct {
	mu   sync.Mutex
	errs []error
	ids  []string
}

func (c *errCollector) handler() func(string, error) {
	return func(id string, err error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.ids = append(c.ids, id)
		c.errs = append(c.errs, err)
	}
}

func (c *errCollector) all() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]error, len(c.errs))
	copy(out, c.errs)
	return out
}

func (c *errCollector) kinds() map[FailureKind]int {
	out := make(map[FailureKind]int)
	for _, err := range c.all() {
		var ie *InstanceError
		if errors.As(err, &ie) {
			out[ie.Kind]++
		}
	}
	return out
}

// fanConfig builds a DAG with one periodic source, n same-depth "faulty"
// siblings, and a recorder sink joining them all.
func fanConfig(n int, extra string) string {
	var sb strings.Builder
	sb.WriteString("[counter]\nid = src\nperiod = 1\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "[faulty]\nid = w%d\ninput[in] = src.output0\n%s", i, extra)
	}
	sb.WriteString("[recorder]\nid = sink\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "input[i%d] = w%d.output0\n", i, i)
	}
	return sb.String()
}

func supervisorRegistry() *Registry {
	reg := testRegistry()
	reg.Register("faulty", func() Module { return &faulty{} })
	return reg
}

// TestPanicIsolatedFromSiblings is the regression test for the wavefront
// path: a panic in one instance at depth d must not prevent same-depth
// siblings from completing their tick — serially or in wavefront mode the
// panic is converted to an InstanceError, never a crash.
func TestPanicIsolatedFromSiblings(t *testing.T) {
	const siblings = 4
	for _, par := range []int{1, siblings} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			reg := supervisorRegistry()
			cfg := mustParse(t, fanConfig(siblings, ""))
			var ec errCollector
			e, err := NewEngine(reg, cfg, WithParallelism(par), WithErrorHandler(ec.handler()))
			if err != nil {
				t.Fatal(err)
			}
			// w1 panics on every run.
			mod, _ := e.ModuleOf("w1")
			mod.(*faulty).panicOn = func(int) bool { return true }

			const ticks = 5
			for i := 0; i < ticks; i++ {
				if err := e.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
					t.Fatal(err)
				}
			}

			// Every sibling except the panicker delivered all its ticks.
			sink, _ := e.ModuleOf("sink")
			if got, want := len(sink.(*recorder).all()), (siblings-1)*ticks; got != want {
				t.Errorf("sink received %d samples, want %d from the healthy siblings", got, want)
			}
			// The panic surfaced as a structured error, once per tick.
			errs := ec.all()
			if len(errs) != ticks {
				t.Fatalf("error handler invoked %d times, want %d", len(errs), ticks)
			}
			var ie *InstanceError
			if !errors.As(errs[0], &ie) {
				t.Fatalf("error %T is not an *InstanceError", errs[0])
			}
			if ie.ID != "w1" || ie.Kind != FailurePanic {
				t.Errorf("InstanceError = {ID:%s Kind:%s}, want {w1 panic}", ie.ID, ie.Kind)
			}
			if ie.Tick == 0 {
				t.Error("InstanceError.Tick not stamped")
			}
			if ie.Stack == "" {
				t.Error("InstanceError.Stack empty for a panic")
			}
			if !strings.Contains(ie.Error(), "injected panic") {
				t.Errorf("error text %q does not carry the panic value", ie.Error())
			}
			// The supervisor counted the panics.
			ih, ok := e.InstanceHealthOf("w1")
			if !ok || ih.Panics != ticks {
				t.Errorf("w1 health = %+v, want %d panics", ih, ticks)
			}
		})
	}
}

// TestQuarantineLifecycle walks the full state machine: healthy →
// quarantined after the failure budget → half-open probe after cooldown →
// readmit on success, or re-quarantine on a failed probe.
func TestQuarantineLifecycle(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			reg := supervisorRegistry()
			cfg := mustParse(t, fanConfig(3, "quarantine_threshold = 3\nquarantine_cooldown = 5\n"))
			var ec errCollector
			e, err := NewEngine(reg, cfg, WithParallelism(par), WithErrorHandler(ec.handler()))
			if err != nil {
				t.Fatal(err)
			}
			mod, _ := e.ModuleOf("w0")
			w0 := mod.(*faulty)
			// Fail runs 1..4; recover afterwards. Run 4 is the first failed
			// probe (re-quarantine); the next probe succeeds (readmit).
			w0.errorOn = func(run int) bool { return run <= 4 }

			tick := func(i int) {
				t.Helper()
				if err := e.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
					t.Fatal(err)
				}
			}
			state := func() SupervisorState {
				ih, _ := e.InstanceHealthOf("w0")
				return ih.State
			}

			// Ticks 0,1: failures 1,2 — still healthy.
			tick(0)
			tick(1)
			if got := state(); got != SupervisorHealthy {
				t.Fatalf("after 2 failures state = %s, want healthy", got)
			}
			// Tick 2: third consecutive failure trips quarantine.
			tick(2)
			if got := state(); got != SupervisorQuarantined {
				t.Fatalf("after 3 failures state = %s, want quarantined", got)
			}
			// Ticks 3..6: inside the 5s cooldown — skipped, no new failures.
			failuresAtQuarantine := len(ec.all())
			for i := 3; i <= 6; i++ {
				tick(i)
			}
			if got := state(); got != SupervisorQuarantined {
				t.Fatalf("inside cooldown state = %s, want quarantined", got)
			}
			if got := len(ec.all()); got != failuresAtQuarantine {
				t.Errorf("%d new failures while quarantined, want 0", got-failuresAtQuarantine)
			}
			if w0.runCount() != 3 {
				t.Errorf("w0 ran %d times, want 3 (quarantine must skip dispatches)", w0.runCount())
			}
			// Tick 7 (t=2+5): cooldown over — the probe runs and fails →
			// re-quarantined with a fresh cooldown.
			tick(7)
			if got := state(); got != SupervisorQuarantined {
				t.Fatalf("after failed probe state = %s, want quarantined", got)
			}
			if w0.runCount() != 4 {
				t.Errorf("w0 ran %d times, want 4 (exactly one probe)", w0.runCount())
			}
			// Ticks 8..11: fresh cooldown. Tick 12 (t=7+5): probe succeeds →
			// readmitted.
			for i := 8; i <= 11; i++ {
				tick(i)
			}
			tick(12)
			if got := state(); got != SupervisorHealthy {
				t.Fatalf("after successful probe state = %s, want healthy", got)
			}
			// Healthy again: later ticks run normally.
			tick(13)
			ih, _ := e.InstanceHealthOf("w0")
			if ih.Quarantines != 2 || ih.Readmissions != 1 {
				t.Errorf("quarantines=%d readmissions=%d, want 2 and 1", ih.Quarantines, ih.Readmissions)
			}
			if ih.ConsecutiveFailures != 0 {
				t.Errorf("consecutive failures = %d after readmission, want 0", ih.ConsecutiveFailures)
			}
			if kinds := ec.kinds(); kinds[FailureError] != 4 {
				t.Errorf("recorded %v, want 4 error-kind failures", kinds)
			}
		})
	}
}

// TestQuarantineDegradePolicies checks the gap-fill behaviour of hold and
// zero (and the silence of skip) while an instance is quarantined.
func TestQuarantineDegradePolicies(t *testing.T) {
	for _, tc := range []struct {
		policy string
		want   func(last float64, s Sample) bool
	}{
		{"skip", nil},
		{"hold", func(last float64, s Sample) bool { return s.Scalar() == last && s.Degraded }},
		{"zero", func(last float64, s Sample) bool { return s.Scalar() == 0 && s.Degraded }},
	} {
		t.Run(tc.policy, func(t *testing.T) {
			reg := supervisorRegistry()
			cfg := mustParse(t, fmt.Sprintf(`
[faulty]
id = f
period = 1
quarantine_threshold = 2
quarantine_cooldown = 100
degrade = %s
[recorder]
id = sink
input[in] = f.output0
`, tc.policy))
			e, err := NewEngine(reg, cfg, WithErrorHandler(func(string, error) {}))
			if err != nil {
				t.Fatal(err)
			}
			mod, _ := e.ModuleOf("f")
			f := mod.(*faulty)
			// Two good runs (publishing 1, 2), then permanent failure.
			f.errorOn = func(run int) bool { return run > 2 }

			for i := 0; i < 8; i++ {
				if err := e.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
					t.Fatal(err)
				}
			}
			ih, _ := e.InstanceHealthOf("f")
			if ih.State != SupervisorQuarantined {
				t.Fatalf("state = %s, want quarantined", ih.State)
			}
			sink, _ := e.ModuleOf("sink")
			samples := sink.(*recorder).all()
			// 2 real samples (values 1, 2), then ticks 4..7 are quarantined
			// dispatches: gap-filled under hold/zero, silent under skip.
			if tc.policy == "skip" {
				if len(samples) != 2 {
					t.Fatalf("skip: sink received %d samples, want 2 real ones", len(samples))
				}
				if ih.GapFills != 0 {
					t.Errorf("skip: %d gap fills recorded, want 0", ih.GapFills)
				}
				return
			}
			if len(samples) != 6 {
				t.Fatalf("%s: sink received %d samples, want 2 real + 4 gap-filled", tc.policy, len(samples))
			}
			for _, s := range samples[2:] {
				if !tc.want(2, s) {
					t.Errorf("%s: gap-fill sample = %+v", tc.policy, s)
				}
			}
			if ih.GapFills != 4 {
				t.Errorf("%s: gap fills = %d, want 4", tc.policy, ih.GapFills)
			}
		})
	}
}

// TestWatchdogAbandonsWedgedRun checks that a Run exceeding run_timeout is
// abandoned without blocking the tick, that the instance is never
// double-run while the abandoned goroutine is in flight, and that the
// leaked goroutine's eventual return clears the wedge.
func TestWatchdogAbandonsWedgedRun(t *testing.T) {
	reg := supervisorRegistry()
	cfg := mustParse(t, `
[faulty]
id = f
period = 1
run_timeout = 30ms
[recorder]
id = sink
input[in] = f.output0
`)
	var ec errCollector
	e, err := NewEngine(reg, cfg, WithErrorHandler(ec.handler()))
	if err != nil {
		t.Fatal(err)
	}
	mod, _ := e.ModuleOf("f")
	f := mod.(*faulty)
	f.wedgeOn = func(run int) bool { return run == 1 }
	f.wedgeFor = 200 * time.Millisecond

	start := time.Now()
	if err := e.Tick(t0()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("tick blocked %v on a wedged module, want ~run_timeout", elapsed)
	}
	ih, _ := e.InstanceHealthOf("f")
	if !ih.Wedged || ih.Timeouts != 1 {
		t.Errorf("after abandon: wedged=%v timeouts=%d, want true/1", ih.Wedged, ih.Timeouts)
	}

	// While the abandoned goroutine sleeps, further dispatches are refused
	// and counted, never double-run.
	if err := e.Tick(t0().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if f.runCount() != 1 {
		t.Errorf("f ran %d times while wedged, want 1 (no double dispatch)", f.runCount())
	}

	// Once the goroutine returns the wedge clears and runs resume.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ih, _ = e.InstanceHealthOf("f")
		if !ih.Wedged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wedge never cleared after the abandoned run returned")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ih.LateReturns != 1 {
		t.Errorf("late returns = %d, want 1", ih.LateReturns)
	}
	if err := e.Tick(t0().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if f.runCount() != 2 {
		t.Errorf("f ran %d times after recovery, want 2", f.runCount())
	}
	if kinds := ec.kinds(); kinds[FailureTimeout] != 2 {
		t.Errorf("recorded %v, want 2 timeout failures (abandon + wedged skip)", kinds)
	}
}

// TestWatchdogStress races many watchdog-abandoned goroutines against the
// wavefront scheduler and concurrent snapshot readers; run with -race. A
// permanently wedging instance must end up quarantined, while healthy
// siblings keep completing every tick.
func TestWatchdogStress(t *testing.T) {
	const siblings = 6
	reg := supervisorRegistry()
	cfg := mustParse(t, fanConfig(siblings,
		"run_timeout = 2ms\nquarantine_threshold = 5\nquarantine_cooldown = 1000\n"))
	var errCount atomic.Int64
	e, err := NewEngine(reg, cfg, WithParallelism(siblings),
		WithErrorHandler(func(string, error) { errCount.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	mod, _ := e.ModuleOf("w0")
	w0 := mod.(*faulty)
	w0.wedgeOn = func(int) bool { return true }
	w0.wedgeFor = 10 * time.Millisecond

	// Concurrent snapshot readers, as a live /status endpoint would be.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, ih := range e.SupervisorSnapshots() {
						_ = ih.State
					}
				}
			}
		}()
	}

	const ticks = 40
	for i := 0; i < ticks; i++ {
		if err := e.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	sink, _ := e.ModuleOf("sink")
	got := len(sink.(*recorder).all())
	// Healthy siblings deliver every tick; w0 contributes only what it
	// managed before abandonment (its late publishes may or may not land).
	if got < (siblings-1)*ticks {
		t.Errorf("sink received %d samples, want >= %d from healthy siblings", got, (siblings-1)*ticks)
	}
	ih, _ := e.InstanceHealthOf("w0")
	if ih.State != SupervisorQuarantined {
		t.Errorf("w0 state = %s, want quarantined after persistent wedging", ih.State)
	}
	if ih.Timeouts == 0 {
		t.Error("no timeout failures recorded")
	}
	if errCount.Load() == 0 {
		t.Error("error handler never invoked")
	}
}

// TestSupervisorConfigErrors covers parameter validation paths.
func TestSupervisorConfigErrors(t *testing.T) {
	reg := supervisorRegistry()
	for _, bad := range []string{
		"[counter]\nid = c\nperiod = 1\ndegrade = sideways\n",
		"[counter]\nid = c\nperiod = 1\nrun_timeout = -1s\n",
		"[counter]\nid = c\nperiod = 1\nquarantine_cooldown = -2\n",
	} {
		cfg := mustParse(t, bad)
		if _, err := NewEngine(reg, cfg); err == nil {
			t.Errorf("config %q accepted, want error", bad)
		}
	}
}

// TestQuarantineDisabledByDefault: without a threshold an instance fails
// forever but is never quarantined — the seed behaviour.
func TestQuarantineDisabledByDefault(t *testing.T) {
	reg := supervisorRegistry()
	cfg := mustParse(t, "[faulty]\nid = f\nperiod = 1\n")
	var ec errCollector
	e, err := NewEngine(reg, cfg, WithErrorHandler(ec.handler()))
	if err != nil {
		t.Fatal(err)
	}
	mod, _ := e.ModuleOf("f")
	mod.(*faulty).errorOn = func(int) bool { return true }
	for i := 0; i < 10; i++ {
		if err := e.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	ih, _ := e.InstanceHealthOf("f")
	if ih.State != SupervisorHealthy {
		t.Errorf("state = %s, want healthy (quarantine disabled)", ih.State)
	}
	if len(ec.all()) != 10 {
		t.Errorf("error handler invoked %d times, want every tick", len(ec.all()))
	}
	if ih.TotalFailures != 10 || ih.Errors != 10 {
		t.Errorf("counted %d/%d failures/errors, want 10/10", ih.TotalFailures, ih.Errors)
	}
}

// TestFlushDoesNotReadmit: Flush runs a quarantined instance (it is the
// engine's final drain), but a clean flush must not masquerade as a
// successful half-open probe and re-admit it — the post-run report would
// show the offender healthy.
func TestFlushDoesNotReadmit(t *testing.T) {
	reg := supervisorRegistry()
	cfg := mustParse(t, "[faulty]\nid = f\nperiod = 1\nquarantine_threshold = 2\nquarantine_cooldown = 100\n")
	e, err := NewEngine(reg, cfg, WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	mod, _ := e.ModuleOf("f")
	mod.(*faulty).errorOn = func(int) bool { return true }
	for i := 0; i < 4; i++ {
		if err := e.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if ih, _ := e.InstanceHealthOf("f"); ih.State != SupervisorQuarantined {
		t.Fatalf("state = %s before flush, want quarantined", ih.State)
	}
	if err := e.Flush(t0().Add(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	ih, _ := e.InstanceHealthOf("f")
	if ih.State != SupervisorQuarantined {
		t.Errorf("state = %s after flush, want still quarantined", ih.State)
	}
	if ih.Readmissions != 0 {
		t.Errorf("flush counted as a readmission (%d)", ih.Readmissions)
	}
}

// TestEngineQuarantineOptionDefaults: WithQuarantine applies to instances
// with no explicit parameters, and an explicit quarantine_threshold = 0
// opts a single instance out.
func TestEngineQuarantineOptionDefaults(t *testing.T) {
	reg := supervisorRegistry()
	cfg := mustParse(t, `
[faulty]
id = budget
period = 1
[faulty]
id = optout
period = 1
quarantine_threshold = 0
`)
	e, err := NewEngine(reg, cfg,
		WithQuarantine(2, 60*time.Second),
		WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"budget", "optout"} {
		mod, _ := e.ModuleOf(id)
		mod.(*faulty).errorOn = func(int) bool { return true }
	}
	for i := 0; i < 6; i++ {
		if err := e.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if ih, _ := e.InstanceHealthOf("budget"); ih.State != SupervisorQuarantined {
		t.Errorf("budget state = %s, want quarantined via engine default", ih.State)
	}
	if ih, _ := e.InstanceHealthOf("optout"); ih.State != SupervisorHealthy {
		t.Errorf("optout state = %s, want healthy (explicit opt-out)", ih.State)
	}
}
