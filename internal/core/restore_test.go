package core

import (
	"testing"
	"time"
)

// TestRestoreSupervisorsResumesCooldown is the core of the crash-safe
// restart story: a quarantined instance restored from a snapshot keeps its
// absolute ReopenAt deadline — the cooldown clock resumes, it does not
// reset — and the half-open probe lifecycle continues where it left off.
func TestRestoreSupervisorsResumesCooldown(t *testing.T) {
	cfgText := fanConfig(2, "quarantine_threshold = 2\nquarantine_cooldown = 10\n")

	// First process: w0 fails until quarantined.
	reg := supervisorRegistry()
	e1, err := NewEngine(reg, mustParse(t, cfgText), WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	mod, _ := e1.ModuleOf("w0")
	mod.(*faulty).errorOn = func(int) bool { return true }
	for i := 0; i < 3; i++ {
		if err := e1.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := e1.InstanceHealthOf("w0")
	if before.State != SupervisorQuarantined || before.ReopenAt.IsZero() {
		t.Fatalf("precondition: w0 = %+v, want quarantined with a deadline", before)
	}
	snaps := e1.SupervisorSnapshots()

	// "Restart": a fresh engine from the same configuration, restored from
	// the snapshot. The replacement w0 is healthy (the fault died with the
	// old process), so the probe will succeed.
	reg2 := supervisorRegistry()
	e2, err := NewEngine(reg2, mustParse(t, cfgText), WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.RestoreSupervisors(snaps); got != 4 {
		t.Fatalf("RestoreSupervisors restored %d instances, want 4 (src, w0, w1, sink)", got)
	}
	after, _ := e2.InstanceHealthOf("w0")
	if after.State != SupervisorQuarantined {
		t.Fatalf("restored state = %s, want quarantined", after.State)
	}
	if !after.ReopenAt.Equal(before.ReopenAt) {
		t.Fatalf("restored ReopenAt = %v, want the original deadline %v (cooldown must resume, not reset)",
			after.ReopenAt, before.ReopenAt)
	}
	if after.TotalFailures != before.TotalFailures || after.Quarantines != before.Quarantines ||
		after.ConsecutiveFailures != before.ConsecutiveFailures || after.LastFailure != before.LastFailure {
		t.Errorf("lineage counters lost: before=%+v after=%+v", before, after)
	}

	w0runs := func() int {
		m, _ := e2.ModuleOf("w0")
		return m.(*faulty).runCount()
	}
	// Ticks still inside the original cooldown: skipped, no probe.
	for i := 3; i < 11; i++ {
		if err := e2.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if w0runs() != 0 {
		t.Fatalf("w0 ran %d times inside the restored cooldown, want 0", w0runs())
	}
	// First tick at/past ReopenAt (t0+11 >= t0+2+10… the deadline is
	// t0+2+10 = t0+12): tick 12 probes and succeeds.
	if err := e2.Tick(t0().Add(12 * time.Second)); err != nil {
		t.Fatal(err)
	}
	ih, _ := e2.InstanceHealthOf("w0")
	if ih.State != SupervisorHealthy || w0runs() != 1 {
		t.Fatalf("after probe: state=%s runs=%d, want healthy after exactly one probe", ih.State, w0runs())
	}
	if ih.Readmissions != before.Readmissions+1 {
		t.Errorf("readmissions = %d, want %d", ih.Readmissions, before.Readmissions+1)
	}
}

// TestRestoreSupervisorsEdgeCases: snapshots for unknown instances are
// skipped; an instance with no quarantine budget takes the counters but
// never resumes a quarantine it could not have entered; Wedged and Probing
// don't restore as-is.
func TestRestoreSupervisorsEdgeCases(t *testing.T) {
	reg := supervisorRegistry()
	e, err := NewEngine(reg, mustParse(t, fanConfig(1, "")), WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	deadline := t0().Add(time.Minute)
	n := e.RestoreSupervisors([]InstanceHealth{
		{ID: "no-such-instance", State: SupervisorQuarantined, ReopenAt: deadline},
		{ID: "w0", State: SupervisorQuarantined, Wedged: true, ReopenAt: deadline,
			TotalFailures: 9, Errors: 9, ConsecutiveFailures: 4, Quarantines: 2},
	})
	if n != 1 {
		t.Fatalf("restored %d instances, want 1", n)
	}
	ih, _ := e.InstanceHealthOf("w0")
	// fanConfig(1, "") configures no quarantine budget: the quarantine
	// state must not be adopted, but the lineage counters are.
	if ih.State != SupervisorHealthy {
		t.Errorf("thresholdless instance restored as %s, want healthy", ih.State)
	}
	if ih.Wedged {
		t.Error("Wedged restored across restart; the abandoned goroutine did not survive")
	}
	if ih.TotalFailures != 9 || ih.Quarantines != 2 {
		t.Errorf("counters not restored: %+v", ih)
	}

	// Probing restores as Quarantined when a budget exists: the probe's
	// outcome died with the old process.
	reg2 := supervisorRegistry()
	e2, err := NewEngine(reg2, mustParse(t, fanConfig(1, "quarantine_threshold = 2\nquarantine_cooldown = 5\n")),
		WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	e2.RestoreSupervisors([]InstanceHealth{{ID: "w0", State: SupervisorProbing, ReopenAt: deadline}})
	if ih, _ := e2.InstanceHealthOf("w0"); ih.State != SupervisorQuarantined || !ih.ReopenAt.Equal(deadline) {
		t.Errorf("probing snapshot restored as %+v, want quarantined at the original deadline", ih)
	}
}

// TestDegradeAutoResolver: degrade = auto consults the engine's resolver on
// quarantined dispatches — gap-filling when the resolver says hold, silent
// when it says skip, and silent without a resolver.
func TestDegradeAutoResolver(t *testing.T) {
	cfgText := `
[faulty]
id = f
period = 1
quarantine_threshold = 2
quarantine_cooldown = 100
degrade = auto
[recorder]
id = sink
input[in] = f.output0
`
	run := func(t *testing.T, opts ...Option) (int, InstanceHealth) {
		reg := supervisorRegistry()
		opts = append(opts, WithErrorHandler(func(string, error) {}))
		e, err := NewEngine(reg, mustParse(t, cfgText), opts...)
		if err != nil {
			t.Fatal(err)
		}
		mod, _ := e.ModuleOf("f")
		mod.(*faulty).errorOn = func(run int) bool { return run > 2 }
		for i := 0; i < 8; i++ {
			if err := e.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
				t.Fatal(err)
			}
		}
		sink, _ := e.ModuleOf("sink")
		ih, _ := e.InstanceHealthOf("f")
		return len(sink.(*recorder).all()), ih
	}

	t.Run("resolver-hold", func(t *testing.T) {
		var calls int
		samples, ih := run(t, WithDegradeResolver(func() DegradePolicy {
			calls++
			return DegradeHold
		}))
		// 2 real samples + 4 quarantined ticks gap-filled by hold.
		if samples != 6 || ih.GapFills != 4 {
			t.Errorf("resolver-hold: samples=%d gapFills=%d, want 6 and 4", samples, ih.GapFills)
		}
		if calls == 0 {
			t.Error("resolver never consulted")
		}
	})
	t.Run("resolver-skip", func(t *testing.T) {
		samples, ih := run(t, WithDegradeResolver(func() DegradePolicy { return DegradeSkip }))
		if samples != 2 || ih.GapFills != 0 {
			t.Errorf("resolver-skip: samples=%d gapFills=%d, want 2 and 0", samples, ih.GapFills)
		}
	})
	t.Run("no-resolver", func(t *testing.T) {
		samples, ih := run(t)
		if samples != 2 || ih.GapFills != 0 {
			t.Errorf("no-resolver: samples=%d gapFills=%d, want 2 and 0 (auto defaults to skip)", samples, ih.GapFills)
		}
		if ih.Degrade != DegradeAuto {
			t.Errorf("health reports degrade=%s, want auto", ih.Degrade)
		}
	})
}

func TestParseDegradePolicyAuto(t *testing.T) {
	p, err := ParseDegradePolicy("auto")
	if err != nil || p != DegradeAuto {
		t.Fatalf("ParseDegradePolicy(auto) = %v, %v", p, err)
	}
	if p.String() != "auto" {
		t.Fatalf("DegradeAuto.String() = %q", p.String())
	}
	b, err := p.MarshalJSON()
	if err != nil || string(b) != `"auto"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
	var back DegradePolicy
	if err := back.UnmarshalJSON(b); err != nil || back != DegradeAuto {
		t.Fatalf("round trip = %v, %v", back, err)
	}
}
