package core

import (
	"sync"
)

// defaultQueueCap bounds each input port's FIFO. When analyses are slower
// than collectors the oldest samples are dropped, matching the paper's
// rate-mismatch semantics (§3.7); the ibuffer module exists to absorb
// bursts before slow analyses.
const defaultQueueCap = 64

// InputPort is the receiving end of a DAG edge. Each InputPort is fed by
// exactly one OutputPort; an input *name* may map to several ports when the
// configuration used the `@instance` (all-outputs) form.
type InputPort struct {
	name   string // the configured input name, e.g. "l0"
	source *OutputPort
	owner  *instanceState

	mu      sync.Mutex
	queue   []Sample
	dropped uint64
	total   uint64
}

// Name reports the configured input name.
func (p *InputPort) Name() string { return p.name }

// Origin reports the origin of the upstream output feeding this port.
func (p *InputPort) Origin() Origin { return p.source.origin }

// SourceOutput reports the name of the upstream output feeding this port.
func (p *InputPort) SourceOutput() string { return p.source.name }

// push enqueues a sample, dropping the oldest when the queue is full.
func (p *InputPort) push(s Sample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) >= defaultQueueCap {
		copy(p.queue, p.queue[1:])
		p.queue = p.queue[:len(p.queue)-1]
		p.dropped++
	}
	p.queue = append(p.queue, s)
	p.total++
}

// Read drains and returns all queued samples (oldest first). It returns nil
// when no data is pending.
func (p *InputPort) Read() []Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return nil
	}
	out := make([]Sample, len(p.queue))
	copy(out, p.queue)
	p.queue = p.queue[:0]
	return out
}

// ReadAppend drains all queued samples (oldest first) by appending them to
// dst and returns the extended slice. Unlike Read it allocates only when dst
// lacks capacity, so batch modules that drain many ports per tick can reuse
// one buffer across ticks.
func (p *InputPort) ReadAppend(dst []Sample) []Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	dst = append(dst, p.queue...)
	p.queue = p.queue[:0]
	return dst
}

// Latest returns the newest queued sample without draining older ones, and
// whether any data was pending. The queue is cleared.
func (p *InputPort) Latest() (Sample, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return Sample{}, false
	}
	s := p.queue[len(p.queue)-1]
	p.queue = p.queue[:0]
	return s, true
}

// Pending reports the number of queued samples.
func (p *InputPort) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Dropped reports how many samples were discarded due to queue overflow.
func (p *InputPort) Dropped() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Total reports how many samples were ever pushed to this port.
func (p *InputPort) Total() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// OutputPort is the emitting end of one or more DAG edges. Modules create
// outputs during Init and publish samples from Run.
type OutputPort struct {
	name   string
	origin Origin
	owner  *instanceState

	mu         sync.Mutex
	subs       []*InputPort
	published  uint64
	suppressed uint64
	disabled   bool
	last       Sample
	hasLast    bool
}

// Name reports the output name (e.g. "output0").
func (o *OutputPort) Name() string { return o.name }

// Origin reports the origin metadata set at creation.
func (o *OutputPort) Origin() Origin { return o.origin }

// Published reports how many samples have been published.
func (o *OutputPort) Published() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.published
}

// Last returns the most recently published sample, if any.
func (o *OutputPort) Last() (Sample, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.last, o.hasLast
}

// SetEnabled enables or disables the output (§3.7: fpt-core provides for
// "back-propagating enable/disable state changes on outputs"). Samples
// published while disabled are counted as suppressed and not delivered.
func (o *OutputPort) SetEnabled(enabled bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.disabled = !enabled
}

// Enabled reports whether the output currently delivers samples.
func (o *OutputPort) Enabled() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return !o.disabled
}

// Suppressed reports how many samples were dropped while disabled.
func (o *OutputPort) Suppressed() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.suppressed
}

// Publish fans a sample out to every subscribed input port and notifies the
// downstream modules' schedulers.
func (o *OutputPort) Publish(s Sample) {
	o.mu.Lock()
	if o.disabled {
		o.suppressed++
		o.mu.Unlock()
		return
	}
	o.published++
	o.last = s
	o.hasLast = true
	subs := o.subs
	o.mu.Unlock()

	for _, in := range subs {
		in.push(s)
	}
	// Notify after data is visible on every port so a triggered module
	// observes its full fan-out.
	eng := o.owner.engine
	for _, in := range subs {
		eng.notifyInput(in)
	}
}

// subscribe attaches an input port; called only during DAG construction.
func (o *OutputPort) subscribe(in *InputPort) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.subs = append(o.subs, in)
}
