package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// slowStage models an analysis module with a fixed per-run cost: it sleeps
// for the configured work duration, then republishes its inputs. Sleeping
// rather than spinning keeps the wavefront comparison meaningful on
// single-CPU runners.
type slowStage struct {
	work time.Duration
	out  *OutputPort
}

func (m *slowStage) Init(ctx *InitContext) error {
	var err error
	if m.work, err = ctx.Config().DurationParam("work", time.Millisecond); err != nil {
		return err
	}
	m.out, err = ctx.NewOutput("output0", Origin{Source: "slow"})
	return err
}

func (m *slowStage) Run(ctx *RunContext) error {
	time.Sleep(m.work)
	for _, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			m.out.Publish(s)
		}
	}
	return nil
}

// BenchmarkEngineTick measures step-mode tick throughput on a fan-shaped
// DAG — one periodic source feeding 8 same-depth stages (200µs of work
// each) joined by a sink — comparing the serial scheduler against an
// 8-wide wavefront. The mode=... suffix is stripped by the CI benchstat
// step to produce the serial-vs-parallel comparison.
func BenchmarkEngineTick(b *testing.B) {
	const stages = 8
	reg := testRegistry()
	reg.Register("slow", func() Module { return &slowStage{} })

	var sb strings.Builder
	sb.WriteString("[counter]\nid = src\nperiod = 1s\n")
	for i := 0; i < stages; i++ {
		fmt.Fprintf(&sb, "[slow]\nid = w%d\nwork = 200us\ninput[in] = src.output0\n", i)
	}
	sb.WriteString("[recorder]\nid = sink\n")
	for i := 0; i < stages; i++ {
		fmt.Fprintf(&sb, "input[i%d] = w%d.output0\n", i, i)
	}
	file, err := config.ParseString(sb.String())
	if err != nil {
		b.Fatal(err)
	}

	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"serial", nil},
		{"wavefront", []Option{WithParallelism(stages)}},
	} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			eng, err := NewEngine(reg, file, mode.opts...)
			if err != nil {
				b.Fatal(err)
			}
			start := time.Unix(1_700_000_000, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Tick(start.Add(time.Duration(i+1) * time.Second)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSupervisorOverhead guards the no-fault hot path: a zero-work
// fan DAG (the supervisor's per-dispatch cost is the whole signal) ticked
// under each supervision layer. sup=recover is the mandatory baseline
// (panic recovery + failure accounting), sup=quarantine arms a failure
// budget that never trips, sup=watchdog adds the goroutine-per-dispatch
// deadline — the one layer with real cost, which is why it is opt-in —
// and sup=telemetry attaches a metrics registry, which must stay within
// noise of the baseline (atomic increments plus one clock read per run).
// The sup=... sub-names deliberately match none of the CI benchstat greps
// (mode=..., client=...); this benchmark tracks the recover/quarantine
// layers staying within noise of each other, not serial vs parallel.
func BenchmarkSupervisorOverhead(b *testing.B) {
	const stages = 8
	reg := testRegistry()

	var sb strings.Builder
	sb.WriteString("[counter]\nid = src\nperiod = 1s\n")
	for i := 0; i < stages; i++ {
		fmt.Fprintf(&sb, "[doubler]\nid = w%d\ninput[in] = src.output0\n", i)
	}
	sb.WriteString("[recorder]\nid = sink\n")
	for i := 0; i < stages; i++ {
		fmt.Fprintf(&sb, "input[i%d] = w%d.output0\n", i, i)
	}
	file, err := config.ParseString(sb.String())
	if err != nil {
		b.Fatal(err)
	}

	for _, sup := range []struct {
		name string
		opts []Option
	}{
		{"recover", nil},
		{"quarantine", []Option{WithQuarantine(5, 10*time.Second)}},
		{"watchdog", []Option{WithWatchdog(time.Second)}},
		{"telemetry", []Option{WithTelemetry(telemetry.NewRegistry())}},
	} {
		b.Run("sup="+sup.name, func(b *testing.B) {
			eng, err := NewEngine(reg, file, sup.opts...)
			if err != nil {
				b.Fatal(err)
			}
			start := time.Unix(1_700_000_000, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Tick(start.Add(time.Duration(i+1) * time.Second)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
