package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/config"
)

// counterSource emits an incrementing scalar on each periodic run.
type counterSource struct {
	out  *OutputPort
	next float64
}

func (m *counterSource) Init(ctx *InitContext) error {
	period, err := ctx.Config().DurationParam("period", time.Second)
	if err != nil {
		return err
	}
	m.out, err = ctx.NewOutput("output0", Origin{Source: "counter", Node: ctx.Config().StringParam("node", "")})
	if err != nil {
		return err
	}
	return ctx.SchedulePeriodic(period)
}

func (m *counterSource) Run(ctx *RunContext) error {
	if ctx.Reason != RunPeriodic {
		return nil
	}
	m.out.Publish(NewScalar(ctx.Now, m.next))
	m.next++
	return nil
}

// recorder stores everything it receives on any input.
type recorder struct {
	mu      sync.Mutex
	samples []Sample
	reasons []RunReason
	flushed bool
}

func (m *recorder) Init(ctx *InitContext) error {
	if len(ctx.Inputs()) == 0 {
		return fmt.Errorf("recorder requires at least one input")
	}
	n, err := ctx.Config().IntParam("trigger", 0)
	if err != nil {
		return err
	}
	if n > 0 {
		return ctx.TriggerOnInputs(n)
	}
	return nil
}

func (m *recorder) Run(ctx *RunContext) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reasons = append(m.reasons, ctx.Reason)
	if ctx.Reason == RunFlush {
		m.flushed = true
	}
	for _, in := range ctx.Inputs() {
		m.samples = append(m.samples, in.Read()...)
	}
	return nil
}

func (m *recorder) all() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// doubler republishes each input scalar doubled; used for chain tests.
type doubler struct {
	out *OutputPort
}

func (m *doubler) Init(ctx *InitContext) error {
	var err error
	m.out, err = ctx.NewOutput("output0", Origin{Source: "doubler"})
	return err
}

func (m *doubler) Run(ctx *RunContext) error {
	for _, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			m.out.Publish(NewScalar(s.Time, 2*s.Scalar()))
		}
	}
	return nil
}

func testRegistry() *Registry {
	reg := NewRegistry()
	reg.Register("counter", func() Module { return &counterSource{} })
	reg.Register("recorder", func() Module { return &recorder{} })
	reg.Register("doubler", func() Module { return &doubler{} })
	return reg
}

func mustParse(t *testing.T, text string) *config.File {
	t.Helper()
	f, err := config.ParseString(text)
	if err != nil {
		t.Fatalf("parse config: %v", err)
	}
	return f
}

func t0() time.Time { return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC) }

func TestEngineStepPipeline(t *testing.T) {
	cfg := mustParse(t, `
[counter]
id = src
period = 1

[doubler]
id = dbl
input[in] = src.output0

[recorder]
id = rec
input[in] = dbl.output0
`)
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := t0()
	for i := 0; i < 5; i++ {
		if err := e.Tick(start.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	mod, ok := e.ModuleOf("rec")
	if !ok {
		t.Fatal("rec instance missing")
	}
	rec, ok := mod.(*recorder)
	if !ok {
		t.Fatalf("rec module has type %T", mod)
	}
	got := rec.all()
	if len(got) != 5 {
		t.Fatalf("recorder received %d samples, want 5", len(got))
	}
	for i, s := range got {
		if want := float64(2 * i); s.Scalar() != want {
			t.Errorf("sample %d = %v, want %v", i, s.Scalar(), want)
		}
	}
}

func TestEngineTopologicalInit(t *testing.T) {
	// Declared out of order: downstream first.
	cfg := mustParse(t, `
[recorder]
id = rec
input[in] = src.output0

[counter]
id = src
period = 1
`)
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := e.Instances()
	if ids[0] != "src" || ids[1] != "rec" {
		t.Errorf("init order = %v, want [src rec]", ids)
	}
}

func TestEngineAtExpansion(t *testing.T) {
	cfg := mustParse(t, `
[counter]
id = a
period = 1

[counter]
id = b
period = 1

[recorder]
id = rec
input[x] = @a
input[x] = @b
`)
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ports := e.InputPortsOf("rec")
	if len(ports) != 2 {
		t.Fatalf("rec has %d input ports, want 2", len(ports))
	}
	if err := e.Tick(t0()); err != nil {
		t.Fatal(err)
	}
	mod, _ := e.ModuleOf("rec")
	if got := len(mod.(*recorder).all()); got != 2 {
		t.Errorf("recorder received %d samples, want 2", got)
	}
}

func TestEngineTriggerThreshold(t *testing.T) {
	cfg := mustParse(t, `
[counter]
id = src
period = 1

[recorder]
id = rec
trigger = 3
input[in] = src.output0
`)
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := t0()
	for i := 0; i < 7; i++ {
		if err := e.Tick(start.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	mod, _ := e.ModuleOf("rec")
	rec := mod.(*recorder)
	// 7 updates with trigger=3 -> runs after the 3rd and 6th.
	runs := 0
	for _, r := range rec.reasons {
		if r == RunInputs {
			runs++
		}
	}
	if runs != 2 {
		t.Errorf("recorder ran %d times, want 2", runs)
	}
	// All 7 samples should still be readable (6 at trigger points, the 7th pending).
	if got := len(rec.all()); got != 6 {
		t.Errorf("recorder consumed %d samples, want 6", got)
	}
}

func TestEngineConstructionErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
		frag string
	}{
		{
			"unknown module",
			"[nosuch]\nid = x\n",
			"unknown module",
		},
		{
			"unknown instance",
			"[recorder]\nid = r\ninput[a] = ghost.output0\n",
			"unknown instance",
		},
		{
			"self reference",
			"[recorder]\nid = r\ninput[a] = r.output0\n",
			"references itself",
		},
		{
			"missing output",
			"[counter]\nid = c\nperiod = 1\n[recorder]\nid = r\ninput[a] = c.nope\n",
			"missing output",
		},
		{
			"cycle",
			"[doubler]\nid = d1\ninput[a] = d2.output0\n[doubler]\nid = d2\ninput[a] = d1.output0\n",
			"dependency cycle",
		},
		{
			"never scheduled",
			"[doubler]\nid = d\n",
			"never run",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := mustParse(t, tt.text)
			_, err := NewEngine(testRegistry(), cfg)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tt.frag)
			}
			if !strings.Contains(err.Error(), tt.frag) {
				t.Errorf("error %q does not contain %q", err, tt.frag)
			}
		})
	}
}

func TestEngineFlushReachesModules(t *testing.T) {
	cfg := mustParse(t, `
[counter]
id = src
period = 1

[recorder]
id = rec
input[in] = src.output0
`)
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Tick(t0()); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(t0().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	mod, _ := e.ModuleOf("rec")
	if !mod.(*recorder).flushed {
		t.Error("recorder did not observe RunFlush")
	}
}

func TestEnginePeriodicCatchUp(t *testing.T) {
	cfg := mustParse(t, `
[counter]
id = src
period = 1

[recorder]
id = rec
input[in] = src.output0
`)
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Jumping 3 seconds in one Tick should fire the periodic module for
	// every elapsed period.
	if err := e.Tick(t0()); err != nil {
		t.Fatal(err)
	}
	if err := e.Tick(t0().Add(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	mod, _ := e.ModuleOf("rec")
	if got := len(mod.(*recorder).all()); got != 4 {
		t.Errorf("recorder received %d samples, want 4 (t=0,1,2,3)", got)
	}
}

func TestEngineErrorHandler(t *testing.T) {
	reg := testRegistry()
	reg.Register("failing", func() Module { return failingModule{} })
	cfg := mustParse(t, "[failing]\nid = f\nperiod = 1\n")
	var gotID string
	var gotErr error
	e, err := NewEngine(reg, cfg, WithErrorHandler(func(id string, err error) {
		gotID, gotErr = id, err
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Tick(t0()); err != nil {
		t.Fatal(err)
	}
	if gotID != "f" || gotErr == nil {
		t.Errorf("error handler got (%q, %v), want (f, non-nil)", gotID, gotErr)
	}
}

type failingModule struct{}

func (failingModule) Init(ctx *InitContext) error { return ctx.SchedulePeriodic(time.Second) }
func (failingModule) Run(*RunContext) error       { return fmt.Errorf("boom") }

func TestEngineModeMixing(t *testing.T) {
	cfg := mustParse(t, "[counter]\nid = src\nperiod = 1\n")
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Tick(t0()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Run(ctx); err == nil || !strings.Contains(err.Error(), "already driven by Tick") {
		t.Errorf("Run after Tick = %v, want mode error", err)
	}
}

func TestEngineRealTimeMode(t *testing.T) {
	cfg := mustParse(t, `
[counter]
id = src
period = 10ms

[recorder]
id = rec
input[in] = src.output0
`)
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := e.Run(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Run = %v, want deadline exceeded", err)
	}
	mod, _ := e.ModuleOf("rec")
	rec := mod.(*recorder)
	if got := len(rec.all()); got < 3 {
		t.Errorf("recorder received %d samples in real-time mode, want >= 3", got)
	}
	if !rec.flushed {
		t.Error("recorder did not observe RunFlush on shutdown")
	}
}

func TestInputPortDropOldest(t *testing.T) {
	cfg := mustParse(t, `
[counter]
id = src
period = 1

[recorder]
id = rec
trigger = 1000000
input[in] = src.output0
`)
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := t0()
	n := defaultQueueCap + 10
	for i := 0; i < n; i++ {
		if err := e.Tick(start.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	port := e.InputPortsOf("rec")[0]
	if got := port.Dropped(); got != 10 {
		t.Errorf("Dropped() = %d, want 10", got)
	}
	if got := port.Total(); got != uint64(n) {
		t.Errorf("Total() = %d, want %d", got, n)
	}
	samples := port.Read()
	if len(samples) != defaultQueueCap {
		t.Fatalf("queued %d, want %d", len(samples), defaultQueueCap)
	}
	// The oldest surviving sample should be number 10.
	if samples[0].Scalar() != 10 {
		t.Errorf("oldest surviving sample = %v, want 10", samples[0].Scalar())
	}
}

func TestInputPortLatest(t *testing.T) {
	cfg := mustParse(t, `
[counter]
id = src
period = 1

[recorder]
id = rec
trigger = 1000000
input[in] = src.output0
`)
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	port := e.InputPortsOf("rec")[0]
	s, ok := port.Latest()
	if !ok || s.Scalar() != 2 {
		t.Errorf("Latest() = %v, %v; want 2, true", s.Scalar(), ok)
	}
	if port.Pending() != 0 {
		t.Error("Latest should clear the queue")
	}
	if _, ok := port.Latest(); ok {
		t.Error("Latest on empty queue should report false")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Register("m", func() Module { return &recorder{} })
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	reg.Register("m", func() Module { return &recorder{} })
}

func TestRegistryNames(t *testing.T) {
	reg := testRegistry()
	names := reg.Names()
	want := []string{"counter", "doubler", "recorder"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestOutputPortIntrospection(t *testing.T) {
	cfg := mustParse(t, "[counter]\nid = src\nperiod = 1\nnode = n1\n[recorder]\nid=r\ninput[a]=src.output0\n")
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := e.OutputPortsOf("src")[0]
	if out.Name() != "output0" {
		t.Errorf("Name() = %q", out.Name())
	}
	if out.Origin().Node != "n1" {
		t.Errorf("Origin().Node = %q, want n1", out.Origin().Node)
	}
	if _, ok := out.Last(); ok {
		t.Error("Last() before any publish should be false")
	}
	if err := e.Tick(t0()); err != nil {
		t.Fatal(err)
	}
	if out.Published() != 1 {
		t.Errorf("Published() = %d, want 1", out.Published())
	}
	if s, ok := out.Last(); !ok || s.Scalar() != 0 {
		t.Errorf("Last() = %v, %v", s, ok)
	}
	ports := e.InputPortsOf("r")
	if ports[0].Origin().Node != "n1" || ports[0].SourceOutput() != "output0" || ports[0].Name() != "a" {
		t.Errorf("input port metadata wrong: %+v", ports[0])
	}
}

func TestOutputEnableDisable(t *testing.T) {
	cfg := mustParse(t, `
[counter]
id = src
period = 1

[recorder]
id = rec
input[in] = src.output0
`)
	e, err := NewEngine(testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := e.OutputPortsOf("src")[0]
	if !out.Enabled() {
		t.Fatal("outputs should start enabled")
	}
	if err := e.Tick(t0()); err != nil {
		t.Fatal(err)
	}
	out.SetEnabled(false)
	for i := 1; i <= 3; i++ {
		if err := e.Tick(t0().Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	out.SetEnabled(true)
	if err := e.Tick(t0().Add(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	mod, _ := e.ModuleOf("rec")
	got := mod.(*recorder).all()
	// Samples at t=0 and t=4 delivered; t=1..3 suppressed.
	if len(got) != 2 {
		t.Fatalf("recorder received %d samples, want 2", len(got))
	}
	if out.Suppressed() != 3 {
		t.Errorf("Suppressed = %d, want 3", out.Suppressed())
	}
	if out.Published() != 2 {
		t.Errorf("Published = %d, want 2", out.Published())
	}
}
