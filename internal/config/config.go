// Package config parses fpt-core configuration files.
//
// The format follows the paper (§3.4): a module instance is declared by the
// module name in square brackets, followed by parameter assignments. The
// instance id is set with `id = instance-id`; inputs are wired with
// `input[name] = instance-id.outputname` (a single output) or
// `input[name] = @instance-id` (all outputs of that instance). Every other
// assignment is kept as an instance parameter for the module's own
// interpretation. Lines beginning with '#' or ';' are comments.
package config

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// InputRef identifies the source of a module input.
type InputRef struct {
	// Name is the input name, i.e. the key inside input[...].
	Name string
	// Instance is the id of the upstream module instance.
	Instance string
	// Output is the upstream output name; empty means "all outputs"
	// (the `@instance` form).
	Output string
	// All reports whether the reference used the `@instance` form.
	All bool
}

// String renders the reference in configuration syntax.
func (r InputRef) String() string {
	if r.All {
		return "@" + r.Instance
	}
	return r.Instance + "." + r.Output
}

// Instance is one module instantiation from a configuration file.
type Instance struct {
	// Module is the module (section) name, e.g. "mavgvec".
	Module string
	// ID is the instance id; defaults to the module name when the file
	// contains a single unnamed instance of the module.
	ID string
	// Params holds all assignments other than id and input[...].
	Params map[string]string
	// Inputs holds the declared input wiring, in file order.
	Inputs []InputRef
	// Line is the 1-based line number of the section header,
	// for error reporting.
	Line int
}

// Param returns the named parameter and whether it was present.
func (in *Instance) Param(key string) (string, bool) {
	v, ok := in.Params[key]
	return v, ok
}

// StringParam returns the named parameter or def when absent.
func (in *Instance) StringParam(key, def string) string {
	if v, ok := in.Params[key]; ok {
		return v
	}
	return def
}

// IntParam returns the named parameter parsed as an int, or def when absent.
func (in *Instance) IntParam(key string, def int) (int, error) {
	v, ok := in.Params[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil {
		return 0, fmt.Errorf("config: instance %q: parameter %q: %w", in.ID, key, err)
	}
	return n, nil
}

// FloatParam returns the named parameter parsed as a float64, or def when absent.
func (in *Instance) FloatParam(key string, def float64) (float64, error) {
	v, ok := in.Params[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil {
		return 0, fmt.Errorf("config: instance %q: parameter %q: %w", in.ID, key, err)
	}
	return f, nil
}

// BoolParam returns the named parameter parsed as a bool, or def when absent.
func (in *Instance) BoolParam(key string, def bool) (bool, error) {
	v, ok := in.Params[key]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(strings.TrimSpace(v))
	if err != nil {
		return false, fmt.Errorf("config: instance %q: parameter %q: %w", in.ID, key, err)
	}
	return b, nil
}

// DurationParam returns the named parameter parsed as a time.Duration
// (e.g. "500ms", "1s"), or def when absent. A bare number is seconds.
func (in *Instance) DurationParam(key string, def time.Duration) (time.Duration, error) {
	v, ok := in.Params[key]
	if !ok {
		return def, nil
	}
	v = strings.TrimSpace(v)
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		return time.Duration(secs * float64(time.Second)), nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("config: instance %q: parameter %q: %w", in.ID, key, err)
	}
	return d, nil
}

// ResilienceParams are the collection-plane fault-tolerance knobs shared by
// the rpc-mode data-collection modules (sadc, hadoop_log). A zero value
// means "not set": the module falls back to its environment-level defaults.
type ResilienceParams struct {
	// ReconnectBackoff is the initial delay between reconnect attempts to
	// a dead collection daemon (doubles per failure, jittered).
	ReconnectBackoff time.Duration
	// CallTimeout is the per-RPC deadline.
	CallTimeout time.Duration
	// BreakerThreshold is the number of consecutive transport failures
	// after which the node's circuit breaker opens.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before allowing a
	// half-open probe.
	BreakerCooldown time.Duration
	// SyncDeadline is the straggler deadline for cross-node timestamp
	// synchronization: a timestamp older than this is published from the
	// nodes that did report instead of waiting forever (0 = strict §3.7
	// behaviour: wait until every node reveals the timestamp).
	SyncDeadline time.Duration
	// SyncQuorum is the minimum number of nodes that must have reported a
	// timestamp for a degraded (partial) publish (0 = all nodes).
	SyncQuorum int
	// SyncQuorumAuto is set by `sync_quorum = auto`: the effective quorum
	// is derived at runtime from the observed open-breaker fraction
	// (adaptive controller) instead of a static count.
	SyncQuorumAuto bool
}

// ResilienceParams parses the well-known fault-tolerance parameters
// (reconnect_backoff, call_timeout, breaker_threshold, breaker_cooldown,
// sync_deadline, sync_quorum) from the instance. Absent parameters stay
// zero.
func (in *Instance) ResilienceParams() (ResilienceParams, error) {
	var p ResilienceParams
	var err error
	if p.ReconnectBackoff, err = in.DurationParam("reconnect_backoff", 0); err != nil {
		return p, err
	}
	if p.CallTimeout, err = in.DurationParam("call_timeout", 0); err != nil {
		return p, err
	}
	if p.BreakerThreshold, err = in.IntParam("breaker_threshold", 0); err != nil {
		return p, err
	}
	if p.BreakerCooldown, err = in.DurationParam("breaker_cooldown", 0); err != nil {
		return p, err
	}
	if p.SyncDeadline, err = in.DurationParam("sync_deadline", 0); err != nil {
		return p, err
	}
	if in.StringParam("sync_quorum", "") == "auto" {
		p.SyncQuorumAuto = true
	} else if p.SyncQuorum, err = in.IntParam("sync_quorum", 0); err != nil {
		return p, err
	}
	if p.BreakerThreshold < 0 {
		return p, fmt.Errorf("config: instance %q: breaker_threshold must be >= 0", in.ID)
	}
	if p.SyncQuorum < 0 {
		return p, fmt.Errorf("config: instance %q: sync_quorum must be >= 0", in.ID)
	}
	return p, nil
}

// SupervisorParams are the per-instance supervised-runtime knobs read by
// the engine core (not by the module itself). Zero values mean "not set":
// the engine falls back to its option-level defaults — except
// QuarantineThreshold, where -1 means unset so an explicit 0 can disable
// quarantine for one instance while the engine default enables it.
type SupervisorParams struct {
	// RunTimeout is the watchdog deadline for one Run call (0 = engine
	// default; the engine's default of 0 disables the watchdog).
	RunTimeout time.Duration
	// QuarantineThreshold is the number of consecutive failures (error,
	// panic, or timeout) after which the instance is quarantined
	// (-1 = engine default, 0 = disabled for this instance).
	QuarantineThreshold int
	// QuarantineCooldown is how long a quarantined instance waits before
	// its half-open re-probe (0 = engine default).
	QuarantineCooldown time.Duration
	// Degrade is the gap-fill policy for a quarantined instance's
	// outputs: "skip", "hold", "zero", or "auto" ("" = engine default).
	Degrade string
}

// SupervisorParams parses the supervised-runtime parameters (run_timeout,
// quarantine_threshold, quarantine_cooldown, degrade) from the instance.
func (in *Instance) SupervisorParams() (SupervisorParams, error) {
	p := SupervisorParams{QuarantineThreshold: -1}
	var err error
	if p.RunTimeout, err = in.DurationParam("run_timeout", 0); err != nil {
		return p, err
	}
	if p.QuarantineThreshold, err = in.IntParam("quarantine_threshold", -1); err != nil {
		return p, err
	}
	if p.QuarantineCooldown, err = in.DurationParam("quarantine_cooldown", 0); err != nil {
		return p, err
	}
	p.Degrade = in.StringParam("degrade", "")
	if p.RunTimeout < 0 {
		return p, fmt.Errorf("config: instance %q: run_timeout must be >= 0", in.ID)
	}
	if p.QuarantineThreshold < -1 {
		return p, fmt.Errorf("config: instance %q: quarantine_threshold must be >= 0", in.ID)
	}
	if p.QuarantineCooldown < 0 {
		return p, fmt.Errorf("config: instance %q: quarantine_cooldown must be >= 0", in.ID)
	}
	switch p.Degrade {
	case "", "skip", "hold", "zero", "auto":
	default:
		return p, fmt.Errorf("config: instance %q: degrade must be skip, hold, zero, or auto, got %q", in.ID, p.Degrade)
	}
	return p, nil
}

// FanoutParam parses the `fanout` parameter shared by the multi-node
// data-collection modules: the maximum number of per-node fetches issued
// concurrently per collection iteration. 0 (absent) selects the module's
// default of min(16, number of nodes); 1 forces the serial per-node loop.
func (in *Instance) FanoutParam() (int, error) {
	n, err := in.IntParam("fanout", 0)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("config: instance %q: fanout must be >= 0", in.ID)
	}
	return n, nil
}

// ShardParams are the sharded-collection knobs shared by the multi-node
// data-collection modules (sadc, hadoop_log): the node set is partitioned
// into `shards` contiguous node-index ranges, each swept by an independent
// worker with its own `shard_fanout` concurrency budget, and the shard
// partials are merged in node-index order so output is identical to an
// unsharded sweep. Zero values mean "not set": the module falls back to its
// environment-level defaults (and ultimately to a single shard).
type ShardParams struct {
	// Shards is the number of independent shard workers (0 = environment
	// default, 1 = the unsharded sweep).
	Shards int
	// ShardFanout is each shard's concurrent-fetch budget (0 = the fanout
	// parameter if set, else min(16, shard size)).
	ShardFanout int
}

// ShardParams parses the sharding parameters (shards, shard_fanout) from
// the instance. Absent parameters stay zero.
func (in *Instance) ShardParams() (ShardParams, error) {
	var p ShardParams
	var err error
	if p.Shards, err = in.IntParam("shards", 0); err != nil {
		return p, err
	}
	if p.ShardFanout, err = in.IntParam("shard_fanout", 0); err != nil {
		return p, err
	}
	if p.Shards < 0 {
		return p, fmt.Errorf("config: instance %q: shards must be >= 0", in.ID)
	}
	if p.ShardFanout < 0 {
		return p, fmt.Errorf("config: instance %q: shard_fanout must be >= 0", in.ID)
	}
	return p, nil
}

// FloatListParam parses a comma-separated list of floats, or returns def
// when the parameter is absent.
func (in *Instance) FloatListParam(key string, def []float64) ([]float64, error) {
	v, ok := in.Params[key]
	if !ok {
		return def, nil
	}
	parts := strings.Split(v, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("config: instance %q: parameter %q: %w", in.ID, key, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// File is a parsed fpt-core configuration file.
type File struct {
	// Instances lists the module instances in file order.
	Instances []*Instance
	byID      map[string]*Instance
}

// Instance returns the instance with the given id, if present.
func (f *File) Instance(id string) (*Instance, bool) {
	in, ok := f.byID[id]
	return in, ok
}

// ParseFile reads and parses the configuration file at path.
func ParseFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer func() {
		_ = fh.Close() // read-only; close error carries no information
	}()
	f, err := Parse(fh)
	if err != nil {
		return nil, fmt.Errorf("config: %s: %w", path, err)
	}
	return f, nil
}

// ParseString parses configuration text.
func ParseString(text string) (*File, error) {
	return Parse(strings.NewReader(text))
}

// Parse parses a configuration file from r.
func Parse(r io.Reader) (*File, error) {
	f := &File{byID: make(map[string]*Instance)}
	var cur *Instance
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("line %d: unterminated section header %q", lineNo, line)
			}
			name := strings.TrimSpace(line[1 : len(line)-1])
			if name == "" {
				return nil, fmt.Errorf("line %d: empty section header", lineNo)
			}
			cur = &Instance{
				Module: name,
				Params: make(map[string]string),
				Line:   lineNo,
			}
			f.Instances = append(f.Instances, cur)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: assignment %q outside any section", lineNo, line)
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("line %d: expected key = value, got %q", lineNo, line)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch {
		case key == "id":
			if cur.ID != "" {
				return nil, fmt.Errorf("line %d: duplicate id for instance %q", lineNo, cur.ID)
			}
			cur.ID = val
		case strings.HasPrefix(key, "input[") && strings.HasSuffix(key, "]"):
			inputName := strings.TrimSpace(key[len("input[") : len(key)-1])
			if inputName == "" {
				return nil, fmt.Errorf("line %d: empty input name", lineNo)
			}
			ref, err := parseInputRef(inputName, val)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			cur.Inputs = append(cur.Inputs, ref)
		case key == "":
			return nil, fmt.Errorf("line %d: empty parameter name", lineNo)
		default:
			if _, dup := cur.Params[key]; dup {
				return nil, fmt.Errorf("line %d: duplicate parameter %q", lineNo, key)
			}
			cur.Params[key] = val
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading configuration: %w", err)
	}

	// Assign default ids and check uniqueness.
	for _, in := range f.Instances {
		if in.ID == "" {
			in.ID = in.Module
		}
		if _, dup := f.byID[in.ID]; dup {
			return nil, fmt.Errorf("line %d: duplicate instance id %q", in.Line, in.ID)
		}
		f.byID[in.ID] = in
	}
	return f, nil
}

func parseInputRef(inputName, val string) (InputRef, error) {
	if val == "" {
		return InputRef{}, fmt.Errorf("input[%s]: empty source", inputName)
	}
	if strings.HasPrefix(val, "@") {
		inst := strings.TrimSpace(val[1:])
		if inst == "" {
			return InputRef{}, fmt.Errorf("input[%s]: empty instance after @", inputName)
		}
		return InputRef{Name: inputName, Instance: inst, All: true}, nil
	}
	inst, out, ok := strings.Cut(val, ".")
	if !ok {
		return InputRef{}, fmt.Errorf("input[%s]: source %q must be instance.output or @instance", inputName, val)
	}
	inst = strings.TrimSpace(inst)
	out = strings.TrimSpace(out)
	if inst == "" || out == "" {
		return InputRef{}, fmt.Errorf("input[%s]: malformed source %q", inputName, val)
	}
	return InputRef{Name: inputName, Instance: inst, Output: out}, nil
}
