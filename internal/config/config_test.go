package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// paperConfig is the Figure 3 snippet from the paper, lightly reflowed.
const paperConfig = `
[ibuffer]
id = buf1
input[input] = onenn0.output0
size = 10

[ibuffer]
id = buf2
input[input] = onenn1.output0
size = 10

[analysis_bb]
id = analysis
threshold = 5
window = 15
slide = 5
input[l0] = @buf1
input[l1] = @buf2

[print]
id = BlackBoxAlarm
input[a] = @analysis
`

func TestParsePaperSnippet(t *testing.T) {
	f, err := ParseString(paperConfig)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(f.Instances) != 4 {
		t.Fatalf("got %d instances, want 4", len(f.Instances))
	}

	buf1, ok := f.Instance("buf1")
	if !ok {
		t.Fatal("instance buf1 missing")
	}
	if buf1.Module != "ibuffer" {
		t.Errorf("buf1.Module = %q, want ibuffer", buf1.Module)
	}
	size, err := buf1.IntParam("size", 0)
	if err != nil || size != 10 {
		t.Errorf("buf1 size = %d (%v), want 10", size, err)
	}
	if len(buf1.Inputs) != 1 {
		t.Fatalf("buf1 inputs = %v, want 1", buf1.Inputs)
	}
	in := buf1.Inputs[0]
	if in.Name != "input" || in.Instance != "onenn0" || in.Output != "output0" || in.All {
		t.Errorf("buf1 input ref = %+v", in)
	}

	an, ok := f.Instance("analysis")
	if !ok {
		t.Fatal("instance analysis missing")
	}
	if got := len(an.Inputs); got != 2 {
		t.Fatalf("analysis inputs = %d, want 2", got)
	}
	if !an.Inputs[0].All || an.Inputs[0].Instance != "buf1" {
		t.Errorf("analysis input[l0] = %+v, want @buf1", an.Inputs[0])
	}
	thr, err := an.FloatParam("threshold", 0)
	if err != nil || thr != 5 {
		t.Errorf("threshold = %v (%v), want 5", thr, err)
	}
}

func TestParseDefaultID(t *testing.T) {
	f, err := ParseString("[sadc]\nperiod = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Instance("sadc"); !ok {
		t.Error("instance without id should default to module name")
	}
}

func TestParseComments(t *testing.T) {
	f, err := ParseString("# leading comment\n[m]\n; another\nx = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if v := f.Instances[0].StringParam("x", ""); v != "1" {
		t.Errorf("x = %q, want 1", v)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
		frag string
	}{
		{"assignment outside section", "x = 1\n", "outside any section"},
		{"unterminated header", "[m\n", "unterminated"},
		{"empty header", "[]\n", "empty section"},
		{"missing equals", "[m]\nnope\n", "key = value"},
		{"duplicate id", "[a]\nid = x\n[b]\nid = x\n", "duplicate instance id"},
		{"duplicate param", "[m]\nk = 1\nk = 2\n", "duplicate parameter"},
		{"duplicate id in section", "[m]\nid = a\nid = b\n", "duplicate id"},
		{"empty input source", "[m]\ninput[x] =\n", "empty source"},
		{"bare instance input", "[m]\ninput[x] = foo\n", "must be instance.output"},
		{"empty input name", "[m]\ninput[] = a.b\n", "empty input name"},
		{"empty at-instance", "[m]\ninput[x] = @\n", "empty instance"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseString(tt.text)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tt.frag)
			}
			if !strings.Contains(err.Error(), tt.frag) {
				t.Errorf("error %q does not contain %q", err, tt.frag)
			}
		})
	}
}

func TestTypedParams(t *testing.T) {
	f, err := ParseString(`[m]
i = 42
f = 2.5
b = true
d = 1500ms
secs = 3
list = 1, 2.5,3 ,
missing_is_default = yes
`)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Instances[0]

	if v, err := m.IntParam("i", 0); err != nil || v != 42 {
		t.Errorf("IntParam = %d (%v)", v, err)
	}
	if v, err := m.IntParam("absent", 7); err != nil || v != 7 {
		t.Errorf("IntParam default = %d (%v)", v, err)
	}
	if _, err := m.IntParam("f", 0); err == nil {
		t.Error("IntParam on float should error")
	}
	if v, err := m.FloatParam("f", 0); err != nil || v != 2.5 {
		t.Errorf("FloatParam = %v (%v)", v, err)
	}
	if v, err := m.BoolParam("b", false); err != nil || !v {
		t.Errorf("BoolParam = %v (%v)", v, err)
	}
	if _, err := m.BoolParam("d", false); err == nil {
		t.Error("BoolParam on junk should error")
	}
	if v, err := m.DurationParam("d", 0); err != nil || v != 1500*time.Millisecond {
		t.Errorf("DurationParam = %v (%v)", v, err)
	}
	if v, err := m.DurationParam("secs", 0); err != nil || v != 3*time.Second {
		t.Errorf("DurationParam bare seconds = %v (%v)", v, err)
	}
	if v, err := m.DurationParam("absent", time.Minute); err != nil || v != time.Minute {
		t.Errorf("DurationParam default = %v (%v)", v, err)
	}
	list, err := m.FloatListParam("list", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2.5, 3}
	if len(list) != len(want) {
		t.Fatalf("FloatListParam = %v, want %v", list, want)
	}
	for i := range want {
		if list[i] != want[i] {
			t.Errorf("FloatListParam[%d] = %v, want %v", i, list[i], want[i])
		}
	}
	if _, err := m.FloatListParam("missing_is_default", nil); err == nil {
		t.Error("FloatListParam on junk should error")
	}
}

func TestParamLookup(t *testing.T) {
	f, err := ParseString("[m]\nx = hello world\n")
	if err != nil {
		t.Fatal(err)
	}
	m := f.Instances[0]
	if v, ok := m.Param("x"); !ok || v != "hello world" {
		t.Errorf("Param(x) = %q, %v", v, ok)
	}
	if _, ok := m.Param("y"); ok {
		t.Error("Param(y) should be absent")
	}
	if v := m.StringParam("y", "def"); v != "def" {
		t.Errorf("StringParam default = %q", v)
	}
}

func TestInputRefString(t *testing.T) {
	r1 := InputRef{Name: "a", Instance: "x", Output: "out0"}
	if r1.String() != "x.out0" {
		t.Errorf("String() = %q", r1.String())
	}
	r2 := InputRef{Name: "a", Instance: "x", All: true}
	if r2.String() != "@x" {
		t.Errorf("String() = %q", r2.String())
	}
}

func TestParseFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fpt.conf")
	if err := os.WriteFile(path, []byte(paperConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Instances) != 4 {
		t.Errorf("instances = %d, want 4", len(f.Instances))
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.conf")); err == nil {
		t.Error("ParseFile on missing file should error")
	}
}

func TestInstanceOrderPreserved(t *testing.T) {
	f, err := ParseString("[b]\nid=one\n[a]\nid=two\n[c]\nid=three\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"one", "two", "three"}
	for i, in := range f.Instances {
		if in.ID != want[i] {
			t.Errorf("instance %d = %q, want %q", i, in.ID, want[i])
		}
	}
}

func TestResilienceParams(t *testing.T) {
	f, err := ParseString(`
[hadoop_log]
id = hl
reconnect_backoff = 250ms
call_timeout = 2
breaker_threshold = 4
breaker_cooldown = 5s
sync_deadline = 3
sync_quorum = 2
`)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := f.Instance("hl")
	p, err := in.ResilienceParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.ReconnectBackoff != 250*time.Millisecond {
		t.Errorf("reconnect_backoff = %v", p.ReconnectBackoff)
	}
	if p.CallTimeout != 2*time.Second {
		t.Errorf("call_timeout = %v", p.CallTimeout)
	}
	if p.BreakerThreshold != 4 {
		t.Errorf("breaker_threshold = %d", p.BreakerThreshold)
	}
	if p.BreakerCooldown != 5*time.Second {
		t.Errorf("breaker_cooldown = %v", p.BreakerCooldown)
	}
	if p.SyncDeadline != 3*time.Second {
		t.Errorf("sync_deadline = %v", p.SyncDeadline)
	}
	if p.SyncQuorum != 2 {
		t.Errorf("sync_quorum = %d", p.SyncQuorum)
	}
}

func TestResilienceParamsDefaultsToZero(t *testing.T) {
	f, err := ParseString("[sadc]\nid = s\nnode = n1\n")
	if err != nil {
		t.Fatal(err)
	}
	in, _ := f.Instance("s")
	p, err := in.ResilienceParams()
	if err != nil {
		t.Fatal(err)
	}
	if p != (ResilienceParams{}) {
		t.Errorf("absent params should parse to the zero value, got %+v", p)
	}
}

func TestResilienceParamsSyncQuorumAuto(t *testing.T) {
	f, err := ParseString("[hadoop_log]\nid = hl\nsync_quorum = auto\n")
	if err != nil {
		t.Fatal(err)
	}
	in, _ := f.Instance("hl")
	p, err := in.ResilienceParams()
	if err != nil {
		t.Fatal(err)
	}
	if !p.SyncQuorumAuto || p.SyncQuorum != 0 {
		t.Errorf("sync_quorum = auto parsed to %+v, want SyncQuorumAuto with no static quorum", p)
	}
}

func TestSupervisorParamsDegradeAuto(t *testing.T) {
	f, err := ParseString("[sadc]\nid = s\nnode = n1\ndegrade = auto\n")
	if err != nil {
		t.Fatal(err)
	}
	in, _ := f.Instance("s")
	p, err := in.SupervisorParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.Degrade != "auto" {
		t.Errorf("degrade = %q, want auto", p.Degrade)
	}
	bad, err := ParseString("[sadc]\nid = s\ndegrade = sometimes\n")
	if err != nil {
		t.Fatal(err)
	}
	in, _ = bad.Instance("s")
	if _, err := in.SupervisorParams(); err == nil {
		t.Error("degrade = sometimes should fail to parse")
	}
}

func TestResilienceParamsRejectsBadValues(t *testing.T) {
	for _, bad := range []string{
		"sync_quorum = -1",
		"breaker_threshold = -2",
		"sync_deadline = never",
		"call_timeout = soon",
		"breaker_threshold = many",
	} {
		f, err := ParseString("[sadc]\nid = s\n" + bad + "\n")
		if err != nil {
			t.Fatal(err)
		}
		in, _ := f.Instance("s")
		if _, err := in.ResilienceParams(); err == nil {
			t.Errorf("%q should fail to parse", bad)
		}
	}
}
