package modules

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/rpc"
)

// TestHadoopLogModuleSurvivesDaemonDeath kills one node's hadoop-log-rpcd
// mid-run: collection from the remaining nodes must continue (the module
// reports the error but keeps polling), and the synchronization rule means
// no further vectors are published for the missing timestamps — exactly the
// §3.7 semantics.
func TestHadoopLogModuleSurvivesDaemonDeath(t *testing.T) {
	const slaves = 3
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, 55))
	if err != nil {
		t.Fatal(err)
	}
	var servers []*rpc.Server
	var addrs, names []string
	for _, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceHadoopLog)
		RegisterHadoopLogServer(srv, n.TaskTrackerLog(), n.DataNodeLog(), c.Now)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr.String())
		names = append(names, n.Name)
	}
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()

	env := NewEnv()
	env.Clock = c.Now
	cfgText := fmt.Sprintf(`
[hadoop_log]
id = hl
kind = tasktracker
mode = rpc
nodes = %s
addrs = %s
period = 1

[print]
id = p
only_nonzero = false
input[x] = @hl
`, strings.Join(names, ","), strings.Join(addrs, ","))
	cfg, err := config.ParseString(cfgText)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var errCount int
	e, err := core.NewEngine(NewRegistry(env), cfg,
		core.WithErrorHandler(func(id string, err error) {
			mu.Lock()
			errCount++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}

	step := func(n int) {
		for i := 0; i < n; i++ {
			c.Tick()
			if err := e.Tick(c.Now()); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(30)
	outs := e.OutputPortsOf("hl")
	publishedBefore := outs[0].Published()
	if publishedBefore == 0 {
		t.Fatal("nothing collected before the failure")
	}

	// Kill node 1's daemon.
	if err := servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	step(30)

	mu.Lock()
	gotErrs := errCount
	mu.Unlock()
	if gotErrs == 0 {
		t.Error("daemon death should surface through the error handler")
	}
	// No new synchronized vectors can be emitted without node 1's data,
	// but the engine must still be alive and ticking (no panic/deadlock),
	// and the healthy nodes' parsers are still being polled: verify by
	// reviving expectations — outputs did not grow.
	if got := outs[0].Published(); got < publishedBefore {
		t.Errorf("published count went backwards: %d -> %d", publishedBefore, got)
	}
}

// TestSadcModuleSurvivesDaemonDeath: a dead sadc daemon routes errors to
// the error handler; other pipelines keep producing.
func TestSadcModuleSurvivesDaemonDeath(t *testing.T) {
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, 56))
	if err != nil {
		t.Fatal(err)
	}
	var servers []*rpc.Server
	var addrs []string
	for _, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceSadc)
		RegisterSadcServer(srv, n)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr.String())
	}
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()

	env := NewEnv()
	env.Clock = c.Now
	cfg, err := config.ParseString(fmt.Sprintf(`
[sadc]
id = s0
node = slave01
mode = rpc
addr = %s
period = 1

[sadc]
id = s1
node = slave02
mode = rpc
addr = %s
period = 1

[print]
id = p
only_nonzero = false
input[a] = s0.output0
input[b] = s1.output0
`, addrs[0], addrs[1]))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	errs := 0
	e, err := core.NewEngine(NewRegistry(env), cfg,
		core.WithErrorHandler(func(string, error) { mu.Lock(); errs++; mu.Unlock() }))
	if err != nil {
		t.Fatal(err)
	}
	step := func(n int) {
		for i := 0; i < n; i++ {
			c.Tick()
			if err := e.Tick(c.Now()); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(5)
	if err := servers[0].Close(); err != nil {
		t.Fatal(err)
	}
	s1Before := e.OutputPortsOf("s1")[0].Published()
	step(5)
	mu.Lock()
	gotErrs := errs
	mu.Unlock()
	if gotErrs == 0 {
		t.Error("dead sadc daemon should surface errors")
	}
	if got := e.OutputPortsOf("s1")[0].Published(); got <= s1Before {
		t.Errorf("healthy node's collection stalled: %d -> %d", s1Before, got)
	}
}
