package modules

import (
	"fmt"
	"math"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/sadc"
)

// ruleModule is a static-threshold alarm — the Table-1 status quo
// (Nagios/Ganglia-style rule-based monitoring) included as a baseline: it
// fires when a chosen metric leaves fixed bounds, with none of the
// peer-comparison machinery. The workload-change experiment
// (eval.WorkloadChange, EXPERIMENTS.md) quantifies why ASDF replaces this
// with peer comparison.
//
// Parameters:
//
//	metric = <sadc node metric name> | <index>   (required)
//	max    = <value>   (alarm when metric > max; optional)
//	min    = <value>   (alarm when metric < min; optional)
//
// At least one bound is required. Inputs carry metric vectors (e.g.
// sadc output0); outputs alarm0..alarmN-1 mirror the inputs with samples
// [flag, value].
type ruleModule struct {
	metricIdx int
	minSet    bool
	maxSet    bool
	minVal    float64
	maxVal    float64
	outs      []*core.OutputPort
}

func (m *ruleModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	metric := cfg.StringParam("metric", "")
	if metric == "" {
		return errMissingParam("rule", "metric")
	}
	if idxs, err := sadc.NodeMetricIndexes([]string{metric}); err == nil {
		m.metricIdx = idxs[0]
	} else if n, err2 := cfg.IntParam("metric", -1); err2 == nil && n >= 0 {
		m.metricIdx = n
	} else {
		return fmt.Errorf("rule: metric %q is neither a sadc node metric nor an index", metric)
	}

	var err error
	if m.maxVal, err = cfg.FloatParam("max", math.NaN()); err != nil {
		return err
	}
	if m.minVal, err = cfg.FloatParam("min", math.NaN()); err != nil {
		return err
	}
	m.maxSet = !math.IsNaN(m.maxVal)
	m.minSet = !math.IsNaN(m.minVal)
	if !m.maxSet && !m.minSet {
		return fmt.Errorf("rule: need at least one of min/max")
	}

	inputs := ctx.Inputs()
	if len(inputs) == 0 {
		return fmt.Errorf("rule: requires at least one input")
	}
	for i, in := range inputs {
		origin := in.Origin()
		origin.Source = "rule"
		origin.Metric = "alarm"
		out, err := ctx.NewOutput(fmt.Sprintf("alarm%d", i), origin)
		if err != nil {
			return err
		}
		m.outs = append(m.outs, out)
	}
	return nil
}

func (m *ruleModule) Run(ctx *core.RunContext) error {
	for i, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			if m.metricIdx >= len(s.Values) {
				return fmt.Errorf("rule: metric index %d out of range for %d-dim input", m.metricIdx, len(s.Values))
			}
			v := s.Values[m.metricIdx]
			flag := 0.0
			if (m.maxSet && v > m.maxVal) || (m.minSet && v < m.minVal) {
				flag = 1
			}
			m.outs[i].Publish(core.Sample{Time: s.Time, Values: []float64{flag, v}})
		}
	}
	return nil
}

var _ core.Module = (*ruleModule)(nil)
