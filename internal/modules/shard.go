package modules

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// The sharded collection plane: a multi-node collector partitions its node
// set into contiguous node-index ranges, one per shard, and sweeps each
// range with an independent worker pool. Shards only write disjoint slices
// of the module's per-node scratch, and the module's merge stage is the
// same serial node-index loop as the unsharded path, so output is
// byte-identical to a single-shard sweep by construction — the shards move
// concurrency and failure accounting, not semantics. One shard full of
// dead nodes burns its own fanout budget on timeouts while the other
// shards' sweeps proceed at full speed.

// shardRange is one shard's half-open node-index range [start, end).
type shardRange struct{ start, end int }

// planShards partitions n node indexes into at most count contiguous
// ranges of near-equal size (sizes differ by at most one). count is capped
// at n so no shard is empty, and floored at 1.
func planShards(n, count int) []shardRange {
	if n <= 0 {
		return nil
	}
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	ranges := make([]shardRange, count)
	for s := 0; s < count; s++ {
		ranges[s] = shardRange{start: s * n / count, end: (s + 1) * n / count}
	}
	return ranges
}

// shardSweeper runs a collection module's per-tick sweep across its
// configured shards and keeps the per-shard accounting behind the status
// surface and /metrics. A single-shard sweeper degenerates to the plain
// fanOut call (no extra goroutine, no merge wait), so shards = 1 is the
// pre-sharding collection path exactly.
type shardSweeper struct {
	ranges []shardRange
	widths []int // per-shard fanOut width

	// Telemetry handles are registered only for >= 2 shards, keeping the
	// single-shard exposition surface unchanged; all are nil-safe.
	mSweep     []*telemetry.Histogram // per shard
	mErrs      []*telemetry.Counter   // per shard
	mMergeWait *telemetry.Histogram

	doneAt []time.Duration // per-shard completion offsets, one sweep's scratch

	mu    sync.Mutex
	stats []ShardStatus // cumulative; Shard/Nodes/Fanout fixed at build time
}

// newShardSweeper resolves the sharding knobs for one collection instance
// over n nodes. Instance parameters (shards, shard_fanout) override the
// environment defaults; an unset shard_fanout falls back to the instance's
// fanout parameter, so shards = 1 reproduces the unsharded worker pool.
func newShardSweeper(env *Env, id string, n int, p config.ShardParams, fanout int) *shardSweeper {
	shards := p.Shards
	if shards == 0 {
		shards = env.DefaultShards
	}
	shardFanout := p.ShardFanout
	if shardFanout == 0 {
		shardFanout = env.DefaultShardFanout
	}
	if shardFanout == 0 {
		shardFanout = fanout
	}
	s := &shardSweeper{ranges: planShards(n, shards)}
	s.widths = make([]int, len(s.ranges))
	s.doneAt = make([]time.Duration, len(s.ranges))
	s.stats = make([]ShardStatus, len(s.ranges))
	for i, r := range s.ranges {
		s.widths[i] = resolveFanout(shardFanout, r.end-r.start)
		s.stats[i] = ShardStatus{Shard: i, Nodes: r.end - r.start, Fanout: s.widths[i]}
	}
	if reg := env.Metrics; reg != nil && len(s.ranges) >= 2 {
		il := telemetry.L("instance", id)
		s.mSweep = make([]*telemetry.Histogram, len(s.ranges))
		s.mErrs = make([]*telemetry.Counter, len(s.ranges))
		for i := range s.ranges {
			sl := telemetry.L("shard", strconv.Itoa(i))
			s.mSweep[i] = reg.Histogram("asdf_collect_shard_sweep_seconds",
				"Wall time of one shard's collection sweep.", telemetry.DefBuckets, il, sl)
			s.mErrs[i] = reg.Counter("asdf_collect_shard_errors_total",
				"Failed per-node fetches, by shard.", il, sl)
		}
		s.mMergeWait = reg.Histogram("asdf_collect_shard_merge_wait_seconds",
			"Gap between the first and last shard finishing a sweep — time the merge stage spent blocked on the slowest shard.",
			telemetry.DefBuckets, il)
	}
	return s
}

// sweep invokes fetch(i) for every node index, partitioned across the
// configured shards, and returns once all shards have completed. fetch's
// error return feeds per-shard failure accounting only; the module still
// inspects its own scratch for the merge. Callers store results by node
// index, exactly as with fanOut, so the serial merge that follows is
// order-independent of shard scheduling.
func (s *shardSweeper) sweep(fetch func(int) error) {
	if len(s.ranges) == 0 {
		return
	}
	start := time.Now()
	if len(s.ranges) == 1 {
		r := s.ranges[0]
		errs := s.sweepRange(r, s.widths[0], fetch)
		s.record(0, time.Since(start), errs)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(s.ranges))
	for si := range s.ranges {
		go func(si int) {
			defer wg.Done()
			errs := s.sweepRange(s.ranges[si], s.widths[si], fetch)
			elapsed := time.Since(start)
			s.doneAt[si] = elapsed // distinct index per shard; read after Wait
			s.record(si, elapsed, errs)
		}(si)
	}
	wg.Wait()
	minDone, maxDone := s.doneAt[0], s.doneAt[0]
	for _, d := range s.doneAt[1:] {
		if d < minDone {
			minDone = d
		}
		if d > maxDone {
			maxDone = d
		}
	}
	s.mMergeWait.Observe((maxDone - minDone).Seconds())
}

// sweepRange runs one shard's bounded worker pool and reports how many
// fetches failed.
func (s *shardSweeper) sweepRange(r shardRange, width int, fetch func(int) error) int {
	var errs atomic.Int64
	fanOut(r.end-r.start, width, func(i int) {
		if fetch(r.start+i) != nil {
			errs.Add(1)
		}
	})
	return int(errs.Load())
}

func (s *shardSweeper) record(si int, elapsed time.Duration, errs int) {
	if s.mSweep != nil {
		s.mSweep[si].Observe(elapsed.Seconds())
	}
	if errs > 0 && s.mErrs != nil {
		s.mErrs[si].Add(uint64(errs))
	}
	s.mu.Lock()
	st := &s.stats[si]
	st.Sweeps++
	st.Errors += uint64(errs)
	st.LastErrors = errs
	st.LastSweepSeconds = elapsed.Seconds()
	s.mu.Unlock()
}

// statuses snapshots the per-shard accounting, or nil for a single shard —
// the status surface only grows rows once sharding is actually in play.
func (s *shardSweeper) statuses() []ShardStatus {
	if len(s.ranges) < 2 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ShardStatus, len(s.stats))
	copy(out, s.stats)
	return out
}

// statusesWithBreakers augments the sweep accounting with each shard's
// count of open per-node circuit breakers (rpc mode; clients parallel to
// the module's node list, nil in local mode).
func (s *shardSweeper) statusesWithBreakers(clients []rpc.Caller) []ShardStatus {
	sts := s.statuses()
	if sts == nil || clients == nil {
		return sts
	}
	for i := range sts {
		for _, c := range clients[s.ranges[i].start:s.ranges[i].end] {
			if h, ok := sourceHealth(c); ok && h.State == rpc.BreakerOpen {
				sts[i].OpenBreakers++
			}
		}
	}
	return sts
}
