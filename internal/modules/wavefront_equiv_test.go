package modules

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/sadc"
)

// inlineKNNModel returns inline sigma/centroids parameters for a knn
// instance over full sadc node-metric vectors, avoiding a slow training
// run. Two synthetic workload states are enough to exercise the pipeline.
func inlineKNNModel() (sigma, centroids string) {
	dim := len(sadc.NodeMetricNames)
	ones := make([]string, dim)
	lo := make([]string, dim)
	hi := make([]string, dim)
	for i := 0; i < dim; i++ {
		ones[i] = "1"
		lo[i] = "0"
		hi[i] = "2"
	}
	return strings.Join(ones, ","), strings.Join(lo, ",") + ";" + strings.Join(hi, ",")
}

// blackboxConfig mirrors examples/blackbox: per-node sadc -> knn ->
// ibuffer fan-in to analysis_bb, ending in a print alarm sink.
func blackboxConfig(nodes []string) string {
	sigma, centroids := inlineKNNModel()
	var b strings.Builder
	for i, n := range nodes {
		fmt.Fprintf(&b, "[sadc]\nid = sadc%d\nnode = %s\nperiod = 1\n\n", i, n)
		fmt.Fprintf(&b, "[knn]\nid = onenn%d\nsigma = %s\ncentroids = %s\ninput[in] = sadc%d.output0\n\n",
			i, sigma, centroids, i)
		fmt.Fprintf(&b, "[ibuffer]\nid = buf%d\nsize = 10\ninput[input] = onenn%d.output0\n\n", i, i)
	}
	b.WriteString("[analysis_bb]\nid = bb\nthreshold = 0.5\nwindow = 20\nslide = 5\nstates = 2\n")
	for i := range nodes {
		fmt.Fprintf(&b, "input[l%d] = @buf%d\n", i, i)
	}
	b.WriteString("\n[print]\nid = BlackBoxAlarm\nlabel = BB\nonly_nonzero = false\ninput[a] = @bb\n")
	return b.String()
}

// whiteboxConfig mirrors examples/whitebox: multi-node hadoop_log into
// analysis_wb, ending in a print alarm sink.
func whiteboxConfig(nodes []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl_tt\nkind = tasktracker\nnodes = %s\nperiod = 1\n\n",
		strings.Join(nodes, ","))
	fmt.Fprintf(&b, "[analysis_wb]\nid = wb\nk = 2\nwindow = 20\nslide = 5\n")
	for i := range nodes {
		fmt.Fprintf(&b, "input[s%d] = hl_tt.%s\n", i, nodes[i])
	}
	b.WriteString("\n[print]\nid = TaskTrackerAlarm\nlabel = WB\nonly_nonzero = false\ninput[a] = @wb\n")
	return b.String()
}

// paperConfig mirrors examples/paperconfig (Figure 4): both pipelines in
// one DAG, the shape the wavefront scheduler must keep byte-identical.
func paperConfig(nodes []string) string {
	return blackboxConfig(nodes) + "\n" + whiteboxConfig(nodes)
}

// smoothingCSVConfig exercises the mavgvec Into-variant hot path and the
// csv sink: per-node sadc -> mavgvec with both outputs logged to CSV.
func smoothingCSVConfig(nodes []string) string {
	var b strings.Builder
	for i, n := range nodes {
		fmt.Fprintf(&b, "[sadc]\nid = sadc%d\nnode = %s\nperiod = 1\n\n", i, n)
		fmt.Fprintf(&b, "[mavgvec]\nid = smooth%d\nwindow = 10\ninput[in] = sadc%d.output0\n\n", i, i)
	}
	b.WriteString("[csv]\nid = log\npath = %CSVPATH%\n")
	for i := range nodes {
		fmt.Fprintf(&b, "input[m%d] = smooth%d.output0\ninput[v%d] = smooth%d.output1\n", i, i, i, i)
	}
	return b.String()
}

// runWavefrontCase drives one configuration over an identically seeded
// simulated cluster and returns every sink byte it produced: the alarm
// writer output plus, when the config contains a csv instance, the CSV
// file contents.
func runWavefrontCase(t *testing.T, build func([]string) string, slaves int, seed int64, parallelism int) []byte {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	var alarms bytes.Buffer
	env.AlarmWriter = &alarms

	names := make([]string, slaves)
	for i, n := range c.Slaves() {
		names[i] = n.Name
	}
	cfgText := build(names)
	csvPath := ""
	if strings.Contains(cfgText, "%CSVPATH%") {
		csvPath = filepath.Join(t.TempDir(), "out.csv")
		cfgText = strings.ReplaceAll(cfgText, "%CSVPATH%", csvPath)
	}
	cfg, err := config.ParseString(cfgText)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(NewRegistry(env), cfg, core.WithParallelism(parallelism))
	if err != nil {
		t.Fatal(err)
	}
	runSim(t, c, e, 60)
	if err := c.InjectFault(1, hadoopsim.FaultCPUHog); err != nil {
		t.Fatal(err)
	}
	runSim(t, c, e, 60)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}

	out := alarms.Bytes()
	if csvPath != "" {
		data, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data...)
	}
	return out
}

// TestWavefrontMatchesSerialSinkOutput asserts the wavefront scheduler
// produces byte-identical sink output to the serial scheduler on the seed
// pipeline configurations from examples/ (each example generates its
// config programmatically; these builders mirror them). Identical cluster
// seeds give identical inputs, so any divergence is a scheduling bug.
func TestWavefrontMatchesSerialSinkOutput(t *testing.T) {
	cases := []struct {
		name   string
		build  func([]string) string
		slaves int
		seed   int64
	}{
		{"blackbox", blackboxConfig, 4, 101},
		{"whitebox", whiteboxConfig, 4, 202},
		{"paper-two-pipeline", paperConfig, 4, 303},
		{"smoothing-csv", smoothingCSVConfig, 3, 404},
	}
	widths := []int{2, 4, 8}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := runWavefrontCase(t, tc.build, tc.slaves, tc.seed, 1)
			if len(serial) == 0 {
				t.Fatalf("serial run produced no sink output; the comparison would be vacuous")
			}
			for _, w := range widths {
				parallel := runWavefrontCase(t, tc.build, tc.slaves, tc.seed, w)
				if !bytes.Equal(serial, parallel) {
					t.Errorf("parallelism=%d sink output differs from serial\nserial:   %d bytes\nparallel: %d bytes\nserial head: %s\nparallel head: %s",
						w, len(serial), len(parallel),
						firstLines(string(serial), 3), firstLines(string(parallel), 3))
				}
			}
		})
	}
}
