package modules

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/rpc"
)

// wireCase selects the transport knobs for one equivalence run.
type wireCase struct {
	wire      string // "" = leave the parameter out (json default)
	subscribe bool
	shards    int
	batch     bool
	// jsonOnly marks node indices whose daemon speaks only the JSON
	// methods (a pre-columnar deployment); columnar clients must fall back
	// transparently.
	jsonOnly map[int]bool
}

func (wc wireCase) params() string {
	var b strings.Builder
	if wc.wire != "" {
		fmt.Fprintf(&b, "wire = %s\n", wc.wire)
	}
	if wc.subscribe {
		b.WriteString("subscribe = true\n")
	}
	if wc.shards > 1 {
		fmt.Fprintf(&b, "shards = %d\n", wc.shards)
	}
	if wc.batch {
		b.WriteString("batch = true\n")
	}
	return b.String()
}

// runWireSadcCase runs the multi-node sadc collector over loopback daemons
// with the given wire configuration and returns the CSV sink bytes.
func runWireSadcCase(t *testing.T, slaves int, seed int64, wc wireCase) []byte {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	var names, addrs []string
	for i, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceSadc)
		if wc.jsonOnly[i] {
			// A pre-columnar daemon: the full JSON method surface, no
			// stream protocol.
			registerSadcJSON(srv, n)
		} else {
			RegisterSadcServer(srv, n)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		names = append(names, n.Name)
		addrs = append(addrs, addr.String())
	}
	env := NewEnv()
	env.Clock = c.Now

	csvPath := filepath.Join(t.TempDir(), "out.csv")
	var b strings.Builder
	fmt.Fprintf(&b, "[sadc]\nid = cluster\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1\n%s\n",
		strings.Join(names, ","), strings.Join(addrs, ","), wc.params())
	fmt.Fprintf(&b, "[csv]\nid = log\npath = %s\n", csvPath)
	for i, n := range names {
		fmt.Fprintf(&b, "input[m%d] = cluster.%s\n", i, n)
	}
	e := mustEngine(t, env, b.String())
	runSim(t, c, e, 30)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestColumnarWireMatchesJSONSadc asserts the columnar stream transport —
// pulled or pushed, sharded or not, composed with batch configs — logs CSV
// byte-identical to the JSON request/response path.
func TestColumnarWireMatchesJSONSadc(t *testing.T) {
	const slaves, seed = 6, 1101
	baseline := runWireSadcCase(t, slaves, seed, wireCase{wire: "json"})
	if len(baseline) == 0 {
		t.Fatal("json baseline produced no CSV output")
	}
	cases := []struct {
		name string
		wc   wireCase
	}{
		{"default-is-json", wireCase{}},
		{"columnar", wireCase{wire: "columnar"}},
		{"columnar-over-batch-config", wireCase{wire: "columnar", batch: true}},
		{"columnar-sharded", wireCase{wire: "columnar", shards: 3}},
		{"columnar-subscribe", wireCase{wire: "columnar", subscribe: true}},
		{"columnar-subscribe-sharded", wireCase{wire: "columnar", subscribe: true, shards: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runWireSadcCase(t, slaves, seed, tc.wc)
			if !bytes.Equal(baseline, got) {
				t.Errorf("sink output differs from json baseline: %d bytes vs %d",
					len(got), len(baseline))
			}
		})
	}
}

// TestColumnarWireFallsBackPerNode runs a mixed fleet — half the daemons
// pre-columnar — under wire = columnar: the capable nodes stream, the rest
// fall back to the JSON path per node, and the merged output is still
// byte-identical to the all-JSON run. runSim fails the test on any engine
// error, so the fallback is also shown to be transparent.
func TestColumnarWireFallsBackPerNode(t *testing.T) {
	const slaves, seed = 6, 1102
	baseline := runWireSadcCase(t, slaves, seed, wireCase{wire: "json"})
	if len(baseline) == 0 {
		t.Fatal("json baseline produced no CSV output")
	}
	mixed := map[int]bool{1: true, 3: true, 5: true}
	for _, tc := range []struct {
		name string
		wc   wireCase
	}{
		{"pull", wireCase{wire: "columnar", jsonOnly: mixed}},
		{"pull-batch-fallback", wireCase{wire: "columnar", batch: true, jsonOnly: mixed}},
		{"subscribe", wireCase{wire: "columnar", subscribe: true, jsonOnly: mixed}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runWireSadcCase(t, slaves, seed, tc.wc)
			if !bytes.Equal(baseline, got) {
				t.Errorf("mixed-fleet output differs from json baseline: %d bytes vs %d",
					len(got), len(baseline))
			}
		})
	}
}

// runWireSingleNodeCase runs the single-node sadc form with iface and pid
// extras over one loopback daemon — the richest stream schema, including a
// permanently absent group (the simulated node has no "lo" interface).
func runWireSingleNodeCase(t *testing.T, seed int64, wire string, subscribe bool) []byte {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, seed))
	if err != nil {
		t.Fatal(err)
	}
	n := c.Slaves()[0]
	srv := rpc.NewServer(ServiceSadc)
	RegisterSadcServer(srv, n)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	env := NewEnv()
	env.Clock = c.Now

	extra := fmt.Sprintf("wire = %s\n", wire)
	if subscribe {
		extra += "subscribe = true\n"
	}
	csvPath := filepath.Join(t.TempDir(), "out.csv")
	cfgText := fmt.Sprintf(`
[sadc]
id = s0
node = %s
mode = rpc
addr = %s
period = 1
ifaces = eth0, lo
pids = 3001,3002
%s
[csv]
id = log
path = %s
input[m0] = s0.output0
input[m1] = s0.net_eth0
input[m2] = s0.proc_3001
input[m3] = s0.proc_3002
`, n.Name, addr.String(), extra, csvPath)
	e := mustEngine(t, env, cfgText)
	runSim(t, c, e, 30)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestColumnarWireMatchesJSONSingleNode covers the iface/pid metric groups:
// per-group presence (including an interface the node never has) must
// round-trip to the same published vectors as the JSON full-record path.
func TestColumnarWireMatchesJSONSingleNode(t *testing.T) {
	baseline := runWireSingleNodeCase(t, 1103, "json", false)
	if len(baseline) == 0 {
		t.Fatal("json baseline produced no CSV output")
	}
	for _, tc := range []struct {
		name      string
		subscribe bool
	}{
		{"pull", false},
		{"subscribe", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runWireSingleNodeCase(t, 1103, "columnar", tc.subscribe)
			if !bytes.Equal(baseline, got) {
				t.Errorf("sink output differs from json baseline: %d bytes vs %d",
					len(got), len(baseline))
			}
		})
	}
}

// runWireLogCase runs the synchronizing hadoop_log collector over loopback
// daemons with the given wire configuration and returns the CSV sink bytes.
func runWireLogCase(t *testing.T, slaves int, seed int64, wc wireCase) []byte {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	var names, addrs []string
	for i, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceHadoopLog)
		if wc.jsonOnly[i] {
			// A pre-columnar log daemon: JSON vectors only.
			registerHadoopLogJSON(srv, n.TaskTrackerLog(), n.DataNodeLog(), c.Now)
		} else {
			RegisterHadoopLogServer(srv, n.TaskTrackerLog(), n.DataNodeLog(), c.Now)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		names = append(names, n.Name)
		addrs = append(addrs, addr.String())
	}
	env := NewEnv()
	env.Clock = c.Now

	csvPath := filepath.Join(t.TempDir(), "out.csv")
	var b strings.Builder
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl\nkind = tasktracker\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1\n%s\n",
		strings.Join(names, ","), strings.Join(addrs, ","), wc.params())
	fmt.Fprintf(&b, "[csv]\nid = log\npath = %s\n", csvPath)
	for i, n := range names {
		fmt.Fprintf(&b, "input[m%d] = hl.%s\n", i, n)
	}
	e := mustEngine(t, env, b.String())
	runSim(t, c, e, 30)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestColumnarWireMatchesJSONHadoopLog covers the white-box path: the
// columnar vector stream (variable rows per tick, zero on quiet ticks) must
// feed the timestamp synchronizer to byte-identical output, including with
// a mixed fleet falling back per node.
func TestColumnarWireMatchesJSONHadoopLog(t *testing.T) {
	const slaves, seed = 4, 1104
	baseline := runWireLogCase(t, slaves, seed, wireCase{wire: "json"})
	if len(baseline) == 0 {
		t.Fatal("json baseline produced no CSV output")
	}
	for _, tc := range []struct {
		name string
		wc   wireCase
	}{
		{"columnar", wireCase{wire: "columnar"}},
		{"columnar-sharded", wireCase{wire: "columnar", shards: 2}},
		{"columnar-subscribe", wireCase{wire: "columnar", subscribe: true}},
		{"fallback-mixed-fleet", wireCase{wire: "columnar", jsonOnly: map[int]bool{0: true, 2: true}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runWireLogCase(t, slaves, seed, tc.wc)
			if !bytes.Equal(baseline, got) {
				t.Errorf("sink output differs from json baseline: %d bytes vs %d",
					len(got), len(baseline))
			}
		})
	}
}

// TestWireParamValidation pins the configuration contract for the new
// knobs.
func TestWireParamValidation(t *testing.T) {
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	node := c.Slaves()[0].Name
	for _, tc := range []struct {
		name, cfg, wantErr string
	}{
		{
			"columnar-needs-rpc",
			"[sadc]\nid = s\nnode = " + node + "\nwire = columnar\n",
			"wire = columnar requires mode = rpc",
		},
		{
			"unknown-wire",
			"[sadc]\nid = s\nnode = " + node + "\nwire = protobuf\n",
			"unknown wire",
		},
		{
			"subscribe-needs-columnar",
			"[sadc]\nid = s\nnode = " + node + "\nmode = rpc\naddr = 127.0.0.1:1\nsubscribe = true\n",
			"subscribe = true requires wire = columnar",
		},
		{
			"push-period-needs-subscribe",
			"[sadc]\nid = s\nnode = " + node + "\nmode = rpc\naddr = 127.0.0.1:1\nwire = columnar\npush_period = 5\n",
			"require subscribe = true",
		},
		{
			"hadoop-log-subscribe-needs-columnar",
			"[hadoop_log]\nid = h\nkind = tasktracker\nnodes = " + node + "\nmode = rpc\naddrs = 127.0.0.1:1\nsubscribe = true\n",
			"subscribe = true requires wire = columnar",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := config.ParseString(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			_, err = core.NewEngine(NewRegistry(env), cfg)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}

	// The environment default applies only where it can: a local-mode
	// instance under -wire columnar still initializes (and collects
	// locally), rather than failing on a knob that does not apply to it.
	env.DefaultWire = "columnar"
	defer func() { env.DefaultWire = "" }()
	e := mustEngine(t, env, "[sadc]\nid = s\nnode = "+node+"\nperiod = 1\n")
	runSim(t, c, e, 3)
}
