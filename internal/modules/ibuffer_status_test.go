package modules

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// burstSource publishes a fixed burst of samples per run — enough to
// overflow a small ibuffer in a single delivery.
type burstSource struct {
	burst int
	next  float64
	out   *core.OutputPort
}

func (m *burstSource) Init(ctx *core.InitContext) error {
	var err error
	if m.out, err = ctx.NewOutput("output0", core.Origin{Source: "burst", Node: "n0"}); err != nil {
		return err
	}
	return ctx.SchedulePeriodic(time.Second)
}

func (m *burstSource) Run(ctx *core.RunContext) error {
	if ctx.Reason == core.RunFlush {
		return nil
	}
	for i := 0; i < m.burst; i++ {
		m.out.Publish(core.NewScalar(ctx.Now, m.next))
		m.next++
	}
	return nil
}

// TestIbufferDropAccounting overflows an ibuffer and checks the three
// operator surfaces against each other: the asdf_ibuffer_dropped_total
// counter on /metrics, the IbufferStatus in the /status report, and the
// module's own accounting must all agree.
func TestIbufferDropAccounting(t *testing.T) {
	const burst = 5
	const size = 2
	const ticks = 8

	env := NewEnv()
	env.Metrics = telemetry.NewRegistry()
	cfg, err := config.ParseString(fmt.Sprintf(`
[burst]
id = src

[ibuffer]
id = buf
size = %d
input[input] = src.output0

[print]
id = p
input[x] = buf.output0
only_nonzero = false
`, size))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(env)
	reg.Register("burst", func() core.Module { return &burstSource{burst: burst} })
	e, err := core.NewEngine(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < ticks; i++ {
		if err := e.Tick(start.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	// Each tick delivers burst samples into a size-slot buffer: the oldest
	// burst-size are dropped, the rest forwarded.
	wantDropped := uint64(ticks * (burst - size))
	wantForwarded := uint64(ticks * size)

	rep := CollectStatus(e, start)
	ib, ok := rep.Ibuffer["buf"]
	if !ok {
		t.Fatalf("status report has no ibuffer entry: %+v", rep.Ibuffer)
	}
	if ib.Size != size || ib.Dropped != wantDropped || ib.Forwarded != wantForwarded {
		t.Errorf("IbufferStatus = %+v, want size=%d dropped=%d forwarded=%d",
			ib, size, wantDropped, wantForwarded)
	}

	// The /metrics surface must agree with the /status surface.
	var buf bytes.Buffer
	if _, err := env.Metrics.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	scraped, err := telemetry.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	series := `asdf_ibuffer_dropped_total{instance="buf"}`
	got, ok := scraped[series]
	if !ok {
		t.Fatalf("series %s missing from scrape:\n%s", series, buf.String())
	}
	if got != float64(ib.Dropped) {
		t.Errorf("scraped %s = %v, want %v (status snapshot)", series, got, ib.Dropped)
	}
}

// TestIbufferNoDropsNoCounter checks the quiet path: a buffer that never
// overflows reports zero drops on both surfaces.
func TestIbufferNoDropsNoCounter(t *testing.T) {
	env := NewEnv()
	env.Metrics = telemetry.NewRegistry()
	cfg, err := config.ParseString(`
[burst]
id = src

[ibuffer]
id = buf
size = 10
input[input] = src.output0

[print]
id = p
input[x] = buf.output0
only_nonzero = false
`)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(env)
	reg.Register("burst", func() core.Module { return &burstSource{burst: 1} })
	e, err := core.NewEngine(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		if err := e.Tick(start.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	rep := CollectStatus(e, start)
	ib, ok := rep.Ibuffer["buf"]
	if !ok {
		t.Fatal("ibuffer entry missing from healthy status report")
	}
	if ib.Dropped != 0 || ib.Forwarded != 5 {
		t.Errorf("IbufferStatus = %+v, want dropped=0 forwarded=5", ib)
	}
	var buf bytes.Buffer
	if _, err := env.Metrics.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	scraped, err := telemetry.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := scraped[`asdf_ibuffer_dropped_total{instance="buf"}`]; got != 0 {
		t.Errorf("dropped counter = %v on a buffer that never overflowed", got)
	}
}
