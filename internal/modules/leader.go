package modules

import (
	"encoding/json"
	"fmt"
	"sync"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/hierarchy"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/sadc"
	"github.com/asdf-project/asdf/internal/state"
)

// The shard-leader side of the hierarchical collection plane (cmd/asdf-shardd):
// a Leader owns the per-daemon managed connections, shard sweeps, and wire
// negotiation for one contiguous node range, and serves merged per-tick
// partials to the root over hierarchy's JSON sweep methods and their
// columnar stream counterparts. Sweeps are pull-driven — one sweep per root
// request — so the root's tick clock paces the whole tree and daemon-side
// rate state advances exactly as if the root polled the daemons directly,
// which is what keeps hierarchical sink output byte-identical to the
// single-process configuration.

// LeaderOptions configures a Leader. The node list is the leader's slice of
// the root's node set, in the root's order.
type LeaderOptions struct {
	// Name identifies the leader in status output.
	Name string
	// Nodes are the node names of the delegated range, in range order.
	Nodes []string
	// SadcAddrs are the sadc_rpcd daemon addresses, parallel to Nodes;
	// empty disables the sadc plane.
	SadcAddrs []string
	// LogAddrs are the hadoop_log_rpcd daemon addresses, parallel to
	// Nodes; empty disables the log plane.
	LogAddrs []string
	// LogKind selects which daemon log the log plane reads.
	LogKind hadooplog.Kind
	// Fanout, Shards, and Batch mirror the collection-module parameters of
	// the same names: concurrent-fetch budget, independent shard workers
	// over the leader's range, and batched JSON fetches.
	Fanout int
	Shards config.ShardParams
	Batch  bool
	// Wire selects the leader→daemon transport: "" or "json" keeps the
	// JSON request/response path, "columnar" opens delta-encoded streams
	// with per-node JSON fallback, exactly as on a single-process root.
	Wire string
	// Resilience tunes the leader→daemon managed connections.
	Resilience config.ResilienceParams
}

// leaderPlane is one collection plane (sadc or hadoop_log) of a Leader: its
// sources, clients, shard sweeper, scratch, and accounting. It doubles as
// the state.Engine module for that plane, so a leader's -state-file
// persists its daemon breaker state through the same machinery as a root's.
type leaderPlane struct {
	nodes   []string
	clients []rpc.Caller
	metric  []MetricSource // sadc plane
	logs    []LogSource    // log plane
	sweeper *shardSweeper

	mu         sync.Mutex
	sweeps     uint64
	nodeErrors uint64

	recs []*sadc.Record
	vecs [][]hadooplog.StateVector
	errs []error
}

// Init and Run satisfy core.Module so the plane can ride the state
// manager's Engine surface; the leader scheduler never calls them.
func (p *leaderPlane) Init(*core.InitContext) error { return nil }
func (p *leaderPlane) Run(*core.RunContext) error   { return nil }

// ExportBreakerSnapshots / ImportBreakerSnapshots persist the plane's
// leader→daemon breaker state (state.BreakerExporter / BreakerImporter).
func (p *leaderPlane) ExportBreakerSnapshots() map[string]rpc.BreakerSnapshot {
	return exportBreakers(p.clients)
}

func (p *leaderPlane) ImportBreakerSnapshots(snaps map[string]rpc.BreakerSnapshot, plan *rpc.ProbePlanner) int {
	return importBreakers(p.clients, snaps, plan)
}

// ClientHealths exposes per-daemon connection health (BreakerReporter), so
// a leader's own status surface shows its slice of the collection plane.
func (p *leaderPlane) ClientHealths() map[string]rpc.Health {
	out := make(map[string]rpc.Health, len(p.clients))
	for i, c := range p.clients {
		if h, ok := sourceHealth(c); ok {
			out[p.nodes[i]] = h
		}
	}
	return out
}

// ShardStatuses exposes the plane's per-shard sweep accounting.
func (p *leaderPlane) ShardStatuses() []ShardStatus {
	return p.sweeper.statusesWithBreakers(p.clients)
}

func (p *leaderPlane) stats() hierarchy.Stats {
	p.mu.Lock()
	sweeps, nerrs := p.sweeps, p.nodeErrors
	p.mu.Unlock()
	open, _ := countBreakers(p.clients)
	return hierarchy.Stats{
		Nodes:        len(p.nodes),
		Sweeps:       sweeps,
		NodeErrors:   nerrs,
		OpenBreakers: open,
	}
}

// Leader runs the collection plane for one delegated node range and serves
// it over RPC. All sweep entry points (JSON and stream, either plane) are
// serialized per plane, so a root reconnecting mid-tick cannot interleave
// two sweeps over the shared scratch.
type Leader struct {
	env  *Env
	name string
	sadc *leaderPlane
	log  *leaderPlane
	kind hadooplog.Kind
}

// NewLeader builds a Leader: it dials (lazily) every daemon in the range
// and wires the same source stack a single-process root would use — plain
// or batched JSON, with columnar streams and per-node fallback under
// Wire = "columnar".
func NewLeader(env *Env, opt LeaderOptions) (*Leader, error) {
	if env == nil {
		env = NewEnv()
	}
	if len(opt.Nodes) == 0 {
		return nil, fmt.Errorf("leader: empty node list")
	}
	if len(opt.SadcAddrs) == 0 && len(opt.LogAddrs) == 0 {
		return nil, fmt.Errorf("leader: no sadc or hadoop_log daemon addresses")
	}
	var wp wireParams
	switch opt.Wire {
	case "", "json":
	case "columnar":
		wp.columnar = true
	default:
		return nil, fmt.Errorf("leader: unknown wire %q (want json or columnar)", opt.Wire)
	}
	l := &Leader{env: env, name: opt.Name, kind: opt.LogKind}
	if len(opt.SadcAddrs) > 0 {
		if len(opt.SadcAddrs) != len(opt.Nodes) {
			return nil, fmt.Errorf("leader: %d sadc addrs for %d nodes", len(opt.SadcAddrs), len(opt.Nodes))
		}
		p := &leaderPlane{nodes: opt.Nodes}
		for i, a := range opt.SadcAddrs {
			client, err := env.dial(a, "asdf-shardd", opt.Resilience)
			if err != nil {
				return nil, fmt.Errorf("leader[%s]: dial %s: %w", opt.Nodes[i], a, err)
			}
			p.clients = append(p.clients, client)
			var src MetricSource
			if opt.Batch {
				bc, ok := client.(rpc.BatchCaller)
				if !ok {
					return nil, fmt.Errorf("leader[%s]: batch requires a batch-capable client", opt.Nodes[i])
				}
				if src, err = NewBatchedMetricSource(bc, nil, nil); err != nil {
					return nil, fmt.Errorf("leader[%s]: %w", opt.Nodes[i], err)
				}
			} else {
				src = NewRPCMetricSource(client)
			}
			if wp.columnar {
				if so, ok := client.(streamOpener); ok {
					if src, err = NewColumnarMetricSource(so, wp, opt.Nodes[i], nil, nil, src); err != nil {
						return nil, fmt.Errorf("leader[%s]: %w", opt.Nodes[i], err)
					}
				}
			}
			p.metric = append(p.metric, src)
		}
		p.sweeper = newShardSweeper(env, opt.Name+"/sadc", len(opt.Nodes), opt.Shards, opt.Fanout)
		p.recs = make([]*sadc.Record, len(opt.Nodes))
		p.errs = make([]error, len(opt.Nodes))
		l.sadc = p
	}
	if len(opt.LogAddrs) > 0 {
		if len(opt.LogAddrs) != len(opt.Nodes) {
			return nil, fmt.Errorf("leader: %d hadoop_log addrs for %d nodes", len(opt.LogAddrs), len(opt.Nodes))
		}
		p := &leaderPlane{nodes: opt.Nodes}
		for i, a := range opt.LogAddrs {
			client, err := env.dial(a, "asdf-shardd", opt.Resilience)
			if err != nil {
				return nil, fmt.Errorf("leader[%s]: dial %s: %w", opt.Nodes[i], a, err)
			}
			p.clients = append(p.clients, client)
			src := NewRPCLogSource(client, opt.LogKind)
			if wp.columnar {
				if so, ok := client.(streamOpener); ok {
					if src, err = NewColumnarLogSource(so, wp, opt.Nodes[i], opt.LogKind, src); err != nil {
						return nil, fmt.Errorf("leader[%s]: %w", opt.Nodes[i], err)
					}
				}
			}
			p.logs = append(p.logs, src)
		}
		p.sweeper = newShardSweeper(env, opt.Name+"/hadoop_log", len(opt.Nodes), opt.Shards, opt.Fanout)
		p.vecs = make([][]hadooplog.StateVector, len(opt.Nodes))
		p.errs = make([]error, len(opt.Nodes))
		l.log = p
	}
	return l, nil
}

// sweepSadcLocked runs one sadc sweep; the caller consumes p.recs / p.errs
// before releasing p.mu, since the next sweep overwrites them.
func (l *Leader) sweepSadcLocked() {
	p := l.sadc
	p.sweeper.sweep(func(i int) error {
		p.recs[i], p.errs[i] = p.metric[i].Collect()
		return p.errs[i]
	})
	p.sweeps++
	for _, err := range p.errs {
		if err != nil {
			p.nodeErrors++
		}
	}
}

// sweepLogLocked runs one log sweep under the same contract.
func (l *Leader) sweepLogLocked() {
	p := l.log
	now := l.env.now()
	p.sweeper.sweep(func(i int) error {
		p.vecs[i], p.errs[i] = p.logs[i].Fetch(now)
		return p.errs[i]
	})
	p.sweeps++
	for _, err := range p.errs {
		if err != nil {
			p.nodeErrors++
		}
	}
}

// SadcSweep serves one JSON-hop sweep (hierarchy.MethodSadcSweep).
func (l *Leader) SadcSweep() (hierarchy.SadcSweepResponse, error) {
	p := l.sadc
	if p == nil {
		return hierarchy.SadcSweepResponse{}, fmt.Errorf("leader: no sadc plane configured")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	l.sweepSadcLocked()
	resp := hierarchy.SadcSweepResponse{Records: make([]hierarchy.SadcRecord, len(p.nodes))}
	for i, rec := range p.recs {
		if err := p.errs[i]; err != nil {
			resp.Records[i] = hierarchy.SadcRecord{Err: err.Error()}
			continue
		}
		resp.Records[i] = hierarchy.SadcRecord{Warmup: rec.Warmup, Node: rec.Node}
	}
	resp.Stats = hierarchy.Stats{
		Nodes:      len(p.nodes),
		Sweeps:     p.sweeps,
		NodeErrors: p.nodeErrors,
	}
	resp.Stats.OpenBreakers, _ = countBreakers(p.clients)
	return resp, nil
}

// LogSweep serves one JSON-hop sweep (hierarchy.MethodLogSweep).
func (l *Leader) LogSweep() (hierarchy.LogSweepResponse, error) {
	p := l.log
	if p == nil {
		return hierarchy.LogSweepResponse{}, fmt.Errorf("leader: no hadoop_log plane configured")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	l.sweepLogLocked()
	resp := hierarchy.LogSweepResponse{Nodes: make([]hierarchy.LogNode, len(p.nodes))}
	for i, vecs := range p.vecs {
		if err := p.errs[i]; err != nil {
			resp.Nodes[i] = hierarchy.LogNode{Err: err.Error()}
			continue
		}
		lvs := make([]hierarchy.LogVector, len(vecs))
		for j, v := range vecs {
			lvs[j] = hierarchy.LogVector{Time: v.Time, Counts: v.Counts}
		}
		resp.Nodes[i] = hierarchy.LogNode{Vectors: lvs}
		p.vecs[i] = nil
	}
	resp.Stats = hierarchy.Stats{
		Nodes:      len(p.nodes),
		Sweeps:     p.sweeps,
		NodeErrors: p.nodeErrors,
	}
	resp.Stats.OpenBreakers, _ = countBreakers(p.clients)
	return resp, nil
}

// Status serves hierarchy.MethodStatus.
func (l *Leader) Status() hierarchy.StatusResponse {
	resp := hierarchy.StatusResponse{Name: l.name}
	if l.sadc != nil {
		s := l.sadc.stats()
		resp.Sadc = &s
	}
	if l.log != nil {
		s := l.log.stats()
		resp.Log = &s
	}
	return resp
}

// leaderSadcStream adapts the leader's sadc sweep to the columnar stream
// protocol: one row per node per tick in a single narrow group whose
// leading hierarchy.NodeIndexColumn column carries the node's offset within
// the range. Rows stay O(metric width) regardless of range size — a
// group-per-node schema would materialize O(range²) cells per tick at the
// decoder — and a failed node simply has no row; the root synthesizes a
// per-node error for every range index missing from the frame.
type leaderSadcStream struct {
	l      *Leader
	schema rpc.StreamSchema
	values []float64
}

// partialGroup builds the single schema group of a leader partial stream:
// the node-offset column followed by the plane's metric columns.
func partialGroup(cols []string) []rpc.ColumnGroup {
	wide := make([]string, 0, len(cols)+1)
	wide = append(wide, hierarchy.NodeIndexColumn)
	wide = append(wide, cols...)
	return []rpc.ColumnGroup{{Name: "partial", Columns: wide}}
}

// partialPresent is the presence bitmap of every partial row: the schema's
// one group, always present.
var partialPresent = []bool{true}

func newLeaderSadcStream(l *Leader) *leaderSadcStream {
	return &leaderSadcStream{
		l:      l,
		schema: rpc.StreamSchema{Method: hierarchy.MethodSadcStream, Node: l.name, Groups: partialGroup(sadc.NodeMetricNames)},
		values: make([]float64, 1+len(sadc.NodeMetricNames)),
	}
}

func (s *leaderSadcStream) Schema() rpc.StreamSchema { return s.schema }

func (s *leaderSadcStream) Collect(fw *rpc.FrameWriter) error {
	p := s.l.sadc
	p.mu.Lock()
	defer p.mu.Unlock()
	s.l.sweepSadcLocked()
	for i, rec := range p.recs {
		if p.errs[i] != nil {
			continue
		}
		s.values[0] = float64(i)
		copy(s.values[1:], rec.Node)
		fw.AppendRow(rec.Time.UnixNano(), rec.Warmup, partialPresent, s.values)
	}
	return nil
}

// leaderLogStream is the log plane's columnar counterpart: one row per
// newly finalized per-second vector, tagged with its node offset; a quiet
// tick is an empty frame. A failed node is indistinguishable from a quiet
// one on this hop — which matches the sync semantics, since the root treats
// a fetch error as "no new vectors" either way.
type leaderLogStream struct {
	l      *Leader
	schema rpc.StreamSchema
	values []float64
}

func newLeaderLogStream(l *Leader) *leaderLogStream {
	cols := hadooplog.MetricNamesFor(l.kind)
	return &leaderLogStream{
		l:      l,
		schema: rpc.StreamSchema{Method: hierarchy.MethodLogStream, Node: l.name, Groups: partialGroup(cols)},
		values: make([]float64, 1+len(cols)),
	}
}

func (s *leaderLogStream) Schema() rpc.StreamSchema { return s.schema }

func (s *leaderLogStream) Collect(fw *rpc.FrameWriter) error {
	p := s.l.log
	p.mu.Lock()
	defer p.mu.Unlock()
	s.l.sweepLogLocked()
	for i, vecs := range p.vecs {
		if p.errs[i] != nil {
			continue
		}
		for _, v := range vecs {
			s.values[0] = float64(i)
			copy(s.values[1:], v.Counts)
			fw.AppendRow(v.Time.UnixNano(), false, partialPresent, s.values)
		}
		p.vecs[i] = nil
	}
	return nil
}

// checkStreamNodes verifies the root's node list for the range matches the
// leader's configuration, so a misrouted delegation fails at open time
// instead of misattributing every sample.
func checkStreamNodes(params json.RawMessage, nodes []string) error {
	var req hierarchy.StreamRequest
	if len(params) > 0 {
		if err := json.Unmarshal(params, &req); err != nil {
			return err
		}
	}
	if len(req.Nodes) == 0 {
		return nil // root elided the check
	}
	if len(req.Nodes) != len(nodes) {
		return fmt.Errorf("leader: stream for %d nodes, range has %d", len(req.Nodes), len(nodes))
	}
	for i, n := range req.Nodes {
		if n != nodes[i] {
			return fmt.Errorf("leader: stream node %d is %q, range has %q", i, n, nodes[i])
		}
	}
	return nil
}

// Register exposes the leader's sweep surface on srv: the JSON methods,
// their columnar stream counterparts, and the status method.
func (l *Leader) Register(srv *rpc.Server) {
	if l.sadc != nil {
		srv.Handle(hierarchy.MethodSadcSweep, func(json.RawMessage) (any, error) {
			return l.SadcSweep()
		})
		srv.HandleStream(hierarchy.MethodSadcStream, func(params json.RawMessage) (rpc.StreamSource, error) {
			if err := checkStreamNodes(params, l.sadc.nodes); err != nil {
				return nil, err
			}
			return newLeaderSadcStream(l), nil
		})
	}
	if l.log != nil {
		srv.Handle(hierarchy.MethodLogSweep, func(json.RawMessage) (any, error) {
			return l.LogSweep()
		})
		srv.HandleStream(hierarchy.MethodLogStream, func(params json.RawMessage) (rpc.StreamSource, error) {
			if err := checkStreamNodes(params, l.log.nodes); err != nil {
				return nil, err
			}
			return newLeaderLogStream(l), nil
		})
	}
	srv.Handle(hierarchy.MethodStatus, func(json.RawMessage) (any, error) {
		return l.Status(), nil
	})
}

// The state.Engine surface: a leader has no fpt-core engine, but its planes
// carry daemon breaker state worth persisting, so -state-file composes the
// same way it does on a root. Plane ids are stable ("sadc", "hadoop_log"),
// letting a restarted leader re-match its snapshot sections.

// Instances lists the configured planes.
func (l *Leader) Instances() []string {
	var out []string
	if l.sadc != nil {
		out = append(out, "sadc")
	}
	if l.log != nil {
		out = append(out, "hadoop_log")
	}
	return out
}

// ModuleOf resolves a plane id.
func (l *Leader) ModuleOf(id string) (core.Module, bool) {
	switch {
	case id == "sadc" && l.sadc != nil:
		return l.sadc, true
	case id == "hadoop_log" && l.log != nil:
		return l.log, true
	}
	return nil, false
}

// SupervisorSnapshots reports none: the leader has no supervised instances.
func (l *Leader) SupervisorSnapshots() []core.InstanceHealth { return nil }

// RestoreSupervisors is a no-op for the same reason.
func (l *Leader) RestoreSupervisors([]core.InstanceHealth) int { return 0 }

var _ state.Engine = (*Leader)(nil)
