package modules

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/rpc"
)

// buildPaperConfig emits the full two-pipeline configuration of Figure 4:
// per-node sadc -> knn -> ibuffer feeding analysis_bb, and hadoop_log
// feeding analysis_wb, both ending in print alarms.
func buildPaperConfig(nodes []string, modelPath string, bbThreshold float64, k float64, window, states int) string {
	var b strings.Builder
	for i, n := range nodes {
		fmt.Fprintf(&b, "[sadc]\nid = sadc%d\nnode = %s\nperiod = 1\n\n", i, n)
		fmt.Fprintf(&b, "[knn]\nid = onenn%d\nmodel_file = %s\ninput[in] = sadc%d.output0\n\n", i, modelPath, i)
		fmt.Fprintf(&b, "[ibuffer]\nid = buf%d\nsize = 10\ninput[input] = onenn%d.output0\n\n", i, i)
	}
	b.WriteString("[analysis_bb]\nid = bb\nretain_results = 0\n")
	fmt.Fprintf(&b, "threshold = %g\nwindow = %d\nslide = %d\nstates = %d\n", bbThreshold, window, window/4, states)
	for i := range nodes {
		fmt.Fprintf(&b, "input[l%d] = @buf%d\n", i, i)
	}
	b.WriteString("\n[print]\nid = BlackBoxAlarm\nlabel = BB\ninput[a] = @bb\n\n")

	fmt.Fprintf(&b, "[hadoop_log]\nid = hl_tt\nkind = tasktracker\nnodes = %s\nperiod = 1\n\n", strings.Join(nodes, ","))
	fmt.Fprintf(&b, "[analysis_wb]\nid = wb\nretain_results = 0\nk = %g\nwindow = %d\nslide = %d\n", k, window, window/4)
	for i := range nodes {
		fmt.Fprintf(&b, "input[s%d] = hl_tt.%s\n", i, nodes[i])
	}
	b.WriteString("\n[print]\nid = TaskTrackerAlarm\nlabel = WB\ninput[a] = @wb\n")
	return b.String()
}

// TestFullPipelineFingerpointsCPUHog is the system-level test: the complete
// ASDF configuration of the paper monitoring a simulated cluster must
// localize a CPU hog to the right slave via the black-box path, with the
// combined pipelines producing no (or almost no) alarms on healthy peers.
func TestFullPipelineFingerpointsCPUHog(t *testing.T) {
	const slaves = 8
	const window = 60

	model := trainModelFromSim(t, slaves, 300, 4)
	modelPath := filepath.Join(t.TempDir(), "model.json")
	if err := model.Save(modelPath); err != nil {
		t.Fatal(err)
	}

	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, 2000))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	var alarms bytes.Buffer
	env.AlarmWriter = &alarms

	names := make([]string, slaves)
	for i, n := range c.Slaves() {
		names[i] = n.Name
	}
	cfgText := buildPaperConfig(names, modelPath, 55, 3, window, model.NumStates())
	e := mustEngine(t, env, cfgText)

	// Warm up fault-free, then inject a CPU hog on slave 3.
	runSim(t, c, e, 180)
	const culprit = 3
	if err := c.InjectFault(culprit, hadoopsim.FaultCPUHog); err != nil {
		t.Fatal(err)
	}
	runSim(t, c, e, 420)

	mod, ok := e.ModuleOf("bb")
	if !ok {
		t.Fatal("bb module missing")
	}
	results := mod.(*analysisBBModule).Results()
	if len(results) == 0 {
		t.Fatal("black-box analysis produced no windows")
	}
	// Count per-node flags over the post-injection windows (the last
	// windows cover the faulty period). Localization succeeds when the
	// culprit is flagged more often than any single peer.
	flagCounts := make([]int, slaves)
	post := 0
	for _, r := range results {
		if r.EndIndex < 180+window { // still covering mostly pre-fault data
			continue
		}
		post++
		for n, f := range r.Flagged {
			if f {
				flagCounts[n]++
			}
		}
	}
	if post == 0 {
		t.Fatal("no post-injection windows")
	}
	if flagCounts[culprit] == 0 {
		t.Errorf("culprit never fingerpointed in %d post-injection windows", post)
	}
	for n, c := range flagCounts {
		if n != culprit && c >= flagCounts[culprit] {
			t.Errorf("peer %d flagged %d times, culprit only %d — localization failed", n, c, flagCounts[culprit])
		}
	}
	if !strings.Contains(alarms.String(), "[BB]") {
		t.Error("no black-box alarms printed")
	}
	if !strings.Contains(alarms.String(), "node="+names[culprit]) {
		t.Errorf("alarm output does not name the culprit %s:\n%s", names[culprit], firstLines(alarms.String(), 5))
	}
}

// TestFullPipelineWhiteBoxFingerpointsHang2080 checks the white-box path on
// a dormant fault: reduces hanging at sort pile up in the ReduceSort state
// on the faulty node, which peer comparison of log states must catch.
func TestFullPipelineWhiteBoxFingerpointsHang2080(t *testing.T) {
	const slaves = 6
	const window = 60

	model := trainModelFromSim(t, slaves, 120, 4)
	modelPath := filepath.Join(t.TempDir(), "model.json")
	if err := model.Save(modelPath); err != nil {
		t.Fatal(err)
	}

	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, 2024))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	names := make([]string, slaves)
	for i, n := range c.Slaves() {
		names[i] = n.Name
	}
	e := mustEngine(t, env, buildPaperConfig(names, modelPath, 55, 3, window, model.NumStates()))

	runSim(t, c, e, 180)
	const culprit = 1
	if err := c.InjectFault(culprit, hadoopsim.FaultHang2080); err != nil {
		t.Fatal(err)
	}
	runSim(t, c, e, 600)

	mod, _ := e.ModuleOf("wb")
	results := mod.(*analysisWBModule).Results()
	if len(results) == 0 {
		t.Fatal("white-box analysis produced no windows")
	}
	culpritFlags, peerFlags := 0, 0
	for _, r := range results {
		if r.EndIndex < 300 {
			continue
		}
		for n, f := range r.Flagged {
			if !f {
				continue
			}
			if n == culprit {
				culpritFlags++
			} else {
				peerFlags++
			}
		}
	}
	if culpritFlags == 0 {
		t.Error("white-box analysis never fingerpointed the hung-reduce node")
	}
	if culpritFlags < peerFlags {
		t.Errorf("culprit flagged %d, peers %d — localization failed", culpritFlags, peerFlags)
	}
}

// TestRPCModeEndToEnd runs collection through real TCP daemons: a sadc_rpcd
// and hadoop_log_rpcd per node, with the control-node modules in rpc mode —
// the paper's deployed architecture (§3.1).
func TestRPCModeEndToEnd(t *testing.T) {
	const slaves = 3
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, 77))
	if err != nil {
		t.Fatal(err)
	}

	var sadcAddrs, hlAddrs []string
	for _, n := range c.Slaves() {
		sadcSrv := rpc.NewServer(ServiceSadc)
		RegisterSadcServer(sadcSrv, n)
		addr, err := sadcSrv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = sadcSrv.Close() })
		sadcAddrs = append(sadcAddrs, addr.String())

		hlSrv := rpc.NewServer(ServiceHadoopLog)
		RegisterHadoopLogServer(hlSrv, n.TaskTrackerLog(), n.DataNodeLog(), c.Now)
		addr, err = hlSrv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = hlSrv.Close() })
		hlAddrs = append(hlAddrs, addr.String())
	}

	env := NewEnv()
	env.Clock = c.Now
	names := make([]string, slaves)
	for i, n := range c.Slaves() {
		names[i] = n.Name
	}
	var b strings.Builder
	for i := range names {
		fmt.Fprintf(&b, "[sadc]\nid = sadc%d\nnode = %s\nmode = rpc\naddr = %s\nperiod = 1\n\n",
			i, names[i], sadcAddrs[i])
	}
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl\nkind = tasktracker\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1\n\n",
		strings.Join(names, ","), strings.Join(hlAddrs, ","))
	b.WriteString("[print]\nid = p\nonly_nonzero = false\n")
	for i := range names {
		fmt.Fprintf(&b, "input[m%d] = sadc%d.output0\n", i, i)
	}
	b.WriteString("input[h] = @hl\n")

	cfg, err := config.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(NewRegistry(env), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		c.Tick()
		if err := e.Tick(c.Now()); err != nil {
			t.Fatal(err)
		}
	}
	for i := range names {
		out := e.OutputPortsOf(fmt.Sprintf("sadc%d", i))[0]
		if out.Published() == 0 {
			t.Errorf("sadc%d published nothing over RPC", i)
		}
	}
	hlOuts := e.OutputPortsOf("hl")
	var hlPublished uint64
	for _, o := range hlOuts {
		hlPublished += o.Published()
	}
	if hlPublished == 0 {
		t.Error("hadoop_log published nothing over RPC")
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestPipelineRealTimeMode runs a small pipeline in wall-clock mode for a
// moment, confirming the same configuration drives Engine.Run.
func TestPipelineRealTimeMode(t *testing.T) {
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Advance the simulated cluster in the background at high speed so
	// real-time collection sees fresh counters.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				c.Tick()
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	defer func() { close(stop); <-done }()

	env := simEnv(c)
	env.Clock = nil // wall clock
	e := mustEngine(t, env, `
[sadc]
id = s0
node = slave01
period = 20ms

[print]
id = p
input[a] = s0.output0
only_nonzero = false
`)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := e.Run(ctx); err == nil {
		t.Fatal("Run should return the context error")
	}
	if e.OutputPortsOf("s0")[0].Published() == 0 {
		t.Error("nothing collected in real-time mode")
	}
}
