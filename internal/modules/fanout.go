package modules

import (
	"sync"
	"sync/atomic"
)

// defaultFanoutCap bounds per-node collection concurrency when an instance
// does not set the fanout parameter: min(16, numNodes) workers. The cap
// keeps a large cluster from opening hundreds of simultaneous RPCs from one
// control node while still collapsing per-tick latency from O(nodes) round
// trips to O(nodes/fanout).
const defaultFanoutCap = 16

// resolveFanout turns a configured fanout (0 = default) into a concrete
// worker count for n nodes.
func resolveFanout(configured, n int) int {
	w := configured
	if w <= 0 {
		w = defaultFanoutCap
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// fanOut invokes fn(i) for every i in [0, n), running up to width calls
// concurrently, and returns once all have completed. Workers pull indexes
// from a shared counter, so a slow node delays only its own slot, not the
// whole sweep. Callers store results by index, which keeps downstream
// processing deterministic (merged by node position, not arrival order).
func fanOut(n, width int, fn func(int)) {
	if n <= 0 {
		return
	}
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
