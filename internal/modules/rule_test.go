package modules

import (
	"strconv"
	"testing"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/sadc"
)

// ruleEngine builds a sadc -> rule -> print pipeline with the given rule
// parameters over a fresh 2-slave cluster.
func ruleEngine(t *testing.T, ruleParams string) (*hadoopsim.Cluster, *core.Engine) {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, simEnv(c), `
[sadc]
id = s0
node = slave01
period = 1

[rule]
id = r
`+ruleParams+`
input[in] = s0.output0

[print]
id = p
input[x] = @r
`)
	return c, e
}

func TestRuleModuleFiresOnMaxThreshold(t *testing.T) {
	// An absurdly low max: every sample alarms.
	c, e := ruleEngine(t, "metric = cpu_busy_pct\nmax = 0.0001\n")
	runSim(t, c, e, 10)
	out := e.OutputPortsOf("r")[0]
	if out.Published() == 0 {
		t.Fatal("rule published nothing")
	}
	if s, _ := out.Last(); s.Scalar() != 1 {
		t.Errorf("low max should fire: flag = %v", s.Scalar())
	}
}

func TestRuleModuleQuietBelowMax(t *testing.T) {
	c, e := ruleEngine(t, "metric = cpu_busy_pct\nmax = 1e12\n")
	runSim(t, c, e, 10)
	s, ok := e.OutputPortsOf("r")[0].Last()
	if !ok {
		t.Fatal("rule published nothing")
	}
	if s.Scalar() != 0 {
		t.Errorf("high max should not fire: flag = %v", s.Scalar())
	}
}

func TestRuleModuleMinBound(t *testing.T) {
	c, e := ruleEngine(t, "metric = mem_total_kb\nmin = 1e12\n")
	runSim(t, c, e, 5)
	s, ok := e.OutputPortsOf("r")[0].Last()
	if !ok || s.Scalar() != 1 {
		t.Errorf("min bound above MemTotal should fire, got %v %v", s, ok)
	}
}

func TestRuleModuleNumericMetricIndex(t *testing.T) {
	idxs, err := sadc.NodeMetricIndexes([]string{"cpu_busy_pct"})
	if err != nil {
		t.Fatal(err)
	}
	c, e := ruleEngine(t, "metric = "+strconv.Itoa(idxs[0])+"\nmax = 0.0001\n")
	runSim(t, c, e, 5)
	s, ok := e.OutputPortsOf("r")[0].Last()
	if !ok || s.Scalar() != 1 {
		t.Errorf("numeric metric index should work: %v %v", s, ok)
	}
}

func TestRuleModuleConfigErrors(t *testing.T) {
	env := NewEnv()
	reg := NewRegistry(env)
	reg.Register("alarmsource", func() core.Module { return &alarmSource{} })
	for _, cfgText := range []string{
		"[rule]\nid=r\nmax=1\ninput[x]=src.alarm0\n",                      // missing metric
		"[rule]\nid=r\nmetric=nope\nmax=1\ninput[x]=src.alarm0\n",         // unknown metric
		"[rule]\nid=r\nmetric=cpu_busy_pct\ninput[x]=src.alarm0\n",        // no bounds
		"[rule]\nid=r\nmetric=cpu_busy_pct\nmax=1\n",                      // no inputs
		"[rule]\nid=r\nmetric=cpu_busy_pct\nmax=x\ninput[x]=src.alarm0\n", // junk bound
	} {
		cfg, err := config.ParseString("[alarmsource]\nid=src\n\n" + cfgText)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.NewEngine(reg, cfg); err == nil {
			t.Errorf("config %q should fail", cfgText)
		}
	}
}
