package modules

import (
	"fmt"
	"sync"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/hierarchy"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/sadc"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// The root side of the hierarchical collection plane: a multi-node
// collection instance can delegate contiguous node-index ranges to
// asdf-shardd leader processes via
//
//	leaders       = host1:port,host2:port
//	leader_ranges = 0-64,64-128
//
// Each leader sweeps its range locally and returns a merged per-tick
// partial; the root re-merges partials into the same per-node scratch the
// direct fetch path fills, by node index, so the publish loop — and
// therefore sink output — is byte-identical to the single-process
// configuration. Undelegated indexes keep their direct per-daemon
// connections (their addrs entries stay real; delegated entries are "-"),
// so one instance can mix direct and delegated ranges.
//
// The root→leader hop follows the instance's wire parameter: JSON sweeps
// (one request/response per tick) or the columnar stream counterpart —
// including subscribe mode — with the same permanent per-leader JSON
// fallback the per-daemon columnar sources use. Each leader connection is a
// managed client: a dead leader trips a breaker and surfaces per-tick
// errors for its whole range, so it degrades exactly like a dead node —
// feeding the same supervisor failure budget, quarantine, degrade gap-fill,
// and adaptive-controller observations — and its breaker state persists
// through -state-file like any daemon's.

// errNoPartial is the synthesized per-node error for a range index the
// leader's columnar partial carried no row for (the node failed at the
// leader; the JSON hop ships the real error string instead).
type errNoPartial struct {
	addr string
	node int
}

func (e *errNoPartial) Error() string {
	return fmt.Sprintf("leader %s: no record for node index %d this tick", e.addr, e.node)
}

// parseHierParams reads the leaders / leader_ranges parameters. Both are
// absent (nil result) or both present, parallel, with valid in-bounds
// non-overlapping ranges; delegation requires mode = rpc.
func parseHierParams(cfg *config.Instance, module, mode string, n int) ([]string, []hierarchy.Range, error) {
	addrs := splitList(cfg.StringParam("leaders", ""))
	rangesParam := cfg.StringParam("leader_ranges", "")
	if len(addrs) == 0 {
		if rangesParam != "" {
			return nil, nil, fmt.Errorf("%s: leader_ranges without leaders", module)
		}
		return nil, nil, nil
	}
	if mode != "rpc" {
		return nil, nil, fmt.Errorf("%s: leaders requires mode = rpc", module)
	}
	ranges, err := hierarchy.ParseRanges(rangesParam, n)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", module, err)
	}
	if len(ranges) != len(addrs) {
		return nil, nil, fmt.Errorf("%s: %d leaders for %d leader_ranges", module, len(addrs), len(ranges))
	}
	return addrs, ranges, nil
}

// markDelegated flips the delegated flag for every index covered by ranges.
func markDelegated(n int, ranges []hierarchy.Range) []bool {
	if len(ranges) == 0 {
		return nil
	}
	out := make([]bool, n)
	for _, r := range ranges {
		for i := r.Start; i < r.End; i++ {
			out[i] = true
		}
	}
	return out
}

// leaderLink is one leader connection: its delegated range, managed client,
// optional columnar stream, and accounting.
type leaderLink struct {
	addr   string
	rng    hierarchy.Range
	client rpc.Caller
	stream func() ([]rpc.StreamRow, error) // nil = JSON hop only
	width  int                             // columns per node on the stream

	mu       sync.Mutex
	fellBack bool // stream hop permanently fell back to JSON
	st       LeaderStatus

	mPartials *telemetry.Counter
	mErrors   *telemetry.Counter
	mRestarts *telemetry.Counter
}

// jsonHop reports whether this tick should use the JSON sweep method.
func (link *leaderLink) jsonHop() bool {
	if link.stream == nil {
		return true
	}
	link.mu.Lock()
	defer link.mu.Unlock()
	return link.fellBack
}

func (link *leaderLink) fallBack() {
	link.mu.Lock()
	link.fellBack = true
	link.mu.Unlock()
}

// account records one fetch outcome and refreshes the link's health-derived
// fields (connection health, observed leader restarts) plus any piggybacked
// leader stats.
func (link *leaderLink) account(err error, stats *hierarchy.Stats) {
	link.mu.Lock()
	defer link.mu.Unlock()
	if err != nil {
		link.st.Errors++
		link.mErrors.Inc()
	} else {
		link.st.Partials++
		link.mPartials.Inc()
	}
	if h, ok := sourceHealth(link.client); ok {
		link.st.Health = &h
		// Reconnects counts the first connect; anything past it means the
		// root re-established the leader connection — a leader restart,
		// from this side of the hop.
		if h.Reconnects > 1 {
			if r := h.Reconnects - 1; r > link.st.Restarts {
				link.mRestarts.Add(r - link.st.Restarts)
				link.st.Restarts = r
			}
		}
	}
	if stats != nil {
		link.st.LeaderSweeps = stats.Sweeps
		link.st.LeaderNodeErrors = stats.NodeErrors
		link.st.LeaderOpenBreakers = stats.OpenBreakers
	}
}

// leaderSet is a collection instance's delegation plane: every leader link
// plus the instance-level telemetry.
type leaderSet struct {
	id    string
	links []*leaderLink

	mConnected *telemetry.Gauge
	mMergeWait *telemetry.Histogram
}

// newLeaderSet dials every leader and, under wire = columnar, opens the
// range's partial stream (lazily; a leader that turns out not to speak the
// stream protocol falls back to the JSON sweep per link, permanently).
func newLeaderSet(env *Env, id string, nodes, addrs []string, ranges []hierarchy.Range,
	rp config.ResilienceParams, wp wireParams, streamMethod string, width int) (*leaderSet, error) {
	ls := &leaderSet{id: id}
	if reg := env.Metrics; reg != nil {
		il := telemetry.L("instance", id)
		ls.mConnected = reg.Gauge("asdf_hier_leaders_connected",
			"Shard leaders with a live connection, by instance.", il)
		ls.mMergeWait = reg.Histogram("asdf_hier_merge_wait_seconds",
			"Gap between the first and last leader partial arriving in one tick.",
			telemetry.DefBuckets, il)
	}
	for i, addr := range addrs {
		client, err := env.dial(addr, "asdf-root", rp)
		if err != nil {
			return nil, fmt.Errorf("dial leader %s: %w", addr, err)
		}
		link := &leaderLink{
			addr:   addr,
			rng:    ranges[i],
			client: client,
			width:  width,
		}
		link.st = LeaderStatus{
			Addr:  addr,
			Range: ranges[i].String(),
			Nodes: ranges[i].Len(),
		}
		if wp.columnar {
			if so, ok := client.(streamOpener); ok {
				req := hierarchy.StreamRequest{Nodes: nodes[ranges[i].Start:ranges[i].End]}
				if link.stream, err = wp.open(so, streamMethod, req); err != nil {
					return nil, fmt.Errorf("leader %s: %w", addr, err)
				}
			}
		}
		if reg := env.Metrics; reg != nil {
			il := telemetry.L("instance", id)
			ll := telemetry.L("leader", addr)
			link.mPartials = reg.Counter("asdf_hier_partials_total",
				"Per-tick range partials merged from this leader.", il, ll)
			link.mErrors = reg.Counter("asdf_hier_sweep_errors_total",
				"Failed leader sweep fetches.", il, ll)
			link.mRestarts = reg.Counter("asdf_hier_leader_restarts_total",
				"Leader connection re-establishments after the first connect.", il, ll)
		}
		ls.links = append(ls.links, link)
	}
	return ls, nil
}

// clients exposes the leader connections for breaker counting and
// crash-safe export/import beside the instance's per-daemon clients.
func (ls *leaderSet) clients() []rpc.Caller {
	out := make([]rpc.Caller, len(ls.links))
	for i, link := range ls.links {
		out[i] = link.client
	}
	return out
}

// healths reports per-leader connection health, keyed "leader:<addr>" so
// the rows land in the instance's breaker table beside its direct nodes.
func (ls *leaderSet) healths(out map[string]rpc.Health) {
	for _, link := range ls.links {
		if h, ok := sourceHealth(link.client); ok {
			out["leader:"+link.addr] = h
		}
	}
}

// statuses snapshots the per-leader accounting for the status surface.
func (ls *leaderSet) statuses() []LeaderStatus {
	out := make([]LeaderStatus, len(ls.links))
	for i, link := range ls.links {
		link.mu.Lock()
		st := link.st
		st.Wire = "json"
		if link.stream != nil && !link.fellBack {
			st.Wire = "columnar"
		}
		link.mu.Unlock()
		if h, ok := sourceHealth(link.client); ok {
			st.Health = &h
		}
		out[i] = st
	}
	return out
}

// fetch runs do against every link concurrently, accounts the outcomes, and
// observes the merge wait (the spread between the first and last partial)
// plus the connected gauge.
func (ls *leaderSet) fetch(do func(link *leaderLink) (*hierarchy.Stats, error)) {
	start := time.Now()
	done := make([]time.Duration, len(ls.links))
	var wg sync.WaitGroup
	wg.Add(len(ls.links))
	for i, link := range ls.links {
		go func(i int, link *leaderLink) {
			defer wg.Done()
			stats, err := do(link)
			done[i] = time.Since(start)
			link.account(err, stats)
		}(i, link)
	}
	wg.Wait()
	if len(ls.links) >= 2 {
		minDone, maxDone := done[0], done[0]
		for _, d := range done[1:] {
			if d < minDone {
				minDone = d
			}
			if d > maxDone {
				maxDone = d
			}
		}
		ls.mMergeWait.Observe((maxDone - minDone).Seconds())
	}
	connected := 0
	for _, link := range ls.links {
		if h, ok := sourceHealth(link.client); ok && h.Connected {
			connected++
		}
	}
	ls.mConnected.Set(float64(connected))
}

// sweepSadc fetches every delegated range's partial and merges it into the
// sadc module's per-node scratch. A failed leader fetch marks its whole
// range errored, so the publish loop skips it exactly as it skips dead
// direct nodes.
func (ls *leaderSet) sweepSadc(recs []*sadc.Record, errs []error) {
	ls.fetch(func(link *leaderLink) (*hierarchy.Stats, error) {
		stats, err := link.fetchSadc(recs, errs)
		if err != nil {
			for i := link.rng.Start; i < link.rng.End; i++ {
				recs[i], errs[i] = nil, fmt.Errorf("leader %s: %w", link.addr, err)
			}
		}
		return stats, err
	})
}

func (link *leaderLink) fetchSadc(recs []*sadc.Record, errs []error) (*hierarchy.Stats, error) {
	if !link.jsonHop() {
		rows, err := link.stream()
		switch {
		case err == nil:
			return nil, link.decodeSadcRows(rows, recs, errs)
		case rpc.IsStreamUnsupported(err):
			link.fallBack()
		default:
			return nil, err
		}
	}
	var resp hierarchy.SadcSweepResponse
	if err := link.client.Call(hierarchy.MethodSadcSweep, nil, &resp); err != nil {
		return nil, err
	}
	if len(resp.Records) != link.rng.Len() {
		return nil, fmt.Errorf("%d records for a %d-node range", len(resp.Records), link.rng.Len())
	}
	for j, r := range resp.Records {
		i := link.rng.Start + j
		if r.Err != "" {
			recs[i], errs[i] = nil, fmt.Errorf("leader %s: %s", link.addr, r.Err)
			continue
		}
		recs[i] = &sadc.Record{Warmup: r.Warmup, Node: r.Node}
		errs[i] = nil
	}
	stats := resp.Stats
	return &stats, nil
}

// decodeSadcRows merges a columnar partial: one row per node, tagged with
// its range offset in the leading node-index column. Indexes with no row
// get a synthesized error — the node failed at the leader.
func (link *leaderLink) decodeSadcRows(rows []rpc.StreamRow, recs []*sadc.Record, errs []error) error {
	n := link.rng.Len()
	seen := make([]bool, n)
	for _, row := range rows {
		gi, err := link.rowNode(row)
		if err != nil {
			return err
		}
		if seen[gi] {
			return fmt.Errorf("duplicate row for node index %d", link.rng.Start+gi)
		}
		seen[gi] = true
		i := link.rng.Start + gi
		recs[i] = &sadc.Record{
			Time:   time.Unix(0, row.TimeNanos).UTC(),
			Warmup: row.Warmup,
			Node:   append([]float64(nil), row.Values[1:]...),
		}
		errs[i] = nil
	}
	for gi, ok := range seen {
		if !ok {
			i := link.rng.Start + gi
			recs[i], errs[i] = nil, &errNoPartial{addr: link.addr, node: i}
		}
	}
	return nil
}

// sweepLog fetches every delegated range's log partial into the hadoop_log
// module's per-node scratch. Leader failure marks the range errored — which
// the sync stage treats as "no new vectors", the same as a dead node.
func (ls *leaderSet) sweepLog(fetched [][]hadooplog.StateVector, errs []error) {
	ls.fetch(func(link *leaderLink) (*hierarchy.Stats, error) {
		stats, err := link.fetchLog(fetched, errs)
		if err != nil {
			for i := link.rng.Start; i < link.rng.End; i++ {
				fetched[i], errs[i] = nil, fmt.Errorf("leader %s: %w", link.addr, err)
			}
		}
		return stats, err
	})
}

func (link *leaderLink) fetchLog(fetched [][]hadooplog.StateVector, errs []error) (*hierarchy.Stats, error) {
	if !link.jsonHop() {
		rows, err := link.stream()
		switch {
		case err == nil:
			return nil, link.decodeLogRows(rows, fetched, errs)
		case rpc.IsStreamUnsupported(err):
			link.fallBack()
		default:
			return nil, err
		}
	}
	var resp hierarchy.LogSweepResponse
	if err := link.client.Call(hierarchy.MethodLogSweep, nil, &resp); err != nil {
		return nil, err
	}
	if len(resp.Nodes) != link.rng.Len() {
		return nil, fmt.Errorf("%d nodes for a %d-node range", len(resp.Nodes), link.rng.Len())
	}
	for j, ln := range resp.Nodes {
		i := link.rng.Start + j
		if ln.Err != "" {
			fetched[i], errs[i] = nil, fmt.Errorf("leader %s: %s", link.addr, ln.Err)
			continue
		}
		errs[i] = nil
		if len(ln.Vectors) == 0 {
			fetched[i] = nil
			continue
		}
		vecs := make([]hadooplog.StateVector, len(ln.Vectors))
		for k, v := range ln.Vectors {
			vecs[k] = hadooplog.StateVector{Time: v.Time, Counts: v.Counts}
		}
		fetched[i] = vecs
	}
	stats := resp.Stats
	return &stats, nil
}

// decodeLogRows merges a columnar log partial: one row per finalized
// vector, tagged with its node offset, appended in frame order (the leader
// emits each node's vectors in time order). A node with no rows simply has
// no new vectors this tick — per-node fetch errors don't cross the columnar
// hop, and don't need to: the sync stage treats both identically.
func (link *leaderLink) decodeLogRows(rows []rpc.StreamRow, fetched [][]hadooplog.StateVector, errs []error) error {
	for i := link.rng.Start; i < link.rng.End; i++ {
		fetched[i], errs[i] = nil, nil
	}
	for _, row := range rows {
		gi, err := link.rowNode(row)
		if err != nil {
			return err
		}
		i := link.rng.Start + gi
		fetched[i] = append(fetched[i], hadooplog.StateVector{
			Time:   time.Unix(0, row.TimeNanos).UTC(),
			Counts: append([]float64(nil), row.Values[1:]...),
		})
	}
	return nil
}

// rowNode validates a partial row's shape and returns its node offset
// within the range, read from the leading node-index column.
func (link *leaderLink) rowNode(row rpc.StreamRow) (int, error) {
	if len(row.Present) != 1 || !row.Present[0] {
		return 0, fmt.Errorf("partial row has %d groups, want the 1 partial group present", len(row.Present))
	}
	if len(row.Values) != 1+link.width {
		return 0, fmt.Errorf("partial row has %d columns, want %d", len(row.Values), 1+link.width)
	}
	f := row.Values[0]
	gi := int(f)
	if float64(gi) != f || gi < 0 || gi >= link.rng.Len() {
		return 0, fmt.Errorf("partial row node index %v outside the %d-node range", f, link.rng.Len())
	}
	return gi, nil
}

// mergeBreakerSnaps merges leader breaker snapshots into a module's daemon
// snapshots (both keyed by address; the sets are disjoint).
func mergeBreakerSnaps(dst, src map[string]rpc.BreakerSnapshot) map[string]rpc.BreakerSnapshot {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]rpc.BreakerSnapshot, len(src))
	}
	for k, v := range src {
		dst[k] = v
	}
	return dst
}
