package modules

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/asdf-project/asdf/internal/core"
)

// printModule writes received samples to the Env's alarm writer (§3.4: the
// paper's configuration terminates both pipelines in print instances named
// BlackBoxAlarm / DataNodeAlarm).
//
// Parameters:
//
//	label        = <prefix>      (default: the instance id)
//	only_nonzero = true|false    (default true: print a sample only when its
//	                              first value is nonzero — the alarm-flag
//	                              convention of the analysis modules, whose
//	                              samples are [flag, score])
//	counters     = true|false    (default false: at flush, also emit the
//	                              engine's supervisor/breaker/sync counters,
//	                              so the trace records collection-plane
//	                              degradation alongside the alarms it may
//	                              have caused)
//
// Gap-fill substitutes published for a quarantined upstream are tagged
// `degraded=1` so alarm lines raised on synthetic data are recognizable.
type printModule struct {
	env         *Env
	label       string
	onlyNonzero bool
	counters    bool
	// Printed counts emitted lines, for tests and overhead accounting.
	printed uint64
}

func (m *printModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	m.label = cfg.StringParam("label", ctx.ID())
	var err error
	if m.onlyNonzero, err = cfg.BoolParam("only_nonzero", true); err != nil {
		return err
	}
	if m.counters, err = cfg.BoolParam("counters", false); err != nil {
		return err
	}
	if len(ctx.Inputs()) == 0 {
		return fmt.Errorf("print: requires at least one input")
	}
	return nil
}

func (m *printModule) Run(ctx *core.RunContext) error {
	w := m.env.alarmWriter()
	for _, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			if m.onlyNonzero && s.Scalar() == 0 {
				continue
			}
			origin := in.Origin()
			degraded := ""
			if s.Degraded {
				degraded = " degraded=1"
			}
			fmt.Fprintf(w, "[%s] %s node=%s source=%s values=%s%s\n",
				m.label, s.Time.Format("2006-01-02 15:04:05"),
				origin.Node, origin.Source, formatValues(s.Values), degraded)
			m.printed++
		}
	}
	if m.counters && ctx.Reason == core.RunFlush {
		m.printCounters(w, ctx)
	}
	return nil
}

// printCounters emits one line per instance with its supervisor counters,
// plus sync and per-node breaker lines for the collection modules.
func (m *printModule) printCounters(w io.Writer, ctx *core.RunContext) {
	rep := CollectStatus(ctx, ctx.Now)
	for _, ih := range rep.Instances {
		fmt.Fprintf(w, "[%s] counters instance=%s state=%s failures=%d panics=%d timeouts=%d errors=%d quarantines=%d readmissions=%d gapfills=%d\n",
			m.label, ih.ID, ih.State, ih.TotalFailures, ih.Panics, ih.Timeouts,
			ih.Errors, ih.Quarantines, ih.Readmissions, ih.GapFills)
	}
	for _, id := range sortedKeys(rep.Sync) {
		sc := rep.Sync[id]
		fmt.Fprintf(w, "[%s] counters instance=%s sync partial=%d dropped=%d missing=%s\n",
			m.label, id, sc.Partial, sc.Dropped, formatNodeCounts(sc.MissingByNode))
	}
	for _, id := range sortedKeys(rep.Breakers) {
		nodes := rep.Breakers[id]
		for _, node := range sortedKeys(nodes) {
			h := nodes[node]
			fmt.Fprintf(w, "[%s] counters instance=%s breaker node=%s state=%s failures=%d reconnects=%d\n",
				m.label, id, node, h.State, h.TotalFailures, h.Reconnects)
		}
	}
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// counter output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatNodeCounts renders per-node counters as node:count,... in node
// order ("-" when empty).
func formatNodeCounts(m map[string]uint64) string {
	if len(m) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(m))
	for _, k := range sortedKeys(m) {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, ",")
}

func formatValues(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', 6, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

var _ core.Module = (*printModule)(nil)

// csvModule logs every received sample to a CSV file, supporting ASDF's
// offline data-collection role (§2.1: "effectively turning itself into a
// data-collection and data-logging engine").
//
// Parameters:
//
//	path     = <file>        (required)
//	counters = true|false    (default false: at flush, also write the
//	                          engine's supervisor/breaker/sync counters as
//	                          rows with source=asdf_counters, so the trace
//	                          records collection-plane degradation alongside
//	                          the data it may have affected)
//
// The values column of a gap-fill substitute row ends in ";degraded".
type csvModule struct {
	file     *os.File
	w        *bufio.Writer
	counters bool
	rows     uint64
}

func (m *csvModule) Init(ctx *core.InitContext) error {
	path := ctx.Config().StringParam("path", "")
	if path == "" {
		return errMissingParam("csv", "path")
	}
	var err error
	if m.counters, err = ctx.Config().BoolParam("counters", false); err != nil {
		return err
	}
	if len(ctx.Inputs()) == 0 {
		return fmt.Errorf("csv: requires at least one input")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	m.file = f
	m.w = bufio.NewWriter(f)
	if _, err := m.w.WriteString("time,node,source,output,values\n"); err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	return nil
}

func (m *csvModule) Run(ctx *core.RunContext) error {
	for _, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			origin := in.Origin()
			vals := make([]string, len(s.Values), len(s.Values)+1)
			for i, v := range s.Values {
				vals[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			if s.Degraded {
				vals = append(vals, "degraded")
			}
			_, err := fmt.Fprintf(m.w, "%s,%s,%s,%s,%s\n",
				s.Time.Format("2006-01-02T15:04:05"),
				origin.Node, origin.Source, in.SourceOutput(),
				strings.Join(vals, ";"))
			if err != nil {
				return fmt.Errorf("csv: %w", err)
			}
			m.rows++
		}
	}
	if m.counters && ctx.Reason == core.RunFlush {
		if err := m.writeCounters(ctx); err != nil {
			return err
		}
	}
	if ctx.Reason == core.RunFlush {
		if err := m.w.Flush(); err != nil {
			return fmt.Errorf("csv: flush: %w", err)
		}
		if err := m.file.Sync(); err != nil {
			return fmt.Errorf("csv: sync: %w", err)
		}
	}
	return nil
}

// writeCounters appends the engine's health counters as CSV rows keyed by
// source=asdf_counters: supervisor state/failure counters per instance,
// sync counters per synchronizing collector, and per-node breaker state.
// The schema matches the data rows: time,node,source,output,values, with
// node carrying the instance id (suffixed :node for breaker rows).
func (m *csvModule) writeCounters(ctx *core.RunContext) error {
	rep := CollectStatus(ctx, ctx.Now)
	ts := ctx.Now.Format("2006-01-02T15:04:05")
	row := func(node, output string, vals ...uint64) error {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = strconv.FormatUint(v, 10)
		}
		_, err := fmt.Fprintf(m.w, "%s,%s,asdf_counters,%s,%s\n",
			ts, node, output, strings.Join(parts, ";"))
		if err != nil {
			return fmt.Errorf("csv: %w", err)
		}
		m.rows++
		return nil
	}
	for _, ih := range rep.Instances {
		if err := row(ih.ID, "supervisor_"+ih.State.String(),
			ih.TotalFailures, ih.Panics, ih.Timeouts, ih.Errors,
			ih.Quarantines, ih.Readmissions, ih.GapFills); err != nil {
			return err
		}
	}
	for _, id := range sortedKeys(rep.Sync) {
		sc := rep.Sync[id]
		if err := row(id, "sync", sc.Partial, sc.Dropped); err != nil {
			return err
		}
		for _, node := range sortedKeys(sc.MissingByNode) {
			if err := row(id+":"+node, "sync_missing", sc.MissingByNode[node]); err != nil {
				return err
			}
		}
	}
	for _, id := range sortedKeys(rep.Breakers) {
		nodes := rep.Breakers[id]
		for _, node := range sortedKeys(nodes) {
			h := nodes[node]
			if err := row(id+":"+node, "breaker_"+h.State.String(),
				h.TotalFailures, h.Reconnects); err != nil {
				return err
			}
		}
	}
	return nil
}

var _ core.Module = (*csvModule)(nil)
