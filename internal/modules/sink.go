package modules

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/asdf-project/asdf/internal/core"
)

// printModule writes received samples to the Env's alarm writer (§3.4: the
// paper's configuration terminates both pipelines in print instances named
// BlackBoxAlarm / DataNodeAlarm).
//
// Parameters:
//
//	label        = <prefix>      (default: the instance id)
//	only_nonzero = true|false    (default true: print a sample only when its
//	                              first value is nonzero — the alarm-flag
//	                              convention of the analysis modules, whose
//	                              samples are [flag, score])
type printModule struct {
	env         *Env
	label       string
	onlyNonzero bool
	// Printed counts emitted lines, for tests and overhead accounting.
	printed uint64
}

func (m *printModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	m.label = cfg.StringParam("label", ctx.ID())
	var err error
	if m.onlyNonzero, err = cfg.BoolParam("only_nonzero", true); err != nil {
		return err
	}
	if len(ctx.Inputs()) == 0 {
		return fmt.Errorf("print: requires at least one input")
	}
	return nil
}

func (m *printModule) Run(ctx *core.RunContext) error {
	w := m.env.alarmWriter()
	for _, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			if m.onlyNonzero && s.Scalar() == 0 {
				continue
			}
			origin := in.Origin()
			fmt.Fprintf(w, "[%s] %s node=%s source=%s values=%s\n",
				m.label, s.Time.Format("2006-01-02 15:04:05"),
				origin.Node, origin.Source, formatValues(s.Values))
			m.printed++
		}
	}
	return nil
}

func formatValues(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', 6, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

var _ core.Module = (*printModule)(nil)

// csvModule logs every received sample to a CSV file, supporting ASDF's
// offline data-collection role (§2.1: "effectively turning itself into a
// data-collection and data-logging engine").
//
// Parameters:
//
//	path = <file>   (required)
type csvModule struct {
	file *os.File
	w    *bufio.Writer
	rows uint64
}

func (m *csvModule) Init(ctx *core.InitContext) error {
	path := ctx.Config().StringParam("path", "")
	if path == "" {
		return errMissingParam("csv", "path")
	}
	if len(ctx.Inputs()) == 0 {
		return fmt.Errorf("csv: requires at least one input")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	m.file = f
	m.w = bufio.NewWriter(f)
	if _, err := m.w.WriteString("time,node,source,output,values\n"); err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	return nil
}

func (m *csvModule) Run(ctx *core.RunContext) error {
	for _, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			origin := in.Origin()
			vals := make([]string, len(s.Values))
			for i, v := range s.Values {
				vals[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			_, err := fmt.Fprintf(m.w, "%s,%s,%s,%s,%s\n",
				s.Time.Format("2006-01-02T15:04:05"),
				origin.Node, origin.Source, in.SourceOutput(),
				strings.Join(vals, ";"))
			if err != nil {
				return fmt.Errorf("csv: %w", err)
			}
			m.rows++
		}
	}
	if ctx.Reason == core.RunFlush {
		if err := m.w.Flush(); err != nil {
			return fmt.Errorf("csv: flush: %w", err)
		}
		if err := m.file.Sync(); err != nil {
			return fmt.Errorf("csv: sync: %w", err)
		}
	}
	return nil
}

var _ core.Module = (*csvModule)(nil)
