package modules

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/sadc"
)

// delayedSadcCaller simulates a collection daemon one network round trip
// away: each call sleeps for the configured latency, then returns a canned
// record. Latency-bound concurrency gains show up even on a single CPU.
type delayedSadcCaller struct {
	delay time.Duration
	rec   sadc.Record
}

func (c *delayedSadcCaller) Call(method string, params, result any) error {
	time.Sleep(c.delay)
	if rec, ok := result.(*sadc.Record); ok {
		*rec = c.rec
	}
	return nil
}

func (c *delayedSadcCaller) Close() error { return nil }

// BenchmarkCollectionShards measures per-tick collection latency at
// simulated-cluster scale: one multi-node sadc instance polling daemons
// with a fixed 500µs per-RPC latency, swept by a single shard (the
// pre-sharding path, default fanout of 16) versus eight shards of 16
// workers each. Per-tick latency is latency-bound — nodes/(shards×fanout)
// round trips — so the sharded sweep must show a multiple-x win at 512
// nodes. The mode=... suffix is stripped by the CI benchstat step to
// produce the serial-vs-sharded comparison.
func BenchmarkCollectionShards(b *testing.B) {
	const rpcLatency = 500 * time.Microsecond
	for _, nodes := range []int{128, 512, 1024} {
		for _, mode := range []struct {
			name                string
			shards, shardFanout int
		}{{"serial", 1, 0}, {"sharded", 8, 16}} {
			b.Run(fmt.Sprintf("nodes=%d/mode=%s", nodes, mode.name), func(b *testing.B) {
				names := make([]string, nodes)
				addrs := make([]string, nodes)
				for i := range names {
					names[i] = fmt.Sprintf("n%04d", i)
					addrs[i] = fmt.Sprintf("10.0.0.%d:9999", i)
				}
				env := NewEnv()
				env.Dial = func(addr, client string) (rpc.Caller, error) {
					return &delayedSadcCaller{
						delay: rpcLatency,
						rec:   sadc.Record{Node: make([]float64, 64)},
					}, nil
				}
				cfgText := fmt.Sprintf(
					"[sadc]\nid = collect\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1s\nshards = %d\nshard_fanout = %d\n",
					strings.Join(names, ","), strings.Join(addrs, ","), mode.shards, mode.shardFanout)
				file, err := config.ParseString(cfgText)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := core.NewEngine(NewRegistry(env), file)
				if err != nil {
					b.Fatal(err)
				}
				start := time.Unix(1_700_000_000, 0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.Tick(start.Add(time.Duration(i+1) * time.Second)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCollectionFanout measures the per-tick collection latency of one
// multi-node sadc instance polling simulated daemons with a fixed 500µs
// per-RPC latency, serial (fanout=1) versus the bounded worker pool
// (fanout=0, i.e. min(16, nodes)). The mode=... suffix is stripped by the
// CI benchstat step to produce the serial-vs-parallel comparison.
func BenchmarkCollectionFanout(b *testing.B) {
	const rpcLatency = 500 * time.Microsecond
	for _, nodes := range []int{8, 32, 128} {
		for _, mode := range []struct {
			name   string
			fanout int
		}{{"serial", 1}, {"parallel", 0}} {
			b.Run(fmt.Sprintf("nodes=%d/mode=%s", nodes, mode.name), func(b *testing.B) {
				names := make([]string, nodes)
				addrs := make([]string, nodes)
				for i := range names {
					names[i] = fmt.Sprintf("n%03d", i)
					addrs[i] = fmt.Sprintf("10.0.0.%d:9999", i)
				}
				env := NewEnv()
				env.Dial = func(addr, client string) (rpc.Caller, error) {
					return &delayedSadcCaller{
						delay: rpcLatency,
						rec:   sadc.Record{Node: make([]float64, 64)},
					}, nil
				}
				cfgText := fmt.Sprintf(
					"[sadc]\nid = collect\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1s\nfanout = %d\n",
					strings.Join(names, ","), strings.Join(addrs, ","), mode.fanout)
				file, err := config.ParseString(cfgText)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := core.NewEngine(NewRegistry(env), file)
				if err != nil {
					b.Fatal(err)
				}
				start := time.Unix(1_700_000_000, 0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.Tick(start.Add(time.Duration(i+1) * time.Second)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
