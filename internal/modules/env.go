// Package modules implements ASDF's fpt-core plug-in modules: the sadc and
// hadoop_log data-collection modules, the mavgvec/knn/ibuffer processing
// modules, the analysis_bb and analysis_wb fingerpointers, and the print
// and csv sinks (§3.5, §3.6).
//
// Modules obtain their external resources — /proc providers, Hadoop log
// buffers, RPC endpoints — through an Env, so the same configuration wiring
// works against an in-process simulated cluster or remote collection
// daemons.
package modules

import (
	"fmt"
	"io"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/procfs"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// Env supplies the external resources modules refer to by node name in
// their configuration sections.
type Env struct {
	// Procfs maps node name to its /proc provider (local collection mode).
	Procfs map[string]procfs.Provider
	// TTLogs and DNLogs map node name to its TaskTracker / DataNode log
	// buffer (local collection mode).
	TTLogs map[string]*hadooplog.Buffer
	DNLogs map[string]*hadooplog.Buffer
	// AlarmWriter receives print-module output; nil means io.Discard.
	AlarmWriter io.Writer
	// Dial opens an RPC client (remote collection mode); nil means a
	// supervised rpc.ManagedClient built from RPCOptions, which dials
	// lazily, reconnects with backoff, and trips a per-node circuit
	// breaker — a dead daemon surfaces as per-iteration errors through
	// the engine's error handler instead of killing the collector.
	Dial func(addr, client string) (rpc.Caller, error)
	// RPCOptions are the default resilience settings for managed
	// connections; per-instance configuration parameters
	// (reconnect_backoff, call_timeout, breaker_threshold,
	// breaker_cooldown) override individual fields.
	RPCOptions rpc.Options
	// Clock supplies "now" for log flushing; defaults to time.Now. The
	// offline evaluation harness injects virtual time.
	Clock func() time.Time
	// DefaultShards and DefaultShardFanout are environment-level defaults
	// for the multi-node collection modules' shards / shard_fanout
	// parameters (cmd/asdf's -shards / -shard-fanout flags). Instance
	// parameters override; zero keeps a single shard whose fanout budget
	// is the instance's fanout parameter.
	DefaultShards      int
	DefaultShardFanout int
	// DefaultWire is the environment-level default for the rpc-mode
	// collection modules' wire parameter (cmd/asdf's -wire flag): "json"
	// (or empty) keeps the JSON request/response path, "columnar" opens
	// delta-encoded metric streams. Instance parameters override; the
	// default is ignored by local-mode instances, which have no wire.
	DefaultWire string
	// Metrics, when non-nil, registers module telemetry for /metrics
	// exposition: per-node RPC connection metrics on managed clients and
	// the timestamp-sync degradation counters. Use the same registry the
	// engine was built with (core.WithTelemetry) so one scrape covers the
	// whole control node.
	Metrics *telemetry.Registry
	// Adaptive, when non-nil, is the adaptive degradation controller:
	// rpc-mode collection modules feed it per-sweep open-breaker counts,
	// and instances configured with sync_quorum = auto resolve their
	// effective quorum through it (degrade = auto instances resolve their
	// gap-fill policy through the same controller via the engine's
	// core.WithDegradeResolver option). Nil keeps strict behaviour.
	Adaptive *AdaptiveController
	// Actions are the named mitigations available to action modules
	// (§5 of the paper: active mitigation once a problem is detected).
	// Each maps a fingerpointed node name to a recovery step, e.g.
	// blacklisting the node at the jobtracker.
	Actions map[string]func(node string) error
}

// NewEnv returns an empty Env ready to be populated.
func NewEnv() *Env {
	return &Env{
		Procfs:  make(map[string]procfs.Provider),
		TTLogs:  make(map[string]*hadooplog.Buffer),
		DNLogs:  make(map[string]*hadooplog.Buffer),
		Actions: make(map[string]func(node string) error),
	}
}

// dial opens the client for one collection daemon. With no custom Dial
// hook, construction is lazy and never fails here: connection errors are
// reported per call (with the node address) and retried by the engine's
// periodic schedule.
func (e *Env) dial(addr, client string, p config.ResilienceParams) (rpc.Caller, error) {
	if e.Dial != nil {
		return e.Dial(addr, client)
	}
	return rpc.NewManagedClient(addr, client, e.rpcOptions(p)), nil
}

// rpcOptions merges instance-level resilience parameters over the
// environment defaults.
func (e *Env) rpcOptions(p config.ResilienceParams) rpc.Options {
	opt := e.RPCOptions
	if opt.Metrics == nil {
		opt.Metrics = e.Metrics
	}
	if opt.Clock == nil {
		// Breaker and backoff timing follow the same clock as
		// collection, so virtual-time runs stay deterministic.
		opt.Clock = e.Clock
	}
	if p.ReconnectBackoff > 0 {
		opt.ReconnectBackoff = p.ReconnectBackoff
	}
	if p.CallTimeout > 0 {
		opt.CallTimeout = p.CallTimeout
	}
	if p.BreakerThreshold > 0 {
		opt.BreakerThreshold = p.BreakerThreshold
	}
	if p.BreakerCooldown > 0 {
		opt.BreakerCooldown = p.BreakerCooldown
	}
	return opt
}

func (e *Env) now() time.Time {
	if e.Clock != nil {
		return e.Clock()
	}
	return time.Now()
}

func (e *Env) alarmWriter() io.Writer {
	if e.AlarmWriter != nil {
		return e.AlarmWriter
	}
	return io.Discard
}

// Register adds every ASDF module to the registry, bound to env.
func Register(reg *core.Registry, env *Env) {
	if env == nil {
		env = NewEnv()
	}
	reg.Register("sadc", func() core.Module { return &sadcModule{env: env} })
	reg.Register("hadoop_log", func() core.Module { return &hadoopLogModule{env: env} })
	reg.Register("mavgvec", func() core.Module { return &mavgvecModule{} })
	reg.Register("knn", func() core.Module { return &knnModule{} })
	reg.Register("ibuffer", func() core.Module { return &ibufferModule{env: env} })
	reg.Register("analysis_bb", func() core.Module { return &analysisBBModule{} })
	reg.Register("analysis_wb", func() core.Module { return &analysisWBModule{} })
	reg.Register("print", func() core.Module { return &printModule{env: env} })
	reg.Register("action", func() core.Module { return &actionModule{env: env} })
	reg.Register("rule", func() core.Module { return &ruleModule{} })
	reg.Register("csv", func() core.Module { return &csvModule{} })
}

// NewRegistry builds a registry with all ASDF modules bound to env.
func NewRegistry(env *Env) *core.Registry {
	reg := core.NewRegistry()
	Register(reg, env)
	return reg
}

// errMissingParam standardizes missing-parameter errors.
func errMissingParam(module, param string) error {
	return fmt.Errorf("%s: required parameter %q missing", module, param)
}
