package modules

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/telemetry"
)

func TestAdaptiveControllerHysteresis(t *testing.T) {
	var logged []string
	c := NewAdaptiveController(AdaptiveConfig{
		Logf: func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) },
	})

	c.ObserveBreakers("hl", 0, 10)
	if c.Tightened() {
		t.Fatal("tightened with zero open breakers")
	}
	if got := c.DegradePolicy(); got != core.DegradeSkip {
		t.Errorf("relaxed policy = %s, want skip", got)
	}
	if got := c.EffectiveQuorum("hl", 10, 0); got != 10 {
		t.Errorf("relaxed quorum = %d, want strict 10", got)
	}

	// 3/10 = 0.30 >= 0.25: tighten.
	c.ObserveBreakers("hl", 3, 10)
	if !c.Tightened() {
		t.Fatal("did not tighten at 30% open")
	}
	if got := c.DegradePolicy(); got != core.DegradeHold {
		t.Errorf("tightened policy = %s, want hold", got)
	}
	if got := c.EffectiveQuorum("hl", 10, 3); got != 7 {
		t.Errorf("tightened quorum = %d, want nodes-open = 7", got)
	}
	// Floor clamp: 8 open would leave quorum 2, but the floor is
	// ceil(0.5*10) = 5.
	if got := c.EffectiveQuorum("hl", 10, 8); got != 5 {
		t.Errorf("floored quorum = %d, want 5", got)
	}

	// 2/10 = 0.20 sits inside the hysteresis band: stays tightened.
	c.ObserveBreakers("hl", 2, 10)
	if !c.Tightened() {
		t.Fatal("hysteresis band flapped the controller")
	}

	// 1/10 = 0.10 <= 0.10: relax.
	c.ObserveBreakers("hl", 1, 10)
	if c.Tightened() {
		t.Fatal("did not relax at 10% open")
	}
	if got := c.EffectiveQuorum("hl", 10, 1); got != 10 {
		t.Errorf("relaxed quorum = %d, want strict 10", got)
	}

	joined := strings.Join(logged, "\n")
	if !strings.Contains(joined, "tightening") || !strings.Contains(joined, "relaxing") {
		t.Errorf("transitions not logged: %q", joined)
	}
}

// TestAdaptiveControllerAggregatesSources: the open fraction spans every
// observing instance, so one sick collector among many healthy ones is
// diluted.
func TestAdaptiveControllerAggregatesSources(t *testing.T) {
	c := NewAdaptiveController(AdaptiveConfig{})
	c.ObserveBreakers("hl", 3, 10) // alone: 0.30 would tighten...
	if !c.Tightened() {
		t.Fatal("sanity: single source tightens")
	}
	c.ObserveBreakers("cluster", 0, 90) // ...but the fleet is 3/100 = 0.03
	if c.Tightened() {
		t.Error("fleet-wide fraction 0.03 should relax")
	}
}

func TestAdaptiveControllerNilSafe(t *testing.T) {
	var c *AdaptiveController
	c.ObserveBreakers("hl", 5, 5) // must not panic
	if c.Tightened() {
		t.Error("nil controller tightened")
	}
	if got := c.DegradePolicy(); got != core.DegradeSkip {
		t.Errorf("nil policy = %s, want skip", got)
	}
	if got := c.EffectiveQuorum("hl", 4, 4); got != 4 {
		t.Errorf("nil quorum = %d, want strict 4", got)
	}
}

func TestAdaptiveMetricsVisible(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewAdaptiveController(AdaptiveConfig{Metrics: reg})
	c.ObserveBreakers("hl", 3, 10)
	c.EffectiveQuorum("hl", 10, 3)
	c.ObserveBreakers("hl", 0, 10)

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	scraped, err := telemetry.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"asdf_adaptive_open_breaker_fraction":      0,
		"asdf_adaptive_tightened":                  0,
		"asdf_adaptive_transitions_total":          2, // tighten then relax
		`asdf_adaptive_sync_quorum{instance="hl"}`: 7,
	} {
		got, ok := scraped[name]
		if !ok {
			t.Errorf("metric %s not exposed (scrape: %v)", name, scraped)
			continue
		}
		if got != want {
			t.Errorf("metric %s = %v, want %v", name, got, want)
		}
	}
}

// breakerToggleCaller is an unconnected caller whose reported breaker state
// the test flips at will — enough to drive countBreakers and the adaptive
// feed without real daemons.
type breakerToggleCaller struct {
	addr string
	open *bool
}

func (c *breakerToggleCaller) Call(string, any, any) error { return nil }
func (c *breakerToggleCaller) Close() error                { return nil }
func (c *breakerToggleCaller) Health() rpc.Health {
	h := rpc.Health{Addr: c.addr, State: rpc.BreakerClosed}
	if *c.open {
		h.State = rpc.BreakerOpen
	}
	return h
}

// TestSyncQuorumAutoFollowsController runs the two-node sync harness with
// sync_quorum = auto: while the controller is relaxed the §3.7 strict rule
// holds (a dead node stalls partial publishes; overdue seconds drop), and
// once the instance's open-breaker fraction tightens the controller, the
// quorum relaxes to the reporting nodes and publishes resume degraded.
func TestSyncQuorumAutoFollowsController(t *testing.T) {
	env := NewEnv()
	bufA := hadooplog.NewBuffer(0)
	bufB := hadooplog.NewBuffer(0)
	env.TTLogs["a"] = bufA
	env.TTLogs["b"] = bufB
	env.Adaptive = NewAdaptiveController(AdaptiveConfig{})

	e := mustEngine(t, env, `
[hadoop_log]
id = hl
kind = tasktracker
nodes = a,b
period = 1
sync_deadline = 2
sync_quorum = auto

[print]
id = p
input[x] = @hl
only_nonzero = false
`)
	mod, _ := e.ModuleOf("hl")
	hl := mod.(*hadoopLogModule)
	hl.sources[1] = &gatedSource{inner: hl.sources[1], open: func() bool { return false }}
	// Stand-in supervised clients: node b's breaker state is toggled below.
	bOpen := false
	hl.clients = []rpc.Caller{
		&breakerToggleCaller{addr: "127.0.0.1:9001", open: new(bool)},
		&breakerToggleCaller{addr: "127.0.0.1:9002", open: &bOpen},
	}

	wA := hadooplog.NewWriter(hadooplog.KindTaskTracker, bufA)
	base := time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	if err := wA.LaunchTask(base, hadooplog.TaskID(1, true, 0, 0)); err != nil {
		t.Fatal(err)
	}
	tick := func(from, to int) {
		t.Helper()
		for i := from; i <= to; i++ {
			if err := e.Tick(base.Add(time.Duration(i) * time.Second)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: breakers closed, controller relaxed — auto resolves to the
	// strict quorum, so the dead source only produces drops.
	tick(1, 10)
	if pub := hl.outs[0].Published(); pub != 0 {
		t.Fatalf("relaxed auto quorum published %d partial samples", pub)
	}
	if hl.DroppedTimestamps() == 0 {
		t.Fatal("deadline did not drop overdue seconds under strict auto quorum")
	}

	// Phase 2: node b's breaker opens (1/2 = 0.50 >= 0.25 tightens); the
	// effective quorum drops to the single reporting node and a's seconds
	// flow degraded.
	bOpen = true
	tick(11, 20)
	if !env.Adaptive.Tightened() {
		t.Fatal("controller did not tighten from the module's sweep feed")
	}
	if pub := hl.outs[0].Published(); pub == 0 {
		t.Fatal("tightened auto quorum still stalled the healthy node")
	}
	if hl.PartialTimestamps() == 0 {
		t.Error("degraded publishes not counted as partial")
	}

	// Phase 3: breaker closes again (0.00 <= 0.10 relaxes) — back to
	// strict: partial publishes stop climbing.
	bOpen = false
	tick(21, 22) // let the controller observe the recovery
	if env.Adaptive.Tightened() {
		t.Fatal("controller did not relax after recovery")
	}
	pubBefore, partialBefore := hl.outs[0].Published(), hl.PartialTimestamps()
	tick(23, 30)
	if pub := hl.outs[0].Published(); pub != pubBefore {
		t.Errorf("relaxed auto quorum kept publishing partially: %d -> %d", pubBefore, pub)
	}
	if hl.PartialTimestamps() != partialBefore {
		t.Errorf("partial count climbed after relax: %d -> %d", partialBefore, hl.PartialTimestamps())
	}
}
