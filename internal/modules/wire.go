package modules

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/procfs"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/sadc"
)

// Columnar stream methods served by the collection daemons. Each opens a
// per-connection metric stream carrying the same data as the JSON methods,
// delta-encoded so a steady-state tick costs a few bytes per column instead
// of a re-serialized JSON document.
const (
	// MethodSadcMetrics streams one row per tick: the node-level group plus
	// a group per requested interface and pid.
	MethodSadcMetrics = "sadc.metrics"
	// MethodHadoopLogStream streams newly finalized state vectors, one row
	// per per-second vector.
	MethodHadoopLogStream = "hadoop_log.stream"
)

// sadcStreamRequest configures a sadc.metrics stream open: which extra
// metric groups to carry, and the node name echoed into the schema so
// operators can attribute a stream from either end.
type sadcStreamRequest struct {
	Node   string   `json:"node,omitempty"`
	Ifaces []string `json:"ifaces,omitempty"`
	Pids   []int    `json:"pids,omitempty"`
}

// logStreamRequest configures a hadoop_log.stream open.
type logStreamRequest struct {
	Kind string `json:"kind"`
	Node string `json:"node,omitempty"`
}

// sadcStreamSource adapts a sadc collector to the columnar stream protocol.
// Each open gets its own collector, so the rate baseline lives with the
// stream exactly as the JSON methods keep theirs with the daemon: a
// reconnecting client re-opens the stream and re-primes with one warmup row.
type sadcStreamSource struct {
	collector *sadc.Collector
	schema    rpc.StreamSchema
	ifaces    []string
	pids      []int

	// Row scratch, reused every tick: values spans all schema columns,
	// present has one flag per group (an interface or pid missing from this
	// tick's record ships no cells and keeps its delta state untouched).
	values  []float64
	present []bool
}

func newSadcStreamSource(provider procfs.Provider, req sadcStreamRequest) *sadcStreamSource {
	groups := make([]rpc.ColumnGroup, 0, 1+len(req.Ifaces)+len(req.Pids))
	groups = append(groups, rpc.ColumnGroup{Name: "node", Columns: sadc.NodeMetricNames})
	for _, iface := range req.Ifaces {
		groups = append(groups, rpc.ColumnGroup{Name: "net:" + iface, Columns: sadc.NetMetricNames})
	}
	for _, pid := range req.Pids {
		groups = append(groups, rpc.ColumnGroup{Name: "proc:" + strconv.Itoa(pid), Columns: sadc.ProcMetricNames})
	}
	schema := rpc.StreamSchema{Method: MethodSadcMetrics, Node: req.Node, Groups: groups}
	ncols := len(sadc.NodeMetricNames) +
		len(req.Ifaces)*len(sadc.NetMetricNames) +
		len(req.Pids)*len(sadc.ProcMetricNames)
	return &sadcStreamSource{
		collector: sadc.NewCollector(provider),
		schema:    schema,
		ifaces:    req.Ifaces,
		pids:      req.Pids,
		values:    make([]float64, ncols),
		present:   make([]bool, len(groups)),
	}
}

func (s *sadcStreamSource) Schema() rpc.StreamSchema { return s.schema }

func (s *sadcStreamSource) Collect(fw *rpc.FrameWriter) error {
	rec, err := s.collector.Collect()
	if err != nil {
		return err
	}
	copy(s.values[:len(sadc.NodeMetricNames)], rec.Node)
	s.present[0] = true
	off, gi := len(sadc.NodeMetricNames), 1
	for _, iface := range s.ifaces {
		v, ok := rec.Net[iface]
		s.present[gi] = ok
		if ok {
			copy(s.values[off:off+len(sadc.NetMetricNames)], v)
		}
		off += len(sadc.NetMetricNames)
		gi++
	}
	for _, pid := range s.pids {
		v, ok := rec.Proc[pid]
		s.present[gi] = ok
		if ok {
			copy(s.values[off:off+len(sadc.ProcMetricNames)], v)
		}
		off += len(sadc.ProcMetricNames)
		gi++
	}
	fw.AppendRow(rec.Time.UnixNano(), rec.Warmup, s.present, s.values)
	return nil
}

// logStreamSource adapts a log buffer to the columnar stream protocol: one
// row per finalized per-second state vector, zero rows on a quiet tick (the
// cheapest possible frame). Each open reads the buffer through its own
// cursor and parser, so a reconnecting client replays from the start and
// the module's re-served-history guard deduplicates, same as the JSON path
// after a daemon restart.
type logStreamSource struct {
	schema rpc.StreamSchema
	src    LogSource
	now    func() time.Time
}

func (s *logStreamSource) Schema() rpc.StreamSchema { return s.schema }

func (s *logStreamSource) Collect(fw *rpc.FrameWriter) error {
	vecs, err := s.src.Fetch(s.now())
	if err != nil {
		return err
	}
	for _, v := range vecs {
		fw.AppendRow(v.Time.UnixNano(), false, nil, v.Counts)
	}
	return nil
}

// registerSadcStream exposes the columnar counterpart of the sadc JSON
// methods on srv.
func registerSadcStream(srv *rpc.Server, provider procfs.Provider) {
	srv.HandleStream(MethodSadcMetrics, func(params json.RawMessage) (rpc.StreamSource, error) {
		var req sadcStreamRequest
		if len(params) > 0 {
			if err := json.Unmarshal(params, &req); err != nil {
				return nil, err
			}
		}
		return newSadcStreamSource(provider, req), nil
	})
}

// registerHadoopLogStream exposes the columnar counterpart of
// hadoop_log.vectors on srv.
func registerHadoopLogStream(srv *rpc.Server, tt, dn *hadooplog.Buffer, now func() time.Time) {
	srv.HandleStream(MethodHadoopLogStream, func(params json.RawMessage) (rpc.StreamSource, error) {
		var req logStreamRequest
		if err := json.Unmarshal(params, &req); err != nil {
			return nil, err
		}
		var kind hadooplog.Kind
		var buf *hadooplog.Buffer
		switch req.Kind {
		case hadooplog.KindTaskTracker.String():
			kind, buf = hadooplog.KindTaskTracker, tt
		case hadooplog.KindDataNode.String():
			kind, buf = hadooplog.KindDataNode, dn
		default:
			return nil, fmt.Errorf("unknown log kind %q", req.Kind)
		}
		return &logStreamSource{
			schema: rpc.StreamSchema{
				Method: MethodHadoopLogStream,
				Node:   req.Node,
				Groups: []rpc.ColumnGroup{{Name: "counts", Columns: hadooplog.MetricNamesFor(kind)}},
			},
			src: NewBufferLogSource(kind, buf),
			now: now,
		}, nil
	})
}

// streamOpener is the client surface wire = columnar needs; rpc.ManagedClient
// implements it. A custom Env.Dial hook returning a plain rpc.Caller keeps
// the JSON path.
type streamOpener interface {
	Stream(method string, params any) (*rpc.StreamClient, error)
	Subscribe(method string, params any, period time.Duration, window int) (*rpc.ManagedSubscription, error)
}

var _ streamOpener = (*rpc.ManagedClient)(nil)

// wireParams are the negotiated-upgrade knobs shared by the rpc-mode
// collection modules.
type wireParams struct {
	columnar   bool
	subscribe  bool
	pushPeriod time.Duration
	pushWindow int
}

// parseWireParams reads the wire / subscribe / push_period / push_window
// parameters for module (its config-error prefix). The env default applies
// only in rpc mode — an explicit wire = columnar on a local-mode instance
// is an error, but an environment-wide -wire columnar must not break local
// instances it cannot apply to.
func parseWireParams(cfg *config.Instance, env *Env, module, mode string) (wireParams, error) {
	var wp wireParams
	wire := cfg.StringParam("wire", "")
	explicit := wire != ""
	if !explicit {
		wire = env.DefaultWire
	}
	switch wire {
	case "", "json":
	case "columnar":
		if mode != "rpc" {
			if explicit {
				return wp, fmt.Errorf("%s: wire = columnar requires mode = rpc", module)
			}
		} else {
			wp.columnar = true
		}
	default:
		return wp, fmt.Errorf("%s: unknown wire %q (want json or columnar)", module, wire)
	}
	var err error
	if wp.subscribe, err = cfg.BoolParam("subscribe", false); err != nil {
		return wp, err
	}
	if wp.subscribe && !wp.columnar {
		return wp, fmt.Errorf("%s: subscribe = true requires wire = columnar (and mode = rpc)", module)
	}
	if wp.pushPeriod, err = cfg.DurationParam("push_period", 0); err != nil {
		return wp, err
	}
	if wp.pushWindow, err = cfg.IntParam("push_window", 1); err != nil {
		return wp, err
	}
	if (wp.pushPeriod != 0 || wp.pushWindow != 1) && !wp.subscribe {
		return wp, fmt.Errorf("%s: push_period / push_window require subscribe = true", module)
	}
	if wp.pushWindow < 1 {
		return wp, fmt.Errorf("%s: push_window must be >= 1", module)
	}
	return wp, nil
}

// open starts the stream (pull or push mode per the parameters) and returns
// the per-tick fetch function. Opening is lazy inside the managed client;
// no network happens here.
func (wp wireParams) open(client streamOpener, method string, params any) (func() ([]rpc.StreamRow, error), error) {
	if wp.subscribe {
		sub, err := client.Subscribe(method, params, wp.pushPeriod, wp.pushWindow)
		if err != nil {
			return nil, err
		}
		return sub.Fetch, nil
	}
	sc, err := client.Stream(method, params)
	if err != nil {
		return nil, err
	}
	return sc.Pull, nil
}

// columnarMetricSource reads sadc records from a columnar stream, falling
// back permanently to the JSON source the instance would otherwise use when
// the daemon predates the stream protocol. Decoded rows are copied into a
// fresh Record, since the decoder reuses row storage across ticks.
type columnarMetricSource struct {
	next     func() ([]rpc.StreamRow, error)
	fallback MetricSource
	fellBack bool
	ifaces   []string
	pids     []int
}

// NewColumnarMetricSource creates a MetricSource reading the sadc.metrics
// columnar stream for node, with fallback as the JSON path taken when the
// daemon does not speak the stream protocol.
func NewColumnarMetricSource(client streamOpener, wp wireParams, node string, ifaces []string, pids []int, fallback MetricSource) (MetricSource, error) {
	next, err := wp.open(client, MethodSadcMetrics, sadcStreamRequest{Node: node, Ifaces: ifaces, Pids: pids})
	if err != nil {
		return nil, err
	}
	return &columnarMetricSource{next: next, fallback: fallback, ifaces: ifaces, pids: pids}, nil
}

func (s *columnarMetricSource) Collect() (*sadc.Record, error) {
	if s.fellBack {
		return s.fallback.Collect()
	}
	rows, err := s.next()
	if err != nil {
		if rpc.IsStreamUnsupported(err) {
			s.fellBack = true
			return s.fallback.Collect()
		}
		return nil, err
	}
	if len(rows) != 1 {
		return nil, fmt.Errorf("sadc.metrics: %d rows per tick, want 1", len(rows))
	}
	row := rows[0]
	nNode, nNet, nProc := len(sadc.NodeMetricNames), len(sadc.NetMetricNames), len(sadc.ProcMetricNames)
	want := nNode + len(s.ifaces)*nNet + len(s.pids)*nProc
	if len(row.Values) != want || len(row.Present) != 1+len(s.ifaces)+len(s.pids) {
		return nil, fmt.Errorf("sadc.metrics: schema mismatch: %d columns / %d groups, want %d / %d",
			len(row.Values), len(row.Present), want, 1+len(s.ifaces)+len(s.pids))
	}
	rec := &sadc.Record{
		Time:   time.Unix(0, row.TimeNanos).UTC(),
		Warmup: row.Warmup,
		Node:   append([]float64(nil), row.Values[:nNode]...),
	}
	off, gi := nNode, 1
	for _, iface := range s.ifaces {
		if row.Present[gi] {
			if rec.Net == nil {
				rec.Net = make(map[string][]float64, len(s.ifaces))
			}
			rec.Net[iface] = append([]float64(nil), row.Values[off:off+nNet]...)
		}
		off += nNet
		gi++
	}
	for _, pid := range s.pids {
		if row.Present[gi] {
			if rec.Proc == nil {
				rec.Proc = make(map[int][]float64, len(s.pids))
			}
			rec.Proc[pid] = append([]float64(nil), row.Values[off:off+nProc]...)
		}
		off += nProc
		gi++
	}
	return rec, nil
}

// columnarLogSource reads state vectors from a columnar stream with the
// same permanent JSON fallback as columnarMetricSource.
type columnarLogSource struct {
	next     func() ([]rpc.StreamRow, error)
	fallback LogSource
	fellBack bool
	dims     int
}

// NewColumnarLogSource creates a LogSource reading the hadoop_log.stream
// columnar stream for node, with fallback as the JSON path taken when the
// daemon does not speak the stream protocol.
func NewColumnarLogSource(client streamOpener, wp wireParams, node string, kind hadooplog.Kind, fallback LogSource) (LogSource, error) {
	next, err := wp.open(client, MethodHadoopLogStream, logStreamRequest{Kind: kind.String(), Node: node})
	if err != nil {
		return nil, err
	}
	return &columnarLogSource{next: next, fallback: fallback, dims: hadooplog.MetricDims(kind)}, nil
}

func (s *columnarLogSource) Fetch(now time.Time) ([]hadooplog.StateVector, error) {
	if s.fellBack {
		return s.fallback.Fetch(now)
	}
	rows, err := s.next()
	if err != nil {
		if rpc.IsStreamUnsupported(err) {
			s.fellBack = true
			return s.fallback.Fetch(now)
		}
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	out := make([]hadooplog.StateVector, len(rows))
	for i, r := range rows {
		if len(r.Values) != s.dims {
			return nil, fmt.Errorf("hadoop_log.stream: %d columns, want %d", len(r.Values), s.dims)
		}
		out[i] = hadooplog.StateVector{
			Time:   time.Unix(0, r.TimeNanos).UTC(),
			Counts: append([]float64(nil), r.Values...),
		}
	}
	return out, nil
}
