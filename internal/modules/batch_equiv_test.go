package modules

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/rpc"
)

// The batched analysis plane's acceptance contract: a multi-node knn or
// mavgvec instance (nodes = N) must produce byte-identical sink output to N
// per-node instances over the same collected data — same values, same
// order, same downstream alarms — regardless of worker fanout, block size,
// or how the fleet is collected (local, sharded, columnar RPC). Run under
// -race these cases also prove the parallel kernels share no state.

// batchCollector selects how the fleet is collected for an equivalence
// case: per-node local sadc instances (the zero value), one sharded
// multi-node instance, or a columnar-wire RPC fleet with loopback daemons.
type batchCollector struct {
	shards int
	wire   string // "" = local collection; "columnar" = RPC daemons
}

// knnStage renders the classification stage and its sinks over the given
// per-node source ports: N per-node knn instances, or one batched instance
// with nodes = N and the given block size. Both forms print every
// classified state sample (the strictest byte-level view) and fan into the
// same analysis_bb + alarm sink.
func knnStage(batched bool, block int) func(names, src []string) string {
	return func(names, src []string) string {
		sigma, centroids := inlineKNNModel()
		var b strings.Builder
		states := make([]string, len(names))
		if batched {
			fmt.Fprintf(&b, "[knn]\nid = nn\nsigma = %s\ncentroids = %s\nnodes = %d\nfanout = 4\n",
				sigma, centroids, len(names))
			if block > 0 {
				fmt.Fprintf(&b, "block = %d\n", block)
			}
			for i, s := range src {
				fmt.Fprintf(&b, "input[in%d] = %s\n", i, s)
			}
			b.WriteString("\n")
			for i := range names {
				states[i] = fmt.Sprintf("nn.output%d", i)
			}
		} else {
			for i, s := range src {
				fmt.Fprintf(&b, "[knn]\nid = onenn%d\nsigma = %s\ncentroids = %s\ninput[in] = %s\n\n",
					i, sigma, centroids, s)
				states[i] = fmt.Sprintf("onenn%d.output0", i)
			}
		}
		b.WriteString("[print]\nid = states\nlabel = ST\nonly_nonzero = false\n")
		for i, s := range states {
			fmt.Fprintf(&b, "input[s%d] = %s\n", i, s)
		}
		b.WriteString("\n[analysis_bb]\nid = bb\nthreshold = 0.5\nwindow = 20\nslide = 5\nstates = 2\n")
		for i, s := range states {
			fmt.Fprintf(&b, "input[l%d] = %s\n", i, s)
		}
		b.WriteString("\n[print]\nid = BlackBoxAlarm\nlabel = BB\nonly_nonzero = false\ninput[a] = @bb\n")
		return b.String()
	}
}

// mavgvecStage renders the smoothing stage and its sinks: N per-node
// mavgvec instances, or one batched instance. Every mean and variance
// stream is printed, and the means fan into analysis_wb + alarm sink to
// cover the downstream path.
func mavgvecStage(batched bool, block int) func(names, src []string) string {
	return func(names, src []string) string {
		var b strings.Builder
		means := make([]string, len(names))
		vars_ := make([]string, len(names))
		if batched {
			fmt.Fprintf(&b, "[mavgvec]\nid = smooth\nwindow = 10\nslide = 3\nnodes = %d\nfanout = 4\n", len(names))
			if block > 0 {
				fmt.Fprintf(&b, "block = %d\n", block)
			}
			for i, s := range src {
				fmt.Fprintf(&b, "input[in%d] = %s\n", i, s)
			}
			b.WriteString("\n")
			for i := range names {
				means[i] = fmt.Sprintf("smooth.mean%d", i)
				vars_[i] = fmt.Sprintf("smooth.var%d", i)
			}
		} else {
			for i, s := range src {
				fmt.Fprintf(&b, "[mavgvec]\nid = smooth%d\nwindow = 10\nslide = 3\ninput[in] = %s\n\n", i, s)
				means[i] = fmt.Sprintf("smooth%d.output0", i)
				vars_[i] = fmt.Sprintf("smooth%d.output1", i)
			}
		}
		b.WriteString("[print]\nid = smoothed\nlabel = SM\nonly_nonzero = false\n")
		for i := range names {
			fmt.Fprintf(&b, "input[m%d] = %s\ninput[v%d] = %s\n", i, means[i], i, vars_[i])
		}
		b.WriteString("\n[analysis_wb]\nid = wb\nk = 2\nwindow = 20\nslide = 5\n")
		for i, s := range means {
			fmt.Fprintf(&b, "input[s%d] = %s\n", i, s)
		}
		b.WriteString("\n[print]\nid = SmoothAlarm\nlabel = WB\nonly_nonzero = false\ninput[a] = @wb\n")
		return b.String()
	}
}

// runBatchEquivCase drives one collection + analysis configuration over an
// identically seeded simulated cluster (CPU hog injected mid-run) and
// returns every alarm-sink byte it produced.
func runBatchEquivCase(t *testing.T, slaves int, seed int64, col batchCollector, stage func(names, src []string) string) []byte {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, slaves)
	for i, n := range c.Slaves() {
		names[i] = n.Name
	}

	var env *Env
	var b strings.Builder
	src := make([]string, slaves)
	switch {
	case col.wire != "":
		// A columnar RPC fleet: one loopback daemon per node.
		env = NewEnv()
		env.Clock = c.Now
		var addrs []string
		for _, n := range c.Slaves() {
			srv := rpc.NewServer(ServiceSadc)
			RegisterSadcServer(srv, n)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = srv.Close() })
			addrs = append(addrs, addr.String())
		}
		fmt.Fprintf(&b, "[sadc]\nid = cluster\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1\nwire = %s\n",
			strings.Join(names, ","), strings.Join(addrs, ","), col.wire)
		if col.shards > 1 {
			fmt.Fprintf(&b, "shards = %d\n", col.shards)
		}
		b.WriteString("\n")
		for i, n := range names {
			src[i] = "cluster." + n
		}
	case col.shards > 0:
		env = simEnv(c)
		fmt.Fprintf(&b, "[sadc]\nid = cluster\nnodes = %s\nperiod = 1\nshards = %d\n\n",
			strings.Join(names, ","), col.shards)
		for i, n := range names {
			src[i] = "cluster." + n
		}
	default:
		env = simEnv(c)
		for i, n := range names {
			fmt.Fprintf(&b, "[sadc]\nid = sadc%d\nnode = %s\nperiod = 1\n\n", i, n)
			src[i] = fmt.Sprintf("sadc%d.output0", i)
		}
	}
	var alarms bytes.Buffer
	env.AlarmWriter = &alarms

	b.WriteString(stage(names, src))
	e := mustEngine(t, env, b.String())
	runSim(t, c, e, 60)
	if err := c.InjectFault(1, hadoopsim.FaultCPUHog); err != nil {
		t.Fatal(err)
	}
	runSim(t, c, e, 60)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}
	return alarms.Bytes()
}

// TestBatchedAnalysisMatchesPerNode asserts the multi-node knn and mavgvec
// forms produce byte-identical sink output to per-node instance fans across
// the collection matrix, including block sizes that do not divide the node
// count (a ragged final worker block).
func TestBatchedAnalysisMatchesPerNode(t *testing.T) {
	cases := []struct {
		name   string
		stage  func(batched bool, block int) func(names, src []string) string
		slaves int
		seed   int64
		col    batchCollector
		block  int
	}{
		// 5 nodes with block 2: the last block holds a single row.
		{"knn-local-ragged-block", knnStage, 5, 1501, batchCollector{}, 2},
		// Default block (64) larger than the node count: one block total.
		{"knn-local-default-block", knnStage, 4, 1502, batchCollector{}, 0},
		// Sharded collection feeding the batched classifier; 6 % 4 != 0.
		{"knn-sharded-collection", knnStage, 6, 1503, batchCollector{shards: 2}, 4},
		// Columnar RPC fleet, sharded root, ragged block (4 % 3 != 0).
		{"knn-columnar-fleet", knnStage, 4, 1504, batchCollector{wire: "columnar", shards: 2}, 3},
		{"mavgvec-local-ragged-block", mavgvecStage, 5, 1505, batchCollector{}, 2},
		{"mavgvec-sharded-collection", mavgvecStage, 6, 1506, batchCollector{shards: 3}, 0},
		{"mavgvec-columnar-fleet", mavgvecStage, 4, 1507, batchCollector{wire: "columnar"}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			perNode := runBatchEquivCase(t, tc.slaves, tc.seed, tc.col, tc.stage(false, 0))
			if len(perNode) == 0 {
				t.Fatal("per-node run produced no sink output; the comparison would be vacuous")
			}
			batched := runBatchEquivCase(t, tc.slaves, tc.seed, tc.col, tc.stage(true, tc.block))
			if !bytes.Equal(perNode, batched) {
				t.Errorf("batched sink output differs from per-node\nper-node: %d bytes\nbatched:  %d bytes\nper-node head: %s\nbatched head:  %s",
					len(perNode), len(batched),
					firstLines(string(perNode), 3), firstLines(string(batched), 3))
			}
		})
	}
}

// TestBatchedKNNSerialWorkerEquivalence pins the fanout degree of freedom:
// one worker, many workers, and block = 1 (every row its own block) must
// all match.
func TestBatchedKNNSerialWorkerEquivalence(t *testing.T) {
	const slaves, seed = 5, 1601
	baseline := runBatchEquivCase(t, slaves, seed, batchCollector{}, knnStage(false, 0))
	if len(baseline) == 0 {
		t.Fatal("per-node baseline produced no sink output")
	}
	for _, block := range []int{1, 2, 5, 64} {
		got := runBatchEquivCase(t, slaves, seed, batchCollector{}, knnStage(true, block))
		if !bytes.Equal(baseline, got) {
			t.Errorf("block=%d: batched output differs from per-node baseline", block)
		}
	}
}
