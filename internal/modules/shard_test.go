package modules

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/rpc"
)

func TestPlanShards(t *testing.T) {
	cases := []struct {
		n, count int
		want     []shardRange
	}{
		{0, 4, nil},
		{5, 0, []shardRange{{0, 5}}},
		{5, 1, []shardRange{{0, 5}}},
		{6, 3, []shardRange{{0, 2}, {2, 4}, {4, 6}}},
		{7, 3, []shardRange{{0, 2}, {2, 4}, {4, 7}}},
		{3, 8, []shardRange{{0, 1}, {1, 2}, {2, 3}}}, // capped: no empty shard
	}
	for _, tc := range cases {
		got := planShards(tc.n, tc.count)
		if len(got) != len(tc.want) {
			t.Errorf("planShards(%d, %d) = %v, want %v", tc.n, tc.count, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("planShards(%d, %d)[%d] = %v, want %v", tc.n, tc.count, i, got[i], tc.want[i])
			}
		}
	}
	// Property: for any n/count, ranges are contiguous, non-empty, cover
	// [0, n), and sizes differ by at most one.
	for n := 1; n <= 40; n++ {
		for count := 1; count <= 12; count++ {
			ranges := planShards(n, count)
			prev, minSz, maxSz := 0, n+1, 0
			for _, r := range ranges {
				if r.start != prev || r.end <= r.start {
					t.Fatalf("planShards(%d, %d): bad range %v after %d", n, count, r, prev)
				}
				if sz := r.end - r.start; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
				if r.end-r.start > maxSz {
					maxSz = r.end - r.start
				}
				prev = r.end
			}
			if prev != n {
				t.Fatalf("planShards(%d, %d): covers [0, %d)", n, count, prev)
			}
			if maxSz-minSz > 1 && minSz <= n {
				t.Fatalf("planShards(%d, %d): uneven sizes min=%d max=%d", n, count, minSz, maxSz)
			}
		}
	}
}

// shardedBlackboxConfig routes one multi-node sadc instance (the sharded
// collector under test) into the blackbox analysis pipeline.
func shardedBlackboxConfig(nodes []string, shards int) string {
	sigma, centroids := inlineKNNModel()
	var b strings.Builder
	fmt.Fprintf(&b, "[sadc]\nid = cluster\nnodes = %s\nperiod = 1\nshards = %d\n\n",
		strings.Join(nodes, ","), shards)
	for i, n := range nodes {
		fmt.Fprintf(&b, "[knn]\nid = onenn%d\nsigma = %s\ncentroids = %s\ninput[in] = cluster.%s\n\n",
			i, sigma, centroids, n)
		fmt.Fprintf(&b, "[ibuffer]\nid = buf%d\nsize = 10\ninput[input] = onenn%d.output0\n\n", i, i)
	}
	b.WriteString("[analysis_bb]\nid = bb\nthreshold = 0.5\nwindow = 20\nslide = 5\nstates = 2\n")
	for i := range nodes {
		fmt.Fprintf(&b, "input[l%d] = @buf%d\n", i, i)
	}
	b.WriteString("\n[print]\nid = BlackBoxAlarm\nlabel = BB\nonly_nonzero = false\ninput[a] = @bb\n")
	return b.String()
}

// shardedWhiteboxConfig runs the synchronizing hadoop_log collector with
// the given shard count; shard_fanout = 1 additionally forces each shard's
// pool serial, the most adversarial interleaving for the sync state.
func shardedWhiteboxConfig(nodes []string, shards int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl_tt\nkind = tasktracker\nnodes = %s\nperiod = 1\nshards = %d\nshard_fanout = 1\n\n",
		strings.Join(nodes, ","), shards)
	fmt.Fprintf(&b, "[analysis_wb]\nid = wb\nk = 2\nwindow = 20\nslide = 5\n")
	for i := range nodes {
		fmt.Fprintf(&b, "input[s%d] = hl_tt.%s\n", i, nodes[i])
	}
	b.WriteString("\n[print]\nid = TaskTrackerAlarm\nlabel = WB\nonly_nonzero = false\ninput[a] = @wb\n")
	return b.String()
}

// shardedCSVConfig logs every node's raw sadc vector to CSV — the
// strictest byte-level view of the merged collection output.
func shardedCSVConfig(nodes []string, shards int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[sadc]\nid = cluster\nnodes = %s\nperiod = 1\nshards = %d\n\n",
		strings.Join(nodes, ","), shards)
	b.WriteString("[csv]\nid = log\npath = %CSVPATH%\n")
	for i, n := range nodes {
		fmt.Fprintf(&b, "input[m%d] = cluster.%s\n", i, n)
	}
	return b.String()
}

// runShardedCase drives one configuration over an identically seeded
// simulated cluster (fault injected mid-run, as in the wavefront
// equivalence tests) and returns every sink byte it produced.
func runShardedCase(t *testing.T, build func([]string, int) string, slaves int, seed int64, shards int) []byte {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	var alarms bytes.Buffer
	env.AlarmWriter = &alarms

	names := make([]string, slaves)
	for i, n := range c.Slaves() {
		names[i] = n.Name
	}
	cfgText := build(names, shards)
	csvPath := ""
	if strings.Contains(cfgText, "%CSVPATH%") {
		csvPath = filepath.Join(t.TempDir(), "out.csv")
		cfgText = strings.ReplaceAll(cfgText, "%CSVPATH%", csvPath)
	}
	e := mustEngine(t, env, cfgText)
	runSim(t, c, e, 45)
	if err := c.InjectFault(1, hadoopsim.FaultCPUHog); err != nil {
		t.Fatal(err)
	}
	runSim(t, c, e, 45)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}

	out := alarms.Bytes()
	if csvPath != "" {
		data, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data...)
	}
	return out
}

// TestShardedMatchesSerialSinkOutput asserts a sharded collection sweep
// produces byte-identical sink output to the single-shard sweep on the
// example pipeline shapes: the shards partition concurrency, not
// semantics, because partials are merged in node-index order.
func TestShardedMatchesSerialSinkOutput(t *testing.T) {
	cases := []struct {
		name   string
		build  func([]string, int) string
		slaves int
		seed   int64
	}{
		{"blackbox", shardedBlackboxConfig, 8, 611},
		{"whitebox-sync", shardedWhiteboxConfig, 8, 622},
		{"raw-csv", shardedCSVConfig, 6, 633},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := runShardedCase(t, tc.build, tc.slaves, tc.seed, 1)
			if len(serial) == 0 {
				t.Fatal("serial run produced no sink output; the comparison would be vacuous")
			}
			for _, shards := range []int{2, 8} {
				sharded := runShardedCase(t, tc.build, tc.slaves, tc.seed, shards)
				if !bytes.Equal(serial, sharded) {
					t.Errorf("shards=%d sink output differs from serial\nserial:  %d bytes\nsharded: %d bytes",
						shards, len(serial), len(sharded))
				}
			}
		})
	}
}

// runShardedRPCCase is runShardedCase over real loopback collection
// daemons: every node gets its own sadc rpcd, and the instance under test
// collects with the given shard count and batch setting.
func runShardedRPCCase(t *testing.T, slaves int, seed int64, shards int, batch bool) []byte {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	var names, addrs []string
	for _, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceSadc)
		RegisterSadcServer(srv, n)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		names = append(names, n.Name)
		addrs = append(addrs, addr.String())
	}
	env := NewEnv()
	env.Clock = c.Now

	csvPath := filepath.Join(t.TempDir(), "out.csv")
	var b strings.Builder
	fmt.Fprintf(&b, "[sadc]\nid = cluster\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1\nshards = %d\nbatch = %v\n\n",
		strings.Join(names, ","), strings.Join(addrs, ","), shards, batch)
	fmt.Fprintf(&b, "[csv]\nid = log\npath = %s\n", csvPath)
	for i, n := range names {
		fmt.Fprintf(&b, "input[m%d] = cluster.%s\n", i, n)
	}
	e := mustEngine(t, env, b.String())
	runSim(t, c, e, 30)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestShardedRPCAndBatchMatchSerial covers the remote collection path: a
// sharded sweep over real daemons, with and without rpc.Batch framing,
// must log byte-identical CSV to the serial unbatched sweep. (The batched
// metric-group methods are backed by their own daemon-side collectors, so
// their rate math sees the same snapshot sequence.)
func TestShardedRPCAndBatchMatchSerial(t *testing.T) {
	const slaves, seed = 6, 707
	serial := runShardedRPCCase(t, slaves, seed, 1, false)
	if len(serial) == 0 {
		t.Fatal("serial rpc run produced no CSV output")
	}
	for _, tc := range []struct {
		name   string
		shards int
		batch  bool
	}{
		{"sharded", 4, false},
		{"sharded-batch", 4, true},
		{"serial-batch", 1, true},
	} {
		got := runShardedRPCCase(t, slaves, seed, tc.shards, tc.batch)
		if !bytes.Equal(serial, got) {
			t.Errorf("%s output differs from serial: %d bytes vs %d", tc.name, len(got), len(serial))
		}
	}
}

// TestShardAllNodesFailed kills every daemon of one shard: the other
// shards keep collecting, degraded sync publishes partial timestamps at
// quorum, and the per-shard status rows single out the dead shard (fetch
// errors and open breakers).
func TestShardAllNodesFailed(t *testing.T) {
	const slaves = 6
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, 818))
	if err != nil {
		t.Fatal(err)
	}
	var servers []*rpc.Server
	var names, addrs []string
	for _, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceHadoopLog)
		RegisterHadoopLogServer(srv, n.TaskTrackerLog(), n.DataNodeLog(), c.Now)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		names = append(names, n.Name)
		addrs = append(addrs, addr.String())
	}
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()

	env := NewEnv()
	env.Clock = c.Now
	cfgText := fmt.Sprintf(`
[hadoop_log]
id = hl
kind = tasktracker
mode = rpc
nodes = %s
addrs = %s
period = 1
shards = 3
sync_deadline = 2
sync_quorum = 4
breaker_threshold = 1
breaker_cooldown = 3600

[print]
id = p
only_nonzero = false
input[x] = @hl
`, strings.Join(names, ","), strings.Join(addrs, ","))
	cfg, err := config.ParseString(cfgText)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(NewRegistry(env), cfg,
		core.WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	runSim(t, c, e, 10)

	// Shard 2 is nodes[4:6]: kill both of its daemons.
	_ = servers[4].Close()
	_ = servers[5].Close()
	runSim(t, c, e, 20)

	mod, ok := e.ModuleOf("hl")
	if !ok {
		t.Fatal("module hl not found")
	}
	hl := mod.(*hadoopLogModule)
	sts := hl.ShardStatuses()
	if len(sts) != 3 {
		t.Fatalf("ShardStatuses = %d rows, want 3", len(sts))
	}
	for i, st := range sts {
		if st.Nodes != 2 || st.Shard != i {
			t.Errorf("shard %d: unexpected shape %+v", i, st)
		}
		if st.Sweeps == 0 {
			t.Errorf("shard %d: no sweeps recorded", i)
		}
	}
	if sts[0].Errors != 0 || sts[1].Errors != 0 {
		t.Errorf("healthy shards accumulated errors: %+v, %+v", sts[0], sts[1])
	}
	if sts[2].Errors == 0 || sts[2].LastErrors != 2 {
		t.Errorf("dead shard accounting: %+v, want 2 failures per sweep", sts[2])
	}
	if sts[2].OpenBreakers != 2 || sts[0].OpenBreakers != 0 {
		t.Errorf("open breakers: shard2=%d shard0=%d, want 2 and 0",
			sts[2].OpenBreakers, sts[0].OpenBreakers)
	}

	// Degraded sync rode out the dead shard: partial publishes at quorum 4,
	// with the missing seconds charged to the dead shard's nodes.
	if hl.PartialTimestamps() == 0 {
		t.Error("no partial timestamps despite a dead shard and a sync deadline")
	}
	missing := hl.MissingByNode()
	if missing[names[4]] == 0 || missing[names[5]] == 0 {
		t.Errorf("missing-by-node does not charge the dead shard: %v", missing)
	}
	if missing[names[0]] != 0 {
		t.Errorf("healthy node charged with missing seconds: %v", missing)
	}

	// The status surface carries the same rows.
	rep := CollectStatus(e, c.Now())
	if len(rep.Shards["hl"]) != 3 {
		t.Errorf("StatusReport.Shards[hl] = %v, want 3 rows", rep.Shards["hl"])
	}
	if rep.Healthy {
		t.Error("report healthy despite open breakers")
	}
}

// TestSingleShardStatusesNil pins the compatibility contract: a collector
// that does not opt into sharding contributes no shard rows to /status.
func TestSingleShardStatusesNil(t *testing.T) {
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, 919))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	names := []string{c.Slaves()[0].Name, c.Slaves()[1].Name}
	e := mustEngine(t, env, fmt.Sprintf(
		"[sadc]\nid = cluster\nnodes = %s\nperiod = 1\n", strings.Join(names, ",")))
	runSim(t, c, e, 3)
	mod, _ := e.ModuleOf("cluster")
	if sts := mod.(*sadcModule).ShardStatuses(); sts != nil {
		t.Errorf("single-shard ShardStatuses = %v, want nil", sts)
	}
	if rep := CollectStatus(e, c.Now()); rep.Shards != nil {
		t.Errorf("StatusReport.Shards = %v, want empty", rep.Shards)
	}
}
