package modules

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/sadc"
)

// sadcModule is the black-box data-collection module (§3.5): it samples one
// node's OS performance counters each period and publishes the node-level
// metric vector (64 metrics) on output0. Per-interface vectors (18 metrics)
// and per-process vectors (19 metrics) are exposed as additional outputs on
// request, completing the paper's full metric surface.
//
// Parameters:
//
//	node   = <node name>            (required)
//	period = <duration>             (default 1s)
//	mode   = local | rpc            (default local)
//	addr   = host:port              (required for rpc mode)
//	ifaces = eth0,eth1              (optional: adds outputs net_<iface>)
//	pids   = 3001,3002              (optional: adds outputs proc_<pid>)
type sadcModule struct {
	env    *Env
	node   string
	source MetricSource
	out    *core.OutputPort

	ifaceOuts map[string]*core.OutputPort
	pidOuts   map[int]*core.OutputPort
}

func (m *sadcModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	m.node = cfg.StringParam("node", "")
	if m.node == "" {
		return errMissingParam("sadc", "node")
	}
	period, err := cfg.DurationParam("period", time.Second)
	if err != nil {
		return err
	}
	mode := cfg.StringParam("mode", "local")
	switch mode {
	case "local":
		provider, ok := m.env.Procfs[m.node]
		if !ok {
			return fmt.Errorf("sadc: no procfs provider registered for node %q", m.node)
		}
		m.source = sadc.NewCollector(provider)
	case "rpc":
		addr := cfg.StringParam("addr", "")
		if addr == "" {
			return errMissingParam("sadc", "addr")
		}
		client, err := m.env.dial(addr, "asdf-sadc")
		if err != nil {
			return err
		}
		m.source = NewRPCMetricSource(client)
	default:
		return fmt.Errorf("sadc: unknown mode %q", mode)
	}
	m.out, err = ctx.NewOutput("output0", core.Origin{
		Node:   m.node,
		Source: "sadc",
		Metric: "node-metrics",
	})
	if err != nil {
		return err
	}

	m.ifaceOuts = make(map[string]*core.OutputPort)
	for _, iface := range splitList(cfg.StringParam("ifaces", "")) {
		out, err := ctx.NewOutput("net_"+iface, core.Origin{
			Node:   m.node,
			Source: "sadc",
			Metric: "net-metrics:" + iface,
		})
		if err != nil {
			return err
		}
		m.ifaceOuts[iface] = out
	}
	m.pidOuts = make(map[int]*core.OutputPort)
	for _, p := range splitList(cfg.StringParam("pids", "")) {
		pid, err := strconv.Atoi(p)
		if err != nil {
			return fmt.Errorf("sadc: pid %q: %w", p, err)
		}
		out, err := ctx.NewOutput("proc_"+p, core.Origin{
			Node:   m.node,
			Source: "sadc",
			Metric: "proc-metrics:" + p,
		})
		if err != nil {
			return err
		}
		m.pidOuts[pid] = out
	}
	return ctx.SchedulePeriodic(period)
}

// splitList splits a comma-separated parameter, dropping empties.
func splitList(v string) []string {
	var out []string
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func (m *sadcModule) Run(ctx *core.RunContext) error {
	if ctx.Reason != core.RunPeriodic {
		return nil
	}
	rec, err := m.source.Collect()
	if err != nil {
		return fmt.Errorf("sadc[%s]: %w", m.node, err)
	}
	if rec.Warmup {
		// Rates need a second snapshot; skip the warmup record.
		return nil
	}
	// Black-box samples are timestamped on the control node (§3.7).
	m.out.Publish(core.Sample{Time: ctx.Now, Values: rec.Node})
	for iface, out := range m.ifaceOuts {
		if v, ok := rec.Net[iface]; ok {
			out.Publish(core.Sample{Time: ctx.Now, Values: v})
		}
	}
	for pid, out := range m.pidOuts {
		if v, ok := rec.Proc[pid]; ok {
			out.Publish(core.Sample{Time: ctx.Now, Values: v})
		}
	}
	return nil
}

var _ core.Module = (*sadcModule)(nil)

// hadoopLogModule is the white-box data-collection module (§4.4): it parses
// every monitored node's TaskTracker or DataNode log into per-second state
// vectors and publishes one output per node. Because log data appears at
// slightly different times on different nodes, the module performs
// cross-node timestamp synchronization internally (§3.7): a timestamp is
// published only when every node has revealed data for it; timestamps
// missing on some node are dropped.
//
// Parameters:
//
//	kind   = tasktracker | datanode   (required)
//	nodes  = n1,n2,...                (required)
//	period = <duration>               (default 1s)
//	mode   = local | rpc              (default local)
//	addrs  = host1:p,host2:p,...      (required for rpc; parallel to nodes)
type hadoopLogModule struct {
	env     *Env
	kind    hadooplog.Kind
	nodes   []string
	sources []LogSource
	outs    []*core.OutputPort

	pending      []map[int64][]float64 // per node: unix-second -> counts
	maxSeen      []int64               // per node: newest fetched second
	nextEmit     int64                 // next second to resolve; 0 = unset
	dropped      uint64                // timestamps dropped by the sync rule
	statesPerVec int
}

func (m *hadoopLogModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	switch cfg.StringParam("kind", "") {
	case "tasktracker":
		m.kind = hadooplog.KindTaskTracker
	case "datanode":
		m.kind = hadooplog.KindDataNode
	case "":
		return errMissingParam("hadoop_log", "kind")
	default:
		return fmt.Errorf("hadoop_log: unknown kind %q", cfg.StringParam("kind", ""))
	}
	m.statesPerVec = hadooplog.MetricDims(m.kind)

	nodesParam := cfg.StringParam("nodes", "")
	if nodesParam == "" {
		return errMissingParam("hadoop_log", "nodes")
	}
	for _, n := range strings.Split(nodesParam, ",") {
		if n = strings.TrimSpace(n); n != "" {
			m.nodes = append(m.nodes, n)
		}
	}
	if len(m.nodes) == 0 {
		return fmt.Errorf("hadoop_log: empty node list")
	}

	period, err := cfg.DurationParam("period", time.Second)
	if err != nil {
		return err
	}

	mode := cfg.StringParam("mode", "local")
	switch mode {
	case "local":
		for _, n := range m.nodes {
			var buf *hadooplog.Buffer
			var ok bool
			if m.kind == hadooplog.KindTaskTracker {
				buf, ok = m.env.TTLogs[n]
			} else {
				buf, ok = m.env.DNLogs[n]
			}
			if !ok {
				return fmt.Errorf("hadoop_log: no %s log registered for node %q", m.kind, n)
			}
			m.sources = append(m.sources, NewBufferLogSource(m.kind, buf))
		}
	case "rpc":
		addrsParam := cfg.StringParam("addrs", "")
		if addrsParam == "" {
			return errMissingParam("hadoop_log", "addrs")
		}
		addrs := strings.Split(addrsParam, ",")
		if len(addrs) != len(m.nodes) {
			return fmt.Errorf("hadoop_log: %d addrs for %d nodes", len(addrs), len(m.nodes))
		}
		for _, a := range addrs {
			client, err := m.env.dial(strings.TrimSpace(a), "asdf-hadoop-log")
			if err != nil {
				return err
			}
			m.sources = append(m.sources, NewRPCLogSource(client, m.kind))
		}
	default:
		return fmt.Errorf("hadoop_log: unknown mode %q", mode)
	}

	metric := strings.Join(hadooplog.MetricNamesFor(m.kind), ",")
	for _, n := range m.nodes {
		out, err := ctx.NewOutput(n, core.Origin{
			Node:   n,
			Source: "hadoop_log_" + m.kind.String(),
			Metric: metric,
		})
		if err != nil {
			return err
		}
		m.outs = append(m.outs, out)
	}
	m.pending = make([]map[int64][]float64, len(m.nodes))
	m.maxSeen = make([]int64, len(m.nodes))
	for i := range m.pending {
		m.pending[i] = make(map[int64][]float64)
	}
	return ctx.SchedulePeriodic(period)
}

func (m *hadoopLogModule) Run(ctx *core.RunContext) error {
	now := ctx.Now
	if now.IsZero() {
		now = m.env.now()
	}
	var firstErr error
	for i, src := range m.sources {
		vecs, err := src.Fetch(now)
		if err != nil {
			// One unreachable node must not stop collection from the rest.
			if firstErr == nil {
				firstErr = fmt.Errorf("hadoop_log[%s]: %w", m.nodes[i], err)
			}
			continue
		}
		for _, v := range vecs {
			sec := v.Time.Unix()
			m.pending[i][sec] = v.Counts
			if sec > m.maxSeen[i] {
				m.maxSeen[i] = sec
			}
			if m.nextEmit == 0 || sec < m.nextEmit {
				m.nextEmit = sec
			}
		}
	}
	m.emitSynchronized()
	return firstErr
}

// emitSynchronized publishes every second for which all nodes have data,
// dropping seconds that some node will never produce (§3.7 cross-instance
// synchronization within the hadoop_log module).
func (m *hadoopLogModule) emitSynchronized() {
	if m.nextEmit == 0 {
		return
	}
	// The frontier is the newest second that every node has reached.
	frontier := int64(-1)
	for _, s := range m.maxSeen {
		if s == 0 {
			return // some node has revealed nothing yet; wait
		}
		if frontier < 0 || s < frontier {
			frontier = s
		}
	}
	for sec := m.nextEmit; sec <= frontier; sec++ {
		complete := true
		for i := range m.pending {
			if _, ok := m.pending[i][sec]; !ok {
				complete = false
				break
			}
		}
		t := time.Unix(sec, 0).UTC()
		for i := range m.pending {
			if counts, ok := m.pending[i][sec]; ok {
				if complete {
					m.outs[i].Publish(core.Sample{Time: t, Values: counts})
				}
				delete(m.pending[i], sec)
			}
		}
		if !complete {
			m.dropped++
		}
	}
	m.nextEmit = frontier + 1
}

// DroppedTimestamps reports how many seconds were discarded because not all
// nodes produced data for them.
func (m *hadoopLogModule) DroppedTimestamps() uint64 { return m.dropped }

var _ core.Module = (*hadoopLogModule)(nil)
