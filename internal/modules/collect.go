package modules

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/hierarchy"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/sadc"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// sadcModule is the black-box data-collection module (§3.5): it samples OS
// performance counters each period and publishes node-level metric vectors
// (64 metrics). In the single-node form (node =) the vector appears on
// output0, with per-interface vectors (18 metrics) and per-process vectors
// (19 metrics) as additional outputs on request, completing the paper's
// full metric surface. In the multi-node form (nodes =) one instance polls
// every listed node concurrently under a bounded worker pool and publishes
// one output per node, named after the node — so per-tick collection
// latency stays O(nodes/fanout) round trips instead of O(nodes).
//
// Parameters:
//
//	node         = <node name>          (single-node form)
//	nodes        = n1,n2,...            (multi-node form; excludes node/ifaces/pids)
//	period       = <duration>           (default 1s)
//	mode         = local | rpc          (default local)
//	addr         = host:port            (rpc, single-node form)
//	addrs        = host1:p,host2:p,...  (rpc, multi-node form; parallel to nodes)
//	fanout       = <int>                (multi-node: max concurrent collects;
//	                                     default min(16, numNodes), 1 = serial)
//	shards       = <int>                (independent shard workers over the node
//	                                     set; default 1 = the unsharded sweep)
//	shard_fanout = <int>                (per-shard concurrent-fetch budget;
//	                                     default: the fanout parameter)
//	batch        = true | false         (rpc: fetch per-metric-group methods in
//	                                     one rpc.Batch frame per node per tick)
//	wire         = json | columnar      (rpc: per-node transport; columnar opens
//	                                     a delta-encoded stream and supersedes
//	                                     batch, falling back to the JSON path —
//	                                     batched or not — when a daemon predates
//	                                     the stream protocol; default: json, or
//	                                     the environment's -wire flag)
//	subscribe    = true | false         (columnar: server-push subscription
//	                                     instead of per-tick pulls)
//	push_period  = <duration>           (subscribe: server-side push pacing;
//	                                     default 0 = lockstep with credits)
//	push_window  = <int>                (subscribe: max frames in flight;
//	                                     default 1 = lockstep)
//	leaders      = host1:p,host2:p,...  (rpc multi-node: delegate node ranges
//	                                     to asdf-shardd leader processes; the
//	                                     delegated addrs entries become "-")
//	leader_ranges = 0-64,64-128,...     (half-open node-index range per leader,
//	                                     parallel to leaders; undelegated
//	                                     indexes stay direct)
//	ifaces       = eth0,eth1            (single-node: adds outputs net_<iface>)
//	pids         = 3001,3002            (single-node: adds outputs proc_<pid>)
//
// In rpc mode each node keeps its own supervised ManagedClient, so breaker
// state and reconnect backoff stay per node regardless of fanout or shard
// count. With shards >= 2 the node set is split into contiguous node-index
// ranges swept by independent worker pools; results are still merged in
// node-index order, so output is identical to the unsharded sweep. wire =
// columnar composes with both: each node's stream rides its own managed
// connection, whichever shard sweeps it.
type sadcModule struct {
	env     *Env
	id      string
	nodes   []string
	single  bool // the node= form: output0 plus iface/pid extras
	sources []MetricSource
	clients []rpc.Caller // rpc mode: parallel to nodes; nil otherwise
	outs    []*core.OutputPort
	fanout  int
	sharder *shardSweeper
	hier    *leaderSet // delegated ranges (leaders =); nil without delegation

	// Replay guard (crash-safe restart): lastPub is the newest published
	// tick (unixnano; atomic so the state snapshotter can read it beside a
	// running engine), replayBar the restored watermark at or below which
	// publishes are refused after a restart.
	lastPub   atomic.Int64
	replayBar atomic.Int64

	ifaces    []string
	pids      []int
	ifaceOuts map[string]*core.OutputPort
	pidOuts   map[int]*core.OutputPort

	// fan-out scratch, indexed by node; results are merged in node order
	// after the concurrent sweep so output stays deterministic.
	recs []*sadc.Record
	errs []error
}

func (m *sadcModule) Init(ctx *core.InitContext) error {
	m.id = ctx.ID()
	cfg := ctx.Config()
	node := cfg.StringParam("node", "")
	nodesParam := cfg.StringParam("nodes", "")
	switch {
	case node != "" && nodesParam != "":
		return fmt.Errorf("sadc: node and nodes are mutually exclusive")
	case node != "":
		m.nodes = []string{node}
		m.single = true
	case nodesParam != "":
		m.nodes = splitList(nodesParam)
		if len(m.nodes) == 0 {
			return fmt.Errorf("sadc: empty node list")
		}
	default:
		return errMissingParam("sadc", "node")
	}
	period, err := cfg.DurationParam("period", time.Second)
	if err != nil {
		return err
	}
	if m.fanout, err = cfg.FanoutParam(); err != nil {
		return err
	}
	sp, err := cfg.ShardParams()
	if err != nil {
		return err
	}
	batch, err := cfg.BoolParam("batch", false)
	if err != nil {
		return err
	}
	m.ifaces = splitList(cfg.StringParam("ifaces", ""))
	for _, p := range splitList(cfg.StringParam("pids", "")) {
		pid, err := strconv.Atoi(p)
		if err != nil {
			return fmt.Errorf("sadc: pid %q: %w", p, err)
		}
		m.pids = append(m.pids, pid)
	}
	mode := cfg.StringParam("mode", "local")
	if batch && mode != "rpc" {
		return fmt.Errorf("sadc: batch = true requires mode = rpc")
	}
	wp, err := parseWireParams(cfg, m.env, "sadc", mode)
	if err != nil {
		return err
	}
	leaderAddrs, leaderRanges, err := parseHierParams(cfg, "sadc", mode, len(m.nodes))
	if err != nil {
		return err
	}
	if len(leaderAddrs) > 0 && m.single {
		return fmt.Errorf("sadc: leaders requires the multi-node (nodes =) form")
	}
	switch mode {
	case "local":
		for _, n := range m.nodes {
			provider, ok := m.env.Procfs[n]
			if !ok {
				return fmt.Errorf("sadc: no procfs provider registered for node %q", n)
			}
			m.sources = append(m.sources, sadc.NewCollector(provider))
		}
	case "rpc":
		rp, err := cfg.ResilienceParams()
		if err != nil {
			return err
		}
		var addrs []string
		if m.single {
			addr := cfg.StringParam("addr", "")
			if addr == "" {
				return errMissingParam("sadc", "addr")
			}
			addrs = []string{addr}
		} else {
			addrsParam := cfg.StringParam("addrs", "")
			if addrsParam == "" {
				return errMissingParam("sadc", "addrs")
			}
			addrs = splitList(addrsParam)
			if len(addrs) != len(m.nodes) {
				return fmt.Errorf("sadc: %d addrs for %d nodes", len(addrs), len(m.nodes))
			}
		}
		delegated := markDelegated(len(m.nodes), leaderRanges)
		for i, a := range addrs {
			if delegated != nil && delegated[i] {
				// The leader owns this node's daemon connection; the addrs
				// entry is a "-" placeholder (a real address is tolerated so
				// a config can flip delegation on and off without edits).
				m.clients = append(m.clients, nil)
				m.sources = append(m.sources, nil)
				continue
			}
			if a == "-" {
				return fmt.Errorf("sadc: addr %q for undelegated node %s", a, m.nodes[i])
			}
			client, err := m.env.dial(a, "asdf-sadc", rp)
			if err != nil {
				return fmt.Errorf("sadc[%s]: dial %s: %w", m.nodes[i], a, err)
			}
			m.clients = append(m.clients, client)
			var src MetricSource
			if batch {
				bc, ok := client.(rpc.BatchCaller)
				if !ok {
					return fmt.Errorf("sadc[%s]: batch = true requires a batch-capable client", m.nodes[i])
				}
				if src, err = NewBatchedMetricSource(bc, m.ifaces, m.pids); err != nil {
					return fmt.Errorf("sadc[%s]: %w", m.nodes[i], err)
				}
			} else {
				src = NewRPCMetricSource(client)
			}
			if wp.columnar {
				// The JSON source built above becomes the fallback for
				// daemons that predate the stream protocol. A custom Dial
				// hook without stream support keeps the JSON path outright.
				if so, ok := client.(streamOpener); ok {
					if src, err = NewColumnarMetricSource(so, wp, m.nodes[i], m.ifaces, m.pids, src); err != nil {
						return fmt.Errorf("sadc[%s]: %w", m.nodes[i], err)
					}
				}
			}
			m.sources = append(m.sources, src)
		}
		if len(leaderAddrs) > 0 {
			m.hier, err = newLeaderSet(m.env, ctx.ID(), m.nodes, leaderAddrs, leaderRanges,
				rp, wp, hierarchy.MethodSadcStream, len(sadc.NodeMetricNames))
			if err != nil {
				return fmt.Errorf("sadc: %w", err)
			}
		}
	default:
		return fmt.Errorf("sadc: unknown mode %q", mode)
	}
	m.sharder = newShardSweeper(m.env, ctx.ID(), len(m.nodes), sp, m.fanout)

	if m.single {
		out, err := ctx.NewOutput("output0", core.Origin{
			Node:   m.nodes[0],
			Source: "sadc",
			Metric: "node-metrics",
		})
		if err != nil {
			return err
		}
		m.outs = []*core.OutputPort{out}

		m.ifaceOuts = make(map[string]*core.OutputPort)
		for _, iface := range m.ifaces {
			out, err := ctx.NewOutput("net_"+iface, core.Origin{
				Node:   m.nodes[0],
				Source: "sadc",
				Metric: "net-metrics:" + iface,
			})
			if err != nil {
				return err
			}
			m.ifaceOuts[iface] = out
		}
		m.pidOuts = make(map[int]*core.OutputPort)
		for _, pid := range m.pids {
			p := strconv.Itoa(pid)
			out, err := ctx.NewOutput("proc_"+p, core.Origin{
				Node:   m.nodes[0],
				Source: "sadc",
				Metric: "proc-metrics:" + p,
			})
			if err != nil {
				return err
			}
			m.pidOuts[pid] = out
		}
	} else {
		for _, p := range []string{"ifaces", "pids", "addr"} {
			if _, ok := cfg.Param(p); ok {
				return fmt.Errorf("sadc: parameter %q requires the single-node (node =) form", p)
			}
		}
		for _, n := range m.nodes {
			out, err := ctx.NewOutput(n, core.Origin{
				Node:   n,
				Source: "sadc",
				Metric: "node-metrics",
			})
			if err != nil {
				return err
			}
			m.outs = append(m.outs, out)
		}
	}
	m.recs = make([]*sadc.Record, len(m.nodes))
	m.errs = make([]error, len(m.nodes))
	return ctx.SchedulePeriodic(period)
}

// splitList splits a comma-separated parameter, dropping empties.
func splitList(v string) []string {
	var out []string
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func (m *sadcModule) Run(ctx *core.RunContext) error {
	if ctx.Reason != core.RunPeriodic {
		return nil
	}
	// Delegated ranges are fetched from their leaders concurrently with the
	// direct sweep; the two paths write disjoint node indexes of the same
	// scratch, and the serial merge below reads both in node order.
	var hierWG sync.WaitGroup
	if m.hier != nil {
		hierWG.Add(1)
		go func() {
			defer hierWG.Done()
			m.hier.sweepSadc(m.recs, m.errs)
		}()
	}
	m.sharder.sweep(func(i int) error {
		if m.sources[i] == nil {
			return nil // delegated to a leader
		}
		m.recs[i], m.errs[i] = m.sources[i].Collect()
		return m.errs[i]
	})
	hierWG.Wait()
	if m.clients != nil || m.hier != nil {
		open, total := countBreakers(m.clients)
		if m.hier != nil {
			ho, ht := countBreakers(m.hier.clients())
			open, total = open+ho, total+ht
		}
		m.env.Adaptive.ObserveBreakers(m.id, open, total)
	}
	// Replayed tick: a restarted control node resumes at the persisted
	// watermark; collection still runs (warming rate state), but nothing
	// at or before an already-published timestamp is re-published.
	replay := m.replayBar.Load() != 0 && !ctx.Now.IsZero() &&
		ctx.Now.UnixNano() <= m.replayBar.Load()
	var firstErr error
	published := false
	for i, rec := range m.recs {
		if err := m.errs[i]; err != nil {
			// One unreachable node must not stop collection from the rest.
			if firstErr == nil {
				firstErr = fmt.Errorf("sadc[%s]: %w", m.nodes[i], err)
			}
			continue
		}
		if rec.Warmup || replay {
			// Rates need a second snapshot; skip the warmup record.
			continue
		}
		// Black-box samples are timestamped on the control node (§3.7).
		m.outs[i].Publish(core.Sample{Time: ctx.Now, Values: rec.Node})
		published = true
		if m.single {
			for iface, out := range m.ifaceOuts {
				if v, ok := rec.Net[iface]; ok {
					out.Publish(core.Sample{Time: ctx.Now, Values: v})
				}
			}
			for pid, out := range m.pidOuts {
				if v, ok := rec.Proc[pid]; ok {
					out.Publish(core.Sample{Time: ctx.Now, Values: v})
				}
			}
		}
	}
	if published {
		m.lastPub.Store(ctx.Now.UnixNano())
	}
	return firstErr
}

// ReplayWatermark reports the newest published tick; ok is false before the
// first publish. Part of the crash-safe state surface (internal/state).
func (m *sadcModule) ReplayWatermark() (time.Time, bool) {
	lp := m.lastPub.Load()
	if lp == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, lp).UTC(), true
}

// RestoreReplayWatermark arms the replay guard after a restart: ticks at or
// before t were published by a previous life and must not be re-published.
func (m *sadcModule) RestoreReplayWatermark(t time.Time) {
	m.replayBar.Store(t.UnixNano())
	m.lastPub.Store(t.UnixNano())
}

// ExportBreakerSnapshots snapshots per-node breaker state — leader
// connections included — for persistence (nil in local mode or with an
// unsupervised custom dialer).
func (m *sadcModule) ExportBreakerSnapshots() map[string]rpc.BreakerSnapshot {
	out := exportBreakers(m.clients)
	if m.hier != nil {
		out = mergeBreakerSnaps(out, exportBreakers(m.hier.clients()))
	}
	return out
}

// ImportBreakerSnapshots restores persisted breaker state, staggering
// re-probes of non-closed breakers through plan.
func (m *sadcModule) ImportBreakerSnapshots(snaps map[string]rpc.BreakerSnapshot, plan *rpc.ProbePlanner) int {
	n := importBreakers(m.clients, snaps, plan)
	if m.hier != nil {
		n += importBreakers(m.hier.clients(), snaps, plan)
	}
	return n
}

// ClientHealth reports the supervised connection's health for the
// single-node rpc form; ok is false in local mode, the multi-node form, or
// with an unsupervised custom dialer.
func (m *sadcModule) ClientHealth() (rpc.Health, bool) {
	if !m.single || len(m.clients) == 0 {
		return rpc.Health{}, false
	}
	return sourceHealth(m.clients[0])
}

// ClientHealths reports per-node connection health in rpc mode (nil in
// local mode or with an unsupervised custom dialer), keyed by node name;
// leader connections appear as "leader:<addr>" rows.
func (m *sadcModule) ClientHealths() map[string]rpc.Health {
	if m.clients == nil && m.hier == nil {
		return nil
	}
	out := make(map[string]rpc.Health, len(m.clients))
	for i, c := range m.clients {
		if h, ok := sourceHealth(c); ok {
			out[m.nodes[i]] = h
		}
	}
	if m.hier != nil {
		m.hier.healths(out)
	}
	return out
}

// ShardStatuses reports per-shard sweep accounting (with per-shard open
// breaker counts in rpc mode); nil when the instance runs a single shard.
func (m *sadcModule) ShardStatuses() []ShardStatus {
	return m.sharder.statusesWithBreakers(m.clients)
}

// LeaderStatuses reports per-leader delegation accounting; nil without
// delegated ranges.
func (m *sadcModule) LeaderStatuses() []LeaderStatus {
	if m.hier == nil {
		return nil
	}
	return m.hier.statuses()
}

var _ core.Module = (*sadcModule)(nil)

// hadoopLogModule is the white-box data-collection module (§4.4): it parses
// every monitored node's TaskTracker or DataNode log into per-second state
// vectors and publishes one output per node. Because log data appears at
// slightly different times on different nodes, the module performs
// cross-node timestamp synchronization internally (§3.7): a timestamp is
// published when every node has revealed data for it; timestamps missing on
// some node once every node has moved past them are dropped.
//
// The strict rule stalls the whole cluster on one dead node, so the module
// also supports degraded-mode synchronization: with sync_deadline set, a
// timestamp older than the deadline (relative to the collection clock) is
// resolved from the nodes that did report, provided at least sync_quorum
// nodes reported it — published as a partial sample set (absent nodes
// publish nothing for that second, so downstream analyses see partial
// vectors), or dropped below quorum. Defaults (no deadline, quorum = all
// nodes) reproduce the paper's strict behaviour exactly.
//
// Parameters:
//
//	kind          = tasktracker | datanode  (required)
//	nodes         = n1,n2,...               (required)
//	period        = <duration>              (default 1s)
//	mode          = local | rpc             (default local)
//	addrs         = host1:p,host2:p,...     (required for rpc; parallel to nodes)
//	fanout        = <int>                   (max concurrent fetches per period;
//	                                         default min(16, numNodes), 1 = serial)
//	shards        = <int>                   (independent shard workers over the
//	                                         node set; default 1)
//	shard_fanout  = <int>                   (per-shard fetch budget; default:
//	                                         the fanout parameter)
//	wire          = json | columnar         (rpc: per-node transport; columnar
//	                                         streams delta-encoded vectors and
//	                                         falls back to JSON per node when a
//	                                         daemon predates the stream protocol;
//	                                         default: json, or the environment's
//	                                         -wire flag)
//	subscribe     = true | false            (columnar: server-push subscription)
//	push_period   = <duration>              (subscribe: server push pacing;
//	                                         default 0 = lockstep with credits)
//	push_window   = <int>                   (subscribe: max frames in flight;
//	                                         default 1 = lockstep)
//	leaders       = host1:p,host2:p,...     (rpc: delegate node ranges to
//	                                         asdf-shardd leader processes; the
//	                                         delegated addrs entries become "-")
//	leader_ranges = 0-64,64-128,...         (half-open node-index range per
//	                                         leader, parallel to leaders)
//	sync_deadline = <duration>              (default 0: strict §3.7 sync)
//	sync_quorum   = <int> | auto            (default 0: all nodes; auto derives
//	                                         the quorum from the live open-
//	                                         breaker fraction via the adaptive
//	                                         controller, Env.Adaptive)
//
// Per-node fetches run concurrently under a bounded worker pool (fanout),
// optionally partitioned into shards each running its own pool, but
// results are merged into the synchronization state in node-index order,
// so publish order and the strict/degraded sync semantics are identical to
// a serial sweep whatever the shard count. In rpc mode the resilience
// knobs reconnect_backoff, call_timeout, breaker_threshold, and
// breaker_cooldown tune the per-node managed connections, each of which
// keeps its own breaker state regardless of fanout.
type hadoopLogModule struct {
	env     *Env
	id      string
	kind    hadooplog.Kind
	nodes   []string
	sources []LogSource
	clients []rpc.Caller // rpc mode: parallel to nodes; nil otherwise
	outs    []*core.OutputPort
	fanout  int
	sharder *shardSweeper
	hier    *leaderSet // delegated ranges (leaders =); nil without delegation

	// fan-out scratch, indexed by node; merged serially in node order.
	fetched [][]hadooplog.StateVector
	errs    []error

	syncDeadline time.Duration // 0 = strict: wait for every node
	syncQuorum   int           // minimum reporters for a partial publish
	quorumAuto   bool          // sync_quorum = auto: resolve via env.Adaptive

	pending []map[int64][]float64 // per node: unix-second -> counts
	maxSeen []int64               // per node: newest fetched second
	// nextEmit is the next second to resolve (0 = unset). Atomic because it
	// doubles as the replay watermark, read by the state snapshotter beside
	// a running engine; all writes stay on the engine goroutine.
	nextEmit     atomic.Int64
	dropped      uint64   // timestamps dropped by the sync rule
	partial      uint64   // timestamps published without all nodes
	missing      []uint64 // per node: resolved seconds it missed
	statesPerVec int

	// Telemetry mirrors of the sync counters above (nil without
	// Env.Metrics; nil-safe), incremented at the same points so a scrape
	// matches the SyncReporter surface.
	mPartial *telemetry.Counter
	mDropped *telemetry.Counter
	mMissing []*telemetry.Counter // parallel to nodes
}

func (m *hadoopLogModule) Init(ctx *core.InitContext) error {
	m.id = ctx.ID()
	cfg := ctx.Config()
	switch cfg.StringParam("kind", "") {
	case "tasktracker":
		m.kind = hadooplog.KindTaskTracker
	case "datanode":
		m.kind = hadooplog.KindDataNode
	case "":
		return errMissingParam("hadoop_log", "kind")
	default:
		return fmt.Errorf("hadoop_log: unknown kind %q", cfg.StringParam("kind", ""))
	}
	m.statesPerVec = hadooplog.MetricDims(m.kind)

	nodesParam := cfg.StringParam("nodes", "")
	if nodesParam == "" {
		return errMissingParam("hadoop_log", "nodes")
	}
	for _, n := range strings.Split(nodesParam, ",") {
		if n = strings.TrimSpace(n); n != "" {
			m.nodes = append(m.nodes, n)
		}
	}
	if len(m.nodes) == 0 {
		return fmt.Errorf("hadoop_log: empty node list")
	}

	period, err := cfg.DurationParam("period", time.Second)
	if err != nil {
		return err
	}
	if m.fanout, err = cfg.FanoutParam(); err != nil {
		return err
	}
	sp, err := cfg.ShardParams()
	if err != nil {
		return err
	}
	rp, err := cfg.ResilienceParams()
	if err != nil {
		return err
	}
	m.syncDeadline = rp.SyncDeadline
	m.syncQuorum = rp.SyncQuorum
	m.quorumAuto = rp.SyncQuorumAuto
	if m.syncQuorum == 0 || m.syncQuorum > len(m.nodes) {
		m.syncQuorum = len(m.nodes) // default (and auto baseline): strict
	}

	mode := cfg.StringParam("mode", "local")
	wp, err := parseWireParams(cfg, m.env, "hadoop_log", mode)
	if err != nil {
		return err
	}
	leaderAddrs, leaderRanges, err := parseHierParams(cfg, "hadoop_log", mode, len(m.nodes))
	if err != nil {
		return err
	}
	switch mode {
	case "local":
		for _, n := range m.nodes {
			var buf *hadooplog.Buffer
			var ok bool
			if m.kind == hadooplog.KindTaskTracker {
				buf, ok = m.env.TTLogs[n]
			} else {
				buf, ok = m.env.DNLogs[n]
			}
			if !ok {
				return fmt.Errorf("hadoop_log: no %s log registered for node %q", m.kind, n)
			}
			m.sources = append(m.sources, NewBufferLogSource(m.kind, buf))
		}
	case "rpc":
		addrsParam := cfg.StringParam("addrs", "")
		if addrsParam == "" {
			return errMissingParam("hadoop_log", "addrs")
		}
		addrs := strings.Split(addrsParam, ",")
		if len(addrs) != len(m.nodes) {
			return fmt.Errorf("hadoop_log: %d addrs for %d nodes", len(addrs), len(m.nodes))
		}
		delegated := markDelegated(len(m.nodes), leaderRanges)
		for i, a := range addrs {
			addr := strings.TrimSpace(a)
			if delegated != nil && delegated[i] {
				// The leader owns this node's daemon connection ("-"
				// placeholder; a real address is tolerated).
				m.clients = append(m.clients, nil)
				m.sources = append(m.sources, nil)
				continue
			}
			if addr == "-" {
				return fmt.Errorf("hadoop_log: addr %q for undelegated node %s", addr, m.nodes[i])
			}
			client, err := m.env.dial(addr, "asdf-hadoop-log", rp)
			if err != nil {
				return fmt.Errorf("hadoop_log[%s]: dial %s: %w", m.nodes[i], addr, err)
			}
			m.clients = append(m.clients, client)
			src := NewRPCLogSource(client, m.kind)
			if wp.columnar {
				// As with sadc: the JSON source is the fallback; a custom
				// Dial hook without stream support keeps the JSON path.
				if so, ok := client.(streamOpener); ok {
					if src, err = NewColumnarLogSource(so, wp, m.nodes[i], m.kind, src); err != nil {
						return fmt.Errorf("hadoop_log[%s]: %w", m.nodes[i], err)
					}
				}
			}
			m.sources = append(m.sources, src)
		}
		if len(leaderAddrs) > 0 {
			m.hier, err = newLeaderSet(m.env, ctx.ID(), m.nodes, leaderAddrs, leaderRanges,
				rp, wp, hierarchy.MethodLogStream, m.statesPerVec)
			if err != nil {
				return fmt.Errorf("hadoop_log: %w", err)
			}
		}
	default:
		return fmt.Errorf("hadoop_log: unknown mode %q", mode)
	}

	metric := strings.Join(hadooplog.MetricNamesFor(m.kind), ",")
	for _, n := range m.nodes {
		out, err := ctx.NewOutput(n, core.Origin{
			Node:   n,
			Source: "hadoop_log_" + m.kind.String(),
			Metric: metric,
		})
		if err != nil {
			return err
		}
		m.outs = append(m.outs, out)
	}
	m.pending = make([]map[int64][]float64, len(m.nodes))
	m.maxSeen = make([]int64, len(m.nodes))
	m.missing = make([]uint64, len(m.nodes))
	for i := range m.pending {
		m.pending[i] = make(map[int64][]float64)
	}
	if reg := m.env.Metrics; reg != nil {
		il := telemetry.L("instance", ctx.ID())
		m.mPartial = reg.Counter("asdf_sync_partial_timestamps_total",
			"Timestamps published in degraded mode, without data from every node.", il)
		m.mDropped = reg.Counter("asdf_sync_dropped_timestamps_total",
			"Timestamps discarded below the sync quorum.", il)
		m.mMissing = make([]*telemetry.Counter, len(m.nodes))
		for i, n := range m.nodes {
			m.mMissing[i] = reg.Counter("asdf_sync_missing_seconds_total",
				"Resolved seconds that lacked this node's data.", il, telemetry.L("node", n))
		}
	}
	m.fetched = make([][]hadooplog.StateVector, len(m.nodes))
	m.errs = make([]error, len(m.nodes))
	m.sharder = newShardSweeper(m.env, ctx.ID(), len(m.nodes), sp, m.fanout)
	return ctx.SchedulePeriodic(period)
}

func (m *hadoopLogModule) Run(ctx *core.RunContext) error {
	now := ctx.Now
	if now.IsZero() {
		now = m.env.now()
	}
	// Fetch every node concurrently (partitioned across shards when
	// configured); merge serially by node index below so the sync state
	// (and therefore publish order) matches a serial sweep. Delegated
	// ranges fetch from their leaders in parallel with the direct sweep;
	// the paths write disjoint node indexes.
	var hierWG sync.WaitGroup
	if m.hier != nil {
		hierWG.Add(1)
		go func() {
			defer hierWG.Done()
			m.hier.sweepLog(m.fetched, m.errs)
		}()
	}
	m.sharder.sweep(func(i int) error {
		if m.sources[i] == nil {
			return nil // delegated to a leader
		}
		m.fetched[i], m.errs[i] = m.sources[i].Fetch(now)
		return m.errs[i]
	})
	hierWG.Wait()
	if m.clients != nil || m.hier != nil {
		open, total := countBreakers(m.clients)
		if m.hier != nil {
			ho, ht := countBreakers(m.hier.clients())
			open, total = open+ho, total+ht
		}
		m.env.Adaptive.ObserveBreakers(m.id, open, total)
	}
	var firstErr error
	ne := m.nextEmit.Load()
	for i := range m.sources {
		vecs, err := m.fetched[i], m.errs[i]
		m.fetched[i] = nil
		if err != nil {
			// One unreachable node must not stop collection from the rest.
			if firstErr == nil {
				firstErr = fmt.Errorf("hadoop_log[%s]: %w", m.nodes[i], err)
			}
			continue
		}
		for _, v := range vecs {
			sec := v.Time.Unix()
			if ne != 0 && sec < ne {
				// Already resolved: a restarted daemon replays its log
				// from the start (and a restarted control node resumes at
				// its persisted watermark); re-served history must not
				// rewind the emit cursor or double-publish.
				continue
			}
			m.pending[i][sec] = v.Counts
			if sec > m.maxSeen[i] {
				m.maxSeen[i] = sec
			}
			if ne == 0 || sec < ne {
				ne = sec
				m.nextEmit.Store(sec)
			}
		}
	}
	m.emitSynchronized(now)
	return firstErr
}

// ReplayWatermark reports the newest resolved second (the second before the
// emit cursor); ok is false before the first resolution. Part of the
// crash-safe state surface (internal/state).
func (m *hadoopLogModule) ReplayWatermark() (time.Time, bool) {
	ne := m.nextEmit.Load()
	if ne == 0 {
		return time.Time{}, false
	}
	return time.Unix(ne-1, 0).UTC(), true
}

// RestoreReplayWatermark arms the replay guard after a restart: the emit
// cursor resumes just past t, so seconds a previous life already published
// are refused even when the daemons re-serve them.
func (m *hadoopLogModule) RestoreReplayWatermark(t time.Time) {
	m.nextEmit.Store(t.Unix() + 1)
}

// ExportBreakerSnapshots snapshots per-node breaker state — leader
// connections included — for persistence (nil in local mode or with an
// unsupervised custom dialer).
func (m *hadoopLogModule) ExportBreakerSnapshots() map[string]rpc.BreakerSnapshot {
	out := exportBreakers(m.clients)
	if m.hier != nil {
		out = mergeBreakerSnaps(out, exportBreakers(m.hier.clients()))
	}
	return out
}

// ImportBreakerSnapshots restores persisted breaker state, staggering
// re-probes of non-closed breakers through plan.
func (m *hadoopLogModule) ImportBreakerSnapshots(snaps map[string]rpc.BreakerSnapshot, plan *rpc.ProbePlanner) int {
	n := importBreakers(m.clients, snaps, plan)
	if m.hier != nil {
		n += importBreakers(m.hier.clients(), snaps, plan)
	}
	return n
}

// emitSynchronized resolves pending seconds in order. A second is resolved
// when it is *final*: every node has data for it (complete), or every node
// has revealed newer data (the §3.7 strict rule: it will never complete),
// or it is older than the straggler deadline (degraded mode). Complete
// seconds are published on every node; incomplete-but-final seconds are
// published partially when at least syncQuorum nodes reported them, and
// dropped otherwise. Resolution stops at the first non-final second so
// samples always flow downstream in timestamp order.
func (m *hadoopLogModule) emitSynchronized(now time.Time) {
	ne := m.nextEmit.Load()
	if ne == 0 {
		return
	}
	quorum := m.syncQuorum
	if m.quorumAuto {
		// sync_quorum = auto: the adaptive controller derives the quorum
		// from this instance's live open-breaker count (strict while the
		// controller is relaxed or absent). A leader breaker counts once,
		// even though it gates a whole range — deliberately conservative.
		open, _ := countBreakers(m.clients)
		if m.hier != nil {
			ho, _ := countBreakers(m.hier.clients())
			open += ho
		}
		quorum = m.env.Adaptive.EffectiveQuorum(m.id, len(m.nodes), open)
	}
	// frontier: newest second every node has reached (-1 while some node
	// has revealed nothing). newest: newest second any node has reached.
	frontier, newest := int64(-1), int64(0)
	for _, s := range m.maxSeen {
		if s > newest {
			newest = s
		}
		if frontier == -1 || s < frontier {
			frontier = s
		}
	}
	// overdueSec: seconds at or below this have passed the straggler
	// deadline (-1 disables; strict mode waits for the frontier alone).
	overdueSec := int64(-1)
	if m.syncDeadline > 0 {
		overdueSec = now.Add(-m.syncDeadline).Unix()
	}
	top := frontier
	if overdueSec > top {
		top = overdueSec
	}
	if top > newest {
		top = newest // never resolve ahead of all data
	}

	for sec := ne; sec <= top; sec++ {
		have := 0
		for i := range m.pending {
			if _, ok := m.pending[i][sec]; ok {
				have++
			}
		}
		complete := have == len(m.nodes)
		final := complete ||
			(frontier > 0 && sec <= frontier) || // every node reached it: it will never grow
			(overdueSec >= 0 && sec <= overdueSec) // straggler deadline expired
		if !final {
			break // must keep waiting; later seconds stay queued too
		}
		emit := complete || have >= quorum
		t := time.Unix(sec, 0).UTC()
		for i := range m.pending {
			counts, ok := m.pending[i][sec]
			if !ok {
				m.missing[i]++
				if m.mMissing != nil {
					m.mMissing[i].Inc()
				}
				continue
			}
			if emit {
				m.outs[i].Publish(core.Sample{Time: t, Values: counts})
			}
			delete(m.pending[i], sec)
		}
		switch {
		case complete:
		case emit:
			m.partial++
			m.mPartial.Inc()
		default:
			m.dropped++
			m.mDropped.Inc()
		}
		m.nextEmit.Store(sec + 1)
	}
}

// DroppedTimestamps reports how many seconds were discarded because fewer
// than the quorum of nodes produced data for them.
func (m *hadoopLogModule) DroppedTimestamps() uint64 { return m.dropped }

// PartialTimestamps reports how many seconds were published in degraded
// mode, i.e. without data from every node.
func (m *hadoopLogModule) PartialTimestamps() uint64 { return m.partial }

// MissingByNode reports, per node, how many resolved seconds lacked that
// node's data — the per-sample visibility downstream analyses use to
// account for partial vectors.
func (m *hadoopLogModule) MissingByNode() map[string]uint64 {
	out := make(map[string]uint64, len(m.nodes))
	for i, n := range m.nodes {
		out[n] = m.missing[i]
	}
	return out
}

// ClientHealths reports per-node connection health in rpc mode (nil in
// local mode or with an unsupervised custom dialer), keyed by node name;
// leader connections appear as "leader:<addr>" rows.
func (m *hadoopLogModule) ClientHealths() map[string]rpc.Health {
	if m.clients == nil && m.hier == nil {
		return nil
	}
	out := make(map[string]rpc.Health, len(m.clients))
	for i, c := range m.clients {
		if h, ok := sourceHealth(c); ok {
			out[m.nodes[i]] = h
		}
	}
	if m.hier != nil {
		m.hier.healths(out)
	}
	return out
}

// ShardStatuses reports per-shard sweep accounting (with per-shard open
// breaker counts in rpc mode); nil when the instance runs a single shard.
func (m *hadoopLogModule) ShardStatuses() []ShardStatus {
	return m.sharder.statusesWithBreakers(m.clients)
}

// LeaderStatuses reports per-leader delegation accounting; nil without
// delegated ranges.
func (m *hadoopLogModule) LeaderStatuses() []LeaderStatus {
	if m.hier == nil {
		return nil
	}
	return m.hier.statuses()
}

var _ core.Module = (*hadoopLogModule)(nil)
