package modules

import (
	"math"
	"sync"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// AdaptiveConfig tunes the adaptive degradation controller.
type AdaptiveConfig struct {
	// TightenAt is the open-breaker fraction at or above which the
	// controller tightens (default 0.25).
	TightenAt float64
	// RelaxAt is the fraction at or below which a tightened controller
	// relaxes (default 0.10). The gap between the two thresholds is the
	// hysteresis band: a fraction oscillating inside it never flaps the
	// mode.
	RelaxAt float64
	// QuorumFloorFrac is the lowest fraction of an instance's nodes an
	// auto quorum may relax to, rounded up (default 0.5). The ceiling is
	// always the strict quorum (every node).
	QuorumFloorFrac float64
	// TightenedDegrade is the gap-fill policy degrade = auto instances
	// resolve to while tightened (default DegradeHold); while relaxed they
	// resolve to DegradeSkip.
	TightenedDegrade core.DegradePolicy
	// Metrics, when non-nil, registers the asdf_adaptive_* series.
	Metrics *telemetry.Registry
	// Logf receives mode-transition decisions; nil discards them.
	Logf func(format string, args ...any)
}

// AdaptiveController derives the effective degrade policy and sync quorum
// for instances configured with degrade = auto or sync_quorum = auto from
// the live health of the collection plane (the fraction of per-node circuit
// breakers currently open). Collection modules feed it one observation per
// sweep; the engine's degrade resolver and the timestamp synchronizer read
// it. Transitions use hysteresis so a breaker flapping at the threshold
// does not flap the policy, and every transition is logged.
//
// All methods are safe on a nil receiver, resolving to the strict
// (non-degraded) behaviour, so wiring stays optional.
type AdaptiveController struct {
	mu        sync.Mutex
	cfg       AdaptiveConfig
	open      map[string]int // per observing instance: open breakers
	total     map[string]int // per observing instance: supervised clients
	tightened bool

	mFraction    *telemetry.Gauge
	mTightened   *telemetry.Gauge
	mTransitions *telemetry.Counter
	mQuorum      map[string]*telemetry.Gauge // per synchronizing instance
}

// NewAdaptiveController builds a controller, filling config defaults.
func NewAdaptiveController(cfg AdaptiveConfig) *AdaptiveController {
	if cfg.TightenAt <= 0 {
		cfg.TightenAt = 0.25
	}
	if cfg.RelaxAt <= 0 {
		cfg.RelaxAt = 0.10
	}
	if cfg.RelaxAt > cfg.TightenAt {
		cfg.RelaxAt = cfg.TightenAt
	}
	if cfg.QuorumFloorFrac <= 0 {
		cfg.QuorumFloorFrac = 0.5
	}
	if cfg.TightenedDegrade == 0 {
		cfg.TightenedDegrade = core.DegradeHold
	}
	c := &AdaptiveController{
		cfg:   cfg,
		open:  make(map[string]int),
		total: make(map[string]int),
	}
	if reg := cfg.Metrics; reg != nil {
		c.mFraction = reg.Gauge("asdf_adaptive_open_breaker_fraction",
			"Fraction of collection-plane circuit breakers currently open.")
		c.mTightened = reg.Gauge("asdf_adaptive_tightened",
			"1 while the adaptive controller is tightened (degraded mode), else 0.")
		c.mTransitions = reg.Counter("asdf_adaptive_transitions_total",
			"Tighten/relax mode transitions of the adaptive controller.")
		c.mQuorum = make(map[string]*telemetry.Gauge)
	}
	return c
}

// ObserveBreakers records one collection instance's sweep: how many of its
// supervised per-node connections have an open breaker, out of how many
// total. It recomputes the global open fraction and applies the hysteresis
// thresholds.
func (c *AdaptiveController) ObserveBreakers(instance string, open, total int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.open[instance] = open
	c.total[instance] = total
	sumOpen, sumTotal := 0, 0
	for _, v := range c.open {
		sumOpen += v
	}
	for _, v := range c.total {
		sumTotal += v
	}
	frac := 0.0
	if sumTotal > 0 {
		frac = float64(sumOpen) / float64(sumTotal)
	}
	c.mFraction.Set(frac)
	switch {
	case !c.tightened && frac >= c.cfg.TightenAt:
		c.tightened = true
		c.mTransitions.Inc()
		c.logf("adaptive: open breaker fraction %.2f >= %.2f (%d/%d): tightening (degrade=%s, quorum floor %.0f%%)",
			frac, c.cfg.TightenAt, sumOpen, sumTotal, c.cfg.TightenedDegrade, 100*c.cfg.QuorumFloorFrac)
	case c.tightened && frac <= c.cfg.RelaxAt:
		c.tightened = false
		c.mTransitions.Inc()
		c.logf("adaptive: open breaker fraction %.2f <= %.2f (%d/%d): relaxing to strict mode",
			frac, c.cfg.RelaxAt, sumOpen, sumTotal)
	}
	if c.tightened {
		c.mTightened.Set(1)
	} else {
		c.mTightened.Set(0)
	}
}

// Tightened reports whether the controller is in degraded mode.
func (c *AdaptiveController) Tightened() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tightened
}

// DegradePolicy resolves degrade = auto: DegradeSkip while relaxed (a
// quarantined instance simply publishes nothing), the configured tightened
// policy (default DegradeHold) while the collection plane is degraded, so
// downstream windows keep flowing through correlated outages. Safe on a nil
// receiver (always DegradeSkip), and suitable as a core.WithDegradeResolver
// callback.
func (c *AdaptiveController) DegradePolicy() core.DegradePolicy {
	if c == nil {
		return core.DegradeSkip
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tightened {
		return c.cfg.TightenedDegrade
	}
	return core.DegradeSkip
}

// EffectiveQuorum resolves sync_quorum = auto for one synchronizing
// instance with the given node count and currently-open breaker count.
// While relaxed the quorum is strict (every node); while tightened it
// drops to the nodes expected to report (nodes - open), clamped to the
// floor ceil(QuorumFloorFrac * nodes) and the ceiling nodes. Safe on a nil
// receiver (strict).
func (c *AdaptiveController) EffectiveQuorum(instance string, nodes, open int) int {
	if nodes <= 0 {
		return nodes
	}
	if c == nil {
		return nodes
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	q := nodes
	if c.tightened {
		q = nodes - open
		if floor := int(math.Ceil(c.cfg.QuorumFloorFrac * float64(nodes))); q < floor {
			q = floor
		}
		if q < 1 {
			q = 1
		}
		if q > nodes {
			q = nodes
		}
	}
	if c.mQuorum != nil {
		g, ok := c.mQuorum[instance]
		if !ok {
			g = c.cfg.Metrics.Gauge("asdf_adaptive_sync_quorum",
				"Effective synchronization quorum resolved for sync_quorum = auto.",
				telemetry.L("instance", instance))
			c.mQuorum[instance] = g
		}
		g.Set(float64(q))
	}
	return q
}

func (c *AdaptiveController) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
