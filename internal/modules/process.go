package modules

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/stats"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// mavgvecModule computes the arithmetic mean and variance of a moving
// window of vector samples (§3.6): output0 is the window mean, output1 the
// window variance.
//
// Parameters:
//
//	window = <samples>   (required)
//	slide  = <samples>   (default 1: emit on every new sample once full)
//	nodes  = <count>     (multi-node form: one instance smooths count input
//	                      streams batched per tick; outputs mean0..N-1 and
//	                      var0..N-1 instead of output0/output1)
//	fanout = <int>       (multi-node: worker budget; default min(16, nodes))
//	block  = <int>       (multi-node: nodes per worker block; default 64)
type mavgvecModule struct {
	window     *stats.VectorWindow
	windowSize int
	slide      int
	sinceEmit  int
	meanOut    *core.OutputPort
	varOut     *core.OutputPort

	// multi is set in the multi-node (nodes =) form, which batches all
	// nodes' smoothing into one flat-matrix pass per tick (batch.go).
	multi *mavgvecBatch

	// meanScratch is the reusable intermediate for the variance pass.
	// Published mean/variance slices must stay freshly allocated: a
	// published Sample's Values live on in downstream port queues, so
	// reusing those buffers would corrupt queued samples.
	meanScratch []float64
}

func (m *mavgvecModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	var err error
	if m.windowSize, err = cfg.IntParam("window", 0); err != nil {
		return err
	}
	if m.windowSize <= 0 {
		return fmt.Errorf("mavgvec: window must be positive")
	}
	if m.slide, err = cfg.IntParam("slide", 1); err != nil {
		return err
	}
	if m.slide <= 0 {
		return fmt.Errorf("mavgvec: slide must be positive")
	}
	nodes, workers, block, err := batchParams(cfg, "mavgvec")
	if err != nil {
		return err
	}
	if nodes > 0 {
		m.multi = &mavgvecBatch{}
		return m.multi.init(ctx, nodes, m.windowSize, m.slide, workers, block)
	}
	inputs := ctx.Inputs()
	if len(inputs) != 1 {
		return fmt.Errorf("mavgvec: want exactly 1 input, got %d", len(inputs))
	}
	origin := inputs[0].Origin()
	origin.Source = "mavgvec(" + origin.Source + ")"
	if m.meanOut, err = ctx.NewOutput("output0", origin); err != nil {
		return err
	}
	if m.varOut, err = ctx.NewOutput("output1", origin); err != nil {
		return err
	}
	return nil
}

func (m *mavgvecModule) Run(ctx *core.RunContext) error {
	if m.multi != nil {
		return m.multi.run(ctx)
	}
	for _, s := range ctx.Inputs()[0].Read() {
		if m.window == nil {
			m.window = stats.NewVectorWindow(m.windowSize, len(s.Values))
			m.meanScratch = make([]float64, len(s.Values))
		}
		if err := m.window.Push(s.Values); err != nil {
			return fmt.Errorf("mavgvec: %w", err)
		}
		m.sinceEmit++
		if m.window.Full() && m.sinceEmit >= m.slide {
			m.sinceEmit = 0
			mean := m.window.MeanInto(make([]float64, m.window.Dim()))
			m.meanOut.Publish(core.Sample{Time: s.Time, Values: mean})
			variance := m.window.VarianceInto(make([]float64, m.window.Dim()), m.meanScratch)
			m.varOut.Publish(core.Sample{Time: s.Time, Values: variance})
		}
	}
	return nil
}

var _ core.Module = (*mavgvecModule)(nil)

// knnModule classifies each input vector to its nearest trained centroid
// after log scaling (§3.6; with k=1 this is the onenn instance of the
// paper's configuration). output0 carries the state index.
//
// Parameters:
//
//	model_file = <path>                 (JSON model from analysis.TrainModel)
//	sigma      = s1,s2,...              (inline alternative to model_file)
//	centroids  = c11,c12;c21,c22;...    (inline alternative)
//	nodes      = <count>                (multi-node form: one instance
//	                                     classifies count input streams as a
//	                                     batched flat matrix per tick;
//	                                     outputs output0..N-1)
//	fanout     = <int>                  (multi-node: worker budget; default
//	                                     min(16, nodes))
//	block      = <int>                  (multi-node: nodes per worker block;
//	                                     default 64)
type knnModule struct {
	model   *analysis.Model
	out     *core.OutputPort
	scratch []float64 // classify scratch: projection/scaling workspace

	// multi is set in the multi-node (nodes =) form, which batches all
	// nodes' classification into one flat-matrix pass per tick (batch.go).
	multi *knnBatch
}

// parseKNNModel loads the instance's model from model_file or the inline
// sigma/centroids parameters.
func parseKNNModel(cfg *config.Instance) (*analysis.Model, error) {
	if path := cfg.StringParam("model_file", ""); path != "" {
		return analysis.LoadModel(path)
	}
	sigma, err := cfg.FloatListParam("sigma", nil)
	if err != nil {
		return nil, err
	}
	centStr, ok := cfg.Param("centroids")
	if sigma == nil || !ok {
		return nil, fmt.Errorf("knn: need model_file, or inline sigma and centroids")
	}
	var centroids [][]float64
	for _, row := range strings.Split(centStr, ";") {
		row = strings.TrimSpace(row)
		if row == "" {
			continue
		}
		var vec []float64
		for _, f := range strings.Split(row, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("knn: centroids: %w", err)
			}
			vec = append(vec, v)
		}
		centroids = append(centroids, vec)
	}
	model := &analysis.Model{Sigma: sigma, Centroids: centroids}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return model, nil
}

func (m *knnModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	model, err := parseKNNModel(cfg)
	if err != nil {
		return err
	}
	m.model = model
	nodes, workers, block, err := batchParams(cfg, "knn")
	if err != nil {
		return err
	}
	if nodes > 0 {
		m.multi = &knnBatch{}
		return m.multi.init(ctx, m.model, nodes, workers, block)
	}
	inputs := ctx.Inputs()
	if len(inputs) != 1 {
		return fmt.Errorf("knn: want exactly 1 input, got %d", len(inputs))
	}
	origin := inputs[0].Origin()
	origin.Source = "knn(" + origin.Source + ")"
	origin.Metric = "state"
	m.out, err = ctx.NewOutput("output0", origin)
	return err
}

func (m *knnModule) Run(ctx *core.RunContext) error {
	if m.multi != nil {
		return m.multi.run(ctx)
	}
	for _, s := range ctx.Inputs()[0].Read() {
		if need := m.model.ScratchLen(s.Values); len(m.scratch) < need {
			m.scratch = make([]float64, need)
		}
		state, err := m.model.ClassifyInto(s.Values, m.scratch)
		if err != nil {
			return fmt.Errorf("knn: %w", err)
		}
		m.out.Publish(core.NewScalar(s.Time, float64(state)))
	}
	return nil
}

var _ core.Module = (*knnModule)(nil)

// ibufferModule absorbs the rate mismatch between fast collectors and slow
// analyses (§3.7): it buffers up to size samples and forwards them in
// order, so a slow downstream module sees a batch rather than dropping
// samples from its own (shorter) input queue.
//
// Parameters:
//
//	size = <samples>   (default 10, as in the paper's Figure 3)
//
// Overflow drops are operator-visible: the running count is exported as
// asdf_ibuffer_dropped_total{instance=...} and as the IBUFFER section of
// the status report — a buffer that drops is the first sign an analysis is
// falling behind its collectors.
type ibufferModule struct {
	env       *Env
	size      int
	pending   []core.Sample
	dropped   uint64
	forwarded uint64
	out       *core.OutputPort

	mDropped *telemetry.Counter
}

func (m *ibufferModule) Init(ctx *core.InitContext) error {
	var err error
	if m.size, err = ctx.Config().IntParam("size", 10); err != nil {
		return err
	}
	if m.size <= 0 {
		return fmt.Errorf("ibuffer: size must be positive")
	}
	inputs := ctx.Inputs()
	if len(inputs) != 1 {
		return fmt.Errorf("ibuffer: want exactly 1 input, got %d", len(inputs))
	}
	if m.env != nil && m.env.Metrics != nil {
		m.mDropped = m.env.Metrics.Counter("asdf_ibuffer_dropped_total",
			"Samples dropped by ibuffer overflow.", telemetry.L("instance", ctx.ID()))
	}
	m.out, err = ctx.NewOutput("output0", inputs[0].Origin())
	return err
}

func (m *ibufferModule) Run(ctx *core.RunContext) error {
	for _, s := range ctx.Inputs()[0].Read() {
		if len(m.pending) >= m.size {
			m.pending = m.pending[1:]
			m.dropped++
			if m.mDropped != nil {
				m.mDropped.Inc()
			}
		}
		m.pending = append(m.pending, s)
	}
	for _, s := range m.pending {
		m.out.Publish(s)
	}
	m.forwarded += uint64(len(m.pending))
	m.pending = m.pending[:0]
	return nil
}

// IbufferStatus reports the module's drop accounting (DropReporter).
func (m *ibufferModule) IbufferStatus() IbufferStatus {
	return IbufferStatus{Size: m.size, Dropped: m.dropped, Forwarded: m.forwarded}
}

var _ core.Module = (*ibufferModule)(nil)
var _ DropReporter = (*ibufferModule)(nil)
