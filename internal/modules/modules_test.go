package modules

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/sadc"
)

// simEnv builds an Env over a simulated cluster.
func simEnv(c *hadoopsim.Cluster) *Env {
	env := NewEnv()
	for _, n := range c.Slaves() {
		env.Procfs[n.Name] = n
		env.TTLogs[n.Name] = n.TaskTrackerLog()
		env.DNLogs[n.Name] = n.DataNodeLog()
	}
	env.Clock = c.Now
	return env
}

func mustEngine(t *testing.T, env *Env, cfgText string) *core.Engine {
	t.Helper()
	cfg, err := config.ParseString(cfgText)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(NewRegistry(env), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runSim ticks cluster and engine in lockstep.
func runSim(t *testing.T, c *hadoopsim.Cluster, e *core.Engine, seconds int) {
	t.Helper()
	for i := 0; i < seconds; i++ {
		c.Tick()
		if err := e.Tick(c.Now()); err != nil {
			t.Fatal(err)
		}
	}
}

// trainModelFromSim runs a fault-free cluster and trains a validated
// black-box model from all slaves' sadc vectors.
func trainModelFromSim(t *testing.T, slaves int, seconds int, k int) *analysis.Model {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, 1000))
	if err != nil {
		t.Fatal(err)
	}
	collectors := make([]*sadc.Collector, slaves)
	for i, n := range c.Slaves() {
		collectors[i] = sadc.NewCollector(n)
		if _, err := collectors[i].Collect(); err != nil {
			t.Fatal(err)
		}
	}
	var series [][][]float64
	for s := 0; s < seconds; s++ {
		c.Tick()
		row := make([][]float64, slaves)
		for i := range collectors {
			rec, err := collectors[i].Collect()
			if err != nil {
				t.Fatal(err)
			}
			row[i] = rec.Node
		}
		series = append(series, row)
	}
	indexes, err := sadc.NodeMetricIndexes(sadc.AnalysisMetricNames)
	if err != nil {
		t.Fatal(err)
	}
	model, err := analysis.TrainValidatedModel(series, analysis.TrainOptions{
		K: k, Seed: 7, MetricIndexes: indexes, Perturb: sadc.CPUHogPerturbation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestSadcModuleLocal(t *testing.T) {
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	e := mustEngine(t, env, `
[sadc]
id = s0
node = slave01
period = 1

[csv]
id = log
path = `+filepath.Join(t.TempDir(), "out.csv")+`
input[a] = s0.output0
`)
	runSim(t, c, e, 5)
	out := e.OutputPortsOf("s0")[0]
	// First collection is warmup; 4 samples follow.
	if got := out.Published(); got != 4 {
		t.Errorf("published = %d, want 4", got)
	}
	s, ok := out.Last()
	if !ok || len(s.Values) != len(sadc.NodeMetricNames) {
		t.Errorf("last sample has %d values", len(s.Values))
	}
}

func TestSadcModuleConfigErrors(t *testing.T) {
	env := NewEnv()
	for _, cfgText := range []string{
		"[sadc]\nid=s\nperiod=1\n",                        // missing node
		"[sadc]\nid=s\nnode=ghost\n",                      // unknown provider
		"[sadc]\nid=s\nnode=x\nmode=bogus\n",              // bad mode
		"[sadc]\nid=s\nnode=x\nmode=rpc\n",                // rpc without addr
		"[hadoop_log]\nid=h\nnodes=a\n",                   // missing kind
		"[hadoop_log]\nid=h\nkind=tasktracker\n",          // missing nodes
		"[hadoop_log]\nid=h\nkind=bogus\nnodes=a\n",       // bad kind
		"[hadoop_log]\nid=h\nkind=tasktracker\nnodes=a\n", // unregistered node
	} {
		cfg, err := config.ParseString(cfgText)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.NewEngine(NewRegistry(env), cfg); err == nil {
			t.Errorf("config %q should fail engine construction", cfgText)
		}
	}
}

func TestHadoopLogModuleSynchronization(t *testing.T) {
	env := NewEnv()
	bufA := hadooplog.NewBuffer(0)
	bufB := hadooplog.NewBuffer(0)
	env.TTLogs["a"] = bufA
	env.TTLogs["b"] = bufB
	wA := hadooplog.NewWriter(hadooplog.KindTaskTracker, bufA)
	wB := hadooplog.NewWriter(hadooplog.KindTaskTracker, bufB)

	e := mustEngine(t, env, `
[hadoop_log]
id = hl
kind = tasktracker
nodes = a,b
period = 1

[print]
id = p
input[x] = @hl
only_nonzero = false
`)
	base := time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	// Node a logs from t=0; node b only from t=3. Timestamps 0..2 must be
	// dropped, not published.
	if err := wA.LaunchTask(base, hadooplog.TaskID(1, true, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := wB.LaunchTask(base.Add(3*time.Second), hadooplog.TaskID(1, true, 1, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := e.Tick(base.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	outs := e.OutputPortsOf("hl")
	if len(outs) != 2 {
		t.Fatalf("hl outputs = %d", len(outs))
	}
	pubA, pubB := outs[0].Published(), outs[1].Published()
	if pubA != pubB {
		t.Errorf("unsynchronized publishes: a=%d b=%d", pubA, pubB)
	}
	if pubA == 0 {
		t.Fatal("nothing published")
	}
	// The first published sample must be at t=3 (first common second).
	mod, _ := e.ModuleOf("hl")
	hl := mod.(*hadoopLogModule)
	if hl.DroppedTimestamps() != 3 {
		t.Errorf("dropped = %d, want 3 (seconds 0..2)", hl.DroppedTimestamps())
	}
	if s, ok := outs[0].Last(); ok && s.Time.Before(base.Add(3*time.Second)) {
		t.Errorf("published pre-sync timestamp %v", s.Time)
	}
}

func TestMavgvecModule(t *testing.T) {
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	e := mustEngine(t, env, `
[sadc]
id = s0
node = slave01
period = 1

[mavgvec]
id = mv
window = 3
slide = 3
input[in] = s0.output0

[print]
id = p
input[x] = @mv
only_nonzero = false
`)
	runSim(t, c, e, 10) // 9 samples post-warmup -> windows at 3,6,9
	mod, _ := e.ModuleOf("mv")
	_ = mod
	outs := e.OutputPortsOf("mv")
	if len(outs) != 2 {
		t.Fatalf("mavgvec outputs = %d, want 2 (mean, variance)", len(outs))
	}
	if got := outs[0].Published(); got != 3 {
		t.Errorf("mean published = %d, want 3", got)
	}
	mean, _ := outs[0].Last()
	variance, _ := outs[1].Last()
	if len(mean.Values) != len(sadc.NodeMetricNames) || len(variance.Values) != len(mean.Values) {
		t.Errorf("output dimensions wrong: %d / %d", len(mean.Values), len(variance.Values))
	}
	for _, v := range variance.Values {
		if v < 0 {
			t.Error("negative variance")
		}
	}
}

func TestKnnModuleInlineCentroids(t *testing.T) {
	env := NewEnv()
	bufA := hadooplog.NewBuffer(0)
	env.TTLogs["a"] = bufA
	// Build a tiny synthetic pipeline: hadoop_log provides vectors of 5
	// state counts; knn classifies them against 2 inline centroids.
	e := mustEngine(t, env, `
[hadoop_log]
id = hl
kind = tasktracker
nodes = a
period = 1

[knn]
id = nn
sigma = 1,1,1,1,1,1,1,1
centroids = 0,0,0,0,0,0,0,0; 3.4,0,0,0,0,0,0,0
input[in] = hl.a

[print]
id = p
input[x] = nn.output0
only_nonzero = false
`)
	w := hadooplog.NewWriter(hadooplog.KindTaskTracker, bufA)
	base := time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	// Many concurrent maps -> vector far from the origin centroid.
	for i := 0; i < 30; i++ {
		if err := w.LaunchTask(base, hadooplog.TaskID(1, true, i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		if err := e.Tick(base.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	out := e.OutputPortsOf("nn")[0]
	s, ok := out.Last()
	if !ok {
		t.Fatal("knn produced nothing")
	}
	if s.Scalar() != 1 {
		t.Errorf("state = %v, want 1 (the busy centroid)", s.Scalar())
	}
}

func TestKnnModuleModelFile(t *testing.T) {
	dir := t.TempDir()
	model := &analysis.Model{
		Sigma:     []float64{1, 1},
		Centroids: [][]float64{{0, 0}, {3, 3}},
	}
	path := filepath.Join(dir, "model.json")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := analysis.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumStates() != 2 {
		t.Errorf("NumStates = %d", loaded.NumStates())
	}
}

func TestIbufferModuleForwardsAndBounds(t *testing.T) {
	env := NewEnv()
	bufA := hadooplog.NewBuffer(0)
	env.TTLogs["a"] = bufA
	e := mustEngine(t, env, `
[hadoop_log]
id = hl
kind = tasktracker
nodes = a
period = 1

[ibuffer]
id = buf
size = 10
input[input] = hl.a

[print]
id = p
input[x] = buf.output0
only_nonzero = false
`)
	w := hadooplog.NewWriter(hadooplog.KindTaskTracker, bufA)
	base := time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	if err := w.LaunchTask(base, hadooplog.TaskID(1, true, 0, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := e.Tick(base.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	in := e.OutputPortsOf("hl")[0].Published()
	out := e.OutputPortsOf("buf")[0].Published()
	if in == 0 || out != in {
		t.Errorf("ibuffer forwarded %d of %d samples", out, in)
	}
}

func TestPrintModuleFiltersZeroes(t *testing.T) {
	var sink bytes.Buffer
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	env.AlarmWriter = &sink
	e := mustEngine(t, env, `
[sadc]
id = s0
node = slave01
period = 1

[print]
id = alarms
label = TestAlarm
input[a] = s0.output0
only_nonzero = false
`)
	runSim(t, c, e, 3)
	if !strings.Contains(sink.String(), "[TestAlarm]") {
		t.Errorf("print output missing label: %q", sink.String())
	}
	if !strings.Contains(sink.String(), "node=slave01") {
		t.Errorf("print output missing origin: %q", sink.String())
	}
}

func TestCsvModuleWritesRows(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	e := mustEngine(t, env, fmt.Sprintf(`
[sadc]
id = s0
node = slave02
period = 1

[csv]
id = sink
path = %s
input[a] = s0.output0
`, path))
	runSim(t, c, e, 5)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(data), "\n")
	if len(lines) != 5 { // header + 4 post-warmup samples
		t.Fatalf("csv has %d lines, want 5: %q", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "time,node,source") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "slave02") {
		t.Errorf("row = %q", lines[1])
	}
}

func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}

func TestSadcModuleExtraOutputs(t *testing.T) {
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	e := mustEngine(t, env, `
[sadc]
id = s0
node = slave01
period = 1
ifaces = eth0, lo
pids = 3001,3002

[print]
id = p
only_nonzero = false
input[a] = s0.net_eth0
input[b] = s0.proc_3001
input[c] = s0.proc_3002
`)
	runSim(t, c, e, 5)
	outs := e.OutputPortsOf("s0")
	// output0 + 2 ifaces + 2 pids.
	if len(outs) != 5 {
		t.Fatalf("sadc created %d outputs, want 5", len(outs))
	}
	byName := make(map[string]*core.OutputPort)
	for _, o := range outs {
		byName[o.Name()] = o
	}
	// The simulated node has eth0 but no lo: eth0 publishes, lo stays
	// silent rather than erroring.
	if byName["net_eth0"].Published() == 0 {
		t.Error("net_eth0 never published")
	}
	if byName["net_lo"].Published() != 0 {
		t.Error("net_lo should have no data on the simulated node")
	}
	s, ok := byName["net_eth0"].Last()
	if !ok || len(s.Values) != len(sadc.NetMetricNames) {
		t.Errorf("net_eth0 vector has %d values, want %d", len(s.Values), len(sadc.NetMetricNames))
	}
	for _, name := range []string{"proc_3001", "proc_3002"} {
		if byName[name].Published() == 0 {
			t.Errorf("%s never published", name)
		}
		s, _ := byName[name].Last()
		if len(s.Values) != len(sadc.ProcMetricNames) {
			t.Errorf("%s vector has %d values, want %d", name, len(s.Values), len(sadc.ProcMetricNames))
		}
	}
}

func TestSadcModuleBadPid(t *testing.T) {
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	cfg, err := config.ParseString("[sadc]\nid=s\nnode=slave01\npids=abc\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewEngine(NewRegistry(env), cfg); err == nil {
		t.Error("non-numeric pid should fail init")
	}
}
