package modules

import (
	"math"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/stats"
)

// smoothFixture builds a steady-state batchSmoother: nodes sliding windows,
// one fresh sample per node per tick, windows already full so every tick
// emits on slide = 1.
func smoothFixture(nodes, dim, window, slide, workers, block int) (*batchSmoother, [][]core.Sample) {
	sm := newBatchSmoother(nodes, window, slide, workers, block)
	pending := make([][]core.Sample, nodes)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := range pending {
		vals := make([]float64, dim)
		for d := range vals {
			vals[d] = float64(i*dim + d)
		}
		pending[i] = []core.Sample{{Time: base, Values: vals}}
	}
	return sm, pending
}

// advance mutates each node's pending sample in place: a new tick's worth
// of values without reallocating the fixture.
func advance(pending [][]core.Sample, tick int) {
	for i := range pending {
		for d := range pending[i][0].Values {
			pending[i][0].Values[d] = math.Sin(float64(tick*31+i*7+d))*10 + 50
		}
		pending[i][0].Time = pending[i][0].Time.Add(time.Second)
	}
}

// TestBatchSmootherMatchesVectorWindow replays the same per-node streams
// through the batched kernel and through plain per-node VectorWindows,
// asserting bit-identical means and variances for every emission.
func TestBatchSmootherMatchesVectorWindow(t *testing.T) {
	const nodes, dim, window, slide = 7, 5, 6, 2
	sm, pending := smoothFixture(nodes, dim, window, slide, 3, 2)
	defer sm.pool.Close()

	ref := make([]*stats.VectorWindow, nodes)
	sinceEmit := make([]int, nodes)
	refMean := make([]float64, dim)
	refVar := make([]float64, dim)
	scratch := make([]float64, dim)
	for i := range ref {
		ref[i] = stats.NewVectorWindow(window, dim)
	}

	for tick := 0; tick < 40; tick++ {
		advance(pending, tick)
		// Reference push first: smooth reads pending, the windows copy.
		type emission struct{ mean, variance []float64 }
		want := make([][]emission, nodes)
		for i := range pending {
			for _, s := range pending[i] {
				if err := ref[i].Push(s.Values); err != nil {
					t.Fatal(err)
				}
				sinceEmit[i]++
				if ref[i].Full() && sinceEmit[i] >= slide {
					sinceEmit[i] = 0
					ref[i].MeanInto(refMean)
					ref[i].VarianceInto(refVar, scratch)
					want[i] = append(want[i], emission{
						mean:     append([]float64(nil), refMean...),
						variance: append([]float64(nil), refVar...),
					})
				}
			}
		}
		if err := sm.smooth(pending); err != nil {
			t.Fatal(err)
		}
		for i := range pending {
			if sm.emitN[i] != len(want[i]) {
				t.Fatalf("tick %d node %d: %d emissions, want %d", tick, i, sm.emitN[i], len(want[i]))
			}
			for e, w := range want[i] {
				slot := sm.base[i] + e
				for d := 0; d < dim; d++ {
					gm := sm.emitMean[slot*dim+d]
					gv := sm.emitVar[slot*dim+d]
					if math.Float64bits(gm) != math.Float64bits(w.mean[d]) {
						t.Fatalf("tick %d node %d emission %d mean[%d] = %v, want %v", tick, i, e, d, gm, w.mean[d])
					}
					if math.Float64bits(gv) != math.Float64bits(w.variance[d]) {
						t.Fatalf("tick %d node %d emission %d var[%d] = %v, want %v", tick, i, e, d, gv, w.variance[d])
					}
				}
			}
		}
	}
}

// TestBatchSmootherNoAllocs gates the steady-state zero-allocation
// contract of the batched smoothing kernel.
func TestBatchSmootherNoAllocs(t *testing.T) {
	const nodes, dim, window = 256, 16, 10
	sm, pending := smoothFixture(nodes, dim, window, 1, 4, 64)
	defer sm.pool.Close()
	// Warm up: fill every window and size every pooled buffer.
	for tick := 0; tick < window+2; tick++ {
		advance(pending, tick)
		if err := sm.smooth(pending); err != nil {
			t.Fatal(err)
		}
	}
	tick := window + 2
	allocs := testing.AllocsPerRun(50, func() {
		advance(pending, tick)
		tick++
		if err := sm.smooth(pending); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state smooth allocates %v times per tick, want 0", allocs)
	}
}

// BenchmarkBatchSmooth measures the steady-state batched smoothing pass:
// 256 nodes x 16 metrics, every window full, one emission per node per
// tick. CI gates the 0 allocs/op on this benchmark.
func BenchmarkBatchSmooth(b *testing.B) {
	const nodes, dim, window = 256, 16, 10
	sm, pending := smoothFixture(nodes, dim, window, 1, 4, 64)
	defer sm.pool.Close()
	for tick := 0; tick < window+2; tick++ {
		advance(pending, tick)
		if err := sm.smooth(pending); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sm.smooth(pending); err != nil {
			b.Fatal(err)
		}
	}
}
