package modules

import (
	"fmt"
	"time"

	"github.com/asdf-project/asdf/internal/core"
)

// actionModule implements the paper's future-work extension (§5): "equip
// ASDF with the ability to actively mitigate the consequences of a
// performance problem once it is detected." Each input carries one node's
// alarm stream (Sample values [flag, score] from an analysis module); when
// a node's alarm fires in `consecutive` successive samples — the same
// confidence rule behind the paper's fingerpointing latency — the module
// invokes a named mitigation action from the Env (e.g. blacklisting the
// node at the jobtracker), then holds off for a per-node cooldown.
//
// Parameters:
//
//	action      = <name>       (required; must exist in Env.Actions)
//	consecutive = <count>      (default 3)
//	cooldown    = <duration>   (default 10m)
//
// Outputs: action0..actionN-1, one per input; a sample [1] is published
// when the mitigation fires for that node.
type actionModule struct {
	env         *Env
	name        string
	act         func(node string) error
	consecutive int
	cooldown    time.Duration

	streak    []int
	lastFired []time.Time
	outs      []*core.OutputPort
	// Fired counts total mitigations, for tests and reporting.
	fired uint64
}

func (m *actionModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	m.name = cfg.StringParam("action", "")
	if m.name == "" {
		return errMissingParam("action", "action")
	}
	act, ok := m.env.Actions[m.name]
	if !ok {
		return fmt.Errorf("action: no action %q registered in the environment", m.name)
	}
	m.act = act
	var err error
	if m.consecutive, err = cfg.IntParam("consecutive", 3); err != nil {
		return err
	}
	if m.consecutive <= 0 {
		return fmt.Errorf("action: consecutive must be positive")
	}
	if m.cooldown, err = cfg.DurationParam("cooldown", 10*time.Minute); err != nil {
		return err
	}
	inputs := ctx.Inputs()
	if len(inputs) == 0 {
		return fmt.Errorf("action: requires at least one alarm input")
	}
	m.streak = make([]int, len(inputs))
	m.lastFired = make([]time.Time, len(inputs))
	for i, in := range inputs {
		origin := in.Origin()
		origin.Source = "action(" + m.name + ")"
		out, err := ctx.NewOutput(fmt.Sprintf("action%d", i), origin)
		if err != nil {
			return err
		}
		m.outs = append(m.outs, out)
	}
	return nil
}

func (m *actionModule) Run(ctx *core.RunContext) error {
	var firstErr error
	for i, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			if s.Scalar() == 0 {
				m.streak[i] = 0
				continue
			}
			m.streak[i]++
			if m.streak[i] < m.consecutive {
				continue
			}
			if !m.lastFired[i].IsZero() && s.Time.Sub(m.lastFired[i]) < m.cooldown {
				continue
			}
			node := in.Origin().Node
			if err := m.act(node); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("action %s(%s): %w", m.name, node, err)
				}
				continue
			}
			m.lastFired[i] = s.Time
			m.fired++
			m.outs[i].Publish(core.NewScalar(s.Time, 1))
		}
	}
	return firstErr
}

// Fired reports how many mitigations have been invoked.
func (m *actionModule) Fired() uint64 { return m.fired }

var _ core.Module = (*actionModule)(nil)
