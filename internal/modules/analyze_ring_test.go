package modules

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
)

func ringSample(v float64) core.Sample {
	return core.Sample{Time: time.Unix(int64(v), 0), Values: []float64{v}}
}

func TestSampleRingFIFOAcrossWrap(t *testing.T) {
	var r sampleRing
	next, popped := 0.0, 0.0
	// Repeated push/pop bursts force the head to wrap the backing buffer
	// many times; order must stay FIFO throughout.
	for round := 0; round < 50; round++ {
		for i := 0; i < 3+round%5; i++ {
			r.push(ringSample(next))
			next++
		}
		for r.len() > 2 {
			s := r.pop()
			if s.Scalar() != popped {
				t.Fatalf("round %d: popped %v, want %v", round, s.Scalar(), popped)
			}
			popped++
		}
	}
	for r.len() > 0 {
		if s := r.pop(); s.Scalar() != popped {
			t.Fatalf("drain: popped %v, want %v", s.Scalar(), popped)
		} else {
			popped++
		}
	}
	if popped != next {
		t.Fatalf("popped %v samples, pushed %v", popped, next)
	}
}

// TestSampleRingReleasesConsumedSamples is the head-retention regression:
// the old slice FIFO (q = q[1:]) kept every consumed sample reachable
// through the backing array. The ring must zero each slot on pop so the
// consumed Sample's Values can be collected immediately.
func TestSampleRingReleasesConsumedSamples(t *testing.T) {
	var r sampleRing
	for i := 0; i < 100; i++ {
		r.push(ringSample(float64(i)))
	}
	for r.len() > 0 {
		r.pop()
	}
	for i, s := range r.buf {
		if s.Values != nil || !s.Time.IsZero() {
			t.Fatalf("slot %d still holds a consumed sample: %+v", i, s)
		}
	}
}

// TestPeerSyncBoundedUnderSkew asserts the regression the ring rework
// fixes: under sustained skew — one input lagging its peers by a bounded
// number of samples — the aligner's memory must be bounded by the skew, not
// grow with the total number of samples ever queued.
func TestPeerSyncBoundedUnderSkew(t *testing.T) {
	const skew = 10
	const rounds = 5000
	ps := newPeerSync(2)
	fed, aligned := 0, 0
	for round := 0; round < rounds; round++ {
		// Input 0 delivers every round; input 1 delivers a burst of skew
		// samples every skew rounds (a lagging shard catching up).
		ps.rings[0].push(ringSample(float64(fed)))
		if round%skew == skew-1 {
			for i := 0; i < skew; i++ {
				ps.rings[1].push(ringSample(float64(fed - skew + 1 + i)))
			}
		}
		fed++
		for {
			row := ps.pop()
			if row == nil {
				break
			}
			if got, want := row[0].Scalar(), float64(aligned); got != want {
				t.Fatalf("row %d misaligned: input0 sample %v", aligned, got)
			}
			if row[0].Scalar() != row[1].Scalar() {
				t.Fatalf("row %d misaligned across inputs: %v vs %v", aligned, row[0].Scalar(), row[1].Scalar())
			}
			aligned++
		}
	}
	if aligned != rounds {
		t.Fatalf("aligned %d rows, want %d", aligned, rounds)
	}
	// Capacity is the high-water mark rounded up by doubling: a handful of
	// times the skew, never proportional to the rounds*samples total.
	for i := range ps.rings {
		if c := ps.rings[i].capacity(); c > 4*skew {
			t.Fatalf("ring %d capacity %d after %d rounds; want bounded by the %d-sample skew",
				i, c, rounds, skew)
		}
	}
}

// TestPeerSyncRowReuse documents the pop contract: the returned row is a
// reusable buffer, valid only until the next pop.
func TestPeerSyncRowReuse(t *testing.T) {
	ps := newPeerSync(2)
	ps.rings[0].push(ringSample(1))
	ps.rings[1].push(ringSample(1))
	first := ps.pop()
	ps.rings[0].push(ringSample(2))
	ps.rings[1].push(ringSample(2))
	second := ps.pop()
	if &first[0] != &second[0] {
		t.Fatal("pop allocated a fresh row; want the reused aligner buffer")
	}
}

func TestAppendResultBounds(t *testing.T) {
	mk := func(i int) *analysis.WindowResult { return &analysis.WindowResult{EndIndex: i} }
	var bounded []*analysis.WindowResult
	for i := 0; i < 10; i++ {
		bounded = appendResult(bounded, mk(i), 4)
	}
	if len(bounded) != 4 {
		t.Fatalf("bounded retention kept %d results, want 4", len(bounded))
	}
	for j, r := range bounded {
		if want := 6 + j; r.EndIndex != want {
			t.Fatalf("bounded[%d].EndIndex = %d, want %d (most recent tail)", j, r.EndIndex, want)
		}
	}
	var unbounded []*analysis.WindowResult
	for i := 0; i < 10; i++ {
		unbounded = appendResult(unbounded, mk(i), 0)
	}
	if len(unbounded) != 10 {
		t.Fatalf("unbounded retention kept %d results, want 10", len(unbounded))
	}
}

// TestAnalysisRetainResultsBoundsMemory runs a real analysis_bb pipeline
// long enough to produce well over the retention bound and checks that the
// default keeps only the bounded tail while retain_results = 0 keeps all.
func TestAnalysisRetainResultsBoundsMemory(t *testing.T) {
	build := func(retain string) string {
		sigma, centroids := inlineKNNModel()
		cfg := ""
		for i := 0; i < 2; i++ {
			cfg += fmt.Sprintf("[sadc]\nid = sadc%d\nnode = %%NODE%d%%\nperiod = 1\n\n", i, i)
			cfg += fmt.Sprintf("[knn]\nid = k%d\nsigma = %s\ncentroids = %s\ninput[in] = sadc%d.output0\n\n",
				i, sigma, centroids, i)
		}
		cfg += "[analysis_bb]\nid = bb\nthreshold = 0.5\nwindow = 4\nslide = 1\nstates = 2\n" + retain
		cfg += "input[l0] = @k0\ninput[l1] = @k1\n"
		return cfg
	}
	run := func(retain string) []*analysis.WindowResult {
		c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, 77))
		if err != nil {
			t.Fatal(err)
		}
		env := simEnv(c)
		cfgText := build(retain)
		for i, n := range c.Slaves() {
			cfgText = strings.ReplaceAll(cfgText, fmt.Sprintf("%%NODE%d%%", i), n.Name)
		}
		e := mustEngine(t, env, cfgText)
		runSim(t, c, e, 120)
		mod, ok := e.ModuleOf("bb")
		if !ok {
			t.Fatal("bb module missing")
		}
		return mod.(*analysisBBModule).Results()
	}
	bounded := run("")
	if len(bounded) != defaultRetainResults {
		t.Fatalf("default retention kept %d results, want %d", len(bounded), defaultRetainResults)
	}
	all := run("retain_results = 0\n")
	if len(all) <= defaultRetainResults {
		t.Fatalf("unbounded retention kept %d results, want > %d", len(all), defaultRetainResults)
	}
	// The bounded run must retain exactly the unbounded run's tail.
	tail := all[len(all)-defaultRetainResults:]
	for i := range bounded {
		if bounded[i].EndIndex != tail[i].EndIndex {
			t.Fatalf("bounded[%d].EndIndex = %d, want %d", i, bounded[i].EndIndex, tail[i].EndIndex)
		}
	}
}
