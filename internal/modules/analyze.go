package modules

import (
	"fmt"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/core"
)

// peerSync aligns per-node input streams: it holds one FIFO per input and
// releases a row only when every input has a sample, which is what the
// peer-comparison analyses require (one sample per node per time step).
type peerSync struct {
	queues [][]core.Sample
}

func newPeerSync(n int) *peerSync {
	return &peerSync{queues: make([][]core.Sample, n)}
}

// drain pulls everything pending from the ports into the FIFOs.
func (ps *peerSync) drain(inputs []*core.InputPort) {
	for i, in := range inputs {
		ps.queues[i] = append(ps.queues[i], in.Read()...)
	}
}

// pop returns one aligned row, or nil when some input has no data yet.
func (ps *peerSync) pop() []core.Sample {
	for _, q := range ps.queues {
		if len(q) == 0 {
			return nil
		}
	}
	row := make([]core.Sample, len(ps.queues))
	for i := range ps.queues {
		row[i] = ps.queues[i][0]
		ps.queues[i] = ps.queues[i][1:]
	}
	return row
}

// analysisBBModule is the black-box fingerpointer (§4.5). Each input is one
// node's stream of 1-NN state indexes (from a knn instance, usually via an
// ibuffer); per window it builds StateVectors, compares each against the
// component-wise median, and raises per-node alarms on L1 distance above
// the threshold.
//
// Parameters:
//
//	threshold = <L1 distance>  (required; the paper picks 60 after Fig 6a)
//	window    = <samples>      (default 60)
//	slide     = <samples>      (default window)
//	states    = <count>        (number of trained centroids; default 8)
//
// Outputs: alarm0..alarmN-1, one per input, Sample values [flag, score].
type analysisBBModule struct {
	bb     *analysis.BlackBox
	sync   *peerSync
	outs   []*core.OutputPort
	counts int

	// Results retained for inspection by the evaluation harness.
	results []*analysis.WindowResult
}

func (m *analysisBBModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	threshold, err := cfg.FloatParam("threshold", -1)
	if err != nil {
		return err
	}
	if threshold < 0 {
		return errMissingParam("analysis_bb", "threshold")
	}
	window, err := cfg.IntParam("window", 60)
	if err != nil {
		return err
	}
	slide, err := cfg.IntParam("slide", 0)
	if err != nil {
		return err
	}
	states, err := cfg.IntParam("states", 8)
	if err != nil {
		return err
	}
	inputs := ctx.Inputs()
	if len(inputs) < 2 {
		return fmt.Errorf("analysis_bb: peer comparison requires >= 2 inputs, got %d", len(inputs))
	}
	m.counts = len(inputs)
	m.bb, err = analysis.NewBlackBox(analysis.BlackBoxConfig{
		Nodes:       len(inputs),
		NumStates:   states,
		WindowSize:  window,
		WindowSlide: slide,
		Threshold:   threshold,
	})
	if err != nil {
		return err
	}
	m.sync = newPeerSync(len(inputs))
	for i, in := range inputs {
		origin := in.Origin()
		origin.Source = "analysis_bb"
		origin.Metric = "alarm"
		out, err := ctx.NewOutput(fmt.Sprintf("alarm%d", i), origin)
		if err != nil {
			return err
		}
		m.outs = append(m.outs, out)
	}
	return nil
}

func (m *analysisBBModule) Run(ctx *core.RunContext) error {
	m.sync.drain(ctx.Inputs())
	for {
		row := m.sync.pop()
		if row == nil {
			return nil
		}
		states := make([]int, len(row))
		for i, s := range row {
			states[i] = int(s.Scalar())
		}
		res, err := m.bb.Observe(states)
		if err != nil {
			return fmt.Errorf("analysis_bb: %w", err)
		}
		if res != nil {
			m.results = append(m.results, res)
			for i, out := range m.outs {
				flag := 0.0
				if res.Flagged[i] {
					flag = 1
				}
				out.Publish(core.Sample{Time: row[0].Time, Values: []float64{flag, res.Scores[i]}})
			}
		}
	}
}

// Results returns the window verdicts produced so far.
func (m *analysisBBModule) Results() []*analysis.WindowResult { return m.results }

var _ core.Module = (*analysisBBModule)(nil)

// analysisWBModule is the white-box fingerpointer (§4.4). Each input is one
// node's stream of Hadoop state vectors (from hadoop_log, optionally
// smoothed by mavgvec); per window it compares each node's per-metric mean
// against the median of means with threshold max(1, k*sigma_median).
//
// Parameters:
//
//	k      = <factor>    (default 3, per Fig 6b)
//	window = <samples>   (default 60)
//	slide  = <samples>   (default window)
//
// Outputs: alarm0..alarmN-1, one per input, Sample values [flag, score].
type analysisWBModule struct {
	cfg  analysis.WhiteBoxConfig
	wb   *analysis.WhiteBox
	sync *peerSync
	outs []*core.OutputPort

	results []*analysis.WindowResult
}

func (m *analysisWBModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	k, err := cfg.FloatParam("k", 3)
	if err != nil {
		return err
	}
	window, err := cfg.IntParam("window", 60)
	if err != nil {
		return err
	}
	slide, err := cfg.IntParam("slide", 0)
	if err != nil {
		return err
	}
	inputs := ctx.Inputs()
	if len(inputs) < 2 {
		return fmt.Errorf("analysis_wb: peer comparison requires >= 2 inputs, got %d", len(inputs))
	}
	m.cfg = analysis.WhiteBoxConfig{
		Nodes:       len(inputs),
		WindowSize:  window,
		WindowSlide: slide,
		K:           k,
	}
	m.sync = newPeerSync(len(inputs))
	for i, in := range inputs {
		origin := in.Origin()
		origin.Source = "analysis_wb"
		origin.Metric = "alarm"
		out, err := ctx.NewOutput(fmt.Sprintf("alarm%d", i), origin)
		if err != nil {
			return err
		}
		m.outs = append(m.outs, out)
	}
	return nil
}

func (m *analysisWBModule) Run(ctx *core.RunContext) error {
	m.sync.drain(ctx.Inputs())
	for {
		row := m.sync.pop()
		if row == nil {
			return nil
		}
		if m.wb == nil {
			// The metric dimension is known once the first row arrives.
			m.cfg.Metrics = len(row[0].Values)
			wb, err := analysis.NewWhiteBox(m.cfg)
			if err != nil {
				return fmt.Errorf("analysis_wb: %w", err)
			}
			m.wb = wb
		}
		vectors := make([][]float64, len(row))
		for i, s := range row {
			vectors[i] = s.Values
		}
		res, err := m.wb.Observe(vectors)
		if err != nil {
			return fmt.Errorf("analysis_wb: %w", err)
		}
		if res != nil {
			m.results = append(m.results, res)
			for i, out := range m.outs {
				flag := 0.0
				if res.Flagged[i] {
					flag = 1
				}
				out.Publish(core.Sample{Time: row[0].Time, Values: []float64{flag, res.Scores[i]}})
			}
		}
	}
}

// Results returns the window verdicts produced so far.
func (m *analysisWBModule) Results() []*analysis.WindowResult { return m.results }

var _ core.Module = (*analysisWBModule)(nil)
