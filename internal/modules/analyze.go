package modules

import (
	"fmt"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
)

// defaultRetainResults bounds how many window verdicts the analysis modules
// keep for inspection when retain_results is not configured. The online
// north-star is a process that runs for months: retaining every window
// forever is a slow leak, so the default keeps a bounded tail and the
// offline evaluation harness opts into unbounded retention explicitly.
const defaultRetainResults = 64

// retainResultsParam parses the shared retain_results parameter: the number
// of most-recent window verdicts to keep (0 = unbounded, for the evaluation
// harness; default defaultRetainResults).
func retainResultsParam(cfg *config.Instance) (int, error) {
	n, err := cfg.IntParam("retain_results", defaultRetainResults)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("retain_results must be non-negative (0 = unbounded)")
	}
	return n, nil
}

// appendResult appends res to results, trimming to the retain bound (0 =
// unbounded). Trimming slides the window by copying within the backing
// array, so the steady state allocates nothing.
func appendResult(results []*analysis.WindowResult, res *analysis.WindowResult, retain int) []*analysis.WindowResult {
	results = append(results, res)
	if retain > 0 && len(results) > retain {
		n := copy(results, results[len(results)-retain:])
		// Zero the vacated tail so trimmed results are collectable.
		for i := n; i < len(results); i++ {
			results[i] = nil
		}
		results = results[:n]
	}
	return results
}

// sampleRing is a FIFO of samples backed by a reusable circular buffer. It
// replaces the naive slice FIFO (q = q[1:]) the peer aligner used to keep:
// re-slicing never releases the consumed backing-array prefix, so a
// long-running analysis pinned every sample ever queued on a lagging input.
// The ring reuses its buffer, zeroes each slot on pop (releasing the
// Sample's Values immediately), and its capacity is bounded by the maximum
// number of samples simultaneously outstanding — the inter-input skew — not
// by the total ever queued.
type sampleRing struct {
	buf  []core.Sample
	head int // index of the oldest sample
	n    int // occupied slots
}

// push appends a sample, growing the buffer by doubling when full.
func (r *sampleRing) push(s core.Sample) {
	if r.n == len(r.buf) {
		grown := make([]core.Sample, max(2*len(r.buf), 8))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = s
	r.n++
}

// pop removes and returns the oldest sample, zeroing its slot so the
// consumed Sample (and its Values) stop being reachable through the ring.
func (r *sampleRing) pop() core.Sample {
	s := r.buf[r.head]
	r.buf[r.head] = core.Sample{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return s
}

func (r *sampleRing) len() int { return r.n }

// capacity reports the backing buffer size (for bounded-memory tests).
func (r *sampleRing) capacity() int { return len(r.buf) }

// peerSync aligns per-node input streams: it holds one ring per input and
// releases a row only when every input has a sample, which is what the
// peer-comparison analyses require (one sample per node per time step).
// The aligned row and the drain scratch are preallocated and reused, so a
// steady-state drain/pop cycle performs no allocation.
type peerSync struct {
	rings   []sampleRing
	row     []core.Sample // reusable aligned row, overwritten by each pop
	scratch []core.Sample // reusable ReadAppend drain buffer
}

func newPeerSync(n int) *peerSync {
	return &peerSync{
		rings: make([]sampleRing, n),
		row:   make([]core.Sample, n),
	}
}

// drain pulls everything pending from the ports into the rings.
func (ps *peerSync) drain(inputs []*core.InputPort) {
	for i, in := range inputs {
		ps.scratch = in.ReadAppend(ps.scratch[:0])
		for j, s := range ps.scratch {
			ps.rings[i].push(s)
			ps.scratch[j] = core.Sample{}
		}
	}
}

// pop returns one aligned row, or nil when some input has no data yet. The
// returned slice is reused by the next pop: callers must finish with a row
// (the analyses copy what they keep) before popping again.
func (ps *peerSync) pop() []core.Sample {
	for i := range ps.rings {
		if ps.rings[i].len() == 0 {
			return nil
		}
	}
	for i := range ps.rings {
		ps.row[i] = ps.rings[i].pop()
	}
	return ps.row
}

// analysisBBModule is the black-box fingerpointer (§4.5). Each input is one
// node's stream of 1-NN state indexes (from a knn instance, usually via an
// ibuffer); per window it builds StateVectors, compares each against the
// component-wise median, and raises per-node alarms on L1 distance above
// the threshold.
//
// Parameters:
//
//	threshold      = <L1 distance>  (required; the paper picks 60 after Fig 6a)
//	window         = <samples>      (default 60)
//	slide          = <samples>      (default window)
//	states         = <count>        (number of trained centroids; default 8)
//	retain_results = <count>        (window verdicts kept for inspection;
//	                                 default 64, 0 = unbounded)
//
// Outputs: alarm0..alarmN-1, one per input, Sample values [flag, score].
type analysisBBModule struct {
	bb     *analysis.BlackBox
	sync   *peerSync
	outs   []*core.OutputPort
	counts int
	retain int

	// states is the reusable per-row decode buffer; BlackBox.Observe
	// copies it into its window ring, so reuse across rows is safe.
	states []int

	// Results retained for inspection by the evaluation harness, bounded
	// by retain (0 = unbounded).
	results []*analysis.WindowResult
}

func (m *analysisBBModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	threshold, err := cfg.FloatParam("threshold", -1)
	if err != nil {
		return err
	}
	if threshold < 0 {
		return errMissingParam("analysis_bb", "threshold")
	}
	window, err := cfg.IntParam("window", 60)
	if err != nil {
		return err
	}
	slide, err := cfg.IntParam("slide", 0)
	if err != nil {
		return err
	}
	states, err := cfg.IntParam("states", 8)
	if err != nil {
		return err
	}
	if m.retain, err = retainResultsParam(cfg); err != nil {
		return fmt.Errorf("analysis_bb: %w", err)
	}
	inputs := ctx.Inputs()
	if len(inputs) < 2 {
		return fmt.Errorf("analysis_bb: peer comparison requires >= 2 inputs, got %d", len(inputs))
	}
	m.counts = len(inputs)
	m.bb, err = analysis.NewBlackBox(analysis.BlackBoxConfig{
		Nodes:       len(inputs),
		NumStates:   states,
		WindowSize:  window,
		WindowSlide: slide,
		Threshold:   threshold,
	})
	if err != nil {
		return err
	}
	m.sync = newPeerSync(len(inputs))
	m.states = make([]int, len(inputs))
	for i, in := range inputs {
		origin := in.Origin()
		origin.Source = "analysis_bb"
		origin.Metric = "alarm"
		out, err := ctx.NewOutput(fmt.Sprintf("alarm%d", i), origin)
		if err != nil {
			return err
		}
		m.outs = append(m.outs, out)
	}
	return nil
}

func (m *analysisBBModule) Run(ctx *core.RunContext) error {
	m.sync.drain(ctx.Inputs())
	for {
		row := m.sync.pop()
		if row == nil {
			return nil
		}
		for i, s := range row {
			m.states[i] = int(s.Scalar())
		}
		res, err := m.bb.Observe(m.states)
		if err != nil {
			return fmt.Errorf("analysis_bb: %w", err)
		}
		if res != nil {
			m.results = appendResult(m.results, res, m.retain)
			for i, out := range m.outs {
				flag := 0.0
				if res.Flagged[i] {
					flag = 1
				}
				out.Publish(core.Sample{Time: row[0].Time, Values: []float64{flag, res.Scores[i]}})
			}
		}
	}
}

// Results returns the retained window verdicts (the most recent
// retain_results of them; everything when retain_results = 0).
func (m *analysisBBModule) Results() []*analysis.WindowResult { return m.results }

var _ core.Module = (*analysisBBModule)(nil)

// analysisWBModule is the white-box fingerpointer (§4.4). Each input is one
// node's stream of Hadoop state vectors (from hadoop_log, optionally
// smoothed by mavgvec); per window it compares each node's per-metric mean
// against the median of means with threshold max(1, k*sigma_median).
//
// Parameters:
//
//	k              = <factor>    (default 3, per Fig 6b)
//	window         = <samples>   (default 60)
//	slide          = <samples>   (default window)
//	retain_results = <count>     (window verdicts kept for inspection;
//	                              default 64, 0 = unbounded)
//
// Outputs: alarm0..alarmN-1, one per input, Sample values [flag, score].
type analysisWBModule struct {
	cfg    analysis.WhiteBoxConfig
	wb     *analysis.WhiteBox
	sync   *peerSync
	outs   []*core.OutputPort
	retain int

	// vectors is the reusable per-row view buffer; WhiteBox.Observe copies
	// the vectors into its window ring, so reuse across rows is safe.
	vectors [][]float64

	results []*analysis.WindowResult
}

func (m *analysisWBModule) Init(ctx *core.InitContext) error {
	cfg := ctx.Config()
	k, err := cfg.FloatParam("k", 3)
	if err != nil {
		return err
	}
	window, err := cfg.IntParam("window", 60)
	if err != nil {
		return err
	}
	slide, err := cfg.IntParam("slide", 0)
	if err != nil {
		return err
	}
	if m.retain, err = retainResultsParam(cfg); err != nil {
		return fmt.Errorf("analysis_wb: %w", err)
	}
	inputs := ctx.Inputs()
	if len(inputs) < 2 {
		return fmt.Errorf("analysis_wb: peer comparison requires >= 2 inputs, got %d", len(inputs))
	}
	m.cfg = analysis.WhiteBoxConfig{
		Nodes:       len(inputs),
		WindowSize:  window,
		WindowSlide: slide,
		K:           k,
	}
	m.sync = newPeerSync(len(inputs))
	m.vectors = make([][]float64, len(inputs))
	for i, in := range inputs {
		origin := in.Origin()
		origin.Source = "analysis_wb"
		origin.Metric = "alarm"
		out, err := ctx.NewOutput(fmt.Sprintf("alarm%d", i), origin)
		if err != nil {
			return err
		}
		m.outs = append(m.outs, out)
	}
	return nil
}

func (m *analysisWBModule) Run(ctx *core.RunContext) error {
	m.sync.drain(ctx.Inputs())
	for {
		row := m.sync.pop()
		if row == nil {
			return nil
		}
		if m.wb == nil {
			// The metric dimension is known once the first row arrives.
			m.cfg.Metrics = len(row[0].Values)
			wb, err := analysis.NewWhiteBox(m.cfg)
			if err != nil {
				return fmt.Errorf("analysis_wb: %w", err)
			}
			m.wb = wb
		}
		for i, s := range row {
			m.vectors[i] = s.Values
		}
		res, err := m.wb.Observe(m.vectors)
		if err != nil {
			return fmt.Errorf("analysis_wb: %w", err)
		}
		if res != nil {
			m.results = appendResult(m.results, res, m.retain)
			for i, out := range m.outs {
				flag := 0.0
				if res.Flagged[i] {
					flag = 1
				}
				out.Publish(core.Sample{Time: row[0].Time, Values: []float64{flag, res.Scores[i]}})
			}
		}
	}
}

// Results returns the retained window verdicts (the most recent
// retain_results of them; everything when retain_results = 0).
func (m *analysisWBModule) Results() []*analysis.WindowResult { return m.results }

var _ core.Module = (*analysisWBModule)(nil)
