package modules

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/rpc"
)

// flakySource publishes once, then fails every run — a minimal way to
// drive an instance into quarantine so the status and sink surfaces have
// something to report.
type flakySource struct {
	out  *core.OutputPort
	runs int
}

func (m *flakySource) Init(ctx *core.InitContext) error {
	var err error
	if m.out, err = ctx.NewOutput("output0", core.Origin{Source: "flaky", Node: "n0"}); err != nil {
		return err
	}
	return ctx.SchedulePeriodic(time.Second)
}

func (m *flakySource) Run(ctx *core.RunContext) error {
	if ctx.Reason == core.RunFlush {
		return nil
	}
	m.runs++
	if m.runs == 1 {
		m.out.Publish(core.NewScalar(ctx.Now, 5))
		return nil
	}
	return errors.New("boom")
}

// TestSinkCountersAndDegradedTagging quarantines a flaky instance under
// degrade=hold and checks that both sinks tag its gap-fill substitutes and
// emit the supervisor counters at flush.
func TestSinkCountersAndDegradedTagging(t *testing.T) {
	env := NewEnv()
	var alarms bytes.Buffer
	env.AlarmWriter = &alarms
	csvPath := filepath.Join(t.TempDir(), "out.csv")

	cfg, err := config.ParseString(fmt.Sprintf(`
[flaky]
id = f
quarantine_threshold = 2
quarantine_cooldown = 100
degrade = hold

[print]
id = p
only_nonzero = false
counters = true
input[in] = f.output0

[csv]
id = c
path = %s
counters = true
input[in] = f.output0
`, csvPath))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(env)
	reg.Register("flaky", func() core.Module { return &flakySource{} })
	e, err := core.NewEngine(reg, cfg, core.WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 8; i++ {
		if err := e.Tick(start.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(start.Add(8 * time.Second)); err != nil {
		t.Fatal(err)
	}

	if ih, _ := e.InstanceHealthOf("f"); ih.State != core.SupervisorQuarantined {
		t.Fatalf("flaky state = %s, want quarantined", ih.State)
	}
	out := alarms.String()
	if !strings.Contains(out, " degraded=1") {
		t.Errorf("print output does not tag gap-fill samples:\n%s", out)
	}
	if !strings.Contains(out, "counters instance=f state=quarantined") {
		t.Errorf("print output missing supervisor counter line:\n%s", out)
	}
	if !strings.Contains(out, "gapfills=") {
		t.Errorf("print counter line missing gap-fill counter:\n%s", out)
	}

	data, err := readFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, ";degraded\n") {
		t.Errorf("csv rows do not tag gap-fill samples:\n%s", data)
	}
	if !strings.Contains(data, ",f,asdf_counters,supervisor_quarantined,") {
		t.Errorf("csv missing supervisor counter row:\n%s", data)
	}
}

// TestStatusReportAndRPCRoundTrip drives an rpc-mode white-box collector
// with one dead daemon until its breaker opens, then checks the status
// surface end to end: CollectStatus directly, the same report fetched over
// the native status RPC (all enums round-tripping), and the breaker/sync
// counter lines in both sinks.
func TestStatusReportAndRPCRoundTrip(t *testing.T) {
	const slaves = 2
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, 99))
	if err != nil {
		t.Fatal(err)
	}
	var servers []*rpc.Server
	var addrs, names []string
	for _, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceHadoopLog)
		RegisterHadoopLogServer(srv, n.TaskTrackerLog(), n.DataNodeLog(), c.Now)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr.String())
		names = append(names, n.Name)
	}
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()

	env := NewEnv()
	env.Clock = c.Now
	var alarms bytes.Buffer
	env.AlarmWriter = &alarms
	csvPath := filepath.Join(t.TempDir(), "out.csv")
	cfgText := fmt.Sprintf(`
[hadoop_log]
id = hl
kind = tasktracker
mode = rpc
nodes = %s
addrs = %s
period = 1
sync_deadline = 2
sync_quorum = 1
breaker_threshold = 3
breaker_cooldown = 600

[print]
id = p
only_nonzero = false
counters = true
input[x] = @hl

[csv]
id = c
path = %s
counters = true
input[x] = @hl
`, strings.Join(names, ","), strings.Join(addrs, ","), csvPath)
	cfg, err := config.ParseString(cfgText)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(NewRegistry(env), cfg,
		core.WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	step := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			c.Tick()
			if err := e.Tick(c.Now()); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(10)

	rep := CollectStatus(e, c.Now())
	if !rep.Healthy {
		t.Errorf("healthy cluster reported unhealthy: %+v", rep)
	}

	// Kill node 1's daemon; three failures open its breaker.
	_ = servers[1].Close()
	step(10)

	rep = CollectStatus(e, c.Now())
	if rep.Healthy {
		t.Error("open breaker did not mark the report unhealthy")
	}
	if got := rep.Breakers["hl"][names[1]].State; got != rpc.BreakerOpen {
		t.Errorf("dead node breaker state = %s, want open", got)
	}
	if rep.Sync["hl"].Partial == 0 {
		t.Error("no partial timestamps in the sync counters")
	}
	if rep.Sync["hl"].MissingByNode[names[1]] == 0 {
		t.Error("dead node's missing seconds not counted")
	}
	if len(rep.Instances) != 3 {
		t.Errorf("report lists %d instances, want 3", len(rep.Instances))
	}

	// The same report over the native RPC protocol, enums and all.
	srv, addr, err := ListenStatus("127.0.0.1:0", e, c.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := rpc.Dial(addr.String(), "status-test", rpc.WithCallTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	var remote StatusReport
	if err := client.Call(MethodStatus, nil, &remote); err != nil {
		t.Fatal(err)
	}
	if remote.Healthy {
		t.Error("RPC-fetched report claims healthy")
	}
	if got := remote.Breakers["hl"][names[1]].State; got != rpc.BreakerOpen {
		t.Errorf("RPC-fetched breaker state = %s, want open (round-trip)", got)
	}
	if len(remote.Instances) != 3 {
		t.Errorf("RPC-fetched report lists %d instances, want 3", len(remote.Instances))
	}
	for _, ih := range remote.Instances {
		if ih.State != core.SupervisorHealthy {
			t.Errorf("instance %s state = %s over RPC, want healthy", ih.ID, ih.State)
		}
	}

	// Both sinks surface the breaker and sync counters at flush.
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}
	out := alarms.String()
	for _, want := range []string{
		"counters instance=hl state=healthy",
		"sync partial=",
		"breaker node=" + names[1] + " state=open",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("print counters missing %q:\n%s", want, out)
		}
	}
	data, err := readFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		",hl,asdf_counters,sync,",
		",hl:" + names[1] + ",asdf_counters,breaker_open,",
		",hl:" + names[1] + ",asdf_counters,sync_missing,",
	} {
		if !strings.Contains(data, want) {
			t.Errorf("csv counters missing %q:\n%s", want, data)
		}
	}
}
