package modules

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/procfs"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/sadc"
)

// RPC method names served by the per-node collection daemons (§3.1: each
// data-collection module abc has an abc_rpcd counterpart on the remote
// node).
const (
	// MethodSadcCollect returns one sadc.Record.
	MethodSadcCollect = "sadc.collect"
	// MethodSadcNode returns only the node-level vector — the metric-group
	// methods below exist for rpc.Batch clients, which fetch exactly the
	// groups they publish instead of the full Record per tick.
	MethodSadcNode = "sadc.node"
	// MethodSadcNet returns per-interface vectors for the requested ifaces.
	MethodSadcNet = "sadc.net"
	// MethodSadcProc returns per-process vectors for the requested pids.
	MethodSadcProc = "sadc.proc"
	// MethodHadoopLogVectors returns newly finalized state vectors.
	MethodHadoopLogVectors = "hadoop_log.vectors"
)

// Service names announced in the RPC hello.
const (
	ServiceSadc      = "sadc_rpcd"
	ServiceHadoopLog = "hadoop_log_rpcd"
)

// stateVectorWire is the JSON encoding of a hadooplog.StateVector.
type stateVectorWire struct {
	Time   time.Time `json:"t"`
	Counts []float64 `json:"c"`
}

// vectorsRequest selects which daemon log to read.
type vectorsRequest struct {
	Kind string `json:"kind"` // "tasktracker" or "datanode"
}

// vectorsResponse carries newly finalized per-second vectors.
type vectorsResponse struct {
	Vectors []stateVectorWire `json:"vectors"`
}

// nodeMetricsResponse is the sadc.node reply: the node-level vector only.
type nodeMetricsResponse struct {
	Warmup bool      `json:"warmup,omitempty"`
	Node   []float64 `json:"node,omitempty"`
}

// netMetricsRequest selects the interfaces sadc.net should report.
type netMetricsRequest struct {
	Ifaces []string `json:"ifaces"`
}

// netMetricsResponse carries per-interface vectors for the requested
// interfaces (absent interfaces are simply missing from the map).
type netMetricsResponse struct {
	Warmup bool                 `json:"warmup,omitempty"`
	Net    map[string][]float64 `json:"net,omitempty"`
}

// procMetricsRequest selects the pids sadc.proc should report.
type procMetricsRequest struct {
	Pids []int `json:"pids"`
}

// procMetricsResponse carries per-process vectors for the requested pids.
type procMetricsResponse struct {
	Warmup bool              `json:"warmup,omitempty"`
	Proc   map[int][]float64 `json:"proc,omitempty"`
}

// RegisterSadcServer exposes a sadc collector for one node over RPC.
// Collection state (the previous snapshot for rate conversion) lives in the
// daemon, as with the paper's sadc_rpcd. Besides the full-record
// sadc.collect, the server offers per-metric-group methods (sadc.node,
// sadc.net, sadc.proc) sized for batched clients: each group is backed by
// its own collector — so each method's rates are computed against its own
// previous snapshot and stay self-consistent whatever subset a client
// batches — and each reply carries only the vectors the client asked for,
// instead of every interface and process on the node.
//
// The server also offers the columnar stream counterpart (sadc.metrics) for
// wire = columnar clients; each stream open gets its own collector, so its
// rate baseline is as isolated as the per-group collectors below.
func RegisterSadcServer(srv *rpc.Server, provider procfs.Provider) {
	registerSadcStream(srv, provider)
	registerSadcJSON(srv, provider)
}

// registerSadcJSON registers the JSON request/response methods alone — the
// full surface of a pre-columnar daemon, which tests use to prove the
// client-side fallback.
func registerSadcJSON(srv *rpc.Server, provider procfs.Provider) {
	collector := sadc.NewCollector(provider)
	srv.Handle(MethodSadcCollect, func(json.RawMessage) (any, error) {
		return collector.Collect()
	})
	nodeC := sadc.NewCollector(provider)
	srv.Handle(MethodSadcNode, func(json.RawMessage) (any, error) {
		rec, err := nodeC.Collect()
		if err != nil {
			return nil, err
		}
		return nodeMetricsResponse{Warmup: rec.Warmup, Node: rec.Node}, nil
	})
	netC := sadc.NewCollector(provider)
	srv.Handle(MethodSadcNet, func(params json.RawMessage) (any, error) {
		var req netMetricsRequest
		if err := json.Unmarshal(params, &req); err != nil {
			return nil, err
		}
		rec, err := netC.Collect()
		if err != nil {
			return nil, err
		}
		resp := netMetricsResponse{Warmup: rec.Warmup}
		for _, iface := range req.Ifaces {
			if v, ok := rec.Net[iface]; ok {
				if resp.Net == nil {
					resp.Net = make(map[string][]float64, len(req.Ifaces))
				}
				resp.Net[iface] = v
			}
		}
		return resp, nil
	})
	procC := sadc.NewCollector(provider)
	srv.Handle(MethodSadcProc, func(params json.RawMessage) (any, error) {
		var req procMetricsRequest
		if err := json.Unmarshal(params, &req); err != nil {
			return nil, err
		}
		rec, err := procC.Collect()
		if err != nil {
			return nil, err
		}
		resp := procMetricsResponse{Warmup: rec.Warmup}
		for _, pid := range req.Pids {
			if v, ok := rec.Proc[pid]; ok {
				if resp.Proc == nil {
					resp.Proc = make(map[int][]float64, len(req.Pids))
				}
				resp.Proc[pid] = v
			}
		}
		return resp, nil
	})
}

// LogSource yields newly finalized state vectors from one node's log of one
// kind. Implementations exist for local buffers and for remote daemons.
type LogSource interface {
	Fetch(now time.Time) ([]hadooplog.StateVector, error)
}

// bufferLogSource parses a hadooplog.Buffer incrementally.
type bufferLogSource struct {
	buf    *hadooplog.Buffer
	parser *hadooplog.Parser
	cursor uint64
}

// NewBufferLogSource creates a LogSource reading from an in-process log
// buffer (local collection mode, and the guts of hadoop_log_rpcd).
func NewBufferLogSource(kind hadooplog.Kind, buf *hadooplog.Buffer) LogSource {
	return &bufferLogSource{buf: buf, parser: hadooplog.NewParser(kind)}
}

func (s *bufferLogSource) Fetch(now time.Time) ([]hadooplog.StateVector, error) {
	lines, next := s.buf.ReadFrom(s.cursor)
	s.cursor = next
	for _, l := range lines {
		if err := s.parser.ParseLine(l); err != nil {
			return nil, err
		}
	}
	s.parser.Flush(now)
	return s.parser.Drain(), nil
}

// RegisterHadoopLogServer exposes the node's TaskTracker and DataNode log
// parsers over RPC. now supplies the flush horizon (virtual time in
// simulation, wall clock in deployment).
func RegisterHadoopLogServer(srv *rpc.Server, tt, dn *hadooplog.Buffer, now func() time.Time) {
	registerHadoopLogStream(srv, tt, dn, now)
	registerHadoopLogJSON(srv, tt, dn, now)
}

// registerHadoopLogJSON registers the JSON vectors method alone — the full
// surface of a pre-columnar daemon, which tests use to prove the
// client-side fallback.
func registerHadoopLogJSON(srv *rpc.Server, tt, dn *hadooplog.Buffer, now func() time.Time) {
	sources := map[string]LogSource{
		hadooplog.KindTaskTracker.String(): NewBufferLogSource(hadooplog.KindTaskTracker, tt),
		hadooplog.KindDataNode.String():    NewBufferLogSource(hadooplog.KindDataNode, dn),
	}
	srv.Handle(MethodHadoopLogVectors, func(params json.RawMessage) (any, error) {
		var req vectorsRequest
		if err := json.Unmarshal(params, &req); err != nil {
			return nil, err
		}
		src, ok := sources[req.Kind]
		if !ok {
			return nil, fmt.Errorf("unknown log kind %q", req.Kind)
		}
		vecs, err := src.Fetch(now())
		if err != nil {
			return nil, err
		}
		resp := vectorsResponse{Vectors: make([]stateVectorWire, len(vecs))}
		for i, v := range vecs {
			resp.Vectors[i] = stateVectorWire{Time: v.Time, Counts: v.Counts}
		}
		return resp, nil
	})
}

// healthReporter is implemented by supervised clients (rpc.ManagedClient);
// sources forward it so modules can expose per-node connection health.
type healthReporter interface {
	Health() rpc.Health
}

// sourceHealth extracts connection health from a source's client, if the
// client is supervised.
func sourceHealth(client rpc.Caller) (rpc.Health, bool) {
	hr, ok := client.(healthReporter)
	if !ok {
		return rpc.Health{}, false
	}
	return hr.Health(), true
}

// rpcLogSource fetches vectors from a remote hadoop_log_rpcd.
type rpcLogSource struct {
	client rpc.Caller
	kind   hadooplog.Kind
}

// NewRPCLogSource creates a LogSource backed by a remote daemon.
func NewRPCLogSource(client rpc.Caller, kind hadooplog.Kind) LogSource {
	return &rpcLogSource{client: client, kind: kind}
}

func (s *rpcLogSource) Fetch(time.Time) ([]hadooplog.StateVector, error) {
	var resp vectorsResponse
	err := s.client.Call(MethodHadoopLogVectors, vectorsRequest{Kind: s.kind.String()}, &resp)
	if err != nil {
		return nil, err
	}
	out := make([]hadooplog.StateVector, len(resp.Vectors))
	for i, v := range resp.Vectors {
		out[i] = hadooplog.StateVector{Time: v.Time, Counts: v.Counts}
	}
	return out, nil
}

// MetricSource yields one sadc record per collection iteration.
type MetricSource interface {
	Collect() (*sadc.Record, error)
}

// rpcMetricSource polls a remote sadc_rpcd.
type rpcMetricSource struct {
	client rpc.Caller
}

// NewRPCMetricSource creates a MetricSource backed by a remote sadc_rpcd.
func NewRPCMetricSource(client rpc.Caller) MetricSource {
	return &rpcMetricSource{client: client}
}

func (s *rpcMetricSource) Collect() (*sadc.Record, error) {
	var rec sadc.Record
	if err := s.client.Call(MethodSadcCollect, nil, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// batchedMetricSource polls a remote sadc_rpcd with one rpc.Batch frame
// per tick, carrying only the metric-group methods the instance publishes
// (sadc.node always; sadc.net / sadc.proc when interfaces or pids are
// configured). The call list and its parameters are built once; per tick
// only the response holders are reset, so the request path allocates
// nothing beyond the pooled encode scratch inside CallBatch.
type batchedMetricSource struct {
	client rpc.BatchCaller
	calls  []rpc.BatchCall

	node nodeMetricsResponse
	net  netMetricsResponse
	proc procMetricsResponse
}

// NewBatchedMetricSource creates a MetricSource that fetches the node
// group — plus net/proc groups for the given interfaces and pids — in a
// single batched request per collection.
func NewBatchedMetricSource(client rpc.BatchCaller, ifaces []string, pids []int) (MetricSource, error) {
	s := &batchedMetricSource{client: client}
	s.calls = append(s.calls, rpc.BatchCall{Method: MethodSadcNode, Result: &s.node})
	if len(ifaces) > 0 {
		params, err := json.Marshal(netMetricsRequest{Ifaces: ifaces})
		if err != nil {
			return nil, err
		}
		s.calls = append(s.calls, rpc.BatchCall{Method: MethodSadcNet, Params: params, Result: &s.net})
	}
	if len(pids) > 0 {
		params, err := json.Marshal(procMetricsRequest{Pids: pids})
		if err != nil {
			return nil, err
		}
		s.calls = append(s.calls, rpc.BatchCall{Method: MethodSadcProc, Params: params, Result: &s.proc})
	}
	return s, nil
}

func (s *batchedMetricSource) Collect() (*sadc.Record, error) {
	s.node = nodeMetricsResponse{}
	s.net = netMetricsResponse{}
	s.proc = procMetricsResponse{}
	if err := s.client.CallBatch(s.calls); err != nil {
		return nil, err
	}
	// All groups come from the same daemon over the same connection: any
	// per-item failure means this node's record is unusable this tick.
	for i := range s.calls {
		if err := s.calls[i].Err; err != nil {
			return nil, fmt.Errorf("%s: %w", s.calls[i].Method, err)
		}
	}
	return &sadc.Record{
		// Any group still priming its rate snapshot makes the whole record
		// a warmup, matching the single-collector first-tick behaviour.
		Warmup: s.node.Warmup || s.net.Warmup || s.proc.Warmup,
		Node:   s.node.Node,
		Net:    s.net.Net,
		Proc:   s.proc.Proc,
	}, nil
}
