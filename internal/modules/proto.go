package modules

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/procfs"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/sadc"
)

// RPC method names served by the per-node collection daemons (§3.1: each
// data-collection module abc has an abc_rpcd counterpart on the remote
// node).
const (
	// MethodSadcCollect returns one sadc.Record.
	MethodSadcCollect = "sadc.collect"
	// MethodHadoopLogVectors returns newly finalized state vectors.
	MethodHadoopLogVectors = "hadoop_log.vectors"
)

// Service names announced in the RPC hello.
const (
	ServiceSadc      = "sadc_rpcd"
	ServiceHadoopLog = "hadoop_log_rpcd"
)

// stateVectorWire is the JSON encoding of a hadooplog.StateVector.
type stateVectorWire struct {
	Time   time.Time `json:"t"`
	Counts []float64 `json:"c"`
}

// vectorsRequest selects which daemon log to read.
type vectorsRequest struct {
	Kind string `json:"kind"` // "tasktracker" or "datanode"
}

// vectorsResponse carries newly finalized per-second vectors.
type vectorsResponse struct {
	Vectors []stateVectorWire `json:"vectors"`
}

// RegisterSadcServer exposes a sadc collector for one node over RPC.
// Collection state (the previous snapshot for rate conversion) lives in the
// daemon, as with the paper's sadc_rpcd.
func RegisterSadcServer(srv *rpc.Server, provider procfs.Provider) {
	collector := sadc.NewCollector(provider)
	srv.Handle(MethodSadcCollect, func(json.RawMessage) (any, error) {
		return collector.Collect()
	})
}

// LogSource yields newly finalized state vectors from one node's log of one
// kind. Implementations exist for local buffers and for remote daemons.
type LogSource interface {
	Fetch(now time.Time) ([]hadooplog.StateVector, error)
}

// bufferLogSource parses a hadooplog.Buffer incrementally.
type bufferLogSource struct {
	buf    *hadooplog.Buffer
	parser *hadooplog.Parser
	cursor uint64
}

// NewBufferLogSource creates a LogSource reading from an in-process log
// buffer (local collection mode, and the guts of hadoop_log_rpcd).
func NewBufferLogSource(kind hadooplog.Kind, buf *hadooplog.Buffer) LogSource {
	return &bufferLogSource{buf: buf, parser: hadooplog.NewParser(kind)}
}

func (s *bufferLogSource) Fetch(now time.Time) ([]hadooplog.StateVector, error) {
	lines, next := s.buf.ReadFrom(s.cursor)
	s.cursor = next
	for _, l := range lines {
		if err := s.parser.ParseLine(l); err != nil {
			return nil, err
		}
	}
	s.parser.Flush(now)
	return s.parser.Drain(), nil
}

// RegisterHadoopLogServer exposes the node's TaskTracker and DataNode log
// parsers over RPC. now supplies the flush horizon (virtual time in
// simulation, wall clock in deployment).
func RegisterHadoopLogServer(srv *rpc.Server, tt, dn *hadooplog.Buffer, now func() time.Time) {
	sources := map[string]LogSource{
		hadooplog.KindTaskTracker.String(): NewBufferLogSource(hadooplog.KindTaskTracker, tt),
		hadooplog.KindDataNode.String():    NewBufferLogSource(hadooplog.KindDataNode, dn),
	}
	srv.Handle(MethodHadoopLogVectors, func(params json.RawMessage) (any, error) {
		var req vectorsRequest
		if err := json.Unmarshal(params, &req); err != nil {
			return nil, err
		}
		src, ok := sources[req.Kind]
		if !ok {
			return nil, fmt.Errorf("unknown log kind %q", req.Kind)
		}
		vecs, err := src.Fetch(now())
		if err != nil {
			return nil, err
		}
		resp := vectorsResponse{Vectors: make([]stateVectorWire, len(vecs))}
		for i, v := range vecs {
			resp.Vectors[i] = stateVectorWire{Time: v.Time, Counts: v.Counts}
		}
		return resp, nil
	})
}

// healthReporter is implemented by supervised clients (rpc.ManagedClient);
// sources forward it so modules can expose per-node connection health.
type healthReporter interface {
	Health() rpc.Health
}

// sourceHealth extracts connection health from a source's client, if the
// client is supervised.
func sourceHealth(client rpc.Caller) (rpc.Health, bool) {
	hr, ok := client.(healthReporter)
	if !ok {
		return rpc.Health{}, false
	}
	return hr.Health(), true
}

// rpcLogSource fetches vectors from a remote hadoop_log_rpcd.
type rpcLogSource struct {
	client rpc.Caller
	kind   hadooplog.Kind
}

// NewRPCLogSource creates a LogSource backed by a remote daemon.
func NewRPCLogSource(client rpc.Caller, kind hadooplog.Kind) LogSource {
	return &rpcLogSource{client: client, kind: kind}
}

func (s *rpcLogSource) Fetch(time.Time) ([]hadooplog.StateVector, error) {
	var resp vectorsResponse
	err := s.client.Call(MethodHadoopLogVectors, vectorsRequest{Kind: s.kind.String()}, &resp)
	if err != nil {
		return nil, err
	}
	out := make([]hadooplog.StateVector, len(resp.Vectors))
	for i, v := range resp.Vectors {
		out[i] = hadooplog.StateVector{Time: v.Time, Counts: v.Counts}
	}
	return out, nil
}

// MetricSource yields one sadc record per collection iteration.
type MetricSource interface {
	Collect() (*sadc.Record, error)
}

// rpcMetricSource polls a remote sadc_rpcd.
type rpcMetricSource struct {
	client rpc.Caller
}

// NewRPCMetricSource creates a MetricSource backed by a remote sadc_rpcd.
func NewRPCMetricSource(client rpc.Caller) MetricSource {
	return &rpcMetricSource{client: client}
}

func (s *rpcMetricSource) Collect() (*sadc.Record, error) {
	var rec sadc.Record
	if err := s.client.Call(MethodSadcCollect, nil, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}
