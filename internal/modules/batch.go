package modules

import (
	"fmt"
	"time"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/stats"
)

// This file implements the batched analysis plane: the multi-node forms of
// knn and mavgvec. Instead of N per-node module instances — ~2N tiny Runs
// per tick at fleet scale — one instance drains all N inputs, gathers the
// pending vectors into one flat row-major matrix, and processes every
// node's data in a single Run with bounded parallel workers over contiguous
// node blocks (analysis.BlockPool) and pooled scratch.
//
// The contract is byte-identity with the per-node configuration: the same
// arithmetic in the same per-port order, only batching and layout change.
// Workers therefore only *compute* (into per-row slots of pooled buffers,
// one owner per row, no contention); publication happens serially in node
// index order afterwards, and published Values are freshly allocated per
// sample exactly as the per-node modules do (a published Sample's Values
// live on in downstream queues).

// batchParams parses the shared multi-node parameters: nodes (the form
// switch), fanout (worker budget) and block (rows per worker block).
func batchParams(cfg *config.Instance, module string) (nodes, workers, block int, err error) {
	if nodes, err = cfg.IntParam("nodes", 0); err != nil {
		return 0, 0, 0, err
	}
	if nodes < 0 {
		return 0, 0, 0, fmt.Errorf("%s: nodes must be non-negative", module)
	}
	fanout, err := cfg.FanoutParam()
	if err != nil {
		return 0, 0, 0, err
	}
	workers = resolveFanout(fanout, nodes)
	if block, err = cfg.IntParam("block", 0); err != nil {
		return 0, 0, 0, err
	}
	if block < 0 {
		return 0, 0, 0, fmt.Errorf("%s: block must be non-negative", module)
	}
	return nodes, workers, block, nil
}

// pendingGather drains every input into reusable per-node sample lists.
type pendingGather struct {
	pending [][]core.Sample
}

func newPendingGather(n int) *pendingGather {
	return &pendingGather{pending: make([][]core.Sample, n)}
}

// drain refills the per-node lists from the ports. The lists are reused
// across ticks (ReadAppend into the truncated previous backing array), so a
// steady-state drain does not allocate.
func (g *pendingGather) drain(inputs []*core.InputPort) (total int) {
	for i, in := range inputs {
		g.pending[i] = in.ReadAppend(g.pending[i][:0])
		total += len(g.pending[i])
	}
	return total
}

// release zeroes the drained lists so consumed Samples (and their Values)
// do not stay reachable through the reused backing arrays.
func (g *pendingGather) release() {
	for i := range g.pending {
		for j := range g.pending[i] {
			g.pending[i][j] = core.Sample{}
		}
		g.pending[i] = g.pending[i][:0]
	}
}

// knnBatch is the multi-node form of knn (nodes = N): input i is node i's
// raw vector stream, output<i> carries node i's 1-NN state index stream.
type knnBatch struct {
	model *analysis.Model
	bc    *analysis.BatchClassifier
	outs  []*core.OutputPort

	gather *pendingGather
	matrix []float64 // flat row-major gather, grown on demand
	states []int     // per-row classification results
	dim    int       // vector dimension, fixed by the first sample
}

func (m *knnBatch) init(ctx *core.InitContext, model *analysis.Model, nodes, workers, block int) error {
	inputs := ctx.Inputs()
	if len(inputs) != nodes {
		return fmt.Errorf("knn: nodes = %d but %d inputs are wired", nodes, len(inputs))
	}
	m.model = model
	m.bc = analysis.NewBatchClassifier(model, workers, block)
	m.gather = newPendingGather(nodes)
	for i, in := range inputs {
		origin := in.Origin()
		origin.Source = "knn(" + origin.Source + ")"
		origin.Metric = "state"
		out, err := ctx.NewOutput(fmt.Sprintf("output%d", i), origin)
		if err != nil {
			return err
		}
		m.outs = append(m.outs, out)
	}
	return nil
}

func (m *knnBatch) run(ctx *core.RunContext) error {
	total := m.gather.drain(ctx.Inputs())
	if total > 0 {
		if err := m.classifyAndPublish(total); err != nil {
			return err
		}
	}
	m.gather.release()
	if ctx.Reason == core.RunFlush {
		m.bc.Close()
	}
	return nil
}

func (m *knnBatch) classifyAndPublish(total int) error {
	// Gather: node-major rows, each node's pending samples in arrival
	// order, so row order equals publish order.
	if m.dim == 0 {
		for _, ps := range m.gather.pending {
			if len(ps) > 0 {
				m.dim = len(ps[0].Values)
				break
			}
		}
	}
	if need := total * m.dim; cap(m.matrix) < need {
		m.matrix = make([]float64, need)
	}
	m.matrix = m.matrix[:total*m.dim]
	if cap(m.states) < total {
		m.states = make([]int, total)
	}
	m.states = m.states[:total]
	row := 0
	for i, ps := range m.gather.pending {
		for _, s := range ps {
			if len(s.Values) != m.dim {
				return fmt.Errorf("knn: node %d sample has %d values, want %d", i, len(s.Values), m.dim)
			}
			copy(m.matrix[row*m.dim:(row+1)*m.dim], s.Values)
			row++
		}
	}
	if err := m.bc.ClassifyMatrix(m.matrix, total, m.dim, m.states); err != nil {
		return fmt.Errorf("knn: %w", err)
	}
	// Serial publish in node index order: per-port sample order is exactly
	// the per-node module's.
	row = 0
	for i, ps := range m.gather.pending {
		for _, s := range ps {
			m.outs[i].Publish(core.NewScalar(s.Time, float64(m.states[row])))
			row++
		}
	}
	return nil
}

// batchSmoother is the compute kernel of the multi-node mavgvec: per-node
// sliding vector windows pushed and reduced in parallel over node blocks,
// with emissions written to pooled flat row-major buffers. After warm-up a
// smooth pass performs zero allocations; publication (which must allocate
// fresh Values per emitted sample, like the per-node module) is the
// caller's serial job.
type batchSmoother struct {
	windowSize int
	slide      int
	dim        int

	win       []*stats.VectorWindow
	sinceEmit []int

	pool        *analysis.BlockPool
	meanScratch [][]float64 // per-worker variance scratch
	errs        []error     // per-worker first error

	// per-tick kernel state, owned one node per worker.
	pending  [][]core.Sample
	base     []int       // emission slot base per node (prefix sums)
	emitN    []int       // emissions produced per node this tick
	emitMean []float64   // flat rows at base[i]..base[i]+emitN[i]
	emitVar  []float64   // flat rows, parallel to emitMean
	emitTime []time.Time // triggering sample times, parallel rows
}

func newBatchSmoother(nodes, window, slide, workers, block int) *batchSmoother {
	b := &batchSmoother{
		windowSize: window,
		slide:      slide,
		win:        make([]*stats.VectorWindow, nodes),
		sinceEmit:  make([]int, nodes),
		base:       make([]int, nodes),
		emitN:      make([]int, nodes),
	}
	b.pool = analysis.NewBlockPool(workers, block, b.smoothBlock)
	b.meanScratch = make([][]float64, b.pool.Workers())
	b.errs = make([]error, b.pool.Workers())
	return b
}

func (b *batchSmoother) smoothBlock(w, lo, hi int) {
	for i := lo; i < hi; i++ {
		if b.errs[w] != nil {
			return
		}
		b.errs[w] = b.smoothNode(w, i)
	}
}

func (b *batchSmoother) smoothNode(w, node int) error {
	emit := 0
	for _, s := range b.pending[node] {
		if b.win[node] == nil {
			b.win[node] = stats.NewVectorWindow(b.windowSize, b.dim)
		}
		if len(s.Values) != b.dim {
			return fmt.Errorf("mavgvec: node %d sample has %d values, want %d", node, len(s.Values), b.dim)
		}
		if err := b.win[node].Push(s.Values); err != nil {
			return fmt.Errorf("mavgvec: %w", err)
		}
		b.sinceEmit[node]++
		if b.win[node].Full() && b.sinceEmit[node] >= b.slide {
			b.sinceEmit[node] = 0
			slot := b.base[node] + emit
			if len(b.meanScratch[w]) < b.dim {
				b.meanScratch[w] = make([]float64, b.dim)
			}
			b.win[node].MeanInto(b.emitMean[slot*b.dim : (slot+1)*b.dim])
			b.win[node].VarianceInto(b.emitVar[slot*b.dim:(slot+1)*b.dim], b.meanScratch[w])
			b.emitTime[slot] = s.Time
			emit++
		}
	}
	b.emitN[node] = emit
	return nil
}

// smooth runs the kernel over the drained per-node sample lists. pending
// must have one entry per node. The emission buffers are valid until the
// next call.
func (b *batchSmoother) smooth(pending [][]core.Sample) error {
	if b.dim == 0 {
		for _, ps := range pending {
			if len(ps) > 0 {
				b.dim = len(ps[0].Values)
				break
			}
		}
		if b.dim == 0 {
			return nil
		}
	}
	// Emission slots: at most one emission per pending sample, node-major.
	slots := 0
	for i, ps := range pending {
		b.base[i] = slots
		b.emitN[i] = 0
		slots += len(ps)
	}
	if need := slots * b.dim; cap(b.emitMean) < need {
		b.emitMean = make([]float64, need)
		b.emitVar = make([]float64, need)
	}
	b.emitMean = b.emitMean[:slots*b.dim]
	b.emitVar = b.emitVar[:slots*b.dim]
	if cap(b.emitTime) < slots {
		b.emitTime = make([]time.Time, slots)
	}
	b.emitTime = b.emitTime[:slots]
	b.pending = pending
	b.pool.Run(len(pending))
	b.pending = nil
	var first error
	for w, err := range b.errs {
		if err != nil && first == nil {
			first = err
		}
		b.errs[w] = nil
	}
	return first
}

// mavgvecBatch is the multi-node form of mavgvec (nodes = N): input i is
// node i's vector stream, outputs mean<i> and var<i> carry its window mean
// and variance streams.
type mavgvecBatch struct {
	sm       *batchSmoother
	gather   *pendingGather
	meanOuts []*core.OutputPort
	varOuts  []*core.OutputPort
}

func (m *mavgvecBatch) init(ctx *core.InitContext, nodes, window, slide, workers, block int) error {
	inputs := ctx.Inputs()
	if len(inputs) != nodes {
		return fmt.Errorf("mavgvec: nodes = %d but %d inputs are wired", nodes, len(inputs))
	}
	m.sm = newBatchSmoother(nodes, window, slide, workers, block)
	m.gather = newPendingGather(nodes)
	for i, in := range inputs {
		origin := in.Origin()
		origin.Source = "mavgvec(" + origin.Source + ")"
		meanOut, err := ctx.NewOutput(fmt.Sprintf("mean%d", i), origin)
		if err != nil {
			return err
		}
		varOut, err := ctx.NewOutput(fmt.Sprintf("var%d", i), origin)
		if err != nil {
			return err
		}
		m.meanOuts = append(m.meanOuts, meanOut)
		m.varOuts = append(m.varOuts, varOut)
	}
	return nil
}

func (m *mavgvecBatch) run(ctx *core.RunContext) error {
	total := m.gather.drain(ctx.Inputs())
	if total > 0 {
		if err := m.sm.smooth(m.gather.pending); err != nil {
			m.gather.release()
			return err
		}
		// Serial publish in node index order. Fresh Values per sample, as
		// the per-node module publishes — downstream queues retain them.
		dim := m.sm.dim
		for i := range m.gather.pending {
			for e := 0; e < m.sm.emitN[i]; e++ {
				slot := m.sm.base[i] + e
				mean := make([]float64, dim)
				copy(mean, m.sm.emitMean[slot*dim:(slot+1)*dim])
				m.meanOuts[i].Publish(core.Sample{Time: m.sm.emitTime[slot], Values: mean})
				variance := make([]float64, dim)
				copy(variance, m.sm.emitVar[slot*dim:(slot+1)*dim])
				m.varOuts[i].Publish(core.Sample{Time: m.sm.emitTime[slot], Values: variance})
			}
		}
	}
	m.gather.release()
	if ctx.Reason == core.RunFlush {
		m.sm.pool.Close()
	}
	return nil
}
