package modules

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/hierarchy"
	"github.com/asdf-project/asdf/internal/rpc"
)

// hierLeader is one shard leader in a test topology: its delegated range
// and its own transport knobs (leader→daemon wire, batching, shards). With
// jsonHop the leader serves only the JSON sweep methods — a pre-columnar
// leader build — so a columnar root must fall back per leader.
type hierLeader struct {
	rng     hierarchy.Range
	wire    string
	batch   bool
	shards  int
	jsonHop bool
}

// startLeader builds a Leader over the fleet's daemons and serves it on
// loopback, returning its address. The leader shares the cluster's virtual
// clock, as a production leader shares wall time with the root.
func startLeader(t *testing.T, c *hadoopsim.Cluster, li int, sp hierLeader, nodes, sadcAddrs, logAddrs []string) (ldr *Leader, addr string) {
	t.Helper()
	lenv := NewEnv()
	lenv.Clock = c.Now
	opt := LeaderOptions{
		Name:   fmt.Sprintf("leader%d", li),
		Nodes:  nodes[sp.rng.Start:sp.rng.End],
		Wire:   sp.wire,
		Batch:  sp.batch,
		Shards: config.ShardParams{Shards: sp.shards},
	}
	if sadcAddrs != nil {
		opt.SadcAddrs = sadcAddrs[sp.rng.Start:sp.rng.End]
	}
	if logAddrs != nil {
		opt.LogAddrs = logAddrs[sp.rng.Start:sp.rng.End]
		opt.LogKind = hadooplog.KindTaskTracker
	}
	ldr, err := NewLeader(lenv, opt)
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(hierarchy.ServiceLeader)
	registerTestLeader(srv, ldr, sp.jsonHop)
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return ldr, a.String()
}

// registerTestLeader registers the full leader surface, or — for a
// pre-columnar leader build — the JSON sweep methods alone.
func registerTestLeader(srv *rpc.Server, ldr *Leader, jsonHop bool) {
	if !jsonHop {
		ldr.Register(srv)
		return
	}
	srv.Handle(hierarchy.MethodSadcSweep, func(json.RawMessage) (any, error) {
		return ldr.SadcSweep()
	})
	srv.Handle(hierarchy.MethodLogSweep, func(json.RawMessage) (any, error) {
		return ldr.LogSweep()
	})
}

// hierParams renders the delegation lines of a root instance config.
func hierParams(leaderAddrs []string, specs []hierLeader) string {
	if len(specs) == 0 {
		return ""
	}
	ranges := make([]string, len(specs))
	for i, sp := range specs {
		ranges[i] = sp.rng.String()
	}
	return fmt.Sprintf("leaders = %s\nleader_ranges = %s\n",
		strings.Join(leaderAddrs, ","), strings.Join(ranges, ","))
}

// maskDelegated replaces delegated addrs entries with the "-" placeholder.
func maskDelegated(addrs []string, specs []hierLeader) []string {
	out := append([]string(nil), addrs...)
	for _, sp := range specs {
		for i := sp.rng.Start; i < sp.rng.End; i++ {
			out[i] = "-"
		}
	}
	return out
}

// runHierSadcCase runs the multi-node sadc collector with part of the fleet
// delegated to shard-leader processes and returns the CSV sink bytes; the
// direct runWireSadcCase output for the same cluster seed is the comparison
// baseline.
func runHierSadcCase(t *testing.T, slaves int, seed int64, wc wireCase, specs []hierLeader) []byte {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	var names, addrs []string
	for i, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceSadc)
		if wc.jsonOnly[i] {
			registerSadcJSON(srv, n)
		} else {
			RegisterSadcServer(srv, n)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		names = append(names, n.Name)
		addrs = append(addrs, addr.String())
	}
	var leaderAddrs []string
	for li, sp := range specs {
		_, la := startLeader(t, c, li, sp, names, addrs, nil)
		leaderAddrs = append(leaderAddrs, la)
	}
	env := NewEnv()
	env.Clock = c.Now

	csvPath := filepath.Join(t.TempDir(), "out.csv")
	var b strings.Builder
	fmt.Fprintf(&b, "[sadc]\nid = cluster\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1\n%s%s\n",
		strings.Join(names, ","), strings.Join(maskDelegated(addrs, specs), ","),
		wc.params(), hierParams(leaderAddrs, specs))
	fmt.Fprintf(&b, "[csv]\nid = log\npath = %s\n", csvPath)
	for i, n := range names {
		fmt.Fprintf(&b, "input[m%d] = cluster.%s\n", i, n)
	}
	e := mustEngine(t, env, b.String())
	runSim(t, c, e, 30)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestHierarchySadcMatchesDirect asserts the hierarchical collection plane
// logs CSV byte-identical to the single-process configuration, across the
// root-hop and leader-hop transport matrix.
func TestHierarchySadcMatchesDirect(t *testing.T) {
	const slaves, seed = 6, 1201
	baseline := runWireSadcCase(t, slaves, seed, wireCase{wire: "json"})
	if len(baseline) == 0 {
		t.Fatal("direct baseline produced no CSV output")
	}
	cases := []struct {
		name  string
		wc    wireCase
		specs []hierLeader
	}{
		{"two-leaders-json", wireCase{wire: "json"},
			[]hierLeader{{rng: hierarchy.Range{Start: 0, End: 3}}, {rng: hierarchy.Range{Start: 3, End: 6}}}},
		{"partial-delegation", wireCase{},
			[]hierLeader{{rng: hierarchy.Range{Start: 2, End: 5}}}},
		{"columnar-hop", wireCase{wire: "columnar"},
			[]hierLeader{
				{rng: hierarchy.Range{Start: 0, End: 3}, wire: "columnar"},
				{rng: hierarchy.Range{Start: 3, End: 6}, wire: "columnar"}}},
		{"columnar-subscribe-hop", wireCase{wire: "columnar", subscribe: true},
			[]hierLeader{
				{rng: hierarchy.Range{Start: 0, End: 3}, wire: "columnar"},
				{rng: hierarchy.Range{Start: 3, End: 6}, wire: "columnar"}}},
		{"columnar-hop-json-daemons", wireCase{wire: "columnar"},
			[]hierLeader{
				{rng: hierarchy.Range{Start: 0, End: 3}, wire: "json"},
				{rng: hierarchy.Range{Start: 3, End: 6}, wire: "json"}}},
		{"leader-shards-and-batch", wireCase{wire: "json"},
			[]hierLeader{
				{rng: hierarchy.Range{Start: 0, End: 4}, batch: true, shards: 2},
				{rng: hierarchy.Range{Start: 4, End: 6}, wire: "columnar"}}},
		{"sharded-root-mixed-ranges", wireCase{wire: "columnar", shards: 3},
			[]hierLeader{{rng: hierarchy.Range{Start: 0, End: 2}, wire: "columnar"}}},
		// A pre-columnar leader build: the root's columnar hop must fall
		// back to the JSON sweep for that leader alone.
		{"pre-columnar-leader-fallback", wireCase{wire: "columnar"},
			[]hierLeader{
				{rng: hierarchy.Range{Start: 0, End: 3}, jsonHop: true},
				{rng: hierarchy.Range{Start: 3, End: 6}, wire: "columnar"}}},
		// Mixed-version fleet: one fully columnar leader range beside a
		// direct range of pre-columnar daemons (per-node JSON fallback).
		{"mixed-version-fleet", wireCase{wire: "columnar", jsonOnly: map[int]bool{3: true, 4: true, 5: true}},
			[]hierLeader{{rng: hierarchy.Range{Start: 0, End: 3}, wire: "columnar"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runHierSadcCase(t, slaves, seed, tc.wc, tc.specs)
			if !bytes.Equal(baseline, got) {
				t.Errorf("sink output differs from direct baseline: %d bytes vs %d",
					len(got), len(baseline))
			}
		})
	}
}

// runHierLogCase is the hadoop_log counterpart of runHierSadcCase.
func runHierLogCase(t *testing.T, slaves int, seed int64, wc wireCase, specs []hierLeader) []byte {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	var names, addrs []string
	for i, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceHadoopLog)
		if wc.jsonOnly[i] {
			registerHadoopLogJSON(srv, n.TaskTrackerLog(), n.DataNodeLog(), c.Now)
		} else {
			RegisterHadoopLogServer(srv, n.TaskTrackerLog(), n.DataNodeLog(), c.Now)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		names = append(names, n.Name)
		addrs = append(addrs, addr.String())
	}
	var leaderAddrs []string
	for li, sp := range specs {
		_, la := startLeader(t, c, li, sp, names, nil, addrs)
		leaderAddrs = append(leaderAddrs, la)
	}
	env := NewEnv()
	env.Clock = c.Now

	csvPath := filepath.Join(t.TempDir(), "out.csv")
	var b strings.Builder
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl\nkind = tasktracker\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1\n%s%s\n",
		strings.Join(names, ","), strings.Join(maskDelegated(addrs, specs), ","),
		wc.params(), hierParams(leaderAddrs, specs))
	fmt.Fprintf(&b, "[csv]\nid = log\npath = %s\n", csvPath)
	for i, n := range names {
		fmt.Fprintf(&b, "input[m%d] = hl.%s\n", i, n)
	}
	e := mustEngine(t, env, b.String())
	runSim(t, c, e, 30)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestHierarchyLogMatchesDirect covers the white-box path: delegated log
// ranges must feed the timestamp synchronizer to byte-identical output.
func TestHierarchyLogMatchesDirect(t *testing.T) {
	const slaves, seed = 4, 1202
	baseline := runWireLogCase(t, slaves, seed, wireCase{wire: "json"})
	if len(baseline) == 0 {
		t.Fatal("direct baseline produced no CSV output")
	}
	cases := []struct {
		name  string
		wc    wireCase
		specs []hierLeader
	}{
		{"two-leaders-json", wireCase{wire: "json"},
			[]hierLeader{{rng: hierarchy.Range{Start: 0, End: 2}}, {rng: hierarchy.Range{Start: 2, End: 4}}}},
		{"partial-delegation", wireCase{},
			[]hierLeader{{rng: hierarchy.Range{Start: 1, End: 3}}}},
		{"columnar-hop", wireCase{wire: "columnar"},
			[]hierLeader{
				{rng: hierarchy.Range{Start: 0, End: 2}, wire: "columnar"},
				{rng: hierarchy.Range{Start: 2, End: 4}, wire: "columnar"}}},
		{"columnar-subscribe-hop", wireCase{wire: "columnar", subscribe: true},
			[]hierLeader{{rng: hierarchy.Range{Start: 0, End: 3}, wire: "columnar"}}},
		{"pre-columnar-leader-fallback", wireCase{wire: "columnar"},
			[]hierLeader{
				{rng: hierarchy.Range{Start: 0, End: 2}, jsonHop: true},
				{rng: hierarchy.Range{Start: 2, End: 4}, wire: "columnar"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runHierLogCase(t, slaves, seed, tc.wc, tc.specs)
			if !bytes.Equal(baseline, got) {
				t.Errorf("sink output differs from direct baseline: %d bytes vs %d",
					len(got), len(baseline))
			}
		})
	}
}

// TestHierParamValidation pins the configuration contract for the
// delegation knobs.
func TestHierParamValidation(t *testing.T) {
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	n0, n1 := c.Slaves()[0].Name, c.Slaves()[1].Name
	nodes := n0 + "," + n1
	for _, tc := range []struct {
		name, cfg, wantErr string
	}{
		{
			"leaders-need-rpc",
			"[sadc]\nid = s\nnodes = " + nodes + "\nleaders = 127.0.0.1:1\nleader_ranges = 0-2\n",
			"leaders requires mode = rpc",
		},
		{
			"leaders-need-multi-node-form",
			"[sadc]\nid = s\nnode = " + n0 + "\nmode = rpc\naddr = 127.0.0.1:1\nleaders = 127.0.0.1:2\nleader_ranges = 0-1\n",
			"multi-node (nodes =) form",
		},
		{
			"ranges-without-leaders",
			"[sadc]\nid = s\nnodes = " + nodes + "\nmode = rpc\naddrs = 127.0.0.1:1,127.0.0.1:2\nleader_ranges = 0-2\n",
			"leader_ranges without leaders",
		},
		{
			"count-mismatch",
			"[sadc]\nid = s\nnodes = " + nodes + "\nmode = rpc\naddrs = -,-\nleaders = 127.0.0.1:1\nleader_ranges = 0-1,1-2\n",
			"leaders for",
		},
		{
			"overlapping-ranges",
			"[sadc]\nid = s\nnodes = " + nodes + "\nmode = rpc\naddrs = -,-\nleaders = 127.0.0.1:1,127.0.0.1:2\nleader_ranges = 0-2,1-2\n",
			"overlap",
		},
		{
			"range-out-of-bounds",
			"[sadc]\nid = s\nnodes = " + nodes + "\nmode = rpc\naddrs = -,-\nleaders = 127.0.0.1:1\nleader_ranges = 0-3\n",
			"exceeds",
		},
		{
			"dash-for-undelegated-node",
			"[sadc]\nid = s\nnodes = " + nodes + "\nmode = rpc\naddrs = 127.0.0.1:1,-\nleaders = 127.0.0.1:2\nleader_ranges = 0-1\n",
			"undelegated node",
		},
		{
			"hadoop-log-leaders-need-rpc",
			"[hadoop_log]\nid = h\nkind = tasktracker\nnodes = " + nodes + "\nleaders = 127.0.0.1:1\nleader_ranges = 0-2\n",
			"leaders requires mode = rpc",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := config.ParseString(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			_, err = core.NewEngine(NewRegistry(env), cfg)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// runDaemonOutageCase runs a fleet where the daemons of nodes 0..down-1 die
// at tick 10 and come back on their old addresses at tick 20, and returns
// the CSV sink bytes. With specs nil the root collects directly; otherwise
// the outage range sits behind a shard leader. The engine swallows
// collection errors (no quarantine, no degrade) so the sink records exactly
// what the collection plane delivered.
func runDaemonOutageCase(t *testing.T, slaves, down int, seed int64, specs []hierLeader) []byte {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	var names, addrs []string
	servers := make([]*rpc.Server, slaves)
	for i, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceSadc)
		RegisterSadcServer(srv, n)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		servers[i] = srv
		names = append(names, n.Name)
		addrs = append(addrs, addr.String())
	}
	var leaderAddrs []string
	for li, sp := range specs {
		_, la := startLeader(t, c, li, sp, names, addrs, nil)
		leaderAddrs = append(leaderAddrs, la)
	}
	env := NewEnv()
	env.Clock = c.Now

	csvPath := filepath.Join(t.TempDir(), "out.csv")
	var b strings.Builder
	fmt.Fprintf(&b, "[sadc]\nid = cluster\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1\n%s\n",
		strings.Join(names, ","), strings.Join(maskDelegated(addrs, specs), ","),
		hierParams(leaderAddrs, specs))
	fmt.Fprintf(&b, "[csv]\nid = log\npath = %s\n", csvPath)
	for i, n := range names {
		fmt.Fprintf(&b, "input[m%d] = cluster.%s\n", i, n)
	}
	cfg, err := config.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(NewRegistry(env), cfg,
		core.WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	tick := func(n int) {
		for i := 0; i < n; i++ {
			c.Tick()
			if err := e.Tick(c.Now()); err != nil {
				t.Fatalf("tick: %v", err)
			}
		}
	}
	tick(10)
	for i := 0; i < down; i++ {
		if err := servers[i].Close(); err != nil {
			t.Fatal(err)
		}
	}
	tick(10)
	// Daemon restart: a fresh server (and therefore a fresh collector, which
	// re-warms its rate state) on the old address — identical in both modes
	// because the collector lives behind the daemon RPC boundary.
	for i := 0; i < down; i++ {
		srv := rpc.NewServer(ServiceSadc)
		RegisterSadcServer(srv, c.Slaves()[i])
		if _, err := srv.Listen(addrs[i]); err != nil {
			t.Fatalf("re-listen on %s: %v", addrs[i], err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}
	tick(15)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestHierarchyDaemonOutageMatchesDirect holds the strongest equivalence
// claim: when collection daemons die and recover mid-run, the hierarchical
// plane must degrade and heal byte-identically to the direct configuration —
// same missing ticks, same breaker-paced reconnect, same re-warmup.
func TestHierarchyDaemonOutageMatchesDirect(t *testing.T) {
	const slaves, down, seed = 4, 3, 1204
	direct := runDaemonOutageCase(t, slaves, down, seed, nil)
	if len(direct) == 0 {
		t.Fatal("direct outage run produced no CSV output")
	}
	for _, tc := range []struct {
		name  string
		specs []hierLeader
	}{
		{"one-leader-covers-outage", []hierLeader{{rng: hierarchy.Range{Start: 0, End: 3}}}},
		{"outage-split-across-leaders", []hierLeader{
			{rng: hierarchy.Range{Start: 0, End: 2}, wire: "columnar"},
			{rng: hierarchy.Range{Start: 2, End: 4}}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runDaemonOutageCase(t, slaves, down, seed, tc.specs)
			if !bytes.Equal(direct, got) {
				t.Errorf("sink output differs from direct outage baseline: %d bytes vs %d",
					len(got), len(direct))
			}
		})
	}
}

// TestHierarchyLeaderKillRecover kills one of two leaders mid-run and
// restarts it on the same address: the instance must degrade through the
// ordinary supervisor path (quarantine + gap-fill rows tagged degraded),
// recover once the leader is back, and never emit duplicate or rewound
// timestamps.
func TestHierarchyLeaderKillRecover(t *testing.T) {
	const slaves, seed = 4, 1203
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	var names, addrs []string
	for _, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceSadc)
		RegisterSadcServer(srv, n)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		names = append(names, n.Name)
		addrs = append(addrs, addr.String())
	}
	specs := []hierLeader{
		{rng: hierarchy.Range{Start: 0, End: 2}},
		{rng: hierarchy.Range{Start: 2, End: 4}},
	}
	// leader0 is built by hand (not startLeader) so the test can kill its
	// server and re-serve the same Leader on the same address.
	lenv := NewEnv()
	lenv.Clock = c.Now
	ldr0, err := NewLeader(lenv, LeaderOptions{
		Name:      "leader0",
		Nodes:     names[0:2],
		SadcAddrs: addrs[0:2],
	})
	if err != nil {
		t.Fatal(err)
	}
	lsrv0 := rpc.NewServer(hierarchy.ServiceLeader)
	ldr0.Register(lsrv0)
	la0, err := lsrv0.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, la1 := startLeader(t, c, 1, specs[1], names, addrs, nil)
	leaderAddrs := []string{la0.String(), la1}

	env := NewEnv()
	env.Clock = c.Now
	csvPath := filepath.Join(t.TempDir(), "out.csv")
	var b strings.Builder
	fmt.Fprintf(&b, "[sadc]\nid = cluster\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1\n%s\n",
		strings.Join(names, ","), strings.Join(maskDelegated(addrs, specs), ","),
		hierParams(leaderAddrs, specs))
	fmt.Fprintf(&b, "[csv]\nid = log\npath = %s\n", csvPath)
	for i, n := range names {
		fmt.Fprintf(&b, "input[m%d] = cluster.%s\n", i, n)
	}
	cfg, err := config.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(NewRegistry(env), cfg,
		core.WithErrorHandler(func(string, error) {}),
		core.WithQuarantine(3, 4*time.Second),
		core.WithDegrade(core.DegradeHold))
	if err != nil {
		t.Fatal(err)
	}

	tick := func(n int) {
		for i := 0; i < n; i++ {
			c.Tick()
			if err := e.Tick(c.Now()); err != nil {
				t.Fatalf("tick: %v", err)
			}
		}
	}
	tick(10)
	// Kill leader0; its range errors whole, the instance quarantines past
	// the failure budget, and DegradeHold gap-fills every output.
	if err := lsrv0.Close(); err != nil {
		t.Fatal(err)
	}
	tick(12)
	// Restart the leader on its old address. The root's managed client
	// reconnects through its breaker's half-open probe; the daemons kept
	// their rate state, so collection resumes without re-warmup.
	lsrv0b := rpc.NewServer(hierarchy.ServiceLeader)
	ldr0.Register(lsrv0b)
	if _, err := lsrv0b.Listen(la0.String()); err != nil {
		t.Fatalf("re-listen on %s: %v", la0, err)
	}
	t.Cleanup(func() { _ = lsrv0b.Close() })
	tick(18)
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("no CSV rows: %q", data)
	}
	degraded := 0
	lastClean := map[string]string{}
	lastTime := map[string]string{}
	maxTime := ""
	for _, line := range lines[1:] {
		f := strings.SplitN(line, ",", 5)
		if len(f) != 5 {
			t.Fatalf("malformed CSV row %q", line)
		}
		key := f[1] + "/" + f[2] + "/" + f[3]
		if prev, ok := lastTime[key]; ok && f[0] <= prev {
			t.Fatalf("duplicate or rewound timestamp for %s: %s after %s", key, f[0], prev)
		}
		lastTime[key] = f[0]
		if f[0] > maxTime {
			maxTime = f[0]
		}
		if strings.HasSuffix(f[4], ";degraded") {
			degraded++
		} else {
			lastClean[key] = f[0]
		}
	}
	if degraded == 0 {
		t.Error("leader outage produced no degraded gap-fill rows")
	}
	// Every output — including the killed leader's range — must have
	// recovered: its newest row is clean and lands on the final tick.
	for _, n := range names {
		key := n + "/sadc/" + n
		ts, ok := lastClean[key]
		if !ok {
			t.Fatalf("no clean row for %s after recovery", key)
		}
		if ts != maxTime {
			t.Errorf("%s: last clean row at %s, want the final tick %s", key, ts, maxTime)
		}
	}
}
