package modules

import (
	"time"

	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/state"
)

// Both rpc-mode collectors implement the full crash-safe state surface.
var (
	_ state.BreakerExporter = (*sadcModule)(nil)
	_ state.BreakerImporter = (*sadcModule)(nil)
	_ state.ReplayGuard     = (*sadcModule)(nil)
	_ state.BreakerExporter = (*hadoopLogModule)(nil)
	_ state.BreakerImporter = (*hadoopLogModule)(nil)
	_ state.ReplayGuard     = (*hadoopLogModule)(nil)
)

// Crash-safe restart plumbing for the rpc-mode collection modules: exporting
// and re-importing per-node circuit-breaker state across a control-node
// restart (matched by daemon address), and counting open breakers to feed
// the adaptive degradation controller. The interfaces are structural so a
// custom Dial hook returning an unsupervised client simply opts out.

// breakerExporter / breakerImporter are implemented by rpc.ManagedClient.
type breakerExporter interface {
	ExportBreaker() rpc.BreakerSnapshot
}

type breakerImporter interface {
	ImportBreaker(s rpc.BreakerSnapshot, probeAt time.Time)
}

// exportBreakers snapshots every supervised client's breaker, keyed by
// daemon address; nil when no client is supervised (local mode or a custom
// dialer).
func exportBreakers(clients []rpc.Caller) map[string]rpc.BreakerSnapshot {
	var out map[string]rpc.BreakerSnapshot
	for _, c := range clients {
		be, ok := c.(breakerExporter)
		if !ok {
			continue
		}
		s := be.ExportBreaker()
		if out == nil {
			out = make(map[string]rpc.BreakerSnapshot, len(clients))
		}
		out[s.Addr] = s
	}
	return out
}

// importBreakers restores persisted breaker state into this module's
// supervised clients, matched by daemon address. Non-closed breakers reload
// as open with a re-probe time drawn from the planner, so a restarted
// control node staggers its probes of known-dead daemons instead of dialing
// them all on the first tick. Returns how many clients were restored.
func importBreakers(clients []rpc.Caller, snaps map[string]rpc.BreakerSnapshot, plan *rpc.ProbePlanner) int {
	if len(snaps) == 0 {
		return 0
	}
	n := 0
	for _, c := range clients {
		bi, ok := c.(breakerImporter)
		if !ok {
			continue
		}
		h, ok := sourceHealth(c)
		if !ok {
			continue
		}
		s, ok := snaps[h.Addr]
		if !ok {
			continue
		}
		var probeAt time.Time
		if s.State != rpc.BreakerClosed && plan != nil {
			probeAt = plan.Next()
		}
		bi.ImportBreaker(s, probeAt)
		n++
	}
	return n
}

// countBreakers reports how many of the module's supervised connections
// have an open breaker, out of how many supervised connections total.
func countBreakers(clients []rpc.Caller) (open, total int) {
	for _, c := range clients {
		h, ok := sourceHealth(c)
		if !ok {
			continue
		}
		total++
		if h.State == rpc.BreakerOpen {
			open++
		}
	}
	return open, total
}
