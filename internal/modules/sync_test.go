package modules

import (
	"errors"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadooplog"
)

// gatedSource simulates a dead or recovering collection daemon: while
// closed, Fetch fails exactly like an RPC call against a dead node.
type gatedSource struct {
	inner LogSource
	open  func() bool
}

func (g *gatedSource) Fetch(now time.Time) ([]hadooplog.StateVector, error) {
	if !g.open() {
		return nil, errors.New("daemon down")
	}
	return g.inner.Fetch(now)
}

type syncHarness struct {
	t      *testing.T
	e      *core.Engine
	hl     *hadoopLogModule
	wA, wB *hadooplog.Writer
	base   time.Time
}

// newSyncHarness builds a two-node hadoop_log pipeline over local buffers
// with the given extra sync parameters. Node b's source is gated by bOpen;
// a nil bOpen leaves it permanently dead.
func newSyncHarness(t *testing.T, extra string, bOpen func() bool) *syncHarness {
	t.Helper()
	env := NewEnv()
	bufA := hadooplog.NewBuffer(0)
	bufB := hadooplog.NewBuffer(0)
	env.TTLogs["a"] = bufA
	env.TTLogs["b"] = bufB

	e := mustEngine(t, env, `
[hadoop_log]
id = hl
kind = tasktracker
nodes = a,b
period = 1
`+extra+`

[print]
id = p
input[x] = @hl
only_nonzero = false
`)
	mod, _ := e.ModuleOf("hl")
	hl := mod.(*hadoopLogModule)
	if bOpen == nil {
		bOpen = func() bool { return false }
	}
	hl.sources[1] = &gatedSource{inner: hl.sources[1], open: bOpen}
	return &syncHarness{
		t:    t,
		e:    e,
		hl:   hl,
		wA:   hadooplog.NewWriter(hadooplog.KindTaskTracker, bufA),
		wB:   hadooplog.NewWriter(hadooplog.KindTaskTracker, bufB),
		base: time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC),
	}
}

func (h *syncHarness) tick(from, to int) {
	h.t.Helper()
	for i := from; i <= to; i++ {
		if err := h.e.Tick(h.base.Add(time.Duration(i) * time.Second)); err != nil {
			h.t.Fatal(err)
		}
	}
}

func (h *syncHarness) published() (a, b uint64) {
	return h.hl.outs[0].Published(), h.hl.outs[1].Published()
}

// TestSyncQuorumOneNeverStalls: with a straggler deadline and quorum 1, a
// dead node cannot stall the cluster — the healthy node's timestamps are
// published partially once the deadline passes.
func TestSyncQuorumOneNeverStalls(t *testing.T) {
	h := newSyncHarness(t, "sync_deadline = 2\nsync_quorum = 1", nil)
	if err := h.wA.LaunchTask(h.base, hadooplog.TaskID(1, true, 0, 0)); err != nil {
		t.Fatal(err)
	}
	h.tick(1, 12)

	pubA, pubB := h.published()
	if pubA == 0 {
		t.Fatal("quorum-1 sync stalled on a dead node")
	}
	if pubB != 0 {
		t.Errorf("dead node published %d samples", pubB)
	}
	if h.hl.PartialTimestamps() == 0 {
		t.Error("partial counter did not record degraded publishes")
	}
	if h.hl.DroppedTimestamps() != 0 {
		t.Errorf("dropped = %d, want 0 (quorum 1 publishes everything)", h.hl.DroppedTimestamps())
	}
	miss := h.hl.MissingByNode()
	if miss["b"] == 0 {
		t.Errorf("missing-by-node = %v, want b > 0", miss)
	}
	if miss["a"] != 0 {
		t.Errorf("healthy node recorded missing seconds: %v", miss)
	}
	// The deadline bounds the lag: by virtual t=12 with a 2s deadline,
	// seconds up to 10 are resolved.
	if pubA < 8 {
		t.Errorf("only %d seconds published; straggler deadline not honoured", pubA)
	}
}

// TestSyncQuorumAllReproducesStrictRule: with quorum = all nodes (the
// default), degraded mode never publishes a partial timestamp — exactly the
// paper's §3.7 semantics — but the deadline still resolves (drops) overdue
// seconds so pending state cannot grow without bound.
func TestSyncQuorumAllReproducesStrictRule(t *testing.T) {
	h := newSyncHarness(t, "sync_deadline = 2", nil)
	if err := h.wA.LaunchTask(h.base, hadooplog.TaskID(1, true, 0, 0)); err != nil {
		t.Fatal(err)
	}
	h.tick(1, 12)

	pubA, pubB := h.published()
	if pubA != 0 || pubB != 0 {
		t.Fatalf("quorum=all published partial samples: a=%d b=%d", pubA, pubB)
	}
	if h.hl.PartialTimestamps() != 0 {
		t.Errorf("partial = %d, want 0", h.hl.PartialTimestamps())
	}
	if h.hl.DroppedTimestamps() == 0 {
		t.Error("overdue seconds were not dropped")
	}
	for i := range h.hl.pending {
		if len(h.hl.pending[i]) > 4 {
			t.Errorf("node %d pending grew to %d seconds; deadline is not bounding state",
				i, len(h.hl.pending[i]))
		}
	}
}

// TestSyncStrictDefaultWaitsForever: without a deadline the module keeps the
// paper's strict behaviour bit-for-bit — it neither publishes nor drops
// while a node stays silent.
func TestSyncStrictDefaultWaitsForever(t *testing.T) {
	h := newSyncHarness(t, "", nil)
	if err := h.wA.LaunchTask(h.base, hadooplog.TaskID(1, true, 0, 0)); err != nil {
		t.Fatal(err)
	}
	h.tick(1, 12)

	pubA, pubB := h.published()
	if pubA != 0 || pubB != 0 {
		t.Fatalf("strict sync published without all nodes: a=%d b=%d", pubA, pubB)
	}
	if h.hl.DroppedTimestamps() != 0 || h.hl.PartialTimestamps() != 0 {
		t.Errorf("strict sync resolved seconds early: dropped=%d partial=%d",
			h.hl.DroppedTimestamps(), h.hl.PartialTimestamps())
	}
}

// TestSyncRecoveredNodeReattaches: a node whose daemon comes back mid-run
// re-attaches seamlessly — earlier seconds were served degraded, and its
// own samples flow again after recovery with no module restart.
func TestSyncRecoveredNodeReattaches(t *testing.T) {
	bUp := false
	h := newSyncHarness(t, "sync_deadline = 2\nsync_quorum = 1", func() bool { return bUp })
	if err := h.wA.LaunchTask(h.base, hadooplog.TaskID(1, true, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := h.wB.LaunchTask(h.base.Add(8*time.Second), hadooplog.TaskID(1, true, 1, 0)); err != nil {
		t.Fatal(err)
	}
	h.tick(1, 8)
	if pubA, _ := h.published(); pubA == 0 {
		t.Fatal("no degraded publishes while node b was down")
	}
	partialBefore := h.hl.PartialTimestamps()
	if partialBefore == 0 {
		t.Fatal("outage did not register partial publishes")
	}

	// Node b's daemon recovers at t=8.
	bUp = true
	h.tick(9, 20)

	pubA, pubB := h.published()
	if pubB == 0 {
		t.Fatal("recovered node never re-attached")
	}
	if pubA <= pubB {
		t.Errorf("publish counts: a=%d should exceed b=%d", pubA, pubB)
	}
	lastB, okB := h.hl.outs[1].Last()
	if !okB {
		t.Fatal("missing last sample on recovered node")
	}
	if lastB.Time.Before(h.base.Add(8 * time.Second)) {
		t.Errorf("recovered node's last sample %v predates its recovery", lastB.Time)
	}
}
