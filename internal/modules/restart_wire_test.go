package modules

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/rpc"
)

// TestSubscriptionResyncComposesWithReplayGuard proves the crash-safe
// restart path composes with the columnar push transport: a restarted
// control node's fresh ManagedSubscription resyncs from the daemon (schema
// re-send plus a full history replay, since server-side stream state died
// with the old connection), and the restored replay watermark suppresses
// every second the previous life already published. The two lives'
// concatenated CSV must be byte-identical to an uninterrupted run — no
// duplicate rows, no out-of-order rows, no gap.
func TestSubscriptionResyncComposesWithReplayGuard(t *testing.T) {
	const slaves, seed = 4, 1105
	baseline := runWireLogCase(t, slaves, seed, wireCase{wire: "columnar", subscribe: true})
	if len(baseline) == 0 {
		t.Fatal("uninterrupted baseline produced no CSV output")
	}

	// The interrupted lineage shares one cluster and one daemon fleet: the
	// daemons survive the control node's crash.
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	var names, addrs []string
	for _, n := range c.Slaves() {
		srv := rpc.NewServer(ServiceHadoopLog)
		RegisterHadoopLogServer(srv, n.TaskTrackerLog(), n.DataNodeLog(), c.Now)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		names = append(names, n.Name)
		addrs = append(addrs, addr.String())
	}
	env := NewEnv()
	env.Clock = c.Now

	// runLife boots a control node, applies restore (the state manager's
	// boot-time hook), runs 15 ticks, and flushes the sink so the test can
	// read what this life published. The engine is then abandoned without
	// teardown — its subscriptions left dangling like a kill -9's half-dead
	// sockets.
	runLife := func(csvPath string, restore func(*hadoopLogModule)) *hadoopLogModule {
		t.Helper()
		var b strings.Builder
		fmt.Fprintf(&b, "[hadoop_log]\nid = hl\nkind = tasktracker\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1\nwire = columnar\nsubscribe = true\n\n",
			strings.Join(names, ","), strings.Join(addrs, ","))
		fmt.Fprintf(&b, "[csv]\nid = log\npath = %s\n", csvPath)
		for i, n := range names {
			fmt.Fprintf(&b, "input[m%d] = hl.%s\n", i, n)
		}
		e := mustEngine(t, env, b.String())
		mod, _ := e.ModuleOf("hl")
		hl := mod.(*hadoopLogModule)
		if restore != nil {
			restore(hl)
		}
		runSim(t, c, e, 15)
		if err := e.Flush(c.Now()); err != nil {
			t.Fatal(err)
		}
		return hl
	}

	dir := t.TempDir()
	path1 := filepath.Join(dir, "life1.csv")
	hl1 := runLife(path1, nil)
	wm, ok := hl1.ReplayWatermark()
	if !ok {
		t.Fatal("no replay watermark after 15 ticks")
	}

	// Second life: fresh engine, fresh subscriptions (the daemons re-serve
	// their full logs), watermark restored before the first tick — exactly
	// what internal/state's manager does on boot.
	path2 := filepath.Join(dir, "life2.csv")
	hl2 := runLife(path2, func(hl *hadoopLogModule) { hl.RestoreReplayWatermark(wm) })
	if wm2, ok := hl2.ReplayWatermark(); !ok || !wm2.After(wm) {
		t.Fatalf("second life's watermark %v did not advance past %v", wm2, wm)
	}

	life1, err := os.ReadFile(path1)
	if err != nil {
		t.Fatal(err)
	}
	life2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	header := "time,node,source,output,values\n"
	if !bytes.HasPrefix(life2, []byte(header)) {
		t.Fatalf("second life CSV missing header: %q", life2[:40])
	}
	combined := append(append([]byte{}, life1...), life2[len(header):]...)
	if !bytes.Equal(combined, baseline) {
		t.Errorf("interrupted lineage differs from uninterrupted run: %d bytes vs %d",
			len(combined), len(baseline))
	}

	// Belt and suspenders: scan the combined trace for duplicate or
	// out-of-order rows per node stream, independent of the baseline.
	last := make(map[string]string)
	for i, line := range strings.Split(strings.TrimSuffix(string(combined), "\n"), "\n") {
		if i == 0 {
			continue // header
		}
		f := strings.SplitN(line, ",", 5)
		if len(f) != 5 {
			t.Fatalf("malformed row %d: %q", i, line)
		}
		key := f[1] + "/" + f[3]
		// The timestamp format is lexicographically ordered; equality means
		// a duplicate second on one node's stream.
		if prev, ok := last[key]; ok && f[0] <= prev {
			t.Errorf("row %d: %s at %s not after %s (duplicate or out of order)", i, key, f[0], prev)
		}
		last[key] = f[0]
	}

	// Teeth: a third life without the restored watermark re-publishes the
	// resynced history — proving the hazard the replay guard suppresses is
	// real, not an artifact of daemons serving only fresh data.
	path3 := filepath.Join(dir, "life3.csv")
	runLife(path3, nil)
	life3, err := os.ReadFile(path3)
	if err != nil {
		t.Fatal(err)
	}
	wmStamp := wm.UTC().Format("2006-01-02T15:04:05")
	dup := 0
	for i, line := range strings.Split(strings.TrimSuffix(string(life3), "\n"), "\n") {
		if i == 0 {
			continue
		}
		if ts := strings.SplitN(line, ",", 2)[0]; ts <= wmStamp {
			dup++
		}
	}
	if dup == 0 {
		t.Error("unguarded restart re-published nothing at or before the watermark; the resync hazard this test guards against has vanished — revisit the test")
	}
}
