package modules

import (
	"encoding/json"
	"net"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/state"
)

// The operator status surface: a StatusReport aggregates, per engine, the
// supervised runtime's per-instance state, the collection plane's per-node
// breaker snapshots, and the timestamp-sync degradation counters — the
// three places where the always-on fingerpointing pipeline can silently
// degrade. cmd/asdf serves it over HTTP (/healthz, /status) and over the
// native RPC protocol (ServiceStatus / MethodStatus).

// ServiceStatus is the RPC service name announced by a status server, and
// MethodStatus its single method.
const (
	ServiceStatus = "asdf_status"
	MethodStatus  = "asdf.status"
)

// EngineView is the subset of the engine surface a StatusReport is
// assembled from. Both *core.Engine and *core.RunContext satisfy it, so
// the same collection logic serves the HTTP endpoint, the status RPC, and
// the counter-emitting sinks.
type EngineView interface {
	Instances() []string
	ModuleOf(id string) (core.Module, bool)
	SupervisorSnapshots() []core.InstanceHealth
}

var (
	_ EngineView = (*core.Engine)(nil)
	_ EngineView = (*core.RunContext)(nil)
)

// BreakerReporter is implemented by collection modules that supervise
// per-node RPC connections (sadc, hadoop_log in rpc mode).
type BreakerReporter interface {
	ClientHealths() map[string]rpc.Health
}

// SyncReporter is implemented by collection modules that perform cross-node
// timestamp synchronization (hadoop_log).
type SyncReporter interface {
	PartialTimestamps() uint64
	DroppedTimestamps() uint64
	MissingByNode() map[string]uint64
}

// RestartReporter is implemented by engine views wrapping a crash-safe
// state manager (cmd/asdf with -state-file): RestartStatus reports the
// snapshot/restore accounting, ok false when no state file is configured.
type RestartReporter interface {
	RestartStatus() (state.RestartStatus, bool)
}

// ShardReporter is implemented by collection modules that partition their
// node set across shard workers (sadc, hadoop_log with shards >= 2).
type ShardReporter interface {
	// ShardStatuses reports per-shard sweep accounting, nil when the
	// instance runs a single shard.
	ShardStatuses() []ShardStatus
}

// ShardStatus is one shard's slice of a collection instance: its node
// range size, concurrency budget, and sweep/failure accounting.
type ShardStatus struct {
	// Shard is the shard index (node ranges are contiguous and ordered by
	// shard index).
	Shard int `json:"shard"`
	// Nodes is how many nodes the shard sweeps.
	Nodes int `json:"nodes"`
	// Fanout is the shard's concurrent-fetch budget.
	Fanout int `json:"fanout"`
	// Sweeps counts completed sweeps.
	Sweeps uint64 `json:"sweeps"`
	// Errors counts failed per-node fetches across all sweeps.
	Errors uint64 `json:"errors"`
	// LastErrors is the failed-fetch count of the newest sweep.
	LastErrors int `json:"last_errors"`
	// LastSweepSeconds is the newest sweep's wall time.
	LastSweepSeconds float64 `json:"last_sweep_seconds"`
	// OpenBreakers counts the shard's nodes whose circuit breaker is open
	// (rpc mode only).
	OpenBreakers int `json:"open_breakers,omitempty"`
}

// LeaderReporter is implemented by collection modules that delegate node
// ranges to shard-leader processes (sadc, hadoop_log with leaders =).
type LeaderReporter interface {
	// LeaderStatuses reports per-leader delegation accounting, nil when
	// the instance delegates nothing.
	LeaderStatuses() []LeaderStatus
}

// LeaderStatus is one leader link of a collection instance: the delegated
// range, the root→leader connection health, and the merge accounting that
// backs the asdf_hier_* metrics.
type LeaderStatus struct {
	// Addr is the leader's RPC address.
	Addr string `json:"addr"`
	// Range is the delegated node-index range ("0-64"), Nodes its size.
	Range string `json:"range"`
	Nodes int    `json:"nodes"`
	// Wire is the live hop transport: "columnar", or "json" after the
	// per-leader fallback (or when the instance never asked for columnar).
	Wire string `json:"wire"`
	// Health is the root→leader managed-connection snapshot; nil with an
	// unsupervised custom dialer.
	Health *rpc.Health `json:"health,omitempty"`
	// Partials counts per-tick range partials merged from this leader;
	// Errors counts failed leader fetches (whole-range gaps).
	Partials uint64 `json:"partials"`
	Errors   uint64 `json:"errors"`
	// Restarts counts leader connection re-establishments after the first
	// connect — a leader process restart, seen from the root.
	Restarts uint64 `json:"restarts"`
	// Leader* are piggybacked from the leader's own accounting on the JSON
	// hop (stale or zero while the hop runs columnar).
	LeaderSweeps       uint64 `json:"leader_sweeps,omitempty"`
	LeaderNodeErrors   uint64 `json:"leader_node_errors,omitempty"`
	LeaderOpenBreakers int    `json:"leader_open_breakers,omitempty"`
}

// DropReporter is implemented by rate-matching modules that drop samples on
// overflow (ibuffer).
type DropReporter interface {
	// IbufferStatus reports the buffer size and drop accounting.
	IbufferStatus() IbufferStatus
}

// IbufferStatus is one ibuffer instance's drop accounting: a non-zero
// Dropped means the downstream analysis is not keeping up with its
// collectors and samples are being discarded oldest-first.
type IbufferStatus struct {
	// Size is the configured buffer capacity in samples.
	Size int `json:"size"`
	// Dropped counts samples discarded on overflow since start.
	Dropped uint64 `json:"dropped"`
	// Forwarded counts samples passed downstream since start.
	Forwarded uint64 `json:"forwarded"`
}

// SyncStatus is one instance's timestamp-sync degradation counters.
type SyncStatus struct {
	// Partial counts timestamps published without data from every node.
	Partial uint64 `json:"partial"`
	// Dropped counts timestamps discarded below the sync quorum.
	Dropped uint64 `json:"dropped"`
	// MissingByNode counts, per node, resolved seconds that lacked that
	// node's data.
	MissingByNode map[string]uint64 `json:"missing_by_node,omitempty"`
}

// StatusReport is the full operator snapshot of one engine.
type StatusReport struct {
	// Time is when the snapshot was taken.
	Time time.Time `json:"time"`
	// Healthy is false when any instance is quarantined or wedged, or any
	// collection breaker is open.
	Healthy bool `json:"healthy"`
	// Instances is every instance's supervisor snapshot, in topological
	// order.
	Instances []core.InstanceHealth `json:"instances"`
	// Breakers maps instance id -> node name -> connection health for
	// every rpc-mode collection module.
	Breakers map[string]map[string]rpc.Health `json:"breakers,omitempty"`
	// Sync maps instance id -> timestamp-sync counters for every
	// synchronizing collection module.
	Sync map[string]SyncStatus `json:"sync,omitempty"`
	// Shards maps instance id -> per-shard sweep accounting for every
	// collection module running two or more shards.
	Shards map[string][]ShardStatus `json:"shards,omitempty"`
	// Leaders maps instance id -> per-leader delegation accounting for
	// every collection module delegating node ranges to shard leaders.
	Leaders map[string][]LeaderStatus `json:"leaders,omitempty"`
	// Ibuffer maps instance id -> drop accounting for every ibuffer
	// instance.
	Ibuffer map[string]IbufferStatus `json:"ibuffer,omitempty"`
	// Restart is the crash-safe state layer's snapshot/restore accounting;
	// absent when the control node runs without a -state-file.
	Restart *state.RestartStatus `json:"restart,omitempty"`
}

// CollectStatus assembles a StatusReport from a live engine (or, inside a
// module Run, from its RunContext).
func CollectStatus(v EngineView, now time.Time) StatusReport {
	rep := StatusReport{Time: now, Healthy: true}
	if rr, ok := v.(RestartReporter); ok {
		if rs, ok := rr.RestartStatus(); ok {
			rep.Restart = &rs
		}
	}
	rep.Instances = v.SupervisorSnapshots()
	for _, ih := range rep.Instances {
		if ih.State != core.SupervisorHealthy || ih.Wedged {
			rep.Healthy = false
		}
	}
	for _, id := range v.Instances() {
		mod, ok := v.ModuleOf(id)
		if !ok {
			continue
		}
		if br, ok := mod.(BreakerReporter); ok {
			if hs := br.ClientHealths(); len(hs) > 0 {
				if rep.Breakers == nil {
					rep.Breakers = make(map[string]map[string]rpc.Health)
				}
				rep.Breakers[id] = hs
				for _, h := range hs {
					if h.State == rpc.BreakerOpen {
						rep.Healthy = false
					}
				}
			}
		}
		if shr, ok := mod.(ShardReporter); ok {
			if sts := shr.ShardStatuses(); len(sts) > 0 {
				if rep.Shards == nil {
					rep.Shards = make(map[string][]ShardStatus)
				}
				rep.Shards[id] = sts
			}
		}
		if lr, ok := mod.(LeaderReporter); ok {
			if lss := lr.LeaderStatuses(); len(lss) > 0 {
				if rep.Leaders == nil {
					rep.Leaders = make(map[string][]LeaderStatus)
				}
				rep.Leaders[id] = lss
			}
		}
		if dr, ok := mod.(DropReporter); ok {
			if rep.Ibuffer == nil {
				rep.Ibuffer = make(map[string]IbufferStatus)
			}
			rep.Ibuffer[id] = dr.IbufferStatus()
		}
		if sr, ok := mod.(SyncReporter); ok {
			if rep.Sync == nil {
				rep.Sync = make(map[string]SyncStatus)
			}
			rep.Sync[id] = SyncStatus{
				Partial:       sr.PartialTimestamps(),
				Dropped:       sr.DroppedTimestamps(),
				MissingByNode: sr.MissingByNode(),
			}
		}
	}
	return rep
}

// RegisterStatusServer exposes the engine's status over the native RPC
// protocol as MethodStatus (no parameters; returns a StatusReport). clock
// defaults to time.Now.
func RegisterStatusServer(srv *rpc.Server, view EngineView, clock func() time.Time) {
	if clock == nil {
		clock = time.Now
	}
	srv.Handle(MethodStatus, func(json.RawMessage) (any, error) {
		return CollectStatus(view, clock()), nil
	})
}

// ListenStatus starts a status RPC server on addr (e.g. "127.0.0.1:0") and
// returns it with its bound address. Close the server to stop.
func ListenStatus(addr string, view EngineView, clock func() time.Time) (*rpc.Server, net.Addr, error) {
	srv := rpc.NewServer(ServiceStatus)
	RegisterStatusServer(srv, view, clock)
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, nil, err
	}
	return srv, bound, nil
}
