package modules

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/hadoopsim"
)

// alarmSource is a test module emitting a scripted alarm stream.
type alarmSource struct {
	mu     sync.Mutex
	script []float64
	node   string
	out    *core.OutputPort
}

func (m *alarmSource) Init(ctx *core.InitContext) error {
	m.node = ctx.Config().StringParam("node", "n")
	var err error
	m.out, err = ctx.NewOutput("alarm0", core.Origin{Node: m.node, Source: "test"})
	if err != nil {
		return err
	}
	return ctx.SchedulePeriodic(time.Second)
}

func (m *alarmSource) Run(ctx *core.RunContext) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.script) == 0 {
		return nil
	}
	m.out.Publish(core.NewScalar(ctx.Now, m.script[0]))
	m.script = m.script[1:]
	return nil
}

func TestActionModuleConfidenceRule(t *testing.T) {
	env := NewEnv()
	var mu sync.Mutex
	var invoked []string
	env.Actions["blacklist"] = func(node string) error {
		mu.Lock()
		defer mu.Unlock()
		invoked = append(invoked, node)
		return nil
	}
	reg := NewRegistry(env)
	reg.Register("alarmsource", func() core.Module {
		return &alarmSource{script: []float64{0, 1, 1, 0, 1, 1, 1, 1, 0}}
	})
	cfg, err := config.ParseString(`
[alarmsource]
id = src
node = slaveX

[action]
id = act
action = blacklist
consecutive = 3
cooldown = 1h
input[a] = @src
`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 9; i++ {
		if err := e.Tick(base.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	// Streak of 2 does not fire; the streak of 4 fires exactly once at the
	// 3rd consecutive alarm (cooldown suppresses the 4th).
	mu.Lock()
	defer mu.Unlock()
	if len(invoked) != 1 || invoked[0] != "slaveX" {
		t.Errorf("invocations = %v, want exactly [slaveX]", invoked)
	}
	mod, _ := e.ModuleOf("act")
	if got := mod.(*actionModule).Fired(); got != 1 {
		t.Errorf("Fired = %d, want 1", got)
	}
	out := e.OutputPortsOf("act")[0]
	if out.Published() != 1 {
		t.Errorf("action output published %d", out.Published())
	}
}

func TestActionModuleCooldownExpires(t *testing.T) {
	env := NewEnv()
	var count int
	env.Actions["noop"] = func(string) error { count++; return nil }
	reg := NewRegistry(env)
	reg.Register("alarmsource", func() core.Module {
		return &alarmSource{script: []float64{1, 1, 1, 1, 1, 1, 1, 1}}
	})
	cfg, err := config.ParseString(`
[alarmsource]
id = src

[action]
id = act
action = noop
consecutive = 2
cooldown = 3s
input[a] = @src
`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 8; i++ {
		if err := e.Tick(base.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	// Fires at t=1 (2nd consecutive), then again once each 3s cooldown
	// expires: t=4, t=7.
	if count != 3 {
		t.Errorf("action fired %d times, want 3", count)
	}
}

func TestActionModuleConfigErrors(t *testing.T) {
	env := NewEnv()
	env.Actions["known"] = func(string) error { return nil }
	reg := NewRegistry(env)
	reg.Register("alarmsource", func() core.Module { return &alarmSource{} })
	for _, cfgText := range []string{
		"[action]\nid=a\ninput[x]=src.alarm0\n",                              // missing action
		"[action]\nid=a\naction=ghost\ninput[x]=src.alarm0\n",                // unknown action
		"[action]\nid=a\naction=known\nconsecutive=0\ninput[x]=src.alarm0\n", // bad consecutive
		"[action]\nid=a\naction=known\n",                                     // no inputs
	} {
		cfg, err := config.ParseString("[alarmsource]\nid=src\n\n" + cfgText)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.NewEngine(reg, cfg); err == nil {
			t.Errorf("config %q should fail", cfgText)
		}
	}
}

// TestMitigationEndToEnd closes the loop the paper's §5 sketches: ASDF
// fingerpoints a hung-map node via the white-box pipeline and the action
// module blacklists it at the jobtracker, after which the culprit receives
// no further tasks.
func TestMitigationEndToEnd(t *testing.T) {
	const slaves = 6
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, 404))
	if err != nil {
		t.Fatal(err)
	}
	env := simEnv(c)
	var blacklistedAt time.Time
	env.Actions["blacklist"] = func(node string) error {
		if blacklistedAt.IsZero() {
			blacklistedAt = c.Now()
		}
		return c.BlacklistByName(node)
	}

	names := make([]string, slaves)
	for i, n := range c.Slaves() {
		names[i] = n.Name
	}
	var b strings.Builder
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl\nkind = tasktracker\nnodes = %s\nperiod = 1\n\n",
		strings.Join(names, ","))
	b.WriteString("[analysis_wb]\nid = wb\nk = 3\nwindow = 60\nslide = 15\n")
	for i, n := range names {
		fmt.Fprintf(&b, "input[s%d] = hl.%s\n", i, n)
	}
	b.WriteString("\n[action]\nid = mitigate\naction = blacklist\nconsecutive = 3\ninput[a] = @wb\n")
	b.WriteString("\n[csv]\nid = sink\npath = " + filepath.Join(t.TempDir(), "a.csv") + "\ninput[x] = @mitigate\n")

	e := mustEngine(t, env, b.String())

	step := func(seconds int) {
		for i := 0; i < seconds; i++ {
			c.Tick()
			if err := e.Tick(c.Now()); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(180)
	const culprit = 4
	if err := c.InjectFault(culprit, hadoopsim.FaultHang1036); err != nil {
		t.Fatal(err)
	}
	step(600)

	if !c.Blacklisted(culprit) {
		t.Fatal("culprit was never blacklisted")
	}
	for i := range names {
		if i != culprit && c.Blacklisted(i) {
			t.Errorf("healthy node %d blacklisted", i)
		}
	}
	// After blacklisting, the culprit receives no new tasks.
	launches := countLaunchesSince(t, c, culprit, blacklistedAt)
	if launches > 0 {
		t.Errorf("culprit received %d launches after blacklisting", launches)
	}
	// The cluster keeps completing work without the culprit.
	before := c.TasksCompleted()
	step(120)
	if c.TasksCompleted() <= before {
		t.Error("cluster stalled after mitigation")
	}
}

// countLaunchesSince counts LaunchTaskAction lines on the culprit whose log
// timestamp is after the given moment.
func countLaunchesSince(t *testing.T, c *hadoopsim.Cluster, culprit int, since time.Time) int {
	t.Helper()
	if since.IsZero() {
		t.Fatal("blacklist action never ran")
	}
	lines, _ := c.Slave(culprit).TaskTrackerLog().ReadFrom(0)
	const layout = "2006-01-02 15:04:05,000"
	count := 0
	for _, l := range lines {
		if !strings.Contains(l, "LaunchTaskAction") || len(l) < len(layout) {
			continue
		}
		ts, err := time.Parse(layout, l[:len(layout)])
		if err != nil {
			continue
		}
		if ts.After(since) {
			count++
		}
	}
	return count
}

var _ = hadooplog.KindTaskTracker
