package modules

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hierarchy"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/sadc"
)

// BenchmarkCollectionHier measures per-tick collection latency of the
// hierarchical plane: one root delegating the whole fleet to eight shard
// leaders (in-process Leaders behind real loopback RPC servers, columnar
// root hop) versus the single-process sweep, with every simulated daemon a
// fixed 500µs round trip away. Leaders sweep their ranges concurrently and
// the root fetches all partials concurrently, so per-tick latency drops
// toward nodes/(leaders×fanout) round trips. The mode=... suffix is
// stripped by the CI benchstat step to produce the single-vs-hier
// comparison.
func BenchmarkCollectionHier(b *testing.B) {
	const rpcLatency = 500 * time.Microsecond
	const leaders = 8
	for _, nodes := range []int{128, 512, 1024} {
		for _, mode := range []string{"single", "hier"} {
			b.Run(fmt.Sprintf("nodes=%d/mode=%s", nodes, mode), func(b *testing.B) {
				names := make([]string, nodes)
				fakeAddrs := make([]string, nodes)
				for i := range names {
					names[i] = fmt.Sprintf("n%04d", i)
					fakeAddrs[i] = fmt.Sprintf("10.0.0.%d:9999", i)
				}
				dial := func(addr, client string) (rpc.Caller, error) {
					return &delayedSadcCaller{
						delay: rpcLatency,
						rec:   sadc.Record{Node: make([]float64, 64)},
					}, nil
				}
				env := NewEnv()
				var cfgText string
				if mode == "single" {
					env.Dial = dial
					cfgText = fmt.Sprintf(
						"[sadc]\nid = collect\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1s\n",
						strings.Join(names, ","), strings.Join(fakeAddrs, ","))
				} else {
					// The root's env keeps the real dialer so the leader hop
					// crosses an actual loopback connection; only the
					// leader→daemon edge is faked.
					per := nodes / leaders
					leaderAddrs := make([]string, leaders)
					ranges := make([]string, leaders)
					for li := 0; li < leaders; li++ {
						lo, hi := li*per, (li+1)*per
						lenv := NewEnv()
						lenv.Dial = dial
						ldr, err := NewLeader(lenv, LeaderOptions{
							Name:      fmt.Sprintf("leader%d", li),
							Nodes:     names[lo:hi],
							SadcAddrs: fakeAddrs[lo:hi],
							Fanout:    16,
						})
						if err != nil {
							b.Fatal(err)
						}
						srv := rpc.NewServer(hierarchy.ServiceLeader)
						ldr.Register(srv)
						a, err := srv.Listen("127.0.0.1:0")
						if err != nil {
							b.Fatal(err)
						}
						b.Cleanup(func() { _ = srv.Close() })
						leaderAddrs[li] = a.String()
						ranges[li] = fmt.Sprintf("%d-%d", lo, hi)
					}
					dashes := make([]string, nodes)
					for i := range dashes {
						dashes[i] = "-"
					}
					cfgText = fmt.Sprintf(
						"[sadc]\nid = collect\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1s\nwire = columnar\nleaders = %s\nleader_ranges = %s\n",
						strings.Join(names, ","), strings.Join(dashes, ","),
						strings.Join(leaderAddrs, ","), strings.Join(ranges, ","))
				}
				file, err := config.ParseString(cfgText)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := core.NewEngine(NewRegistry(env), file)
				if err != nil {
					b.Fatal(err)
				}
				start := time.Unix(1_700_000_000, 0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.Tick(start.Add(time.Duration(i+1) * time.Second)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
