package state

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/rpc"
)

func t0() time.Time { return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC) }

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		SavedAt:  t0(),
		Restarts: 2,
		Supervisors: []core.InstanceHealth{
			{ID: "hl", State: core.SupervisorQuarantined, TotalFailures: 4, Errors: 4,
				ConsecutiveFailures: 4, Quarantines: 1, ReopenAt: t0().Add(30 * time.Second)},
			{ID: "sink", State: core.SupervisorHealthy},
		},
		Breakers: map[string]rpc.BreakerSnapshot{
			"127.0.0.1:9001": {Addr: "127.0.0.1:9001", State: rpc.BreakerOpen,
				ConsecutiveFailures: 5, TotalFailures: 12, LastError: "connection refused"},
			"127.0.0.1:9002": {Addr: "127.0.0.1:9002", State: rpc.BreakerClosed, Reconnects: 1},
		},
		Watermarks: map[string]time.Time{"hl": t0().Add(14 * time.Second)},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "asdf.state")
	want := sampleSnapshot()
	size, err := Save(path, want)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != size {
		t.Fatalf("reported size %d, stat %v %v", size, fi, err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Restarts != 2 || !got.SavedAt.Equal(want.SavedAt) {
		t.Errorf("header fields: %+v", got)
	}
	if len(got.Supervisors) != 2 || got.Supervisors[0].ID != "hl" ||
		got.Supervisors[0].State != core.SupervisorQuarantined ||
		!got.Supervisors[0].ReopenAt.Equal(want.Supervisors[0].ReopenAt) {
		t.Errorf("supervisors did not round-trip: %+v", got.Supervisors)
	}
	b := got.Breakers["127.0.0.1:9001"]
	if b.State != rpc.BreakerOpen || b.TotalFailures != 12 || b.LastError != "connection refused" {
		t.Errorf("breakers did not round-trip: %+v", b)
	}
	if !got.Watermarks["hl"].Equal(want.Watermarks["hl"]) {
		t.Errorf("watermarks did not round-trip: %+v", got.Watermarks)
	}
	// No stray tmp file.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("tmp file left behind: %v", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.state"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	if IsCorrupt(err) {
		t.Fatal("a missing file is not corrupt")
	}
}

func TestLoadBitFlipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "asdf.state")
	if _, err := Save(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the JSON payload.
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if !IsCorrupt(err) {
		t.Fatalf("bit-flipped snapshot loaded: %v", err)
	}
}

func TestLoadTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "asdf.state")
	if _, err := Save(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{len(raw) - 7, len(raw) / 2, 5} {
		if err := os.WriteFile(path, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); !IsCorrupt(err) {
			t.Errorf("truncated-to-%d snapshot loaded: %v", keep, err)
		}
	}
}

func TestLoadBadHeaderAndVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "asdf.state")
	for name, content := range map[string]string{
		"garbage":        "not a state file at all\n{}",
		"wrong-magic":    "WRONGMAGIC v1 crc=00000000 len=2\n{}",
		"future-version": "ASDFSTATE v99 crc=00000000 len=2\n{}",
		"no-newline":     "ASDFSTATE v1",
	} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); !IsCorrupt(err) {
			t.Errorf("%s: want CorruptError, got %v", name, err)
		}
	}
}

func TestQuarantineCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "asdf.state")
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	aside, err := QuarantineCorrupt(path)
	if err != nil {
		t.Fatal(err)
	}
	if aside != path+".corrupt" {
		t.Errorf("aside = %q", aside)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("original path still present")
	}
	if raw, err := os.ReadFile(aside); err != nil || string(raw) != "junk" {
		t.Errorf("quarantined evidence = %q, %v", raw, err)
	}
}
