// Package state is the control node's crash-safe state layer. It persists a
// versioned, checksummed snapshot of the runtime state that must survive a
// restart — per-instance supervisor state (failure budgets and quarantine
// deadlines), per-addr circuit-breaker state from the collection plane, and
// the per-collector replay watermark — and restores it on boot so a rolling
// restart neither resets quarantine/breaker history nor re-probes every
// known-dead node at once.
//
// The file format is one ASCII header line followed by a JSON payload:
//
//	ASDFSTATE v1 crc=<crc32-ieee hex> len=<payload bytes>\n
//	{ ... }
//
// Writes are atomic (tmp + rename, same discipline as the bench reports); a
// snapshot that fails its checksum or decode on load is quarantined aside as
// <path>.corrupt and the node boots fresh instead of crashing.
package state

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/rpc"
)

// magic identifies a state file; the version suffix gates decoding.
const magic = "ASDFSTATE"

// Version is the current snapshot format version.
const Version = 1

// Snapshot is the persisted control-node state.
type Snapshot struct {
	// SavedAt is the (engine) clock time of the write.
	SavedAt time.Time `json:"saved_at"`
	// Restarts counts restores across the file's lineage: 0 for a process
	// that booted fresh, incremented each time a snapshot is loaded.
	Restarts uint64 `json:"restarts"`
	// Supervisors is every instance's supervisor snapshot.
	Supervisors []core.InstanceHealth `json:"supervisors,omitempty"`
	// Breakers is the per-addr circuit-breaker state of the collection
	// plane.
	Breakers map[string]rpc.BreakerSnapshot `json:"breakers,omitempty"`
	// Watermarks is the per-collector replay guard: the newest timestamp
	// each collector instance has published. After a restart the collector
	// refuses to re-publish ticks at or before its watermark.
	Watermarks map[string]time.Time `json:"watermarks,omitempty"`
}

// CorruptError reports a state file that exists but cannot be trusted: bad
// header, checksum mismatch, truncation, or a JSON decode failure.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("state: corrupt snapshot %s: %s", e.Path, e.Reason)
}

// Save writes the snapshot to path atomically: marshal, checksum, write to
// path.tmp, fsync, rename. It returns the total file size written.
func Save(path string, snap *Snapshot) (int64, error) {
	payload, err := json.Marshal(snap)
	if err != nil {
		return 0, fmt.Errorf("state: encode snapshot: %w", err)
	}
	header := fmt.Sprintf("%s v%d crc=%08x len=%d\n",
		magic, Version, crc32.ChecksumIEEE(payload), len(payload))
	buf := make([]byte, 0, len(header)+len(payload))
	buf = append(buf, header...)
	buf = append(buf, payload...)

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("state: write snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return 0, fmt.Errorf("state: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return 0, fmt.Errorf("state: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return 0, fmt.Errorf("state: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return 0, fmt.Errorf("state: publish snapshot: %w", err)
	}
	return int64(len(buf)), nil
}

// Load reads and verifies the snapshot at path. A missing file returns
// (nil, fs.ErrNotExist-wrapping error); any malformed content returns a
// *CorruptError so the caller can quarantine the file aside and boot fresh.
func Load(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, &CorruptError{Path: path, Reason: "missing header line"}
	}
	header, payload := string(raw[:nl]), raw[nl+1:]
	var version int
	var sum uint32
	var length int
	if _, err := fmt.Sscanf(header, magic+" v%d crc=%x len=%d", &version, &sum, &length); err != nil {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("bad header %q", header)}
	}
	if version != Version {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unsupported version %d", version)}
	}
	if len(payload) != length {
		return nil, &CorruptError{Path: path,
			Reason: fmt.Sprintf("truncated payload: %d bytes, header says %d", len(payload), length)}
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, &CorruptError{Path: path,
			Reason: fmt.Sprintf("checksum mismatch: payload %08x, header %08x", got, sum)}
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("decode: %v", err)}
	}
	return &snap, nil
}

// QuarantineCorrupt moves a corrupt state file aside as <path>.corrupt
// (overwriting a previous quarantined file) so the next boot starts fresh
// while the evidence survives for inspection. It returns the quarantine
// path.
func QuarantineCorrupt(path string) (string, error) {
	aside := path + ".corrupt"
	if err := os.Rename(path, aside); err != nil {
		return "", fmt.Errorf("state: quarantine corrupt snapshot: %w", err)
	}
	return aside, nil
}

// IsCorrupt reports whether err marks an untrustworthy (rather than merely
// absent) state file.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// ensureDir creates the parent directory of path if needed.
func ensureDir(path string) error {
	dir := filepath.Dir(path)
	if dir == "" || dir == "." {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}
