package state

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// fakeCollector is a module carrying breaker and watermark state, standing
// in for the rpc-mode collectors.
type fakeCollector struct {
	breakers  map[string]rpc.BreakerSnapshot
	watermark time.Time

	importedSnaps map[string]rpc.BreakerSnapshot
	probeTimes    []time.Time
	restoredWm    time.Time
}

func (m *fakeCollector) Init(*core.InitContext) error { return nil }
func (m *fakeCollector) Run(*core.RunContext) error   { return nil }

func (m *fakeCollector) ExportBreakerSnapshots() map[string]rpc.BreakerSnapshot {
	return m.breakers
}

func (m *fakeCollector) ImportBreakerSnapshots(snaps map[string]rpc.BreakerSnapshot, plan *rpc.ProbePlanner) int {
	m.importedSnaps = snaps
	n := 0
	for _, s := range snaps {
		if s.State != rpc.BreakerClosed {
			m.probeTimes = append(m.probeTimes, plan.Next())
		}
		n++
	}
	return n
}

func (m *fakeCollector) ReplayWatermark() (time.Time, bool) {
	return m.watermark, !m.watermark.IsZero()
}

func (m *fakeCollector) RestoreReplayWatermark(t time.Time) { m.restoredWm = t }

// fakeEngine satisfies the Engine interface without a real DAG.
type fakeEngine struct {
	ids      []string
	mods     map[string]core.Module
	sups     []core.InstanceHealth
	restored []core.InstanceHealth
}

func (e *fakeEngine) Instances() []string { return e.ids }
func (e *fakeEngine) ModuleOf(id string) (core.Module, bool) {
	m, ok := e.mods[id]
	return m, ok
}
func (e *fakeEngine) SupervisorSnapshots() []core.InstanceHealth { return e.sups }
func (e *fakeEngine) RestoreSupervisors(s []core.InstanceHealth) int {
	e.restored = s
	return len(s)
}

func newFakeEngine() (*fakeEngine, *fakeCollector) {
	col := &fakeCollector{
		breakers: map[string]rpc.BreakerSnapshot{
			"127.0.0.1:9001": {Addr: "127.0.0.1:9001", State: rpc.BreakerOpen, TotalFailures: 8},
			"127.0.0.1:9002": {Addr: "127.0.0.1:9002", State: rpc.BreakerClosed},
		},
		watermark: t0().Add(14 * time.Second),
	}
	eng := &fakeEngine{
		ids:  []string{"hl", "sink"},
		mods: map[string]core.Module{"hl": col, "sink": &fakeCollector{}},
		sups: []core.InstanceHealth{
			{ID: "hl", State: core.SupervisorQuarantined, ReopenAt: t0().Add(30 * time.Second)},
			{ID: "sink"},
		},
	}
	return eng, col
}

func TestManagerSnapshotRestoreCycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "asdf.state")
	clock := t0()

	// First life: fresh boot, one snapshot, graceful close.
	eng1, _ := newFakeEngine()
	mgr1, err := Open(eng1, Options{Path: path, Clock: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	st := mgr1.Status()
	if st.Restarts != 0 || st.RestoredSupervisors != 0 {
		t.Fatalf("fresh boot status = %+v", st)
	}
	if w, ok := st.ReplayWatermarks["hl"]; !ok || !w.Equal(t0().Add(14*time.Second)) {
		t.Fatalf("live watermark missing from status: %+v", st.ReplayWatermarks)
	}
	if err := mgr1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".lock"); !os.IsNotExist(err) {
		t.Fatal("lock not released by Close")
	}

	// Second life: restore.
	eng2, col2 := newFakeEngine()
	col2.watermark = time.Time{} // fresh collector: watermark comes from the snapshot
	mgr2, err := Open(eng2, Options{Path: path, Clock: func() time.Time { return clock },
		ProbeBudget: 1, ProbeInterval: time.Second, Rand: func() float64 { return 0.5 }})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr2.Close() }()
	st = mgr2.Status()
	if st.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", st.Restarts)
	}
	if st.RestoredSupervisors != 2 || len(eng2.restored) != 2 {
		t.Errorf("restored supervisors = %d (%d records), want 2", st.RestoredSupervisors, len(eng2.restored))
	}
	if eng2.restored[0].ID != "hl" || !eng2.restored[0].ReopenAt.Equal(t0().Add(30*time.Second)) {
		t.Errorf("supervisor record mangled: %+v", eng2.restored[0])
	}
	// Both collector modules implement BreakerImporter; each sees the full
	// per-addr map (2 addrs each, matched by address inside the module).
	if st.RestoredBreakers != 4 || len(col2.importedSnaps) != 2 {
		t.Errorf("restored breakers = %d, imported map %d addrs", st.RestoredBreakers, len(col2.importedSnaps))
	}
	if got := col2.importedSnaps["127.0.0.1:9001"]; got.State != rpc.BreakerOpen || got.TotalFailures != 8 {
		t.Errorf("imported breaker mangled: %+v", got)
	}
	if len(col2.probeTimes) != 1 || col2.probeTimes[0].Before(clock) {
		t.Errorf("open breaker probe not planned: %v", col2.probeTimes)
	}
	if st.RestoredWatermarks != 1 || !col2.restoredWm.Equal(t0().Add(14*time.Second)) {
		t.Errorf("watermark not restored: %d, %v", st.RestoredWatermarks, col2.restoredWm)
	}

	// Third life after mgr2's close: restarts counts the lineage.
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}
	eng3, _ := newFakeEngine()
	mgr3, err := Open(eng3, Options{Path: path, Clock: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr3.Close() }()
	if got := mgr3.Status().Restarts; got != 2 {
		t.Errorf("third-life restarts = %d, want 2", got)
	}
}

func TestManagerQuarantinesCorruptSnapshotAndBootsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "asdf.state")
	if err := os.WriteFile(path, []byte("ASDFSTATE v1 crc=deadbeef len=2\n{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	eng, _ := newFakeEngine()
	mgr, err := Open(eng, Options{Path: path, Clock: func() time.Time { return t0() },
		Logf: func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) }})
	if err != nil {
		t.Fatalf("corrupt snapshot must not block boot: %v", err)
	}
	defer func() { _ = mgr.Close() }()
	st := mgr.Status()
	if !st.SnapshotQuarantined || st.Restarts != 0 {
		t.Errorf("status = %+v, want quarantined fresh boot", st)
	}
	if len(eng.restored) != 0 {
		t.Error("corrupt snapshot must not restore anything")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt file not quarantined aside: %v", err)
	}
	if len(logged) == 0 || !strings.Contains(strings.Join(logged, "\n"), ".corrupt") {
		t.Errorf("quarantine not logged: %v", logged)
	}
}

func TestManagerRefusesLockHeldByLivePID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "asdf.state")
	// This test process is the live owner.
	if err := os.WriteFile(path+".lock", []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, _ := newFakeEngine()
	_, err := Open(eng, Options{Path: path})
	if err == nil {
		t.Fatal("Open must refuse a lock held by a live process")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("pid %d", os.Getpid())) {
		t.Errorf("error does not name the owning PID: %v", err)
	}
}

func TestManagerReclaimsStaleLock(t *testing.T) {
	// A just-reaped child is a real dead PID.
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot spawn child: %v", err)
	}
	deadPID := cmd.Process.Pid
	if pidAlive(deadPID) {
		t.Skipf("pid %d unexpectedly alive (reused)", deadPID)
	}

	path := filepath.Join(t.TempDir(), "asdf.state")
	if err := os.WriteFile(path+".lock", []byte(fmt.Sprintf("%d\n", deadPID)), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	eng, _ := newFakeEngine()
	mgr, err := Open(eng, Options{Path: path,
		Logf: func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) }})
	if err != nil {
		t.Fatalf("stale lock must be reclaimed: %v", err)
	}
	defer func() { _ = mgr.Close() }()
	if !mgr.Status().LockReclaimed {
		t.Error("LockReclaimed not reported")
	}
	joined := strings.Join(logged, "\n")
	if !strings.Contains(joined, "stale lock") || !strings.Contains(joined, fmt.Sprint(deadPID)) {
		t.Errorf("reclaim warning missing or anonymous: %v", logged)
	}
}

func TestManagerMetricsMatchStatus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "asdf.state")
	clock := t0()

	// Seed a snapshot so the second life has restore counts.
	eng1, _ := newFakeEngine()
	mgr1, err := Open(eng1, Options{Path: path, Clock: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	eng2, _ := newFakeEngine()
	mgr2, err := Open(eng2, Options{Path: path, Clock: func() time.Time { return clock }, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr2.Close() }()
	if err := mgr2.SnapshotNow(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	scraped, err := telemetry.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	st := mgr2.Status()
	for name, want := range map[string]float64{
		"asdf_state_restarts":                   float64(st.Restarts),
		"asdf_state_snapshots_written_total":    float64(st.SnapshotsWritten),
		"asdf_state_snapshot_bytes":             float64(st.SnapshotBytes),
		"asdf_state_last_snapshot_unix_seconds": float64(st.LastSnapshotAt.Unix()),
		"asdf_state_restored_supervisors":       float64(st.RestoredSupervisors),
		"asdf_state_restored_breakers":          float64(st.RestoredBreakers),
		"asdf_state_restored_watermarks":        float64(st.RestoredWatermarks),
	} {
		got, ok := scraped[name]
		if !ok {
			t.Errorf("metric %s not exposed", name)
			continue
		}
		if got != want {
			t.Errorf("metric %s = %v, status says %v", name, got, want)
		}
	}
}
