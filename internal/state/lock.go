package state

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// fileLock is a PID-based advisory lock guarding one state file: two control
// nodes sharing a -state-file would corrupt each other's snapshots and
// double-restore breaker probes, so the second refuses to start.
type fileLock struct {
	path string
}

// acquireLock takes the lock at lockPath for this process. A lock held by a
// live PID is an error naming that PID; a lock left behind by a dead PID
// (a crashed control node — the normal kill -9 case) is reclaimed with a
// warning through logf. reclaimed reports whether a stale lock was taken
// over.
func acquireLock(lockPath string, logf func(format string, args ...any)) (lk *fileLock, reclaimed bool, err error) {
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(lockPath, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			_, werr := fmt.Fprintf(f, "%d\n", os.Getpid())
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				_ = os.Remove(lockPath)
				return nil, reclaimed, fmt.Errorf("state: write lock %s: %w", lockPath, werr)
			}
			return &fileLock{path: lockPath}, reclaimed, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, reclaimed, fmt.Errorf("state: create lock %s: %w", lockPath, err)
		}
		// The lock exists: live owner → refuse; dead owner → reclaim.
		raw, rerr := os.ReadFile(lockPath)
		if rerr != nil {
			if errors.Is(rerr, os.ErrNotExist) {
				continue // released between our create and read; retry
			}
			return nil, reclaimed, fmt.Errorf("state: read lock %s: %w", lockPath, rerr)
		}
		pid, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr == nil && pidAlive(pid) {
			return nil, reclaimed, fmt.Errorf(
				"state: %s is locked by running process (pid %d); refusing to start a second control node on the same state file",
				lockPath, pid)
		}
		if perr == nil {
			logf("state: reclaiming stale lock %s (pid %d is dead)", lockPath, pid)
		} else {
			logf("state: reclaiming malformed lock %s (%q)", lockPath, strings.TrimSpace(string(raw)))
		}
		reclaimed = true
		if rmerr := os.Remove(lockPath); rmerr != nil && !errors.Is(rmerr, os.ErrNotExist) {
			return nil, reclaimed, fmt.Errorf("state: reclaim lock %s: %w", lockPath, rmerr)
		}
	}
	return nil, reclaimed, fmt.Errorf("state: could not acquire lock %s after repeated contention", lockPath)
}

// release removes the lock file. Safe to call more than once.
func (l *fileLock) release() error {
	if l == nil {
		return nil
	}
	err := os.Remove(l.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// pidAlive reports whether pid names a live process. Signal 0 probes
// existence without delivering anything; EPERM still proves the process
// exists.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}
