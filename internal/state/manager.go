package state

import (
	"context"
	"errors"
	"os"
	"sync"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// Engine is the slice of the fpt-core engine the state layer needs:
// enumerate instances, reach their module implementations, and snapshot or
// restore supervisor state. *core.Engine satisfies it.
type Engine interface {
	Instances() []string
	ModuleOf(id string) (core.Module, bool)
	SupervisorSnapshots() []core.InstanceHealth
	RestoreSupervisors([]core.InstanceHealth) int
}

// BreakerExporter is implemented by modules (the rpc-mode collectors) whose
// managed connections carry circuit-breaker state worth persisting, keyed by
// daemon address.
type BreakerExporter interface {
	ExportBreakerSnapshots() map[string]rpc.BreakerSnapshot
}

// BreakerImporter restores persisted breaker snapshots into a module's
// managed connections. Snapshots are matched by address; restored-open
// breakers draw their staggered half-open probe time from plan. It returns
// how many connections accepted state.
type BreakerImporter interface {
	ImportBreakerSnapshots(snaps map[string]rpc.BreakerSnapshot, plan *rpc.ProbePlanner) int
}

// ReplayGuard is implemented by collector modules that publish
// monotonically timestamped output: the watermark is the newest published
// timestamp, and after RestoreReplayWatermark the module refuses to
// re-publish ticks at or before it, keeping sink output across a restart
// free of duplicates.
type ReplayGuard interface {
	ReplayWatermark() (time.Time, bool)
	RestoreReplayWatermark(time.Time)
}

// RestartStatus is the operator-facing view of the state layer, carried on
// the /status report and rendered by asdf-status as the RESTART line. Every
// numeric field is mirrored by an asdf_state_* metric registered at Open,
// moved at the same points, so /metrics and /status agree.
type RestartStatus struct {
	Path string `json:"path"`
	// Restarts counts restores across the state file's lineage (0 = this
	// process booted fresh).
	Restarts uint64 `json:"restarts"`
	// SnapshotsWritten and WriteErrors count this process's snapshot
	// attempts.
	SnapshotsWritten uint64 `json:"snapshots_written"`
	WriteErrors      uint64 `json:"write_errors,omitempty"`
	// SnapshotBytes is the size of the newest snapshot file.
	SnapshotBytes uint64 `json:"snapshot_bytes,omitempty"`
	// LastSnapshotAt is the engine-clock time of the newest snapshot.
	LastSnapshotAt time.Time `json:"last_snapshot_at,omitempty"`
	// Restored* count what the boot-time restore matched.
	RestoredSupervisors uint64 `json:"restored_supervisors,omitempty"`
	RestoredBreakers    uint64 `json:"restored_breakers,omitempty"`
	RestoredWatermarks  uint64 `json:"restored_watermarks,omitempty"`
	// ReplayWatermarks is the live per-collector replay watermark.
	ReplayWatermarks map[string]time.Time `json:"replay_watermarks,omitempty"`
	// LockReclaimed reports that boot reclaimed a dead process's lock.
	LockReclaimed bool `json:"lock_reclaimed,omitempty"`
	// SnapshotQuarantined reports that boot found a corrupt snapshot and
	// moved it aside as .corrupt.
	SnapshotQuarantined bool `json:"snapshot_quarantined,omitempty"`
}

// Options tunes a Manager. Zero values select the documented defaults.
type Options struct {
	// Path is the state file (required).
	Path string
	// Interval between periodic snapshots (default 5s).
	Interval time.Duration
	// Clock supplies "now" for snapshot timestamps and the probe planner
	// base; defaults to time.Now. The eval harness injects virtual time.
	Clock func() time.Time
	// Logf receives boot-time warnings (stale lock reclaimed, corrupt
	// snapshot quarantined) and snapshot write errors; defaults to discard.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, registers the asdf_state_* series.
	Metrics *telemetry.Registry
	// ProbeBudget is the maximum restored-open breakers probed per
	// ProbeInterval after a restart (default 4).
	ProbeBudget int
	// ProbeInterval is the stagger window for restored breaker re-probes
	// (default 2s).
	ProbeInterval time.Duration
	// Rand supplies probe jitter in [0,1); defaults to math/rand.
	Rand func() float64
}

// Manager owns one state file: it locks it, restores the engine from it on
// Open, and rewrites it on a timer (Run) or on demand (SnapshotNow). Never
// call SnapshotNow from inside the engine's wavefront — the whole point of
// the timer is to keep serialization off the hot tick path.
type Manager struct {
	eng  Engine
	opt  Options
	lock *fileLock

	mu     sync.Mutex
	closed bool
	status RestartStatus

	mRestarts      *telemetry.Gauge
	mSnapshots     *telemetry.Counter
	mWriteErrors   *telemetry.Counter
	mSnapshotBytes *telemetry.Gauge
	mLastSnapshot  *telemetry.Gauge
	mRestoredSup   *telemetry.Gauge
	mRestoredBrk   *telemetry.Gauge
	mRestoredWm    *telemetry.Gauge
}

// Open locks opts.Path, loads and restores any prior snapshot into eng, and
// returns the manager. A snapshot held by a live process is a hard error; a
// corrupt snapshot is quarantined aside and the node boots fresh. Open must
// run before the engine's first dispatch: restoring supervisors or breakers
// into a running engine races with the wavefront.
func Open(eng Engine, opts Options) (*Manager, error) {
	if opts.Path == "" {
		return nil, errors.New("state: Options.Path is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if err := ensureDir(opts.Path); err != nil {
		return nil, err
	}
	lock, reclaimed, err := acquireLock(opts.Path+".lock", opts.Logf)
	if err != nil {
		return nil, err
	}
	m := &Manager{eng: eng, opt: opts, lock: lock}
	m.status.Path = opts.Path
	m.status.LockReclaimed = reclaimed
	if reg := opts.Metrics; reg != nil {
		m.mRestarts = reg.Gauge("asdf_state_restarts",
			"Restores across the state file's lineage; 0 means this process booted fresh.")
		m.mSnapshots = reg.Counter("asdf_state_snapshots_written_total",
			"State snapshots written by this process (timer and final).")
		m.mWriteErrors = reg.Counter("asdf_state_snapshot_write_errors_total",
			"State snapshot writes that failed.")
		m.mSnapshotBytes = reg.Gauge("asdf_state_snapshot_bytes",
			"Size of the newest state snapshot file.")
		m.mLastSnapshot = reg.Gauge("asdf_state_last_snapshot_unix_seconds",
			"Engine-clock time of the newest state snapshot.")
		m.mRestoredSup = reg.Gauge("asdf_state_restored_supervisors",
			"Instances whose supervisor state was restored at boot.")
		m.mRestoredBrk = reg.Gauge("asdf_state_restored_breakers",
			"Managed connections whose breaker state was restored at boot.")
		m.mRestoredWm = reg.Gauge("asdf_state_restored_watermarks",
			"Collector instances whose replay watermark was restored at boot.")
	}

	snap, err := Load(opts.Path)
	switch {
	case err == nil:
		m.restore(snap)
	case errors.Is(err, os.ErrNotExist):
		// Fresh boot: nothing to restore.
	case IsCorrupt(err):
		aside, qerr := QuarantineCorrupt(opts.Path)
		if qerr != nil {
			_ = lock.release()
			return nil, qerr
		}
		opts.Logf("state: %v; quarantined as %s, booting fresh", err, aside)
		m.status.SnapshotQuarantined = true
	default:
		_ = lock.release()
		return nil, err
	}
	return m, nil
}

// restore pushes the loaded snapshot into the engine: supervisors first,
// then breakers (staggered probes), then replay watermarks.
func (m *Manager) restore(snap *Snapshot) {
	m.status.Restarts = snap.Restarts + 1
	m.mRestarts.Set(float64(m.status.Restarts))
	m.status.RestoredSupervisors = uint64(m.eng.RestoreSupervisors(snap.Supervisors))
	m.mRestoredSup.Set(float64(m.status.RestoredSupervisors))

	plan := rpc.NewProbePlanner(m.opt.Clock(), m.opt.ProbeInterval, m.opt.ProbeBudget, m.opt.Rand)
	for _, id := range m.eng.Instances() {
		mod, ok := m.eng.ModuleOf(id)
		if !ok {
			continue
		}
		if imp, ok := mod.(BreakerImporter); ok && len(snap.Breakers) > 0 {
			m.status.RestoredBreakers += uint64(imp.ImportBreakerSnapshots(snap.Breakers, plan))
		}
		if rg, ok := mod.(ReplayGuard); ok {
			if w, ok := snap.Watermarks[id]; ok && !w.IsZero() {
				rg.RestoreReplayWatermark(w)
				m.status.RestoredWatermarks++
			}
		}
	}
	m.mRestoredBrk.Set(float64(m.status.RestoredBreakers))
	m.mRestoredWm.Set(float64(m.status.RestoredWatermarks))
}

// collect assembles a snapshot from the live engine. Reading module state
// concurrently with the engine is safe: supervisor and breaker snapshots
// take their own locks and replay watermarks are atomic.
func (m *Manager) collect(now time.Time) *Snapshot {
	snap := &Snapshot{
		SavedAt:     now,
		Restarts:    m.status.Restarts,
		Supervisors: m.eng.SupervisorSnapshots(),
		Breakers:    make(map[string]rpc.BreakerSnapshot),
		Watermarks:  make(map[string]time.Time),
	}
	for _, id := range m.eng.Instances() {
		mod, ok := m.eng.ModuleOf(id)
		if !ok {
			continue
		}
		if exp, ok := mod.(BreakerExporter); ok {
			for addr, bs := range exp.ExportBreakerSnapshots() {
				snap.Breakers[addr] = bs
			}
		}
		if rg, ok := mod.(ReplayGuard); ok {
			if w, ok := rg.ReplayWatermark(); ok {
				snap.Watermarks[id] = w
			}
		}
	}
	return snap
}

// SnapshotNow collects and writes one snapshot. Failures are counted and
// logged, never fatal: a control node that cannot persist keeps monitoring.
func (m *Manager) SnapshotNow() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return errors.New("state: manager closed")
	}
	m.mu.Unlock()

	now := m.opt.Clock()
	size, err := Save(m.opt.Path, m.collect(now))

	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.status.WriteErrors++
		m.mWriteErrors.Inc()
		m.opt.Logf("state: snapshot: %v", err)
		return err
	}
	m.status.SnapshotsWritten++
	m.status.SnapshotBytes = uint64(size)
	m.status.LastSnapshotAt = now
	m.mSnapshots.Inc()
	m.mSnapshotBytes.Set(float64(size))
	m.mLastSnapshot.Set(float64(now.Unix()))
	return nil
}

// Run writes snapshots every Options.Interval until ctx is done, then writes
// a final snapshot (the graceful-shutdown path; a kill -9 instead relies on
// the last timer snapshot). Run does not release the lock — Close does.
func (m *Manager) Run(ctx context.Context) {
	ticker := time.NewTicker(m.opt.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			_ = m.SnapshotNow()
		case <-ctx.Done():
			_ = m.SnapshotNow()
			return
		}
	}
}

// Status reports the state layer's operator view, including the live
// per-collector replay watermarks.
func (m *Manager) Status() RestartStatus {
	m.mu.Lock()
	st := m.status
	m.mu.Unlock()
	st.ReplayWatermarks = make(map[string]time.Time)
	for _, id := range m.eng.Instances() {
		if mod, ok := m.eng.ModuleOf(id); ok {
			if rg, ok := mod.(ReplayGuard); ok {
				if w, ok := rg.ReplayWatermark(); ok {
					st.ReplayWatermarks[id] = w
				}
			}
		}
	}
	return st
}

// Close writes a final snapshot and releases the lock. Idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()
	_ = m.SnapshotNow()
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return m.lock.release()
}
