package hadooplog

import (
	"sync"
)

// Buffer is a thread-safe, append-only log sink with cursor-based reads.
// The cluster simulator's Writers append formatted lines to a Buffer, and
// the hadoop_log collection daemon reads newly appended lines on each
// iteration — the moral equivalent of tailing a log file on disk, without
// the paper's NFS/disk dependency. A maximum retained-line count bounds
// memory; readers that fall behind the eviction horizon resume at the
// oldest retained line.
type Buffer struct {
	mu      sync.Mutex
	lines   []string
	start   uint64 // absolute index of lines[0]
	maxKeep int
	partial []byte // bytes of an unterminated trailing line
}

// NewBuffer creates a buffer retaining at most maxKeep lines (default 65536
// when maxKeep <= 0).
func NewBuffer(maxKeep int) *Buffer {
	if maxKeep <= 0 {
		maxKeep = 65536
	}
	return &Buffer{maxKeep: maxKeep}
}

// Write implements io.Writer so a Buffer can back a Writer. Input is split
// on newlines; an unterminated final fragment is held until completed.
func (b *Buffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(p)
	for len(p) > 0 {
		nl := -1
		for i, c := range p {
			if c == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			b.partial = append(b.partial, p...)
			break
		}
		line := string(append(b.partial, p[:nl]...))
		b.partial = b.partial[:0]
		b.lines = append(b.lines, line)
		p = p[nl+1:]
	}
	if over := len(b.lines) - b.maxKeep; over > 0 {
		b.lines = append(b.lines[:0:0], b.lines[over:]...)
		b.start += uint64(over)
	}
	return n, nil
}

// ReadFrom returns the lines at absolute index >= cursor and the cursor to
// use on the next call. A cursor older than the retention horizon resumes
// at the oldest retained line.
func (b *Buffer) ReadFrom(cursor uint64) (lines []string, next uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cursor < b.start {
		cursor = b.start
	}
	end := b.start + uint64(len(b.lines))
	if cursor >= end {
		return nil, end
	}
	out := make([]string, end-cursor)
	copy(out, b.lines[cursor-b.start:])
	return out, end
}

// Len reports the number of retained lines.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.lines)
}
