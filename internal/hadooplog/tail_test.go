package hadooplog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func waitLines(t *testing.T, buf *Buffer, want int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		lines, _ := buf.ReadFrom(0)
		if len(lines) >= want {
			return lines
		}
		if time.Now().After(deadline) {
			t.Fatalf("buffer has %d lines, want %d", len(lines), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTailerFollowsAppends(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tt.log")
	if err := os.WriteFile(path, []byte("line1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	buf := NewBuffer(0)
	tail := NewTailer(path, buf, 10*time.Millisecond)
	defer tail.Stop()

	waitLines(t, buf, 1)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "line2")
	fmt.Fprintln(f, "line3")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	lines := waitLines(t, buf, 3)
	if lines[0] != "line1" || lines[1] != "line2" || lines[2] != "line3" {
		t.Errorf("lines = %v", lines)
	}
}

func TestTailerWaitsForCreation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "late.log")
	buf := NewBuffer(0)
	tail := NewTailer(path, buf, 10*time.Millisecond)
	defer tail.Stop()

	time.Sleep(50 * time.Millisecond)
	if buf.Len() != 0 {
		t.Fatal("buffer should be empty before the file exists")
	}
	if err := os.WriteFile(path, []byte("born\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lines := waitLines(t, buf, 1)
	if lines[0] != "born" {
		t.Errorf("lines = %v", lines)
	}
}

func TestTailerHandlesTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rot.log")
	if err := os.WriteFile(path, []byte("old1\nold2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	buf := NewBuffer(0)
	tail := NewTailer(path, buf, 10*time.Millisecond)
	defer tail.Stop()
	waitLines(t, buf, 2)

	// Truncate (log rotation copytruncate-style) and write fresh content.
	if err := os.WriteFile(path, []byte("new1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lines := waitLines(t, buf, 3)
	if lines[2] != "new1" {
		t.Errorf("post-truncation line = %q", lines[2])
	}
}

func TestTailerFromEndSkipsHistory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.log")
	if err := os.WriteFile(path, []byte("old1\nold2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	buf := NewBuffer(0)
	tail := NewTailerOpts(path, buf, TailOptions{Poll: 10 * time.Millisecond, FromEnd: true})
	defer tail.Stop()

	time.Sleep(50 * time.Millisecond)
	if buf.Len() != 0 {
		lines, _ := buf.ReadFrom(0)
		t.Fatalf("from-end tail replayed history: %v", lines)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "fresh")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	lines := waitLines(t, buf, 1)
	if lines[0] != "fresh" {
		t.Errorf("lines = %v", lines)
	}

	// Truncation after the first open is new content: read from the start.
	if err := os.WriteFile(path, []byte("rotated\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lines = waitLines(t, buf, 2)
	if lines[1] != "rotated" {
		t.Errorf("post-truncation line = %q", lines[1])
	}
}

func TestTailerStopIsPrompt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.log")
	if err := os.WriteFile(path, []byte("a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	buf := NewBuffer(0)
	tail := NewTailer(path, buf, 10*time.Millisecond)
	done := make(chan struct{})
	go func() {
		tail.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not return")
	}
}
