package hadooplog

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestBufferBasicReadFrom(t *testing.T) {
	b := NewBuffer(10)
	fmt.Fprintf(b, "line1\nline2\n")
	lines, next := b.ReadFrom(0)
	if len(lines) != 2 || lines[0] != "line1" || lines[1] != "line2" {
		t.Fatalf("lines = %v", lines)
	}
	if next != 2 {
		t.Errorf("next = %d, want 2", next)
	}
	// No new data.
	lines, next = b.ReadFrom(next)
	if lines != nil || next != 2 {
		t.Errorf("empty read = %v, %d", lines, next)
	}
	fmt.Fprintf(b, "line3\n")
	lines, next = b.ReadFrom(next)
	if len(lines) != 1 || lines[0] != "line3" || next != 3 {
		t.Errorf("incremental read = %v, %d", lines, next)
	}
}

func TestBufferPartialLines(t *testing.T) {
	b := NewBuffer(10)
	fmt.Fprintf(b, "par")
	if b.Len() != 0 {
		t.Error("unterminated line should not be visible")
	}
	fmt.Fprintf(b, "tial\nnext")
	lines, _ := b.ReadFrom(0)
	if len(lines) != 1 || lines[0] != "partial" {
		t.Errorf("lines = %v", lines)
	}
	fmt.Fprintf(b, "\n")
	lines, _ = b.ReadFrom(1)
	if len(lines) != 1 || lines[0] != "next" {
		t.Errorf("lines = %v", lines)
	}
}

func TestBufferEviction(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(b, "line%d\n", i)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	// A cursor older than the horizon resumes at the oldest retained line.
	lines, next := b.ReadFrom(0)
	if len(lines) != 3 || lines[0] != "line7" {
		t.Errorf("lines = %v", lines)
	}
	if next != 10 {
		t.Errorf("next = %d, want 10", next)
	}
}

func TestBufferConcurrentWriters(t *testing.T) {
	b := NewBuffer(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fmt.Fprintf(b, "g%d-%d\n", g, i)
			}
		}(g)
	}
	wg.Wait()
	lines, _ := b.ReadFrom(0)
	if len(lines) != 800 {
		t.Errorf("got %d lines, want 800", len(lines))
	}
}

// Property: for any sequence of writes, reading from cursor 0 returns the
// suffix of all complete lines bounded by maxKeep, in order.
func TestBufferRetentionProperty(t *testing.T) {
	f := func(chunks []string, keepRaw uint8) bool {
		keep := int(keepRaw%20) + 1
		b := NewBuffer(keep)
		var joined string
		for _, c := range chunks {
			fmt.Fprintf(b, "%s", c)
			joined += c
		}
		var complete []string
		for {
			i := -1
			for j := 0; j < len(joined); j++ {
				if joined[j] == '\n' {
					i = j
					break
				}
			}
			if i < 0 {
				break
			}
			complete = append(complete, joined[:i])
			joined = joined[i+1:]
		}
		start := 0
		if len(complete) > keep {
			start = len(complete) - keep
		}
		want := complete[start:]
		got, _ := b.ReadFrom(0)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
