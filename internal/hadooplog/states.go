// Package hadooplog implements ASDF's white-box Hadoop instrumentation
// (§4.4): writing Hadoop-0.18-style TaskTracker and DataNode logs (used by
// the cluster simulator), and parsing such logs into numeric per-second
// state vectors. Each thread of execution is approximated by a DFA whose
// states are entered and exited by log events; the per-second count of
// simultaneously live instances of each state is the white-box metric
// vector fed to the analysis modules.
package hadooplog

// State is one high-level Hadoop execution mode inferred from the logs.
type State int

// TaskTracker states (duration states except where noted).
const (
	// StateMapTask: a map task is executing on this TaskTracker.
	StateMapTask State = iota + 1
	// StateReduceTask: a reduce task is executing (any phase).
	StateReduceTask
	// StateReduceCopy: a reduce task is in its shuffle/copy phase.
	StateReduceCopy
	// StateReduceSort: a reduce task is in its merge/sort phase.
	StateReduceSort
	// StateReduceReduce: a reduce task is applying the reduce function.
	StateReduceReduce
	// StateWriteBlock: a DataNode is receiving a block (duration state).
	StateWriteBlock
	// StateReadBlock: a DataNode served a block read (instant event).
	StateReadBlock
	// StateDeleteBlock: a DataNode deleted a block (instant event).
	StateDeleteBlock
)

// String names the state as used in metric vectors and reports.
func (s State) String() string {
	switch s {
	case StateMapTask:
		return "MapTask"
	case StateReduceTask:
		return "ReduceTask"
	case StateReduceCopy:
		return "ReduceCopy"
	case StateReduceSort:
		return "ReduceSort"
	case StateReduceReduce:
		return "ReduceReduce"
	case StateWriteBlock:
		return "WriteBlock"
	case StateReadBlock:
		return "ReadBlock"
	case StateDeleteBlock:
		return "DeleteBlock"
	default:
		return "Unknown"
	}
}

// Kind selects which daemon's log a writer or parser handles.
type Kind int

// Log kinds.
const (
	// KindTaskTracker is the mapred TaskTracker log.
	KindTaskTracker Kind = iota + 1
	// KindDataNode is the dfs DataNode log.
	KindDataNode
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindTaskTracker:
		return "tasktracker"
	case KindDataNode:
		return "datanode"
	default:
		return "unknown"
	}
}

// TaskTrackerStates lists the states carried in a TaskTracker state vector,
// in vector order.
var TaskTrackerStates = []State{
	StateMapTask, StateReduceTask, StateReduceCopy, StateReduceSort, StateReduceReduce,
}

// DataNodeStates lists the states carried in a DataNode state vector, in
// vector order.
var DataNodeStates = []State{StateWriteBlock, StateReadBlock, StateDeleteBlock}

// StatesFor returns the state vector layout for a log kind.
func StatesFor(kind Kind) []State {
	switch kind {
	case KindTaskTracker:
		return TaskTrackerStates
	case KindDataNode:
		return DataNodeStates
	default:
		return nil
	}
}

// StateNamesFor returns the state names for a log kind, in vector order.
func StateNamesFor(kind Kind) []string {
	states := StatesFor(kind)
	out := make([]string, len(states))
	for i, s := range states {
		out[i] = s.String()
	}
	return out
}

// Derived duration and event-history metrics appended after the state
// counts in each vector. The paper's state list points to its companion
// report [15] (SALSA), which characterizes states by their durations as
// well as their counts; these metrics carry that duration information in a
// peer-comparable form. Each is zero on a healthy node by construction
// (stall times subtract a grace period covering normal task behaviour), so
// the white-box threshold floor max(1, k*sigma) — designed for metrics that
// are "constant in several nodes" (§4.4) — applies cleanly: a hung task
// grows the stall metric without bound long before any state count changes,
// and a crash-looping task accumulates failure history even though each
// individual failure is an instant event.
var (
	// taskTrackerDerived: seconds (beyond grace) since the quietest-oldest
	// live map / reduce task last logged anything, and the number of task
	// failures in the trailing failureHistory window.
	taskTrackerDerived = []string{"MapStallSec", "ReduceStallSec", "RecentTaskFailures"}
	// dataNodeDerived: seconds (beyond grace) the oldest in-flight block
	// write has been open.
	dataNodeDerived = []string{"WriteBlockStallSec"}
)

// Grace periods: the longest silence a healthy instance of each state
// plausibly produces. Maps log nothing between launch and completion, so
// their grace covers a full healthy map runtime; reduces log progress every
// few seconds; block writes last as long as a reduce's output pipeline.
const (
	failureHistory      = 300 // seconds of failure history kept
	mapStallGraceSec    = 120
	reduceStallGraceSec = 45
	writeBlockGraceSec  = 240
)

// MetricNamesFor returns the full per-second vector layout for a log kind:
// the state counts followed by the derived duration/failure metrics.
func MetricNamesFor(kind Kind) []string {
	names := StateNamesFor(kind)
	switch kind {
	case KindTaskTracker:
		return append(names, taskTrackerDerived...)
	case KindDataNode:
		return append(names, dataNodeDerived...)
	default:
		return nil
	}
}

// MetricDims reports the length of the vectors a Parser emits for kind.
func MetricDims(kind Kind) int { return len(MetricNamesFor(kind)) }
