package hadooplog

import (
	"io"
	"os"
	"time"
)

// Tailer follows a log file on disk, copying appended bytes into a Buffer —
// the deployment-side input path of hadoop_log_rpcd, which tails the log
// files Hadoop daemons natively write. It survives files that do not exist
// yet (waiting for them to appear) and files that are truncated or rotated
// (reopening from the start).
type Tailer struct {
	path    string
	buf     *Buffer
	poll    time.Duration
	fromEnd bool // skip existing content on the first open

	stop chan struct{}
	done chan struct{}
}

// TailOptions tunes a Tailer.
type TailOptions struct {
	// Poll is the polling interval (default 500ms when non-positive).
	Poll time.Duration
	// FromEnd starts the tail at the file's current end instead of
	// replaying existing content — the right choice when a daemon restarts
	// against a large live log, at the cost of never serving the lines
	// written while the daemon was down. It applies only to the first open;
	// a file that is later rotated or truncated is read from its start.
	FromEnd bool
}

// NewTailer starts tailing path into buf from the beginning of the file,
// polling at the given interval (default 500ms when non-positive). Call
// Stop to end the goroutine.
func NewTailer(path string, buf *Buffer, poll time.Duration) *Tailer {
	return NewTailerOpts(path, buf, TailOptions{Poll: poll})
}

// NewTailerOpts starts tailing path into buf with explicit options. Call
// Stop to end the goroutine.
func NewTailerOpts(path string, buf *Buffer, opt TailOptions) *Tailer {
	if opt.Poll <= 0 {
		opt.Poll = 500 * time.Millisecond
	}
	t := &Tailer{
		path:    path,
		buf:     buf,
		poll:    opt.Poll,
		fromEnd: opt.FromEnd,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go t.run()
	return t
}

// Stop ends the tail and waits for its goroutine to exit.
func (t *Tailer) Stop() {
	close(t.stop)
	<-t.done
}

func (t *Tailer) run() {
	defer close(t.done)
	var f *os.File
	var offset int64
	defer func() {
		if f != nil {
			_ = f.Close()
		}
	}()
	chunk := make([]byte, 64*1024)
	for {
		select {
		case <-t.stop:
			return
		case <-time.After(t.poll):
		}
		if f == nil {
			var err error
			f, err = os.Open(t.path)
			if err != nil {
				continue // not created yet
			}
			offset = 0
			if t.fromEnd {
				// Only the very first open skips history; rotated or
				// truncated files are new content and read in full.
				t.fromEnd = false
				if info, err := f.Stat(); err == nil {
					offset = info.Size()
				}
			}
		}
		info, err := f.Stat()
		if err != nil {
			_ = f.Close()
			f = nil
			continue
		}
		if info.Size() < offset {
			// Truncated or rotated in place: start over. (A rename-style
			// rotation is caught below when reads fail or the file
			// shrinks on the next cycle.)
			offset = 0
		}
		for offset < info.Size() {
			n, err := f.ReadAt(chunk, offset)
			if n > 0 {
				offset += int64(n)
				_, _ = t.buf.Write(chunk[:n])
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				_ = f.Close()
				f = nil
				break
			}
		}
	}
}
