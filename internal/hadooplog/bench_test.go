package hadooplog

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkParserLine(b *testing.B) {
	p := NewParser(KindTaskTracker)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	lines := make([]string, 0, 100)
	buf := NewBuffer(0)
	w := NewWriter(KindTaskTracker, buf)
	for i := 0; i < 50; i++ {
		_ = w.LaunchTask(base.Add(time.Duration(i)*time.Second), TaskID(1, true, i, 0))
		_ = w.ReduceProgress(base.Add(time.Duration(i)*time.Second), TaskID(1, false, i, 0), 10, PhaseCopy)
	}
	lines, _ = buf.ReadFrom(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.ParseLine(lines[i%len(lines)])
	}
}

func BenchmarkWriterLaunchTask(b *testing.B) {
	buf := NewBuffer(1024)
	w := NewWriter(KindTaskTracker, buf)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.LaunchTask(base, "task_0001_m_000001_0")
	}
}

func BenchmarkBufferWrite(b *testing.B) {
	buf := NewBuffer(4096)
	line := []byte("2026-01-01 00:00:00,000 INFO org.apache.hadoop.mapred.TaskTracker: LaunchTaskAction: task_0001_m_000001_0\n")
	b.SetBytes(int64(len(line)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = buf.Write(line)
	}
}

func BenchmarkParserFlushBusy(b *testing.B) {
	// A parser tracking 8 live tasks, flushing one bucket per op.
	p := NewParser(KindTaskTracker)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	buf := NewBuffer(0)
	w := NewWriter(KindTaskTracker, buf)
	for i := 0; i < 8; i++ {
		_ = w.LaunchTask(base, TaskID(1, i%2 == 0, i, 0))
	}
	lines, _ := buf.ReadFrom(0)
	for _, l := range lines {
		if err := p.ParseLine(l); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Flush(base.Add(time.Duration(i+1) * time.Second))
		p.Drain()
	}
	_ = fmt.Sprint()
}
