package hadooplog

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// timeLayout is the log4j timestamp format Hadoop 0.18 emits.
const timeLayout = "2006-01-02 15:04:05,000"

// Log4j class names, as in Hadoop 0.18.
const (
	classTaskTracker = "org.apache.hadoop.mapred.TaskTracker"
	classDataNode    = "org.apache.hadoop.dfs.DataNode"
)

// Writer emits Hadoop-0.18-format log lines for one daemon. It is the
// counterpart of the Parser: the cluster simulator writes its logs through
// a Writer, and ASDF parses them back with a Parser — the same path a real
// deployment's natively generated logs take (§4.3: "we decided to collect
// state data from Hadoop's logs instead of instrumenting Hadoop itself").
type Writer struct {
	kind Kind

	mu  sync.Mutex
	dst io.Writer
}

// NewWriter creates a Writer for the given daemon kind writing to dst.
func NewWriter(kind Kind, dst io.Writer) *Writer {
	return &Writer{kind: kind, dst: dst}
}

// Kind reports the daemon kind this writer emits logs for.
func (w *Writer) Kind() Kind { return w.kind }

func (w *Writer) emit(t time.Time, level, class, msg string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err := fmt.Fprintf(w.dst, "%s %s %s: %s\n", t.Format(timeLayout), level, class, msg)
	if err != nil {
		return fmt.Errorf("hadooplog: write: %w", err)
	}
	return nil
}

// TaskID formats a Hadoop 0.18 task attempt id, e.g.
// "task_0001_m_000096_0".
func TaskID(jobID int, isMap bool, taskNum, attempt int) string {
	kind := "r"
	if isMap {
		kind = "m"
	}
	return fmt.Sprintf("task_%04d_%s_%06d_%d", jobID, kind, taskNum, attempt)
}

// LaunchTask logs a LaunchTaskAction, the entrance event for the MapTask or
// ReduceTask state (Figure 5 of the paper).
func (w *Writer) LaunchTask(t time.Time, taskID string) error {
	return w.emit(t, "INFO", classTaskTracker, "LaunchTaskAction: "+taskID)
}

// TaskDone logs task completion, the exit event for MapTask/ReduceTask.
func (w *Writer) TaskDone(t time.Time, taskID string) error {
	return w.emit(t, "INFO", classTaskTracker, "Task "+taskID+" is done.")
}

// TaskFailed logs task failure, which also exits the task's states.
func (w *Writer) TaskFailed(t time.Time, taskID, reason string) error {
	return w.emit(t, "WARN", classTaskTracker, fmt.Sprintf("Task %s failed: %s", taskID, reason))
}

// ReducePhase names the shuffle sub-phase for progress lines.
type ReducePhase string

// Reduce sub-phases as printed in TaskTracker progress lines.
const (
	PhaseCopy   ReducePhase = "copy"
	PhaseSort   ReducePhase = "sort"
	PhaseReduce ReducePhase = "reduce"
)

// ReduceProgress logs a reduce-task progress line
// ("task_..._r_... 0.23% reduce > copy"), which drives the
// ReduceCopy/ReduceSort/ReduceReduce sub-states.
func (w *Writer) ReduceProgress(t time.Time, taskID string, pct float64, phase ReducePhase) error {
	return w.emit(t, "INFO", classTaskTracker,
		fmt.Sprintf("%s %.2f%% reduce > %s", taskID, pct, phase))
}

// BlockID formats an HDFS block id.
func BlockID(id uint64) string { return fmt.Sprintf("blk_%d", id) }

// ReceivingBlock logs the start of a block write on a DataNode (entrance of
// WriteBlock).
func (w *Writer) ReceivingBlock(t time.Time, blockID, srcAddr, dstAddr string) error {
	return w.emit(t, "INFO", classDataNode,
		fmt.Sprintf("Receiving block %s src: /%s dest: /%s", blockID, srcAddr, dstAddr))
}

// ReceivedBlock logs the completion of a block write (exit of WriteBlock).
func (w *Writer) ReceivedBlock(t time.Time, blockID string, size int64, srcAddr string) error {
	return w.emit(t, "INFO", classDataNode,
		fmt.Sprintf("Received block %s of size %d from /%s", blockID, size, srcAddr))
}

// ServedBlock logs a block read served to a client (instant ReadBlock).
func (w *Writer) ServedBlock(t time.Time, blockID, dstAddr string) error {
	return w.emit(t, "INFO", classDataNode,
		fmt.Sprintf("Served block %s to /%s", blockID, dstAddr))
}

// DeletedBlock logs a block deletion (instant DeleteBlock).
func (w *Writer) DeletedBlock(t time.Time, blockID string) error {
	return w.emit(t, "INFO", classDataNode,
		fmt.Sprintf("Deleting block %s file /data/dfs/current/%s", blockID, blockID))
}
