package hadooplog

import (
	"math/rand"
	"testing"
	"time"
)

// scheduledTask is the ground truth for one task in the round-trip test.
type scheduledTask struct {
	id         string
	isMap      bool
	launchSec  int
	doneSec    int // exclusive: the task exits at this second
	phaseStart map[ReducePhase]int
}

// TestWriterParserRoundTripProperty generates random task schedules, writes
// them through the Writer, parses them back, and compares every per-second
// state count against ground truth computed directly from the schedule.
func TestWriterParserRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		horizon := rng.Intn(120) + 30
		nTasks := rng.Intn(12) + 1
		var tasks []scheduledTask
		for i := 0; i < nTasks; i++ {
			launch := rng.Intn(horizon - 2)
			done := launch + 1 + rng.Intn(horizon-launch-1)
			st := scheduledTask{
				id:        TaskID(trial+1, rng.Intn(2) == 0, i, 0),
				launchSec: launch,
				doneSec:   done,
			}
			st.isMap = st.id[len("task_0000_")] == 'm'
			if !st.isMap && done-launch >= 3 {
				// Split the reduce lifetime into copy/sort/reduce phases.
				span := done - launch
				c := launch + 1
				s := c + 1 + rng.Intn(maxInt(1, span/3))
				r := s + 1 + rng.Intn(maxInt(1, span/3))
				if r < done {
					st.phaseStart = map[ReducePhase]int{PhaseCopy: c, PhaseSort: s, PhaseReduce: r}
				}
			}
			tasks = append(tasks, st)
		}

		// Emit events in timestamp order.
		type event struct {
			sec  int
			emit func(w *Writer, t time.Time) error
		}
		var events []event
		for i := range tasks {
			st := tasks[i]
			events = append(events, event{st.launchSec, func(w *Writer, ts time.Time) error {
				return w.LaunchTask(ts, st.id)
			}})
			events = append(events, event{st.doneSec, func(w *Writer, ts time.Time) error {
				return w.TaskDone(ts, st.id)
			}})
			for ph, sec := range st.phaseStart {
				ph, sec := ph, sec
				events = append(events, event{sec, func(w *Writer, ts time.Time) error {
					return w.ReduceProgress(ts, st.id, 50, ph)
				}})
			}
		}
		// Stable sort by second (ties keep insertion order; launches were
		// appended before phase/done events for the same task).
		for i := 1; i < len(events); i++ {
			for j := i; j > 0 && events[j].sec < events[j-1].sec; j-- {
				events[j], events[j-1] = events[j-1], events[j]
			}
		}

		buf := NewBuffer(0)
		w := NewWriter(KindTaskTracker, buf)
		base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
		for _, ev := range events {
			if err := ev.emit(w, base.Add(time.Duration(ev.sec)*time.Second)); err != nil {
				t.Fatal(err)
			}
		}
		p := NewParser(KindTaskTracker)
		lines, _ := buf.ReadFrom(0)
		for _, l := range lines {
			if err := p.ParseLine(l); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		p.Flush(base.Add(time.Duration(horizon) * time.Second))
		vecs := p.Drain()

		// Ground truth per second.
		mi := stateIdx(t, KindTaskTracker, StateMapTask)
		ri := stateIdx(t, KindTaskTracker, StateReduceTask)
		for _, v := range vecs {
			sec := int(v.Time.Sub(base) / time.Second)
			var wantMap, wantRed float64
			for _, st := range tasks {
				live := sec >= st.launchSec && sec < st.doneSec
				// A task entered and exited within one second still counts
				// in that second (the short-lived rule).
				shortLived := st.launchSec == st.doneSec && sec == st.launchSec
				if !live && !shortLived {
					continue
				}
				if st.isMap {
					wantMap++
				} else {
					wantRed++
				}
			}
			if v.Counts[mi] != wantMap || v.Counts[ri] != wantRed {
				t.Fatalf("trial %d second %d: got map=%v red=%v, want map=%v red=%v",
					trial, sec, v.Counts[mi], v.Counts[ri], wantMap, wantRed)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestDataNodeRoundTripProperty does the same for block writes and reads.
func TestDataNodeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		horizon := rng.Intn(80) + 20
		nBlocks := rng.Intn(10) + 1
		type blk struct{ start, end int }
		var blocks []blk
		reads := make(map[int]int) // second -> served count
		for i := 0; i < nBlocks; i++ {
			s := rng.Intn(horizon - 1)
			e := s + 1 + rng.Intn(horizon-s-1)
			blocks = append(blocks, blk{s, e})
			reads[rng.Intn(horizon)]++
		}

		buf := NewBuffer(0)
		w := NewWriter(KindDataNode, buf)
		base := time.Date(2026, 7, 2, 0, 0, 0, 0, time.UTC)
		// Emit in time order.
		for sec := 0; sec <= horizon; sec++ {
			for i, b := range blocks {
				if b.start == sec {
					if err := w.ReceivingBlock(base.Add(time.Duration(sec)*time.Second),
						BlockID(uint64(trial*100+i)), "10.0.0.1:50010", "10.0.0.2:50010"); err != nil {
						t.Fatal(err)
					}
				}
			}
			for n := 0; n < reads[sec]; n++ {
				if err := w.ServedBlock(base.Add(time.Duration(sec)*time.Second),
					BlockID(uint64(9000+sec*10+n)), "10.0.0.3"); err != nil {
					t.Fatal(err)
				}
			}
			for i, b := range blocks {
				if b.end == sec {
					if err := w.ReceivedBlock(base.Add(time.Duration(sec)*time.Second),
						BlockID(uint64(trial*100+i)), 1<<24, "10.0.0.1"); err != nil {
						t.Fatal(err)
					}
				}
			}
		}

		p := NewParser(KindDataNode)
		lines, _ := buf.ReadFrom(0)
		for _, l := range lines {
			if err := p.ParseLine(l); err != nil {
				t.Fatal(err)
			}
		}
		p.Flush(base.Add(time.Duration(horizon+1) * time.Second))
		vecs := p.Drain()

		wi := stateIdx(t, KindDataNode, StateWriteBlock)
		rdi := stateIdx(t, KindDataNode, StateReadBlock)
		for _, v := range vecs {
			sec := int(v.Time.Sub(base) / time.Second)
			var wantWrite float64
			for _, b := range blocks {
				if sec >= b.start && sec < b.end {
					wantWrite++
				}
			}
			if v.Counts[wi] != wantWrite {
				t.Fatalf("trial %d second %d: WriteBlock = %v, want %v", trial, sec, v.Counts[wi], wantWrite)
			}
			if v.Counts[rdi] != float64(reads[sec]) {
				t.Fatalf("trial %d second %d: ReadBlock = %v, want %d", trial, sec, v.Counts[rdi], reads[sec])
			}
		}
	}
}
