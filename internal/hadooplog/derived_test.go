package hadooplog

import (
	"testing"
)

func metricIdx(t *testing.T, kind Kind, name string) int {
	t.Helper()
	for i, n := range MetricNamesFor(kind) {
		if n == name {
			return i
		}
	}
	t.Fatalf("metric %q not in %v layout", name, kind)
	return -1
}

func TestMetricDims(t *testing.T) {
	if got := MetricDims(KindTaskTracker); got != len(TaskTrackerStates)+3 {
		t.Errorf("tasktracker dims = %d", got)
	}
	if got := MetricDims(KindDataNode); got != len(DataNodeStates)+1 {
		t.Errorf("datanode dims = %d", got)
	}
	if MetricNamesFor(Kind(99)) != nil {
		t.Error("unknown kind should return nil")
	}
}

func TestMapStallGrowsForSilentMap(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	id := TaskID(1, true, 0, 0)
	mustNoErr(t, w.LaunchTask(ts(0), id))
	feed(t, p, buf)
	// Silence for grace + 30 seconds.
	p.Flush(ts(mapStallGraceSec + 30))
	vecs := p.Drain()
	mi := metricIdx(t, KindTaskTracker, "MapStallSec")

	// Within the grace period: zero.
	if got := vecs[mapStallGraceSec-1].Counts[mi]; got != 0 {
		t.Errorf("stall within grace = %v, want 0", got)
	}
	// Past the grace period: grows linearly.
	if got := vecs[mapStallGraceSec+10].Counts[mi]; got != 10 {
		t.Errorf("stall at grace+10 = %v, want 10", got)
	}
	if got := vecs[mapStallGraceSec+29].Counts[mi]; got != 29 {
		t.Errorf("stall at grace+29 = %v, want 29", got)
	}
}

func TestMapStallResetsOnCompletion(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	id := TaskID(1, true, 0, 0)
	mustNoErr(t, w.LaunchTask(ts(0), id))
	mustNoErr(t, w.TaskDone(ts(mapStallGraceSec+20), id))
	feed(t, p, buf)
	p.Flush(ts(mapStallGraceSec + 25))
	vecs := p.Drain()
	mi := metricIdx(t, KindTaskTracker, "MapStallSec")
	if got := vecs[mapStallGraceSec+10].Counts[mi]; got != 10 {
		t.Errorf("stall before completion = %v, want 10", got)
	}
	if got := vecs[mapStallGraceSec+22].Counts[mi]; got != 0 {
		t.Errorf("stall after completion = %v, want 0", got)
	}
}

func TestReduceStallIgnoresProgressingTask(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	id := TaskID(2, false, 0, 0)
	mustNoErr(t, w.LaunchTask(ts(0), id))
	// Progress lines every 5 seconds: never silent beyond grace.
	for s := 5; s <= 300; s += 5 {
		mustNoErr(t, w.ReduceProgress(ts(s), id, float64(s)/10, PhaseCopy))
	}
	feed(t, p, buf)
	p.Flush(ts(301))
	vecs := p.Drain()
	ri := metricIdx(t, KindTaskTracker, "ReduceStallSec")
	for s, v := range vecs {
		if v.Counts[ri] != 0 {
			t.Fatalf("progressing reduce shows stall %v at second %d", v.Counts[ri], s)
		}
	}
}

func TestReduceStallGrowsWhenProgressStops(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	id := TaskID(2, false, 1, 0)
	mustNoErr(t, w.LaunchTask(ts(0), id))
	mustNoErr(t, w.ReduceProgress(ts(5), id, 10, PhaseCopy))
	mustNoErr(t, w.ReduceProgress(ts(10), id, 33.4, PhaseSort))
	// Then silence: hung at sort (HADOOP-2080).
	feed(t, p, buf)
	horizon := 10 + reduceStallGraceSec + 40
	p.Flush(ts(horizon))
	vecs := p.Drain()
	ri := metricIdx(t, KindTaskTracker, "ReduceStallSec")
	si := metricIdx(t, KindTaskTracker, "ReduceSort")
	at := 10 + reduceStallGraceSec + 25
	if got := vecs[at].Counts[ri]; got != 25 {
		t.Errorf("stall at last-event+grace+25 = %v, want 25", got)
	}
	if got := vecs[at].Counts[si]; got != 1 {
		t.Errorf("hung reduce should still count in ReduceSort: %v", got)
	}
}

func TestRecentTaskFailuresWindow(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	// Three failures at t=0, 10, 20 (launch first so states make sense).
	for i := 0; i < 3; i++ {
		id := TaskID(3, false, i, 0)
		mustNoErr(t, w.LaunchTask(ts(i*10), id))
		mustNoErr(t, w.TaskFailed(ts(i*10+1), id, "java.io.IOException"))
	}
	feed(t, p, buf)
	p.Flush(ts(failureHistory + 60))
	vecs := p.Drain()
	fi := metricIdx(t, KindTaskTracker, "RecentTaskFailures")

	if got := vecs[30].Counts[fi]; got != 3 {
		t.Errorf("failures at t=30 = %v, want 3", got)
	}
	// After the history window passes the first failure (t=1+300).
	if got := vecs[failureHistory+5].Counts[fi]; got != 2 {
		t.Errorf("failures at t=%d = %v, want 2", failureHistory+5, got)
	}
	if got := vecs[failureHistory+30].Counts[fi]; got != 0 {
		t.Errorf("failures at t=%d = %v, want 0", failureHistory+30, got)
	}
}

func TestWriteBlockStall(t *testing.T) {
	w, p, buf := parserFor(t, KindDataNode)
	blk := BlockID(42)
	mustNoErr(t, w.ReceivingBlock(ts(0), blk, "10.0.0.1:50010", "10.0.0.2:50010"))
	feed(t, p, buf)
	p.Flush(ts(writeBlockGraceSec + 20))
	vecs := p.Drain()
	wi := metricIdx(t, KindDataNode, "WriteBlockStallSec")
	if got := vecs[writeBlockGraceSec-1].Counts[wi]; got != 0 {
		t.Errorf("write stall within grace = %v, want 0", got)
	}
	if got := vecs[writeBlockGraceSec+10].Counts[wi]; got != 10 {
		t.Errorf("write stall at grace+10 = %v, want 10", got)
	}
}

func TestDerivedMetricsZeroOnIdleNode(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	id := TaskID(1, true, 0, 0)
	mustNoErr(t, w.LaunchTask(ts(0), id))
	mustNoErr(t, w.TaskDone(ts(20), id))
	feed(t, p, buf)
	p.Flush(ts(500))
	vecs := p.Drain()
	for _, name := range []string{"MapStallSec", "ReduceStallSec", "RecentTaskFailures"} {
		mi := metricIdx(t, KindTaskTracker, name)
		if got := vecs[400].Counts[mi]; got != 0 {
			t.Errorf("%s on idle node = %v, want 0", name, got)
		}
	}
}
