package hadooplog

import (
	"testing"
	"time"
)

func ts(sec int) time.Time {
	return time.Date(2026, 4, 15, 14, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

// feedWriter runs a script of writer calls into a buffer and returns lines.
func parserFor(t *testing.T, kind Kind) (*Writer, *Parser, *Buffer) {
	t.Helper()
	buf := NewBuffer(0)
	return NewWriter(kind, buf), NewParser(kind), buf
}

func feed(t *testing.T, p *Parser, buf *Buffer) {
	t.Helper()
	lines, _ := buf.ReadFrom(0)
	for _, line := range lines {
		if err := p.ParseLine(line); err != nil {
			t.Fatalf("ParseLine(%q): %v", line, err)
		}
	}
}

func stateIdx(t *testing.T, kind Kind, s State) int {
	t.Helper()
	for i, st := range StatesFor(kind) {
		if st == s {
			return i
		}
	}
	t.Fatalf("state %v not in %v layout", s, kind)
	return -1
}

func TestPaperFigure5Snippet(t *testing.T) {
	// The exact scenario of Figure 5: a map launch at 14:23:15 and a
	// reduce launch at 14:23:16 produce state vectors (MapTask=1,
	// ReduceTask=0) then (MapTask=1, ReduceTask=1).
	p := NewParser(KindTaskTracker)
	lines := []string{
		"2008-04-15 14:23:15,324 INFO org.apache.hadoop.mapred.TaskTracker: LaunchTaskAction: task_0001_m_000096_0",
		"2008-04-15 14:23:16,375 INFO org.apache.hadoop.mapred.TaskTracker: LaunchTaskAction: task_0001_r_000003_0",
	}
	for _, l := range lines {
		if err := p.ParseLine(l); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush(time.Date(2008, 4, 15, 14, 23, 17, 0, time.UTC))
	vecs := p.Drain()
	if len(vecs) != 2 {
		t.Fatalf("got %d vectors, want 2", len(vecs))
	}
	mi := stateIdx(t, KindTaskTracker, StateMapTask)
	ri := stateIdx(t, KindTaskTracker, StateReduceTask)
	if vecs[0].Counts[mi] != 1 || vecs[0].Counts[ri] != 0 {
		t.Errorf("t=15 vector = %v, want Map=1 Reduce=0", vecs[0].Counts)
	}
	if vecs[1].Counts[mi] != 1 || vecs[1].Counts[ri] != 1 {
		t.Errorf("t=16 vector = %v, want Map=1 Reduce=1", vecs[1].Counts)
	}
}

func TestWriterParserRoundTripMapLifecycle(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	id := TaskID(1, true, 7, 0)
	if id != "task_0001_m_000007_0" {
		t.Fatalf("TaskID = %q", id)
	}
	mustNoErr(t, w.LaunchTask(ts(0), id))
	mustNoErr(t, w.TaskDone(ts(10), id))
	feed(t, p, buf)
	p.Flush(ts(11))
	vecs := p.Drain()
	if len(vecs) != 11 {
		t.Fatalf("got %d vectors, want 11", len(vecs))
	}
	mi := stateIdx(t, KindTaskTracker, StateMapTask)
	for i := 0; i <= 9; i++ {
		if vecs[i].Counts[mi] != 1 {
			t.Errorf("second %d: MapTask = %v, want 1", i, vecs[i].Counts[mi])
		}
	}
	// The task exited at t=10, so the t=10 bucket no longer counts it.
	if vecs[10].Counts[mi] != 0 {
		t.Errorf("second 10: MapTask = %v, want 0", vecs[10].Counts[mi])
	}
	if p.LiveTasks() != 0 {
		t.Errorf("LiveTasks = %d, want 0", p.LiveTasks())
	}
}

func TestReducePhaseTransitions(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	id := TaskID(2, false, 1, 0)
	mustNoErr(t, w.LaunchTask(ts(0), id))
	mustNoErr(t, w.ReduceProgress(ts(1), id, 5, PhaseCopy))
	mustNoErr(t, w.ReduceProgress(ts(2), id, 20, PhaseCopy))
	mustNoErr(t, w.ReduceProgress(ts(3), id, 70, PhaseSort))
	mustNoErr(t, w.ReduceProgress(ts(5), id, 90, PhaseReduce))
	mustNoErr(t, w.TaskDone(ts(7), id))
	feed(t, p, buf)
	p.Flush(ts(8))
	vecs := p.Drain()

	ri := stateIdx(t, KindTaskTracker, StateReduceTask)
	ci := stateIdx(t, KindTaskTracker, StateReduceCopy)
	si := stateIdx(t, KindTaskTracker, StateReduceSort)
	rri := stateIdx(t, KindTaskTracker, StateReduceReduce)

	type want struct{ r, c, s, rr float64 }
	wants := []want{
		{1, 0, 0, 0}, // t0: launched, no phase yet
		{1, 1, 0, 0}, // t1: copy
		{1, 1, 0, 0}, // t2: copy
		{1, 0, 1, 0}, // t3: sort
		{1, 0, 1, 0}, // t4: sort persists
		{1, 0, 0, 1}, // t5: reduce
		{1, 0, 0, 1}, // t6: reduce
		{0, 0, 0, 0}, // t7: done
	}
	if len(vecs) != len(wants) {
		t.Fatalf("got %d vectors, want %d", len(vecs), len(wants))
	}
	for i, wv := range wants {
		c := vecs[i].Counts
		if c[ri] != wv.r || c[ci] != wv.c || c[si] != wv.s || c[rri] != wv.rr {
			t.Errorf("t%d: vector = %v, want r=%v c=%v s=%v rr=%v", i, c, wv.r, wv.c, wv.s, wv.rr)
		}
	}
}

func TestShortLivedTaskCountedOnce(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	id := TaskID(3, true, 0, 0)
	mustNoErr(t, w.LaunchTask(ts(0), id))
	mustNoErr(t, w.TaskDone(ts(0).Add(500*time.Millisecond), id))
	feed(t, p, buf)
	p.Flush(ts(1))
	vecs := p.Drain()
	if len(vecs) != 1 {
		t.Fatalf("got %d vectors", len(vecs))
	}
	mi := stateIdx(t, KindTaskTracker, StateMapTask)
	if vecs[0].Counts[mi] != 1 {
		t.Errorf("short-lived map count = %v, want 1", vecs[0].Counts[mi])
	}
}

func TestTaskFailedExitsState(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	id := TaskID(4, false, 2, 1)
	mustNoErr(t, w.LaunchTask(ts(0), id))
	mustNoErr(t, w.TaskFailed(ts(2), id, "java.io.IOException: rename failed"))
	feed(t, p, buf)
	p.Flush(ts(3))
	vecs := p.Drain()
	ri := stateIdx(t, KindTaskTracker, StateReduceTask)
	if vecs[0].Counts[ri] != 1 || vecs[1].Counts[ri] != 1 {
		t.Errorf("pre-failure counts wrong: %v %v", vecs[0].Counts, vecs[1].Counts)
	}
	if vecs[2].Counts[ri] != 0 {
		t.Errorf("post-failure count = %v, want 0", vecs[2].Counts[ri])
	}
	if p.LiveTasks() != 0 {
		t.Error("failed task still tracked")
	}
}

func TestDataNodeBlockLifecycle(t *testing.T) {
	w, p, buf := parserFor(t, KindDataNode)
	blk := BlockID(12345)
	mustNoErr(t, w.ReceivingBlock(ts(0), blk, "10.0.0.2:50010", "10.0.0.3:50010"))
	mustNoErr(t, w.ServedBlock(ts(1), BlockID(999), "10.0.0.4"))
	mustNoErr(t, w.ReceivedBlock(ts(2), blk, 67108864, "10.0.0.2"))
	mustNoErr(t, w.DeletedBlock(ts(3), BlockID(777)))
	feed(t, p, buf)
	p.Flush(ts(4))
	vecs := p.Drain()

	wi := stateIdx(t, KindDataNode, StateWriteBlock)
	rdi := stateIdx(t, KindDataNode, StateReadBlock)
	di := stateIdx(t, KindDataNode, StateDeleteBlock)
	if vecs[0].Counts[wi] != 1 || vecs[1].Counts[wi] != 1 {
		t.Errorf("WriteBlock during transfer = %v, %v, want 1,1", vecs[0].Counts[wi], vecs[1].Counts[wi])
	}
	if vecs[2].Counts[wi] != 0 {
		t.Errorf("WriteBlock after receipt = %v, want 0", vecs[2].Counts[wi])
	}
	if vecs[1].Counts[rdi] != 1 {
		t.Errorf("ReadBlock = %v, want 1", vecs[1].Counts[rdi])
	}
	if vecs[3].Counts[di] != 1 {
		t.Errorf("DeleteBlock = %v, want 1", vecs[3].Counts[di])
	}
}

func TestInstantEventsAccumulateWithinBucket(t *testing.T) {
	w, p, buf := parserFor(t, KindDataNode)
	for i := 0; i < 5; i++ {
		mustNoErr(t, w.ServedBlock(ts(0).Add(time.Duration(i*100)*time.Millisecond), BlockID(uint64(i)), "10.0.0.9"))
	}
	feed(t, p, buf)
	p.Flush(ts(1))
	vecs := p.Drain()
	rdi := stateIdx(t, KindDataNode, StateReadBlock)
	if vecs[0].Counts[rdi] != 5 {
		t.Errorf("ReadBlock = %v, want 5", vecs[0].Counts[rdi])
	}
}

func TestParserIgnoresUnknownLines(t *testing.T) {
	p := NewParser(KindTaskTracker)
	lines := []string{
		"",
		"garbage",
		"2026-04-15 14:00:00,000 INFO org.apache.hadoop.mapred.TaskTracker: Some unrelated message",
		"2026-04-15 14:00:01,000 WARN org.apache.hadoop.mapred.JobTracker: also unrelated",
	}
	for _, l := range lines {
		if err := p.ParseLine(l); err != nil {
			t.Errorf("ParseLine(%q) = %v, want nil", l, err)
		}
	}
	if p.LinesParsed != 0 {
		t.Errorf("LinesParsed = %d, want 0", p.LinesParsed)
	}
	if p.LinesSkipped != 4 {
		t.Errorf("LinesSkipped = %d, want 4", p.LinesSkipped)
	}
}

func TestParserRejectsTimeRegression(t *testing.T) {
	p := NewParser(KindTaskTracker)
	l1 := ts(5).Format(timeLayout) + " INFO org.apache.hadoop.mapred.TaskTracker: LaunchTaskAction: task_0001_m_000001_0"
	l2 := ts(1).Format(timeLayout) + " INFO org.apache.hadoop.mapred.TaskTracker: LaunchTaskAction: task_0001_m_000002_0"
	if err := p.ParseLine(l1); err != nil {
		t.Fatal(err)
	}
	if err := p.ParseLine(l2); err == nil {
		t.Error("timestamp regression should error")
	}
}

func TestParserToleratesUnknownTaskExit(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	mustNoErr(t, w.TaskDone(ts(0), "task_0001_m_000001_0"))
	feed(t, p, buf)
	p.Flush(ts(1))
	vecs := p.Drain()
	for _, v := range vecs {
		for _, c := range v.Counts {
			if c != 0 {
				t.Errorf("unknown-task exit produced nonzero vector %v", v.Counts)
			}
		}
	}
}

func TestQuietPeriodStillEmitsVectors(t *testing.T) {
	w, p, buf := parserFor(t, KindTaskTracker)
	id := TaskID(9, true, 1, 0)
	mustNoErr(t, w.LaunchTask(ts(0), id))
	feed(t, p, buf)
	// No log lines for 30 s; flushing must still emit one vector per
	// second with the hung task counted — exactly how a hung map
	// (HADOOP-1036) keeps showing up in the white-box metrics.
	p.Flush(ts(30))
	vecs := p.Drain()
	if len(vecs) != 30 {
		t.Fatalf("got %d vectors, want 30", len(vecs))
	}
	mi := stateIdx(t, KindTaskTracker, StateMapTask)
	for i, v := range vecs {
		if v.Counts[mi] != 1 {
			t.Errorf("second %d: MapTask = %v, want 1", i, v.Counts[mi])
		}
	}
}

func TestStateNames(t *testing.T) {
	ttNames := StateNamesFor(KindTaskTracker)
	want := []string{"MapTask", "ReduceTask", "ReduceCopy", "ReduceSort", "ReduceReduce"}
	for i := range want {
		if ttNames[i] != want[i] {
			t.Errorf("tt state %d = %q, want %q", i, ttNames[i], want[i])
		}
	}
	dnNames := StateNamesFor(KindDataNode)
	wantDN := []string{"WriteBlock", "ReadBlock", "DeleteBlock"}
	for i := range wantDN {
		if dnNames[i] != wantDN[i] {
			t.Errorf("dn state %d = %q, want %q", i, dnNames[i], wantDN[i])
		}
	}
	if StatesFor(Kind(99)) != nil {
		t.Error("unknown kind should return nil layout")
	}
	if State(99).String() != "Unknown" {
		t.Error("unknown state name")
	}
	if KindTaskTracker.String() != "tasktracker" || KindDataNode.String() != "datanode" {
		t.Error("kind names wrong")
	}
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
