package hadooplog

import (
	"fmt"
	"strings"
	"time"
)

// StateVector is the per-second white-box metric sample: the number of
// simultaneously live instances of each state (plus counts of instant
// events) during one second, in StatesFor(kind) order.
type StateVector struct {
	// Time is the start of the one-second bucket.
	Time time.Time
	// Counts holds one count per state, ordered as StatesFor(kind).
	Counts []float64
}

// taskInfo tracks a live task attempt between its entrance and exit events.
type taskInfo struct {
	isMap      bool
	phase      ReducePhase // reduce tasks only; "" before the first progress line
	enteredAt  time.Time   // bucket in which the task state was entered
	phaseSince time.Time   // bucket in which the current phase was entered
	lastEvent  time.Time   // bucket of the task's most recent log line
}

// Parser incrementally converts one daemon's log lines into per-second
// state vectors. It maintains only the set of currently live tasks and
// block writes, so memory use is bounded by concurrency, not log length
// (§4.4: "constant memory use in the order of the duration").
//
// Lines must arrive in non-decreasing timestamp order, as they do in a log
// file. Non-matching lines are counted but otherwise ignored, so parsing is
// robust to unknown log messages.
type Parser struct {
	kind   Kind
	states []State
	idx    map[State]int

	tasks      map[string]*taskInfo
	blockSince map[string]time.Time // WriteBlock entry bucket per block

	bucket     time.Time // start of the current (unflushed) second
	haveBucket bool
	instant    []float64 // instant-event counts for the current bucket
	shortLived []float64 // states entered and exited within the current bucket

	failures []time.Time // recent task-failure event times (trailing window)

	pending []StateVector

	// LinesParsed counts lines that matched a known event; LinesSkipped
	// counts lines that did not.
	LinesParsed  uint64
	LinesSkipped uint64
}

// NewParser creates a parser for the given daemon kind.
func NewParser(kind Kind) *Parser {
	states := StatesFor(kind)
	idx := make(map[State]int, len(states))
	for i, s := range states {
		idx[s] = i
	}
	return &Parser{
		kind:       kind,
		states:     states,
		idx:        idx,
		tasks:      make(map[string]*taskInfo),
		blockSince: make(map[string]time.Time),
		instant:    make([]float64, len(states)),
		shortLived: make([]float64, len(states)),
	}
}

// Kind reports the daemon kind this parser handles.
func (p *Parser) Kind() Kind { return p.kind }

// ParseLine consumes one raw log line.
func (p *Parser) ParseLine(line string) error {
	line = strings.TrimRight(line, "\r\n")
	if len(line) < len(timeLayout)+2 {
		p.LinesSkipped++
		return nil
	}
	ts, err := time.Parse(timeLayout, line[:len(timeLayout)])
	if err != nil {
		p.LinesSkipped++
		return nil
	}
	bucket := ts.Truncate(time.Second)
	if p.haveBucket && bucket.Before(p.bucket) {
		return fmt.Errorf("hadooplog: timestamp went backwards: %s before bucket %s",
			bucket.Format(time.RFC3339), p.bucket.Format(time.RFC3339))
	}
	p.advanceTo(bucket)

	// Strip "LEVEL class: " to get the message.
	rest := line[len(timeLayout)+1:]
	_, rest, ok := strings.Cut(rest, " ") // drop level
	if !ok {
		p.LinesSkipped++
		return nil
	}
	_, msg, ok := strings.Cut(rest, ": ") // drop class
	if !ok {
		p.LinesSkipped++
		return nil
	}

	var matched bool
	switch p.kind {
	case KindTaskTracker:
		matched = p.parseTaskTracker(bucket, msg)
	case KindDataNode:
		matched = p.parseDataNode(bucket, msg)
	}
	if matched {
		p.LinesParsed++
	} else {
		p.LinesSkipped++
	}
	return nil
}

// Flush finalizes buckets strictly before until, emitting vectors for quiet
// seconds in which states remained live. Call this when the log has been
// read to its current end.
func (p *Parser) Flush(until time.Time) {
	p.advanceTo(until.Truncate(time.Second))
}

// Drain returns and clears the finalized per-second vectors.
func (p *Parser) Drain() []StateVector {
	out := p.pending
	p.pending = nil
	return out
}

// LiveTasks reports the number of task attempts currently being tracked.
func (p *Parser) LiveTasks() int { return len(p.tasks) }

// advanceTo finalizes all buckets before newBucket.
func (p *Parser) advanceTo(newBucket time.Time) {
	if !p.haveBucket {
		p.bucket = newBucket
		p.haveBucket = true
		return
	}
	for p.bucket.Before(newBucket) {
		p.flushBucket()
		p.bucket = p.bucket.Add(time.Second)
	}
}

// flushBucket emits the vector for the current bucket: the state counts
// followed by the derived duration/failure metrics.
func (p *Parser) flushBucket() {
	counts := make([]float64, MetricDims(p.kind))
	copy(counts, p.instant)
	for i := range p.shortLived {
		counts[i] += p.shortLived[i]
	}
	for _, t := range p.tasks {
		p.countTask(t, counts)
	}
	for range p.blockSince {
		counts[p.idx[StateWriteBlock]]++
	}

	base := len(p.states)
	switch p.kind {
	case KindTaskTracker:
		var mapStall, redStall float64
		for _, t := range p.tasks {
			silent := p.bucket.Sub(t.lastEvent).Seconds()
			if t.isMap {
				if s := silent - mapStallGraceSec; s > mapStall {
					mapStall = s
				}
			} else if s := silent - reduceStallGraceSec; s > redStall {
				redStall = s
			}
		}
		counts[base] = mapStall
		counts[base+1] = redStall
		// Prune and count recent failures.
		horizon := p.bucket.Add(-failureHistory * time.Second)
		kept := p.failures[:0]
		for _, ft := range p.failures {
			if ft.After(horizon) {
				kept = append(kept, ft)
			}
		}
		p.failures = kept
		counts[base+2] = float64(len(p.failures))
	case KindDataNode:
		var writeStall float64
		for _, since := range p.blockSince {
			if s := p.bucket.Sub(since).Seconds() - writeBlockGraceSec; s > writeStall {
				writeStall = s
			}
		}
		counts[base] = writeStall
	}

	p.pending = append(p.pending, StateVector{Time: p.bucket, Counts: counts})
	for i := range p.instant {
		p.instant[i] = 0
		p.shortLived[i] = 0
	}
}

func (p *Parser) countTask(t *taskInfo, counts []float64) {
	if t.isMap {
		counts[p.idx[StateMapTask]]++
		return
	}
	counts[p.idx[StateReduceTask]]++
	switch t.phase {
	case PhaseCopy:
		counts[p.idx[StateReduceCopy]]++
	case PhaseSort:
		counts[p.idx[StateReduceSort]]++
	case PhaseReduce:
		counts[p.idx[StateReduceReduce]]++
	}
}

// bump adds a short-lived occurrence for a state that was entered and
// exited within the current bucket.
func (p *Parser) bump(s State) {
	p.shortLived[p.idx[s]]++
}

func (p *Parser) parseTaskTracker(bucket time.Time, msg string) bool {
	switch {
	case strings.HasPrefix(msg, "LaunchTaskAction: "):
		id := strings.TrimSpace(strings.TrimPrefix(msg, "LaunchTaskAction: "))
		if id == "" {
			return false
		}
		p.tasks[id] = &taskInfo{
			isMap:     strings.Contains(id, "_m_"),
			enteredAt: bucket,
			lastEvent: bucket,
		}
		return true

	case strings.HasPrefix(msg, "Task "):
		rest := strings.TrimPrefix(msg, "Task ")
		var id string
		switch {
		case strings.HasSuffix(rest, " is done."):
			id = strings.TrimSuffix(rest, " is done.")
		case strings.Contains(rest, " failed: "):
			id, _, _ = strings.Cut(rest, " failed: ")
			p.failures = append(p.failures, bucket)
		default:
			return false
		}
		t, ok := p.tasks[id]
		if !ok {
			return true // exit for a task launched before this parser started
		}
		delete(p.tasks, id)
		if t.enteredAt.Equal(bucket) {
			// Entered and exited within the same second: count once.
			if t.isMap {
				p.bump(StateMapTask)
			} else {
				p.bump(StateReduceTask)
			}
		}
		if !t.isMap && t.phase != "" && t.phaseSince.Equal(bucket) {
			switch t.phase {
			case PhaseCopy:
				p.bump(StateReduceCopy)
			case PhaseSort:
				p.bump(StateReduceSort)
			case PhaseReduce:
				p.bump(StateReduceReduce)
			}
		}
		return true

	case strings.Contains(msg, "% reduce > "):
		// "<taskid> <pct>% reduce > <phase>"
		id, rest, ok := strings.Cut(msg, " ")
		if !ok {
			return false
		}
		_, phaseName, ok := strings.Cut(rest, "reduce > ")
		if !ok {
			return false
		}
		phase := ReducePhase(strings.TrimSpace(phaseName))
		if phase != PhaseCopy && phase != PhaseSort && phase != PhaseReduce {
			return false
		}
		t, ok := p.tasks[id]
		if !ok || t.isMap {
			return true // progress for an unknown task; tolerated
		}
		t.lastEvent = bucket
		if t.phase != phase {
			// Phase transition: if the old phase lived entirely within
			// this bucket, count it as short-lived.
			if t.phase != "" && t.phaseSince.Equal(bucket) {
				switch t.phase {
				case PhaseCopy:
					p.bump(StateReduceCopy)
				case PhaseSort:
					p.bump(StateReduceSort)
				case PhaseReduce:
					p.bump(StateReduceReduce)
				}
			}
			t.phase = phase
			t.phaseSince = bucket
		}
		return true
	}
	return false
}

func (p *Parser) parseDataNode(bucket time.Time, msg string) bool {
	switch {
	case strings.HasPrefix(msg, "Receiving block "):
		fields := strings.Fields(msg)
		if len(fields) < 3 {
			return false
		}
		p.blockSince[fields[2]] = bucket
		return true

	case strings.HasPrefix(msg, "Received block "):
		fields := strings.Fields(msg)
		if len(fields) < 3 {
			return false
		}
		id := fields[2]
		since, ok := p.blockSince[id]
		if !ok {
			return true // write began before this parser started
		}
		delete(p.blockSince, id)
		if since.Equal(bucket) {
			p.bump(StateWriteBlock)
		}
		return true

	case strings.HasPrefix(msg, "Served block "):
		p.instant[p.idx[StateReadBlock]]++
		return true

	case strings.HasPrefix(msg, "Deleting block "):
		p.instant[p.idx[StateDeleteBlock]]++
		return true
	}
	return false
}
