// Package hierarchy defines the wire protocol between a root control node
// and its shard-leader processes (asdf-shardd).
//
// PR 5's in-process sharding plateaus because one process still owns every
// daemon connection and every analysis tick. The hierarchical topology
// promotes shards to separate processes: each leader runs the collection
// plane (managed per-daemon connections, shard sweeps, columnar wire) for a
// contiguous node-index range and serves merged per-tick partials upward;
// the root re-merges partials by node index, so sink output stays
// byte-identical to the single-process configuration.
//
// The leader→root hop reuses the existing RPC machinery both ways: a JSON
// sweep method (one request/response per tick, carrying per-node records
// plus leader accounting), and a columnar stream counterpart (one delta-
// encoded row per node per tick, one schema group per node) for wire =
// columnar roots — including the credit-windowed server-push subscription
// mode. This package holds only the protocol: method names, request and
// response shapes, node-range arithmetic, and the leader accounting struct.
// The leader implementation lives in internal/modules (reusing the module
// sources and shard sweeper); the binary is cmd/asdf-shardd.
package hierarchy

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ServiceLeader is the RPC service name an asdf-shardd leader announces in
// its hello.
const ServiceLeader = "asdf_shardd"

// RPC methods served by a leader.
const (
	// MethodSadcSweep runs one collection sweep over the leader's node
	// range and returns every node's record (JSON hop).
	MethodSadcSweep = "hier.sadc.sweep"
	// MethodLogSweep fetches newly finalized state vectors from every node
	// in the leader's range (JSON hop).
	MethodLogSweep = "hier.hlog.sweep"
	// MethodStatus returns the leader's accounting snapshot without
	// triggering a sweep.
	MethodStatus = "hier.status"
	// MethodSadcStream is the columnar counterpart of MethodSadcSweep: one
	// row per node per tick in a single narrow group whose leading
	// NodeIndexColumn column carries the node's offset within the range.
	// A node that failed this tick simply has no row.
	MethodSadcStream = "hier.sadc"
	// MethodLogStream is the columnar counterpart of MethodLogSweep: one
	// row per newly finalized per-second vector, tagged the same way; a
	// quiet tick is an empty frame.
	MethodLogStream = "hier.hlog"
)

// NodeIndexColumn is the leading column of every partial-stream row: the
// row's node offset within the leader's range. Keeping the node in a row
// column — rather than one schema group per node — keeps decoded rows
// O(metric width) regardless of range size.
const NodeIndexColumn = "__node_index"

// Range is a half-open node-index range [Start, End) delegated to one
// leader, in the root instance's node-list order.
type Range struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len is the number of nodes in the range.
func (r Range) Len() int { return r.End - r.Start }

// Contains reports whether node index i falls in the range.
func (r Range) Contains(i int) bool { return i >= r.Start && i < r.End }

// String renders the range in the configuration syntax, e.g. "0-64".
func (r Range) String() string {
	return strconv.Itoa(r.Start) + "-" + strconv.Itoa(r.End)
}

// ParseRange parses one "start-end" half-open range.
func ParseRange(s string) (Range, error) {
	lo, hi, ok := strings.Cut(strings.TrimSpace(s), "-")
	if !ok {
		return Range{}, fmt.Errorf("hierarchy: range %q: want start-end", s)
	}
	start, err := strconv.Atoi(strings.TrimSpace(lo))
	if err != nil {
		return Range{}, fmt.Errorf("hierarchy: range %q: %v", s, err)
	}
	end, err := strconv.Atoi(strings.TrimSpace(hi))
	if err != nil {
		return Range{}, fmt.Errorf("hierarchy: range %q: %v", s, err)
	}
	r := Range{Start: start, End: end}
	if start < 0 || end <= start {
		return Range{}, fmt.Errorf("hierarchy: range %q: want 0 <= start < end", s)
	}
	return r, nil
}

// ParseRanges parses a comma-separated list of half-open ranges
// ("0-64,64-128") and rejects overlaps. Ranges need not cover every node:
// undelegated indexes stay with the caller. n bounds the valid index space;
// n < 0 skips the bound check (for callers that validate later).
func ParseRanges(s string, n int) ([]Range, error) {
	var out []Range
	for _, part := range strings.Split(s, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		r, err := ParseRange(part)
		if err != nil {
			return nil, err
		}
		if n >= 0 && r.End > n {
			return nil, fmt.Errorf("hierarchy: range %s exceeds %d nodes", r, n)
		}
		for _, prev := range out {
			if r.Start < prev.End && prev.Start < r.End {
				return nil, fmt.Errorf("hierarchy: ranges %s and %s overlap", prev, r)
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// Stats is a leader's cumulative accounting, piggybacked on every JSON
// sweep response and served on MethodStatus, so the root's operator surface
// can federate leader health without a second connection.
type Stats struct {
	// Nodes is the size of the leader's configured node range.
	Nodes int `json:"nodes"`
	// Sweeps counts completed sweeps since the leader booted. A root that
	// sees this regress knows the leader restarted.
	Sweeps uint64 `json:"sweeps"`
	// NodeErrors counts failed per-node fetches across all sweeps.
	NodeErrors uint64 `json:"node_errors"`
	// OpenBreakers is the current count of leader→daemon circuit breakers
	// standing open.
	OpenBreakers int `json:"open_breakers"`
}

// SadcRecord is one node's sweep result on the JSON hop. Exactly one of
// Node or Err is meaningful: a failed fetch ships its error string and no
// vector.
type SadcRecord struct {
	// Warmup marks a record still priming its rate baseline (first collect
	// after the daemon-side collector was created); the root skips it
	// exactly as it skips a direct warmup record.
	Warmup bool `json:"w,omitempty"`
	// Node is the 64-column node-level metric vector.
	Node []float64 `json:"n,omitempty"`
	// Err is the per-node fetch error, empty on success.
	Err string `json:"e,omitempty"`
}

// SadcSweepResponse is the MethodSadcSweep reply: one record per node in
// range order.
type SadcSweepResponse struct {
	Records []SadcRecord `json:"records"`
	Stats   Stats        `json:"stats"`
}

// LogVector is one finalized per-second state vector on the JSON hop.
type LogVector struct {
	Time   time.Time `json:"t"`
	Counts []float64 `json:"c"`
}

// LogNode is one node's sweep result on the JSON hop: its newly finalized
// vectors, or its fetch error.
type LogNode struct {
	Vectors []LogVector `json:"v,omitempty"`
	Err     string      `json:"e,omitempty"`
}

// LogSweepResponse is the MethodLogSweep reply: one entry per node in
// range order.
type LogSweepResponse struct {
	Nodes []LogNode `json:"nodes"`
	Stats Stats     `json:"stats"`
}

// StatusResponse is the MethodStatus reply.
type StatusResponse struct {
	// Name is the leader's configured name.
	Name string `json:"name"`
	// Sadc and Log carry the per-plane accounting; nil when the leader
	// does not run that plane.
	Sadc *Stats `json:"sadc,omitempty"`
	Log  *Stats `json:"hadoop_log,omitempty"`
}

// StreamRequest opens a columnar sweep stream (MethodSadcStream or
// MethodLogStream). Nodes echoes the root's node names for the leader's
// range so the schema the leader builds matches the root's expectation
// column for column; a mismatch with the leader's own configuration is an
// open-time error rather than silent misattribution.
type StreamRequest struct {
	Nodes []string `json:"nodes"`
}
