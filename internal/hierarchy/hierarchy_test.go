package hierarchy

import "testing"

func TestParseRanges(t *testing.T) {
	got, err := ParseRanges("0-4, 4-8 ,12-16", 16)
	if err != nil {
		t.Fatal(err)
	}
	want := []Range{{0, 4}, {4, 8}, {12, 16}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if got[0].Len() != 4 || !got[0].Contains(3) || got[0].Contains(4) {
		t.Fatalf("range arithmetic wrong: %v", got[0])
	}
	if got[2].String() != "12-16" {
		t.Fatalf("String: got %q", got[2].String())
	}
}

func TestParseRangesErrors(t *testing.T) {
	for _, tc := range []struct {
		in string
		n  int
	}{
		{"0-4,2-6", 8}, // overlap
		{"4-4", 8},     // empty
		{"4-2", 8},     // inverted
		{"-1-4", 8},    // negative
		{"0-9", 8},     // exceeds node count
		{"abc", 8},     // not a range
		{"0-x", 8},     // bad end
		{"0-4,0-4", 8}, // duplicate
		{"3-5,0-4", 8}, // overlap, reversed order
	} {
		if _, err := ParseRanges(tc.in, tc.n); err == nil {
			t.Errorf("ParseRanges(%q, %d): want error", tc.in, tc.n)
		}
	}
	// Unbounded parse skips the node-count check only.
	if _, err := ParseRanges("0-1000000", -1); err != nil {
		t.Errorf("unbounded parse: %v", err)
	}
}
