package eval

import (
	"sync"
	"testing"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/hadoopsim"
)

var (
	modelOnce sync.Once
	model     *analysis.Model
	modelErr  error
)

// sharedModel trains the black-box model once for the whole test package.
func sharedModel(t *testing.T) *analysis.Model {
	t.Helper()
	modelOnce.Do(func() {
		opts := DefaultOptions()
		model, modelErr = TrainDefaultModel(opts.Slaves, opts.Seed, opts.TrainSeconds, opts.NumStates)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

func TestTrainDefaultModel(t *testing.T) {
	m := sharedModel(t)
	if m.NumStates() != DefaultOptions().NumStates {
		t.Errorf("NumStates = %d", m.NumStates())
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCollectTraceShape(t *testing.T) {
	m := sharedModel(t)
	tr, err := CollectTrace(TraceConfig{
		Slaves: 4, Seed: 5, WarmupSec: 60, DurationSec: 120,
		Fault: hadoopsim.FaultCPUHog, FaultNode: 1, InjectAtSec: 60,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Seconds != 120 || tr.Nodes != 4 {
		t.Fatalf("trace shape %dx%d", tr.Seconds, tr.Nodes)
	}
	if len(tr.BBStates) != 120 || len(tr.WBVectors) != 120 {
		t.Fatal("trace arrays wrong length")
	}
	for s := range tr.BBStates {
		if len(tr.BBStates[s]) != 4 {
			t.Fatalf("BBStates[%d] has %d nodes", s, len(tr.BBStates[s]))
		}
		for n, st := range tr.BBStates[s] {
			if st < 0 || st >= m.NumStates() {
				t.Fatalf("state out of range at s=%d n=%d: %d", s, n, st)
			}
		}
		for n := range tr.WBVectors[s] {
			if len(tr.WBVectors[s][n]) != tr.WBMetrics {
				t.Fatalf("WBVectors[%d][%d] has %d metrics", s, n, len(tr.WBVectors[s][n]))
			}
		}
	}
	// White-box vectors must show real activity (not all zeros).
	var total float64
	for s := range tr.WBVectors {
		for n := range tr.WBVectors[s] {
			for _, v := range tr.WBVectors[s][n] {
				total += v
			}
		}
	}
	if total == 0 {
		t.Error("white-box vectors are all zero; log plumbing broken")
	}
}

func TestCollectTraceValidation(t *testing.T) {
	m := sharedModel(t)
	if _, err := CollectTrace(TraceConfig{Slaves: 0, DurationSec: 10}, m); err == nil {
		t.Error("zero slaves should error")
	}
	if _, err := CollectTrace(TraceConfig{Slaves: 2, DurationSec: 10}, nil); err == nil {
		t.Error("nil model should error")
	}
	if _, err := CollectTrace(TraceConfig{
		Slaves: 2, DurationSec: 10, Fault: hadoopsim.FaultCPUHog, FaultNode: 5,
	}, m); err == nil {
		t.Error("fault node out of range should error")
	}
	if _, err := CollectTrace(TraceConfig{
		Slaves: 2, DurationSec: 10, Fault: hadoopsim.FaultCPUHog, FaultNode: 1, InjectAtSec: 99,
	}, m); err == nil {
		t.Error("inject time outside run should error")
	}
}

func TestFigure6aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	opts := DefaultOptions()
	opts.CleanDuration = 900
	m := sharedModel(t)
	points, err := Figure6a(opts, m, []float64{0, 10, 30, 60, 70})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// Shape: FPR must be monotone non-increasing in the threshold, start
	// high at threshold 0, and be low at the paper's knee (60).
	for i := 1; i < len(points); i++ {
		if points[i].FPR > points[i-1].FPR+1e-9 {
			t.Errorf("FPR increased from %.3f to %.3f at threshold %g",
				points[i-1].FPR, points[i].FPR, points[i].Param)
		}
	}
	if points[0].FPR < 0.5 {
		t.Errorf("FPR at threshold 0 = %.3f, expected high (every window flags)", points[0].FPR)
	}
	last := points[len(points)-1]
	if last.FPR > 0.25 {
		t.Errorf("FPR at threshold %g = %.3f, expected low", last.Param, last.FPR)
	}
}

func TestFigure6bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	opts := DefaultOptions()
	opts.CleanDuration = 900
	m := sharedModel(t)
	points, err := Figure6b(opts, m, []float64{0, 1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].FPR > points[i-1].FPR+1e-9 {
			t.Errorf("WB FPR increased from %.3f to %.3f at k=%g",
				points[i-1].FPR, points[i].FPR, points[i].Param)
		}
	}
	// The paper reports white-box FPR under 0.2% at k=3; our shape target
	// is simply "tiny at the knee".
	for _, p := range points {
		if p.Param >= 3 && p.FPR > 0.05 {
			t.Errorf("WB FPR at k=%g is %.3f, expected near zero", p.Param, p.FPR)
		}
	}
}

func TestFigure7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	opts := DefaultOptions()
	m := sharedModel(t)
	params := DefaultParams(m.NumStates())

	results, err := Figure7(opts, m, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results for %d faults, want 6", len(results))
	}
	byFault := make(map[hadoopsim.FaultKind]FaultResult, len(results))
	for _, r := range results {
		byFault[r.Fault] = r
	}

	// Shape 1: resource faults are detected well by the black-box path.
	for _, f := range []hadoopsim.FaultKind{hadoopsim.FaultCPUHog, hadoopsim.FaultDiskHog} {
		if ba := byFault[f].Outcomes[ApproachBlackBox].BalancedAccuracy; ba < 0.60 {
			t.Errorf("%s black-box balanced accuracy = %.2f, want >= 0.60", f, ba)
		}
	}
	// Shape 2: the white-box path handles the dormant reduce faults better
	// than the black-box path (the paper's key observation).
	for _, f := range []hadoopsim.FaultKind{hadoopsim.FaultHang1152, hadoopsim.FaultHang2080} {
		bb := byFault[f].Outcomes[ApproachBlackBox].BalancedAccuracy
		wb := byFault[f].Outcomes[ApproachWhiteBox].BalancedAccuracy
		if wb < bb-0.05 {
			t.Errorf("%s: white-box BA %.2f should not trail black-box BA %.2f", f, wb, bb)
		}
	}
	// Shape 3: mean balanced accuracies order as BB <= combined and
	// WB <= combined (within tolerance), with combined decent overall.
	bbMean := MeanBalancedAccuracy(results, ApproachBlackBox)
	wbMean := MeanBalancedAccuracy(results, ApproachWhiteBox)
	combMean := MeanBalancedAccuracy(results, ApproachCombined)
	t.Logf("mean balanced accuracy: bb=%.3f wb=%.3f combined=%.3f", bbMean, wbMean, combMean)
	if combMean < bbMean-0.02 || combMean < wbMean-0.02 {
		t.Errorf("combined BA %.2f should dominate bb %.2f / wb %.2f", combMean, bbMean, wbMean)
	}
	if combMean < 0.6 {
		t.Errorf("combined mean BA = %.2f, want >= 0.6 (paper: 0.80)", combMean)
	}
	// Shape 4: every fault is eventually fingerpointed by the combined
	// approach, and the dormant faults have the longest latency.
	var maxResourceLatency float64
	for _, f := range []hadoopsim.FaultKind{hadoopsim.FaultCPUHog, hadoopsim.FaultDiskHog} {
		l := byFault[f].Outcomes[ApproachCombined].LatencySec
		if l < 0 {
			t.Errorf("%s never fingerpointed by combined approach", f)
		}
		if l > maxResourceLatency {
			maxResourceLatency = l
		}
	}
	for _, f := range []hadoopsim.FaultKind{hadoopsim.FaultHang1152, hadoopsim.FaultHang2080} {
		l := byFault[f].Outcomes[ApproachCombined].LatencySec
		if l >= 0 && l < maxResourceLatency {
			t.Logf("note: %s latency %.0fs below resource-fault max %.0fs", f, l, maxResourceLatency)
		}
	}
}

func TestScoreGroundTruthBuckets(t *testing.T) {
	m := sharedModel(t)
	_ = m
	// Synthetic trace/verdicts to pin down the window classification.
	tr := &Trace{
		Config: TraceConfig{
			Fault: hadoopsim.FaultCPUHog, FaultNode: 1, InjectAtSec: 100,
		},
		Nodes: 3,
	}
	p := AnalysisParams{WindowSize: 60, WindowSlide: 15}
	mk := func(end int, flags ...bool) *analysis.WindowResult {
		return &analysis.WindowResult{EndIndex: end, Flagged: flags, Scores: make([]float64, len(flags))}
	}
	verdicts := []*analysis.WindowResult{
		mk(59, false, false, false),  // clean, no alarm -> TN
		mk(74, false, true, false),   // clean, alarm -> FP
		mk(120, false, false, false), // straddles injection -> excluded
		mk(175, false, true, false),  // problematic, culprit flagged -> TP
		mk(190, false, false, false), // problematic, missed -> FN
		mk(205, false, true, false),  // TP
		mk(220, false, true, false),  // TP
		mk(235, false, true, false),  // TP -> 3 consecutive at end 235
	}
	o := Score(tr, verdicts, p)
	if o.CleanWindows != 2 || o.ProblematicWindows != 5 {
		t.Fatalf("buckets: clean=%d problematic=%d", o.CleanWindows, o.ProblematicWindows)
	}
	if o.TrueNegativeRate != 0.5 {
		t.Errorf("TNR = %v, want 0.5", o.TrueNegativeRate)
	}
	if o.TruePositiveRate != 0.8 {
		t.Errorf("TPR = %v, want 0.8", o.TruePositiveRate)
	}
	if o.BalancedAccuracy != 0.65 {
		t.Errorf("BA = %v, want 0.65", o.BalancedAccuracy)
	}
	// Three consecutive culprit windows end at 205, 220, 235 -> latency
	// relative to injection (100) is 135.
	if o.LatencySec != 135 {
		t.Errorf("latency = %v, want 135", o.LatencySec)
	}
}

func TestScoreNeverDetected(t *testing.T) {
	tr := &Trace{
		Config: TraceConfig{Fault: hadoopsim.FaultCPUHog, FaultNode: 0, InjectAtSec: 10},
		Nodes:  2,
	}
	p := AnalysisParams{WindowSize: 5, WindowSlide: 5}
	verdicts := []*analysis.WindowResult{
		{EndIndex: 20, Flagged: []bool{false, false}, Scores: []float64{0, 0}},
	}
	o := Score(tr, verdicts, p)
	if o.LatencySec >= 0 {
		t.Errorf("latency = %v, want negative (never detected)", o.LatencySec)
	}
	if o.TruePositiveRate != 0 {
		t.Errorf("TPR = %v", o.TruePositiveRate)
	}
}

func TestApproachNames(t *testing.T) {
	if ApproachBlackBox.String() != "black-box" ||
		ApproachWhiteBox.String() != "white-box" ||
		ApproachCombined.String() != "combined" {
		t.Error("approach names wrong")
	}
}
