package eval

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"github.com/asdf-project/asdf/internal/rpc"
)

// WireScaleConfig sizes the wire-format measurement: per-node metric
// vectors that drift sparsely between ticks — the steady-state shape of OS
// counter collection — serialized per tick over the JSON request/response
// path and over the columnar delta stream. The measurement is codec-level
// (no sockets), so it isolates bytes-on-the-wire and serialization cost
// from scheduling, which the shardscale experiment covers.
type WireScaleConfig struct {
	// NodeCounts are the simulated cluster sizes to measure.
	NodeCounts []int
	// Columns is the per-node metric vector width (sadc's node group is 64).
	Columns int
	// ChangedPerTick is how many of those columns drift each tick; the rest
	// repeat their previous value, as most OS counters do at steady state.
	ChangedPerTick int
	// Ticks is how many collection ticks to serialize per configuration.
	Ticks int
	// Seed drives the deterministic metric walk.
	Seed int64
}

// DefaultWireScaleConfig mirrors the CI wire suite: 128 to 1024 nodes, the
// sadc node-vector width, ~10% of columns moving per tick.
func DefaultWireScaleConfig() WireScaleConfig {
	return WireScaleConfig{
		NodeCounts:     []int{128, 512, 1024},
		Columns:        64,
		ChangedPerTick: 6,
		Ticks:          200,
		Seed:           42,
	}
}

// WireScalePoint is one measured (nodes, wire) cell.
type WireScalePoint struct {
	Nodes int    `json:"nodes"`
	Wire  string `json:"wire"`
	// BytesPerTick is the full-cluster wire cost of one collection tick:
	// request and response bodies plus the 4-byte frame headers.
	BytesPerTick float64 `json:"bytes_per_tick"`
	// NsPerMetric is the serialize+deserialize cost per metric value.
	NsPerMetric float64 `json:"ns_per_metric"`
	// ReductionVsJSON is the JSON cell's bytes-per-tick over this cell's;
	// 1.0 for the JSON cells themselves.
	ReductionVsJSON float64 `json:"reduction_vs_json"`
}

// wireWorkload generates the deterministic per-node metric walk both
// formats serialize, so the comparison sees identical data.
type wireWorkload struct {
	vals    [][]float64
	rng     *rand.Rand
	changed int
}

func newWireWorkload(nodes, cols, changed int, seed int64) *wireWorkload {
	w := &wireWorkload{
		vals:    make([][]float64, nodes),
		rng:     rand.New(rand.NewSource(seed)),
		changed: changed,
	}
	for i := range w.vals {
		v := make([]float64, cols)
		for j := range v {
			v[j] = w.rng.Float64() * 1000
		}
		w.vals[i] = v
	}
	return w
}

// tick drifts each node's vector in place.
func (w *wireWorkload) tick() {
	for _, v := range w.vals {
		for c := 0; c < w.changed; c++ {
			j := w.rng.Intn(len(v))
			v[j] += w.rng.Float64() - 0.5
		}
	}
}

// Wire shapes of the JSON measurement, mirroring the production sadc
// request/response envelopes.
type wireScaleRequest struct {
	ID     uint64 `json:"id"`
	Method string `json:"method"`
}

type wireScaleRecord struct {
	Warmup bool      `json:"warmup,omitempty"`
	Node   []float64 `json:"node"`
}

type wireScaleResponse struct {
	ID     uint64          `json:"id"`
	Result wireScaleRecord `json:"result"`
}

type wireScalePullParams struct {
	S uint64 `json:"s"`
}

type wireScalePullRequest struct {
	ID     uint64              `json:"id"`
	Method string              `json:"method"`
	Params wireScalePullParams `json:"params"`
}

// MeasureWireScaling serializes cfg.Ticks collection ticks at each node
// count over both wire formats and reports bytes per tick and
// serialization cost per metric, JSON cell first.
func MeasureWireScaling(cfg WireScaleConfig) ([]WireScalePoint, error) {
	if cfg.Ticks <= 0 || cfg.Columns <= 0 {
		return nil, fmt.Errorf("wirescale: ticks and columns must be positive")
	}
	if cfg.ChangedPerTick > cfg.Columns {
		return nil, fmt.Errorf("wirescale: changed-per-tick %d exceeds %d columns", cfg.ChangedPerTick, cfg.Columns)
	}
	var points []WireScalePoint
	for _, nodes := range cfg.NodeCounts {
		jsonBytes, jsonNs, err := measureJSONWire(nodes, cfg)
		if err != nil {
			return nil, err
		}
		colBytes, colNs, err := measureColumnarWire(nodes, cfg)
		if err != nil {
			return nil, err
		}
		metrics := float64(cfg.Ticks) * float64(nodes) * float64(cfg.Columns)
		reduction := 0.0
		if colBytes > 0 {
			reduction = float64(jsonBytes) / float64(colBytes)
		}
		points = append(points,
			WireScalePoint{Nodes: nodes, Wire: "json",
				BytesPerTick:    float64(jsonBytes) / float64(cfg.Ticks),
				NsPerMetric:     float64(jsonNs.Nanoseconds()) / metrics,
				ReductionVsJSON: 1},
			WireScalePoint{Nodes: nodes, Wire: "columnar",
				BytesPerTick:    float64(colBytes) / float64(cfg.Ticks),
				NsPerMetric:     float64(colNs.Nanoseconds()) / metrics,
				ReductionVsJSON: reduction})
	}
	return points, nil
}

// measureJSONWire round-trips every node's vector through the JSON
// request/response envelopes once per tick.
func measureJSONWire(nodes int, cfg WireScaleConfig) (bytes int64, elapsed time.Duration, err error) {
	w := newWireWorkload(nodes, cfg.Columns, cfg.ChangedPerTick, cfg.Seed)
	var req wireScaleRequest
	var resp wireScaleResponse
	start := time.Now()
	for t := 0; t < cfg.Ticks; t++ {
		w.tick()
		for n := 0; n < nodes; n++ {
			reqBody, merr := json.Marshal(wireScaleRequest{ID: uint64(t + 1), Method: "sadc.collect"})
			if merr != nil {
				return 0, 0, merr
			}
			respBody, merr := json.Marshal(wireScaleResponse{ID: uint64(t + 1),
				Result: wireScaleRecord{Node: w.vals[n]}})
			if merr != nil {
				return 0, 0, merr
			}
			if uerr := json.Unmarshal(reqBody, &req); uerr != nil {
				return 0, 0, uerr
			}
			resp.Result.Node = resp.Result.Node[:0]
			if uerr := json.Unmarshal(respBody, &resp); uerr != nil {
				return 0, 0, uerr
			}
			bytes += int64(4 + len(reqBody) + 4 + len(respBody))
		}
	}
	return bytes, time.Since(start), nil
}

// measureColumnarWire pulls every node's delta frame once per tick through
// a per-node encoder/decoder pair, the per-connection state of the stream
// protocol.
func measureColumnarWire(nodes int, cfg WireScaleConfig) (bytes int64, elapsed time.Duration, err error) {
	w := newWireWorkload(nodes, cfg.Columns, cfg.ChangedPerTick, cfg.Seed)
	cols := make([]string, cfg.Columns)
	for i := range cols {
		cols[i] = fmt.Sprintf("metric_%02d", i)
	}
	encs := make([]*rpc.ColumnarEncoder, nodes)
	decs := make([]*rpc.ColumnarDecoder, nodes)
	for n := range encs {
		encs[n] = rpc.NewColumnarEncoder(rpc.StreamSchema{
			Method: "sadc.metrics",
			Node:   fmt.Sprintf("n%04d", n),
			Groups: []rpc.ColumnGroup{{Name: "node", Columns: cols}},
		})
		decs[n] = rpc.NewColumnarDecoder()
	}
	start := time.Now()
	for t := 0; t < cfg.Ticks; t++ {
		w.tick()
		for n := 0; n < nodes; n++ {
			reqBody, merr := json.Marshal(wireScalePullRequest{ID: uint64(t + 1),
				Method: "rpc.stream.pull", Params: wireScalePullParams{S: 1}})
			if merr != nil {
				return 0, 0, merr
			}
			encs[n].Begin()
			if aerr := encs[n].AppendRow(int64(t+1)*int64(time.Second), false, nil, w.vals[n]); aerr != nil {
				return 0, 0, aerr
			}
			frame := encs[n].Finish()
			if derr := decs[n].Decode(frame); derr != nil {
				return 0, 0, derr
			}
			if rows := decs[n].Rows(); len(rows) != 1 {
				return 0, 0, fmt.Errorf("wirescale: %d rows decoded, want 1", len(rows))
			}
			bytes += int64(4 + len(reqBody) + 4 + len(frame))
		}
	}
	return bytes, time.Since(start), nil
}
