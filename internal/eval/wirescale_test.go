package eval

import "testing"

// TestMeasureWireScaling runs a scaled-down wire measurement and checks the
// structural claims: the columnar cell must cost a small fraction of the
// JSON cell's bytes per tick at steady state, and byte counts must grow
// linearly with the node count.
func TestMeasureWireScaling(t *testing.T) {
	cfg := WireScaleConfig{
		NodeCounts:     []int{16, 32},
		Columns:        64,
		ChangedPerTick: 6,
		Ticks:          50,
		Seed:           7,
	}
	points, err := MeasureWireScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4 (json + columnar at 2 node counts)", len(points))
	}
	for i := 0; i < len(points); i += 2 {
		j, c := points[i], points[i+1]
		if j.Wire != "json" || c.Wire != "columnar" || j.Nodes != c.Nodes {
			t.Fatalf("cell pairing broken: %+v / %+v", j, c)
		}
		if j.BytesPerTick <= 0 || c.BytesPerTick <= 0 || j.NsPerMetric <= 0 || c.NsPerMetric <= 0 {
			t.Fatalf("non-positive measurements: %+v / %+v", j, c)
		}
		if j.ReductionVsJSON != 1 {
			t.Errorf("json cell reduction = %v, want 1", j.ReductionVsJSON)
		}
		// The acceptance floor for the committed artifact is 5x at 512
		// nodes; steady-state delta frames clear it with margin at any
		// node count since the encoding is per-node state.
		if c.ReductionVsJSON < 5 {
			t.Errorf("columnar reduction at %d nodes = %.1fx, want >= 5x", c.Nodes, c.ReductionVsJSON)
		}
	}
	// Bytes per tick scale with nodes: the 32-node cells must cost roughly
	// twice the 16-node cells.
	ratio := points[3].BytesPerTick / points[1].BytesPerTick
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("columnar bytes/tick 32 vs 16 nodes = %.2fx, want ~2x", ratio)
	}
}

func TestMeasureWireScalingValidation(t *testing.T) {
	if _, err := MeasureWireScaling(WireScaleConfig{NodeCounts: []int{8}}); err == nil {
		t.Error("zero ticks accepted")
	}
	if _, err := MeasureWireScaling(WireScaleConfig{NodeCounts: []int{8}, Ticks: 1, Columns: 4, ChangedPerTick: 8}); err == nil {
		t.Error("changed-per-tick > columns accepted")
	}
}
