package eval

import (
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// TestRestartDrill is the crash-safety acceptance drill: a control node is
// killed without teardown mid-outage and a second one boots from its state
// file. The restored life must resume the quarantine cooldown where it left
// off, re-probe the restored-open breakers on a budgeted stagger, refuse to
// re-publish at or before the persisted watermark, and converge once the
// daemons recover. CI runs this under -race with a counter trace artifact.
func TestRestartDrill(t *testing.T) {
	cfg := DefaultRestartDrillConfig(t.TempDir())
	cfg.TraceWriter = faultTrace(t, "restart-drill")
	metrics := telemetry.NewRegistry()
	cfg.Metrics = metrics

	report, err := RunRestartDrill(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Life 1 died with the sadc victim quarantined and a published watermark.
	if report.QuarantineAtCrash.State != core.SupervisorQuarantined {
		t.Fatalf("at crash, sv state = %s, want quarantined", report.QuarantineAtCrash.State)
	}
	if report.WatermarkAtCrash.IsZero() {
		t.Fatal("life 1 persisted no replay watermark")
	}

	// Boot-time restore accounting.
	rs := report.Restore
	if rs.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", rs.Restarts)
	}
	if !rs.LockReclaimed {
		t.Error("stale dead-PID lock was not reclaimed")
	}
	if rs.SnapshotQuarantined {
		t.Error("intact snapshot was quarantined as corrupt")
	}
	if rs.RestoredSupervisors < 1 {
		t.Errorf("restored supervisors = %d, want >= 1", rs.RestoredSupervisors)
	}
	if rs.RestoredBreakers < uint64(len(cfg.Victims)) {
		t.Errorf("restored breakers = %d, want >= %d", rs.RestoredBreakers, len(cfg.Victims))
	}
	if rs.RestoredWatermarks < 1 {
		t.Errorf("restored watermarks = %d, want >= 1", rs.RestoredWatermarks)
	}

	// The quarantine resumed its cooldown clock: same absolute deadline,
	// not a reset one.
	if report.QuarantineRestored.State != core.SupervisorQuarantined {
		t.Errorf("after restore, sv state = %s, want quarantined", report.QuarantineRestored.State)
	}
	if !report.QuarantineRestored.ReopenAt.Equal(report.QuarantineAtCrash.ReopenAt) {
		t.Errorf("restored ReopenAt = %v, want the pre-crash deadline %v",
			report.QuarantineRestored.ReopenAt, report.QuarantineAtCrash.ReopenAt)
	}
	if !report.WatermarkRestored.Equal(report.WatermarkAtCrash) {
		t.Errorf("restored watermark = %v, want %v", report.WatermarkRestored, report.WatermarkAtCrash)
	}

	// Staggered re-probes: never more dials per tick than the budget, and
	// spread over more than one tick.
	if report.MaxProbesPerTick == 0 {
		t.Error("restarted node never probed the dead daemons")
	}
	if report.MaxProbesPerTick > cfg.ProbeBudget {
		t.Errorf("max probes per tick = %d, exceeds budget %d", report.MaxProbesPerTick, cfg.ProbeBudget)
	}
	if report.ProbeTicks < 2 {
		t.Errorf("probe ticks = %d, want >= 2 (staggered)", report.ProbeTicks)
	}

	// After the daemons revive, the quarantined instance is readmitted.
	if !report.Readmitted {
		t.Errorf("sv not readmitted: final state %s, readmissions %d",
			report.FinalQuarantined.State, report.FinalQuarantined.Readmissions)
	}

	// The combined two-life lineage has no duplicate and no rewound
	// timestamps on any node stream, despite the second life's fresh
	// subscriptions replaying each daemon's full history.
	if report.CSVRows == 0 {
		t.Fatal("no CSV rows published across both lives")
	}
	if report.DuplicateRows != 0 {
		t.Errorf("duplicate rows across restart = %d, want 0", report.DuplicateRows)
	}
	if report.OutOfOrderRows != 0 {
		t.Errorf("out-of-order rows across restart = %d, want 0", report.OutOfOrderRows)
	}
	if report.SurvivorPublishesLife2 == 0 {
		t.Error("restarted node published nothing from surviving daemons")
	}

	// The final status report carries the restart section, and the
	// asdf_state_* series agree with it.
	if report.Status.Restart == nil {
		t.Fatal("status report has no restart section")
	}
	final := *report.Status.Restart
	got := scrape(t, metrics)
	for name, want := range map[string]float64{
		"asdf_state_restarts":                float64(final.Restarts),
		"asdf_state_snapshots_written_total": float64(final.SnapshotsWritten),
		"asdf_state_snapshot_bytes":          float64(final.SnapshotBytes),
		"asdf_state_restored_supervisors":    float64(final.RestoredSupervisors),
		"asdf_state_restored_breakers":       float64(final.RestoredBreakers),
		"asdf_state_restored_watermarks":     float64(final.RestoredWatermarks),
	} {
		if got[name] != want {
			t.Errorf("%s = %v, want %v (status report value)", name, got[name], want)
		}
	}
	if got["asdf_state_snapshot_write_errors_total"] != 0 {
		t.Errorf("snapshot write errors = %v, want 0", got["asdf_state_snapshot_write_errors_total"])
	}
	if final.LastSnapshotAt.IsZero() || !report.Status.Time.After(final.LastSnapshotAt.Add(-time.Minute)) {
		t.Errorf("implausible last snapshot time %v (status time %v)", final.LastSnapshotAt, report.Status.Time)
	}
}
