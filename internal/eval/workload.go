package eval

import (
	"fmt"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/sadc"
)

// WorkloadChangeResult quantifies §2.1's core argument: workload changes
// "can often be mistaken for anomalous behavior" by threshold-based
// detection, while peer comparison is immune because all slaves change
// together. Both analyses run over the same problem-free trace whose
// GridMix composition switches mid-run.
type WorkloadChangeResult struct {
	// SwitchAtSec is when the workload composition changed.
	SwitchAtSec int
	// PeerFPRBefore/After: ASDF's black-box peer comparison.
	PeerFPRBefore, PeerFPRAfter float64
	// RuleFPRBefore/After: the static-threshold baseline (the Table-1
	// Nagios/Ganglia-style status quo), calibrated on the first phase.
	RuleFPRBefore, RuleFPRAfter float64
}

// ruleHeadroom is the slack a conservative operator leaves above the
// observed calibration maximum when configuring static alert thresholds.
const ruleHeadroom = 1.25

// WorkloadChange runs the workload-change experiment: phase 1 is a
// light/interactive mix (webdataScan + combiner), phase 2 a heavy mix
// (javaSort + monsterQuery). The static baseline's per-metric thresholds
// are calibrated to the phase-1 maxima (plus headroom); ASDF's black-box
// analysis runs with the standard trained model and threshold.
func WorkloadChange(opts Options, model *analysis.Model, params AnalysisParams) (*WorkloadChangeResult, error) {
	switchAt := opts.CleanDuration / 2
	tr, err := CollectTrace(TraceConfig{
		Slaves:      opts.Slaves,
		Seed:        opts.Seed + 900,
		WarmupSec:   opts.WarmupSec,
		DurationSec: opts.CleanDuration,
		RecordRaw:   true,
		Phases: []WorkloadPhase{
			{AtSec: -1, Classes: []string{"webdataScan", "combiner"}},
			{AtSec: switchAt, Classes: []string{"javaSort", "monsterQuery"}},
		},
	}, model)
	if err != nil {
		return nil, err
	}
	res := &WorkloadChangeResult{SwitchAtSec: switchAt}

	// ASDF's peer comparison over the whole trace, split at the switch.
	verdicts, err := EvaluateBB(tr, params)
	if err != nil {
		return nil, err
	}
	var beforeFP, beforeN, afterFP, afterN int
	for _, v := range verdicts {
		start := v.EndIndex - params.WindowSize + 1
		switch {
		case v.EndIndex < switchAt:
			beforeN++
			if v.AnyFlagged() {
				beforeFP++
			}
		case start >= switchAt:
			afterN++
			if v.AnyFlagged() {
				afterFP++
			}
		}
	}
	if beforeN == 0 || afterN == 0 {
		return nil, fmt.Errorf("eval: workload change run too short for both phases")
	}
	res.PeerFPRBefore = float64(beforeFP) / float64(beforeN)
	res.PeerFPRAfter = float64(afterFP) / float64(afterN)

	// Static-threshold baseline: calibrate per-metric maxima on phase 1
	// (excluding the first window, which may carry warmup transients).
	indexes, err := sadc.NodeMetricIndexes(sadc.AnalysisMetricNames)
	if err != nil {
		return nil, err
	}
	limits := make([]float64, len(indexes))
	for s := params.WindowSize; s < switchAt; s++ {
		for n := range tr.RawNode[s] {
			for j, idx := range indexes {
				if v := tr.RawNode[s][n][idx]; v > limits[j] {
					limits[j] = v
				}
			}
		}
	}
	for j := range limits {
		limits[j] *= ruleHeadroom
	}
	ruleFPR := func(from, to int) float64 {
		windows, alarms := 0, 0
		for end := from + params.WindowSize - 1; end < to; end += params.WindowSlide {
			windows++
			fired := false
			for s := end - params.WindowSize + 1; s <= end && !fired; s++ {
				for n := range tr.RawNode[s] {
					for j, idx := range indexes {
						if tr.RawNode[s][n][idx] > limits[j] {
							fired = true
							break
						}
					}
					if fired {
						break
					}
				}
			}
			if fired {
				alarms++
			}
		}
		if windows == 0 {
			return 0
		}
		return float64(alarms) / float64(windows)
	}
	// The calibration interval is excluded from "before" scoring; a static
	// threshold calibrated on its own data trivially never fires there, so
	// score the remainder of phase 1.
	res.RuleFPRBefore = ruleFPR(params.WindowSize, switchAt)
	res.RuleFPRAfter = ruleFPR(switchAt, tr.Seconds)
	return res, nil
}
