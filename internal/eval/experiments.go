package eval

import (
	"fmt"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/hadoopsim"
)

// Options sizes the reproduction experiments. The paper ran 50-node EC2
// clusters; the defaults here use a smaller cluster so the full suite runs
// in seconds, and scale up cleanly via Slaves.
type Options struct {
	Slaves        int
	Seed          int64
	TrainSeconds  int // fault-free seconds used to train the model
	NumStates     int // k-means centroids
	WarmupSec     int
	CleanDuration int // recorded seconds for problem-free runs (Fig 6)
	FaultDuration int // recorded seconds for fault runs (Fig 7)
	InjectAtSec   int // injection time within fault runs
	FaultNode     int
}

// DefaultOptions returns the experiment sizing used by the test suite and
// the default bench run.
func DefaultOptions() Options {
	return Options{
		Slaves:        8,
		Seed:          1,
		TrainSeconds:  300,
		NumStates:     4,
		WarmupSec:     120,
		CleanDuration: 1200,
		FaultDuration: 1500,
		InjectAtSec:   600,
		FaultNode:     2,
	}
}

// SweepPoint is one point of a Figure 6 curve.
type SweepPoint struct {
	Param float64 // threshold (6a) or k (6b)
	FPR   float64 // per-window false-positive rate, in [0,1]
}

// Figure6aThresholds is the paper's sweep range for the black-box
// threshold (0..70).
func Figure6aThresholds() []float64 {
	out := make([]float64, 0, 15)
	for t := 0.0; t <= 70; t += 5 {
		out = append(out, t)
	}
	return out
}

// Figure6bKs is the paper's sweep range for the white-box k (0..5).
func Figure6bKs() []float64 {
	return []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
}

// Figure6a reproduces the black-box false-positive sweep: FPR on a
// problem-free trace as a function of the L1 threshold.
func Figure6a(opts Options, model *analysis.Model, thresholds []float64) ([]SweepPoint, error) {
	tr, err := cleanTrace(opts, model)
	if err != nil {
		return nil, err
	}
	return sweepBB(tr, opts, model, thresholds)
}

// Figure6b reproduces the white-box false-positive sweep: FPR on a
// problem-free trace as a function of k.
func Figure6b(opts Options, model *analysis.Model, ks []float64) ([]SweepPoint, error) {
	tr, err := cleanTrace(opts, model)
	if err != nil {
		return nil, err
	}
	return sweepWB(tr, opts, ks)
}

// Figure6 computes both sweeps over a single problem-free trace.
func Figure6(opts Options, model *analysis.Model, thresholds, ks []float64) (bb, wb []SweepPoint, err error) {
	tr, err := cleanTrace(opts, model)
	if err != nil {
		return nil, nil, err
	}
	if bb, err = sweepBB(tr, opts, model, thresholds); err != nil {
		return nil, nil, err
	}
	if wb, err = sweepWB(tr, opts, ks); err != nil {
		return nil, nil, err
	}
	return bb, wb, nil
}

func cleanTrace(opts Options, model *analysis.Model) (*Trace, error) {
	return CollectTrace(TraceConfig{
		Slaves:      opts.Slaves,
		Seed:        opts.Seed + 100,
		WarmupSec:   opts.WarmupSec,
		DurationSec: opts.CleanDuration,
		Fault:       hadoopsim.FaultNone,
	}, model)
}

func sweepBB(tr *Trace, opts Options, model *analysis.Model, thresholds []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(thresholds))
	for _, th := range thresholds {
		p := DefaultParams(model.NumStates())
		p.BBThreshold = th
		verdicts, err := EvaluateBB(tr, p)
		if err != nil {
			return nil, err
		}
		o := Score(tr, verdicts, p)
		out = append(out, SweepPoint{Param: th, FPR: o.FalsePositiveRate})
	}
	return out, nil
}

func sweepWB(tr *Trace, opts Options, ks []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(ks))
	for _, k := range ks {
		p := DefaultParams(1)
		p.WBK = k
		verdicts, err := EvaluateWB(tr, p)
		if err != nil {
			return nil, err
		}
		o := Score(tr, verdicts, p)
		out = append(out, SweepPoint{Param: k, FPR: o.FalsePositiveRate})
	}
	return out, nil
}

// FaultResult is one fault's row of Figures 7(a) and 7(b): balanced
// accuracy and fingerpointing latency per approach.
type FaultResult struct {
	Fault    hadoopsim.FaultKind
	Outcomes map[Approach]Outcome
}

// Figure7 reproduces the fault-injection experiments: for each Table-2
// fault, one monitored run with the fault injected mid-run, evaluated under
// all three approaches at the chosen operating point.
func Figure7(opts Options, model *analysis.Model, params AnalysisParams) ([]FaultResult, error) {
	results := make([]FaultResult, 0, len(hadoopsim.TableTwoFaults))
	for fi, fault := range hadoopsim.TableTwoFaults {
		tr, err := CollectTrace(TraceConfig{
			Slaves:      opts.Slaves,
			Seed:        opts.Seed + 200 + int64(fi),
			WarmupSec:   opts.WarmupSec,
			DurationSec: opts.FaultDuration,
			Fault:       fault,
			FaultNode:   opts.FaultNode,
			InjectAtSec: opts.InjectAtSec,
		}, model)
		if err != nil {
			return nil, fmt.Errorf("eval: fault %s: %w", fault, err)
		}
		fr := FaultResult{Fault: fault, Outcomes: make(map[Approach]Outcome, 3)}
		bb, err := EvaluateBB(tr, params)
		if err != nil {
			return nil, err
		}
		wb, err := EvaluateWB(tr, params)
		if err != nil {
			return nil, err
		}
		combined, err := CombineVerdicts(bb, wb)
		if err != nil {
			return nil, err
		}
		fr.Outcomes[ApproachBlackBox] = Score(tr, bb, params)
		fr.Outcomes[ApproachWhiteBox] = Score(tr, wb, params)
		fr.Outcomes[ApproachCombined] = Score(tr, combined, params)
		results = append(results, fr)
	}
	return results, nil
}

// MeanBalancedAccuracy averages an approach's balanced accuracy over all
// fault results (the paper's headline: BB 71%, WB 78%, combined 80%).
func MeanBalancedAccuracy(results []FaultResult, a Approach) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.Outcomes[a].BalancedAccuracy
	}
	return sum / float64(len(results))
}
