package eval

import (
	"testing"
	"time"
)

// TestMeasureShardScaling runs a scaled-down shard-scaling measurement and
// checks the latency-bound arithmetic: per-tick time near
// nodes/(shards*fanout) round trips, so the sharded sweep must beat the
// serial one comfortably once nodes far exceed the default fanout.
func TestMeasureShardScaling(t *testing.T) {
	cfg := ShardScaleConfig{
		NodeCounts:  []int{128},
		Shards:      4,
		ShardFanout: 16,
		RPCLatency:  300 * time.Microsecond,
		Ticks:       5,
	}
	points, err := MeasureShardScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2 (serial + sharded)", len(points))
	}
	serial, sharded := points[0], points[1]
	if serial.Shards != 1 || serial.SpeedupVsSerial != 1 {
		t.Errorf("serial cell = %+v", serial)
	}
	if sharded.Shards != 4 || sharded.Nodes != 128 {
		t.Errorf("sharded cell = %+v", sharded)
	}
	if serial.PerTickMs <= 0 || sharded.PerTickMs <= 0 {
		t.Fatalf("non-positive timings: %+v %+v", serial, sharded)
	}
	// 128 nodes: 8 serial waves of 16 vs 2 sharded waves of 64 — a 4x
	// structural advantage; 1.5x leaves slack for scheduling noise.
	if sharded.SpeedupVsSerial < 1.5 {
		t.Errorf("sharded speedup = %.2fx, want >= 1.5x (serial %.2fms, sharded %.2fms)",
			sharded.SpeedupVsSerial, serial.PerTickMs, sharded.PerTickMs)
	}
}

func TestMeasureShardScalingRejectsZeroTicks(t *testing.T) {
	if _, err := MeasureShardScaling(ShardScaleConfig{NodeCounts: []int{8}}); err == nil {
		t.Error("zero ticks accepted")
	}
}
