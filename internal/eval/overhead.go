package eval

import (
	"runtime"
	"time"

	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/sadc"
)

// OverheadRow is one row of Table 3: a monitoring process's CPU and memory
// cost. CPUPct is the percentage of one core consumed at a 1 Hz collection
// rate; MemoryMB is the resident heap attributable to the process's state.
type OverheadRow struct {
	Process  string
	CPUPct   float64
	MemoryMB float64
}

// MeasureTable3 reproduces the monitoring-overhead table by timing each
// collection path on a busy simulated node: the per-iteration CPU time at
// 1 Hz is the %CPU of one core. Memory is measured as the live-heap growth
// after instantiating each collector's state and running it to steady
// state.
func MeasureTable3(iterations int) ([]OverheadRow, error) {
	if iterations <= 0 {
		iterations = 200
	}
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(4, 99))
	if err != nil {
		return nil, err
	}
	c.RunFor(2 * time.Minute) // busy steady state
	node := c.Slave(0)

	rows := make([]OverheadRow, 0, 3)

	// hadoop_log_rpcd: incremental parse of both logs.
	heapBefore := liveHeap()
	ttSrc := modules.NewBufferLogSource(hadooplog.KindTaskTracker, node.TaskTrackerLog())
	dnSrc := modules.NewBufferLogSource(hadooplog.KindDataNode, node.DataNodeLog())
	start := time.Now()
	for i := 0; i < iterations; i++ {
		c.Tick()
		if _, err := ttSrc.Fetch(c.Now()); err != nil {
			return nil, err
		}
		if _, err := dnSrc.Fetch(c.Now()); err != nil {
			return nil, err
		}
	}
	hlPerIter := time.Since(start).Seconds() / float64(iterations)
	rows = append(rows, OverheadRow{
		Process:  "hadoop_log_rpcd",
		CPUPct:   hlPerIter * 100,
		MemoryMB: heapDeltaMB(heapBefore),
	})

	// sadc_rpcd: one full /proc collection per iteration.
	heapBefore = liveHeap()
	collector := sadc.NewCollector(node)
	start = time.Now()
	for i := 0; i < iterations; i++ {
		c.Tick()
		if _, err := collector.Collect(); err != nil {
			return nil, err
		}
	}
	sadcPerIter := time.Since(start).Seconds() / float64(iterations)
	rows = append(rows, OverheadRow{
		Process:  "sadc_rpcd",
		CPUPct:   sadcPerIter * 100,
		MemoryMB: heapDeltaMB(heapBefore),
	})

	// fpt-core: the control node's full analysis pipeline per iteration
	// (all nodes' collection plus both analyses), measured via the module
	// pipeline over the simulated cluster.
	heapBefore = liveHeap()
	pipe, err := newOverheadPipeline(c)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < iterations; i++ {
		c.Tick()
		if err := pipe.Tick(c.Now()); err != nil {
			return nil, err
		}
	}
	corePerIter := time.Since(start).Seconds() / float64(iterations)
	rows = append(rows, OverheadRow{
		Process:  "fpt-core",
		CPUPct:   corePerIter * 100,
		MemoryMB: heapDeltaMB(heapBefore),
	})
	return rows, nil
}

func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func heapDeltaMB(before uint64) float64 {
	after := liveHeap()
	if after < before {
		return 0
	}
	return float64(after-before) / (1 << 20)
}

// ticker abstracts the engine for the overhead pipeline.
type ticker interface {
	Tick(now time.Time) error
}

// BandwidthRow is one row of Table 4: the RPC cost of one collection type.
type BandwidthRow struct {
	RPCType string
	// StaticKB is the connection-setup traffic (hello exchange), kB.
	StaticKB float64
	// PerIterKBs is steady-state traffic per one-second iteration, kB/s.
	PerIterKBs float64
}

// MeasureTable4 reproduces the RPC-bandwidth table with real TCP servers:
// a sadc_rpcd and hadoop_log_rpcd serve one busy simulated node, and the
// client-side byte counters give the exact static and per-iteration wire
// traffic for each of the paper's three RPC types.
func MeasureTable4(iterations int) ([]BandwidthRow, error) {
	if iterations <= 0 {
		iterations = 60
	}
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(4, 77))
	if err != nil {
		return nil, err
	}
	c.RunFor(2 * time.Minute)
	node := c.Slave(0)

	sadcSrv := rpc.NewServer(modules.ServiceSadc)
	modules.RegisterSadcServer(sadcSrv, node)
	sadcAddr, err := sadcSrv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer closeQuiet(sadcSrv)

	hlSrv := rpc.NewServer(modules.ServiceHadoopLog)
	modules.RegisterHadoopLogServer(hlSrv, node.TaskTrackerLog(), node.DataNodeLog(), c.Now)
	hlAddr, err := hlSrv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer closeQuiet(hlSrv)

	sadcClient, err := rpc.Dial(sadcAddr.String(), "asdf-bench")
	if err != nil {
		return nil, err
	}
	defer closeQuiet(sadcClient)
	dnClient, err := rpc.Dial(hlAddr.String(), "asdf-bench")
	if err != nil {
		return nil, err
	}
	defer closeQuiet(dnClient)
	ttClient, err := rpc.Dial(hlAddr.String(), "asdf-bench")
	if err != nil {
		return nil, err
	}
	defer closeQuiet(ttClient)

	staticOf := func(client *rpc.Client) float64 {
		sent, recv := client.Stats()
		return float64(sent+recv) / 1024
	}
	sadcStatic := staticOf(sadcClient)
	dnStatic := staticOf(dnClient)
	ttStatic := staticOf(ttClient)

	sadcSource := modules.NewRPCMetricSource(sadcClient)
	dnSource := modules.NewRPCLogSource(dnClient, hadooplog.KindDataNode)
	ttSource := modules.NewRPCLogSource(ttClient, hadooplog.KindTaskTracker)

	s0s, s0r := sadcClient.Stats()
	d0s, d0r := dnClient.Stats()
	t0s, t0r := ttClient.Stats()
	for i := 0; i < iterations; i++ {
		c.Tick()
		if _, err := sadcSource.Collect(); err != nil {
			return nil, err
		}
		if _, err := dnSource.Fetch(c.Now()); err != nil {
			return nil, err
		}
		if _, err := ttSource.Fetch(c.Now()); err != nil {
			return nil, err
		}
	}
	perIter := func(client *rpc.Client, s0, r0 uint64) float64 {
		s1, r1 := client.Stats()
		return float64((s1-s0)+(r1-r0)) / 1024 / float64(iterations)
	}

	rows := []BandwidthRow{
		{RPCType: "sadc-tcp", StaticKB: sadcStatic, PerIterKBs: perIter(sadcClient, s0s, s0r)},
		{RPCType: "hl-dn-tcp", StaticKB: dnStatic, PerIterKBs: perIter(dnClient, d0s, d0r)},
		{RPCType: "hl-tt-tcp", StaticKB: ttStatic, PerIterKBs: perIter(ttClient, t0s, t0r)},
	}
	var sum BandwidthRow
	sum.RPCType = "TCP Sum"
	for _, r := range rows {
		sum.StaticKB += r.StaticKB
		sum.PerIterKBs += r.PerIterKBs
	}
	return append(rows, sum), nil
}

func closeQuiet(c interface{ Close() error }) {
	_ = c.Close()
}
