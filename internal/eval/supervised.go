package eval

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// The supervised-runtime acceptance scenario: a fan DAG whose instances
// include a panicking module and a wedging module alongside healthy
// siblings. The engine must keep producing correct sink output for the
// unaffected instances on every tick, quarantine both offenders within
// their failure budget, re-admit the panicker once it recovers, and report
// all of it through the status surface — fetched here over the real status
// RPC, end to end.

// SupervisedConfig sizes the scenario. Ticks are virtual seconds; only the
// watchdog deadline and the wedger's sleep are wall-clock (a wedged module
// does not advance virtual time).
type SupervisedConfig struct {
	// Siblings is the number of healthy passthrough instances that must be
	// unaffected by their misbehaving peers.
	Siblings int
	// Ticks is the total virtual-time run length.
	Ticks int
	// RunTimeout is the watchdog deadline configured on the wedger;
	// WedgeFor is how long its Run actually sleeps (wall clock).
	RunTimeout time.Duration
	WedgeFor   time.Duration
	// QuarantineThreshold / QuarantineCooldownSec configure the failure
	// budget on both offenders (cooldown in virtual seconds).
	QuarantineThreshold   int
	QuarantineCooldownSec int
	// The panicker runs clean before PanicFromTick, panics every run from
	// then on, and is healthy again at PanicRecoverAtTick (0 = never
	// recovers).
	PanicFromTick      int
	PanicRecoverAtTick int
	// Degrade is the gap-fill policy on the offenders ("skip", "hold",
	// "zero").
	Degrade string
	// TraceWriter, when non-nil, receives one counter line per tick (the
	// CI fault drill points this at its artifact file).
	TraceWriter io.Writer
	// Metrics, when non-nil, receives the engine and supervisor telemetry
	// for the run; the acceptance test scrapes it and checks the values
	// against StatusOverRPC.
	Metrics *telemetry.Registry
}

// DefaultSupervisedConfig is the scenario the test suite runs: 3 healthy
// siblings, a panicker that heals at tick 10, and a wedger that never does.
func DefaultSupervisedConfig() SupervisedConfig {
	return SupervisedConfig{
		Siblings:              3,
		Ticks:                 30,
		RunTimeout:            10 * time.Millisecond,
		WedgeFor:              60 * time.Millisecond,
		QuarantineThreshold:   3,
		QuarantineCooldownSec: 5,
		PanicFromTick:         2,
		PanicRecoverAtTick:    10,
		Degrade:               "hold",
	}
}

// SupervisedReport is what the scenario observed.
type SupervisedReport struct {
	// SamplesBySibling counts sink-received samples per healthy sibling;
	// each must equal Ticks (no tick lost to a peer's panic or wedge).
	SamplesBySibling map[string]uint64
	// PanickerSamples / DegradedSamples count the panicker's real and
	// gap-filled samples at the sink.
	PanickerSamples uint64
	DegradedSamples uint64
	// PanickerQuarantinedTick / WedgerQuarantinedTick are the first ticks
	// at which each offender was observed quarantined (0 = never).
	PanickerQuarantinedTick int
	WedgerQuarantinedTick   int
	// PanickerReadmitted reports that a half-open probe re-admitted the
	// recovered panicker.
	PanickerReadmitted bool
	// PanickerHealth / WedgerHealth are the final supervisor snapshots.
	PanickerHealth core.InstanceHealth
	WedgerHealth   core.InstanceHealth
	// RunErrors counts failures routed to the error handler (never fatal).
	RunErrors int
	// StatusOverRPC is the final StatusReport as fetched over the native
	// status RPC — the same bytes an operator tool would see.
	StatusOverRPC modules.StatusReport
}

// evalSource emits an incrementing scalar every virtual second.
type evalSource struct {
	out  *core.OutputPort
	next float64
}

func (m *evalSource) Init(ctx *core.InitContext) error {
	var err error
	if m.out, err = ctx.NewOutput("output0", core.Origin{Source: ctx.ID()}); err != nil {
		return err
	}
	return ctx.SchedulePeriodic(time.Second)
}

func (m *evalSource) Run(ctx *core.RunContext) error {
	if ctx.Reason != core.RunPeriodic {
		return nil
	}
	m.out.Publish(core.NewScalar(ctx.Now, m.next))
	m.next++
	return nil
}

// passthrough republishes its inputs under its own origin, so the sink can
// attribute samples per instance.
type passthrough struct {
	out *core.OutputPort
}

func (m *passthrough) Init(ctx *core.InitContext) error {
	var err error
	m.out, err = ctx.NewOutput("output0", core.Origin{Source: ctx.ID()})
	return err
}

func (m *passthrough) Run(ctx *core.RunContext) error {
	for _, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			m.out.Publish(core.Sample{Time: s.Time, Values: s.Values})
		}
	}
	return nil
}

// panicky is a passthrough that panics on every run whose tick falls in
// [from, until); tick = seconds since start on the virtual clock.
type panicky struct {
	passthrough
	start       time.Time
	from, until int
}

func (m *panicky) Run(ctx *core.RunContext) error {
	if ctx.Reason != core.RunFlush {
		tick := int(ctx.Now.Sub(m.start)/time.Second) + 1
		if tick >= m.from && (m.until == 0 || tick < m.until) {
			panic(fmt.Sprintf("injected panic at tick %d", tick))
		}
	}
	return m.passthrough.Run(ctx)
}

// wedgy is a passthrough whose every Run sleeps (wall clock) before
// publishing — under a shorter watchdog deadline it is abandoned each time,
// and its late publishes exercise the abandoned-goroutine path.
type wedgy struct {
	passthrough
	sleep time.Duration
}

func (m *wedgy) Run(ctx *core.RunContext) error {
	if ctx.Reason != core.RunFlush {
		time.Sleep(m.sleep)
	}
	return m.passthrough.Run(ctx)
}

// evalSink counts received samples per origin source, splitting degraded
// (gap-filled) samples out.
type evalSink struct {
	mu       sync.Mutex
	byOrigin map[string]uint64
	degraded map[string]uint64
}

func (m *evalSink) Init(ctx *core.InitContext) error {
	if len(ctx.Inputs()) == 0 {
		return fmt.Errorf("eval: sink requires inputs")
	}
	m.byOrigin = make(map[string]uint64)
	m.degraded = make(map[string]uint64)
	return nil
}

func (m *evalSink) Run(ctx *core.RunContext) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, in := range ctx.Inputs() {
		for _, s := range in.Read() {
			if s.Degraded {
				m.degraded[in.Origin().Source]++
			} else {
				m.byOrigin[in.Origin().Source]++
			}
		}
	}
	return nil
}

func (m *evalSink) counts() (real, degraded map[string]uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	real = make(map[string]uint64, len(m.byOrigin))
	for k, v := range m.byOrigin {
		real[k] = v
	}
	degraded = make(map[string]uint64, len(m.degraded))
	for k, v := range m.degraded {
		degraded[k] = v
	}
	return real, degraded
}

// RunSupervised runs the supervised-runtime scenario end to end and returns
// what it observed. The caller asserts on the report; this function only
// fails on setup errors.
func RunSupervised(cfg SupervisedConfig) (*SupervisedReport, error) {
	if cfg.Siblings < 1 || cfg.Ticks < 1 {
		return nil, fmt.Errorf("eval: need at least one sibling and one tick")
	}
	if cfg.RunTimeout <= 0 || cfg.WedgeFor <= cfg.RunTimeout {
		return nil, fmt.Errorf("eval: wedge duration must exceed the watchdog deadline")
	}
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	reg := core.NewRegistry()
	reg.Register("source", func() core.Module { return &evalSource{} })
	reg.Register("well", func() core.Module { return &passthrough{} })
	reg.Register("panicky", func() core.Module {
		return &panicky{start: start, from: cfg.PanicFromTick, until: cfg.PanicRecoverAtTick}
	})
	reg.Register("wedgy", func() core.Module { return &wedgy{sleep: cfg.WedgeFor} })
	reg.Register("sink", func() core.Module { return &evalSink{} })

	var b strings.Builder
	b.WriteString("[source]\nid = src\n")
	for i := 0; i < cfg.Siblings; i++ {
		fmt.Fprintf(&b, "[well]\nid = w%d\ninput[in] = src.output0\n", i)
	}
	supParams := fmt.Sprintf("quarantine_threshold = %d\nquarantine_cooldown = %d\ndegrade = %s\n",
		cfg.QuarantineThreshold, cfg.QuarantineCooldownSec, cfg.Degrade)
	fmt.Fprintf(&b, "[panicky]\nid = panic\ninput[in] = src.output0\n%s", supParams)
	fmt.Fprintf(&b, "[wedgy]\nid = wedge\ninput[in] = src.output0\nrun_timeout = %s\n%s",
		cfg.RunTimeout, supParams)
	b.WriteString("[sink]\nid = sink\ninput[p] = panic.output0\ninput[wd] = wedge.output0\n")
	for i := 0; i < cfg.Siblings; i++ {
		fmt.Fprintf(&b, "input[i%d] = w%d.output0\n", i, i)
	}

	parsed, err := config.ParseString(b.String())
	if err != nil {
		return nil, err
	}
	report := &SupervisedReport{}
	var mu sync.Mutex
	eng, err := core.NewEngine(reg, parsed,
		core.WithTelemetry(cfg.Metrics),
		core.WithErrorHandler(func(string, error) {
			mu.Lock()
			report.RunErrors++
			mu.Unlock()
		}))
	if err != nil {
		return nil, err
	}

	for tick := 1; tick <= cfg.Ticks; tick++ {
		now := start.Add(time.Duration(tick-1) * time.Second)
		if err := eng.Tick(now); err != nil {
			return nil, err
		}
		ph, _ := eng.InstanceHealthOf("panic")
		wh, _ := eng.InstanceHealthOf("wedge")
		if report.PanickerQuarantinedTick == 0 && ph.State == core.SupervisorQuarantined {
			report.PanickerQuarantinedTick = tick
		}
		if report.WedgerQuarantinedTick == 0 && wh.State == core.SupervisorQuarantined {
			report.WedgerQuarantinedTick = tick
		}
		if ph.Readmissions > 0 {
			report.PanickerReadmitted = true
		}
		if cfg.TraceWriter != nil {
			fmt.Fprintf(cfg.TraceWriter,
				"tick=%d panic.state=%s panic.failures=%d wedge.state=%s wedge.timeouts=%d wedge.wedged=%v errors=%d\n",
				tick, ph.State, ph.TotalFailures, wh.State, wh.Timeouts, wh.Wedged, report.RunErrors)
		}
	}
	// Let the last abandoned wedger goroutine drain before the final
	// snapshot, so LateReturns and Wedged settle deterministically.
	deadline := time.Now().Add(5 * time.Second)
	for {
		wh, _ := eng.InstanceHealthOf("wedge")
		if !wh.Wedged || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	sinkMod, _ := eng.ModuleOf("sink")
	real, degraded := sinkMod.(*evalSink).counts()
	report.SamplesBySibling = make(map[string]uint64, cfg.Siblings)
	for i := 0; i < cfg.Siblings; i++ {
		id := fmt.Sprintf("w%d", i)
		report.SamplesBySibling[id] = real[id]
	}
	report.PanickerSamples = real["panic"]
	report.DegradedSamples = degraded["panic"] + degraded["wedge"]
	report.PanickerHealth, _ = eng.InstanceHealthOf("panic")
	report.WedgerHealth, _ = eng.InstanceHealthOf("wedge")

	// Fetch the final status over the real RPC surface, as an operator
	// tool would.
	endNow := start.Add(time.Duration(cfg.Ticks) * time.Second)
	srv, addr, err := modules.ListenStatus("127.0.0.1:0", eng, func() time.Time { return endNow })
	if err != nil {
		return nil, err
	}
	defer func() { _ = srv.Close() }()
	client, err := rpc.Dial(addr.String(), "eval-status", rpc.WithCallTimeout(5*time.Second))
	if err != nil {
		return nil, err
	}
	defer func() { _ = client.Close() }()
	if err := client.Call(modules.MethodStatus, nil, &report.StatusOverRPC); err != nil {
		return nil, err
	}
	return report, nil
}
