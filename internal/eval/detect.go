package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/asdf-project/asdf/internal/hadoopsim"
)

// This file is the detection-quality harness: it runs the full fault ×
// workload matrix — every injectable fault under several GridMix
// compositions — through the black-box, white-box, and combined pipelines,
// and scores each cell. The resulting report is the regression surface the
// CI detect-quality gate holds against committed floors: a change that
// quietly stops detecting a fault class, or detects it much later, fails
// the build instead of shipping.
//
// Scoring methodology (shared with Score): a window whose every second had
// the fault active is problematic, a window with no fault activity is
// clean, and windows straddling the activation boundary are excluded as
// ambiguous. TPR is the fraction of problematic windows where the culprit
// was flagged; FPR the fraction of clean windows with any alarm; balanced
// accuracy their mean against the complement. Time-to-detection uses the
// paper's sustained-alarm rule: the detection instant is the end of the
// third consecutive culprit-flagged problematic window (§4.9's ~3-window
// confidence rule), measured in seconds from injection. A fault that never
// sustains three consecutive flags reports -1 (never detected).

// DetectWorkload is one GridMix composition of the detection matrix.
type DetectWorkload struct {
	// Name labels the workload in the report ("mix", "sortHeavy", ...).
	Name string
	// Classes restricts GridMix job types for the whole run (including
	// warmup); empty means the full five-type mix.
	Classes []string
}

// DetectConfig sizes the detection-quality matrix.
type DetectConfig struct {
	Slaves       int
	Seed         int64
	TrainSeconds int // fault-free seconds used to train the shared model
	NumStates    int // k-means centroids
	WarmupSec    int
	DurationSec  int // recorded seconds per cell
	InjectAtSec  int // injection time within each cell
	FaultNode    int
	Workloads    []DetectWorkload
	Faults       []hadoopsim.FaultKind
}

// DefaultDetectConfig is the full matrix: all twelve faults under three
// GridMix compositions, at the sizing of the other default experiments.
func DefaultDetectConfig() DetectConfig {
	return DetectConfig{
		Slaves:       8,
		Seed:         1,
		TrainSeconds: 300,
		NumStates:    4,
		WarmupSec:    120,
		DurationSec:  900,
		InjectAtSec:  300,
		FaultNode:    2,
		Workloads: []DetectWorkload{
			{Name: "mix"},
			{Name: "sortHeavy", Classes: []string{"streamSort", "javaSort"}},
			{Name: "scanLight", Classes: []string{"webdataScan", "combiner"}},
		},
		Faults: hadoopsim.AllFaults,
	}
}

// ReducedDetectConfig is the CI-sized matrix: all twelve faults under two
// compositions on a smaller, shorter cluster. Small enough to run under
// -race in the detect-quality job, deterministic enough to gate on.
func ReducedDetectConfig() DetectConfig {
	return DetectConfig{
		Slaves:       6,
		Seed:         1,
		TrainSeconds: 240,
		NumStates:    4,
		WarmupSec:    120,
		DurationSec:  480,
		InjectAtSec:  180,
		FaultNode:    2,
		Workloads: []DetectWorkload{
			{Name: "mix"},
			{Name: "sortHeavy", Classes: []string{"streamSort", "javaSort"}},
		},
		Faults: hadoopsim.AllFaults,
	}
}

// DetectScore is one approach's score for one matrix cell.
type DetectScore struct {
	TPR              float64 `json:"tpr"`
	FPR              float64 `json:"fpr"`
	BalancedAccuracy float64 `json:"balanced_accuracy"`
	// TimeToDetectionSec is seconds from injection to the sustained alarm;
	// -1 when the fault was never confidently detected.
	TimeToDetectionSec float64 `json:"time_to_detection_sec"`
}

// DetectCell is one fault × workload cell, scored under every approach
// (keys "black-box", "white-box", "combined").
type DetectCell struct {
	Fault    string                 `json:"fault"`
	Workload string                 `json:"workload"`
	Scores   map[string]DetectScore `json:"scores"`
}

// DetectFaultSummary aggregates one fault across workloads, per approach:
// balanced accuracy is the mean over workloads; time-to-detection is the
// worst (largest) over workloads, or -1 if any workload never detected.
type DetectFaultSummary struct {
	Fault              string             `json:"fault"`
	BalancedAccuracy   map[string]float64 `json:"balanced_accuracy"`
	TimeToDetectionSec map[string]float64 `json:"time_to_detection_sec"`
}

// DetectReport is the harness output, serialized to BENCH_detect.json.
type DetectReport struct {
	SchemaVersion int                  `json:"schema_version"`
	Mode          string               `json:"mode"`
	Slaves        int                  `json:"slaves"`
	Seed          int64                `json:"seed"`
	DurationSec   int                  `json:"duration_sec"`
	InjectAtSec   int                  `json:"inject_at_sec"`
	Workloads     []string             `json:"workloads"`
	Cells         []DetectCell         `json:"cells"`
	Faults        []DetectFaultSummary `json:"faults"`
}

// detectApproaches orders the report's score keys.
var detectApproaches = []Approach{ApproachBlackBox, ApproachWhiteBox, ApproachCombined}

// RunDetect trains one shared black-box model and runs every fault ×
// workload cell of the matrix through all three analysis approaches. Cell
// seeds are a deterministic function of the config seed and the cell's
// position, so a fixed config always yields a byte-identical report.
func RunDetect(cfg DetectConfig, mode string) (*DetectReport, error) {
	if len(cfg.Workloads) == 0 || len(cfg.Faults) == 0 {
		return nil, fmt.Errorf("eval: detect config needs workloads and faults")
	}
	model, err := TrainDefaultModel(cfg.Slaves, cfg.Seed, cfg.TrainSeconds, cfg.NumStates)
	if err != nil {
		return nil, fmt.Errorf("eval: detect training: %w", err)
	}
	params := DefaultParams(model.NumStates())

	rep := &DetectReport{
		SchemaVersion: 1,
		Mode:          mode,
		Slaves:        cfg.Slaves,
		Seed:          cfg.Seed,
		DurationSec:   cfg.DurationSec,
		InjectAtSec:   cfg.InjectAtSec,
	}
	for _, wl := range cfg.Workloads {
		rep.Workloads = append(rep.Workloads, wl.Name)
	}

	// byFault[fault][approach] accumulates per-workload scores for the
	// summaries; filled in matrix order so aggregation is deterministic.
	byFault := make(map[string]map[string][]DetectScore, len(cfg.Faults))

	for wlIdx, wl := range cfg.Workloads {
		var phases []WorkloadPhase
		if len(wl.Classes) > 0 {
			phases = []WorkloadPhase{{AtSec: -1, Classes: wl.Classes}}
		}
		for faultIdx, fault := range cfg.Faults {
			tr, err := CollectTrace(TraceConfig{
				Slaves:      cfg.Slaves,
				Seed:        cfg.Seed + 300 + int64(wlIdx)*100 + int64(faultIdx),
				WarmupSec:   cfg.WarmupSec,
				DurationSec: cfg.DurationSec,
				Fault:       fault,
				FaultNode:   cfg.FaultNode,
				InjectAtSec: cfg.InjectAtSec,
				Phases:      phases,
			}, model)
			if err != nil {
				return nil, fmt.Errorf("eval: detect cell %s/%s: %w", fault, wl.Name, err)
			}
			cell := DetectCell{
				Fault:    fault.String(),
				Workload: wl.Name,
				Scores:   make(map[string]DetectScore, len(detectApproaches)),
			}
			for _, approach := range detectApproaches {
				verdicts, err := Verdicts(tr, approach, params)
				if err != nil {
					return nil, fmt.Errorf("eval: detect cell %s/%s %s: %w", fault, wl.Name, approach, err)
				}
				o := Score(tr, verdicts, params)
				s := DetectScore{
					TPR:                round4(o.TruePositiveRate),
					FPR:                round4(o.FalsePositiveRate),
					BalancedAccuracy:   round4(o.BalancedAccuracy),
					TimeToDetectionSec: round4(o.LatencySec),
				}
				cell.Scores[approach.String()] = s
				if byFault[cell.Fault] == nil {
					byFault[cell.Fault] = make(map[string][]DetectScore, len(detectApproaches))
				}
				byFault[cell.Fault][approach.String()] = append(byFault[cell.Fault][approach.String()], s)
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}

	for _, fault := range cfg.Faults {
		name := fault.String()
		sum := DetectFaultSummary{
			Fault:              name,
			BalancedAccuracy:   make(map[string]float64, len(detectApproaches)),
			TimeToDetectionSec: make(map[string]float64, len(detectApproaches)),
		}
		for _, approach := range detectApproaches {
			scores := byFault[name][approach.String()]
			var baSum, worstTTD float64
			detectedAll := true
			for _, s := range scores {
				baSum += s.BalancedAccuracy
				if s.TimeToDetectionSec < 0 {
					detectedAll = false
				} else if s.TimeToDetectionSec > worstTTD {
					worstTTD = s.TimeToDetectionSec
				}
			}
			sum.BalancedAccuracy[approach.String()] = round4(baSum / float64(len(scores)))
			if detectedAll {
				sum.TimeToDetectionSec[approach.String()] = worstTTD
			} else {
				sum.TimeToDetectionSec[approach.String()] = -1
			}
		}
		rep.Faults = append(rep.Faults, sum)
	}
	return rep, nil
}

// round4 rounds to four decimals so the serialized report is a stable,
// human-diffable regression surface.
func round4(v float64) float64 {
	return math.Round(v*10000) / 10000
}

// Encode writes the report as canonical JSON: two-space indent, struct
// fields in declaration order, map keys sorted (encoding/json's guarantee),
// floats pre-rounded, trailing newline. Two runs of the same config produce
// byte-identical output — the property the CI determinism check holds.
func (r *DetectReport) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeDetectReport reads a report serialized by Encode.
func DecodeDetectReport(rd io.Reader) (*DetectReport, error) {
	var r DetectReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("eval: decoding detect report: %w", err)
	}
	return &r, nil
}

// FaultSummary returns the named fault's summary row, or nil.
func (r *DetectReport) FaultSummary(name string) *DetectFaultSummary {
	for i := range r.Faults {
		if r.Faults[i].Fault == name {
			return &r.Faults[i]
		}
	}
	return nil
}
