package eval

import (
	"fmt"
	"strings"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hierarchy"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/sadc"
)

// HierScaleConfig sizes the hierarchical-topology measurement: one root
// sadc instance delegating its whole fleet to shard-leader processes
// (in-process modules.Leader instances behind real loopback RPC servers,
// columnar root hop) versus sweeping the fleet itself. As in the shard
// measurement, the daemons are in-process fakes — a time.Sleep plus a
// canned record — so the numbers isolate the topology's concurrency
// structure and hop overhead from daemon cost.
type HierScaleConfig struct {
	// NodeCounts are the simulated cluster sizes to measure.
	NodeCounts []int
	// LeaderCounts are the leader-fleet sizes to measure at each node
	// count (the baseline always runs the single-process sweep).
	LeaderCounts []int
	// LeaderFanout is each leader's concurrent daemon-fetch budget; the
	// single-process baseline uses the default root fanout.
	LeaderFanout int
	// RPCLatency is the simulated per-call network round trip.
	RPCLatency time.Duration
	// Ticks is how many collection ticks to time per configuration.
	Ticks int
}

// DefaultHierScaleConfig mirrors the nightly hierarchy suite: 512 to 2048
// nodes, 2/4/8 leaders of 16 workers, 500µs per RPC.
func DefaultHierScaleConfig() HierScaleConfig {
	return HierScaleConfig{
		NodeCounts:   []int{512, 1024, 2048},
		LeaderCounts: []int{2, 4, 8},
		LeaderFanout: 16,
		RPCLatency:   500 * time.Microsecond,
		Ticks:        15,
	}
}

// HierScalePoint is one measured (nodes, leaders) cell; leaders = 0 is the
// single-process baseline.
type HierScalePoint struct {
	Nodes     int     `json:"nodes"`
	Leaders   int     `json:"leaders"`
	PerTickMs float64 `json:"per_tick_ms"`
	// SpeedupVsSingle is this cell's per-tick latency advantage over the
	// single-process cell at the same node count; 1.0 for the baseline
	// cells themselves.
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
}

// MeasureHierScaling times the per-tick collection sweep at each configured
// node count, single-process versus delegated to each leader-fleet size,
// and reports every cell (baseline first).
func MeasureHierScaling(cfg HierScaleConfig) ([]HierScalePoint, error) {
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("hierscale: ticks must be positive")
	}
	var points []HierScalePoint
	for _, nodes := range cfg.NodeCounts {
		single, err := timeHierSweep(nodes, 0, cfg)
		if err != nil {
			return nil, err
		}
		points = append(points, HierScalePoint{Nodes: nodes, Leaders: 0,
			PerTickMs: float64(single) / float64(time.Millisecond), SpeedupVsSingle: 1})
		for _, leaders := range cfg.LeaderCounts {
			hier, err := timeHierSweep(nodes, leaders, cfg)
			if err != nil {
				return nil, err
			}
			speedup := 0.0
			if hier > 0 {
				speedup = float64(single) / float64(hier)
			}
			points = append(points, HierScalePoint{Nodes: nodes, Leaders: leaders,
				PerTickMs: float64(hier) / float64(time.Millisecond), SpeedupVsSingle: speedup})
		}
	}
	return points, nil
}

// timeHierSweep builds one topology — leaders = 0 for the single-process
// baseline — and returns the mean per-tick wall time over cfg.Ticks ticks.
func timeHierSweep(nodes, leaders int, cfg HierScaleConfig) (time.Duration, error) {
	names := make([]string, nodes)
	fakeAddrs := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%04d", i)
		fakeAddrs[i] = fmt.Sprintf("10.0.0.%d:9999", i)
	}
	dial := func(addr, client string) (rpc.Caller, error) {
		return &delayedCaller{delay: cfg.RPCLatency, rec: sadc.Record{Node: make([]float64, 64)}}, nil
	}
	env := modules.NewEnv()
	var cfgText string
	if leaders == 0 {
		env.Dial = dial
		cfgText = fmt.Sprintf(
			"[sadc]\nid = collect\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1s\n",
			strings.Join(names, ","), strings.Join(fakeAddrs, ","))
	} else {
		// The root env keeps the real dialer so the leader hop crosses an
		// actual loopback connection; only the leader→daemon edge is faked.
		per := nodes / leaders
		leaderAddrs := make([]string, leaders)
		ranges := make([]string, leaders)
		for li := 0; li < leaders; li++ {
			lo, hi := li*per, (li+1)*per
			if li == leaders-1 {
				hi = nodes
			}
			lenv := modules.NewEnv()
			lenv.Dial = dial
			ldr, err := modules.NewLeader(lenv, modules.LeaderOptions{
				Name:      fmt.Sprintf("leader%d", li),
				Nodes:     names[lo:hi],
				SadcAddrs: fakeAddrs[lo:hi],
				Fanout:    cfg.LeaderFanout,
			})
			if err != nil {
				return 0, err
			}
			srv := rpc.NewServer(hierarchy.ServiceLeader)
			ldr.Register(srv)
			a, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				return 0, err
			}
			defer srv.Close()
			leaderAddrs[li] = a.String()
			ranges[li] = fmt.Sprintf("%d-%d", lo, hi)
		}
		dashes := make([]string, nodes)
		for i := range dashes {
			dashes[i] = "-"
		}
		cfgText = fmt.Sprintf(
			"[sadc]\nid = collect\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1s\nwire = columnar\nleaders = %s\nleader_ranges = %s\n",
			strings.Join(names, ","), strings.Join(dashes, ","),
			strings.Join(leaderAddrs, ","), strings.Join(ranges, ","))
	}
	file, err := config.ParseString(cfgText)
	if err != nil {
		return 0, err
	}
	eng, err := core.NewEngine(modules.NewRegistry(env), file)
	if err != nil {
		return 0, err
	}
	virtual := time.Unix(1_700_000_000, 0)
	// One warmup tick keeps connection setup and stream negotiation out of
	// the timing.
	if err := eng.Tick(virtual.Add(time.Second)); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < cfg.Ticks; i++ {
		if err := eng.Tick(virtual.Add(time.Duration(i+2) * time.Second)); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(cfg.Ticks), nil
}
