package eval

import (
	"testing"
)

func TestWorkloadChangeExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	opts := DefaultOptions()
	m := sharedModel(t)
	params := DefaultParams(m.NumStates())
	res, err := WorkloadChange(opts, m, params)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("peer FPR before/after = %.2f / %.2f; rule FPR before/after = %.2f / %.2f",
		res.PeerFPRBefore, res.PeerFPRAfter, res.RuleFPRBefore, res.RuleFPRAfter)

	// §2.1's claim, quantified: peer comparison tolerates the workload
	// change...
	if res.PeerFPRAfter > 0.15 {
		t.Errorf("peer-comparison FPR after workload change = %.2f, expected near zero", res.PeerFPRAfter)
	}
	// ...while the static-threshold baseline, calibrated on the light
	// phase, fires persistently once the heavy mix arrives.
	if res.RuleFPRAfter < res.RuleFPRBefore+0.3 {
		t.Errorf("rule-baseline FPR did not spike after the change: %.2f -> %.2f",
			res.RuleFPRBefore, res.RuleFPRAfter)
	}
	if res.RuleFPRAfter < res.PeerFPRAfter+0.3 {
		t.Errorf("rule baseline (%.2f) should be far worse than peer comparison (%.2f) after the change",
			res.RuleFPRAfter, res.PeerFPRAfter)
	}
}

func TestWorkloadChangeUnknownClass(t *testing.T) {
	m := sharedModel(t)
	_, err := CollectTrace(TraceConfig{
		Slaves: 2, Seed: 1, DurationSec: 10,
		Phases: []WorkloadPhase{{AtSec: -1, Classes: []string{"noSuchJob"}}},
	}, m)
	if err == nil {
		t.Error("unknown workload class should error")
	}
}
