package eval

import (
	"fmt"
	"io"
	"os"
	"testing"

	"github.com/asdf-project/asdf/internal/core"
)

// faultTrace returns the writer for a scenario's per-tick counter trace:
// the file named by ASDF_FAULT_TRACE (appended, as several tests share it —
// the CI fault drill uploads it as an artifact), or nil.
func faultTrace(t *testing.T, scenario string) io.Writer {
	t.Helper()
	path := os.Getenv("ASDF_FAULT_TRACE")
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open fault trace %s: %v", path, err)
	}
	t.Cleanup(func() { _ = f.Close() })
	fmt.Fprintf(f, "=== %s\n", scenario)
	return f
}

// TestSupervisedRuntime is the acceptance scenario for the supervised
// module runtime: a pipeline with a panicking-every-tick instance and a
// wedging instance keeps producing correct sink output for the unaffected
// instances, quarantines both offenders within their failure budget,
// re-admits the recovered panicker after cooldown, and reports all of it
// over the status RPC.
func TestSupervisedRuntime(t *testing.T) {
	cfg := DefaultSupervisedConfig()
	cfg.TraceWriter = faultTrace(t, "supervised")
	rep, err := RunSupervised(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The healthy siblings were untouched: every tick's sample arrived.
	for id, n := range rep.SamplesBySibling {
		if n != uint64(cfg.Ticks) {
			t.Errorf("sibling %s delivered %d samples, want %d", id, n, cfg.Ticks)
		}
	}

	// Both offenders were quarantined within their failure budget plus a
	// couple of scheduling ticks.
	budget := cfg.PanicFromTick + cfg.QuarantineThreshold + 2
	if rep.PanickerQuarantinedTick == 0 || rep.PanickerQuarantinedTick > budget {
		t.Errorf("panicker quarantined at tick %d, want within %d", rep.PanickerQuarantinedTick, budget)
	}
	if rep.WedgerQuarantinedTick == 0 || rep.WedgerQuarantinedTick > cfg.QuarantineThreshold+2 {
		t.Errorf("wedger quarantined at tick %d, want within %d", rep.WedgerQuarantinedTick, cfg.QuarantineThreshold+2)
	}

	// The panicker healed and a half-open probe re-admitted it; the wedger
	// never did and stays quarantined.
	if !rep.PanickerReadmitted {
		t.Error("recovered panicker was never re-admitted")
	}
	if rep.PanickerHealth.State != core.SupervisorHealthy {
		t.Errorf("final panicker state = %s, want healthy", rep.PanickerHealth.State)
	}
	if rep.PanickerHealth.Panics == 0 || rep.PanickerHealth.Readmissions == 0 {
		t.Errorf("panicker health = %+v, want panics and a readmission", rep.PanickerHealth)
	}
	if rep.WedgerHealth.State != core.SupervisorQuarantined {
		t.Errorf("final wedger state = %s, want quarantined", rep.WedgerHealth.State)
	}
	if rep.WedgerHealth.Timeouts == 0 {
		t.Error("wedger recorded no timeout failures")
	}

	// The panicker resumed real publishes after readmission, and the hold
	// policy gap-filled its quarantined ticks with Degraded samples.
	if rep.PanickerSamples == 0 {
		t.Error("panicker published nothing after recovery")
	}
	if rep.DegradedSamples == 0 {
		t.Error("hold degrade policy produced no gap-fill samples")
	}

	// Failures were routed through the handler, never fatal.
	if rep.RunErrors == 0 {
		t.Error("no failures surfaced through the error handler")
	}

	// The status RPC reported the same picture an operator would act on.
	st := rep.StatusOverRPC
	if st.Healthy {
		t.Error("status RPC reports healthy with a quarantined instance")
	}
	states := make(map[string]core.SupervisorState, len(st.Instances))
	for _, ih := range st.Instances {
		states[ih.ID] = ih.State
	}
	if states["wedge"] != core.SupervisorQuarantined {
		t.Errorf("status RPC wedge state = %s, want quarantined", states["wedge"])
	}
	if states["panic"] != core.SupervisorHealthy {
		t.Errorf("status RPC panic state = %s, want healthy", states["panic"])
	}
}

// TestSupervisedValidation covers scenario-config validation.
func TestSupervisedValidation(t *testing.T) {
	bad := DefaultSupervisedConfig()
	bad.Siblings = 0
	if _, err := RunSupervised(bad); err == nil {
		t.Error("zero siblings accepted")
	}
	bad = DefaultSupervisedConfig()
	bad.WedgeFor = bad.RunTimeout / 2
	if _, err := RunSupervised(bad); err == nil {
		t.Error("wedge shorter than watchdog accepted")
	}
}
