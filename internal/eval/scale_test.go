package eval

import (
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/hadoopsim"
)

// TestPaperScaleFiftyNodes runs the localization experiment at the paper's
// actual cluster size (50 slaves, §4.7) for two representative faults —
// one black-box-dominant (CPUHog), one white-box-dominant (HADOOP-2080) —
// verifying that peer comparison improves rather than degrades with more
// peers, and that the experiment stays tractable.
func TestPaperScaleFiftyNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment")
	}
	const slaves = 50
	start := time.Now()
	model, err := TrainDefaultModel(slaves, 2, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams(model.NumStates())

	for _, tc := range []struct {
		fault    hadoopsim.FaultKind
		approach Approach
		minBA    float64
	}{
		{hadoopsim.FaultCPUHog, ApproachBlackBox, 0.70},
		{hadoopsim.FaultHang2080, ApproachWhiteBox, 0.75},
	} {
		tr, err := CollectTrace(TraceConfig{
			Slaves: slaves, Seed: 3, WarmupSec: 120, DurationSec: 900,
			Fault: tc.fault, FaultNode: 17, InjectAtSec: 300,
		}, model)
		if err != nil {
			t.Fatal(err)
		}
		verdicts, err := Verdicts(tr, tc.approach, params)
		if err != nil {
			t.Fatal(err)
		}
		o := Score(tr, verdicts, params)
		t.Logf("%s via %s at 50 nodes: BA=%.2f TPR=%.2f TNR=%.2f latency=%.0fs",
			tc.fault, tc.approach, o.BalancedAccuracy, o.TruePositiveRate, o.TrueNegativeRate, o.LatencySec)
		if o.BalancedAccuracy < tc.minBA {
			t.Errorf("%s at 50 nodes: BA %.2f below %.2f", tc.fault, o.BalancedAccuracy, tc.minBA)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Minute {
		t.Errorf("paper-scale run took %v; the simulator should stay tractable", elapsed)
	}
}
