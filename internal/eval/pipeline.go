package eval

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/sadc"
)

// BuildPipelineConfig renders the paper's full Figure-4 fpt-core
// configuration for the given nodes: per-node sadc -> knn -> ibuffer chains
// into analysis_bb, and a hadoop_log (tasktracker) instance into
// analysis_wb, both terminating in print alarm instances.
func BuildPipelineConfig(nodes []string, modelPath string, p AnalysisParams) string {
	var b strings.Builder
	for i, n := range nodes {
		fmt.Fprintf(&b, "[sadc]\nid = sadc%d\nnode = %s\nperiod = 1\n\n", i, n)
		fmt.Fprintf(&b, "[knn]\nid = onenn%d\nmodel_file = %s\ninput[in] = sadc%d.output0\n\n", i, modelPath, i)
		fmt.Fprintf(&b, "[ibuffer]\nid = buf%d\nsize = 10\ninput[input] = onenn%d.output0\n\n", i, i)
	}
	// retain_results = 0: the offline harness inspects the full verdict
	// history; online deployments keep the bounded default.
	fmt.Fprintf(&b, "[analysis_bb]\nid = bb\nretain_results = 0\nthreshold = %g\nwindow = %d\nslide = %d\nstates = %d\n",
		p.BBThreshold, p.WindowSize, p.WindowSlide, p.NumStates)
	for i := range nodes {
		fmt.Fprintf(&b, "input[l%d] = @buf%d\n", i, i)
	}
	b.WriteString("\n[print]\nid = BlackBoxAlarm\nlabel = BB\ninput[a] = @bb\n\n")

	fmt.Fprintf(&b, "[hadoop_log]\nid = hl_tt\nkind = tasktracker\nnodes = %s\nperiod = 1\n\n",
		strings.Join(nodes, ","))
	fmt.Fprintf(&b, "[analysis_wb]\nid = wb\nretain_results = 0\nk = %g\nwindow = %d\nslide = %d\n",
		p.WBK, p.WindowSize, p.WindowSlide)
	for i := range nodes {
		fmt.Fprintf(&b, "input[s%d] = hl_tt.%s\n", i, nodes[i])
	}
	b.WriteString("\n[print]\nid = TaskTrackerAlarm\nlabel = WB\ninput[a] = @wb\n")
	return b.String()
}

// SimEnv builds a module Env over a simulated cluster (local collection
// mode with the cluster's virtual clock).
func SimEnv(c *hadoopsim.Cluster) *modules.Env {
	env := modules.NewEnv()
	for _, n := range c.Slaves() {
		env.Procfs[n.Name] = n
		env.TTLogs[n.Name] = n.TaskTrackerLog()
		env.DNLogs[n.Name] = n.DataNodeLog()
	}
	env.Clock = c.Now
	return env
}

// newOverheadPipeline builds a small but complete fpt-core pipeline over
// the cluster for the Table 3 fpt-core row.
func newOverheadPipeline(c *hadoopsim.Cluster) (*core.Engine, error) {
	points, err := quickTrainingPoints(c, 40)
	if err != nil {
		return nil, err
	}
	model, err := analysis.TrainModel(points, 8, 5)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "asdf-overhead")
	if err != nil {
		return nil, err
	}
	modelPath := filepath.Join(dir, "model.json")
	if err := model.Save(modelPath); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(c.Slaves()))
	for _, n := range c.Slaves() {
		names = append(names, n.Name)
	}
	p := DefaultParams(model.NumStates())
	cfg, err := config.ParseString(BuildPipelineConfig(names, modelPath, p))
	if err != nil {
		return nil, err
	}
	return core.NewEngine(modules.NewRegistry(SimEnv(c)), cfg)
}

// quickTrainingPoints collects a short burst of sadc vectors from every
// slave of an already-running cluster.
func quickTrainingPoints(c *hadoopsim.Cluster, seconds int) ([][]float64, error) {
	slaves := c.Slaves()
	collectors := make([]*sadc.Collector, len(slaves))
	for i, n := range slaves {
		collectors[i] = sadc.NewCollector(n)
		if _, err := collectors[i].Collect(); err != nil {
			return nil, err
		}
	}
	var points [][]float64
	for s := 0; s < seconds; s++ {
		c.Tick()
		for i := range collectors {
			rec, err := collectors[i].Collect()
			if err != nil {
				return nil, err
			}
			points = append(points, rec.Node)
		}
	}
	return points, nil
}
