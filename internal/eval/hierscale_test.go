package eval

import (
	"testing"
	"time"
)

// TestMeasureHierScaling runs a scaled-down hierarchy measurement and
// checks the latency-bound arithmetic: delegating the fleet to concurrent
// leaders must beat the single-process sweep once nodes far exceed the
// default fanout, despite the extra root→leader hop.
func TestMeasureHierScaling(t *testing.T) {
	cfg := HierScaleConfig{
		NodeCounts:   []int{128},
		LeaderCounts: []int{4},
		LeaderFanout: 16,
		RPCLatency:   300 * time.Microsecond,
		Ticks:        5,
	}
	points, err := MeasureHierScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2 (single + 4-leader)", len(points))
	}
	single, hier := points[0], points[1]
	if single.Leaders != 0 || single.SpeedupVsSingle != 1 {
		t.Errorf("single cell = %+v", single)
	}
	if hier.Leaders != 4 || hier.Nodes != 128 {
		t.Errorf("hier cell = %+v", hier)
	}
	if single.PerTickMs <= 0 || hier.PerTickMs <= 0 {
		t.Fatalf("non-positive timings: %+v %+v", single, hier)
	}
	// 128 nodes: 8 serial waves of 16 vs 4 leaders sweeping 2 waves of 16
	// concurrently — a 4x structural advantage; 1.3x leaves slack for the
	// hop and scheduling noise.
	if hier.SpeedupVsSingle < 1.3 {
		t.Errorf("hier speedup = %.2fx, want >= 1.3x (single %.2fms, hier %.2fms)",
			hier.SpeedupVsSingle, single.PerTickMs, hier.PerTickMs)
	}
}

func TestMeasureHierScalingRejectsZeroTicks(t *testing.T) {
	if _, err := MeasureHierScaling(HierScaleConfig{NodeCounts: []int{8}}); err == nil {
		t.Error("zero ticks accepted")
	}
}
