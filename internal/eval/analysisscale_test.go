package eval

import (
	"fmt"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/modules"
)

// TestMeasureAnalysisScaling runs a scaled-down analysis measurement and
// checks the report shape: two cells per node count, per-node first with
// speedup pinned at 1, positive timings and allocation counts everywhere.
func TestMeasureAnalysisScaling(t *testing.T) {
	cfg := AnalysisScaleConfig{
		NodeCounts: []int{16, 64},
		Dim:        8,
		States:     3,
		Window:     4,
		Slide:      1,
		Fanout:     4,
		Block:      16,
		Ticks:      5,
	}
	points, err := MeasureAnalysisScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4 (per-node + batched at two scales)", len(points))
	}
	for i := 0; i < len(points); i += 2 {
		perNode, batched := points[i], points[i+1]
		if perNode.Form != "per-node" || perNode.SpeedupVsPerNode != 1 {
			t.Errorf("per-node cell = %+v", perNode)
		}
		if batched.Form != "batched" || batched.Nodes != perNode.Nodes {
			t.Errorf("batched cell = %+v (per-node %+v)", batched, perNode)
		}
		if perNode.NsPerTick <= 0 || batched.NsPerTick <= 0 {
			t.Fatalf("non-positive timings: %+v %+v", perNode, batched)
		}
		if batched.SpeedupVsPerNode <= 0 {
			t.Errorf("batched speedup = %v", batched.SpeedupVsPerNode)
		}
		// The per-node form pays at least one Read allocation per module
		// per tick; the batched form's pooled path must allocate less.
		if batched.AllocsPerTick >= perNode.AllocsPerTick {
			t.Errorf("batched allocs/tick %.0f >= per-node %.0f at %d nodes",
				batched.AllocsPerTick, perNode.AllocsPerTick, perNode.Nodes)
		}
	}
}

func TestMeasureAnalysisScalingRejectsZeroTicks(t *testing.T) {
	if _, err := MeasureAnalysisScaling(AnalysisScaleConfig{NodeCounts: []int{8}}); err == nil {
		t.Error("zero ticks accepted")
	}
}

// BenchmarkAnalysisPlane measures one full analysis tick — knn
// classification plus mavgvec smoothing over every node — as N per-node
// instances versus one batched instance per stage. The form=... suffix is
// stripped by the CI benchstat step to produce the per-node-vs-batched
// comparison.
func BenchmarkAnalysisPlane(b *testing.B) {
	cfg := DefaultAnalysisScaleConfig()
	for _, nodes := range []int{128, 512, 1024} {
		for _, form := range []struct {
			name    string
			batched bool
		}{{"pernode", false}, {"batched", true}} {
			b.Run(fmt.Sprintf("nodes=%d/form=%s", nodes, form.name), func(b *testing.B) {
				file, err := config.ParseString(analysisPlaneConfig(cfg, nodes, form.batched))
				if err != nil {
					b.Fatal(err)
				}
				env := modules.NewEnv()
				reg := modules.NewRegistry(env)
				reg.Register("feed", func() core.Module {
					return &analysisFeed{nodes: nodes, dim: cfg.Dim}
				})
				eng, err := core.NewEngine(reg, file)
				if err != nil {
					b.Fatal(err)
				}
				virtual := time.Unix(1_700_000_000, 0)
				tick := 0
				step := func() error {
					tick++
					return eng.Tick(virtual.Add(time.Duration(tick) * time.Second))
				}
				for i := 0; i < cfg.Window+2; i++ {
					if err := step(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := step(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
