package eval

import "testing"

func TestAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	opts := DefaultOptions()
	m := sharedModel(t)
	params := DefaultParams(m.NumStates())
	rows, err := Ablation(opts, params)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]AblationRow, len(rows))
	for _, r := range rows {
		t.Logf("%-45s meanBA=%.2f cleanFPR=%.2f", r.Variant, r.MeanBA, r.CleanFPR)
		byName[r.Variant] = r
	}
	base := byName["baseline combined"]
	bb := byName["baseline black-box"]
	wb := byName["baseline white-box"]
	if base.MeanBA < bb.MeanBA-0.02 || base.MeanBA < wb.MeanBA-0.02 {
		t.Errorf("combined BA %.2f should dominate bb %.2f / wb %.2f", base.MeanBA, bb.MeanBA, wb.MeanBA)
	}
	// Removing the stall metrics must hurt white-box detection materially.
	counts := byName["white-box, counts only (no stall metrics)"]
	if counts.MeanBA > wb.MeanBA-0.05 {
		t.Errorf("stall metrics ablation: counts-only BA %.2f vs full %.2f — expected a clear drop",
			counts.MeanBA, wb.MeanBA)
	}
	// The other ablations must not beat the baseline black-box by a wide
	// margin (they are the configurations we rejected).
	for _, name := range []string{"black-box, all 64 metrics", "black-box, unvalidated single k-means"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing variant %q", name)
		}
		if r.MeanBA > bb.MeanBA+0.10 {
			t.Errorf("%s BA %.2f unexpectedly beats baseline %.2f", name, r.MeanBA, bb.MeanBA)
		}
	}
}
