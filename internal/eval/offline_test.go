package eval

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/modules"
)

// collectOfflineCSVs runs a monitored cluster with a pure data-logging
// configuration (the offline-collect example's shape) and returns the two
// csv paths.
func collectOfflineCSVs(t *testing.T, slaves int, seed int64, fault hadoopsim.FaultKind, faultNode, injectAt, duration int) (bbPath, wbPath string) {
	t.Helper()
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	env := modules.NewEnv()
	names := make([]string, slaves)
	for i, n := range c.Slaves() {
		names[i] = n.Name
		env.Procfs[n.Name] = n
		env.TTLogs[n.Name] = n.TaskTrackerLog()
		env.DNLogs[n.Name] = n.DataNodeLog()
	}
	env.Clock = c.Now

	dir := t.TempDir()
	bbPath = filepath.Join(dir, "bb.csv")
	wbPath = filepath.Join(dir, "wb.csv")
	var b strings.Builder
	for i, n := range names {
		fmt.Fprintf(&b, "[sadc]\nid = sadc%d\nnode = %s\nperiod = 1\n\n", i, n)
	}
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl_tt\nkind = tasktracker\nnodes = %s\nperiod = 1\n\n", strings.Join(names, ","))
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl_dn\nkind = datanode\nnodes = %s\nperiod = 1\n\n", strings.Join(names, ","))
	fmt.Fprintf(&b, "[csv]\nid = bbsink\npath = %s\n", bbPath)
	for i := range names {
		fmt.Fprintf(&b, "input[m%d] = sadc%d.output0\n", i, i)
	}
	fmt.Fprintf(&b, "\n[csv]\nid = wbsink\npath = %s\ninput[tt] = @hl_tt\ninput[dn] = @hl_dn\n", wbPath)

	cfg, err := config.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(modules.NewRegistry(env), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < duration; i++ {
		if fault != hadoopsim.FaultNone && i == injectAt {
			if err := c.InjectFault(faultNode, fault); err != nil {
				t.Fatal(err)
			}
		}
		c.Tick()
		if err := e.Tick(c.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(c.Now()); err != nil {
		t.Fatal(err)
	}
	return bbPath, wbPath
}

func TestReadCSVAndAssemble(t *testing.T) {
	bbPath, _ := collectOfflineCSVs(t, 3, 5, hadoopsim.FaultNone, 0, 0, 90)
	rows, err := ReadCSV(bbPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	times, nodes, series, err := AssembleSeries(rows, "sadc")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("nodes = %v", nodes)
	}
	if len(times) != len(series) {
		t.Fatal("times/series length mismatch")
	}
	for i := 1; i < len(times); i++ {
		if !times[i].After(times[i-1]) {
			t.Fatal("times not strictly increasing")
		}
	}
	for _, row := range series {
		for _, v := range row {
			if len(v) != len(series[0][0]) {
				t.Fatal("ragged series")
			}
		}
	}
}

func TestAssembleSeriesErrors(t *testing.T) {
	if _, _, _, err := AssembleSeries(nil, "sadc"); err == nil {
		t.Error("empty rows should error")
	}
	rows := []CSVRow{
		{Time: time.Unix(0, 0), Node: "a", Source: "sadc", Values: []float64{1}},
		{Time: time.Unix(1, 0), Node: "b", Source: "sadc", Values: []float64{2}},
	}
	// Nodes never overlap in a second: no complete second exists.
	if _, _, _, err := AssembleSeries(rows, "sadc"); err == nil {
		t.Error("no complete second should error")
	}
}

func TestReadCSVMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"fields.csv": "time,node,source,output,values\nonly,four,fields,here\n",
		"time.csv":   "time,node,source,output,values\nnot-a-time,a,s,o,1\n",
		"value.csv":  "time,node,source,output,values\n2026-01-01T00:00:00,a,s,o,abc\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCSV(path); err == nil {
			t.Errorf("%s should fail to parse", name)
		}
	}
	if _, err := ReadCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
}

func TestOfflineAnalysisFingerpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	m := sharedModel(t)
	const culprit = 2
	bbPath, wbPath := collectOfflineCSVs(t, 6, 77, hadoopsim.FaultHang1036, culprit, 240, 800)

	params := DefaultParams(m.NumStates())
	bbAlarms, err := OfflineBlackBox(bbPath, m, params)
	if err != nil {
		t.Fatal(err)
	}
	wbAlarms, err := OfflineWhiteBox(wbPath, params)
	if err != nil {
		t.Fatal(err)
	}
	count := func(alarms []OfflineAlarm, node string) int {
		c := 0
		for _, a := range alarms {
			if a.Node == node {
				c++
			}
		}
		return c
	}
	culpritName := "slave03"
	if n := count(wbAlarms, culpritName); n == 0 {
		t.Errorf("offline white-box never flagged the culprit (alarms: %d total)", len(wbAlarms))
	}
	// The culprit must be the most-flagged node across both analyses.
	all := append(append([]OfflineAlarm(nil), bbAlarms...), wbAlarms...)
	perNode := make(map[string]int)
	for _, a := range all {
		perNode[a.Node]++
	}
	for node, c := range perNode {
		if node != culpritName && c > perNode[culpritName] {
			t.Errorf("node %s flagged %d times, culprit %s only %d", node, c, culpritName, perNode[culpritName])
		}
	}
}

func TestOfflineWhiteBoxTTOnly(t *testing.T) {
	// A csv with only tasktracker rows still analyzes.
	_, wbPath := collectOfflineCSVs(t, 3, 9, hadoopsim.FaultNone, 0, 0, 150)
	rows, err := ReadCSV(wbPath)
	if err != nil {
		t.Fatal(err)
	}
	var ttOnly []string
	ttOnly = append(ttOnly, "time,node,source,output,values")
	for _, r := range rows {
		if strings.HasPrefix(r.Source, "hadoop_log_tasktracker") {
			vals := make([]string, len(r.Values))
			for i, v := range r.Values {
				vals[i] = fmt.Sprintf("%g", v)
			}
			ttOnly = append(ttOnly, fmt.Sprintf("%s,%s,%s,%s,%s",
				r.Time.Format("2006-01-02T15:04:05"), r.Node, r.Source, r.Output, strings.Join(vals, ";")))
		}
	}
	path := filepath.Join(t.TempDir(), "tt.csv")
	if err := os.WriteFile(path, []byte(strings.Join(ttOnly, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	params := DefaultParams(4)
	if _, err := OfflineWhiteBox(path, params); err != nil {
		t.Fatalf("tt-only analysis failed: %v", err)
	}
}
