package eval

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/state"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// RestartDrillConfig sizes the crash-safe restart scenario: a control node
// runs against real TCP daemons under a multi-node outage, is killed without
// any teardown ("kill -9") after its state manager snapshotted, and a second
// control node boots from the state file into the same half-broken world.
// Ticks are virtual seconds on the cluster clock, shared by the engine, the
// breakers, and the state manager, so both lives are deterministic.
type RestartDrillConfig struct {
	Slaves int
	Seed   int64
	// Victims are the slave indexes whose daemons die at KillDaemonsAtTick
	// and come back at ReviveAtTick (which lands inside the second life).
	Victims []int
	// QuarantineVictim is the victim whose dedicated sadc instance carries
	// a per-instance failure budget, so the first life quarantines it and
	// the second life must resume its cooldown clock.
	QuarantineVictim int
	// KillDaemonsAtTick < CrashAtTick < ReviveAtTick < Ticks partition the
	// run: outage, control-node crash (end of life 1), daemon revival
	// (inside life 2), and the end of observation.
	KillDaemonsAtTick int
	CrashAtTick       int
	ReviveAtTick      int
	Ticks             int
	// QuarantineThreshold / QuarantineCooldownSec are the sadc victim's
	// failure budget; the cooldown must reach past CrashAtTick so the
	// quarantine is live when the control node dies.
	QuarantineThreshold   int
	QuarantineCooldownSec int
	// BreakerThreshold / BreakerCooldownSec configure every per-node
	// circuit breaker.
	BreakerThreshold   int
	BreakerCooldownSec int
	// ProbeBudget / ProbeIntervalSec bound the restarted node's re-probes
	// of restored-open breakers: at most ProbeBudget dial attempts per
	// probe interval (and, with the interval at or above the tick period,
	// per tick).
	ProbeBudget      int
	ProbeIntervalSec int
	// SyncDeadlineSec / SyncQuorum configure degraded-mode timestamp sync.
	SyncDeadlineSec int
	SyncQuorum      int
	// StateDir receives the state file, lock file, and both lives' CSV
	// sinks (required; tests pass t.TempDir()).
	StateDir string
	// TraceWriter, when non-nil, receives one counter line per tick across
	// both lives (the CI restart drill points this at its artifact file).
	TraceWriter io.Writer
	// Metrics, when non-nil, receives the SECOND life's telemetry — the
	// restarted control node's registry, including the asdf_state_* series.
	// The acceptance test scrapes it and checks the values against the
	// Status snapshot.
	Metrics *telemetry.Registry
}

// DefaultRestartDrillConfig is the 6-node, 4-victim scenario used by the CI
// restart drill: daemons die at t=10, the control node crashes at t=24, the
// daemons recover at t=32, and the second life is observed through t=48.
func DefaultRestartDrillConfig(stateDir string) RestartDrillConfig {
	return RestartDrillConfig{
		Slaves:                6,
		Seed:                  11,
		Victims:               []int{0, 1, 2, 3},
		QuarantineVictim:      0,
		KillDaemonsAtTick:     10,
		CrashAtTick:           24,
		ReviveAtTick:          32,
		Ticks:                 48,
		QuarantineThreshold:   4,
		QuarantineCooldownSec: 25,
		BreakerThreshold:      2,
		BreakerCooldownSec:    6,
		ProbeBudget:           2,
		ProbeIntervalSec:      2,
		SyncDeadlineSec:       2,
		SyncQuorum:            2,
		StateDir:              stateDir,
	}
}

// RestartDrillReport is what the scenario observed across both lives.
type RestartDrillReport struct {
	// QuarantineAtCrash is the sadc victim's supervisor snapshot the moment
	// the first life died — quarantined, with an absolute ReopenAt deadline.
	QuarantineAtCrash core.InstanceHealth
	// WatermarkAtCrash is the first life's replay watermark as persisted.
	WatermarkAtCrash time.Time
	// Restore is the second life's boot-time accounting (restart counter,
	// restored supervisors/breakers/watermarks, reclaimed lock).
	Restore state.RestartStatus
	// QuarantineRestored is the same instance's supervisor snapshot right
	// after the restore, before the second life's first tick.
	QuarantineRestored core.InstanceHealth
	// WatermarkRestored is the replay guard's position after the restore.
	WatermarkRestored time.Time
	// MaxProbesPerTick is the largest number of dial attempts the second
	// life made to dead daemons in any one tick; the staggered re-probe
	// plan bounds it by ProbeBudget.
	MaxProbesPerTick int
	// ProbeTicks counts ticks that carried at least one such dial attempt;
	// > 1 proves the restored herd was actually spread out.
	ProbeTicks int
	// Readmitted reports the quarantined instance came back: healthy, with
	// a readmission counted, after its restored cooldown expired.
	Readmitted bool
	// FinalQuarantined is the same instance's final supervisor snapshot.
	FinalQuarantined core.InstanceHealth
	// CSVRows / DuplicateRows / OutOfOrderRows scan the two lives'
	// concatenated sink output per node stream: any second published by
	// both lives is a duplicate, any timestamp regression is out of order.
	CSVRows        int
	DuplicateRows  int
	OutOfOrderRows int
	// SurvivorPublishesLife2 counts white-box publishes on surviving nodes
	// during the second life; > 0 proves the restarted node collects.
	SurvivorPublishesLife2 uint64
	// RunErrors counts module run errors across both lives (supervised:
	// reported, never fatal).
	RunErrors int
	// Status is the second life's final operator snapshot, including the
	// restart section, taken from the quiesced engine — the reference the
	// scraped asdf_state_* metrics must agree with.
	Status modules.StatusReport
}

// restartView pairs an engine with its state manager for CollectStatus,
// exactly as cmd/asdf's status endpoints do.
type restartView struct {
	*core.Engine
	mgr *state.Manager
}

func (v restartView) RestartStatus() (state.RestartStatus, bool) {
	return v.mgr.Status(), true
}

// RunRestartDrill runs the kill -9 scenario end to end and returns what it
// observed. The caller asserts on the report; this function only fails on
// setup errors.
func RunRestartDrill(cfg RestartDrillConfig) (*RestartDrillReport, error) {
	isVictim := make(map[int]bool, len(cfg.Victims))
	for _, v := range cfg.Victims {
		if v < 0 || v >= cfg.Slaves {
			return nil, fmt.Errorf("eval: victim %d out of range for %d slaves", v, cfg.Slaves)
		}
		isVictim[v] = true
	}
	if len(isVictim) == 0 || len(isVictim) >= cfg.Slaves {
		return nil, fmt.Errorf("eval: need 1..%d victims, have %d", cfg.Slaves-1, len(isVictim))
	}
	if !isVictim[cfg.QuarantineVictim] {
		return nil, fmt.Errorf("eval: quarantine victim %d is not a victim", cfg.QuarantineVictim)
	}
	if !(cfg.KillDaemonsAtTick < cfg.CrashAtTick && cfg.CrashAtTick < cfg.ReviveAtTick && cfg.ReviveAtTick < cfg.Ticks) {
		return nil, fmt.Errorf("eval: phases must satisfy kill < crash < revive < ticks")
	}
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("eval: StateDir is required")
	}

	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(cfg.Slaves, cfg.Seed))
	if err != nil {
		return nil, err
	}
	var daemons []*nodeDaemons
	defer func() {
		for _, d := range daemons {
			d.close()
		}
	}()
	var names, sadcAddrs, hlogAddrs []string
	for _, n := range c.Slaves() {
		d, err := startDaemons(n, c.Now, "127.0.0.1:0", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		daemons = append(daemons, d)
		names = append(names, n.Name)
		sadcAddrs = append(sadcAddrs, d.sadcAddr)
		hlogAddrs = append(hlogAddrs, d.hlogAddr)
	}

	// Both lives load the identical configuration (only the sink path
	// differs), exactly as a restarted cmd/asdf re-reads its -config. The
	// white-box collector runs the columnar push transport, so the second
	// life's fresh subscriptions re-serve each daemon's full history — the
	// hazard the restored replay watermark must suppress.
	conf := func(csvPath string) string {
		var b strings.Builder
		fmt.Fprintf(&b, `
[hadoop_log]
id = hl
kind = tasktracker
mode = rpc
nodes = %s
addrs = %s
period = 1
wire = columnar
subscribe = true
sync_deadline = %d
sync_quorum = %d
breaker_threshold = %d
breaker_cooldown = %d
`, strings.Join(names, ","), strings.Join(hlogAddrs, ","),
			cfg.SyncDeadlineSec, cfg.SyncQuorum, cfg.BreakerThreshold, cfg.BreakerCooldownSec)
		fmt.Fprintf(&b, `
[sadc]
id = sv
node = %s
mode = rpc
addr = %s
period = 1
breaker_threshold = %d
breaker_cooldown = %d
quarantine_threshold = %d
quarantine_cooldown = %d
`, names[cfg.QuarantineVictim], sadcAddrs[cfg.QuarantineVictim],
			cfg.BreakerThreshold, cfg.BreakerCooldownSec,
			cfg.QuarantineThreshold, cfg.QuarantineCooldownSec)
		b.WriteString("\n[print]\nid = p\nonly_nonzero = false\ninput[sv] = sv.output0\n")
		fmt.Fprintf(&b, "\n[csv]\nid = sink\npath = %s\n", csvPath)
		for i, n := range names {
			fmt.Fprintf(&b, "input[m%d] = hl.%s\n", i, n)
		}
		return b.String()
	}

	report := &RestartDrillReport{}
	var mu sync.Mutex
	countErr := func(string, error) {
		mu.Lock()
		report.RunErrors++
		mu.Unlock()
	}
	statePath := filepath.Join(cfg.StateDir, "asdf.state")
	trace := func(life, tick, probes int, note string) {
		if cfg.TraceWriter == nil {
			return
		}
		fmt.Fprintf(cfg.TraceWriter, "life=%d tick=%d probes=%d %s\n", life, tick, probes, note)
	}

	buildEngine := func(csvPath string, metrics *telemetry.Registry) (*core.Engine, error) {
		env := modules.NewEnv()
		env.Clock = c.Now
		env.Metrics = metrics
		parsed, err := config.ParseString(conf(csvPath))
		if err != nil {
			return nil, err
		}
		return core.NewEngine(modules.NewRegistry(env), parsed,
			core.WithTelemetry(metrics),
			core.WithErrorHandler(countErr))
	}

	// ---- Life 1: run into the outage, snapshot, die without teardown.
	csv1 := filepath.Join(cfg.StateDir, "life1.csv")
	eng1, err := buildEngine(csv1, nil)
	if err != nil {
		return nil, err
	}
	mgr1, err := state.Open(eng1, state.Options{
		Path:          statePath,
		Clock:         c.Now,
		ProbeBudget:   cfg.ProbeBudget,
		ProbeInterval: time.Duration(cfg.ProbeIntervalSec) * time.Second,
	})
	if err != nil {
		return nil, err
	}
	for tick := 1; tick <= cfg.CrashAtTick; tick++ {
		if tick == cfg.KillDaemonsAtTick {
			for _, v := range cfg.Victims {
				daemons[v].kill()
			}
		}
		c.Tick()
		if err := eng1.Tick(c.Now()); err != nil {
			return nil, err
		}
		// The periodic snapshotter, in lockstep with virtual time.
		if err := mgr1.SnapshotNow(); err != nil {
			return nil, err
		}
		trace(1, tick, 0, "")
	}
	// Drain the sink, then take the snapshot the crash will leave behind:
	// the persisted watermark must cover exactly what reached the CSV.
	if err := eng1.Flush(c.Now()); err != nil {
		return nil, err
	}
	if err := mgr1.SnapshotNow(); err != nil {
		return nil, err
	}
	report.QuarantineAtCrash, _ = eng1.InstanceHealthOf("sv")
	if rg, ok := mustModule(eng1, "hl").(state.ReplayGuard); ok {
		report.WatermarkAtCrash, _ = rg.ReplayWatermark()
	}
	// kill -9: no Flush, no mgr1.Close, no connection teardown. The engine
	// and manager are simply abandoned; only the lock file needs doctoring,
	// because the "dead" process is still this test's live PID.
	if err := os.WriteFile(statePath+".lock", []byte("999999999\n"), 0o644); err != nil {
		return nil, err
	}

	// ---- Life 2: boot from the state file into the same outage.
	csv2 := filepath.Join(cfg.StateDir, "life2.csv")
	eng2, err := buildEngine(csv2, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	var lockLog strings.Builder
	mgr2, err := state.Open(eng2, state.Options{
		Path:          statePath,
		Clock:         c.Now,
		ProbeBudget:   cfg.ProbeBudget,
		ProbeInterval: time.Duration(cfg.ProbeIntervalSec) * time.Second,
		Metrics:       cfg.Metrics,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(&lockLog, format+"\n", args...)
		},
		// Deterministic probe jitter keeps the drill's stagger schedule
		// reproducible under CI.
		Rand: func() float64 { return 0.5 },
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = mgr2.Close() }()
	report.Restore = mgr2.Status()
	report.QuarantineRestored, _ = eng2.InstanceHealthOf("sv")
	hl2 := mustModule(eng2, "hl")
	if rg, ok := hl2.(state.ReplayGuard); ok {
		report.WatermarkRestored, _ = rg.ReplayWatermark()
	}

	// Per-tick dial attempts against dead daemons: breaker fast-fails and
	// reconnect holdoffs are not counted as failures by the managed client,
	// so the victims' TotalFailures delta per tick is exactly the number of
	// half-open probes attempted that tick.
	hlHealth, ok := hl2.(hlHealthReporter)
	if !ok {
		return nil, fmt.Errorf("eval: hadoop_log module does not report health")
	}
	svHealth, ok := mustModule(eng2, "sv").(sadcHealthReporter)
	if !ok {
		return nil, fmt.Errorf("eval: sadc module does not report health")
	}
	victimFails := func() uint64 {
		var n uint64
		healths := hlHealth.ClientHealths()
		for _, v := range cfg.Victims {
			n += healths[names[v]].TotalFailures
		}
		if h, ok := svHealth.ClientHealth(); ok {
			n += h.TotalFailures
		}
		return n
	}

	hlOuts := eng2.OutputPortsOf("hl")
	survivorHL := func() uint64 {
		var n uint64
		for i, out := range hlOuts {
			if !isVictim[i] {
				n += out.Published()
			}
		}
		return n
	}
	survivorAtBoot := survivorHL()

	lastFails := victimFails()
	for tick := cfg.CrashAtTick + 1; tick <= cfg.Ticks; tick++ {
		if tick == cfg.ReviveAtTick {
			for _, v := range cfg.Victims {
				if err := daemons[v].restart(); err != nil {
					return nil, err
				}
			}
		}
		c.Tick()
		if err := eng2.Tick(c.Now()); err != nil {
			return nil, err
		}
		if err := mgr2.SnapshotNow(); err != nil {
			return nil, err
		}
		now := victimFails()
		probes := int(now - lastFails)
		lastFails = now
		if probes > 0 {
			report.ProbeTicks++
			if probes > report.MaxProbesPerTick {
				report.MaxProbesPerTick = probes
			}
		}
		ih, _ := eng2.InstanceHealthOf("sv")
		trace(2, tick, probes, fmt.Sprintf("sv=%s survivor_hl=%d", ih.State, survivorHL()))
	}
	if err := eng2.Flush(c.Now()); err != nil {
		return nil, err
	}
	if err := mgr2.SnapshotNow(); err != nil {
		return nil, err
	}
	report.SurvivorPublishesLife2 = survivorHL() - survivorAtBoot
	report.FinalQuarantined, _ = eng2.InstanceHealthOf("sv")
	report.Readmitted = report.FinalQuarantined.State == core.SupervisorHealthy &&
		report.FinalQuarantined.Readmissions > report.QuarantineRestored.Readmissions
	// A clean shutdown this time: the final snapshot and the lock release
	// happen before the status snapshot, so the report (and any scrape of
	// cfg.Metrics) reflects the state file as left on disk.
	if err := mgr2.Close(); err != nil {
		return nil, err
	}
	report.Status = modules.CollectStatus(restartView{eng2, mgr2}, c.Now())
	if !report.Restore.LockReclaimed && !strings.Contains(lockLog.String(), "reclaiming") {
		return nil, fmt.Errorf("eval: stale lock was not reclaimed: %q", lockLog.String())
	}

	if err := scanLineage(report, csv1, csv2); err != nil {
		return nil, err
	}
	return report, nil
}

// mustModule returns the named instance's module; the drill's own config
// guarantees it exists.
func mustModule(eng *core.Engine, id string) core.Module {
	mod, _ := eng.ModuleOf(id)
	return mod
}

// scanLineage concatenates the two lives' CSV output and checks every node
// stream for duplicate or rewound timestamps. The timestamp format is
// lexicographically ordered, so string comparison suffices.
func scanLineage(report *RestartDrillReport, csv1, csv2 string) error {
	var rows []string
	for i, path := range []string{csv1, csv2} {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
		if len(lines) == 0 || !strings.HasPrefix(lines[0], "time,") {
			return fmt.Errorf("eval: life %d CSV missing header", i+1)
		}
		rows = append(rows, lines[1:]...)
	}
	last := make(map[string]string)
	for _, line := range rows {
		f := strings.SplitN(line, ",", 5)
		if len(f) != 5 {
			return fmt.Errorf("eval: malformed CSV row %q", line)
		}
		report.CSVRows++
		key := f[1] + "/" + f[3]
		if prev, ok := last[key]; ok {
			switch {
			case f[0] == prev:
				report.DuplicateRows++
			case f[0] < prev:
				report.OutOfOrderRows++
			}
		}
		last[key] = f[0]
	}
	return nil
}
