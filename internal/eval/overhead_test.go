package eval

import "testing"

func TestMeasureTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement test")
	}
	rows, err := MeasureTable3(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	want := []string{"hadoop_log_rpcd", "sadc_rpcd", "fpt-core"}
	for i, r := range rows {
		if r.Process != want[i] {
			t.Errorf("row %d = %q, want %q", i, r.Process, want[i])
		}
		if r.CPUPct < 0 {
			t.Errorf("%s CPU%% = %v", r.Process, r.CPUPct)
		}
		// The paper's headline: collection daemons cost well under 1% of a
		// core at 1 Hz. Generous bound to stay robust on slow CI machines.
		if i < 2 && r.CPUPct > 20 {
			t.Errorf("%s CPU%% = %.2f, expected lightweight", r.Process, r.CPUPct)
		}
		if r.MemoryMB < 0 || r.MemoryMB > 500 {
			t.Errorf("%s memory = %.1f MB, implausible", r.Process, r.MemoryMB)
		}
	}
	// Per-node daemons must be cheaper than the whole control-node
	// pipeline (Table 3's shape).
	if rows[0].CPUPct > rows[2].CPUPct || rows[1].CPUPct > rows[2].CPUPct {
		t.Errorf("daemons should cost less than fpt-core: %+v", rows)
	}
}

func TestMeasureTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement test")
	}
	rows, err := MeasureTable4(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (3 types + sum)", len(rows))
	}
	names := []string{"sadc-tcp", "hl-dn-tcp", "hl-tt-tcp", "TCP Sum"}
	var sumStatic, sumIter float64
	for i, r := range rows {
		if r.RPCType != names[i] {
			t.Errorf("row %d = %q, want %q", i, r.RPCType, names[i])
		}
		if i < 3 {
			if r.StaticKB <= 0 {
				t.Errorf("%s static = %v, want > 0 (hello exchange)", r.RPCType, r.StaticKB)
			}
			if r.PerIterKBs <= 0 {
				t.Errorf("%s per-iter = %v, want > 0", r.RPCType, r.PerIterKBs)
			}
			// Table 4 shape: per-node monitoring traffic is a few kB/s.
			if r.PerIterKBs > 50 {
				t.Errorf("%s per-iter = %.2f kB/s, implausibly heavy", r.RPCType, r.PerIterKBs)
			}
			sumStatic += r.StaticKB
			sumIter += r.PerIterKBs
		}
	}
	if diff := rows[3].StaticKB - sumStatic; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum static %.3f != %.3f", rows[3].StaticKB, sumStatic)
	}
	if diff := rows[3].PerIterKBs - sumIter; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum per-iter %.3f != %.3f", rows[3].PerIterKBs, sumIter)
	}
	// The paper's sadc record outweighs a single log-vector fetch.
	if rows[0].PerIterKBs < rows[1].PerIterKBs/4 {
		t.Errorf("sadc traffic %.2f unexpectedly below hl-dn %.2f", rows[0].PerIterKBs, rows[1].PerIterKBs)
	}
}
