package eval

import (
	"testing"
)

// TestHeadlineRobustAcrossSeeds re-runs the Figure 7 experiment from
// scratch — training included — under different seeds. The headline shape
// (combined dominates, and beats the paper's 80% mean) must not depend on
// seed luck; this is the regression test for the validated-training and
// workload-texture decisions in DESIGN.md §5a.
func TestHeadlineRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	for _, seed := range []int64{1, 7, 5555} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			opts := DefaultOptions()
			opts.Seed = seed
			model, err := TrainDefaultModel(opts.Slaves, opts.Seed, opts.TrainSeconds, opts.NumStates)
			if err != nil {
				t.Fatal(err)
			}
			params := DefaultParams(model.NumStates())
			results, err := Figure7(opts, model, params)
			if err != nil {
				t.Fatal(err)
			}
			bb := MeanBalancedAccuracy(results, ApproachBlackBox)
			wb := MeanBalancedAccuracy(results, ApproachWhiteBox)
			cb := MeanBalancedAccuracy(results, ApproachCombined)
			t.Logf("seed %d: bb=%.2f wb=%.2f combined=%.2f", seed, bb, wb, cb)
			if cb < 0.75 {
				t.Errorf("seed %d: combined mean BA %.2f below 0.75 (paper: 0.80)", seed, cb)
			}
			if cb < bb-0.02 || cb < wb-0.02 {
				t.Errorf("seed %d: combined %.2f does not dominate bb %.2f / wb %.2f", seed, cb, bb, wb)
			}
		})
	}
}
