package eval

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/asdf-project/asdf/internal/analysis"
)

// CSVRow is one record written by the csv sink module
// ("time,node,source,output,values" with semicolon-separated values).
type CSVRow struct {
	Time   time.Time
	Node   string
	Source string
	Output string
	Values []float64
}

// csvTimeLayout matches the csv module's timestamp format.
const csvTimeLayout = "2006-01-02T15:04:05"

// ReadCSV loads a csv-module file, supporting ASDF's offline role (§2.1):
// data collected by a pure-logging configuration can be re-analyzed later
// with any parameters.
func ReadCSV(path string) ([]CSVRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	defer func() {
		_ = f.Close() // read-only
	}()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	var rows []CSVRow
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if lineNo == 1 || line == "" { // header
			continue
		}
		parts := strings.SplitN(line, ",", 5)
		if len(parts) != 5 {
			return nil, fmt.Errorf("eval: %s:%d: want 5 fields, got %d", path, lineNo, len(parts))
		}
		ts, err := time.Parse(csvTimeLayout, parts[0])
		if err != nil {
			return nil, fmt.Errorf("eval: %s:%d: %w", path, lineNo, err)
		}
		row := CSVRow{Time: ts, Node: parts[1], Source: parts[2], Output: parts[3]}
		for _, v := range strings.Split(parts[4], ";") {
			v = strings.TrimSpace(v)
			if v == "" {
				continue
			}
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("eval: %s:%d: value %q: %w", path, lineNo, v, err)
			}
			row.Values = append(row.Values, x)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eval: reading %s: %w", path, err)
	}
	return rows, nil
}

// AssembleSeries groups rows whose Source has the given prefix into a
// per-second, per-node series: series[s][n] is node nodes[n]'s vector at
// times[s]. Seconds missing a vector for some node are dropped (the same
// all-nodes-or-nothing rule the hadoop_log module applies).
func AssembleSeries(rows []CSVRow, sourcePrefix string) (times []time.Time, nodes []string, series [][][]float64, err error) {
	bySec := make(map[int64]map[string][]float64)
	nodeSet := make(map[string]bool)
	for _, r := range rows {
		if !strings.HasPrefix(r.Source, sourcePrefix) {
			continue
		}
		sec := r.Time.Unix()
		if bySec[sec] == nil {
			bySec[sec] = make(map[string][]float64)
		}
		bySec[sec][r.Node] = r.Values
		nodeSet[r.Node] = true
	}
	if len(nodeSet) == 0 {
		return nil, nil, nil, fmt.Errorf("eval: no rows with source prefix %q", sourcePrefix)
	}
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	secs := make([]int64, 0, len(bySec))
	for s := range bySec {
		secs = append(secs, s)
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i] < secs[j] })
	for _, sec := range secs {
		row := make([][]float64, len(nodes))
		complete := true
		for i, n := range nodes {
			v, ok := bySec[sec][n]
			if !ok {
				complete = false
				break
			}
			row[i] = v
		}
		if !complete {
			continue
		}
		times = append(times, time.Unix(sec, 0).UTC())
		series = append(series, row)
	}
	if len(series) == 0 {
		return nil, nil, nil, fmt.Errorf("eval: no second has data from all %d nodes", len(nodes))
	}
	return times, nodes, series, nil
}

// OfflineAlarm is one offline fingerpointing verdict.
type OfflineAlarm struct {
	Time  time.Time
	Node  string
	Score float64
}

// OfflineBlackBox re-runs the black-box analysis over a csv file of raw
// sadc vectors (source "sadc"), classifying with the given model.
func OfflineBlackBox(path string, model *analysis.Model, params AnalysisParams) ([]OfflineAlarm, error) {
	rows, err := ReadCSV(path)
	if err != nil {
		return nil, err
	}
	times, nodes, series, err := AssembleSeries(rows, "sadc")
	if err != nil {
		return nil, err
	}
	bb, err := analysis.NewBlackBox(analysis.BlackBoxConfig{
		Nodes:       len(nodes),
		NumStates:   model.NumStates(),
		WindowSize:  params.WindowSize,
		WindowSlide: params.WindowSlide,
		Threshold:   params.BBThreshold,
	})
	if err != nil {
		return nil, err
	}
	var alarms []OfflineAlarm
	states := make([]int, len(nodes))
	for s, row := range series {
		for n, vec := range row {
			if states[n], err = model.Classify(vec); err != nil {
				return nil, err
			}
		}
		res, err := bb.Observe(states)
		if err != nil {
			return nil, err
		}
		if res == nil {
			continue
		}
		for n, flagged := range res.Flagged {
			if flagged {
				alarms = append(alarms, OfflineAlarm{Time: times[s], Node: nodes[n], Score: res.Scores[n]})
			}
		}
	}
	return alarms, nil
}

// OfflineWhiteBox re-runs the white-box analysis over a csv file of Hadoop
// log state vectors (sources "hadoop_log_*"). TaskTracker and DataNode
// vectors for the same node and second are concatenated when both are
// present.
func OfflineWhiteBox(path string, params AnalysisParams) ([]OfflineAlarm, error) {
	rows, err := ReadCSV(path)
	if err != nil {
		return nil, err
	}
	ttTimes, ttNodes, ttSeries, ttErr := AssembleSeries(rows, "hadoop_log_tasktracker")
	dnTimes, dnNodes, dnSeries, dnErr := AssembleSeries(rows, "hadoop_log_datanode")
	if ttErr != nil && dnErr != nil {
		return nil, fmt.Errorf("eval: no hadoop_log rows: %v; %v", ttErr, dnErr)
	}

	times, nodes, series := ttTimes, ttNodes, ttSeries
	if ttErr != nil {
		times, nodes, series = dnTimes, dnNodes, dnSeries
	} else if dnErr == nil {
		times, nodes, series = concatSeries(ttTimes, ttNodes, ttSeries, dnTimes, dnNodes, dnSeries)
	}
	if len(series) == 0 {
		return nil, fmt.Errorf("eval: no overlapping hadoop_log data")
	}

	wb, err := analysis.NewWhiteBox(analysis.WhiteBoxConfig{
		Nodes:       len(nodes),
		Metrics:     len(series[0][0]),
		WindowSize:  params.WindowSize,
		WindowSlide: params.WindowSlide,
		K:           params.WBK,
	})
	if err != nil {
		return nil, err
	}
	var alarms []OfflineAlarm
	for s, row := range series {
		res, err := wb.Observe(row)
		if err != nil {
			return nil, err
		}
		if res == nil {
			continue
		}
		for n, flagged := range res.Flagged {
			if flagged {
				alarms = append(alarms, OfflineAlarm{Time: times[s], Node: nodes[n], Score: res.Scores[n]})
			}
		}
	}
	return alarms, nil
}

// concatSeries joins two aligned series on (time, node), keeping only
// seconds present in both and nodes present in both.
func concatSeries(
	aTimes []time.Time, aNodes []string, aSeries [][][]float64,
	bTimes []time.Time, bNodes []string, bSeries [][][]float64,
) ([]time.Time, []string, [][][]float64) {
	bIdxByTime := make(map[int64]int, len(bTimes))
	for i, t := range bTimes {
		bIdxByTime[t.Unix()] = i
	}
	bNodeIdx := make(map[string]int, len(bNodes))
	for i, n := range bNodes {
		bNodeIdx[n] = i
	}
	var nodes []string
	var aKeep, bKeep []int
	for i, n := range aNodes {
		if j, ok := bNodeIdx[n]; ok {
			nodes = append(nodes, n)
			aKeep = append(aKeep, i)
			bKeep = append(bKeep, j)
		}
	}
	var times []time.Time
	var series [][][]float64
	for i, t := range aTimes {
		j, ok := bIdxByTime[t.Unix()]
		if !ok {
			continue
		}
		row := make([][]float64, len(nodes))
		for k := range nodes {
			av := aSeries[i][aKeep[k]]
			bv := bSeries[j][bKeep[k]]
			v := make([]float64, 0, len(av)+len(bv))
			v = append(v, av...)
			v = append(v, bv...)
			row[k] = v
		}
		times = append(times, t)
		series = append(series, row)
	}
	return times, nodes, series
}
