package eval

import (
	"fmt"
	"strings"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/sadc"
)

// ShardScaleConfig sizes the shard-scaling measurement: one multi-node
// sadc instance per engine, polling simulated collection daemons a fixed
// RPC latency away, swept serially (a single shard at the default fanout)
// and sharded. The daemons are in-process fakes — a time.Sleep plus a
// canned record — so the measurement isolates the collection plane's
// concurrency structure from daemon cost, which Table 3 covers separately.
type ShardScaleConfig struct {
	// NodeCounts are the simulated cluster sizes to measure.
	NodeCounts []int
	// Shards and ShardFanout shape the sharded sweep (the serial baseline
	// always runs shards = 1 with the default fanout).
	Shards      int
	ShardFanout int
	// RPCLatency is the simulated per-call network round trip.
	RPCLatency time.Duration
	// Ticks is how many collection ticks to time per configuration.
	Ticks int
}

// DefaultShardScaleConfig mirrors the CI shard-scaling suite: 128 to 1024
// nodes, 8 shards of 16 workers, 500µs per RPC.
func DefaultShardScaleConfig() ShardScaleConfig {
	return ShardScaleConfig{
		NodeCounts:  []int{128, 512, 1024},
		Shards:      8,
		ShardFanout: 16,
		RPCLatency:  500 * time.Microsecond,
		Ticks:       20,
	}
}

// ShardScalePoint is one measured (nodes, mode) cell.
type ShardScalePoint struct {
	Nodes       int     `json:"nodes"`
	Shards      int     `json:"shards"`
	ShardFanout int     `json:"shard_fanout,omitempty"`
	PerTickMs   float64 `json:"per_tick_ms"`
	// SpeedupVsSerial is this cell's per-tick latency advantage over the
	// serial (single-shard) cell at the same node count; 1.0 for the
	// serial cells themselves.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// delayedCaller fakes a collection daemon one network round trip away.
type delayedCaller struct {
	delay time.Duration
	rec   sadc.Record
}

func (c *delayedCaller) Call(method string, params, result any) error {
	time.Sleep(c.delay)
	if rec, ok := result.(*sadc.Record); ok {
		*rec = c.rec
	}
	return nil
}

func (c *delayedCaller) Close() error { return nil }

// MeasureShardScaling times the per-tick collection sweep of one
// multi-node sadc instance at each configured node count, single-shard
// versus sharded, and reports both cells per node count (serial first).
func MeasureShardScaling(cfg ShardScaleConfig) ([]ShardScalePoint, error) {
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("shardscale: ticks must be positive")
	}
	var points []ShardScalePoint
	for _, nodes := range cfg.NodeCounts {
		serial, err := timeSweep(nodes, 1, 0, cfg)
		if err != nil {
			return nil, err
		}
		sharded, err := timeSweep(nodes, cfg.Shards, cfg.ShardFanout, cfg)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if sharded > 0 {
			speedup = float64(serial) / float64(sharded)
		}
		points = append(points,
			ShardScalePoint{Nodes: nodes, Shards: 1,
				PerTickMs: float64(serial) / float64(time.Millisecond), SpeedupVsSerial: 1},
			ShardScalePoint{Nodes: nodes, Shards: cfg.Shards, ShardFanout: cfg.ShardFanout,
				PerTickMs: float64(sharded) / float64(time.Millisecond), SpeedupVsSerial: speedup})
	}
	return points, nil
}

// timeSweep builds one engine around fake daemons and returns the mean
// per-tick wall time over cfg.Ticks ticks.
func timeSweep(nodes, shards, shardFanout int, cfg ShardScaleConfig) (time.Duration, error) {
	names := make([]string, nodes)
	addrs := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%04d", i)
		addrs[i] = fmt.Sprintf("10.0.0.%d:9999", i)
	}
	env := modules.NewEnv()
	env.Dial = func(addr, client string) (rpc.Caller, error) {
		return &delayedCaller{delay: cfg.RPCLatency, rec: sadc.Record{Node: make([]float64, 64)}}, nil
	}
	cfgText := fmt.Sprintf(
		"[sadc]\nid = collect\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1s\nshards = %d\nshard_fanout = %d\n",
		strings.Join(names, ","), strings.Join(addrs, ","), shards, shardFanout)
	file, err := config.ParseString(cfgText)
	if err != nil {
		return 0, err
	}
	eng, err := core.NewEngine(modules.NewRegistry(env), file)
	if err != nil {
		return 0, err
	}
	virtual := time.Unix(1_700_000_000, 0)
	// One warmup tick keeps scheduler start-up out of the timing.
	if err := eng.Tick(virtual.Add(time.Second)); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < cfg.Ticks; i++ {
		if err := eng.Tick(virtual.Add(time.Duration(i+2) * time.Second)); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(cfg.Ticks), nil
}
