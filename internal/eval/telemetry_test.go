package eval

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/asdf-project/asdf/internal/telemetry"
)

// The telemetry acceptance contract: on a quiesced engine, every counter on
// the /metrics exposition surface equals the corresponding field of the
// /status snapshot — the two operator surfaces may never disagree. The
// scenarios below drive real pipelines (TCP collection daemons with an
// injected outage; a panicking and a wedging module under quarantine) and
// then compare the scrape, series by series, to the StatusReport.

// scrape serves reg over a real HTTP handler — the same WriteTo path
// cmd/asdf mounts on GET /metrics — fetches it, and parses the exposition
// text back into series values. When the ASDF_METRICS_DUMP environment
// variable names a directory, the raw scraped text is also written there as
// <TestName>.txt (the CI fault drill uploads the directory as an artifact).
func scrape(t *testing.T, reg *telemetry.Registry) map[string]float64 {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := reg.WriteTo(w); err != nil {
			t.Errorf("metrics write: %v", err)
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()

	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dir := os.Getenv("ASDF_METRICS_DUMP"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("ASDF_METRICS_DUMP: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, t.Name()+".txt"), buf, 0o644); err != nil {
			t.Fatalf("ASDF_METRICS_DUMP: %v", err)
		}
	}
	vals, err := telemetry.ParseText(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	return vals
}

// check asserts one scraped series has exactly the expected value.
func check(t *testing.T, scraped map[string]float64, series string, want float64) {
	t.Helper()
	got, ok := scraped[series]
	if !ok {
		t.Errorf("series %s missing from scrape (want %v)", series, want)
		return
	}
	if got != want {
		t.Errorf("scraped %s = %v, want %v (status snapshot)", series, got, want)
	}
}

// TestResilienceMetricsMatchStatus runs the collection-plane fault drill —
// real sadc/hadoop-log daemons over TCP, one node killed and revived — with
// a telemetry registry attached, then checks every RPC, sync, and
// supervisor series against the final StatusReport.
func TestResilienceMetricsMatchStatus(t *testing.T) {
	cfg := DefaultResilienceConfig()
	cfg.Metrics = telemetry.NewRegistry()
	rep, err := RunCollectionResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scraped := scrape(t, cfg.Metrics)
	status := rep.Status

	// Sanity: the scenario must actually have exercised the fault paths,
	// otherwise the equalities below are vacuous zero == zero.
	if rep.Partial == 0 || !rep.BreakerOpened || rep.VictimReconnects < 2 {
		t.Fatalf("scenario did not degrade: partial=%d opened=%v reconnects=%d",
			rep.Partial, rep.BreakerOpened, rep.VictimReconnects)
	}

	// Per-node RPC plane: every managed connection in the Breakers map has
	// addr-labeled call, failure, reconnect, and breaker-state series.
	for inst, nodes := range status.Breakers {
		for node, h := range nodes {
			al := fmt.Sprintf(`{addr=%q}`, h.Addr)
			check(t, scraped, "asdf_rpc_transport_failures_total"+al, float64(h.TotalFailures))
			check(t, scraped, "asdf_rpc_reconnects_total"+al, float64(h.Reconnects))
			check(t, scraped, "asdf_rpc_breaker_state"+al, float64(h.State))
			if _, ok := scraped["asdf_rpc_calls_total"+al]; !ok {
				t.Errorf("no calls_total series for %s/%s (%s)", inst, node, h.Addr)
			}
		}
	}
	if status.Breakers["hl"] == nil {
		t.Fatal("status has no hl breaker map; RPC comparison was vacuous")
	}

	// Sync plane.
	for inst, s := range status.Sync {
		il := fmt.Sprintf(`{instance=%q}`, inst)
		check(t, scraped, "asdf_sync_partial_timestamps_total"+il, float64(s.Partial))
		check(t, scraped, "asdf_sync_dropped_timestamps_total"+il, float64(s.Dropped))
		for node, missing := range s.MissingByNode {
			check(t, scraped,
				fmt.Sprintf(`asdf_sync_missing_seconds_total{instance=%q,node=%q}`, inst, node),
				float64(missing))
		}
	}
	if len(status.Sync) == 0 {
		t.Fatal("status has no sync counters; sync comparison was vacuous")
	}

	// Supervisor plane: the collection outage surfaces as module run errors.
	for _, ih := range status.Instances {
		il := fmt.Sprintf(`{instance=%q}`, ih.ID)
		check(t, scraped, fmt.Sprintf(`asdf_supervisor_failures_total{instance=%q,kind="error"}`, ih.ID),
			float64(ih.Errors))
		check(t, scraped, "asdf_supervisor_state"+il, float64(ih.State))
	}

	// Engine plane: one tick histogram observation per engine tick.
	check(t, scraped, "asdf_engine_tick_seconds_count", float64(cfg.Ticks))
}

// TestSupervisedMetricsMatchStatus runs the quarantine scenario — panicker,
// wedger, healthy siblings — with telemetry attached and checks the
// supervisor transition counters against the status RPC snapshot.
func TestSupervisedMetricsMatchStatus(t *testing.T) {
	cfg := DefaultSupervisedConfig()
	cfg.Metrics = telemetry.NewRegistry()
	rep, err := RunSupervised(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scraped := scrape(t, cfg.Metrics)

	if rep.PanickerHealth.Panics == 0 || rep.WedgerHealth.Timeouts == 0 ||
		rep.PanickerHealth.Quarantines == 0 || !rep.PanickerReadmitted {
		t.Fatalf("scenario did not exercise the supervisor: panic=%+v wedge=%+v",
			rep.PanickerHealth, rep.WedgerHealth)
	}

	for _, ih := range rep.StatusOverRPC.Instances {
		il := fmt.Sprintf(`{instance=%q}`, ih.ID)
		for kind, want := range map[string]uint64{
			"error":   ih.Errors,
			"panic":   ih.Panics,
			"timeout": ih.Timeouts,
		} {
			check(t, scraped,
				fmt.Sprintf(`asdf_supervisor_failures_total{instance=%q,kind=%q}`, ih.ID, kind),
				float64(want))
		}
		check(t, scraped, "asdf_supervisor_quarantines_total"+il, float64(ih.Quarantines))
		check(t, scraped, "asdf_supervisor_readmissions_total"+il, float64(ih.Readmissions))
		check(t, scraped, "asdf_supervisor_late_returns_total"+il, float64(ih.LateReturns))
		check(t, scraped, "asdf_supervisor_gap_fills_total"+il, float64(ih.GapFills))
		check(t, scraped, "asdf_supervisor_state"+il, float64(ih.State))
		// Every instance that ran has a latency histogram.
		if _, ok := scraped["asdf_module_run_seconds_count"+il]; !ok {
			t.Errorf("no run-latency histogram for %s", ih.ID)
		}
	}
	check(t, scraped, "asdf_engine_tick_seconds_count", float64(cfg.Ticks))
}
