package eval

import (
	"testing"
	"time"
)

// TestCollectionResilience is the acceptance scenario for the resilient
// collection plane: a 3-node cluster with one node's daemons killed
// mid-run. White-box collection must keep publishing within the straggler
// deadline (no stall), the victim's breaker must open, and after the
// daemons restart the half-open probe must re-attach the node with no
// collector restart.
func TestCollectionResilience(t *testing.T) {
	cfg := DefaultResilienceConfig()
	rep, err := RunCollectionResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// No stall: surviving nodes kept publishing through the outage...
	if rep.SurvivorHLDuringOutage == 0 {
		t.Error("white-box collection stalled during the outage")
	}
	// ...and never paused longer than the straggler deadline plus slack
	// for the collection period itself.
	if limit := cfg.SyncDeadlineSec + 3; rep.MaxSurvivorGapTicks > limit {
		t.Errorf("survivors paused %d ticks, want <= %d (sync_deadline %d)",
			rep.MaxSurvivorGapTicks, limit, cfg.SyncDeadlineSec)
	}

	// The victim's breaker opened during the outage and re-closed after
	// the restart, with a fresh dial.
	if !rep.BreakerOpened {
		t.Error("victim's circuit breaker never opened")
	}
	if !rep.BreakerReclosed {
		t.Error("victim's circuit breaker did not re-close after restart")
	}
	if rep.VictimReconnects < 2 {
		t.Errorf("victim reconnects = %d, want >= 2 (initial dial + re-attach)", rep.VictimReconnects)
	}

	// The victim re-attached on both planes with no collector restart.
	if rep.VictimHLAfterRevive == 0 {
		t.Error("victim published no white-box samples after revival")
	}
	if rep.VictimSadcAfterRevive == 0 {
		t.Error("victim published no black-box samples after revival")
	}
	if rep.VictimSadcDuringOutage != 0 {
		t.Errorf("victim published %d black-box samples while dead", rep.VictimSadcDuringOutage)
	}

	// Degraded-mode sync accounted for the victim's absence.
	if rep.Partial == 0 {
		t.Error("no partial timestamps recorded during the outage")
	}
	if rep.MissingVictim == 0 {
		t.Error("victim's missing seconds were not counted")
	}

	// Failures were reported through the supervisor, never fatal.
	if rep.RunErrors == 0 {
		t.Error("daemon death surfaced no module errors")
	}
}

// TestCollectionResilienceMultiVictim kills two of four slaves at once.
// With the sync quorum still reachable, the survivors must keep publishing,
// and both victims' breakers must open and re-close.
func TestCollectionResilienceMultiVictim(t *testing.T) {
	cfg := DefaultResilienceConfig()
	cfg.Slaves = 4
	cfg.Victim = 1
	cfg.ExtraVictims = []int{2}
	cfg.TraceWriter = faultTrace(t, "multi-victim")
	rep, err := RunCollectionResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SurvivorHLDuringOutage == 0 {
		t.Error("white-box collection stalled with two victims down")
	}
	if rep.VictimBreakersOpened != 2 {
		t.Errorf("%d victim breakers opened, want 2", rep.VictimBreakersOpened)
	}
	if !rep.BreakerReclosed {
		t.Error("primary victim's breaker did not re-close after restart")
	}
	if rep.VictimHLAfterRevive == 0 || rep.VictimSadcAfterRevive == 0 {
		t.Error("primary victim did not re-attach on both planes")
	}
	if rep.MissingVictim == 0 {
		t.Error("victim's missing seconds were not counted")
	}
}

// TestCollectionResilienceFlapping flaps the victim's daemons on a cycle
// shorter than the breaker cooldown: every half-open probe races a daemon
// that may already be gone again. The engine must neither stall nor crash,
// and once the flapping stops the victim must still re-attach.
func TestCollectionResilienceFlapping(t *testing.T) {
	cfg := DefaultResilienceConfig()
	cfg.FlapPeriodTicks = 2 // < BreakerCooldownSec (3)
	cfg.TraceWriter = faultTrace(t, "flapping")
	rep, err := RunCollectionResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SurvivorHLDuringOutage == 0 {
		t.Error("white-box collection stalled while the victim flapped")
	}
	if !rep.BreakerReclosed {
		t.Error("victim's breaker did not re-close once the flapping stopped")
	}
	if rep.VictimHLAfterRevive == 0 || rep.VictimSadcAfterRevive == 0 {
		t.Error("victim did not re-attach after the flapping stopped")
	}
	if rep.RunErrors == 0 {
		t.Error("flapping daemons surfaced no module errors")
	}
}

// TestCollectionResilienceSlowNode injects asymmetric latency just above
// the call timeout on one surviving node while the victim is dead: calls to
// the slow node must time out (counted as transport failures) without
// stalling collection from the healthy nodes, and the slow node's breaker
// must be closed again once the delay is lifted.
func TestCollectionResilienceSlowNode(t *testing.T) {
	cfg := DefaultResilienceConfig()
	// A short window keeps the wall-clock cost down: every delayed call
	// burns a real CallTimeout.
	cfg.KillAtTick = 5
	cfg.ReviveAtTick = 14
	cfg.Ticks = 22
	cfg.SlowNode = 0
	cfg.InjectDelay = 150 * time.Millisecond
	cfg.CallTimeout = 60 * time.Millisecond
	// With the victim dead AND the slow node timing out, only one node
	// reports; quorum 1 lets degraded-mode sync publish what it has.
	cfg.SyncQuorum = 1
	cfg.TraceWriter = faultTrace(t, "slow-node")
	rep, err := RunCollectionResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SlowNodeFailures == 0 {
		t.Error("injected delay above the call timeout produced no failures")
	}
	if !rep.SlowNodeReclosed {
		t.Error("slow node's breaker was not closed again after the delay lifted")
	}
	if rep.SurvivorHLDuringOutage == 0 {
		t.Error("white-box collection stalled behind the slow node")
	}
	if rep.RunErrors == 0 {
		t.Error("timeouts surfaced no module errors")
	}
}

// TestCollectionResilienceValidation covers config validation.
func TestCollectionResilienceValidation(t *testing.T) {
	bad := DefaultResilienceConfig()
	bad.Victim = 99
	if _, err := RunCollectionResilience(bad); err == nil {
		t.Error("out-of-range victim accepted")
	}
	bad = DefaultResilienceConfig()
	bad.ReviveAtTick = bad.KillAtTick
	if _, err := RunCollectionResilience(bad); err == nil {
		t.Error("bad phase ordering accepted")
	}
	bad = DefaultResilienceConfig()
	bad.ExtraVictims = []int{0, 2} // every slave a victim
	if _, err := RunCollectionResilience(bad); err == nil {
		t.Error("all-victims scenario accepted")
	}
	bad = DefaultResilienceConfig()
	bad.InjectDelay = time.Millisecond
	bad.SlowNode = bad.Victim
	if _, err := RunCollectionResilience(bad); err == nil {
		t.Error("victim doubling as slow node accepted")
	}
}
