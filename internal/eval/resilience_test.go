package eval

import (
	"testing"
)

// TestCollectionResilience is the acceptance scenario for the resilient
// collection plane: a 3-node cluster with one node's daemons killed
// mid-run. White-box collection must keep publishing within the straggler
// deadline (no stall), the victim's breaker must open, and after the
// daemons restart the half-open probe must re-attach the node with no
// collector restart.
func TestCollectionResilience(t *testing.T) {
	cfg := DefaultResilienceConfig()
	rep, err := RunCollectionResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// No stall: surviving nodes kept publishing through the outage...
	if rep.SurvivorHLDuringOutage == 0 {
		t.Error("white-box collection stalled during the outage")
	}
	// ...and never paused longer than the straggler deadline plus slack
	// for the collection period itself.
	if limit := cfg.SyncDeadlineSec + 3; rep.MaxSurvivorGapTicks > limit {
		t.Errorf("survivors paused %d ticks, want <= %d (sync_deadline %d)",
			rep.MaxSurvivorGapTicks, limit, cfg.SyncDeadlineSec)
	}

	// The victim's breaker opened during the outage and re-closed after
	// the restart, with a fresh dial.
	if !rep.BreakerOpened {
		t.Error("victim's circuit breaker never opened")
	}
	if !rep.BreakerReclosed {
		t.Error("victim's circuit breaker did not re-close after restart")
	}
	if rep.VictimReconnects < 2 {
		t.Errorf("victim reconnects = %d, want >= 2 (initial dial + re-attach)", rep.VictimReconnects)
	}

	// The victim re-attached on both planes with no collector restart.
	if rep.VictimHLAfterRevive == 0 {
		t.Error("victim published no white-box samples after revival")
	}
	if rep.VictimSadcAfterRevive == 0 {
		t.Error("victim published no black-box samples after revival")
	}
	if rep.VictimSadcDuringOutage != 0 {
		t.Errorf("victim published %d black-box samples while dead", rep.VictimSadcDuringOutage)
	}

	// Degraded-mode sync accounted for the victim's absence.
	if rep.Partial == 0 {
		t.Error("no partial timestamps recorded during the outage")
	}
	if rep.MissingVictim == 0 {
		t.Error("victim's missing seconds were not counted")
	}

	// Failures were reported through the supervisor, never fatal.
	if rep.RunErrors == 0 {
		t.Error("daemon death surfaced no module errors")
	}
}

// TestCollectionResilienceValidation covers config validation.
func TestCollectionResilienceValidation(t *testing.T) {
	bad := DefaultResilienceConfig()
	bad.Victim = 99
	if _, err := RunCollectionResilience(bad); err == nil {
		t.Error("out-of-range victim accepted")
	}
	bad = DefaultResilienceConfig()
	bad.ReviveAtTick = bad.KillAtTick
	if _, err := RunCollectionResilience(bad); err == nil {
		t.Error("bad phase ordering accepted")
	}
}
