package eval

import (
	"fmt"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/sadc"
)

// AblationRow is one variant's result: the mean balanced accuracy over the
// six Table-2 faults and the any-alarm false-positive rate on a
// problem-free run.
type AblationRow struct {
	Variant  string
	MeanBA   float64
	CleanFPR float64
}

// Ablation quantifies the design choices documented in DESIGN.md §5a by
// re-running the Figure 7 experiment with each choice reverted:
//
//   - combined / black-box-only / white-box-only (the paper's own Figure 7
//     comparison);
//   - black-box without metric selection (all 64 node metrics);
//   - black-box without validated training (single unvalidated k-means);
//   - white-box without the derived stall/failure metrics (state counts
//     only, the paper's literal text).
func Ablation(opts Options, params AnalysisParams) ([]AblationRow, error) {
	baseModel, err := TrainDefaultModel(opts.Slaves, opts.Seed, opts.TrainSeconds, opts.NumStates)
	if err != nil {
		return nil, err
	}

	var rows []AblationRow
	appendVariant := func(name string, ba, fpr float64) {
		rows = append(rows, AblationRow{Variant: name, MeanBA: ba, CleanFPR: fpr})
	}

	// Base traces drive the first four variants.
	baseClean, baseFaults, err := collectAblationTraces(opts, baseModel)
	if err != nil {
		return nil, err
	}

	for _, approach := range []Approach{ApproachCombined, ApproachBlackBox, ApproachWhiteBox} {
		ba, fpr, err := scoreVariant(baseClean, baseFaults, approach, params)
		if err != nil {
			return nil, err
		}
		appendVariant("baseline "+approach.String(), ba, fpr)
	}

	// White-box with the derived stall/failure metrics masked out: only
	// the raw per-second state counts remain (the paper's literal §4.4).
	maskedClean := maskDerived(baseClean)
	maskedFaults := make(map[hadoopsim.FaultKind]*Trace, len(baseFaults))
	for f, tr := range baseFaults {
		maskedFaults[f] = maskDerived(tr)
	}
	ba, fpr, err := scoreVariant(maskedClean, maskedFaults, ApproachWhiteBox, params)
	if err != nil {
		return nil, err
	}
	appendVariant("white-box, counts only (no stall metrics)", ba, fpr)

	// Black-box on all 64 metrics (no selection), still validated.
	fullModel, err := trainAblationModel(opts, nil, true)
	if err != nil {
		return nil, err
	}
	ba, fpr, err = runBBVariant(opts, fullModel, params)
	if err != nil {
		return nil, err
	}
	appendVariant("black-box, all 64 metrics", ba, fpr)

	// Black-box with a single unvalidated k-means run (selected metrics).
	plainModel, err := trainAblationModel(opts, sadc.AnalysisMetricNames, false)
	if err != nil {
		return nil, err
	}
	ba, fpr, err = runBBVariant(opts, plainModel, params)
	if err != nil {
		return nil, err
	}
	appendVariant("black-box, unvalidated single k-means", ba, fpr)

	return rows, nil
}

// trainAblationModel trains a model variant: metricNames selects metrics
// (nil = all 64), validated toggles restart+probe selection.
func trainAblationModel(opts Options, metricNames []string, validated bool) (*analysis.Model, error) {
	series, err := CollectFaultFreeSeries(opts.Slaves, opts.Seed, opts.TrainSeconds)
	if err != nil {
		return nil, err
	}
	var indexes []int
	if metricNames != nil {
		if indexes, err = sadc.NodeMetricIndexes(metricNames); err != nil {
			return nil, err
		}
	}
	if validated {
		return analysis.TrainValidatedModel(series, analysis.TrainOptions{
			K: opts.NumStates, Seed: opts.Seed, Restarts: 8,
			WindowSize: 60, WindowSlide: 15,
			MetricIndexes: indexes, Perturb: sadc.CPUHogPerturbation(),
		})
	}
	return analysis.TrainValidatedModel(series, analysis.TrainOptions{
		K: opts.NumStates, Seed: opts.Seed, Restarts: 1,
		WindowSize: 60, WindowSlide: 15, MetricIndexes: indexes,
	})
}

func collectAblationTraces(opts Options, model *analysis.Model) (*Trace, map[hadoopsim.FaultKind]*Trace, error) {
	clean, err := CollectTrace(TraceConfig{
		Slaves: opts.Slaves, Seed: opts.Seed + 100, WarmupSec: opts.WarmupSec,
		DurationSec: opts.CleanDuration, Fault: hadoopsim.FaultNone,
	}, model)
	if err != nil {
		return nil, nil, err
	}
	faults := make(map[hadoopsim.FaultKind]*Trace, len(hadoopsim.TableTwoFaults))
	for fi, fault := range hadoopsim.TableTwoFaults {
		faults[fault], err = CollectTrace(TraceConfig{
			Slaves: opts.Slaves, Seed: opts.Seed + 200 + int64(fi),
			WarmupSec: opts.WarmupSec, DurationSec: opts.FaultDuration,
			Fault: fault, FaultNode: opts.FaultNode, InjectAtSec: opts.InjectAtSec,
		}, model)
		if err != nil {
			return nil, nil, fmt.Errorf("eval: ablation trace %s: %w", fault, err)
		}
	}
	return clean, faults, nil
}

func scoreVariant(clean *Trace, faults map[hadoopsim.FaultKind]*Trace, approach Approach, params AnalysisParams) (meanBA, cleanFPR float64, err error) {
	var baSum float64
	for _, tr := range faults {
		verdicts, err := Verdicts(tr, approach, params)
		if err != nil {
			return 0, 0, err
		}
		baSum += Score(tr, verdicts, params).BalancedAccuracy
	}
	verdicts, err := Verdicts(clean, approach, params)
	if err != nil {
		return 0, 0, err
	}
	o := Score(clean, verdicts, params)
	return baSum / float64(len(faults)), o.FalsePositiveRate, nil
}

func runBBVariant(opts Options, model *analysis.Model, params AnalysisParams) (meanBA, cleanFPR float64, err error) {
	clean, faults, err := collectAblationTraces(opts, model)
	if err != nil {
		return 0, 0, err
	}
	p := params
	p.NumStates = model.NumStates()
	return scoreVariantBB(clean, faults, p)
}

func scoreVariantBB(clean *Trace, faults map[hadoopsim.FaultKind]*Trace, params AnalysisParams) (meanBA, cleanFPR float64, err error) {
	return scoreVariant(clean, faults, ApproachBlackBox, params)
}

// maskDerived returns a copy of the trace with the derived white-box
// metrics (stall times, failure history) zeroed, leaving raw state counts.
func maskDerived(tr *Trace) *Trace {
	// Layout: TT = 5 states + 3 derived, DN = 3 states + 1 derived.
	const ttStates, ttDims, dnStates = 5, 8, 3
	out := *tr
	out.WBVectors = make([][][]float64, len(tr.WBVectors))
	for s := range tr.WBVectors {
		out.WBVectors[s] = make([][]float64, len(tr.WBVectors[s]))
		for n := range tr.WBVectors[s] {
			v := append([]float64(nil), tr.WBVectors[s][n]...)
			for d := ttStates; d < ttDims; d++ {
				v[d] = 0
			}
			for d := ttDims + dnStates; d < len(v); d++ {
				v[d] = 0
			}
			out.WBVectors[s][n] = v
		}
	}
	return &out
}
