package eval

import (
	"bytes"
	"testing"

	"github.com/asdf-project/asdf/internal/hadoopsim"
)

// TestDetectReportDeterministic is the property the CI detect-quality gate
// stands on: two runs of the reduced matrix with the same seed serialize to
// byte-identical BENCH_detect.json. Any nondeterminism — map iteration
// order, unseeded randomness, wall-clock leakage — shows up here as a diff.
func TestDetectReportDeterministic(t *testing.T) {
	run := func() []byte {
		rep, err := RunDetect(ReducedDetectConfig(), "reduced")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("two same-seed reduced runs differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}

	// While we have a report in hand, hold the shape contract the gate and
	// the floor file depend on.
	rep, err := DecodeDetectReport(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ReducedDetectConfig()
	if want := len(cfg.Faults) * len(cfg.Workloads); len(rep.Cells) != want {
		t.Errorf("cells = %d, want %d (faults x workloads)", len(rep.Cells), want)
	}
	if len(rep.Faults) != len(cfg.Faults) {
		t.Errorf("fault summaries = %d, want %d", len(rep.Faults), len(cfg.Faults))
	}
	approaches := []string{"black-box", "white-box", "combined"}
	for _, fault := range hadoopsim.AllFaults {
		sum := rep.FaultSummary(fault.String())
		if sum == nil {
			t.Errorf("no summary for fault %s", fault)
			continue
		}
		for _, a := range approaches {
			ba, ok := sum.BalancedAccuracy[a]
			if !ok {
				t.Errorf("fault %s missing %s balanced accuracy", fault, a)
				continue
			}
			if ba < 0 || ba > 1 {
				t.Errorf("fault %s %s balanced accuracy %v outside [0,1]", fault, a, ba)
			}
			if ttd := sum.TimeToDetectionSec[a]; ttd < -1 || ttd > float64(cfg.DurationSec) {
				t.Errorf("fault %s %s time-to-detection %v outside [-1, duration]", fault, a, ttd)
			}
		}
	}
	for _, c := range rep.Cells {
		for _, a := range approaches {
			s, ok := c.Scores[a]
			if !ok {
				t.Errorf("cell %s/%s missing %s score", c.Fault, c.Workload, a)
				continue
			}
			if s.TPR < 0 || s.TPR > 1 || s.FPR < 0 || s.FPR > 1 {
				t.Errorf("cell %s/%s %s rates outside [0,1]: %+v", c.Fault, c.Workload, a, s)
			}
		}
	}

	// The harness must exercise every fault under at least two workloads —
	// the coverage claim the detect-quality job makes.
	if len(cfg.Workloads) < 2 {
		t.Errorf("reduced config has %d workloads, want >= 2", len(cfg.Workloads))
	}
}
