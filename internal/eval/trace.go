// Package eval is the reproduction harness for the paper's evaluation
// (§4.6–§4.9): it collects monitoring traces from simulated clusters,
// replays them through the black-box and white-box analyses under swept
// parameters, and computes the paper's metrics — false-positive rate,
// balanced accuracy, and fingerpointing latency — for every figure, plus
// the monitoring-overhead and RPC-bandwidth tables.
package eval

import (
	"fmt"
	"time"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/sadc"
)

// TraceConfig describes one monitored cluster run.
type TraceConfig struct {
	// Slaves is the cluster size (the paper used 50; tests use fewer).
	Slaves int
	// Seed drives the simulation.
	Seed int64
	// WarmupSec runs the cluster before recording starts, so the workload
	// is in steady state and every node has begun logging.
	WarmupSec int
	// DurationSec is the recorded length.
	DurationSec int
	// Fault and FaultNode select the injection; Fault = FaultNone means a
	// problem-free run (used for Figure 6).
	Fault     hadoopsim.FaultKind
	FaultNode int
	// InjectAtSec is when (relative to recording start) the fault is
	// injected.
	InjectAtSec int
	// Phases optionally changes the GridMix composition at given times
	// (relative to recording start; a phase with AtSec < 0 applies from
	// the beginning of warmup). Empty means the full five-type mix.
	Phases []WorkloadPhase
	// RecordRaw additionally retains the raw sadc node vectors in
	// Trace.RawNode (needed by baseline analyses that work on raw
	// metrics rather than classified states).
	RecordRaw bool
}

// WorkloadPhase is one segment of a workload-change schedule.
type WorkloadPhase struct {
	// AtSec is when the phase begins, relative to recording start.
	AtSec int
	// Classes are GridMix job-type names; empty restores the full mix.
	Classes []string
}

// Trace is the recorded monitoring data of one run: per second and node,
// the black-box workload state (1-NN centroid index) and the white-box
// Hadoop log state vector (TaskTracker states followed by DataNode states).
type Trace struct {
	Config    TraceConfig
	Nodes     int
	Seconds   int
	WBMetrics int
	// BBStates[s][n] is node n's 1-NN state at recorded second s.
	BBStates [][]int
	// WBVectors[s][n] is node n's white-box state vector at second s.
	WBVectors [][][]float64
	// FaultActive[s] is the per-second ground truth: whether the injected
	// fault was still perturbing the culprit at recorded second s (a
	// DiskHog, for example, ends once its 20 GB are written).
	FaultActive []bool
	// RawNode[s][n] is node n's raw sadc vector at second s; nil unless
	// TraceConfig.RecordRaw was set.
	RawNode [][][]float64
}

// wbDims is the white-box vector layout: TaskTracker then DataNode states.
func wbDims() int {
	return hadooplog.MetricDims(hadooplog.KindTaskTracker) + hadooplog.MetricDims(hadooplog.KindDataNode)
}

// CollectFaultFreeSeries runs a problem-free cluster and returns the raw
// per-second, per-node sadc vectors — the training set for the black-box
// model (§4.5: "offline k-Means clustering using fault-free training
// data"). The result is indexed series[second][node][metric].
func CollectFaultFreeSeries(slaves int, seed int64, seconds int) ([][][]float64, error) {
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(slaves, seed))
	if err != nil {
		return nil, err
	}
	collectors := make([]*sadc.Collector, slaves)
	for i, n := range c.Slaves() {
		collectors[i] = sadc.NewCollector(n)
		if _, err := collectors[i].Collect(); err != nil {
			return nil, err
		}
	}
	series := make([][][]float64, 0, seconds)
	for s := 0; s < seconds; s++ {
		c.Tick()
		row := make([][]float64, slaves)
		for i := range collectors {
			rec, err := collectors[i].Collect()
			if err != nil {
				return nil, err
			}
			row[i] = rec.Node
		}
		series = append(series, row)
	}
	return series, nil
}

// CollectFaultFreePoints flattens CollectFaultFreeSeries for callers that
// only need the unordered training points.
func CollectFaultFreePoints(slaves int, seed int64, seconds int) ([][]float64, error) {
	series, err := CollectFaultFreeSeries(slaves, seed, seconds)
	if err != nil {
		return nil, err
	}
	points := make([][]float64, 0, slaves*seconds)
	for _, row := range series {
		points = append(points, row...)
	}
	return points, nil
}

// TrainDefaultModel trains the black-box model used across experiments:
// the Ganesha-style resource-metric selection, restarted k-means, and model
// selection by fault-free peer-comparison tail.
func TrainDefaultModel(slaves int, seed int64, seconds, k int) (*analysis.Model, error) {
	series, err := CollectFaultFreeSeries(slaves, seed, seconds)
	if err != nil {
		return nil, err
	}
	return TrainDefaultModelFromSeries(series, k, seed)
}

// CollectTrace runs one monitored experiment and records the per-second
// black-box states and white-box vectors for offline parameter sweeps.
func CollectTrace(cfg TraceConfig, model *analysis.Model) (*Trace, error) {
	if cfg.Slaves <= 0 || cfg.DurationSec <= 0 {
		return nil, fmt.Errorf("eval: Slaves and DurationSec must be positive")
	}
	if model == nil {
		return nil, fmt.Errorf("eval: nil model")
	}
	if cfg.Fault != hadoopsim.FaultNone {
		if cfg.FaultNode < 0 || cfg.FaultNode >= cfg.Slaves {
			return nil, fmt.Errorf("eval: FaultNode %d out of range", cfg.FaultNode)
		}
		if cfg.InjectAtSec < 0 || cfg.InjectAtSec >= cfg.DurationSec {
			return nil, fmt.Errorf("eval: InjectAtSec %d outside run", cfg.InjectAtSec)
		}
	}
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(cfg.Slaves, cfg.Seed))
	if err != nil {
		return nil, err
	}
	for _, ph := range cfg.Phases {
		if ph.AtSec < 0 {
			if err := c.SetWorkload(ph.Classes...); err != nil {
				return nil, err
			}
		}
	}

	collectors := make([]*sadc.Collector, cfg.Slaves)
	ttSrc := make([]modules.LogSource, cfg.Slaves)
	dnSrc := make([]modules.LogSource, cfg.Slaves)
	for i, n := range c.Slaves() {
		collectors[i] = sadc.NewCollector(n)
		ttSrc[i] = modules.NewBufferLogSource(hadooplog.KindTaskTracker, n.TaskTrackerLog())
		dnSrc[i] = modules.NewBufferLogSource(hadooplog.KindDataNode, n.DataNodeLog())
	}

	// Per-node white-box buckets keyed by unix second.
	ttBySec := make([]map[int64][]float64, cfg.Slaves)
	dnBySec := make([]map[int64][]float64, cfg.Slaves)
	for i := range ttBySec {
		ttBySec[i] = make(map[int64][]float64)
		dnBySec[i] = make(map[int64][]float64)
	}
	pump := func() error {
		now := c.Now()
		for i := range ttSrc {
			vecs, err := ttSrc[i].Fetch(now)
			if err != nil {
				return err
			}
			for _, v := range vecs {
				ttBySec[i][v.Time.Unix()] = v.Counts
			}
			vecs, err = dnSrc[i].Fetch(now)
			if err != nil {
				return err
			}
			for _, v := range vecs {
				dnBySec[i][v.Time.Unix()] = v.Counts
			}
		}
		return nil
	}

	// Warmup: run and discard, but keep collectors and parsers primed.
	for s := 0; s < cfg.WarmupSec; s++ {
		c.Tick()
		for i := range collectors {
			if _, err := collectors[i].Collect(); err != nil {
				return nil, err
			}
		}
		if err := pump(); err != nil {
			return nil, err
		}
	}

	tr := &Trace{
		Config:      cfg,
		Nodes:       cfg.Slaves,
		Seconds:     cfg.DurationSec,
		WBMetrics:   wbDims(),
		BBStates:    make([][]int, cfg.DurationSec),
		WBVectors:   make([][][]float64, cfg.DurationSec),
		FaultActive: make([]bool, cfg.DurationSec),
	}
	ttDim := hadooplog.MetricDims(hadooplog.KindTaskTracker)

	if cfg.RecordRaw {
		tr.RawNode = make([][][]float64, cfg.DurationSec)
	}

	for s := 0; s < cfg.DurationSec; s++ {
		if cfg.Fault != hadoopsim.FaultNone && s == cfg.InjectAtSec {
			if err := c.InjectFault(cfg.FaultNode, cfg.Fault); err != nil {
				return nil, err
			}
		}
		for _, ph := range cfg.Phases {
			if ph.AtSec == s {
				if err := c.SetWorkload(ph.Classes...); err != nil {
					return nil, err
				}
			}
		}
		c.Tick()
		if cfg.Fault != hadoopsim.FaultNone {
			tr.FaultActive[s] = c.Slave(cfg.FaultNode).FaultActive()
		}
		tr.BBStates[s] = make([]int, cfg.Slaves)
		if cfg.RecordRaw {
			tr.RawNode[s] = make([][]float64, cfg.Slaves)
		}
		for i := range collectors {
			rec, err := collectors[i].Collect()
			if err != nil {
				return nil, err
			}
			state, err := model.Classify(rec.Node)
			if err != nil {
				return nil, err
			}
			tr.BBStates[s][i] = state
			if cfg.RecordRaw {
				tr.RawNode[s][i] = rec.Node
			}
		}
		if err := pump(); err != nil {
			return nil, err
		}
		// The newest finalized log bucket is the previous second.
		sec := c.Now().Add(-time.Second).Unix()
		tr.WBVectors[s] = make([][]float64, cfg.Slaves)
		for i := 0; i < cfg.Slaves; i++ {
			vec := make([]float64, tr.WBMetrics)
			if tt, ok := ttBySec[i][sec]; ok {
				copy(vec, tt)
				delete(ttBySec[i], sec)
			}
			if dn, ok := dnBySec[i][sec]; ok {
				copy(vec[ttDim:], dn)
				delete(dnBySec[i], sec)
			}
			tr.WBVectors[s][i] = vec
		}
		// Old buckets (from nodes that lagged) are dropped to bound memory.
		for i := 0; i < cfg.Slaves; i++ {
			for k := range ttBySec[i] {
				if k < sec {
					delete(ttBySec[i], k)
				}
			}
			for k := range dnBySec[i] {
				if k < sec {
					delete(dnBySec[i], k)
				}
			}
		}
	}
	return tr, nil
}

// TrainDefaultModelFromSeries is TrainDefaultModel for an already-collected
// fault-free series.
func TrainDefaultModelFromSeries(series [][][]float64, k int, seed int64) (*analysis.Model, error) {
	indexes, err := sadc.NodeMetricIndexes(sadc.AnalysisMetricNames)
	if err != nil {
		return nil, err
	}
	return analysis.TrainValidatedModel(series, analysis.TrainOptions{
		K:             k,
		Seed:          seed,
		Restarts:      8,
		WindowSize:    60,
		WindowSlide:   15,
		MetricIndexes: indexes,
		Perturb:       sadc.CPUHogPerturbation(),
	})
}
