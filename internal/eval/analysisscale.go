package eval

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/modules"
)

// AnalysisScaleConfig sizes the analysis-plane scaling measurement: a
// synthetic per-node metric feed (no collection, no RPC — the collection
// plane has its own experiments) drives the classification and smoothing
// stages at cluster scale, once as N per-node knn/mavgvec instances and
// once as a single batched instance with nodes = N. The measurement
// isolates what the batched plane is for: per-instance dispatch overhead,
// per-Run read allocations, and cache-hostile row-at-a-time kernels.
type AnalysisScaleConfig struct {
	// NodeCounts are the simulated cluster sizes to measure.
	NodeCounts []int
	// Dim is the width of each node's metric vector.
	Dim int
	// States is the number of centroids in the synthetic knn model.
	States int
	// Window and Slide shape the mavgvec smoothing windows.
	Window int
	Slide  int
	// Fanout and Block shape the batched form's worker pool.
	Fanout int
	Block  int
	// Ticks is how many analysis ticks to time per configuration.
	Ticks int
}

// DefaultAnalysisScaleConfig mirrors the CI analysis-scaling suite: 128 to
// 1024 nodes, 32-wide vectors against a 6-state model, windows of 10
// emitting every tick.
func DefaultAnalysisScaleConfig() AnalysisScaleConfig {
	return AnalysisScaleConfig{
		NodeCounts: []int{128, 512, 1024},
		Dim:        32,
		States:     6,
		Window:     10,
		Slide:      1,
		Fanout:     8,
		Block:      64,
		Ticks:      30,
	}
}

// AnalysisScalePoint is one measured (nodes, form) cell.
type AnalysisScalePoint struct {
	Nodes int `json:"nodes"`
	// Form is "per-node" (N single-node instances) or "batched" (one
	// multi-node instance per stage).
	Form      string  `json:"form"`
	NsPerTick float64 `json:"ns_per_tick"`
	// AllocsPerTick counts every heap allocation in the process during a
	// timed tick — feed publishes and engine scheduling included — so the
	// batched cells stay small but nonzero; the kernels' strict 0 allocs/op
	// contract is gated separately on their benchmarks.
	AllocsPerTick float64 `json:"allocs_per_tick"`
	// SpeedupVsPerNode is this cell's per-tick advantage over the per-node
	// cell at the same node count; 1.0 for the per-node cells themselves.
	SpeedupVsPerNode float64 `json:"speedup_vs_per_node"`
}

// analysisFeed publishes one fresh dim-wide sample per node per tick —
// the shape a collection stage hands the analysis plane, without its cost.
// Values vary per tick so windows never degenerate to constants.
type analysisFeed struct {
	nodes, dim int
	tick       int
	outs       []*core.OutputPort
}

func (m *analysisFeed) Init(ctx *core.InitContext) error {
	m.outs = make([]*core.OutputPort, m.nodes)
	for i := range m.outs {
		out, err := ctx.NewOutput(fmt.Sprintf("out%d", i),
			core.Origin{Source: "feed", Node: fmt.Sprintf("n%04d", i)})
		if err != nil {
			return err
		}
		m.outs[i] = out
	}
	return ctx.SchedulePeriodic(time.Second)
}

func (m *analysisFeed) Run(ctx *core.RunContext) error {
	if ctx.Reason == core.RunFlush {
		return nil
	}
	m.tick++
	for i, out := range m.outs {
		vals := make([]float64, m.dim)
		for d := range vals {
			vals[d] = float64((m.tick*31+i*7+d*13)%97) / 19.0
		}
		out.Publish(core.Sample{Time: ctx.Now, Values: vals})
	}
	return nil
}

// analysisPlaneConfig renders the knn + mavgvec stages over the feed's
// per-node ports: N per-node instances each, or one batched instance per
// stage with nodes = N.
func analysisPlaneConfig(cfg AnalysisScaleConfig, nodes int, batched bool) string {
	ones := make([]string, cfg.Dim)
	for i := range ones {
		ones[i] = "1"
	}
	sigma := strings.Join(ones, ",")
	rows := make([]string, cfg.States)
	for s := range rows {
		cells := make([]string, cfg.Dim)
		for d := range cells {
			cells[d] = fmt.Sprintf("%d", (s+d)%cfg.States)
		}
		rows[s] = strings.Join(cells, ",")
	}
	centroids := strings.Join(rows, ";")

	var b strings.Builder
	b.WriteString("[feed]\nid = feed\n\n")
	if batched {
		fmt.Fprintf(&b, "[knn]\nid = nn\nsigma = %s\ncentroids = %s\nnodes = %d\nfanout = %d\nblock = %d\n",
			sigma, centroids, nodes, cfg.Fanout, cfg.Block)
		for i := 0; i < nodes; i++ {
			fmt.Fprintf(&b, "input[in%d] = feed.out%d\n", i, i)
		}
		fmt.Fprintf(&b, "\n[mavgvec]\nid = smooth\nwindow = %d\nslide = %d\nnodes = %d\nfanout = %d\nblock = %d\n",
			cfg.Window, cfg.Slide, nodes, cfg.Fanout, cfg.Block)
		for i := 0; i < nodes; i++ {
			fmt.Fprintf(&b, "input[in%d] = feed.out%d\n", i, i)
		}
	} else {
		for i := 0; i < nodes; i++ {
			fmt.Fprintf(&b, "[knn]\nid = nn%d\nsigma = %s\ncentroids = %s\ninput[in] = feed.out%d\n\n",
				i, sigma, centroids, i)
			fmt.Fprintf(&b, "[mavgvec]\nid = smooth%d\nwindow = %d\nslide = %d\ninput[in] = feed.out%d\n\n",
				i, cfg.Window, cfg.Slide, i)
		}
	}
	return b.String()
}

// MeasureAnalysisScaling times the per-tick analysis pass at each
// configured node count, per-node versus batched, and reports both cells
// per node count (per-node first).
func MeasureAnalysisScaling(cfg AnalysisScaleConfig) ([]AnalysisScalePoint, error) {
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("analysisscale: ticks must be positive")
	}
	var points []AnalysisScalePoint
	for _, nodes := range cfg.NodeCounts {
		perNode, perAllocs, err := timeAnalysisPlane(cfg, nodes, false)
		if err != nil {
			return nil, err
		}
		batched, batchAllocs, err := timeAnalysisPlane(cfg, nodes, true)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if batched > 0 {
			speedup = float64(perNode) / float64(batched)
		}
		points = append(points,
			AnalysisScalePoint{Nodes: nodes, Form: "per-node",
				NsPerTick: float64(perNode), AllocsPerTick: perAllocs, SpeedupVsPerNode: 1},
			AnalysisScalePoint{Nodes: nodes, Form: "batched",
				NsPerTick: float64(batched), AllocsPerTick: batchAllocs, SpeedupVsPerNode: speedup})
	}
	return points, nil
}

// timeAnalysisPlane builds one engine around the synthetic feed and
// returns the mean per-tick wall time and heap-allocation count over
// cfg.Ticks steady-state ticks.
func timeAnalysisPlane(cfg AnalysisScaleConfig, nodes int, batched bool) (time.Duration, float64, error) {
	file, err := config.ParseString(analysisPlaneConfig(cfg, nodes, batched))
	if err != nil {
		return 0, 0, err
	}
	env := modules.NewEnv()
	reg := modules.NewRegistry(env)
	reg.Register("feed", func() core.Module {
		return &analysisFeed{nodes: nodes, dim: cfg.Dim}
	})
	eng, err := core.NewEngine(reg, file)
	if err != nil {
		return 0, 0, err
	}
	virtual := time.Unix(1_700_000_000, 0)
	tick := 0
	step := func() error {
		tick++
		return eng.Tick(virtual.Add(time.Duration(tick) * time.Second))
	}
	// Warmup: fill every smoothing window and size every pooled buffer so
	// the timed region is steady state.
	for i := 0; i < cfg.Window+2; i++ {
		if err := step(); err != nil {
			return 0, 0, err
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < cfg.Ticks; i++ {
		if err := step(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(cfg.Ticks)
	return elapsed / time.Duration(cfg.Ticks), allocs, nil
}
