package eval

import (
	"testing"

	"github.com/asdf-project/asdf/internal/hadoopsim"
)

func TestDiagnoseExampleScenario(t *testing.T) {
	m := sharedModel(t)
	tr, err := CollectTrace(TraceConfig{
		Slaves: 8, Seed: 99, WarmupSec: 0,
		DurationSec: 540, Fault: hadoopsim.FaultCPUHog, FaultNode: 3, InjectAtSec: 180,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(m.NumStates())
	bb, err := EvaluateBB(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bb {
		t.Logf("end=%3d scores=%v flagged=%v", v.EndIndex, fmtScores(v.Scores), v.Flagged)
	}
}

func fmtScores(s []float64) []int {
	out := make([]int, len(s))
	for i, x := range s {
		out[i] = int(x)
	}
	return out
}
