package eval

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// ResilienceConfig sizes the collection-plane fault-injection scenario: a
// simulated cluster whose slaves each run real sadc_rpcd/hadoop_log_rpcd
// servers over TCP, with one node's daemons killed mid-run and restarted
// later. Ticks are virtual seconds; the managed clients' breaker timing
// runs on the same virtual clock so the scenario is deterministic.
type ResilienceConfig struct {
	Slaves int
	Seed   int64
	// Victim is the slave index whose daemons are killed. ExtraVictims
	// lists additional slave indexes killed and revived on the same
	// schedule; report fields keyed to "the victim" track Victim.
	Victim       int
	ExtraVictims []int
	// KillAtTick / ReviveAtTick / Ticks partition the run into healthy,
	// outage, and recovered phases.
	KillAtTick   int
	ReviveAtTick int
	Ticks        int
	// FlapPeriodTicks > 0 turns the outage into daemon flapping: instead
	// of staying dead, the victims' daemons come back up after each
	// FlapPeriodTicks down and die again after the same time up, until
	// ReviveAtTick leaves them up for good. Cycles shorter than the
	// breaker cooldown exercise the half-open probe against a daemon
	// that keeps disappearing.
	FlapPeriodTicks int
	// SlowNode, when InjectDelay > 0, is the slave index whose daemons
	// answer every call InjectDelay late during the outage window —
	// asymmetric slowness rather than death. Pair InjectDelay with a
	// shorter CallTimeout to force client-side timeouts. SlowNode must
	// not be a victim (a dead daemon cannot also be slow).
	SlowNode    int
	InjectDelay time.Duration
	// CallTimeout is the managed clients' per-RPC deadline (0 = the rpc
	// package default of 10s).
	CallTimeout time.Duration
	// SyncDeadlineSec and SyncQuorum configure degraded-mode timestamp
	// sync for the white-box collector.
	SyncDeadlineSec int
	SyncQuorum      int
	// BreakerThreshold and BreakerCooldownSec configure the per-node
	// circuit breakers.
	BreakerThreshold   int
	BreakerCooldownSec int
	// TraceWriter, when non-nil, receives one counter line per tick (the
	// CI fault drill points this at its artifact file).
	TraceWriter io.Writer
	// Metrics, when non-nil, receives the whole run's telemetry — engine,
	// supervisor, per-node RPC, and sync metrics — exactly as cmd/asdf
	// wires its registry. The acceptance test scrapes it and checks the
	// values against the Status snapshot.
	Metrics *telemetry.Registry
}

// victims returns every victim index: Victim plus ExtraVictims, deduped.
func (cfg ResilienceConfig) victims() []int {
	out := []int{cfg.Victim}
	seen := map[int]bool{cfg.Victim: true}
	for _, v := range cfg.ExtraVictims {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// DefaultResilienceConfig is the 3-node kill-one scenario used by the test
// suite: kill at t=20, revive at t=45, observe through t=70.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		Slaves:             3,
		Seed:               7,
		Victim:             1,
		KillAtTick:         20,
		ReviveAtTick:       45,
		Ticks:              70,
		SyncDeadlineSec:    3,
		SyncQuorum:         2,
		BreakerThreshold:   3,
		BreakerCooldownSec: 3,
	}
}

// ResilienceReport is what the scenario observed.
type ResilienceReport struct {
	// SurvivorHLDuringOutage counts new white-box publishes on surviving
	// nodes while the victim was down; > 0 means no stall.
	SurvivorHLDuringOutage uint64
	// MaxSurvivorGapTicks is the longest run of outage ticks in which no
	// surviving white-box sample was published; degraded-mode sync bounds
	// it near the straggler deadline.
	MaxSurvivorGapTicks int
	// VictimSadcDuringOutage / VictimSadcAfterRevive count the victim's
	// black-box publishes in each phase.
	VictimSadcDuringOutage uint64
	VictimSadcAfterRevive  uint64
	// VictimHLAfterRevive counts the victim's white-box publishes after
	// its daemons restarted.
	VictimHLAfterRevive uint64
	// BreakerOpened reports that the victim's white-box breaker opened
	// during the outage; BreakerReclosed that a half-open probe
	// re-attached the node after revival with no collector restart.
	BreakerOpened   bool
	BreakerReclosed bool
	// VictimReconnects is the victim client's successful dial count at
	// the end (≥ 2 proves a re-dial happened after the restart).
	VictimReconnects uint64
	// Partial / Dropped / MissingVictim are the sync rule's counters.
	Partial       uint64
	Dropped       uint64
	MissingVictim uint64
	// RunErrors counts module run errors routed to the engine's error
	// handler (the supervisor path: reported, never fatal).
	RunErrors int
	// VictimBreakersOpened counts how many victims' white-box breakers
	// were observed open during the outage (multi-victim scenarios).
	VictimBreakersOpened int
	// SlowNodeFailures is the slow node's white-box transport-failure
	// count at the end (delay-injection scenarios); > 0 proves the
	// injected latency crossed the call timeout.
	SlowNodeFailures uint64
	// SlowNodeReclosed reports the slow node's breaker was closed again
	// once the delay was lifted.
	SlowNodeReclosed bool
	// Status is the final operator snapshot, taken from the quiesced
	// engine after the last tick — the reference the scraped /metrics
	// values must agree with.
	Status modules.StatusReport
}

// hlHealthReporter and sadcHealthReporter are the inspection surfaces the
// collection modules expose; asserted here so eval does not depend on the
// modules' unexported types.
type hlHealthReporter interface {
	ClientHealths() map[string]rpc.Health
	PartialTimestamps() uint64
	DroppedTimestamps() uint64
	MissingByNode() map[string]uint64
}

type sadcHealthReporter interface {
	ClientHealth() (rpc.Health, bool)
}

// nodeDaemons are one slave's collection daemons, restartable in place.
type nodeDaemons struct {
	node     *hadoopsim.Node
	clock    func() time.Time
	sadc     *rpc.Server
	hlog     *rpc.Server
	sadcAddr string
	hlogAddr string
}

func startDaemons(n *hadoopsim.Node, clock func() time.Time, sadcAddr, hlogAddr string) (*nodeDaemons, error) {
	d := &nodeDaemons{node: n, clock: clock}
	d.sadc = rpc.NewServer(modules.ServiceSadc)
	modules.RegisterSadcServer(d.sadc, n)
	addr, err := d.sadc.Listen(sadcAddr)
	if err != nil {
		return nil, fmt.Errorf("eval: sadc daemon for %s: %w", n.Name, err)
	}
	d.sadcAddr = addr.String()

	d.hlog = rpc.NewServer(modules.ServiceHadoopLog)
	modules.RegisterHadoopLogServer(d.hlog, n.TaskTrackerLog(), n.DataNodeLog(), clock)
	addr, err = d.hlog.Listen(hlogAddr)
	if err != nil {
		_ = d.sadc.Close()
		return nil, fmt.Errorf("eval: hadoop-log daemon for %s: %w", n.Name, err)
	}
	d.hlogAddr = addr.String()
	return d, nil
}

// kill closes both daemons, as a crashed node would.
func (d *nodeDaemons) kill() {
	_ = d.sadc.Close()
	_ = d.hlog.Close()
}

// restart brings fresh daemons up on the same addresses, re-reading the
// node's logs from scratch exactly like a restarted hadoop_log_rpcd.
func (d *nodeDaemons) restart() error {
	// The old listener's port can linger briefly; retry a few times.
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		nd, err := startDaemons(d.node, d.clock, d.sadcAddr, d.hlogAddr)
		if err == nil {
			d.sadc, d.hlog = nd.sadc, nd.hlog
			return nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return lastErr
}

func (d *nodeDaemons) close() { d.kill() }

// RunCollectionResilience runs the kill-one-node scenario end to end over
// real TCP daemons and returns what it observed. The caller asserts on the
// report; this function only fails on setup errors.
func RunCollectionResilience(cfg ResilienceConfig) (*ResilienceReport, error) {
	victims := cfg.victims()
	isVictim := make(map[int]bool, len(victims))
	for _, v := range victims {
		if v < 0 || v >= cfg.Slaves {
			return nil, fmt.Errorf("eval: victim %d out of range for %d slaves", v, cfg.Slaves)
		}
		isVictim[v] = true
	}
	if len(victims) >= cfg.Slaves {
		return nil, fmt.Errorf("eval: need at least one survivor (%d victims of %d slaves)", len(victims), cfg.Slaves)
	}
	if cfg.KillAtTick >= cfg.ReviveAtTick || cfg.ReviveAtTick >= cfg.Ticks {
		return nil, fmt.Errorf("eval: phases must satisfy kill < revive < ticks")
	}
	if cfg.FlapPeriodTicks < 0 {
		return nil, fmt.Errorf("eval: flap period must be >= 0")
	}
	if cfg.InjectDelay > 0 {
		if cfg.SlowNode < 0 || cfg.SlowNode >= cfg.Slaves {
			return nil, fmt.Errorf("eval: slow node %d out of range for %d slaves", cfg.SlowNode, cfg.Slaves)
		}
		if isVictim[cfg.SlowNode] {
			return nil, fmt.Errorf("eval: slow node %d is also a victim", cfg.SlowNode)
		}
	}
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(cfg.Slaves, cfg.Seed))
	if err != nil {
		return nil, err
	}

	var daemons []*nodeDaemons
	defer func() {
		for _, d := range daemons {
			d.close()
		}
	}()
	var names, sadcAddrs, hlogAddrs []string
	for _, n := range c.Slaves() {
		d, err := startDaemons(n, c.Now, "127.0.0.1:0", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		daemons = append(daemons, d)
		names = append(names, n.Name)
		sadcAddrs = append(sadcAddrs, d.sadcAddr)
		hlogAddrs = append(hlogAddrs, d.hlogAddr)
	}

	env := modules.NewEnv()
	env.Clock = c.Now
	env.Metrics = cfg.Metrics

	var b strings.Builder
	fmt.Fprintf(&b, `
[hadoop_log]
id = hl
kind = tasktracker
mode = rpc
nodes = %s
addrs = %s
period = 1
sync_deadline = %d
sync_quorum = %d
breaker_threshold = %d
breaker_cooldown = %d
`, strings.Join(names, ","), strings.Join(hlogAddrs, ","),
		cfg.SyncDeadlineSec, cfg.SyncQuorum, cfg.BreakerThreshold, cfg.BreakerCooldownSec)
	if cfg.CallTimeout > 0 {
		fmt.Fprintf(&b, "call_timeout = %s\n", cfg.CallTimeout)
	}
	for i, name := range names {
		fmt.Fprintf(&b, `
[sadc]
id = s%d
node = %s
mode = rpc
addr = %s
period = 1
breaker_threshold = %d
breaker_cooldown = %d
`, i, name, sadcAddrs[i], cfg.BreakerThreshold, cfg.BreakerCooldownSec)
		if cfg.CallTimeout > 0 {
			fmt.Fprintf(&b, "call_timeout = %s\n", cfg.CallTimeout)
		}
	}
	b.WriteString("\n[print]\nid = p\nonly_nonzero = false\ninput[hl] = @hl\n")
	for i := range names {
		fmt.Fprintf(&b, "input[s%d] = s%d.output0\n", i, i)
	}

	parsed, err := config.ParseString(b.String())
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	report := &ResilienceReport{}
	eng, err := core.NewEngine(modules.NewRegistry(env), parsed,
		core.WithTelemetry(cfg.Metrics),
		core.WithErrorHandler(func(string, error) {
			mu.Lock()
			report.RunErrors++
			mu.Unlock()
		}))
	if err != nil {
		return nil, err
	}

	hlMod, _ := eng.ModuleOf("hl")
	hl, ok := hlMod.(hlHealthReporter)
	if !ok {
		return nil, fmt.Errorf("eval: hadoop_log module does not report health")
	}
	victimSadcMod, _ := eng.ModuleOf(fmt.Sprintf("s%d", cfg.Victim))
	victimSadc, ok := victimSadcMod.(sadcHealthReporter)
	if !ok {
		return nil, fmt.Errorf("eval: sadc module does not report health")
	}
	victimName := names[cfg.Victim]

	hlOuts := eng.OutputPortsOf("hl")
	survivorHL := func() uint64 {
		var n uint64
		for i, out := range hlOuts {
			if !isVictim[i] {
				n += out.Published()
			}
		}
		return n
	}
	victimHL := func() uint64 { return hlOuts[cfg.Victim].Published() }
	victimSadcOut := eng.OutputPortsOf(fmt.Sprintf("s%d", cfg.Victim))[0]

	// down tracks which victims' daemons are currently dead (flapping
	// scenarios bring them up and down inside the outage window).
	down := make(map[int]bool, len(victims))
	killAll := func() {
		for _, v := range victims {
			if !down[v] {
				daemons[v].kill()
				down[v] = true
			}
		}
	}
	restartAll := func() error {
		for _, v := range victims {
			if down[v] {
				if err := daemons[v].restart(); err != nil {
					return err
				}
				down[v] = false
			}
		}
		return nil
	}
	slowDaemons := func(f rpc.Faults) {
		if cfg.InjectDelay > 0 {
			daemons[cfg.SlowNode].sadc.SetFaults(f)
			daemons[cfg.SlowNode].hlog.SetFaults(f)
		}
	}
	openVictims := make(map[string]bool, len(victims))

	var (
		survivorAtKill, survivorLast   uint64
		victimHLAtRevive               uint64
		victimSadcAtKill, sadcAtRevive uint64
		gap                            int
	)
	for tick := 1; tick <= cfg.Ticks; tick++ {
		if tick == cfg.KillAtTick {
			killAll()
			slowDaemons(rpc.Faults{Delay: cfg.InjectDelay})
			survivorAtKill = survivorHL()
			survivorLast = survivorAtKill
			victimSadcAtKill = victimSadcOut.Published()
		}
		if tick > cfg.KillAtTick && tick < cfg.ReviveAtTick && cfg.FlapPeriodTicks > 0 &&
			(tick-cfg.KillAtTick)%cfg.FlapPeriodTicks == 0 {
			// Flap: toggle the victims' daemons.
			if down[cfg.Victim] {
				if err := restartAll(); err != nil {
					return nil, err
				}
			} else {
				killAll()
			}
		}
		if tick == cfg.ReviveAtTick {
			if err := restartAll(); err != nil {
				return nil, err
			}
			slowDaemons(rpc.Faults{})
			victimHLAtRevive = victimHL()
			sadcAtRevive = victimSadcOut.Published()
		}
		c.Tick()
		if err := eng.Tick(c.Now()); err != nil {
			return nil, err
		}

		if tick > cfg.KillAtTick && tick < cfg.ReviveAtTick {
			// Track the longest white-box publishing gap on survivors.
			if now := survivorHL(); now > survivorLast {
				survivorLast = now
				gap = 0
			} else {
				gap++
				if gap > report.MaxSurvivorGapTicks {
					report.MaxSurvivorGapTicks = gap
				}
			}
			healths := hl.ClientHealths()
			for _, v := range victims {
				if h, ok := healths[names[v]]; ok && h.State == rpc.BreakerOpen {
					openVictims[names[v]] = true
				}
			}
			report.BreakerOpened = openVictims[victimName]
		}
		if cfg.TraceWriter != nil {
			h := hl.ClientHealths()[victimName]
			mu.Lock()
			errs := report.RunErrors
			mu.Unlock()
			fmt.Fprintf(cfg.TraceWriter,
				"tick=%d survivor_hl=%d victim.breaker=%s victim.failures=%d partial=%d dropped=%d errors=%d\n",
				tick, survivorHL(), h.State, h.TotalFailures,
				hl.PartialTimestamps(), hl.DroppedTimestamps(), errs)
		}
	}
	report.VictimBreakersOpened = len(openVictims)

	report.SurvivorHLDuringOutage = survivorLast - survivorAtKill
	report.VictimSadcDuringOutage = sadcAtRevive - victimSadcAtKill
	report.VictimSadcAfterRevive = victimSadcOut.Published() - sadcAtRevive
	report.VictimHLAfterRevive = victimHL() - victimHLAtRevive
	report.Partial = hl.PartialTimestamps()
	report.Dropped = hl.DroppedTimestamps()
	report.MissingVictim = hl.MissingByNode()[victimName]
	if h, ok := hl.ClientHealths()[victimName]; ok {
		report.BreakerReclosed = h.State == rpc.BreakerClosed
		report.VictimReconnects = h.Reconnects
	}
	if h, ok := victimSadc.ClientHealth(); ok && h.State != rpc.BreakerClosed {
		// The black-box plane must have re-attached too.
		report.BreakerReclosed = false
	}
	if cfg.InjectDelay > 0 {
		if h, ok := hl.ClientHealths()[names[cfg.SlowNode]]; ok {
			report.SlowNodeFailures = h.TotalFailures
			report.SlowNodeReclosed = h.State == rpc.BreakerClosed
		}
	}
	report.Status = modules.CollectStatus(eng, c.Now())
	return report, nil
}
