package eval

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/rpc"
)

// ResilienceConfig sizes the collection-plane fault-injection scenario: a
// simulated cluster whose slaves each run real sadc_rpcd/hadoop_log_rpcd
// servers over TCP, with one node's daemons killed mid-run and restarted
// later. Ticks are virtual seconds; the managed clients' breaker timing
// runs on the same virtual clock so the scenario is deterministic.
type ResilienceConfig struct {
	Slaves int
	Seed   int64
	// Victim is the slave index whose daemons are killed.
	Victim int
	// KillAtTick / ReviveAtTick / Ticks partition the run into healthy,
	// outage, and recovered phases.
	KillAtTick   int
	ReviveAtTick int
	Ticks        int
	// SyncDeadlineSec and SyncQuorum configure degraded-mode timestamp
	// sync for the white-box collector.
	SyncDeadlineSec int
	SyncQuorum      int
	// BreakerThreshold and BreakerCooldownSec configure the per-node
	// circuit breakers.
	BreakerThreshold   int
	BreakerCooldownSec int
}

// DefaultResilienceConfig is the 3-node kill-one scenario used by the test
// suite: kill at t=20, revive at t=45, observe through t=70.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		Slaves:             3,
		Seed:               7,
		Victim:             1,
		KillAtTick:         20,
		ReviveAtTick:       45,
		Ticks:              70,
		SyncDeadlineSec:    3,
		SyncQuorum:         2,
		BreakerThreshold:   3,
		BreakerCooldownSec: 3,
	}
}

// ResilienceReport is what the scenario observed.
type ResilienceReport struct {
	// SurvivorHLDuringOutage counts new white-box publishes on surviving
	// nodes while the victim was down; > 0 means no stall.
	SurvivorHLDuringOutage uint64
	// MaxSurvivorGapTicks is the longest run of outage ticks in which no
	// surviving white-box sample was published; degraded-mode sync bounds
	// it near the straggler deadline.
	MaxSurvivorGapTicks int
	// VictimSadcDuringOutage / VictimSadcAfterRevive count the victim's
	// black-box publishes in each phase.
	VictimSadcDuringOutage uint64
	VictimSadcAfterRevive  uint64
	// VictimHLAfterRevive counts the victim's white-box publishes after
	// its daemons restarted.
	VictimHLAfterRevive uint64
	// BreakerOpened reports that the victim's white-box breaker opened
	// during the outage; BreakerReclosed that a half-open probe
	// re-attached the node after revival with no collector restart.
	BreakerOpened   bool
	BreakerReclosed bool
	// VictimReconnects is the victim client's successful dial count at
	// the end (≥ 2 proves a re-dial happened after the restart).
	VictimReconnects uint64
	// Partial / Dropped / MissingVictim are the sync rule's counters.
	Partial       uint64
	Dropped       uint64
	MissingVictim uint64
	// RunErrors counts module run errors routed to the engine's error
	// handler (the supervisor path: reported, never fatal).
	RunErrors int
}

// hlHealthReporter and sadcHealthReporter are the inspection surfaces the
// collection modules expose; asserted here so eval does not depend on the
// modules' unexported types.
type hlHealthReporter interface {
	ClientHealths() map[string]rpc.Health
	PartialTimestamps() uint64
	DroppedTimestamps() uint64
	MissingByNode() map[string]uint64
}

type sadcHealthReporter interface {
	ClientHealth() (rpc.Health, bool)
}

// nodeDaemons are one slave's collection daemons, restartable in place.
type nodeDaemons struct {
	node     *hadoopsim.Node
	clock    func() time.Time
	sadc     *rpc.Server
	hlog     *rpc.Server
	sadcAddr string
	hlogAddr string
}

func startDaemons(n *hadoopsim.Node, clock func() time.Time, sadcAddr, hlogAddr string) (*nodeDaemons, error) {
	d := &nodeDaemons{node: n, clock: clock}
	d.sadc = rpc.NewServer(modules.ServiceSadc)
	modules.RegisterSadcServer(d.sadc, n)
	addr, err := d.sadc.Listen(sadcAddr)
	if err != nil {
		return nil, fmt.Errorf("eval: sadc daemon for %s: %w", n.Name, err)
	}
	d.sadcAddr = addr.String()

	d.hlog = rpc.NewServer(modules.ServiceHadoopLog)
	modules.RegisterHadoopLogServer(d.hlog, n.TaskTrackerLog(), n.DataNodeLog(), clock)
	addr, err = d.hlog.Listen(hlogAddr)
	if err != nil {
		_ = d.sadc.Close()
		return nil, fmt.Errorf("eval: hadoop-log daemon for %s: %w", n.Name, err)
	}
	d.hlogAddr = addr.String()
	return d, nil
}

// kill closes both daemons, as a crashed node would.
func (d *nodeDaemons) kill() {
	_ = d.sadc.Close()
	_ = d.hlog.Close()
}

// restart brings fresh daemons up on the same addresses, re-reading the
// node's logs from scratch exactly like a restarted hadoop_log_rpcd.
func (d *nodeDaemons) restart() error {
	// The old listener's port can linger briefly; retry a few times.
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		nd, err := startDaemons(d.node, d.clock, d.sadcAddr, d.hlogAddr)
		if err == nil {
			d.sadc, d.hlog = nd.sadc, nd.hlog
			return nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return lastErr
}

func (d *nodeDaemons) close() { d.kill() }

// RunCollectionResilience runs the kill-one-node scenario end to end over
// real TCP daemons and returns what it observed. The caller asserts on the
// report; this function only fails on setup errors.
func RunCollectionResilience(cfg ResilienceConfig) (*ResilienceReport, error) {
	if cfg.Victim < 0 || cfg.Victim >= cfg.Slaves {
		return nil, fmt.Errorf("eval: victim %d out of range for %d slaves", cfg.Victim, cfg.Slaves)
	}
	if cfg.KillAtTick >= cfg.ReviveAtTick || cfg.ReviveAtTick >= cfg.Ticks {
		return nil, fmt.Errorf("eval: phases must satisfy kill < revive < ticks")
	}
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(cfg.Slaves, cfg.Seed))
	if err != nil {
		return nil, err
	}

	var daemons []*nodeDaemons
	defer func() {
		for _, d := range daemons {
			d.close()
		}
	}()
	var names, sadcAddrs, hlogAddrs []string
	for _, n := range c.Slaves() {
		d, err := startDaemons(n, c.Now, "127.0.0.1:0", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		daemons = append(daemons, d)
		names = append(names, n.Name)
		sadcAddrs = append(sadcAddrs, d.sadcAddr)
		hlogAddrs = append(hlogAddrs, d.hlogAddr)
	}

	env := modules.NewEnv()
	env.Clock = c.Now

	var b strings.Builder
	fmt.Fprintf(&b, `
[hadoop_log]
id = hl
kind = tasktracker
mode = rpc
nodes = %s
addrs = %s
period = 1
sync_deadline = %d
sync_quorum = %d
breaker_threshold = %d
breaker_cooldown = %d
`, strings.Join(names, ","), strings.Join(hlogAddrs, ","),
		cfg.SyncDeadlineSec, cfg.SyncQuorum, cfg.BreakerThreshold, cfg.BreakerCooldownSec)
	for i, name := range names {
		fmt.Fprintf(&b, `
[sadc]
id = s%d
node = %s
mode = rpc
addr = %s
period = 1
breaker_threshold = %d
breaker_cooldown = %d
`, i, name, sadcAddrs[i], cfg.BreakerThreshold, cfg.BreakerCooldownSec)
	}
	b.WriteString("\n[print]\nid = p\nonly_nonzero = false\ninput[hl] = @hl\n")
	for i := range names {
		fmt.Fprintf(&b, "input[s%d] = s%d.output0\n", i, i)
	}

	parsed, err := config.ParseString(b.String())
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	report := &ResilienceReport{}
	eng, err := core.NewEngine(modules.NewRegistry(env), parsed,
		core.WithErrorHandler(func(string, error) {
			mu.Lock()
			report.RunErrors++
			mu.Unlock()
		}))
	if err != nil {
		return nil, err
	}

	hlMod, _ := eng.ModuleOf("hl")
	hl, ok := hlMod.(hlHealthReporter)
	if !ok {
		return nil, fmt.Errorf("eval: hadoop_log module does not report health")
	}
	victimSadcMod, _ := eng.ModuleOf(fmt.Sprintf("s%d", cfg.Victim))
	victimSadc, ok := victimSadcMod.(sadcHealthReporter)
	if !ok {
		return nil, fmt.Errorf("eval: sadc module does not report health")
	}
	victimName := names[cfg.Victim]

	hlOuts := eng.OutputPortsOf("hl")
	survivorHL := func() uint64 {
		var n uint64
		for i, out := range hlOuts {
			if i != cfg.Victim {
				n += out.Published()
			}
		}
		return n
	}
	victimHL := func() uint64 { return hlOuts[cfg.Victim].Published() }
	victimSadcOut := eng.OutputPortsOf(fmt.Sprintf("s%d", cfg.Victim))[0]

	var (
		survivorAtKill, survivorLast   uint64
		victimHLAtRevive               uint64
		victimSadcAtKill, sadcAtRevive uint64
		gap                            int
	)
	for tick := 1; tick <= cfg.Ticks; tick++ {
		if tick == cfg.KillAtTick {
			daemons[cfg.Victim].kill()
			survivorAtKill = survivorHL()
			survivorLast = survivorAtKill
			victimSadcAtKill = victimSadcOut.Published()
		}
		if tick == cfg.ReviveAtTick {
			if err := daemons[cfg.Victim].restart(); err != nil {
				return nil, err
			}
			victimHLAtRevive = victimHL()
			sadcAtRevive = victimSadcOut.Published()
		}
		c.Tick()
		if err := eng.Tick(c.Now()); err != nil {
			return nil, err
		}

		if tick > cfg.KillAtTick && tick < cfg.ReviveAtTick {
			// Track the longest white-box publishing gap on survivors.
			if now := survivorHL(); now > survivorLast {
				survivorLast = now
				gap = 0
			} else {
				gap++
				if gap > report.MaxSurvivorGapTicks {
					report.MaxSurvivorGapTicks = gap
				}
			}
			if h, ok := hl.ClientHealths()[victimName]; ok && h.State == rpc.BreakerOpen {
				report.BreakerOpened = true
			}
		}
	}

	report.SurvivorHLDuringOutage = survivorLast - survivorAtKill
	report.VictimSadcDuringOutage = sadcAtRevive - victimSadcAtKill
	report.VictimSadcAfterRevive = victimSadcOut.Published() - sadcAtRevive
	report.VictimHLAfterRevive = victimHL() - victimHLAtRevive
	report.Partial = hl.PartialTimestamps()
	report.Dropped = hl.DroppedTimestamps()
	report.MissingVictim = hl.MissingByNode()[victimName]
	if h, ok := hl.ClientHealths()[victimName]; ok {
		report.BreakerReclosed = h.State == rpc.BreakerClosed
		report.VictimReconnects = h.Reconnects
	}
	if h, ok := victimSadc.ClientHealth(); ok && h.State != rpc.BreakerClosed {
		// The black-box plane must have re-attached too.
		report.BreakerReclosed = false
	}
	return report, nil
}
