package eval

import (
	"fmt"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/hadoopsim"
)

// Approach selects which analysis produced a verdict set.
type Approach int

// Approaches, as in Figure 7's legend.
const (
	ApproachBlackBox Approach = iota + 1
	ApproachWhiteBox
	ApproachCombined
)

// String names the approach.
func (a Approach) String() string {
	switch a {
	case ApproachBlackBox:
		return "black-box"
	case ApproachWhiteBox:
		return "white-box"
	case ApproachCombined:
		return "combined"
	default:
		return "unknown"
	}
}

// AnalysisParams carries the tunables of both analyses.
type AnalysisParams struct {
	WindowSize  int     // samples per window (60 in the paper)
	WindowSlide int     // window offset (the paper's Fig 3 uses slide 5)
	BBThreshold float64 // black-box L1 threshold
	WBK         float64 // white-box k
	NumStates   int     // black-box centroid count
}

// DefaultParams mirrors the paper's operating-point selection: windowSize
// 60 samples, window slide as in Fig 3, the black-box threshold at the knee
// of our Figure 6(a) sweep (55; the paper's own sweep put its knee at 60),
// and k = 3 from the Figure 6(b) knee.
func DefaultParams(numStates int) AnalysisParams {
	return AnalysisParams{
		WindowSize:  60,
		WindowSlide: 15,
		BBThreshold: 55,
		WBK:         3,
		NumStates:   numStates,
	}
}

// EvaluateBB replays a trace through the black-box analysis.
func EvaluateBB(tr *Trace, p AnalysisParams) ([]*analysis.WindowResult, error) {
	bb, err := analysis.NewBlackBox(analysis.BlackBoxConfig{
		Nodes:       tr.Nodes,
		NumStates:   p.NumStates,
		WindowSize:  p.WindowSize,
		WindowSlide: p.WindowSlide,
		Threshold:   p.BBThreshold,
	})
	if err != nil {
		return nil, err
	}
	var out []*analysis.WindowResult
	for s := 0; s < tr.Seconds; s++ {
		r, err := bb.Observe(tr.BBStates[s])
		if err != nil {
			return nil, err
		}
		if r != nil {
			out = append(out, r)
		}
	}
	return out, nil
}

// EvaluateWB replays a trace through the white-box analysis.
func EvaluateWB(tr *Trace, p AnalysisParams) ([]*analysis.WindowResult, error) {
	wb, err := analysis.NewWhiteBox(analysis.WhiteBoxConfig{
		Nodes:       tr.Nodes,
		Metrics:     tr.WBMetrics,
		WindowSize:  p.WindowSize,
		WindowSlide: p.WindowSlide,
		K:           p.WBK,
	})
	if err != nil {
		return nil, err
	}
	var out []*analysis.WindowResult
	for s := 0; s < tr.Seconds; s++ {
		r, err := wb.Observe(tr.WBVectors[s])
		if err != nil {
			return nil, err
		}
		if r != nil {
			out = append(out, r)
		}
	}
	return out, nil
}

// CombineVerdicts unions aligned black-box and white-box verdict streams.
func CombineVerdicts(bb, wb []*analysis.WindowResult) ([]*analysis.WindowResult, error) {
	n := len(bb)
	if len(wb) < n {
		n = len(wb)
	}
	out := make([]*analysis.WindowResult, 0, n)
	for i := 0; i < n; i++ {
		c, err := analysis.Combine(bb[i], wb[i])
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Verdicts evaluates a trace under one approach.
func Verdicts(tr *Trace, approach Approach, p AnalysisParams) ([]*analysis.WindowResult, error) {
	switch approach {
	case ApproachBlackBox:
		return EvaluateBB(tr, p)
	case ApproachWhiteBox:
		return EvaluateWB(tr, p)
	case ApproachCombined:
		bb, err := EvaluateBB(tr, p)
		if err != nil {
			return nil, err
		}
		wb, err := EvaluateWB(tr, p)
		if err != nil {
			return nil, err
		}
		return CombineVerdicts(bb, wb)
	default:
		return nil, fmt.Errorf("eval: unknown approach %d", approach)
	}
}

// Outcome summarizes one run's verdicts against ground truth (§4.6).
type Outcome struct {
	// TruePositiveRate is P(culprit flagged | problematic window).
	TruePositiveRate float64
	// TrueNegativeRate is P(no alarm | problem-free window).
	TrueNegativeRate float64
	// BalancedAccuracy = (TPR + TNR) / 2, in [0,1].
	BalancedAccuracy float64
	// FalsePositiveRate = 1 - TNR.
	FalsePositiveRate float64
	// LatencySec is the fingerpointing latency: seconds from fault
	// injection to the alarm (three consecutive flagged windows on the
	// culprit, matching the paper's ~3-window confidence rule). Negative
	// when the culprit was never confidently fingerpointed.
	LatencySec float64
	// ProblematicWindows and CleanWindows count the ground-truth classes.
	ProblematicWindows int
	CleanWindows       int
}

// alarmConsecutiveWindows is the confidence rule: the paper reports
// latencies of ~200 s "because it took at least 3 consecutive windows to
// gain confidence in our detection" (§4.9).
const alarmConsecutiveWindows = 3

// Score computes the Outcome of a verdict stream against a trace's ground
// truth. A window whose every second had the fault active is problematic; a
// window with no fault activity is problem-free; partially overlapping
// windows are excluded as ambiguous. For problem-free traces every window
// is clean. Traces without per-second fault activity (synthetic tests) fall
// back to the injection time as the activity boundary.
func Score(tr *Trace, verdicts []*analysis.WindowResult, p AnalysisParams) Outcome {
	var o Outcome
	faulty := tr.Config.Fault != hadoopsim.FaultNone
	inject := tr.Config.InjectAtSec

	activeAt := func(s int) bool {
		if !faulty {
			return false
		}
		if tr.FaultActive != nil {
			if s < 0 || s >= len(tr.FaultActive) {
				return false
			}
			return tr.FaultActive[s]
		}
		return s >= inject
	}
	classify := func(start, end int) (problematic, clean bool) {
		active := 0
		for s := start; s <= end; s++ {
			if activeAt(s) {
				active++
			}
		}
		size := end - start + 1
		return active == size, active == 0
	}

	tp, fn, tn, fp := 0, 0, 0, 0
	consecutive := 0
	latency := -1.0
	for _, v := range verdicts {
		end := v.EndIndex
		start := end - p.WindowSize + 1
		problematic, clean := classify(start, end)
		switch {
		case clean:
			if v.AnyFlagged() {
				fp++
			} else {
				tn++
			}
		case problematic:
			if v.Flagged[tr.Config.FaultNode] {
				tp++
				consecutive++
				if consecutive >= alarmConsecutiveWindows && latency < 0 {
					latency = float64(end - inject)
				}
			} else {
				fn++
				consecutive = 0
			}
		default:
			// Straddles an activity boundary; ambiguous, excluded.
		}
	}
	o.ProblematicWindows = tp + fn
	o.CleanWindows = tn + fp
	if o.ProblematicWindows > 0 {
		o.TruePositiveRate = float64(tp) / float64(o.ProblematicWindows)
	}
	if o.CleanWindows > 0 {
		o.TrueNegativeRate = float64(tn) / float64(o.CleanWindows)
	}
	o.FalsePositiveRate = 1 - o.TrueNegativeRate
	if o.CleanWindows == 0 {
		o.FalsePositiveRate = 0
	}
	switch {
	case !faulty:
		// Problem-free run: balanced accuracy is just TNR (no positives).
		o.BalancedAccuracy = o.TrueNegativeRate
	case o.CleanWindows == 0:
		o.BalancedAccuracy = o.TruePositiveRate
	default:
		o.BalancedAccuracy = (o.TruePositiveRate + o.TrueNegativeRate) / 2
	}
	o.LatencySec = latency
	return o
}
