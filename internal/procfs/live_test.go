package procfs

import (
	"os"
	"runtime"
	"testing"

	"time"
)

// TestLiveProc exercises the FS provider against the real /proc of the host
// kernel — the production collection path. Skipped on hosts without /proc.
func TestLiveProc(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("no /proc on this platform")
	}
	if _, err := os.Stat("/proc/stat"); err != nil {
		t.Skip("/proc not available")
	}
	fs := &FS{Root: "/proc", PIDs: []int{os.Getpid()}}
	snap1, err := fs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap1.Stat.CPUTotal.Total() == 0 {
		t.Error("live cpu counters are zero")
	}
	if snap1.Mem.MemTotal == 0 {
		t.Error("live MemTotal is zero")
	}
	if len(snap1.Procs) != 1 {
		t.Fatalf("expected our own pid, got %d processes", len(snap1.Procs))
	}
	self := snap1.Procs[0]
	if self.PID != os.Getpid() {
		t.Errorf("pid = %d, want %d", self.PID, os.Getpid())
	}
	if self.NumThreads < 1 {
		t.Errorf("threads = %d", self.NumThreads)
	}

	// Counters must be monotone across two snapshots.
	burn := 0
	for i := 0; i < 1e7; i++ {
		burn += i % 7
	}
	_ = burn
	time.Sleep(20 * time.Millisecond)
	snap2, err := fs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Stat.CPUTotal.Total() < snap1.Stat.CPUTotal.Total() {
		t.Error("live cpu counters went backwards")
	}
	if snap2.Uptime < snap1.Uptime {
		t.Error("uptime went backwards")
	}
}
