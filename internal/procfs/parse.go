package procfs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseStat parses the contents of /proc/stat.
func ParseStat(r io.Reader) (Stat, error) {
	var st Stat
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "cpu":
			cpu, err := parseCPUFields(fields[1:])
			if err != nil {
				return Stat{}, fmt.Errorf("procfs: stat cpu line: %w", err)
			}
			st.CPUTotal = cpu
		case strings.HasPrefix(fields[0], "cpu"):
			cpu, err := parseCPUFields(fields[1:])
			if err != nil {
				return Stat{}, fmt.Errorf("procfs: stat %s line: %w", fields[0], err)
			}
			st.PerCPU = append(st.PerCPU, cpu)
		case fields[0] == "ctxt" && len(fields) > 1:
			st.ContextSwitches = parseUint(fields[1])
		case fields[0] == "btime" && len(fields) > 1:
			st.BootTime = parseUint(fields[1])
		case fields[0] == "processes" && len(fields) > 1:
			st.Processes = parseUint(fields[1])
		case fields[0] == "procs_running" && len(fields) > 1:
			st.ProcsRunning = parseUint(fields[1])
		case fields[0] == "procs_blocked" && len(fields) > 1:
			st.ProcsBlocked = parseUint(fields[1])
		case fields[0] == "intr" && len(fields) > 1:
			st.Interrupts = parseUint(fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return Stat{}, fmt.Errorf("procfs: reading stat: %w", err)
	}
	return st, nil
}

func parseCPUFields(fields []string) (CPUStat, error) {
	if len(fields) < 4 {
		return CPUStat{}, fmt.Errorf("want at least 4 jiffy fields, got %d", len(fields))
	}
	vals := make([]uint64, 9)
	for i := 0; i < len(vals) && i < len(fields); i++ {
		vals[i] = parseUint(fields[i])
	}
	return CPUStat{
		User: vals[0], Nice: vals[1], System: vals[2], Idle: vals[3],
		IOWait: vals[4], IRQ: vals[5], SoftIRQ: vals[6], Steal: vals[7], Guest: vals[8],
	}, nil
}

// ParseMeminfo parses the contents of /proc/meminfo.
func ParseMeminfo(r io.Reader) (Meminfo, error) {
	var m Meminfo
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		key, rest, ok := strings.Cut(sc.Text(), ":")
		if !ok {
			continue
		}
		val := parseUint(strings.Fields(rest)[0])
		switch strings.TrimSpace(key) {
		case "MemTotal":
			m.MemTotal = val
		case "MemFree":
			m.MemFree = val
		case "Buffers":
			m.Buffers = val
		case "Cached":
			m.Cached = val
		case "SwapTotal":
			m.SwapTotal = val
		case "SwapFree":
			m.SwapFree = val
		case "Active":
			m.Active = val
		case "Inactive":
			m.Inactive = val
		case "Dirty":
			m.Dirty = val
		case "Writeback":
			m.Writeback = val
		case "Committed_AS":
			m.CommittedAS = val
		}
	}
	if err := sc.Err(); err != nil {
		return Meminfo{}, fmt.Errorf("procfs: reading meminfo: %w", err)
	}
	return m, nil
}

// ParseVMStat parses the contents of /proc/vmstat.
func ParseVMStat(r io.Reader) (VMStat, error) {
	var v VMStat
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		val := parseUint(fields[1])
		switch fields[0] {
		case "pgpgin":
			v.PgpgIn = val
		case "pgpgout":
			v.PgpgOut = val
		case "pswpin":
			v.PswpIn = val
		case "pswpout":
			v.PswpOut = val
		case "pgfault":
			v.PgFault = val
		case "pgmajfault":
			v.PgMajFault = val
		case "pgfree":
			v.PgFree = val
		case "pgscan_kswapd":
			v.PgScanKswapd = val
		}
	}
	if err := sc.Err(); err != nil {
		return VMStat{}, fmt.Errorf("procfs: reading vmstat: %w", err)
	}
	return v, nil
}

// ParseLoadAvg parses the contents of /proc/loadavg
// ("0.20 0.18 0.12 1/80 11206").
func ParseLoadAvg(r io.Reader) (LoadAvg, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return LoadAvg{}, fmt.Errorf("procfs: reading loadavg: %w", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) < 4 {
		return LoadAvg{}, fmt.Errorf("procfs: loadavg: want >= 4 fields, got %d", len(fields))
	}
	var l LoadAvg
	if l.Load1, err = strconv.ParseFloat(fields[0], 64); err != nil {
		return LoadAvg{}, fmt.Errorf("procfs: loadavg load1: %w", err)
	}
	if l.Load5, err = strconv.ParseFloat(fields[1], 64); err != nil {
		return LoadAvg{}, fmt.Errorf("procfs: loadavg load5: %w", err)
	}
	if l.Load15, err = strconv.ParseFloat(fields[2], 64); err != nil {
		return LoadAvg{}, fmt.Errorf("procfs: loadavg load15: %w", err)
	}
	run, tot, ok := strings.Cut(fields[3], "/")
	if ok {
		l.Running, _ = strconv.Atoi(run)
		l.Total, _ = strconv.Atoi(tot)
	}
	return l, nil
}

// ParseUptime parses the contents of /proc/uptime and returns the uptime
// in seconds.
func ParseUptime(r io.Reader) (float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("procfs: reading uptime: %w", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) < 1 {
		return 0, fmt.Errorf("procfs: uptime: empty")
	}
	up, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("procfs: uptime: %w", err)
	}
	return up, nil
}

// ParseDiskStats parses the contents of /proc/diskstats.
func ParseDiskStats(r io.Reader) ([]DiskStat, error) {
	var out []DiskStat
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 14 {
			continue
		}
		major, err1 := strconv.Atoi(fields[0])
		minor, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, DiskStat{
			Major: major, Minor: minor, Name: fields[2],
			ReadsCompleted: parseUint(fields[3]), ReadsMerged: parseUint(fields[4]),
			SectorsRead: parseUint(fields[5]), ReadTimeMs: parseUint(fields[6]),
			WritesCompleted: parseUint(fields[7]), WritesMerged: parseUint(fields[8]),
			SectorsWritten: parseUint(fields[9]), WriteTimeMs: parseUint(fields[10]),
			IOInProgress: parseUint(fields[11]), IOTimeMs: parseUint(fields[12]),
			WeightedIOMs: parseUint(fields[13]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("procfs: reading diskstats: %w", err)
	}
	return out, nil
}

// ParseNetDev parses the contents of /proc/net/dev.
func ParseNetDev(r io.Reader) ([]NetDevStat, error) {
	var out []NetDevStat
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if lineNo <= 2 { // two header lines
			continue
		}
		iface, rest, ok := strings.Cut(sc.Text(), ":")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) < 16 {
			continue
		}
		vals := make([]uint64, 16)
		for i := range vals {
			vals[i] = parseUint(fields[i])
		}
		out = append(out, NetDevStat{
			Iface:   strings.TrimSpace(iface),
			RxBytes: vals[0], RxPackets: vals[1], RxErrors: vals[2], RxDropped: vals[3],
			RxFIFO: vals[4], RxFrame: vals[5], RxCompressed: vals[6], RxMulticast: vals[7],
			TxBytes: vals[8], TxPackets: vals[9], TxErrors: vals[10], TxDropped: vals[11],
			TxFIFO: vals[12], TxCollisions: vals[13], TxCarrier: vals[14], TxCompressed: vals[15],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("procfs: reading net/dev: %w", err)
	}
	return out, nil
}

// ParsePIDStat parses /proc/<pid>/stat. The comm field may contain spaces
// and parentheses; the kernel wraps it in parentheses, so parsing anchors on
// the last ')'.
func ParsePIDStat(r io.Reader) (PIDStat, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return PIDStat{}, fmt.Errorf("procfs: reading pid stat: %w", err)
	}
	text := strings.TrimSpace(string(data))
	open := strings.IndexByte(text, '(')
	closing := strings.LastIndexByte(text, ')')
	if open < 0 || closing < 0 || closing < open {
		return PIDStat{}, fmt.Errorf("procfs: pid stat: malformed comm field in %q", truncate(text, 60))
	}
	var p PIDStat
	pid, err := strconv.Atoi(strings.TrimSpace(text[:open]))
	if err != nil {
		return PIDStat{}, fmt.Errorf("procfs: pid stat: pid: %w", err)
	}
	p.PID = pid
	p.Comm = text[open+1 : closing]
	rest := strings.Fields(text[closing+1:])
	// rest[0] is the state; fields are numbered from field 3 of the file.
	if len(rest) < 22 {
		return PIDStat{}, fmt.Errorf("procfs: pid stat: want >= 22 fields after comm, got %d", len(rest))
	}
	p.State = rest[0][0]
	p.MinFlt = parseUint(rest[7])           // field 10
	p.MajFlt = parseUint(rest[9])           // field 12
	p.UTime = parseUint(rest[11])           // field 14
	p.STime = parseUint(rest[12])           // field 15
	p.NumThreads = int(parseUint(rest[17])) // field 20
	p.StartTime = parseUint(rest[19])       // field 22
	p.VSizeBytes = parseUint(rest[20])      // field 23
	p.RSSPages = int64(parseUint(rest[21])) // field 24
	return p, nil
}

// ParsePIDIO parses /proc/<pid>/io, filling only the read_bytes and
// write_bytes counters.
func ParsePIDIO(r io.Reader) (readBytes, writeBytes uint64, err error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		key, rest, ok := strings.Cut(sc.Text(), ":")
		if !ok {
			continue
		}
		switch strings.TrimSpace(key) {
		case "read_bytes":
			readBytes = parseUint(strings.TrimSpace(rest))
		case "write_bytes":
			writeBytes = parseUint(strings.TrimSpace(rest))
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, fmt.Errorf("procfs: reading pid io: %w", err)
	}
	return readBytes, writeBytes, nil
}

// ParsePIDStatus parses /proc/<pid>/status, extracting VmRSS (kB).
func ParsePIDStatus(r io.Reader) (vmRSSkB uint64, err error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		key, rest, ok := strings.Cut(sc.Text(), ":")
		if !ok {
			continue
		}
		if strings.TrimSpace(key) == "VmRSS" {
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				vmRSSkB = parseUint(fields[0])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("procfs: reading pid status: %w", err)
	}
	return vmRSSkB, nil
}

// parseUint parses a decimal counter, returning 0 for malformed input:
// /proc counters are kernel-generated, and sadc's behaviour on the rare
// malformed field is to read it as zero rather than abort collection.
func parseUint(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return v
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
