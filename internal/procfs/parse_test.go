package procfs

import (
	"strings"
	"testing"
)

const statFixture = `cpu  10132153 290696 3084719 46828483 16683 0 25195 0 0
cpu0 5066076 145348 1542359 23414241 8341 0 12597 0 0
cpu1 5066077 145348 1542360 23414242 8342 0 12598 0 0
intr 1462531241 20 2 0 0
ctxt 2345987634
btime 1646236805
processes 26442
procs_running 2
procs_blocked 1
softirq 10 1 2 3
`

func TestParseStat(t *testing.T) {
	st, err := ParseStat(strings.NewReader(statFixture))
	if err != nil {
		t.Fatal(err)
	}
	if st.CPUTotal.User != 10132153 {
		t.Errorf("User = %d", st.CPUTotal.User)
	}
	if st.CPUTotal.Idle != 46828483 {
		t.Errorf("Idle = %d", st.CPUTotal.Idle)
	}
	if st.CPUTotal.IOWait != 16683 {
		t.Errorf("IOWait = %d", st.CPUTotal.IOWait)
	}
	if len(st.PerCPU) != 2 {
		t.Errorf("PerCPU count = %d, want 2", len(st.PerCPU))
	}
	if st.ContextSwitches != 2345987634 {
		t.Errorf("ctxt = %d", st.ContextSwitches)
	}
	if st.BootTime != 1646236805 {
		t.Errorf("btime = %d", st.BootTime)
	}
	if st.Processes != 26442 {
		t.Errorf("processes = %d", st.Processes)
	}
	if st.ProcsRunning != 2 || st.ProcsBlocked != 1 {
		t.Errorf("procs running/blocked = %d/%d", st.ProcsRunning, st.ProcsBlocked)
	}
	if st.Interrupts != 1462531241 {
		t.Errorf("intr = %d", st.Interrupts)
	}
}

func TestCPUStatTotals(t *testing.T) {
	c := CPUStat{User: 1, Nice: 2, System: 3, Idle: 4, IOWait: 5, IRQ: 6, SoftIRQ: 7, Steal: 8, Guest: 9}
	if c.Total() != 45 {
		t.Errorf("Total() = %d, want 45", c.Total())
	}
	if c.Busy() != 36 {
		t.Errorf("Busy() = %d, want 36 (all but idle and iowait)", c.Busy())
	}
}

func TestParseStatShortCPULine(t *testing.T) {
	if _, err := ParseStat(strings.NewReader("cpu 1 2\n")); err == nil {
		t.Error("short cpu line should error")
	}
}

const meminfoFixture = `MemTotal:        7864320 kB
MemFree:         3276800 kB
Buffers:          262144 kB
Cached:          1048576 kB
SwapCached:            0 kB
Active:          2097152 kB
Inactive:        1048576 kB
SwapTotal:       2097152 kB
SwapFree:        2097152 kB
Dirty:              1024 kB
Writeback:             8 kB
Committed_AS:    4194304 kB
`

func TestParseMeminfo(t *testing.T) {
	m, err := ParseMeminfo(strings.NewReader(meminfoFixture))
	if err != nil {
		t.Fatal(err)
	}
	if m.MemTotal != 7864320 || m.MemFree != 3276800 {
		t.Errorf("MemTotal/MemFree = %d/%d", m.MemTotal, m.MemFree)
	}
	if m.Used() != 7864320-3276800 {
		t.Errorf("Used() = %d", m.Used())
	}
	if m.Buffers != 262144 || m.Cached != 1048576 {
		t.Errorf("Buffers/Cached = %d/%d", m.Buffers, m.Cached)
	}
	if m.Dirty != 1024 || m.Writeback != 8 || m.CommittedAS != 4194304 {
		t.Errorf("Dirty/Writeback/Committed = %d/%d/%d", m.Dirty, m.Writeback, m.CommittedAS)
	}
}

func TestMeminfoUsedClamped(t *testing.T) {
	m := Meminfo{MemTotal: 10, MemFree: 20}
	if m.Used() != 0 {
		t.Errorf("Used() with free > total = %d, want 0", m.Used())
	}
}

func TestParseVMStat(t *testing.T) {
	v, err := ParseVMStat(strings.NewReader("pgpgin 100\npgpgout 200\npswpin 3\npswpout 4\npgfault 5000\npgmajfault 60\npgfree 70\npgscan_kswapd 8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v.PgpgIn != 100 || v.PgpgOut != 200 || v.PswpIn != 3 || v.PswpOut != 4 {
		t.Errorf("paging counters = %+v", v)
	}
	if v.PgFault != 5000 || v.PgMajFault != 60 {
		t.Errorf("fault counters = %+v", v)
	}
}

func TestParseLoadAvg(t *testing.T) {
	l, err := ParseLoadAvg(strings.NewReader("0.20 0.18 0.12 1/80 11206\n"))
	if err != nil {
		t.Fatal(err)
	}
	if l.Load1 != 0.20 || l.Load5 != 0.18 || l.Load15 != 0.12 {
		t.Errorf("loads = %+v", l)
	}
	if l.Running != 1 || l.Total != 80 {
		t.Errorf("running/total = %d/%d", l.Running, l.Total)
	}
	if _, err := ParseLoadAvg(strings.NewReader("0.1 0.2\n")); err == nil {
		t.Error("short loadavg should error")
	}
	if _, err := ParseLoadAvg(strings.NewReader("x y z 1/2 5\n")); err == nil {
		t.Error("non-numeric loadavg should error")
	}
}

func TestParseUptime(t *testing.T) {
	up, err := ParseUptime(strings.NewReader("350735.47 234388.90\n"))
	if err != nil {
		t.Fatal(err)
	}
	if up != 350735.47 {
		t.Errorf("uptime = %v", up)
	}
	if _, err := ParseUptime(strings.NewReader("")); err == nil {
		t.Error("empty uptime should error")
	}
}

const diskstatsFixture = `   8       0 sda 8250 1826 550632 14500 81000 44921 9051268 256608 0 96520 271100
   8       1 sda1 500 0 4000 120 10 5 120 30 0 140 150
 253       0 dm-0 1 2 3 4 5 6 7 8 9 10 11
`

func TestParseDiskStats(t *testing.T) {
	ds, err := ParseDiskStats(strings.NewReader(diskstatsFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("parsed %d disks, want 3", len(ds))
	}
	sda := ds[0]
	if sda.Name != "sda" || sda.Major != 8 || sda.Minor != 0 {
		t.Errorf("identity = %+v", sda)
	}
	if sda.ReadsCompleted != 8250 || sda.SectorsRead != 550632 {
		t.Errorf("reads = %+v", sda)
	}
	if sda.WritesCompleted != 81000 || sda.SectorsWritten != 9051268 {
		t.Errorf("writes = %+v", sda)
	}
	if sda.IOTimeMs != 96520 || sda.WeightedIOMs != 271100 {
		t.Errorf("io times = %+v", sda)
	}
}

const netdevFixture = `Inter-|   Receive                                                |  Transmit
 face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed
    lo: 1234567     890    0    0    0     0          0         0  1234567     890    0    0    0     0       0          0
  eth0: 987654321 765432    1    2    0     0          0        10 123456789 654321    3    4    0     5       0          0
`

func TestParseNetDev(t *testing.T) {
	nets, err := ParseNetDev(strings.NewReader(netdevFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 2 {
		t.Fatalf("parsed %d interfaces, want 2", len(nets))
	}
	eth := nets[1]
	if eth.Iface != "eth0" {
		t.Errorf("iface = %q", eth.Iface)
	}
	if eth.RxBytes != 987654321 || eth.RxPackets != 765432 || eth.RxErrors != 1 || eth.RxDropped != 2 {
		t.Errorf("rx = %+v", eth)
	}
	if eth.TxBytes != 123456789 || eth.TxPackets != 654321 || eth.TxErrors != 3 || eth.TxDropped != 4 || eth.TxCollisions != 5 {
		t.Errorf("tx = %+v", eth)
	}
	if eth.RxMulticast != 10 {
		t.Errorf("multicast = %d", eth.RxMulticast)
	}
}

// pidStatFixture has a comm containing spaces and a ')' to exercise the
// last-paren anchoring.
const pidStatFixture = `1234 (java (tt) x) S 1 1234 1234 0 -1 4202496 50000 0 12 0 4500 1500 0 0 20 0 42 0 8000 1048576000 25000 18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 0 0 0 0 0 0`

func TestParsePIDStat(t *testing.T) {
	p, err := ParsePIDStat(strings.NewReader(pidStatFixture))
	if err != nil {
		t.Fatal(err)
	}
	if p.PID != 1234 {
		t.Errorf("PID = %d", p.PID)
	}
	if p.Comm != "java (tt) x" {
		t.Errorf("Comm = %q", p.Comm)
	}
	if p.State != 'S' {
		t.Errorf("State = %c", p.State)
	}
	if p.MinFlt != 50000 || p.MajFlt != 12 {
		t.Errorf("faults = %d/%d", p.MinFlt, p.MajFlt)
	}
	if p.UTime != 4500 || p.STime != 1500 {
		t.Errorf("utime/stime = %d/%d", p.UTime, p.STime)
	}
	if p.NumThreads != 42 {
		t.Errorf("threads = %d", p.NumThreads)
	}
	if p.StartTime != 8000 {
		t.Errorf("starttime = %d", p.StartTime)
	}
	if p.VSizeBytes != 1048576000 || p.RSSPages != 25000 {
		t.Errorf("vsize/rss = %d/%d", p.VSizeBytes, p.RSSPages)
	}
}

func TestParsePIDStatMalformed(t *testing.T) {
	if _, err := ParsePIDStat(strings.NewReader("1234 no-parens S 1")); err == nil {
		t.Error("missing parens should error")
	}
	if _, err := ParsePIDStat(strings.NewReader("1234 (x) S 1 2")); err == nil {
		t.Error("too few fields should error")
	}
	if _, err := ParsePIDStat(strings.NewReader("abc (x) S 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22")); err == nil {
		t.Error("non-numeric pid should error")
	}
}

func TestParsePIDIO(t *testing.T) {
	rb, wb, err := ParsePIDIO(strings.NewReader("rchar: 100\nwchar: 200\nread_bytes: 4096\nwrite_bytes: 8192\ncancelled_write_bytes: 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rb != 4096 || wb != 8192 {
		t.Errorf("io = %d/%d", rb, wb)
	}
}

func TestParseUintLenient(t *testing.T) {
	if parseUint("garbage") != 0 {
		t.Error("malformed counter should parse as 0")
	}
	if parseUint("18446744073709551615") != ^uint64(0) {
		t.Error("max uint64 should parse")
	}
}

func TestParsePIDStatus(t *testing.T) {
	in := "Name:\tjava\nState:\tS (sleeping)\nVmPeak:\t 5000000 kB\nVmRSS:\t  123456 kB\nThreads:\t42\n"
	rss, err := ParsePIDStatus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rss != 123456 {
		t.Errorf("VmRSS = %d, want 123456", rss)
	}
	rss, err = ParsePIDStatus(strings.NewReader("Name: x\n"))
	if err != nil || rss != 0 {
		t.Errorf("missing VmRSS should yield 0, got %d (%v)", rss, err)
	}
}
