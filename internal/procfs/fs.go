package procfs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// FS is a Provider that reads a /proc-style directory tree. Root defaults
// to "/proc"; tests point it at a fixture tree.
type FS struct {
	// Root is the base directory, e.g. "/proc".
	Root string
	// PIDs, when non-empty, restricts per-process collection to these
	// process ids. When empty, no per-process data is collected (walking
	// every pid is the caller's policy decision, not the provider's).
	PIDs []int
	// Clock supplies timestamps; defaults to time.Now.
	Clock func() time.Time
}

var _ Provider = (*FS)(nil)

// NewFS returns an FS provider rooted at root ("/proc" when empty).
func NewFS(root string) *FS {
	if root == "" {
		root = "/proc"
	}
	return &FS{Root: root}
}

// Snapshot reads all supported /proc files under Root. Missing optional
// files (vmstat, loadavg, per-pid io) degrade to zero values; a missing
// stat or meminfo is an error, since no meaningful snapshot exists without
// them.
func (f *FS) Snapshot() (*Snapshot, error) {
	now := time.Now()
	if f.Clock != nil {
		now = f.Clock()
	}
	snap := &Snapshot{Time: now}

	data, err := os.ReadFile(filepath.Join(f.Root, "stat"))
	if err != nil {
		return nil, fmt.Errorf("procfs: %w", err)
	}
	if snap.Stat, err = ParseStat(bytes.NewReader(data)); err != nil {
		return nil, err
	}

	data, err = os.ReadFile(filepath.Join(f.Root, "meminfo"))
	if err != nil {
		return nil, fmt.Errorf("procfs: %w", err)
	}
	if snap.Mem, err = ParseMeminfo(bytes.NewReader(data)); err != nil {
		return nil, err
	}

	if data, err = os.ReadFile(filepath.Join(f.Root, "vmstat")); err == nil {
		if snap.VM, err = ParseVMStat(bytes.NewReader(data)); err != nil {
			return nil, err
		}
	}
	if data, err = os.ReadFile(filepath.Join(f.Root, "loadavg")); err == nil {
		if snap.Load, err = ParseLoadAvg(bytes.NewReader(data)); err != nil {
			return nil, err
		}
	}
	if data, err = os.ReadFile(filepath.Join(f.Root, "uptime")); err == nil {
		if snap.Uptime, err = ParseUptime(bytes.NewReader(data)); err != nil {
			return nil, err
		}
	}
	if data, err = os.ReadFile(filepath.Join(f.Root, "diskstats")); err == nil {
		if snap.Disks, err = ParseDiskStats(bytes.NewReader(data)); err != nil {
			return nil, err
		}
	}
	if data, err = os.ReadFile(filepath.Join(f.Root, "net", "dev")); err == nil {
		if snap.Nets, err = ParseNetDev(bytes.NewReader(data)); err != nil {
			return nil, err
		}
	}

	for _, pid := range f.PIDs {
		ps, err := f.readPID(pid)
		if err != nil {
			continue // the process may have exited between listing and reading
		}
		snap.Procs = append(snap.Procs, ps)
	}
	return snap, nil
}

func (f *FS) readPID(pid int) (PIDStat, error) {
	base := filepath.Join(f.Root, strconv.Itoa(pid))
	data, err := os.ReadFile(filepath.Join(base, "stat"))
	if err != nil {
		return PIDStat{}, fmt.Errorf("procfs: %w", err)
	}
	ps, err := ParsePIDStat(bytes.NewReader(data))
	if err != nil {
		return PIDStat{}, err
	}
	if data, err := os.ReadFile(filepath.Join(base, "io")); err == nil {
		rb, wb, err := ParsePIDIO(bytes.NewReader(data))
		if err == nil {
			ps.ReadBytes, ps.WriteBytes = rb, wb
		}
	}
	if data, err := os.ReadFile(filepath.Join(base, "status")); err == nil {
		if rss, err := ParsePIDStatus(bytes.NewReader(data)); err == nil {
			ps.VMRSSkB = rss
		}
	}
	return ps, nil
}
