package procfs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeFixtureTree materializes a minimal /proc tree for the FS provider.
func writeFixtureTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"stat":        statFixture,
		"meminfo":     meminfoFixture,
		"vmstat":      "pgpgin 100\npgpgout 200\npgfault 300\n",
		"loadavg":     "0.50 0.40 0.30 2/100 999\n",
		"uptime":      "1000.5 1800.2\n",
		"diskstats":   diskstatsFixture,
		"net/dev":     netdevFixture,
		"4242/stat":   pidStatFixture,
		"4242/io":     "read_bytes: 111\nwrite_bytes: 222\n",
		"4242/status": "Name:\tjava\nVmRSS:\t  98765 kB\n",
	}
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestFSSnapshot(t *testing.T) {
	root := writeFixtureTree(t)
	now := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	fs := &FS{Root: root, PIDs: []int{4242}, Clock: func() time.Time { return now }}

	snap, err := fs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Time.Equal(now) {
		t.Errorf("Time = %v, want %v", snap.Time, now)
	}
	if snap.Stat.ContextSwitches != 2345987634 {
		t.Errorf("ctxt = %d", snap.Stat.ContextSwitches)
	}
	if snap.Mem.MemTotal != 7864320 {
		t.Errorf("MemTotal = %d", snap.Mem.MemTotal)
	}
	if snap.VM.PgpgIn != 100 {
		t.Errorf("PgpgIn = %d", snap.VM.PgpgIn)
	}
	if snap.Load.Load1 != 0.5 {
		t.Errorf("Load1 = %v", snap.Load.Load1)
	}
	if snap.Uptime != 1000.5 {
		t.Errorf("Uptime = %v", snap.Uptime)
	}
	if len(snap.Disks) != 3 {
		t.Errorf("disks = %d", len(snap.Disks))
	}
	if len(snap.Nets) != 2 {
		t.Errorf("nets = %d", len(snap.Nets))
	}
	if len(snap.Procs) != 1 {
		t.Fatalf("procs = %d", len(snap.Procs))
	}
	p := snap.Procs[0]
	if p.PID != 1234 || p.ReadBytes != 111 || p.WriteBytes != 222 {
		t.Errorf("pid data = %+v", p)
	}
	if p.VMRSSkB != 98765 {
		t.Errorf("VmRSS = %d, want 98765", p.VMRSSkB)
	}
}

func TestFSSnapshotMissingOptional(t *testing.T) {
	root := t.TempDir()
	for rel, content := range map[string]string{"stat": statFixture, "meminfo": meminfoFixture} {
		if err := os.WriteFile(filepath.Join(root, rel), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fs := NewFS(root)
	snap, err := fs.Snapshot()
	if err != nil {
		t.Fatalf("snapshot with only stat+meminfo should succeed: %v", err)
	}
	if snap.Uptime != 0 || len(snap.Disks) != 0 || len(snap.Nets) != 0 {
		t.Errorf("optional sources should default to zero: %+v", snap)
	}
}

func TestFSSnapshotMissingRequired(t *testing.T) {
	fs := NewFS(t.TempDir())
	if _, err := fs.Snapshot(); err == nil {
		t.Error("snapshot without stat should error")
	}
}

func TestFSSnapshotDeadPID(t *testing.T) {
	root := writeFixtureTree(t)
	fs := &FS{Root: root, PIDs: []int{4242, 31337}}
	snap, err := fs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Procs) != 1 {
		t.Errorf("dead pid should be skipped, got %d procs", len(snap.Procs))
	}
}

func TestNewFSDefaultsToProc(t *testing.T) {
	if got := NewFS("").Root; got != "/proc" {
		t.Errorf("Root = %q, want /proc", got)
	}
}
