// Package procfs reads and parses Linux /proc-style performance data.
//
// ASDF's black-box instrumentation is built on /proc (§3.5): the sadc
// collector samples system-wide and per-process counters. This package
// provides the raw snapshot layer. A Provider yields Snapshots; the FS
// provider parses a real (or fixture) /proc tree, while the Hadoop cluster
// simulator implements Provider with synthetic snapshots, so the identical
// collection code path runs in both live and simulated deployments.
package procfs

import (
	"time"
)

// CPUStat holds one cpu line of /proc/stat, in jiffies.
type CPUStat struct {
	User    uint64
	Nice    uint64
	System  uint64
	Idle    uint64
	IOWait  uint64
	IRQ     uint64
	SoftIRQ uint64
	Steal   uint64
	Guest   uint64
}

// Total returns the sum of all accounted jiffies.
func (c CPUStat) Total() uint64 {
	return c.User + c.Nice + c.System + c.Idle + c.IOWait + c.IRQ + c.SoftIRQ + c.Steal + c.Guest
}

// Busy returns the non-idle, non-iowait jiffies.
func (c CPUStat) Busy() uint64 {
	return c.User + c.Nice + c.System + c.IRQ + c.SoftIRQ + c.Steal + c.Guest
}

// Stat holds the system-wide counters of /proc/stat.
type Stat struct {
	CPUTotal        CPUStat
	PerCPU          []CPUStat
	ContextSwitches uint64 // ctxt
	BootTime        uint64 // btime, seconds since epoch
	Processes       uint64 // forks since boot
	ProcsRunning    uint64
	ProcsBlocked    uint64
	Interrupts      uint64 // first field of intr
}

// Meminfo holds the fields of /proc/meminfo that sadc exports, in kB.
type Meminfo struct {
	MemTotal    uint64
	MemFree     uint64
	Buffers     uint64
	Cached      uint64
	SwapTotal   uint64
	SwapFree    uint64
	Active      uint64
	Inactive    uint64
	Dirty       uint64
	Writeback   uint64
	CommittedAS uint64
}

// Used returns the memory in use (total minus free), in kB.
func (m Meminfo) Used() uint64 {
	if m.MemFree > m.MemTotal {
		return 0
	}
	return m.MemTotal - m.MemFree
}

// VMStat holds the paging and swapping counters of /proc/vmstat
// (pages since boot).
type VMStat struct {
	PgpgIn       uint64
	PgpgOut      uint64
	PswpIn       uint64
	PswpOut      uint64
	PgFault      uint64
	PgMajFault   uint64
	PgFree       uint64
	PgScanKswapd uint64
}

// LoadAvg holds /proc/loadavg.
type LoadAvg struct {
	Load1   float64
	Load5   float64
	Load15  float64
	Running int
	Total   int
}

// DiskStat holds one line of /proc/diskstats.
type DiskStat struct {
	Major           int
	Minor           int
	Name            string
	ReadsCompleted  uint64
	ReadsMerged     uint64
	SectorsRead     uint64
	ReadTimeMs      uint64
	WritesCompleted uint64
	WritesMerged    uint64
	SectorsWritten  uint64
	WriteTimeMs     uint64
	IOInProgress    uint64
	IOTimeMs        uint64
	WeightedIOMs    uint64
}

// NetDevStat holds one interface line of /proc/net/dev.
type NetDevStat struct {
	Iface        string
	RxBytes      uint64
	RxPackets    uint64
	RxErrors     uint64
	RxDropped    uint64
	RxFIFO       uint64
	RxFrame      uint64
	RxCompressed uint64
	RxMulticast  uint64
	TxBytes      uint64
	TxPackets    uint64
	TxErrors     uint64
	TxDropped    uint64
	TxFIFO       uint64
	TxCollisions uint64
	TxCarrier    uint64
	TxCompressed uint64
}

// PIDStat holds the scheduling fields of /proc/<pid>/stat plus the I/O
// counters of /proc/<pid>/io used for the per-process metrics.
type PIDStat struct {
	PID        int
	Comm       string
	State      byte
	UTime      uint64 // jiffies
	STime      uint64 // jiffies
	NumThreads int
	StartTime  uint64 // jiffies since boot
	VSizeBytes uint64
	RSSPages   int64
	MinFlt     uint64
	MajFlt     uint64
	// From /proc/<pid>/io:
	ReadBytes  uint64
	WriteBytes uint64
	// From /proc/<pid>/status (VmRSS), in kB; 0 when unavailable.
	VMRSSkB uint64
}

// Snapshot is one point-in-time reading of every /proc source ASDF samples.
type Snapshot struct {
	Time   time.Time
	Uptime float64 // seconds
	Stat   Stat
	Mem    Meminfo
	VM     VMStat
	Load   LoadAvg
	Disks  []DiskStat
	Nets   []NetDevStat
	Procs  []PIDStat
}

// Provider yields successive snapshots of a node's /proc state.
type Provider interface {
	// Snapshot reads the current counters. Implementations must return a
	// snapshot the caller may retain.
	Snapshot() (*Snapshot, error)
}
